/**
 * @file
 * Tests for the backend planner and the Backend dispatch refactor of
 * sim::run (`ctest -L planner`): planner policy over the whole
 * decision surface, planner-vs-forced-backend histogram equivalence
 * (byte-identity when the engine matches, TVD bounds against exact
 * references for trajectories), exact shot accounting with FaultHook
 * truncation on every backend, trailing-operation semantics of
 * hasMidCircuitOperations, overflow-checked denseBytes at widths the
 * old arithmetic silently wrapped on, TooLarge-vs-trajectory routing
 * through the jobs layer at widths beyond the density-matrix cap, the
 * plan record's journey into grid caches / checkpoint journals /
 * manifests, and serve cache-key stability across daemon --backend
 * changes.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>

#include "core/benchmarks/ghz.hpp"
#include "core/benchmarks/hamiltonian_simulation.hpp"
#include "core/harness.hpp"
#include "device/device.hpp"
#include "fig_data.hpp"
#include "jobs/scheduler.hpp"
#include "obs/json.hpp"
#include "report/checkpoint.hpp"
#include "serve/server.hpp"
#include "sim/density_matrix.hpp"
#include "sim/memory.hpp"
#include "sim/planner.hpp"
#include "sim/runner.hpp"

namespace smq {
namespace {

namespace fs = std::filesystem;

// --- circuit fixtures ------------------------------------------------

/** GHZ ladder with terminal measure-all: Clifford, terminal. */
qc::Circuit
cliffordTerminal(std::size_t n)
{
    qc::Circuit c(n, n, "ghz");
    c.h(0);
    for (std::size_t q = 1; q < n; ++q)
        c.cx(q - 1, q);
    for (std::size_t q = 0; q < n; ++q)
        c.measure(q, q);
    return c;
}

/** Non-Clifford (rotation angles off the Clifford grid), terminal. */
qc::Circuit
rotationTerminal(std::size_t n)
{
    qc::Circuit c(n, n, "rot");
    for (std::size_t q = 0; q < n; ++q)
        c.rx(0.3 + 0.2 * static_cast<double>(q), q);
    for (std::size_t q = 1; q < n; ++q)
        c.cx(q - 1, q);
    c.ry(0.7, 0);
    for (std::size_t q = 0; q < n; ++q)
        c.measure(q, q);
    return c;
}

/** Mid-circuit collapse: measured qubit is reused before the end. */
qc::Circuit
midCircuit(std::size_t n)
{
    qc::Circuit c(n, n, "mid");
    c.rx(0.4, 0);
    c.measure(0, 0);
    c.rx(0.9, 0); // gate on a finalized qubit: outcome-dependent
    for (std::size_t q = 1; q < n; ++q)
        c.cx(q - 1, q);
    for (std::size_t q = 0; q < n; ++q)
        c.measure(q, q);
    return c;
}

sim::NoiseModel
mildNoise()
{
    sim::NoiseModel noise;
    noise.enabled = true;
    noise.p1 = 0.002;
    noise.p2 = 0.01;
    noise.pMeas = 0.01;
    return noise;
}

/** TVD of an empirical histogram from an exact distribution. */
double
tvdFrom(const stats::Counts &counts, const stats::Distribution &ref)
{
    const double n = static_cast<double>(counts.shots());
    double sum = 0.0;
    for (const auto &[bits, c] : counts.map())
        sum += std::abs(static_cast<double>(c) / n -
                        ref.probability(bits));
    for (const auto &[bits, p] : ref.map()) {
        if (counts.at(bits) == 0)
            sum += p;
    }
    return sum / 2.0;
}

// --- planner policy --------------------------------------------------

TEST(Planner, NoiselessTerminalCliffordSamplesTheStatevector)
{
    sim::Plan plan =
        sim::planCircuit(cliffordTerminal(4), sim::NoiseModel::ideal());
    EXPECT_EQ(plan.backend, sim::BackendKind::Statevector);
    EXPECT_EQ(plan.reason, "ideal");
    EXPECT_TRUE(plan.clifford);
    EXPECT_FALSE(plan.midCircuit);
    EXPECT_EQ(plan.token(), "statevector:ideal");
}

TEST(Planner, NoisyCliffordScalesOnTheTableau)
{
    sim::Plan plan = sim::planCircuit(cliffordTerminal(4), mildNoise());
    EXPECT_EQ(plan.backend, sim::BackendKind::Stabilizer);
    EXPECT_EQ(plan.token(), "stabilizer:clifford");
}

TEST(Planner, MidCircuitCliffordStaysOnTheTableau)
{
    // The tableau collapses measurements natively, so Clifford
    // mid-circuit circuits avoid the shot-per-trajectory path.
    qc::Circuit c(2, 2, "mc");
    c.h(0);
    c.measure(0, 0);
    c.x(0);
    c.cx(0, 1);
    c.measure(0, 0);
    c.measure(1, 1);
    sim::Plan plan = sim::planCircuit(c, sim::NoiseModel::ideal());
    EXPECT_TRUE(plan.midCircuit);
    EXPECT_EQ(plan.backend, sim::BackendKind::Stabilizer);
}

TEST(Planner, NonCliffordMidCircuitForcesTrajectories)
{
    sim::Plan plan =
        sim::planCircuit(midCircuit(3), sim::NoiseModel::ideal());
    EXPECT_EQ(plan.backend, sim::BackendKind::Trajectory);
    EXPECT_EQ(plan.reason, "mid-circuit");
    EXPECT_TRUE(plan.midCircuit);
    EXPECT_FALSE(plan.clifford);
}

TEST(Planner, NoiselessTerminalNonCliffordSamplesTheStatevector)
{
    sim::Plan plan =
        sim::planCircuit(rotationTerminal(3), sim::NoiseModel::ideal());
    EXPECT_EQ(plan.backend, sim::BackendKind::Statevector);
    EXPECT_EQ(plan.reason, "ideal");
}

TEST(Planner, SmallNoisyTerminalGetsExactKrausChannels)
{
    sim::Plan plan = sim::planCircuit(rotationTerminal(3), mildNoise());
    EXPECT_EQ(plan.backend, sim::BackendKind::DensityMatrix);
    EXPECT_EQ(plan.token(), "density-matrix:exact-noise");
}

TEST(Planner, WideNoisyTerminalFallsToTrajectorySampling)
{
    // 7 qubits is just past the default density-matrix cost cutoff.
    sim::Plan plan = sim::planCircuit(rotationTerminal(7), mildNoise());
    EXPECT_EQ(plan.backend, sim::BackendKind::Trajectory);
    EXPECT_EQ(plan.reason, "width>dm-cutoff");
}

TEST(Planner, DensityMatrixCutoffIsClampedToTheEngineHardCap)
{
    sim::PlannerConfig config;
    config.maxDensityMatrixQubits = 20; // above the engine's 11
    sim::Plan wide =
        sim::planCircuit(rotationTerminal(12), mildNoise(), config);
    EXPECT_EQ(wide.backend, sim::BackendKind::Trajectory);
    sim::Plan at_cap =
        sim::planCircuit(rotationTerminal(11), mildNoise(), config);
    EXPECT_EQ(at_cap.backend, sim::BackendKind::DensityMatrix);
}

TEST(Planner, ForcedBackendWinsAndIsRecordedAsForced)
{
    sim::PlannerConfig config;
    config.force = sim::BackendKind::Trajectory;
    sim::Plan plan =
        sim::planCircuit(cliffordTerminal(3), sim::NoiseModel::ideal(),
                         config);
    EXPECT_EQ(plan.backend, sim::BackendKind::Trajectory);
    EXPECT_EQ(plan.token(), "trajectory:forced");
    // The facts are still recorded even when they did not decide.
    EXPECT_TRUE(plan.clifford);
}

TEST(Planner, BackendTokensRoundTripAndRejectUnknowns)
{
    for (sim::BackendKind kind : sim::kAllBackendKinds) {
        auto parsed = sim::backendFromString(sim::toString(kind));
        ASSERT_TRUE(parsed.has_value()) << sim::toString(kind);
        EXPECT_EQ(*parsed, kind);
    }
    EXPECT_FALSE(sim::backendFromString("densitymatrix").has_value());
    EXPECT_FALSE(sim::backendFromString("").has_value());
    EXPECT_FALSE(sim::backendFromString("Stabilizer").has_value());
}

// --- planner-vs-forced equivalence -----------------------------------

stats::Counts
runWith(const qc::Circuit &circuit, const sim::NoiseModel &noise,
        sim::BackendKind backend, std::uint64_t shots,
        std::uint64_t seed)
{
    sim::RunOptions ro;
    ro.shots = shots;
    ro.noise = noise;
    ro.backend = backend;
    stats::Rng rng(seed);
    return sim::run(circuit, ro, rng);
}

TEST(PlannerEquivalence, ForcingThePlannersChoiceIsByteIdentical)
{
    struct Case
    {
        qc::Circuit circuit;
        sim::NoiseModel noise;
    };
    const Case cases[] = {
        {cliffordTerminal(4), sim::NoiseModel::ideal()},
        {cliffordTerminal(4), mildNoise()},
        {rotationTerminal(3), sim::NoiseModel::ideal()},
        {rotationTerminal(3), mildNoise()},
        {rotationTerminal(7), mildNoise()},
        {midCircuit(3), mildNoise()},
    };
    for (const Case &c : cases) {
        const sim::Plan plan = sim::planCircuit(c.circuit, c.noise);
        stats::Counts via_auto = runWith(c.circuit, c.noise,
                                         sim::BackendKind::Auto, 400, 11);
        stats::Counts via_forced =
            runWith(c.circuit, c.noise, plan.backend, 400, 11);
        EXPECT_EQ(via_auto.map(), via_forced.map())
            << "plan " << plan.token();
    }
}

TEST(PlannerEquivalence, TrajectoriesTrackTheExactNoisyDistribution)
{
    // The same small noisy circuit the planner sends to the exact
    // density-matrix engine, forced through trajectory sampling: the
    // stochastic unravelling must reproduce the closed-form
    // distribution to within multinomial sampling noise.
    const qc::Circuit circuit = rotationTerminal(3);
    const sim::NoiseModel noise = mildNoise();
    const stats::Distribution exact =
        sim::noisyDistribution(circuit, noise);
    stats::Counts sampled = runWith(circuit, noise,
                                    sim::BackendKind::Trajectory,
                                    6000, 23);
    EXPECT_EQ(sampled.shots(), 6000u);
    EXPECT_LT(tvdFrom(sampled, exact), 0.08);
}

TEST(PlannerEquivalence, StabilizerTracksTheExactNoisyDistribution)
{
    // Pauli-twirled tableau noise vs the exact Kraus channels on a
    // depolarising-only model (twirling is exact in distribution).
    const qc::Circuit circuit = cliffordTerminal(3);
    const sim::NoiseModel noise = mildNoise();
    const stats::Distribution exact =
        sim::noisyDistribution(circuit, noise);
    stats::Counts sampled = runWith(circuit, noise,
                                    sim::BackendKind::Stabilizer,
                                    6000, 29);
    EXPECT_LT(tvdFrom(sampled, exact), 0.08);
}

TEST(PlannerEquivalence, ForcedStabilizerRejectsNonClifford)
{
    EXPECT_THROW(runWith(rotationTerminal(3), sim::NoiseModel::ideal(),
                         sim::BackendKind::Stabilizer, 50, 5),
                 std::invalid_argument);
}

// --- exact shot accounting & FaultHook truncation --------------------

TEST(ShotAccounting, TrajectoryBatchingNeverOvershootsTheRequest)
{
    // 103 is deliberately not a multiple of shotsPerTrajectory: the
    // final batch must clamp instead of rounding up to 120.
    sim::RunOptions ro;
    ro.shots = 103;
    ro.noise = mildNoise();
    ro.shotsPerTrajectory = 20;
    ro.backend = sim::BackendKind::Trajectory;
    stats::Rng rng(3);
    stats::Counts counts = sim::run(rotationTerminal(4), ro, rng);
    EXPECT_EQ(counts.shots(), 103u);
}

TEST(ShotAccounting, FaultHookTruncatesAtTheBatchBoundary)
{
    sim::RunOptions ro;
    ro.shots = 200;
    ro.noise = mildNoise();
    ro.shotsPerTrajectory = 20;
    ro.backend = sim::BackendKind::Trajectory;
    ro.faultHook = [](std::uint64_t done) { return done >= 40; };
    stats::Rng rng(3);
    stats::Counts counts = sim::run(rotationTerminal(4), ro, rng);
    EXPECT_EQ(counts.shots(), 40u);
}

TEST(ShotAccounting, TruncatedTrajectoryRunIsAPrefixOfTheFullRun)
{
    // Per-trajectory deriveTaskSeed streams: the 60-shot histogram
    // must be exactly the first 60 shots of the 200-shot run.
    const qc::Circuit circuit = rotationTerminal(4);
    sim::RunOptions ro;
    ro.noise = mildNoise();
    ro.backend = sim::BackendKind::Trajectory;
    ro.shots = 200;
    stats::Rng rng_full(17);
    stats::Counts full = sim::run(circuit, ro, rng_full);
    ro.shots = 60;
    stats::Rng rng_cut(17);
    stats::Counts cut = sim::run(circuit, ro, rng_cut);
    EXPECT_EQ(cut.shots(), 60u);
    for (const auto &[bits, n] : cut.map())
        EXPECT_LE(n, full.at(bits)) << bits;
}

TEST(ShotAccounting, StabilizerBackendHonoursTheFaultHook)
{
    sim::RunOptions ro;
    ro.shots = 500;
    ro.noise = mildNoise();
    ro.faultHook = [](std::uint64_t done) { return done >= 25; };
    stats::Rng rng(7);
    stats::Counts counts = sim::run(cliffordTerminal(4), ro, rng);
    EXPECT_EQ(counts.shots(), 25u);
}

TEST(ShotAccounting, MidCircuitPathCountsShotsExactly)
{
    sim::RunOptions ro;
    ro.shots = 57;
    ro.noise = mildNoise();
    stats::Rng rng(9);
    stats::Counts counts = sim::run(midCircuit(3), ro, rng);
    EXPECT_EQ(counts.shots(), 57u);
}

// --- hasMidCircuitOperations trailing-op semantics -------------------

TEST(MidCircuitDetection, TrailingBarrierAfterMeasureIsNotMidCircuit)
{
    qc::Circuit c(2, 2);
    c.h(0);
    c.cx(0, 1);
    c.measure(0, 0);
    c.measure(1, 1);
    c.barrier();
    EXPECT_FALSE(sim::hasMidCircuitOperations(c));
}

TEST(MidCircuitDetection, TrailingCleanupResetIsNotMidCircuit)
{
    qc::Circuit c(2, 2);
    c.h(0);
    c.measure(0, 0);
    c.measure(1, 1);
    c.reset(0);
    c.reset(1);
    EXPECT_FALSE(sim::hasMidCircuitOperations(c));
}

TEST(MidCircuitDetection, TrailingUnitaryAfterMeasureIsNotMidCircuit)
{
    qc::Circuit c(2, 2);
    c.h(0);
    c.measure(0, 0);
    c.measure(1, 1);
    c.x(0); // cannot influence any recorded bit
    EXPECT_FALSE(sim::hasMidCircuitOperations(c));
}

TEST(MidCircuitDetection, ResetBeforeTheLastMeasureIsMidCircuit)
{
    qc::Circuit c(2, 2);
    c.h(0);
    c.reset(1);
    c.measure(0, 0);
    c.measure(1, 1);
    EXPECT_TRUE(sim::hasMidCircuitOperations(c));
}

TEST(MidCircuitDetection, GateOnMeasuredQubitBeforeLastMeasureIsMid)
{
    qc::Circuit c(2, 2);
    c.h(0);
    c.measure(0, 0);
    c.x(0);
    c.measure(1, 1);
    EXPECT_TRUE(sim::hasMidCircuitOperations(c));
}

TEST(MidCircuitDetection, NoMeasurementMeansNoCollapse)
{
    qc::Circuit c(2);
    c.h(0);
    c.reset(0);
    c.x(0);
    EXPECT_FALSE(sim::hasMidCircuitOperations(c));
}

TEST(MidCircuitDetection, TrailingOpsKeepTheTerminalFastPath)
{
    // A trailing barrier must not change the plan: the terminal fast
    // path (ideal sampling) stays selected.
    qc::Circuit c = cliffordTerminal(3);
    c.barrier();
    sim::Plan plan = sim::planCircuit(c, sim::NoiseModel::ideal());
    EXPECT_EQ(plan.backend, sim::BackendKind::Statevector);
    EXPECT_EQ(plan.reason, "ideal");
    // And the runner executes it (idealDistribution alone would throw
    // on the trailing op; the runner strips to the terminal core).
    stats::Counts counts = runWith(c, sim::NoiseModel::ideal(),
                                   sim::BackendKind::Auto, 100, 1);
    EXPECT_EQ(counts.shots(), 100u);
}

// --- denseBytes overflow hardening -----------------------------------

TEST(DenseBytes, FortyQubitStatevectorSizeIsExact)
{
    // 2^40 amplitudes * 16 bytes = 2^44: representable, must be exact
    // (the old 1u<<bits arithmetic wrapped to 0 for widths >= 32 on
    // 32-bit size_t and overflowed the multiply well before 64).
    EXPECT_EQ(sim::denseBytes(40, 16, false),
              std::uint64_t(1) << 44);
}

TEST(DenseBytes, FortyQubitDensityMatrixSaturates)
{
    // 4^40 * 16 bytes cannot be represented: saturate, never wrap.
    EXPECT_EQ(sim::denseBytes(40, 16, true),
              std::numeric_limits<std::size_t>::max());
}

TEST(DenseBytes, ShiftWidthAtWordSizeSaturates)
{
    EXPECT_EQ(sim::denseBytes(64, 1, false),
              std::numeric_limits<std::size_t>::max());
    EXPECT_EQ(sim::denseBytes(200, 16, false),
              std::numeric_limits<std::size_t>::max());
}

TEST(DenseBytes, SaturatedSizeIsRejectedByTheBudget)
{
    EXPECT_THROW(sim::checkAllocationBudget(
                     "statevector(40 qubits)",
                     sim::denseBytes(40, 16, true)),
                 sim::ResourceExhausted);
}

// --- jobs-layer routing at widths beyond the DM cap ------------------

device::Device
noisy14QubitDevice()
{
    device::Device dev = device::perfectDevice(14);
    dev.name = "Noisy-14";
    dev.noise = mildNoise();
    return dev;
}

TEST(PlannerJobs, ForcedDensityMatrixBeyondTheCapIsTooLarge)
{
    core::HamiltonianSimulationBenchmark bench(14, 1);
    jobs::JobOptions options;
    options.harness.shots = 60;
    options.harness.repetitions = 1;
    options.harness.backend = sim::BackendKind::DensityMatrix;
    jobs::SweepContext ctx(options, jobs::FaultInjector());
    core::BenchmarkRun run =
        jobs::runJob(bench, noisy14QubitDevice(), options, ctx);
    EXPECT_EQ(run.status, core::RunStatus::TooLarge);
    EXPECT_EQ(run.cause, core::FailureCause::ResourceExhausted);
    EXPECT_TRUE(run.tooLarge);
    // The plan record survives the failure: it names the engine that
    // refused the cell.
    EXPECT_EQ(run.plan, "density-matrix:forced");
}

TEST(PlannerJobs, AutoCompletesTheSameCellThroughTrajectories)
{
    core::HamiltonianSimulationBenchmark bench(14, 1);
    jobs::JobOptions options;
    options.harness.shots = 60;
    options.harness.repetitions = 1;
    jobs::SweepContext ctx(options, jobs::FaultInjector());
    core::BenchmarkRun run =
        jobs::runJob(bench, noisy14QubitDevice(), options, ctx);
    EXPECT_EQ(run.status, core::RunStatus::Ok);
    EXPECT_EQ(run.plan, "trajectory:width>dm-cutoff");
    ASSERT_EQ(run.scores.size(), 1u);
    EXPECT_GE(run.scores[0], 0.0);
    EXPECT_LE(run.scores[0], 1.0);
}

// --- byte-identity across --jobs -------------------------------------

TEST(PlannerJobs, TrajectoryScoresAreByteIdenticalAtAnyJobs)
{
    core::HamiltonianSimulationBenchmark bench(4, 1);
    device::Device dev = device::ibmLagos();

    core::HarnessOptions serial;
    serial.shots = 120;
    serial.repetitions = 6;
    serial.jobs = 1;
    serial.backend = sim::BackendKind::Trajectory;
    core::BenchmarkRun a = core::runBenchmark(bench, dev, serial);

    core::HarnessOptions threaded = serial;
    threaded.jobs = 8;
    core::BenchmarkRun b = core::runBenchmark(bench, dev, threaded);

    ASSERT_EQ(a.status, core::RunStatus::Ok);
    ASSERT_EQ(a.scores.size(), b.scores.size());
    for (std::size_t i = 0; i < a.scores.size(); ++i)
        EXPECT_EQ(a.scores[i], b.scores[i]) << "repetition " << i;
    EXPECT_EQ(a.plan, b.plan);
    EXPECT_EQ(a.plan, "trajectory:forced");
}

// --- the plan record in caches, journals and manifests ---------------

TEST(PlanRecord, GridSerializationCarriesThePlanToken)
{
    bench::Fig2Grid grid;
    grid.deviceNames = {"devA"};
    bench::GridRow row;
    row.benchmark = "b1";
    row.runs.resize(1);
    row.runs[0].benchmark = "b1";
    row.runs[0].device = "devA";
    row.runs[0].plan = "stabilizer:clifford";
    grid.rows.push_back(row);
    const std::string text = bench::serializeGrid(grid);
    EXPECT_NE(text.find("smq-fig2-cache-v3"), std::string::npos);
    EXPECT_NE(text.find(" stabilizer:clifford "), std::string::npos);

    // An unplanned cell serializes the '-' placeholder so the record
    // stays a fixed-arity token stream.
    grid.rows[0].runs[0].plan.clear();
    EXPECT_NE(bench::serializeGrid(grid).find(" - "),
              std::string::npos);
}

TEST(PlanRecord, CheckpointCellRoundTripsThePlan)
{
    const fs::path dir =
        fs::temp_directory_path() / "smq_planner_ckpt_test";
    fs::remove_all(dir);

    report::CheckpointHeader header;
    header.tool = "test";
    header.config = "c";
    header.devices = {"devA"};
    header.benchmarks = {"b1"};

    report::CheckpointCell cell;
    cell.benchmark = "b1";
    cell.device = "devA";
    cell.plan = "trajectory:width>dm-cutoff";
    cell.scores = {0.5};

    report::CheckpointWriter writer(dir.string());
    ASSERT_TRUE(writer.writeHeader(header));
    ASSERT_TRUE(writer.appendCell(cell));

    report::CheckpointLoad load = report::loadCheckpoint(dir.string());
    ASSERT_TRUE(load.headerOk);
    ASSERT_EQ(load.cells.size(), 1u);
    EXPECT_EQ(load.cells[0].plan, "trajectory:width>dm-cutoff");
    fs::remove_all(dir);
}

TEST(PlanRecord, PrePlannerJournalCellsParseWithAnEmptyPlan)
{
    const fs::path dir =
        fs::temp_directory_path() / "smq_planner_ckpt_compat";
    fs::remove_all(dir);

    report::CheckpointHeader header;
    header.tool = "test";
    header.config = "c";
    header.devices = {"devA"};
    header.benchmarks = {"b1"};
    report::CheckpointWriter writer(dir.string());
    ASSERT_TRUE(writer.writeHeader(header));
    {
        // A cell record as written before the plan field existed.
        std::ofstream out(dir / report::kCheckpointFile, std::ios::app);
        out << "{\"schema\":\"smq-checkpoint-v1\",\"kind\":\"cell\","
               "\"benchmark\":\"b1\",\"device\":\"devA\","
               "\"final\":true,\"status\":0,\"cause\":0,"
               "\"planned\":1,\"attempts\":1,\"error_bar\":1,"
               "\"swaps\":0,\"phys_2q\":0,\"scores\":[0.5]}\n";
    }
    report::CheckpointLoad load = report::loadCheckpoint(dir.string());
    ASSERT_EQ(load.cells.size(), 1u);
    EXPECT_TRUE(load.cells[0].plan.empty());
    EXPECT_EQ(load.skippedLines, 0u);
    fs::remove_all(dir);
}

TEST(PlanRecord, RunManifestNamesTheRequestedBackend)
{
    core::HarnessOptions options;
    options.backend = sim::BackendKind::Trajectory;
    obs::RunManifest manifest =
        core::makeRunManifest("test", options);
    EXPECT_EQ(manifest.extra.at("sim.backend"), "trajectory");
}

TEST(PlanRecord, BenchmarkRunJoinsUniquePlanTokens)
{
    // ghz on a noisy device: every circuit plans identically, so the
    // summary is one token, not one per circuit. The plan describes
    // the *routed* circuit — AQT's native RXX/RY family puts the
    // logical GHZ Clifford off the tableau, so the small noisy cell
    // gets exact Kraus channels.
    core::GhzBenchmark bench(3);
    core::HarnessOptions options;
    options.shots = 50;
    options.repetitions = 1;
    core::BenchmarkRun run =
        core::runBenchmark(bench, device::aqtDevice(), options);
    ASSERT_EQ(run.status, core::RunStatus::Ok);
    EXPECT_EQ(run.plan, "density-matrix:exact-noise");
}

// --- serve: cache-key stability & plan provenance --------------------

TEST(PlannerServe, CacheKeyIsStableAcrossBackendAndPlanIsReported)
{
    serve::ServerOptions base;
    base.autoStart = false;
    serve::ServerOptions forced = base;
    forced.backend = sim::BackendKind::Trajectory;

    serve::Server auto_server(base);
    serve::Server forced_server(forced);

    const std::string submit =
        "{\"type\":\"submit\",\"benchmark\":\"ghz_3\","
        "\"device\":\"AQT\",\"shots\":50,\"repetitions\":2,"
        "\"wait\":true}";
    const obs::JsonValue a =
        obs::parseJson(auto_server.handle(submit));
    const obs::JsonValue b =
        obs::parseJson(forced_server.handle(submit));

    // The key hashes the request, not the engine: a daemon restarted
    // with another --backend addresses the same cache slot.
    EXPECT_EQ(a.at("cache_key").asString(),
              b.at("cache_key").asString());

    // But each reply names the engine that actually ran the job
    // (routed to AQT's non-Clifford native family, the small noisy
    // cell plans exact Kraus channels under Auto).
    EXPECT_EQ(a.at("result").at("plan").asString(),
              "density-matrix:exact-noise");
    EXPECT_EQ(b.at("result").at("plan").asString(),
              "trajectory:forced");
}

} // namespace
} // namespace smq
