/**
 * @file
 * Behavioural tests for the circuit library: each kernel is executed
 * noiselessly and checked against its algorithmic contract.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "qc/library.hpp"
#include "sim/runner.hpp"
#include "sim/statevector.hpp"

namespace smq::qc::library {
namespace {

stats::Counts
execute(const Circuit &circuit, std::uint64_t shots = 2000,
        std::uint64_t seed = 3)
{
    sim::RunOptions options;
    options.shots = shots;
    stats::Rng rng(seed);
    return sim::run(circuit, options, rng);
}

TEST(Library, BernsteinVaziraniRecoversSecret)
{
    std::vector<std::uint8_t> secret = {1, 0, 1, 1, 0, 1};
    stats::Counts counts = execute(bernsteinVazirani(secret), 100);
    EXPECT_EQ(counts.at("101101"), 100u);
}

TEST(Library, GroverAmplifiesMarkedString)
{
    std::vector<std::uint8_t> marked = {1, 0, 1, 1};
    stats::Counts counts = execute(grover(4, marked, 3), 1000);
    EXPECT_GT(counts.probability("1011"), 0.8);
}

class AdderSums : public ::testing::TestWithParam<std::pair<int, int>>
{
};

TEST_P(AdderSums, CuccaroComputesAPlusB)
{
    auto [a, b] = GetParam();
    const std::size_t n = 3;
    Circuit adder = cuccaroAdder(n);
    Circuit c(adder.numQubits(), n + 1);
    for (std::size_t i = 0; i < n; ++i) {
        if ((a >> i) & 1)
            c.x(static_cast<Qubit>(1 + 2 * i));
        if ((b >> i) & 1)
            c.x(static_cast<Qubit>(2 + 2 * i));
    }
    c.compose(adder);
    for (std::size_t i = 0; i < n; ++i)
        c.measure(static_cast<Qubit>(2 + 2 * i), i); // b register
    c.measure(static_cast<Qubit>(2 * n + 1), n);     // carry-out
    stats::Counts counts = execute(c, 50);

    int sum = a + b;
    std::string expected;
    for (std::size_t i = 0; i <= n; ++i)
        expected.push_back(((sum >> i) & 1) ? '1' : '0');
    EXPECT_EQ(counts.at(expected), 50u) << a << "+" << b;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, AdderSums,
    ::testing::Values(std::pair{0, 0}, std::pair{1, 1}, std::pair{3, 5},
                      std::pair{7, 7}, std::pair{4, 3}, std::pair{6, 5}));

TEST(Library, WStateHasUniformSingleExcitation)
{
    const std::size_t n = 4;
    sim::StateVector sv = sim::finalState(wState(n));
    for (std::size_t q = 0; q < n; ++q) {
        EXPECT_NEAR(std::norm(sv.amplitude(std::size_t{1} << q)),
                    1.0 / static_cast<double>(n), 1e-10);
    }
    EXPECT_NEAR(std::norm(sv.amplitude(0)), 0.0, 1e-10);
}

TEST(Library, HiddenShiftRecoversShift)
{
    std::vector<std::uint8_t> shift = {1, 0, 0, 1};
    stats::Counts counts = execute(hiddenShift(shift), 200);
    EXPECT_EQ(counts.at("1001"), 200u);
}

TEST(Library, QftOnZeroIsUniform)
{
    const std::size_t n = 3;
    Circuit c(n, n);
    c.compose(qft(n));
    c.measureAll();
    sim::StateVector sv = sim::finalState(qft(n));
    for (std::size_t s = 0; s < sv.dimension(); ++s)
        EXPECT_NEAR(std::norm(sv.amplitude(s)), 1.0 / 8.0, 1e-10);
}

TEST(Library, QftInverseIsIdentity)
{
    const std::size_t n = 4;
    Circuit c(n);
    c.x(1).x(3); // arbitrary basis state
    c.compose(qft(n));
    c.compose(inverseQft(n));
    sim::StateVector sv = sim::finalState(c);
    EXPECT_NEAR(std::norm(sv.amplitude(0b1010)), 1.0, 1e-10);
}

TEST(Library, IterativePhaseEstimationReadsPhaseBits)
{
    // theta = 2*pi * 0.011b = 2*pi * 3/8: three rounds read 1,1,0
    const double theta = 2.0 * M_PI * 3.0 / 8.0;
    stats::Counts counts = execute(iterativePhaseEstimation(3, theta), 300);
    // bits k=0..2 hold phase bits of 2^k theta / pi measurements; the
    // eigenstate qubit reads 1. Without the classically controlled
    // corrections only the top bit (k=2, fastest oscillation) is exact:
    // cp(4*theta) = cp(3pi) -> ancilla reads 1 deterministically.
    for (const auto &[bits, cnt] : counts.map())
        EXPECT_EQ(bits[2], '1') << bits;
    // the target stays in |1>
    for (const auto &[bits, cnt] : counts.map())
        EXPECT_EQ(bits[3], '1') << bits;
}

TEST(Library, GhzLadderMatchesExpectedState)
{
    sim::StateVector sv = sim::finalState(ghzLadder(5));
    EXPECT_NEAR(std::norm(sv.amplitude(0)), 0.5, 1e-10);
    EXPECT_NEAR(std::norm(sv.amplitude(31)), 0.5, 1e-10);
}

TEST(Library, SwapTestDetectsIdenticalStates)
{
    // equal (|0> vs |0>) registers: ancilla always reads 0
    stats::Counts counts = execute(swapTest(2), 500);
    EXPECT_EQ(counts.at("0"), 500u);
}

TEST(Library, SwapTestDetectsOrthogonalStates)
{
    // |0> vs |1>: P(ancilla = 1) = 1/2
    Circuit c(3, 1);
    c.x(2); // second register (qubit 2) to |1>
    c.compose(swapTest(1));
    stats::Counts counts = execute(c, 4000);
    EXPECT_NEAR(counts.probability("1"), 0.5, 0.03);
}

TEST(Library, RandomLayeredIsReproducible)
{
    stats::Rng a(5), b(5);
    Circuit ca = randomLayered(4, 3, a);
    Circuit cb = randomLayered(4, 3, b);
    EXPECT_EQ(ca, cb);
}

class QpeOnGridPhases : public ::testing::TestWithParam<int>
{
};

TEST_P(QpeOnGridPhases, ReadsExactPhaseDeterministically)
{
    int x = GetParam();
    double theta = 2.0 * M_PI * static_cast<double>(x) / 8.0;
    stats::Counts counts =
        execute(quantumPhaseEstimation(3, theta), 200);
    // counting register is big-endian: key char 0 = MSB
    std::string expected;
    for (int b = 2; b >= 0; --b)
        expected.push_back(((x >> b) & 1) ? '1' : '0');
    EXPECT_EQ(counts.at(expected), 200u) << "x=" << x;
}

INSTANTIATE_TEST_SUITE_P(Grid, QpeOnGridPhases,
                         ::testing::Values(0, 1, 2, 3, 5, 7));

TEST(Library, QpeOffGridPhaseConcentratesNearTruth)
{
    // theta = 2*pi*0.3: best 3-bit estimates are 2/8 and 3/8
    stats::Counts counts =
        execute(quantumPhaseEstimation(3, 2.0 * M_PI * 0.3), 4000);
    double near = counts.probability("010") + counts.probability("011");
    EXPECT_GT(near, 0.7);
}

TEST(Library, DeutschJozsaSeparatesConstantFromBalanced)
{
    stats::Counts constant = execute(deutschJozsa(5, false), 100);
    EXPECT_EQ(constant.at("00000"), 100u);
    stats::Counts balanced = execute(deutschJozsa(5, true), 100);
    EXPECT_EQ(balanced.at("00000"), 0u);
}

TEST(Library, ValidatesArguments)
{
    EXPECT_THROW(cuccaroAdder(0), std::invalid_argument);
    EXPECT_THROW(wState(0), std::invalid_argument);
    EXPECT_THROW(toffoliChain(2), std::invalid_argument);
    EXPECT_THROW(hiddenShift({1, 0, 1}), std::invalid_argument);
    EXPECT_THROW(grover(3, {1, 0}, 1), std::invalid_argument);
    EXPECT_THROW(iterativePhaseEstimation(0), std::invalid_argument);
}

} // namespace
} // namespace smq::qc::library
