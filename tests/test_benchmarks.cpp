/**
 * @file
 * Behavioural tests for the eight SupermarQ applications: noiseless
 * executions must score ~1, analytic reference values must hold, and
 * scores must degrade under noise.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/benchmarks/error_correction.hpp"
#include "core/benchmarks/ghz.hpp"
#include "core/benchmarks/hamiltonian_simulation.hpp"
#include "core/benchmarks/mermin_bell.hpp"
#include "core/benchmarks/qaoa.hpp"
#include "core/benchmarks/vqe.hpp"
#include "core/harness.hpp"
#include "sim/runner.hpp"
#include "sim/statevector.hpp"

namespace smq::core {
namespace {

TEST(Ghz, NoiselessScoreIsNearOne)
{
    GhzBenchmark bench(5);
    EXPECT_GT(noiselessScore(bench, 4000), 0.99);
}

TEST(Ghz, UniformNoiseFloorScoresLow)
{
    GhzBenchmark bench(3);
    stats::Counts uniform;
    for (int s = 0; s < 8; ++s) {
        std::string key;
        for (int b = 0; b < 3; ++b)
            key.push_back((s >> b) & 1 ? '1' : '0');
        uniform.add(key, 100);
    }
    // BC = 2 * sqrt(0.125 * 0.5) = 0.5 -> fidelity 0.25
    EXPECT_NEAR(bench.score({uniform}), 0.25, 1e-9);
}

TEST(Ghz, RejectsTinySizesAndWrongArity)
{
    EXPECT_THROW(GhzBenchmark(1), std::invalid_argument);
    GhzBenchmark bench(3);
    EXPECT_THROW(bench.score({}), std::invalid_argument);
}

class MerminExact : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(MerminExact, StatePreparationSaturatesQuantumBound)
{
    // exact check: <phi| M |phi> = 2^{n-1}, evaluated term by term on
    // the preparation state with the dense simulator.
    std::size_t n = GetParam();
    MerminBellBenchmark bench(n);

    qc::Circuit prep(n);
    prep.h(0);
    prep.s(0);
    for (std::size_t i = 0; i + 1 < n; ++i)
        prep.cx(static_cast<qc::Qubit>(i), static_cast<qc::Qubit>(i + 1));
    sim::StateVector state = sim::finalState(prep);
    double exact = 0.0;
    for (const auto &[coeff, term] : MerminBellBenchmark::merminTerms(n))
        exact += coeff * state.expectation(term).real();
    EXPECT_NEAR(exact, MerminBellBenchmark::quantumValue(n), 1e-9);

    // and the counts-based estimator through the synthesised shared
    // basis converges to the same value
    sim::RunOptions options;
    options.shots = 200000;
    stats::Rng rng(5);
    stats::Counts counts = sim::run(bench.circuits()[0], options, rng);
    double m = bench.merminExpectation(counts);
    EXPECT_NEAR(m, MerminBellBenchmark::quantumValue(n),
                0.05 * MerminBellBenchmark::quantumValue(n));
    EXPECT_GT(bench.score({counts}), 0.97);
}

INSTANTIATE_TEST_SUITE_P(Sizes, MerminExact, ::testing::Values(2, 3, 4, 5));

TEST(Mermin, TermCountAndCoefficients)
{
    auto terms = MerminBellBenchmark::merminTerms(3);
    EXPECT_EQ(terms.size(), 4u);
    // n=3: XXY, XYX, YXX with +1; YYY with -1
    int plus = 0, minus = 0;
    for (const auto &[coeff, p] : terms)
        (coeff > 0 ? plus : minus)++;
    EXPECT_EQ(plus, 3);
    EXPECT_EQ(minus, 1);
}

TEST(Mermin, ClassicalBoundBelowQuantumValue)
{
    for (std::size_t n : {2, 3, 4, 5, 8}) {
        EXPECT_LT(MerminBellBenchmark::classicalBound(n),
                  MerminBellBenchmark::quantumValue(n) + 1e-9);
    }
    EXPECT_DOUBLE_EQ(MerminBellBenchmark::classicalBound(5), 4.0);
    EXPECT_DOUBLE_EQ(MerminBellBenchmark::quantumValue(5), 16.0);
}

TEST(Mermin, RejectsOutOfRangeSizes)
{
    EXPECT_THROW(MerminBellBenchmark(1), std::invalid_argument);
    EXPECT_THROW(MerminBellBenchmark(13), std::invalid_argument);
}

TEST(BitCode, IdealOutputMatchesNoiselessExecution)
{
    BitCodeBenchmark bench({1, 0, 1}, 2);
    sim::RunOptions options;
    options.shots = 500;
    stats::Rng rng(3);
    stats::Counts counts = sim::run(bench.circuits()[0], options, rng);
    // deterministic ideal: a single key
    auto ideal = bench.idealOutput();
    ASSERT_EQ(ideal.map().size(), 1u);
    const std::string &key = ideal.map().begin()->first;
    EXPECT_EQ(counts.at(key), 500u);
    EXPECT_NEAR(bench.score({counts}), 1.0, 1e-9);
}

TEST(BitCode, SyndromesAreAdjacentParities)
{
    BitCodeBenchmark bench({1, 0, 1}, 1);
    // syndromes: 1^0=1, 0^1=1; data 101 -> key "11" + "101"
    EXPECT_NEAR(bench.idealOutput().probability("11101"), 1.0, 1e-12);
}

TEST(PhaseCode, IdealOutputMatchesNoiselessExecution)
{
    PhaseCodeBenchmark bench({0, 1, 0}, 1);
    sim::RunOptions options;
    options.shots = 6000;
    stats::Rng rng(11);
    stats::Counts counts = sim::run(bench.circuits()[0], options, rng);
    EXPECT_GT(bench.score({counts}), 0.98);
    // syndrome bits deterministic: +- -> 1, -+ -> 1
    for (const auto &[bits, cnt] : counts.map()) {
        EXPECT_EQ(bits[0], '1') << bits;
        EXPECT_EQ(bits[1], '1') << bits;
    }
}

TEST(PhaseCode, DataBitsAreUniform)
{
    PhaseCodeBenchmark bench({0, 0}, 1);
    sim::RunOptions options;
    options.shots = 8000;
    stats::Rng rng(19);
    stats::Counts counts = sim::run(bench.circuits()[0], options, rng);
    stats::Counts data = counts.marginal({1, 2});
    for (const char *key : {"00", "01", "10", "11"})
        EXPECT_NEAR(data.probability(key), 0.25, 0.03);
}

TEST(ErrorCorrection, ValidatesParameters)
{
    EXPECT_THROW(BitCodeBenchmark({1}, 1), std::invalid_argument);
    EXPECT_THROW(BitCodeBenchmark({1, 0}, 0), std::invalid_argument);
    EXPECT_THROW(PhaseCodeBenchmark({0}, 2), std::invalid_argument);
}

TEST(Qaoa, VanillaNoiselessScoreIsNearOne)
{
    QaoaVanillaBenchmark bench(5, 7);
    EXPECT_NE(bench.idealEnergy(), 0.0);
    EXPECT_GT(noiselessScore(bench, 20000), 0.95);
}

TEST(Qaoa, SwapNetworkNoiselessScoreIsNearOne)
{
    QaoaSwapBenchmark bench(5, 7);
    EXPECT_GT(noiselessScore(bench, 20000), 0.95);
}

TEST(Qaoa, SwapNetworkMatchesVanillaLandscape)
{
    // same SK instance: both ansatzes realise the same unitary up to
    // qubit relabelling, so the optimised ideal energies must agree.
    QaoaVanillaBenchmark vanilla(4, 9);
    QaoaSwapBenchmark swapped(4, 9);
    EXPECT_NEAR(vanilla.idealEnergy(), swapped.idealEnergy(), 0.05);
}

TEST(Qaoa, SwapNetworkCoversAllPairsOnce)
{
    QaoaSwapBenchmark bench(5, 1);
    qc::Circuit c = bench.circuits()[0];
    // 5 qubits -> C(5,2) = 10 fused blocks of 3 CX each = 30 CX
    std::size_t cx = 0;
    for (const qc::Gate &g : c.gates())
        cx += g.type == qc::GateType::CX;
    EXPECT_EQ(cx, 30u);
    // final permutation is the order reversal
    EXPECT_EQ(bench.finalPermutation(),
              (std::vector<std::size_t>{4, 3, 2, 1, 0}));
}

TEST(Qaoa, SkModelIsSymmetricAndSigned)
{
    SkModel model = SkModel::random(6, 2);
    for (std::size_t i = 0; i < 6; ++i) {
        for (std::size_t j = 0; j < 6; ++j) {
            if (i == j)
                continue;
            double w = model.weight(i, j);
            EXPECT_TRUE(w == 1.0 || w == -1.0);
            EXPECT_EQ(w, model.weight(j, i));
        }
    }
    EXPECT_THROW(model.weight(0, 0), std::out_of_range);
    // energy of a bitstring equals the brute-force sum
    EXPECT_NEAR(model.energyOfBitstring("000000"),
                [&] {
                    double e = 0.0;
                    for (std::size_t i = 0; i < 6; ++i)
                        for (std::size_t j = i + 1; j < 6; ++j)
                            e += model.weight(i, j);
                    return e;
                }(),
                1e-12);
}

TEST(Qaoa, DeeperLevelsReachLowerEnergy)
{
    // p = 2 must do at least as well as p = 1 on the same instance
    QaoaVanillaBenchmark p1(5, 21, true, 1);
    QaoaVanillaBenchmark p2(5, 21, true, 2);
    EXPECT_LE(p2.idealEnergy(), p1.idealEnergy() + 1e-9);
    EXPECT_NE(p1.name(), p2.name());
    EXPECT_GT(noiselessScore(p2, 20000), 0.93);
}

TEST(Qaoa, SwapNetworkLevelsTrackPermutation)
{
    // two levels of the network restore the original qubit order
    QaoaSwapBenchmark p2(5, 3, /*optimize=*/false, 2);
    EXPECT_EQ(p2.finalPermutation(),
              (std::vector<std::size_t>{0, 1, 2, 3, 4}));
    QaoaSwapBenchmark p1(5, 3, /*optimize=*/false, 1);
    EXPECT_EQ(p1.finalPermutation(),
              (std::vector<std::size_t>{4, 3, 2, 1, 0}));
}

TEST(Qaoa, RejectsZeroLevels)
{
    EXPECT_THROW(QaoaVanillaBenchmark(4, 1, true, 0),
                 std::invalid_argument);
}

TEST(Vqe, NoiselessScoreIsNearOne)
{
    VqeBenchmark bench(4, 1);
    EXPECT_LT(bench.idealEnergy(), 0.0);
    EXPECT_GT(noiselessScore(bench, 40000), 0.95);
}

TEST(Vqe, RespectsVariationalBound)
{
    // exact TFIM ground energy by dense diagonalisation (power
    // iteration on shifted H) for n = 3
    const std::size_t n = 3;
    const std::size_t dim = 1u << n;
    std::vector<std::vector<double>> h(dim, std::vector<double>(dim, 0.0));
    for (std::size_t s = 0; s < dim; ++s) {
        for (std::size_t q = 0; q + 1 < n; ++q) {
            double zi = (s >> q) & 1 ? -1.0 : 1.0;
            double zj = (s >> (q + 1)) & 1 ? -1.0 : 1.0;
            h[s][s] -= zi * zj;
        }
        for (std::size_t q = 0; q < n; ++q)
            h[s ^ (1u << q)][s] -= 1.0; // -X_q
    }
    // power iteration on (c I - H)
    std::vector<double> v(dim, 1.0);
    const double shift = 10.0;
    for (int it = 0; it < 3000; ++it) {
        std::vector<double> w(dim, 0.0);
        for (std::size_t r = 0; r < dim; ++r) {
            for (std::size_t c = 0; c < dim; ++c)
                w[r] += (r == c ? shift : 0.0) * v[c] - h[r][c] * v[c];
        }
        double norm = 0.0;
        for (double x : w)
            norm += x * x;
        norm = std::sqrt(norm);
        for (std::size_t r = 0; r < dim; ++r)
            v[r] = w[r] / norm;
    }
    double e0 = 0.0;
    for (std::size_t r = 0; r < dim; ++r) {
        double hv = 0.0;
        for (std::size_t c = 0; c < dim; ++c)
            hv += h[r][c] * v[c];
        e0 += v[r] * hv;
    }

    VqeBenchmark bench(n, 2);
    EXPECT_GE(bench.idealEnergy(), e0 - 1e-9);  // variational bound
    EXPECT_LT(bench.idealEnergy(), e0 * 0.85);  // and reasonably close
}

TEST(Vqe, TwoCircuitsAndScoreArity)
{
    VqeBenchmark bench(3, 1);
    auto circuits = bench.circuits();
    ASSERT_EQ(circuits.size(), 2u);
    EXPECT_EQ(circuits[0].measureCount(), 3u);
    // X-basis circuit carries the extra Hadamard layer
    EXPECT_GT(circuits[1].opCount(), circuits[0].opCount());
    EXPECT_THROW(bench.score({stats::Counts{}}), std::invalid_argument);
}

TEST(HamiltonianSimulation, NoiselessScoreIsNearOne)
{
    HamiltonianSimulationBenchmark bench(4, 3);
    double m = bench.idealMagnetization();
    EXPECT_GE(m, -1.0);
    EXPECT_LE(m, 1.0);
    EXPECT_GT(noiselessScore(bench, 20000), 0.98);
}

TEST(HamiltonianSimulation, DriveActuallyMovesMagnetization)
{
    HamiltonianSimulationBenchmark bench(5, 4);
    EXPECT_LT(bench.idealMagnetization(), 0.999);
}

TEST(HamiltonianSimulation, MoreTrotterStepsDeepenCircuit)
{
    HamiltonianSimulationBenchmark a(4, 2), b(4, 6);
    EXPECT_GT(b.circuits()[0].size(), a.circuits()[0].size());
}

TEST(Benchmarks, NoiseDegradesGhzScore)
{
    GhzBenchmark bench(5);
    qc::Circuit circuit = bench.circuits()[0];

    sim::RunOptions noisy;
    noisy.shots = 3000;
    noisy.noise.enabled = true;
    noisy.noise.p1 = 0.01;
    noisy.noise.p2 = 0.03;
    noisy.noise.pMeas = 0.03;
    stats::Rng rng(17);
    stats::Counts counts = sim::run(circuit, noisy, rng);
    double noisy_score = bench.score({counts});
    double clean_score = noiselessScore(bench, 3000);
    EXPECT_LT(noisy_score, clean_score - 0.02);
}

TEST(Benchmarks, ArtifactStyleNoiseSweepIsMonotonic)
{
    // the HPCA artifact's demonstration: score decreases as the noise
    // scale increases
    GhzBenchmark bench(4);
    qc::Circuit circuit = bench.circuits()[0];
    sim::NoiseModel base;
    base.enabled = true;
    base.p1 = 0.002;
    base.p2 = 0.01;
    base.pMeas = 0.01;

    double last = 1.1;
    for (double scale : {1.0, 4.0, 16.0}) {
        sim::RunOptions options;
        options.shots = 6000;
        options.noise = base.scaled(scale);
        stats::Rng rng(23);
        double score = bench.score({sim::run(circuit, options, rng)});
        EXPECT_LT(score, last);
        last = score;
    }
}

} // namespace
} // namespace smq::core
