/**
 * @file
 * Tests for the coverage metric (Table I): the synthetic suite's exact
 * volume, suite ordering, and rank reporting for degenerate suites.
 */

#include <gtest/gtest.h>

#include "core/coverage.hpp"
#include "core/suites.hpp"

namespace smq::core {
namespace {

TEST(Coverage, SyntheticSuiteVolumeIsExactlyInverse720)
{
    auto points = syntheticFeaturePoints();
    ASSERT_EQ(points.size(), 7u);
    CoverageResult result = computeCoverage("Synthetic", points);
    EXPECT_EQ(result.affineRank, 6u);
    EXPECT_NEAR(result.volume, 1.0 / 720.0, 1e-12);
}

TEST(Coverage, SupermarqBeatsSynthetic)
{
    CoverageResult supermarq =
        computeCoverage("SupermarQ", supermarqFeaturePoints());
    CoverageResult synthetic =
        computeCoverage("Synthetic", syntheticFeaturePoints());
    EXPECT_EQ(supermarq.affineRank, 6u);
    EXPECT_GT(supermarq.volume, synthetic.volume);
}

TEST(Coverage, SmallTerminalMeasurementSuitesAreDegenerate)
{
    // TriQ and PPL+2020 kernels never measure mid-circuit: their
    // feature vectors lie in the measurement = 0 hyperplane, so the
    // 6-D hull volume is exactly zero (the paper's 4.1e-14 / 1.0e-15
    // are numerical jitter from qhull's joggle on the same degenerate
    // inputs).
    CoverageResult triq = computeCoverage("TriQ", triqProxyFeaturePoints());
    EXPECT_EQ(triq.volume, 0.0);
    EXPECT_LE(triq.affineRank, 5u);
    EXPECT_EQ(triq.numCircuits, 12u);

    CoverageResult ppl =
        computeCoverage("PPL+2020", pplProxyFeaturePoints());
    EXPECT_EQ(ppl.volume, 0.0);
    EXPECT_EQ(ppl.numCircuits, 9u);
}

TEST(Coverage, CbgFamilyIsThinButFullRank)
{
    CoverageResult cbg =
        computeCoverage("CBG2021", cbgProxyFeaturePoints(200));
    EXPECT_EQ(cbg.numCircuits, 200u);
    EXPECT_EQ(cbg.affineRank, 6u);
    EXPECT_GT(cbg.volume, 0.0);
    // orders of magnitude below the application suites
    CoverageResult synthetic =
        computeCoverage("Synthetic", syntheticFeaturePoints());
    EXPECT_LT(cbg.volume, 0.1 * synthetic.volume);
}

TEST(Coverage, QasmbenchProxyIsCompetitive)
{
    CoverageResult qasmbench =
        computeCoverage("QASMBench", qasmbenchProxyFeaturePoints());
    CoverageResult synthetic =
        computeCoverage("Synthetic", syntheticFeaturePoints());
    EXPECT_EQ(qasmbench.affineRank, 6u);
    EXPECT_GT(qasmbench.volume, 0.2 * synthetic.volume);
}

TEST(Coverage, TableOneOrderingHolds)
{
    // SupermarQ > Synthetic > CBG2021 > TriQ = PPL+2020 = 0
    double supermarq =
        computeCoverage("s", supermarqFeaturePoints()).volume;
    double synthetic =
        computeCoverage("y", syntheticFeaturePoints()).volume;
    double cbg = computeCoverage("c", cbgProxyFeaturePoints(200)).volume;
    double triq = computeCoverage("t", triqProxyFeaturePoints()).volume;
    EXPECT_GT(supermarq, synthetic);
    EXPECT_GT(synthetic, cbg);
    EXPECT_GT(cbg, triq);
}

TEST(Coverage, FeaturesOfCircuitsMatchesDirectComputation)
{
    qc::Circuit c(2, 2);
    c.h(0).cx(0, 1).measureAll();
    auto features = featuresOfCircuits({c});
    ASSERT_EQ(features.size(), 1u);
    FeatureVector direct = computeFeatures(c);
    EXPECT_EQ(features[0].asArray(), direct.asArray());
}

} // namespace
} // namespace smq::core
