/**
 * @file
 * Tests for the execution harness: generate -> transpile -> execute ->
 * score against device models, "too large" handling, and the
 * repetition statistics Fig. 2 is built from.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/benchmarks/error_correction.hpp"
#include "core/benchmarks/ghz.hpp"
#include "core/benchmarks/hamiltonian_simulation.hpp"
#include "core/benchmarks/mermin_bell.hpp"
#include "core/benchmarks/qaoa.hpp"
#include "core/benchmarks/vqe.hpp"
#include "core/harness.hpp"

namespace smq::core {
namespace {

HarnessOptions
quickOptions()
{
    HarnessOptions options;
    options.shots = 1500;
    options.repetitions = 2;
    return options;
}

TEST(Harness, AllBenchmarksScoreNearOneOnPerfectDevice)
{
    device::Device perfect = device::perfectDevice(8);
    std::vector<BenchmarkPtr> suite;
    suite.push_back(std::make_unique<GhzBenchmark>(4));
    suite.push_back(std::make_unique<MerminBellBenchmark>(3));
    suite.push_back(std::make_unique<BitCodeBenchmark>(
        BitCodeBenchmark::alternating(3, 1)));
    suite.push_back(std::make_unique<PhaseCodeBenchmark>(
        PhaseCodeBenchmark::alternating(3, 1)));
    suite.push_back(std::make_unique<QaoaVanillaBenchmark>(4, 3));
    suite.push_back(std::make_unique<QaoaSwapBenchmark>(4, 3));
    suite.push_back(std::make_unique<VqeBenchmark>(4, 1));
    suite.push_back(
        std::make_unique<HamiltonianSimulationBenchmark>(4, 2));

    HarnessOptions options = quickOptions();
    options.shots = 6000;
    for (const BenchmarkPtr &bench : suite) {
        BenchmarkRun run = runBenchmark(*bench, perfect, options);
        ASSERT_FALSE(run.tooLarge) << bench->name();
        EXPECT_GT(run.summary.mean, 0.93) << bench->name();
        EXPECT_EQ(run.scores.size(), options.repetitions);
    }
}

TEST(Harness, TooLargeBenchmarksAreFlagged)
{
    // 7-qubit GHZ cannot fit the 4-qubit AQT device
    GhzBenchmark bench(7);
    BenchmarkRun run = runBenchmark(bench, device::aqtDevice());
    EXPECT_TRUE(run.tooLarge);
    EXPECT_EQ(run.status, RunStatus::TooLarge);
    EXPECT_EQ(run.cause, FailureCause::RegisterTooWide);
    EXPECT_TRUE(run.scores.empty());
}

TEST(Harness, SimulatorBudgetAlsoFlagsTooLarge)
{
    GhzBenchmark bench(5);
    device::Device dev = device::perfectDevice(8);
    HarnessOptions options = quickOptions();
    options.maxSimQubits = 4;
    BenchmarkRun run = runBenchmark(bench, dev, options);
    EXPECT_TRUE(run.tooLarge);
    EXPECT_EQ(run.status, RunStatus::TooLarge);
    EXPECT_EQ(run.cause, FailureCause::SimulatorLimit);
}

TEST(Harness, TooLargeBailoutReportsNoPartialRoutingCosts)
{
    // VQE has two circuits; a simulator budget below the register size
    // aborts mid-circuit-list. The routing counters must not report a
    // partial sum over the prefix that happened to be transpiled.
    VqeBenchmark bench(5, 1);
    HarnessOptions options = quickOptions();
    options.maxSimQubits = 4;
    BenchmarkRun run =
        runBenchmark(bench, device::perfectDevice(8), options);
    ASSERT_TRUE(run.tooLarge);
    EXPECT_EQ(run.physicalTwoQubitGates, 0u);
    EXPECT_EQ(run.swapsInserted, 0u);
}

TEST(Harness, CompletedRunsCarryOkStatus)
{
    GhzBenchmark bench(3);
    BenchmarkRun run =
        runBenchmark(bench, device::ibmLagos(), quickOptions());
    EXPECT_EQ(run.status, RunStatus::Ok);
    EXPECT_EQ(run.cause, FailureCause::None);
    EXPECT_EQ(run.plannedRepetitions, run.scores.size());
    EXPECT_DOUBLE_EQ(run.errorBarScale, 1.0);
}

TEST(Harness, RunRejectsDegenerateInputs)
{
    GhzBenchmark bench(3);
    qc::Circuit circuit = bench.circuits().front();
    stats::Rng rng(1);

    sim::RunOptions no_shots;
    no_shots.shots = 0;
    EXPECT_THROW(sim::run(circuit, no_shots, rng),
                 std::invalid_argument);

    qc::Circuit unmeasured(2);
    unmeasured.h(0).cx(0, 1);
    EXPECT_THROW(sim::run(unmeasured, sim::RunOptions{}, rng),
                 std::invalid_argument);
}

TEST(Harness, NoiselessScoreGuardsItsPreconditions)
{
    GhzBenchmark small(3);
    EXPECT_THROW(noiselessScore(small, 0), std::invalid_argument);

    // A 30-qubit statevector would exhaust memory; refuse up front.
    GhzBenchmark huge(30);
    EXPECT_THROW(noiselessScore(huge, 100), std::invalid_argument);
    EXPECT_THROW(noiselessScore(small, 100, 7, /*maxSimQubits=*/2),
                 std::invalid_argument);
}

TEST(Harness, NoisyDeviceScoresBelowPerfect)
{
    GhzBenchmark bench(5);
    HarnessOptions options = quickOptions();
    options.shots = 3000;
    BenchmarkRun perfect =
        runBenchmark(bench, device::perfectDevice(7), options);
    BenchmarkRun noisy =
        runBenchmark(bench, device::ibmToronto(), options);
    ASSERT_FALSE(noisy.tooLarge);
    EXPECT_LT(noisy.summary.mean, perfect.summary.mean);
}

TEST(Harness, RoutingCostsAreReported)
{
    // the vanilla QAOA's complete graph cannot match the AQT line:
    // swaps must appear
    QaoaVanillaBenchmark bench(4, 5);
    BenchmarkRun run = runBenchmark(bench, device::aqtDevice(),
                                    quickOptions());
    ASSERT_FALSE(run.tooLarge);
    EXPECT_GT(run.swapsInserted, 0u);
    EXPECT_GT(run.physicalTwoQubitGates, 6u);
}

TEST(Harness, ConnectivityMatchNeedsNoSwapsOnLine)
{
    // the ZZ-SWAP network is nearest-neighbour by construction
    QaoaSwapBenchmark bench(4, 5);
    BenchmarkRun run = runBenchmark(bench, device::aqtDevice(),
                                    quickOptions());
    ASSERT_FALSE(run.tooLarge);
    EXPECT_EQ(run.swapsInserted, 0u);
}

TEST(Harness, RepetitionsAreIndependentSamples)
{
    GhzBenchmark bench(4);
    HarnessOptions options;
    options.shots = 400;
    options.repetitions = 5;
    BenchmarkRun run =
        runBenchmark(bench, device::ibmCasablanca(), options);
    ASSERT_EQ(run.scores.size(), 5u);
    // under shot noise the repetition scores should not all coincide
    bool all_equal = true;
    for (double s : run.scores)
        all_equal &= s == run.scores[0];
    EXPECT_FALSE(all_equal);
    EXPECT_GE(run.summary.stddev, 0.0);
}

TEST(Harness, DeterministicGivenSeed)
{
    GhzBenchmark bench(3);
    HarnessOptions options = quickOptions();
    BenchmarkRun a = runBenchmark(bench, device::ibmLagos(), options);
    BenchmarkRun b = runBenchmark(bench, device::ibmLagos(), options);
    EXPECT_EQ(a.scores, b.scores);
}

} // namespace
} // namespace smq::core
