/**
 * @file
 * Observability-layer tests (`ctest -L obs`).
 *
 * Four properties carry the layer:
 *  1. Metric aggregation is exact and order-independent: the snapshot
 *     is a pure function of the multiset of recorded values, however
 *     many threads recorded them and in whatever order.
 *  2. Instrumentation never perturbs results: a Fig. 2 grid computed
 *     with metrics + tracing enabled at any --jobs value is
 *     byte-identical to the untraced serial grid.
 *  3. The emitted artifacts agree with each other: trace.json parses
 *     as valid Chrome-trace JSON, events.jsonl line-for-line matches
 *     it, and the manifest's stage rollups match the event log.
 *  4. The name registry is closed: every metric name a real run emits
 *     appears in docs/OBSERVABILITY.md's registry table.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <random>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/benchmarks/ghz.hpp"
#include "core/harness.hpp"
#include "device/device.hpp"
#include "fig_data.hpp"
#include "obs/exposition.hpp"
#include "obs/json.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/names.hpp"
#include "obs/progress.hpp"
#include "obs/trace.hpp"
#include "obs/trace_context.hpp"
#include "report/history.hpp"
#include "sim/density_matrix.hpp"

using namespace smq;

namespace {

/** Fresh, enabled registry per test; off again afterwards. */
class ObsTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        obs::resetMetrics();
        obs::setMetricsEnabled(true);
    }
    void TearDown() override
    {
        obs::setMetricsEnabled(false);
        obs::resetMetrics();
    }
};

std::filesystem::path
freshDir(const std::string &name)
{
    std::filesystem::path dir =
        std::filesystem::path(::testing::TempDir()) / name;
    std::filesystem::remove_all(dir);
    return dir;
}

std::string
slurp(const std::filesystem::path &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in) << "cannot open " << path;
    std::ostringstream text;
    text << in.rdbuf();
    return text.str();
}

bench::Scale
miniScale()
{
    bench::Scale scale;
    scale.defaultShots = 30;
    scale.repetitions = 2;
    scale.useCache = false;
    return scale;
}

} // namespace

// ---------------------------------------------------------------------
// Counters / gauges
// ---------------------------------------------------------------------

TEST_F(ObsTest, CounterSumsConcurrentAddsExactly)
{
    obs::Counter &counter = obs::counter("test.obs.counter");
    constexpr int kThreads = 8;
    constexpr std::uint64_t kAddsPerThread = 20000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&counter] {
            for (std::uint64_t i = 0; i < kAddsPerThread; ++i)
                counter.add();
        });
    }
    for (std::thread &t : threads)
        t.join();
    EXPECT_EQ(counter.value(), kThreads * kAddsPerThread);
}

TEST_F(ObsTest, CounterDisabledIsNoOp)
{
    obs::Counter &counter = obs::counter("test.obs.disabled");
    obs::setMetricsEnabled(false);
    counter.add(1000);
    EXPECT_EQ(counter.value(), 0u);
    obs::setMetricsEnabled(true);
    counter.add(3);
    EXPECT_EQ(counter.value(), 3u);
}

TEST_F(ObsTest, LookupReturnsStableHandleAcrossReset)
{
    obs::Counter &a = obs::counter("test.obs.stable");
    a.add(7);
    obs::resetMetrics();
    obs::Counter &b = obs::counter("test.obs.stable");
    EXPECT_EQ(&a, &b);
    EXPECT_EQ(b.value(), 0u) << "reset must zero, not unregister";
}

TEST_F(ObsTest, GaugeLastWriteWins)
{
    obs::Gauge &gauge = obs::gauge("test.obs.gauge");
    gauge.set(4);
    gauge.set(9);
    EXPECT_EQ(gauge.value(), 9);
    obs::setMetricsEnabled(false);
    gauge.set(1);
    EXPECT_EQ(gauge.value(), 9);
}

// ---------------------------------------------------------------------
// Histograms
// ---------------------------------------------------------------------

TEST_F(ObsTest, HistogramSnapshotIsOrderIndependent)
{
    // The same multiset of values, recorded (a) serially in order and
    // (b) shuffled across eight threads, must yield identical
    // snapshots: count, sum, min, max and every bucket.
    std::vector<std::uint64_t> values;
    std::mt19937_64 gen(42);
    for (int i = 0; i < 50000; ++i)
        values.push_back(gen() % 1000000);
    values.push_back(0); // exercise the zero bucket

    obs::Histogram &serial = obs::histogram("test.obs.hist.serial");
    for (std::uint64_t v : values)
        serial.record(v);

    std::vector<std::uint64_t> shuffled = values;
    std::shuffle(shuffled.begin(), shuffled.end(), gen);
    obs::Histogram &threaded = obs::histogram("test.obs.hist.threaded");
    constexpr std::size_t kThreads = 8;
    std::vector<std::thread> threads;
    for (std::size_t t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            for (std::size_t i = t; i < shuffled.size(); i += kThreads)
                threaded.record(shuffled[i]);
        });
    }
    for (std::thread &t : threads)
        t.join();

    obs::HistogramSnapshot a = serial.snapshot();
    obs::HistogramSnapshot b = threaded.snapshot();
    EXPECT_EQ(a.count, b.count);
    EXPECT_EQ(a.sum, b.sum);
    EXPECT_EQ(a.min, b.min);
    EXPECT_EQ(a.max, b.max);
    for (std::size_t i = 0; i < a.buckets.size(); ++i)
        EXPECT_EQ(a.buckets[i], b.buckets[i]) << "bucket " << i;
}

TEST_F(ObsTest, HistogramBucketsFollowLog2)
{
    obs::Histogram &hist = obs::histogram("test.obs.hist.log2");
    hist.record(0);  // bucket 0
    hist.record(1);  // bucket 1 (bit_width 1)
    hist.record(2);  // bucket 2
    hist.record(3);  // bucket 2
    hist.record(4);  // bucket 3
    obs::HistogramSnapshot snap = hist.snapshot();
    EXPECT_EQ(snap.count, 5u);
    EXPECT_EQ(snap.sum, 10u);
    EXPECT_EQ(snap.min, 0u);
    EXPECT_EQ(snap.max, 4u);
    EXPECT_EQ(snap.buckets[0], 1u);
    EXPECT_EQ(snap.buckets[1], 1u);
    EXPECT_EQ(snap.buckets[2], 2u);
    EXPECT_EQ(snap.buckets[3], 1u);
    EXPECT_DOUBLE_EQ(snap.mean(), 2.0);
}

// ---------------------------------------------------------------------
// Quantiles and Prometheus exposition
// ---------------------------------------------------------------------

TEST_F(ObsTest, HistogramQuantileInterpolatesWithinBucketsAndClamps)
{
    obs::Histogram &empty = obs::histogram("test.obs.quantile.empty");
    EXPECT_DOUBLE_EQ(obs::histogramQuantile(empty.snapshot(), 0.5), 0.0);

    // A single observation is every quantile.
    obs::Histogram &one = obs::histogram("test.obs.quantile.one");
    one.record(1000);
    for (double q : {0.0, 0.5, 0.9, 0.99, 1.0})
        EXPECT_DOUBLE_EQ(obs::histogramQuantile(one.snapshot(), q),
                         1000.0);

    // 1..1000 uniformly: exact at the clamped ends, inside the
    // covering log2 bucket elsewhere, monotone in q.
    obs::Histogram &wide = obs::histogram("test.obs.quantile.wide");
    for (std::uint64_t v = 1; v <= 1000; ++v)
        wide.record(v);
    obs::HistogramSnapshot snap = wide.snapshot();
    EXPECT_DOUBLE_EQ(obs::histogramQuantile(snap, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(obs::histogramQuantile(snap, 1.0), 1000.0);
    const double p50 = obs::histogramQuantile(snap, 0.5);
    const double p90 = obs::histogramQuantile(snap, 0.9);
    const double p99 = obs::histogramQuantile(snap, 0.99);
    EXPECT_LE(p50, p90);
    EXPECT_LE(p90, p99);
    // True p50 = 500.5 lands in the [256, 511] bucket; p99 = 990 in
    // [512, 1023], clamped to the recorded max of 1000.
    EXPECT_GE(p50, 256.0);
    EXPECT_LE(p50, 512.0);
    EXPECT_GE(p99, 512.0);
    EXPECT_LE(p99, 1000.0);
    // Pure function of the snapshot.
    EXPECT_DOUBLE_EQ(obs::histogramQuantile(snap, 0.9), p90);
}

TEST_F(ObsTest, PrometheusRenderIsSanitizedTypedAndDeterministic)
{
    obs::counter("test.prom.counter").add(5);
    obs::gauge("test.prom.gauge").set(-3);
    obs::Histogram &hist = obs::histogram("test.prom.lat.ns");
    for (std::uint64_t v : {10u, 20u, 30u, 40u})
        hist.record(v);

    const std::string text = obs::renderPrometheusSnapshot();
    const auto has = [&text](const char *needle) {
        return text.find(needle) != std::string::npos;
    };
    // Names carry the smq_ prefix, dots sanitized to underscores.
    EXPECT_TRUE(has("# TYPE smq_test_prom_counter counter")) << text;
    EXPECT_TRUE(has("smq_test_prom_counter 5"));
    EXPECT_TRUE(has("# TYPE smq_test_prom_gauge gauge"));
    EXPECT_TRUE(has("smq_test_prom_gauge -3"));
    // Histograms render as summaries: three quantiles + sum/count,
    // quantiles from the same obs::histogramQuantile stats replies use.
    EXPECT_TRUE(has("# TYPE smq_test_prom_lat_ns summary"));
    EXPECT_TRUE(has("smq_test_prom_lat_ns{quantile=\"0.5\"}"));
    EXPECT_TRUE(has("smq_test_prom_lat_ns{quantile=\"0.9\"}"));
    EXPECT_TRUE(has("smq_test_prom_lat_ns{quantile=\"0.99\"}"));
    EXPECT_TRUE(has("smq_test_prom_lat_ns_sum 100"));
    EXPECT_TRUE(has("smq_test_prom_lat_ns_count 4"));
    // No raw dotted name escapes sanitization...
    EXPECT_FALSE(has("test.prom"));
    // ...and rendering is a pure function of the registry state.
    EXPECT_EQ(text, obs::renderPrometheusSnapshot());
}

TEST_F(ObsTest, ResourceProbesAnswerAndLandInManifests)
{
    EXPECT_GT(obs::peakRssBytes(), 0u);
    const std::uint64_t process_cpu = obs::processCpuNs();
    EXPECT_GT(process_cpu, 0u);
    // A thread's CPU time is bounded by the whole process's — but only
    // when the thread clock is sampled first: both clocks keep ticking
    // between the two reads, so the later (process) sample dominates.
    const std::uint64_t thread_cpu = obs::threadCpuNs();
    EXPECT_LE(thread_cpu, obs::processCpuNs());

    obs::RunManifest manifest = obs::RunManifest::capture("probe_test");
    EXPECT_GT(manifest.counters[obs::names::kRssPeakBytes], 0u);
    EXPECT_GE(manifest.counters[obs::names::kCpuProcessNs], process_cpu);
}

// ---------------------------------------------------------------------
// Trace-context propagation
// ---------------------------------------------------------------------

TEST(ObsTraceContext, DerivationIsDeterministicAndSensitive)
{
    const obs::TraceContext a =
        obs::TraceContext::derive(7, "ghz_3", "AQT");
    EXPECT_TRUE(a.valid());
    EXPECT_EQ(a, obs::TraceContext::derive(7, "ghz_3", "AQT"));
    EXPECT_FALSE(a == obs::TraceContext::derive(8, "ghz_3", "AQT"));
    EXPECT_FALSE(a == obs::TraceContext::derive(7, "ghz_4", "AQT"));
    EXPECT_FALSE(a == obs::TraceContext::derive(7, "ghz_3", "IonQ"));
    EXPECT_EQ(a.traceIdHex().size(), 32u);
    EXPECT_EQ(a.parentSpanHex().size(), 16u);
}

TEST(ObsTraceContext, HexRoundTripsAndParsingIsStrict)
{
    const obs::TraceContext a =
        obs::TraceContext::derive(7, "ghz_3", "AQT");
    const std::string id = a.traceIdHex();
    std::optional<obs::TraceContext> back =
        obs::TraceContext::fromHex(id, a.parentSpanHex());
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, a);

    // The parent half is optional on the wire.
    std::optional<obs::TraceContext> headless =
        obs::TraceContext::fromHex(id, "");
    ASSERT_TRUE(headless.has_value());
    EXPECT_EQ(headless->parentSpan, 0u);

    EXPECT_FALSE(obs::TraceContext::fromHex("", "").has_value());
    EXPECT_FALSE(
        obs::TraceContext::fromHex(id.substr(1), "").has_value());
    EXPECT_FALSE(obs::TraceContext::fromHex(id + "0", "").has_value());
    std::string upper = id;
    upper[0] = 'A';
    EXPECT_FALSE(obs::TraceContext::fromHex(upper, "").has_value());
    std::string nonhex = id;
    nonhex[5] = 'g';
    EXPECT_FALSE(obs::TraceContext::fromHex(nonhex, "").has_value());
    // All-zero means "no context" and is not a parseable id.
    EXPECT_FALSE(
        obs::TraceContext::fromHex(std::string(32, '0'), "").has_value());
    EXPECT_FALSE(obs::TraceContext::fromHex(id, "xyz").has_value());
    EXPECT_FALSE(obs::TraceContext::fromHex(id, id).has_value());
}

TEST(ObsTraceContext, ScopesInstallNestAndRestore)
{
    EXPECT_FALSE(obs::currentTraceContext().valid());
    const obs::TraceContext outer = obs::TraceContext::derive(1, "a", "b");
    const obs::TraceContext inner = obs::TraceContext::derive(2, "c", "d");
    {
        obs::TraceContextScope outer_scope(outer);
        EXPECT_EQ(obs::currentTraceContext(), outer);
        {
            obs::TraceContextScope inner_scope(inner);
            EXPECT_EQ(obs::currentTraceContext(), inner);
            {
                // An invalid context is a no-op scope, not a clear.
                obs::TraceContextScope noop{obs::TraceContext{}};
                EXPECT_EQ(obs::currentTraceContext(), inner);
            }
        }
        EXPECT_EQ(obs::currentTraceContext(), outer);
    }
    EXPECT_FALSE(obs::currentTraceContext().valid());
}

TEST(ObsTraceContext, SpanEventsCarryTheInstalledContext)
{
    obs::setMetricsEnabled(false);
    std::filesystem::path dir = freshDir("smq_obs_ctx_spans");
    const obs::TraceContext ctx =
        obs::TraceContext::derive(9, "ghz_3", "AQT");
    obs::startTracing(dir.string());
    {
        SMQ_TRACE_SPAN("untagged");
    }
    {
        obs::TraceContextScope scope(ctx);
        SMQ_TRACE_SPAN("tagged", obs::jsonField("k", "v"));
    }
    obs::stopTracing();

    obs::JsonValue root = obs::parseJson(slurp(dir / "trace.json"));
    const obs::JsonValue *events = root.find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_EQ(events->array.size(), 2u);
    for (const obs::JsonValue &e : events->array) {
        const std::string name = e.at("name").asString();
        const obs::JsonValue *args = e.find("args");
        if (name == "tagged") {
            ASSERT_NE(args, nullptr);
            EXPECT_EQ(args->at("trace.id").asString(), ctx.traceIdHex());
            EXPECT_EQ(args->at("trace.parent").asString(),
                      ctx.parentSpanHex());
            EXPECT_EQ(args->at("k").asString(), "v");
        } else {
            ASSERT_EQ(name, "untagged");
            // Without a context the event format is untouched, so
            // pre-propagation traces stay byte-identical.
            if (args != nullptr) {
                EXPECT_EQ(args->find("trace.id"), nullptr);
            }
        }
    }
}

// ---------------------------------------------------------------------
// Spans and trace files
// ---------------------------------------------------------------------

TEST(ObsTrace, NestedSpansProduceValidTraceAndJsonl)
{
    // Metrics stay OFF here: tracing alone must be able to drive
    // spans, and ad-hoc span names must not register histograms.
    obs::setMetricsEnabled(false);
    std::filesystem::path dir = freshDir("smq_obs_nesting");
    obs::startTracing(dir.string());
    {
        SMQ_TRACE_SPAN("outer", obs::jsonField("k", "v"));
        {
            SMQ_TRACE_SPAN("inner");
        }
        {
            SMQ_TRACE_SPAN("inner");
        }
    }
    obs::stopTracing();

    obs::JsonValue root = obs::parseJson(slurp(dir / "trace.json"));
    const obs::JsonValue *events = root.find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_EQ(events->array.size(), 3u);

    double outer_start = 0, outer_dur = 0;
    int inner_seen = 0;
    for (const obs::JsonValue &e : events->array) {
        EXPECT_EQ(e.at("cat").asString(), "smq");
        EXPECT_EQ(e.at("ph").asString(), "X");
        std::string name = e.at("name").asString();
        if (name == "outer") {
            outer_start = e.at("ts").asDouble();
            outer_dur = e.at("dur").asDouble();
            EXPECT_EQ(e.at("args").at("k").asString(), "v");
        } else {
            ASSERT_EQ(name, "inner");
            ++inner_seen;
        }
    }
    EXPECT_EQ(inner_seen, 2);
    // Nesting: both inner spans fall inside [outer_start, +outer_dur].
    for (const obs::JsonValue &e : events->array) {
        if (e.at("name").asString() != "inner")
            continue;
        EXPECT_GE(e.at("ts").asDouble(), outer_start);
        EXPECT_LE(e.at("ts").asDouble() + e.at("dur").asDouble(),
                  outer_start + outer_dur + 1e-3);
    }

    // events.jsonl carries the same events, one object per line.
    std::istringstream jsonl(slurp(dir / "events.jsonl"));
    std::string line;
    std::size_t lines = 0;
    while (std::getline(jsonl, line)) {
        if (line.empty())
            continue;
        obs::JsonValue event = obs::parseJson(line);
        EXPECT_TRUE(event.find("name") != nullptr);
        ++lines;
    }
    EXPECT_EQ(lines, events->array.size());
}

TEST(ObsTrace, DisabledSpanEvaluatesNoArgs)
{
    obs::setMetricsEnabled(false);
    int evaluations = 0;
    auto expensive = [&] {
        ++evaluations;
        return std::string("x");
    };
    {
        SMQ_TRACE_SPAN("noop", obs::jsonField("k", expensive()));
    }
    EXPECT_EQ(evaluations, 0)
        << "span args must not be formatted while the sink is off";
}

// ---------------------------------------------------------------------
// Manifests
// ---------------------------------------------------------------------

TEST(ObsManifest, JsonRoundTripPreservesEveryField)
{
    obs::RunManifest m;
    m.tool = "unit_test";
    m.gitRev = "abc123";
    m.deviceTableVersion = device::kDeviceTableVersion;
    m.seed = 12345;
    m.shots = 2000;
    m.repetitions = 3;
    m.jobs = 8;
    m.faultsEnabled = true;
    m.faultSeed = 2022;
    m.traceDir = "trace/dir with \"quotes\"";
    m.cacheHits = 17;
    m.cacheMisses = 5;
    m.counters["sim.shots"] = 123456789012345ull;
    m.counters["jobs.retry.attempts"] = 83;
    m.stages["job"] = {10, 5000000000ull, 1000, 900000000ull};
    m.extra["note"] = "hello\nworld";

    obs::RunManifest r = obs::RunManifest::fromJson(m.toJson());
    EXPECT_EQ(r.schema, obs::kManifestSchema);
    EXPECT_EQ(r.tool, m.tool);
    EXPECT_EQ(r.gitRev, m.gitRev);
    EXPECT_EQ(r.deviceTableVersion, m.deviceTableVersion);
    EXPECT_EQ(r.seed, m.seed);
    EXPECT_EQ(r.shots, m.shots);
    EXPECT_EQ(r.repetitions, m.repetitions);
    EXPECT_EQ(r.jobs, m.jobs);
    EXPECT_EQ(r.faultsEnabled, m.faultsEnabled);
    EXPECT_EQ(r.faultSeed, m.faultSeed);
    EXPECT_EQ(r.traceDir, m.traceDir);
    EXPECT_EQ(r.cacheHits, m.cacheHits);
    EXPECT_EQ(r.cacheMisses, m.cacheMisses);
    EXPECT_EQ(r.counters, m.counters);
    ASSERT_EQ(r.stages.size(), 1u);
    EXPECT_EQ(r.stages.at("job").count, 10u);
    EXPECT_EQ(r.stages.at("job").totalNs, 5000000000ull);
    EXPECT_EQ(r.stages.at("job").minNs, 1000u);
    EXPECT_EQ(r.stages.at("job").maxNs, 900000000ull);
    EXPECT_EQ(r.extra, m.extra);
}

TEST(ObsManifest, FileRoundTrip)
{
    std::filesystem::path dir = freshDir("smq_obs_manifest");
    std::filesystem::create_directories(dir);
    std::string path = (dir / "m.json").string();
    obs::RunManifest m;
    m.tool = "file_test";
    m.seed = 9;
    ASSERT_TRUE(m.writeFile(path));
    obs::RunManifest r = obs::RunManifest::readFile(path);
    EXPECT_EQ(r.tool, "file_test");
    EXPECT_EQ(r.seed, 9u);
}

TEST(ObsManifest, RejectsWrongSchema)
{
    EXPECT_THROW(obs::RunManifest::fromJson("{\"schema\":\"nope\"}"),
                 std::runtime_error);
    EXPECT_THROW(obs::RunManifest::fromJson("not json"),
                 std::runtime_error);
}

// ---------------------------------------------------------------------
// Determinism: observability must not perturb results
// ---------------------------------------------------------------------

TEST(ObsDeterminism, GridByteIdenticalWithTracingOnAtAnyJobs)
{
    // Baseline: everything off, serial.
    obs::setMetricsEnabled(false);
    bench::Scale scale = miniScale();
    scale.jobs = 1;
    std::string baseline =
        bench::serializeGrid(bench::computeFig2Grid(scale));

    for (std::size_t jobs : {std::size_t{1}, std::size_t{8}}) {
        obs::resetMetrics();
        obs::setMetricsEnabled(true);
        std::filesystem::path dir =
            freshDir("smq_obs_grid_j" + std::to_string(jobs));
        obs::startTracing(dir.string());
        scale.jobs = jobs;
        std::string traced =
            bench::serializeGrid(bench::computeFig2Grid(scale));
        obs::stopTracing();
        obs::setMetricsEnabled(false);
        EXPECT_EQ(traced, baseline)
            << "observability perturbed the grid at jobs=" << jobs;
    }
    obs::resetMetrics();
}

TEST(ObsDeterminism, GridByteIdenticalWithTraceContextInstalled)
{
    // Propagation on top of tracing: installing a trace context (which
    // the pool forwards to its workers) must not perturb the grid
    // either, at any --jobs — and the spans workers record must carry
    // the installed identity.
    obs::setMetricsEnabled(false);
    bench::Scale scale = miniScale();
    scale.jobs = 1;
    const std::string baseline =
        bench::serializeGrid(bench::computeFig2Grid(scale));

    const obs::TraceContext ctx =
        obs::TraceContext::derive(12345, "fig2", "grid");
    for (std::size_t jobs : {std::size_t{1}, std::size_t{8}}) {
        obs::resetMetrics();
        obs::setMetricsEnabled(true);
        std::filesystem::path dir =
            freshDir("smq_obs_ctx_grid_j" + std::to_string(jobs));
        obs::startTracing(dir.string());
        std::string traced;
        {
            obs::TraceContextScope scope(ctx);
            scale.jobs = jobs;
            traced = bench::serializeGrid(bench::computeFig2Grid(scale));
        }
        obs::stopTracing();
        obs::setMetricsEnabled(false);
        EXPECT_EQ(traced, baseline)
            << "trace propagation perturbed the grid at jobs=" << jobs;
        // Spans recorded on pool workers inherit the batch's context.
        EXPECT_NE(slurp(dir / "events.jsonl").find(ctx.traceIdHex()),
                  std::string::npos)
            << "no worker span carried the trace id at jobs=" << jobs;
    }
    obs::resetMetrics();
}

TEST(ObsDeterminism, ManifestStageRollupsMatchEventLog)
{
    obs::resetMetrics();
    obs::setMetricsEnabled(true);
    std::filesystem::path dir = freshDir("smq_obs_consistency");
    obs::startTracing(dir.string());
    bench::Scale scale = miniScale();
    scale.jobs = 4;
    bench::computeFig2Grid(scale);
    obs::stopTracing();

    obs::RunManifest manifest =
        obs::RunManifest::capture("consistency_test");
    obs::setMetricsEnabled(false);

    // Count span events per name in the JSONL log.
    std::map<std::string, std::uint64_t> event_counts;
    std::istringstream jsonl(slurp(dir / "events.jsonl"));
    std::string line;
    while (std::getline(jsonl, line)) {
        if (line.empty())
            continue;
        obs::JsonValue event = obs::parseJson(line);
        ++event_counts[event.at("name").asString()];
    }

    ASSERT_FALSE(manifest.stages.empty());
    EXPECT_TRUE(manifest.stages.count("grid"));
    EXPECT_TRUE(manifest.stages.count("job"));
    for (const auto &[stage, rollup] : manifest.stages) {
        EXPECT_EQ(rollup.count, event_counts[stage])
            << "stage '" << stage
            << "': manifest rollup disagrees with events.jsonl";
        EXPECT_GE(rollup.maxNs, rollup.minNs);
        EXPECT_GE(rollup.totalNs, rollup.maxNs);
    }
    // And the other direction: no event name missing from the rollups.
    for (const auto &[name, n] : event_counts)
        EXPECT_TRUE(manifest.stages.count(name))
            << "event '" << name << "' has no stage rollup";
    obs::resetMetrics();
}

// ---------------------------------------------------------------------
// Doc closure: every emitted name is documented
// ---------------------------------------------------------------------

TEST(ObsDocs, EveryEmittedMetricNameIsDocumented)
{
    obs::resetMetrics();
    obs::setMetricsEnabled(true);

    // Exercise every instrumented subsystem: the fault-injected job
    // grid, the synchronous harness (incl. a too-large rejection), and
    // the density-matrix kernels the grid path does not touch.
    bench::Scale scale = miniScale();
    scale.jobs = 2;
    scale.faults = true;
    bench::computeFig2Grid(scale);

    core::GhzBenchmark ghz(3);
    core::HarnessOptions options;
    options.shots = 20;
    options.repetitions = 2;
    core::runBenchmark(ghz, device::perfectDevice(3), options);
    core::runBenchmark(ghz, device::perfectDevice(2), options);

    sim::DensityMatrix rho(2);
    rho.applyGate(qc::Gate(qc::GateType::H, {0}));

    // The telemetry consumers (PR 4): a history append/load cycle and
    // a progress phase, so `history.*` / `progress.*` names are held
    // to the same closure.
    {
        const std::filesystem::path store =
            freshDir("obs_docs_history") / "runs.jsonl";
        std::filesystem::create_directories(store.parent_path());
        report::HistoryRecord record;
        record.tool = "obs_docs";
        report::appendHistory(store.string(), record);
        report::appendHistory(store.string(), record);
        report::loadHistory(store.string());

        std::ostringstream progress_log;
        obs::ProgressOptions progress;
        progress.mode = obs::ProgressOptions::Mode::Jsonl;
        progress.heartbeatSecs = 0.0;
        progress.out = &progress_log;
        obs::startProgress(progress);
        obs::progressBegin("grid", obs::names::kSpanJob, 2, 1);
        obs::progressTick(obs::names::kSpanJob, 2);
        obs::progressEnd();
        obs::stopProgress();
    }

    obs::MetricsSnapshot snapshot = obs::snapshotMetrics();
    obs::setMetricsEnabled(false);

    std::string doc = slurp(std::filesystem::path(SMQ_SOURCE_DIR) /
                            "docs" / "OBSERVABILITY.md");
    std::set<std::string> emitted;
    for (const auto &[name, value] : snapshot.counters) {
        if (value > 0)
            emitted.insert(name);
    }
    for (const auto &[name, value] : snapshot.gauges) {
        if (value != 0)
            emitted.insert(name);
    }
    for (const auto &[name, hist] : snapshot.histograms) {
        if (hist.count > 0)
            emitted.insert(name);
    }
    ASSERT_GT(emitted.size(), 10u) << "instrumentation did not fire";
    for (const std::string &name : emitted) {
        EXPECT_NE(doc.find("`" + name + "`"), std::string::npos)
            << "metric '" << name
            << "' is emitted but not documented in OBSERVABILITY.md";
    }
    obs::resetMetrics();
}
