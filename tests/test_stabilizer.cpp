/**
 * @file
 * Tests for the stabilizer (CHP) simulator: agreement with the dense
 * state-vector engine on random Clifford circuits, GHZ/EC behaviour,
 * determinism queries, and large-n scalability smoke tests.
 */

#include <gtest/gtest.h>

#include "core/benchmarks/error_correction.hpp"
#include "core/benchmarks/ghz.hpp"
#include "sim/stabilizer.hpp"
#include "sim/statevector.hpp"
#include "stats/hellinger.hpp"

namespace smq::sim {
namespace {

TEST(Stabilizer, PlusStateMeasuresUniformly)
{
    stats::Rng rng(3);
    std::size_t ones = 0;
    for (int trial = 0; trial < 2000; ++trial) {
        StabilizerSimulator sim(1);
        sim.applyGate(qc::Gate(qc::GateType::H, {0}));
        EXPECT_FALSE(sim.isDeterministic(0));
        ones += sim.measure(0, rng);
    }
    EXPECT_NEAR(static_cast<double>(ones) / 2000.0, 0.5, 0.05);
}

TEST(Stabilizer, BasisStatesAreDeterministic)
{
    stats::Rng rng(5);
    StabilizerSimulator sim(3);
    sim.applyGate(qc::Gate(qc::GateType::X, {1}));
    for (std::size_t q = 0; q < 3; ++q)
        EXPECT_TRUE(sim.isDeterministic(q));
    EXPECT_EQ(sim.measure(0, rng), 0);
    EXPECT_EQ(sim.measure(1, rng), 1);
    EXPECT_EQ(sim.measure(2, rng), 0);
}

TEST(Stabilizer, GhzCorrelationsAndCollapse)
{
    stats::Rng rng(11);
    for (int trial = 0; trial < 50; ++trial) {
        StabilizerSimulator sim(4);
        sim.applyGate(qc::Gate(qc::GateType::H, {0}));
        for (qc::Qubit q = 0; q + 1 < 4; ++q)
            sim.applyGate(qc::Gate(qc::GateType::CX, {q, q + 1}));
        int first = sim.measure(0, rng);
        // after the first measurement the rest are deterministic
        for (std::size_t q = 1; q < 4; ++q) {
            EXPECT_TRUE(sim.isDeterministic(q));
            EXPECT_EQ(sim.measure(q, rng), first);
        }
    }
}

TEST(Stabilizer, ResetForcesZero)
{
    stats::Rng rng(2);
    StabilizerSimulator sim(2);
    sim.applyGate(qc::Gate(qc::GateType::H, {0}));
    sim.applyGate(qc::Gate(qc::GateType::CX, {0, 1}));
    sim.reset(0, rng);
    EXPECT_TRUE(sim.isDeterministic(0));
    EXPECT_EQ(sim.measure(0, rng), 0);
}

TEST(Stabilizer, RejectsNonCliffordGates)
{
    StabilizerSimulator sim(1);
    EXPECT_THROW(sim.applyGate(qc::Gate(qc::GateType::T, {0})),
                 std::invalid_argument);
    EXPECT_THROW(sim.applyGate(qc::Gate(qc::GateType::RZ, {0}, {0.1})),
                 std::invalid_argument);
}

TEST(Stabilizer, IsCliffordCircuitClassifier)
{
    qc::Circuit clifford(2, 2);
    clifford.h(0).cx(0, 1).s(1).measureAll();
    EXPECT_TRUE(isCliffordCircuit(clifford));
    qc::Circuit not_clifford(2, 2);
    not_clifford.h(0).t(0).measureAll();
    EXPECT_FALSE(isCliffordCircuit(not_clifford));
}

/**
 * Property test: on random Clifford circuits with terminal
 * measurements, the tableau engine's output distribution must match
 * the dense simulator's exactly (compared via Hellinger fidelity over
 * many shots).
 */
class StabilizerVsDense : public ::testing::TestWithParam<int>
{
};

TEST_P(StabilizerVsDense, DistributionsAgreeOnRandomCliffords)
{
    stats::Rng gen(400 + GetParam());
    const std::size_t n = 2 + gen.index(4);
    qc::Circuit circuit(n, n);
    for (int g = 0; g < 30; ++g) {
        switch (gen.index(6)) {
          case 0:
            circuit.h(static_cast<qc::Qubit>(gen.index(n)));
            break;
          case 1:
            circuit.s(static_cast<qc::Qubit>(gen.index(n)));
            break;
          case 2:
            circuit.sdg(static_cast<qc::Qubit>(gen.index(n)));
            break;
          case 3:
            circuit.sx(static_cast<qc::Qubit>(gen.index(n)));
            break;
          default: {
            qc::Qubit a = static_cast<qc::Qubit>(gen.index(n));
            qc::Qubit b = static_cast<qc::Qubit>(gen.index(n));
            if (a != b) {
                if (gen.bernoulli(0.5))
                    circuit.cx(a, b);
                else
                    circuit.cz(a, b);
            }
            break;
          }
        }
    }
    circuit.measureAll();

    RunOptions options;
    options.shots = 20000;
    stats::Rng rng_a(7), rng_b(13);
    stats::Counts dense = run(circuit, options, rng_a);
    stats::Counts tableau = runStabilizer(circuit, options, rng_b);

    double fidelity = stats::hellingerFidelity(
        tableau, stats::toDistribution(dense));
    EXPECT_GT(fidelity, 0.995);
}

INSTANTIATE_TEST_SUITE_P(Sweep, StabilizerVsDense,
                         ::testing::Range(0, 12));

TEST(Stabilizer, MidCircuitAgreementOnBitCode)
{
    // the EC benchmark exercises mid-circuit measurement + reset;
    // tableau and dense engines must produce the same (deterministic)
    // noiseless output
    core::BitCodeBenchmark bench({1, 0, 1}, 2);
    qc::Circuit circuit = bench.circuits()[0];
    ASSERT_TRUE(isCliffordCircuit(circuit));

    RunOptions options;
    options.shots = 300;
    stats::Rng rng(3);
    stats::Counts tableau = runStabilizer(circuit, options, rng);
    EXPECT_NEAR(bench.score({tableau}), 1.0, 1e-9);
}

TEST(Stabilizer, NoisyScoresTrackDenseEngine)
{
    core::GhzBenchmark bench(6);
    qc::Circuit circuit = bench.circuits()[0];
    RunOptions options;
    options.shots = 6000;
    options.noise.enabled = true;
    options.noise.p1 = 0.005;
    options.noise.p2 = 0.02;
    options.noise.pMeas = 0.02;

    stats::Rng rng_a(5), rng_b(9);
    double dense_score = bench.score({run(circuit, options, rng_a)});
    double tableau_score =
        bench.score({runStabilizer(circuit, options, rng_b)});
    EXPECT_NEAR(tableau_score, dense_score, 0.05);
}

TEST(Stabilizer, ScalesToHundredsOfQubits)
{
    // far beyond the dense simulator's reach: a 300-qubit GHZ
    core::GhzBenchmark bench(300);
    qc::Circuit circuit = bench.circuits()[0];
    RunOptions options;
    options.shots = 64;
    stats::Rng rng(21);
    stats::Counts counts = runStabilizer(circuit, options, rng);
    EXPECT_NEAR(bench.score({counts}), 1.0, 0.05);
    // and with noise the score drops but stays computable
    options.noise.enabled = true;
    options.noise.p2 = 0.003;
    stats::Counts noisy = runStabilizer(circuit, options, rng);
    EXPECT_LT(bench.score({noisy}), 0.9);
}

TEST(Stabilizer, LargeErrorCorrectionProxyRuns)
{
    // note: the phase code's ideal output is uniform over 2^n data
    // patterns, so the Hellinger estimate needs shots >> 2^n; keep
    // n moderate and shots high (the bias is ~(K-1)/(8 shots)).
    core::PhaseCodeBenchmark bench =
        core::PhaseCodeBenchmark::alternating(5, 2);
    qc::Circuit circuit = bench.circuits()[0];
    RunOptions options;
    options.shots = 4000;
    stats::Rng rng(17);
    stats::Counts counts = runStabilizer(circuit, options, rng);
    EXPECT_GT(bench.score({counts}), 0.95);

    // at larger sizes the *deterministic* bit code stays exactly
    // scoreable: 41 data qubits, well beyond the dense engine
    core::BitCodeBenchmark big = core::BitCodeBenchmark::alternating(41, 2);
    ASSERT_TRUE(isCliffordCircuit(big.circuits()[0]));
    options.shots = 200;
    stats::Counts big_counts =
        runStabilizer(big.circuits()[0], options, rng);
    EXPECT_NEAR(big.score({big_counts}), 1.0, 1e-9);
}

} // namespace
} // namespace smq::sim
