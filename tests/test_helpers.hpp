/**
 * @file
 * Shared helpers for the test suite: full-circuit unitaries and
 * phase-invariant matrix comparison.
 */

#ifndef SMQ_TESTS_TEST_HELPERS_HPP
#define SMQ_TESTS_TEST_HELPERS_HPP

#include <complex>
#include <vector>

#include "qc/circuit.hpp"

namespace smq::test {

using CMatrix = std::vector<std::vector<std::complex<double>>>;

/** Dense unitary of a (unitary-only) circuit, built column by column. */
CMatrix circuitUnitary(const qc::Circuit &circuit);

/** Frobenius distance between matrices up to global phase. */
double phaseInvariantDistance(const CMatrix &a, const CMatrix &b);

/** Matrix product a * b. */
CMatrix matmul(const CMatrix &a, const CMatrix &b);

} // namespace smq::test

#endif // SMQ_TESTS_TEST_HELPERS_HPP
