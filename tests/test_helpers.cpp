#include "test_helpers.hpp"

#include <cmath>

#include "sim/statevector.hpp"

namespace smq::test {

CMatrix
circuitUnitary(const qc::Circuit &circuit)
{
    std::size_t dim = std::size_t{1} << circuit.numQubits();
    CMatrix u(dim, std::vector<std::complex<double>>(dim));
    for (std::size_t col = 0; col < dim; ++col) {
        sim::StateVector state(circuit.numQubits());
        qc::Circuit prep(circuit.numQubits());
        for (std::size_t q = 0; q < circuit.numQubits(); ++q) {
            if ((col >> q) & 1)
                prep.x(static_cast<qc::Qubit>(q));
        }
        state.applyUnitaryCircuit(prep);
        state.applyUnitaryCircuit(circuit);
        for (std::size_t row = 0; row < dim; ++row)
            u[row][col] = state.amplitude(row);
    }
    return u;
}

double
phaseInvariantDistance(const CMatrix &a, const CMatrix &b)
{
    std::size_t dim = a.size();
    std::size_t mr = 0, mc = 0;
    double best = 0.0;
    for (std::size_t r = 0; r < dim; ++r) {
        for (std::size_t c = 0; c < dim; ++c) {
            if (std::abs(a[r][c]) > best) {
                best = std::abs(a[r][c]);
                mr = r;
                mc = c;
            }
        }
    }
    std::complex<double> phase{1.0, 0.0};
    if (std::abs(a[mr][mc]) > 1e-12 && std::abs(b[mr][mc]) > 1e-12) {
        phase = (a[mr][mc] / std::abs(a[mr][mc])) /
                (b[mr][mc] / std::abs(b[mr][mc]));
    }
    double dist = 0.0;
    for (std::size_t r = 0; r < dim; ++r) {
        for (std::size_t c = 0; c < dim; ++c)
            dist += std::norm(a[r][c] - phase * b[r][c]);
    }
    return std::sqrt(dist);
}

CMatrix
matmul(const CMatrix &a, const CMatrix &b)
{
    std::size_t dim = a.size();
    CMatrix out(dim, std::vector<std::complex<double>>(dim, 0.0));
    for (std::size_t i = 0; i < dim; ++i) {
        for (std::size_t k = 0; k < dim; ++k) {
            for (std::size_t j = 0; j < dim; ++j)
                out[i][j] += a[i][k] * b[k][j];
        }
    }
    return out;
}

} // namespace smq::test
