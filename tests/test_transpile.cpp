/**
 * @file
 * Tests for the transpiler: gate decomposition equivalence, peephole
 * optimisation, layout, routing correctness, native translation, and
 * the full Closed-Division pipeline (logical output distribution must
 * be preserved exactly on a noiseless device).
 */

#include <gtest/gtest.h>

#include "device/device.hpp"
#include "qc/library.hpp"
#include "sim/statevector.hpp"
#include "stats/hellinger.hpp"
#include "test_helpers.hpp"
#include "transpile/decompose.hpp"
#include "transpile/native.hpp"
#include "transpile/optimize.hpp"
#include "transpile/route.hpp"
#include "transpile/transpiler.hpp"

namespace smq::transpile {
namespace {

using smq::test::circuitUnitary;
using smq::test::phaseInvariantDistance;

struct DecomposeCase
{
    qc::Gate gate;
    std::size_t qubits;
};

class DecomposePreservesUnitary
    : public ::testing::TestWithParam<DecomposeCase>
{
};

TEST_P(DecomposePreservesUnitary, MatchesOriginal)
{
    const auto &[gate, qubits] = GetParam();
    qc::Circuit original(qubits);
    original.append(gate);
    qc::Circuit lowered = decomposeToCx(original);
    for (const qc::Gate &g : lowered.gates()) {
        EXPECT_TRUE(g.type == qc::GateType::CX || g.qubits.size() == 1)
            << qc::gateName(g.type);
    }
    EXPECT_LT(phaseInvariantDistance(circuitUnitary(original),
                                     circuitUnitary(lowered)),
              1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    TwoAndThreeQubit, DecomposePreservesUnitary,
    ::testing::Values(
        DecomposeCase{qc::Gate(qc::GateType::CY, {0, 1}), 2},
        DecomposeCase{qc::Gate(qc::GateType::CZ, {0, 1}), 2},
        DecomposeCase{qc::Gate(qc::GateType::CH, {0, 1}), 2},
        DecomposeCase{qc::Gate(qc::GateType::CP, {0, 1}, {0.7}), 2},
        DecomposeCase{qc::Gate(qc::GateType::SWAP, {0, 1}), 2},
        DecomposeCase{qc::Gate(qc::GateType::ISWAP, {0, 1}), 2},
        DecomposeCase{qc::Gate(qc::GateType::RXX, {0, 1}, {0.9}), 2},
        DecomposeCase{qc::Gate(qc::GateType::RYY, {0, 1}, {1.1}), 2},
        DecomposeCase{qc::Gate(qc::GateType::RZZ, {0, 1}, {0.5}), 2},
        DecomposeCase{qc::Gate(qc::GateType::CCX, {0, 1, 2}), 3},
        DecomposeCase{qc::Gate(qc::GateType::CSWAP, {0, 1, 2}), 3}),
    [](const ::testing::TestParamInfo<DecomposeCase> &info) {
        return qc::gateName(info.param.gate.type);
    });

TEST(Fusion, MergesRunsAndDropsIdentities)
{
    qc::Circuit c(2);
    c.h(0).h(0);           // identity
    c.s(1).t(1).tdg(1).sdg(1); // identity
    c.rz(0.3, 0).rz(0.4, 0);   // one u3
    qc::Circuit fused = fuseSingleQubitGates(c);
    EXPECT_EQ(fused.size(), 1u);
    EXPECT_EQ(fused.gates()[0].type, qc::GateType::U3);
    EXPECT_LT(phaseInvariantDistance(circuitUnitary(c),
                                     circuitUnitary(fused)),
              1e-9);
}

TEST(Fusion, DoesNotCrossTwoQubitGates)
{
    qc::Circuit c(2);
    c.h(0).cx(0, 1).h(0);
    qc::Circuit fused = fuseSingleQubitGates(c);
    EXPECT_EQ(fused.size(), 3u);
    EXPECT_LT(phaseInvariantDistance(circuitUnitary(c),
                                     circuitUnitary(fused)),
              1e-9);
}

TEST(Fusion, PreservesMeasureResetBarriers)
{
    qc::Circuit c(1, 1);
    c.h(0).barrier().measure(0, 0).reset(0);
    qc::Circuit fused = fuseSingleQubitGates(c);
    EXPECT_EQ(fused.size(), 4u);
}

TEST(Cancellation, RemovesAdjacentSelfInversePairs)
{
    qc::Circuit c(3);
    c.cx(0, 1).cx(0, 1).cz(1, 2).cz(1, 2).cx(0, 1);
    qc::Circuit out = cancelAdjacentGates(c);
    EXPECT_EQ(out.size(), 1u);
    EXPECT_EQ(out.gates()[0].type, qc::GateType::CX);
}

TEST(Cancellation, RespectsInterveningGates)
{
    qc::Circuit c(2);
    c.cx(0, 1).h(1).cx(0, 1);
    EXPECT_EQ(cancelAdjacentGates(c).size(), 3u);
}

TEST(Cancellation, OrientationMatters)
{
    qc::Circuit c(2);
    c.cx(0, 1).cx(1, 0);
    EXPECT_EQ(cancelAdjacentGates(c).size(), 2u);
}

TEST(OpenDivision, CancelsCxThroughCommutingGates)
{
    // CX . RZ(control) . X(target) . CX == RZ . X up to commutation
    qc::Circuit c(2);
    c.cx(0, 1).rz(0.4, 0).x(1).cx(0, 1);
    qc::Circuit out = commutationAwareCancellation(c);
    EXPECT_EQ(out.size(), 2u);
    EXPECT_LT(phaseInvariantDistance(circuitUnitary(c),
                                     circuitUnitary(out)),
              1e-9);
}

TEST(OpenDivision, SharedControlAndTargetCxCommute)
{
    qc::Circuit c(3);
    c.cx(0, 1).cx(0, 2).cx(0, 1); // shared control
    qc::Circuit out = commutationAwareCancellation(c);
    EXPECT_EQ(out.size(), 1u);
    EXPECT_LT(phaseInvariantDistance(circuitUnitary(c),
                                     circuitUnitary(out)),
              1e-9);

    qc::Circuit d(3);
    d.cx(0, 2).cx(1, 2).cx(0, 2); // shared target
    qc::Circuit out2 = commutationAwareCancellation(d);
    EXPECT_EQ(out2.size(), 1u);
    EXPECT_LT(phaseInvariantDistance(circuitUnitary(d),
                                     circuitUnitary(out2)),
              1e-9);
}

TEST(OpenDivision, BlocksOnNonCommutingGates)
{
    qc::Circuit c(2);
    c.cx(0, 1).h(1).cx(0, 1); // H on target does not commute
    EXPECT_EQ(commutationAwareCancellation(c).size(), 3u);

    qc::Circuit d(2);
    d.cx(0, 1).rz(0.3, 1).cx(0, 1); // RZ on TARGET does not commute
    EXPECT_EQ(commutationAwareCancellation(d).size(), 3u);

    qc::Circuit e(2, 1);
    e.cx(0, 1).measure(0, 0).cx(0, 1); // measurement blocks
    EXPECT_EQ(commutationAwareCancellation(e).size(), 3u);
}

class OpenDivisionRandom : public ::testing::TestWithParam<int>
{
};

TEST_P(OpenDivisionRandom, PreservesUnitaryOnRandomCircuits)
{
    stats::Rng rng(700 + GetParam());
    const std::size_t n = 3;
    qc::Circuit c(n);
    for (int g = 0; g < 25; ++g) {
        switch (rng.index(5)) {
          case 0:
            c.rz(rng.uniform(0.0, 3.0),
                 static_cast<qc::Qubit>(rng.index(n)));
            break;
          case 1:
            c.rx(rng.uniform(0.0, 3.0),
                 static_cast<qc::Qubit>(rng.index(n)));
            break;
          case 2:
            c.h(static_cast<qc::Qubit>(rng.index(n)));
            break;
          default: {
            qc::Qubit a = static_cast<qc::Qubit>(rng.index(n));
            qc::Qubit b = static_cast<qc::Qubit>(rng.index(n));
            if (a != b)
                c.cx(a, b);
            break;
          }
        }
    }
    qc::Circuit out = commutationAwareCancellation(c);
    EXPECT_LE(out.size(), c.size());
    EXPECT_LT(phaseInvariantDistance(circuitUnitary(c),
                                     circuitUnitary(out)),
              1e-8);
}

INSTANTIATE_TEST_SUITE_P(Sweep, OpenDivisionRandom,
                         ::testing::Range(0, 15));

TEST(OpenDivision, PipelineNeverIncreasesTwoQubitCount)
{
    qc::Circuit c(4, 4);
    c.h(0).cx(0, 1).rz(0.2, 0).x(1).cx(0, 1).cx(1, 2).cx(0, 3);
    c.measureAll();
    device::Device dev = device::ibmCasablanca();
    TranspileOptions closed;
    TranspileOptions open;
    open.division = Division::Open;
    TranspileResult r_closed = transpile(c, dev, closed);
    TranspileResult r_open = transpile(c, dev, open);
    EXPECT_LE(r_open.twoQubitGateCount, r_closed.twoQubitGateCount);
    // both preserve the measured distribution on a noiseless device
    auto [compact, mapping] = compactCircuit(r_open.circuit);
    EXPECT_GT(stats::hellingerFidelity(sim::idealDistribution(compact),
                                       sim::idealDistribution(c)),
              1.0 - 1e-9);
}

TEST(Layout, TrivialIsIdentity)
{
    qc::Circuit c(3);
    c.cx(0, 2);
    auto layout = chooseLayout(c, device::Topology::line(5),
                               LayoutStrategy::Trivial);
    EXPECT_EQ(layout, (std::vector<std::size_t>{0, 1, 2}));
}

TEST(Layout, ConnectivityPlacesInteractingQubitsTogether)
{
    // star program: qubit 0 talks to everyone; on a line topology it
    // should land on an interior physical qubit.
    qc::Circuit c(3);
    c.cx(0, 1).cx(0, 2);
    auto layout = chooseLayout(c, device::Topology::line(3),
                               LayoutStrategy::Connectivity);
    EXPECT_EQ(layout[0], 1u);
}

TEST(Layout, RejectsOversizedCircuits)
{
    qc::Circuit c(5);
    EXPECT_THROW(chooseLayout(c, device::Topology::line(3),
                              LayoutStrategy::Trivial),
                 std::invalid_argument);
    EXPECT_THROW(chooseLayout(c, device::Topology::line(3),
                              LayoutStrategy::Connectivity),
                 std::invalid_argument);
}

TEST(Routing, AdjacentGatesNeedNoSwaps)
{
    qc::Circuit c(3, 3);
    c.cx(0, 1).cx(1, 2).measureAll();
    RoutingResult routed =
        route(c, device::Topology::line(3), {0, 1, 2});
    EXPECT_EQ(routed.swapsInserted, 0u);
}

TEST(Routing, InsertsSwapsForDistantPairs)
{
    qc::Circuit c(2, 2);
    c.cx(0, 1).measureAll();
    // map logical 0,1 to the two ends of a 4-qubit line
    qc::Circuit wide(4, 2);
    wide.cx(0, 3).measure(0, 0).measure(3, 1);
    RoutingResult routed =
        route(wide, device::Topology::line(4), {0, 1, 2, 3});
    EXPECT_GE(routed.swapsInserted, 2u);
    // all 2q gates in the result are on coupled pairs
    for (const qc::Gate &g : routed.circuit.gates()) {
        if (g.isUnitary() && g.qubits.size() == 2) {
            EXPECT_TRUE(device::Topology::line(4).coupled(g.qubits[0],
                                                          g.qubits[1]));
        }
    }
}

TEST(Routing, PreservesOutputDistribution)
{
    // GHZ over a line with a deliberately bad layout: the routed
    // physical circuit must still produce the GHZ distribution on the
    // original classical bits.
    qc::Circuit c(3, 3);
    c.h(0).cx(0, 2).cx(2, 1).measureAll();
    RoutingResult routed =
        route(c, device::Topology::line(5), {4, 0, 2});
    qc::Circuit expanded = decomposeToCx(routed.circuit);
    auto [compact, mapping] = compactCircuit(expanded);
    auto dist = sim::idealDistribution(compact);
    EXPECT_NEAR(dist.probability("000"), 0.5, 1e-9);
    EXPECT_NEAR(dist.probability("111"), 0.5, 1e-9);
}

TEST(NativeTranslation, OnlyNativeGatesRemain)
{
    qc::Circuit c(3, 3);
    c.h(0).cx(0, 1).rzz(0.4, 1, 2).t(2).swap(0, 1).measureAll();
    qc::Circuit lowered = decomposeToCx(c);
    for (auto family : {device::NativeFamily::IBM,
                        device::NativeFamily::ION,
                        device::NativeFamily::AQT}) {
        qc::Circuit native = translateToNative(lowered, family);
        for (const qc::Gate &g : native.gates()) {
            if (g.type == qc::GateType::MEASURE ||
                g.type == qc::GateType::BARRIER) {
                continue;
            }
            EXPECT_TRUE(isNativeGate(g, family)) << qc::gateName(g.type);
        }
    }
}

TEST(NativeTranslation, PreservesUnitary)
{
    qc::Circuit c(2);
    c.h(0).cx(0, 1).t(1).cx(0, 1).sdg(0);
    qc::Circuit lowered = decomposeToCx(c);
    for (auto family : {device::NativeFamily::IBM,
                        device::NativeFamily::ION,
                        device::NativeFamily::AQT}) {
        qc::Circuit native = translateToNative(lowered, family);
        EXPECT_LT(phaseInvariantDistance(circuitUnitary(c),
                                         circuitUnitary(native)),
                  1e-8)
            << static_cast<int>(family);
    }
}

class PipelineEndToEnd : public ::testing::TestWithParam<int>
{
};

TEST_P(PipelineEndToEnd, NoiselessDistributionIsPreserved)
{
    // Full Closed-Division pipeline against each device topology with
    // the noise switched off: measured distribution must match the
    // logical ideal exactly (up to simulator precision).
    device::Device dev;
    switch (GetParam()) {
      case 0:
        dev = device::ibmCasablanca();
        break;
      case 1:
        dev = device::ibmGuadalupe();
        break;
      case 2:
        dev = device::ionqDevice();
        break;
      case 3:
        dev = device::aqtDevice();
        break;
      default:
        FAIL();
    }
    dev.noise = sim::NoiseModel::ideal();

    qc::Circuit c(4, 4);
    c.h(0).cx(0, 1).cx(0, 2).t(1).cx(1, 3).rz(0.3, 3).cx(2, 3);
    c.measureAll();

    TranspileResult result = transpile(c, dev);
    auto [compact, mapping] = compactCircuit(result.circuit);
    ASSERT_LE(compact.numQubits(), 12u);

    auto expected = sim::idealDistribution(c);
    auto actual = sim::idealDistribution(compact);
    // exact distribution match (Hellinger fidelity 1)
    EXPECT_GT(stats::hellingerFidelity(actual, expected), 1.0 - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Devices, PipelineEndToEnd,
                         ::testing::Range(0, 4));

TEST(Pipeline, ReportsSwapAndGateCounts)
{
    // all-to-all program on a line: swaps are unavoidable
    qc::Circuit c = qc::library::ghzLadder(4);
    qc::Circuit full(4, 4);
    full.compose(c);
    full.cx(0, 3);
    full.measureAll();
    device::Device dev = device::aqtDevice();
    dev.noise = sim::NoiseModel::ideal();
    TranspileResult result = transpile(full, dev);
    EXPECT_GT(result.swapsInserted, 0u);
    EXPECT_GT(result.twoQubitGateCount, 4u);
}

TEST(Compact, DropsUntouchedQubits)
{
    qc::Circuit c(6, 2);
    c.h(4).cx(4, 1).measure(4, 0).measure(1, 1);
    auto [compact, mapping] = compactCircuit(c);
    EXPECT_EQ(compact.numQubits(), 2u);
    EXPECT_EQ(mapping[4], 0u);
    EXPECT_EQ(mapping[1], 1u);
    EXPECT_EQ(mapping[0], static_cast<std::size_t>(-1));
}

} // namespace
} // namespace smq::transpile
