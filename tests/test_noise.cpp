/**
 * @file
 * Tests for the noise machinery: NoiseModel derived quantities, the
 * trajectory runner, the density-matrix oracle, and the agreement
 * between the two noisy engines.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "sim/density_matrix.hpp"
#include "sim/runner.hpp"
#include "sim/statevector.hpp"
#include "stats/hellinger.hpp"

namespace smq::sim {
namespace {

TEST(NoiseModel, DerivedRatesAreSane)
{
    NoiseModel m;
    m.t1 = 100.0;
    m.t2 = 80.0;
    EXPECT_GT(m.dephasingRate(), 0.0);
    EXPECT_NEAR(m.idleDampingProbability(0.0), 0.0, 1e-15);
    EXPECT_NEAR(m.idleDampingProbability(1e9), 1.0, 1e-6);
    EXPECT_LT(m.idleDephasingProbability(1e9), 0.5 + 1e-9);

    // T2 = 2 T1 limit: no pure dephasing
    NoiseModel pure;
    pure.t1 = 50.0;
    pure.t2 = 100.0;
    EXPECT_NEAR(pure.dephasingRate(), 0.0, 1e-15);
}

TEST(NoiseModel, ScaledClampsAndShrinksCoherence)
{
    NoiseModel m;
    m.enabled = true;
    m.p1 = 0.4;
    m.p2 = 0.6;
    m.pMeas = 0.3;
    m.t1 = 100.0;
    m.t2 = 50.0;
    NoiseModel doubled = m.scaled(2.0);
    EXPECT_NEAR(doubled.p1, 0.8, 1e-12);
    EXPECT_NEAR(doubled.p2, 1.0, 1e-12); // clamped
    EXPECT_NEAR(doubled.t1, 50.0, 1e-12);
    NoiseModel off = m.scaled(0.0);
    EXPECT_FALSE(off.enabled);
}

TEST(Runner, RequiresMeasurement)
{
    qc::Circuit c(1, 0);
    c.h(0);
    stats::Rng rng(1);
    EXPECT_THROW(run(c, RunOptions{}, rng), std::invalid_argument);
}

TEST(Runner, NoiselessGhzMatchesIdealDistribution)
{
    qc::Circuit c(3, 3);
    c.h(0).cx(0, 1).cx(1, 2).measureAll();
    RunOptions options;
    options.shots = 20000;
    stats::Rng rng(5);
    stats::Counts counts = run(c, options, rng);
    EXPECT_EQ(counts.shots(), 20000u);
    EXPECT_NEAR(counts.probability("000"), 0.5, 0.02);
    EXPECT_NEAR(counts.probability("111"), 0.5, 0.02);
    EXPECT_EQ(counts.at("010"), 0u);
}

TEST(Runner, MidCircuitMeasureAndResetReuseQubit)
{
    // prepare |1>, measure (expect 1), reset, measure (expect 0)
    qc::Circuit c(1, 2);
    c.x(0);
    c.measure(0, 0);
    c.reset(0);
    c.measure(0, 1);
    RunOptions options;
    options.shots = 200;
    stats::Rng rng(8);
    stats::Counts counts = run(c, options, rng);
    EXPECT_EQ(counts.at("10"), 200u);
}

TEST(Runner, DetectsMidCircuitOperations)
{
    qc::Circuit terminal(2, 2);
    terminal.h(0).cx(0, 1).measureAll();
    EXPECT_FALSE(hasMidCircuitOperations(terminal));

    qc::Circuit with_reset(1, 1);
    with_reset.reset(0);
    with_reset.measure(0, 0);
    EXPECT_TRUE(hasMidCircuitOperations(with_reset));

    qc::Circuit reused(1, 2);
    reused.measure(0, 0);
    reused.h(0);
    reused.measure(0, 1);
    EXPECT_TRUE(hasMidCircuitOperations(reused));
}

TEST(Runner, DepolarizingNoiseDegradesGhz)
{
    qc::Circuit c(3, 3);
    c.h(0).cx(0, 1).cx(1, 2).measureAll();

    RunOptions noisy;
    noisy.shots = 4000;
    noisy.noise.enabled = true;
    noisy.noise.p1 = 0.01;
    noisy.noise.p2 = 0.05;
    stats::Rng rng(13);
    stats::Counts counts = run(c, noisy, rng);

    double good = counts.probability("000") + counts.probability("111");
    EXPECT_LT(good, 0.99); // errors visible
    EXPECT_GT(good, 0.5);  // but not catastrophic
}

TEST(Runner, ReadoutErrorFlipsDeterministicOutcome)
{
    qc::Circuit c(1, 1);
    c.x(0);
    c.measure(0, 0);
    RunOptions options;
    options.shots = 20000;
    options.noise.enabled = true;
    options.noise.pMeas = 0.1;
    stats::Rng rng(21);
    stats::Counts counts = run(c, options, rng);
    EXPECT_NEAR(counts.probability("0"), 0.1, 0.015);
}

TEST(DensityMatrix, PureStateEvolutionMatchesStateVector)
{
    qc::Circuit c(2);
    c.h(0).cx(0, 1).s(1).rx(0.4, 0);
    StateVector sv = finalState(c);
    DensityMatrix dm(2);
    for (const qc::Gate &g : c.gates())
        dm.applyGate(g);
    EXPECT_NEAR(dm.trace(), 1.0, 1e-10);
    EXPECT_NEAR(dm.purity(), 1.0, 1e-10);
    auto probs_sv = sv.probabilities();
    auto probs_dm = dm.probabilities();
    for (std::size_t i = 0; i < probs_sv.size(); ++i)
        EXPECT_NEAR(probs_sv[i], probs_dm[i], 1e-10);
}

TEST(DensityMatrix, DepolarizingReducesPurity)
{
    DensityMatrix dm(1);
    dm.applyGate(qc::Gate(qc::GateType::H, {0}));
    dm.depolarize1(0, 0.3);
    EXPECT_NEAR(dm.trace(), 1.0, 1e-10);
    EXPECT_LT(dm.purity(), 1.0);
}

TEST(DensityMatrix, FullDepolarizingGivesMaximallyMixed)
{
    DensityMatrix dm(1);
    // p = 3/4 is the fixed point mapping any state to I/2
    dm.applyGate(qc::Gate(qc::GateType::H, {0}));
    dm.depolarize1(0, 0.75);
    EXPECT_NEAR(dm.purity(), 0.5, 1e-10);
}

TEST(DensityMatrix, AmplitudeDampingDecaysExcitedState)
{
    DensityMatrix dm(1);
    dm.applyGate(qc::Gate(qc::GateType::X, {0}));
    dm.amplitudeDamp(0, 0.25);
    auto probs = dm.probabilities();
    EXPECT_NEAR(probs[1], 0.75, 1e-10);
    EXPECT_NEAR(dm.trace(), 1.0, 1e-10);
}

TEST(DensityMatrix, DephasingKillsCoherences)
{
    DensityMatrix dm(1);
    dm.applyGate(qc::Gate(qc::GateType::H, {0}));
    dm.dephase(0, 0.5); // full phase flip mixing
    EXPECT_NEAR(std::abs(dm.element(0, 1)), 0.0, 1e-10);
    EXPECT_NEAR(dm.probabilities()[0], 0.5, 1e-10);
}

TEST(NoisyDistribution, MatchesTrajectoriesOnBellCircuit)
{
    qc::Circuit c(2, 2);
    c.h(0).cx(0, 1).measureAll();

    NoiseModel noise;
    noise.enabled = true;
    noise.p1 = 0.02;
    noise.p2 = 0.08;
    noise.pMeas = 0.03;
    noise.t1 = 100.0;
    noise.t2 = 70.0;
    noise.time1q = 0.05;
    noise.time2q = 0.5;
    noise.timeMeas = 5.0;

    stats::Distribution exact = noisyDistribution(c, noise);
    EXPECT_NEAR(exact.totalMass(), 1.0, 1e-9);

    RunOptions options;
    options.shots = 60000;
    options.noise = noise;
    options.shotsPerTrajectory = 1;
    stats::Rng rng(77);
    stats::Counts sampled = run(c, options, rng);

    // the trajectory unravelling must reproduce the exact channel
    double fid = stats::hellingerFidelity(sampled, exact);
    EXPECT_GT(fid, 0.999);
}

TEST(NoisyDistribution, RejectsReset)
{
    qc::Circuit c(1, 1);
    c.reset(0);
    c.measure(0, 0);
    EXPECT_THROW(noisyDistribution(c, NoiseModel::ideal()),
                 std::invalid_argument);
}

} // namespace
} // namespace smq::sim
