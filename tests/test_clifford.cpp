/**
 * @file
 * Tests for Clifford synthesis: independent-generator extraction and
 * simultaneous diagonalisation of commuting Pauli sets, including the
 * Mermin-operator sets the Mermin-Bell benchmark relies on.
 */

#include <gtest/gtest.h>

#include "core/benchmarks/mermin_bell.hpp"
#include "qc/clifford.hpp"
#include "sim/statevector.hpp"
#include "stats/rng.hpp"

namespace smq::qc {
namespace {

TEST(IndependentGenerators, DropsDependentStrings)
{
    std::vector<PauliString> set = {
        PauliString::fromLabel("XX"),
        PauliString::fromLabel("ZZ"),
        PauliString::fromLabel("YY"), // = -(XX)(ZZ): dependent
        PauliString::fromLabel("II"), // identity: dependent
    };
    auto gens = independentGenerators(set);
    EXPECT_EQ(gens.size(), 2u);
}

TEST(Diagonalization, RejectsNonCommutingInput)
{
    std::vector<PauliString> bad = {PauliString::fromLabel("XI"),
                                    PauliString::fromLabel("ZI")};
    EXPECT_THROW(diagonalizationCircuit(bad, 2), std::invalid_argument);
}

TEST(Diagonalization, AlreadyDiagonalSetNeedsLittleWork)
{
    std::vector<PauliString> zs = {PauliString::fromLabel("ZZI"),
                                   PauliString::fromLabel("IZZ")};
    Circuit u = diagonalizationCircuit(zs, 3);
    for (PauliString p : zs) {
        p.conjugateByCircuit(u);
        EXPECT_TRUE(p.isZType());
    }
}

/**
 * Random commuting sets: start from random Z-type strings (always
 * commuting) and conjugate all of them by a random Clifford circuit;
 * commutation is preserved and the set is non-trivial.
 */
class RandomCommutingSet : public ::testing::TestWithParam<int>
{
};

TEST_P(RandomCommutingSet, DiagonalizationMapsAllToZType)
{
    stats::Rng rng(100 + GetParam());
    const std::size_t n = 2 + rng.index(4); // 2..5 qubits
    const std::size_t k = 1 + rng.index(n); // up to n strings

    // random Z-type generators
    std::vector<PauliString> set;
    for (std::size_t i = 0; i < k; ++i) {
        PauliString p(n);
        bool nontrivial = false;
        for (std::size_t q = 0; q < n; ++q) {
            bool z = rng.bernoulli(0.5);
            p.setZ(q, z);
            nontrivial |= z;
        }
        if (!nontrivial)
            p.setZ(0, true);
        set.push_back(p);
    }
    // random Clifford scrambling circuit
    Circuit scramble(n);
    for (int g = 0; g < 24; ++g) {
        switch (rng.index(4)) {
          case 0:
            scramble.h(static_cast<Qubit>(rng.index(n)));
            break;
          case 1:
            scramble.s(static_cast<Qubit>(rng.index(n)));
            break;
          case 2: {
            Qubit a = static_cast<Qubit>(rng.index(n));
            Qubit b = static_cast<Qubit>(rng.index(n));
            if (a != b)
                scramble.cx(a, b);
            break;
          }
          default: {
            Qubit a = static_cast<Qubit>(rng.index(n));
            Qubit b = static_cast<Qubit>(rng.index(n));
            if (a != b)
                scramble.cz(a, b);
            break;
          }
        }
    }
    for (PauliString &p : set)
        p.conjugateByCircuit(scramble);
    for (std::size_t i = 0; i < set.size(); ++i) {
        for (std::size_t j = i + 1; j < set.size(); ++j)
            ASSERT_TRUE(set[i].commutesWith(set[j]));
    }

    Circuit u = diagonalizationCircuit(set, n);
    for (PauliString p : set) {
        p.conjugateByCircuit(u);
        EXPECT_TRUE(p.isZType()) << p.toString();
    }
    // the synthesised circuit only uses Clifford gates
    for (const Gate &g : u.gates())
        EXPECT_TRUE(isClifford(g.type)) << gateName(g.type);
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomCommutingSet,
                         ::testing::Range(0, 25));

class MerminDiagonalization : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(MerminDiagonalization, AllTermsBecomeZType)
{
    std::size_t n = GetParam();
    auto terms = core::MerminBellBenchmark::merminTerms(n);
    EXPECT_EQ(terms.size(), std::size_t{1} << (n - 1));

    std::vector<PauliString> paulis;
    for (const auto &[coeff, p] : terms)
        paulis.push_back(p);
    Circuit u = diagonalizationCircuit(paulis, n);
    for (PauliString p : paulis) {
        p.conjugateByCircuit(u);
        EXPECT_TRUE(p.isZType());
        EXPECT_NO_THROW(p.sign());
    }
}

TEST_P(MerminDiagonalization, ExpectationPreservedUnderRotation)
{
    // <psi|P|psi> must equal <U psi| UPU^dg |U psi> for a random state.
    std::size_t n = GetParam();
    if (n > 5)
        GTEST_SKIP() << "dense check kept small";
    auto terms = core::MerminBellBenchmark::merminTerms(n);
    std::vector<PauliString> paulis;
    for (const auto &[coeff, p] : terms)
        paulis.push_back(p);
    Circuit u = diagonalizationCircuit(paulis, n);

    stats::Rng rng(7);
    Circuit prep(n);
    for (std::size_t q = 0; q < n; ++q)
        prep.u3(rng.uniform(0, 3.0), rng.uniform(0, 6.0),
                rng.uniform(0, 6.0), static_cast<Qubit>(q));
    for (std::size_t q = 0; q + 1 < n; ++q)
        prep.cx(static_cast<Qubit>(q), static_cast<Qubit>(q + 1));

    sim::StateVector before = sim::finalState(prep);
    Circuit prep_rotated = prep;
    prep_rotated.compose(u);
    sim::StateVector after = sim::finalState(prep_rotated);

    for (const auto &[coeff, p] : terms) {
        PauliString rotated = p;
        rotated.conjugateByCircuit(u);
        EXPECT_NEAR(before.expectation(p).real(),
                    after.expectation(rotated).real(), 1e-9);
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, MerminDiagonalization,
                         ::testing::Values(2, 3, 4, 5, 6, 8));

} // namespace
} // namespace smq::qc
