/**
 * @file
 * Tests for the feature-performance correlation machinery behind
 * Figs. 3 and 4.
 */

#include <gtest/gtest.h>

#include "core/correlation.hpp"

namespace smq::core {
namespace {

ScoredInstance
makeInstance(double entanglement, double score, bool is_ec = false)
{
    ScoredInstance inst;
    inst.benchmark = "synthetic";
    inst.isErrorCorrection = is_ec;
    inst.features.entanglement = entanglement;
    inst.score = score;
    return inst;
}

TEST(Correlation, AxisTableCoversSixFeaturesPlusClassicThree)
{
    ASSERT_EQ(kCorrelationAxes.size(), 9u);
    EXPECT_EQ(kCorrelationAxes[2], "Entanglement-Ratio");
    EXPECT_EQ(kCorrelationAxes[8], "Num 2Q Gates");
}

TEST(Correlation, AxisValueSelectsTheRightField)
{
    ScoredInstance inst;
    inst.features.communication = 0.1;
    inst.features.criticalDepth = 0.2;
    inst.features.entanglement = 0.3;
    inst.features.parallelism = 0.4;
    inst.features.liveness = 0.5;
    inst.features.measurement = 0.6;
    inst.stats.depth = 7;
    inst.stats.numQubits = 8;
    inst.stats.twoQubitGates = 9;
    for (std::size_t axis = 0; axis < 6; ++axis)
        EXPECT_NEAR(axisValue(inst, axis), 0.1 * (axis + 1), 1e-12);
    EXPECT_EQ(axisValue(inst, 6), 7.0);
    EXPECT_EQ(axisValue(inst, 7), 8.0);
    EXPECT_EQ(axisValue(inst, 8), 9.0);
    EXPECT_THROW(axisValue(inst, 9), std::out_of_range);
}

TEST(Correlation, PerfectLinearRelationGivesR2One)
{
    std::vector<ScoredInstance> instances;
    for (double e : {0.1, 0.3, 0.5, 0.7})
        instances.push_back(makeInstance(e, 1.0 - 0.8 * e));
    auto row = correlationRow(instances, false);
    EXPECT_NEAR(row[2], 1.0, 1e-9); // entanglement axis
    stats::LinearFit fit = axisFit(instances, 2, false);
    EXPECT_NEAR(fit.slope, -0.8, 1e-9);
}

TEST(Correlation, ExcludingErrorCorrectionChangesTheFit)
{
    // EC instances are outliers far below the linear trend (the Fig. 4
    // pattern); excluding them must raise the R^2.
    std::vector<ScoredInstance> instances;
    for (double e : {0.1, 0.2, 0.3, 0.4, 0.5})
        instances.push_back(makeInstance(e, 1.0 - 0.5 * e));
    instances.push_back(makeInstance(0.15, 0.05, /*is_ec=*/true));
    instances.push_back(makeInstance(0.25, 0.02, /*is_ec=*/true));

    double with_ec = axisFit(instances, 2, false).r2;
    double without_ec = axisFit(instances, 2, true).r2;
    EXPECT_GT(without_ec, with_ec);
    EXPECT_NEAR(without_ec, 1.0, 1e-9);
}

TEST(Correlation, RowHasOneEntryPerAxis)
{
    std::vector<ScoredInstance> instances = {makeInstance(0.2, 0.9),
                                             makeInstance(0.4, 0.8)};
    auto row = correlationRow(instances, false);
    EXPECT_EQ(row.size(), kCorrelationAxes.size());
    for (double r2 : row) {
        EXPECT_GE(r2, 0.0);
        EXPECT_LE(r2, 1.0 + 1e-12);
    }
}

} // namespace
} // namespace smq::core
