/**
 * @file
 * Tests for the classical optimisers backing the variational proxy
 * benchmarks.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "opt/nelder_mead.hpp"

namespace smq::opt {
namespace {

TEST(NelderMead, MinimizesQuadraticBowl)
{
    Objective f = [](const std::vector<double> &x) {
        return (x[0] - 1.5) * (x[0] - 1.5) +
               2.0 * (x[1] + 0.5) * (x[1] + 0.5) + 3.0;
    };
    OptResult result = nelderMead(f, {0.0, 0.0});
    EXPECT_NEAR(result.x[0], 1.5, 1e-4);
    EXPECT_NEAR(result.x[1], -0.5, 1e-4);
    EXPECT_NEAR(result.value, 3.0, 1e-7);
}

TEST(NelderMead, HandlesOneDimension)
{
    Objective f = [](const std::vector<double> &x) {
        return std::cos(x[0]);
    };
    OptResult result = nelderMead(f, {2.5});
    EXPECT_NEAR(result.value, -1.0, 1e-6);
}

TEST(NelderMead, RosenbrockValleyProgress)
{
    Objective f = [](const std::vector<double> &x) {
        double a = 1.0 - x[0];
        double b = x[1] - x[0] * x[0];
        return a * a + 100.0 * b * b;
    };
    NelderMeadOptions options;
    options.maxIterations = 4000;
    options.initialStep = 0.8;
    OptResult result = nelderMead(f, {-1.2, 1.0}, options);
    EXPECT_LT(result.value, 1e-3);
}

TEST(NelderMead, RejectsEmptySeed)
{
    Objective f = [](const std::vector<double> &) { return 0.0; };
    EXPECT_THROW(nelderMead(f, {}), std::invalid_argument);
}

TEST(NelderMead, ConvergesFlagOnEasyProblem)
{
    Objective f = [](const std::vector<double> &x) {
        return x[0] * x[0];
    };
    NelderMeadOptions options;
    options.maxIterations = 2000;
    OptResult result = nelderMead(f, {3.0}, options);
    EXPECT_TRUE(result.converged);
}

TEST(GridSearch, FindsBestCellOfSeparableFunction)
{
    Objective f = [](const std::vector<double> &x) {
        return std::abs(x[0] - 0.5) + std::abs(x[1] - 0.25);
    };
    OptResult result = gridSearch(f, {0.0, 0.0}, {1.0, 1.0}, 5);
    EXPECT_NEAR(result.x[0], 0.5, 1e-12);
    EXPECT_NEAR(result.x[1], 0.25, 1e-12);
    EXPECT_EQ(result.iterations, 25u);
}

TEST(GridSearch, ValidatesArguments)
{
    Objective f = [](const std::vector<double> &) { return 0.0; };
    EXPECT_THROW(gridSearch(f, {}, {}, 3), std::invalid_argument);
    EXPECT_THROW(gridSearch(f, {0.0}, {1.0, 2.0}, 3),
                 std::invalid_argument);
    EXPECT_THROW(gridSearch(f, {0.0}, {1.0}, 1), std::invalid_argument);
}

TEST(GridSearch, SeedsNelderMeadOnPeriodicLandscape)
{
    // multi-modal objective: grid seed keeps NM out of the bad basin
    Objective f = [](const std::vector<double> &x) {
        return std::sin(3.0 * x[0]) + 0.1 * x[0] * x[0];
    };
    OptResult seed = gridSearch(f, {-4.0}, {4.0}, 17);
    OptResult refined = nelderMead(f, seed.x);
    EXPECT_LE(refined.value, seed.value + 1e-12);
    EXPECT_LT(refined.value, -0.9);
}

} // namespace
} // namespace smq::opt
