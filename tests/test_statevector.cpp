/**
 * @file
 * Tests for the state-vector simulator: gate application, measurement
 * collapse, RESET semantics, expectation values, sampling, and the
 * ideal-distribution helper.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "sim/statevector.hpp"
#include "stats/rng.hpp"
#include "test_helpers.hpp"

namespace smq::sim {
namespace {

TEST(StateVector, StartsInZero)
{
    StateVector sv(3);
    EXPECT_EQ(sv.dimension(), 8u);
    EXPECT_NEAR(std::abs(sv.amplitude(0)), 1.0, 1e-12);
    EXPECT_NEAR(sv.norm(), 1.0, 1e-12);
}

TEST(StateVector, RejectsTooManyQubits)
{
    EXPECT_THROW(StateVector(40), std::invalid_argument);
}

TEST(StateVector, HadamardCreatesSuperposition)
{
    StateVector sv(1);
    sv.applyGate(qc::Gate(qc::GateType::H, {0}));
    EXPECT_NEAR(std::norm(sv.amplitude(0)), 0.5, 1e-12);
    EXPECT_NEAR(std::norm(sv.amplitude(1)), 0.5, 1e-12);
    EXPECT_NEAR(sv.probabilityOfOne(0), 0.5, 1e-12);
}

TEST(StateVector, GhzStateAmplitudes)
{
    qc::Circuit c(3);
    c.h(0).cx(0, 1).cx(1, 2);
    StateVector sv = finalState(c);
    EXPECT_NEAR(std::norm(sv.amplitude(0b000)), 0.5, 1e-12);
    EXPECT_NEAR(std::norm(sv.amplitude(0b111)), 0.5, 1e-12);
    EXPECT_NEAR(std::norm(sv.amplitude(0b001)), 0.0, 1e-12);
}

TEST(StateVector, QubitOrderingIsLittleEndian)
{
    // X on qubit 2 flips bit 2 of the index
    StateVector sv(3);
    sv.applyGate(qc::Gate(qc::GateType::X, {2}));
    EXPECT_NEAR(std::norm(sv.amplitude(0b100)), 1.0, 1e-12);
}

TEST(StateVector, CxControlTargetConvention)
{
    // control = operand 0: |10> (qubit0=1) -> |11>
    StateVector sv(2);
    sv.applyGate(qc::Gate(qc::GateType::X, {0}));
    sv.applyGate(qc::Gate(qc::GateType::CX, {0, 1}));
    EXPECT_NEAR(std::norm(sv.amplitude(0b11)), 1.0, 1e-12);
    // and with control 0 the target is untouched
    StateVector sv2(2);
    sv2.applyGate(qc::Gate(qc::GateType::CX, {0, 1}));
    EXPECT_NEAR(std::norm(sv2.amplitude(0b00)), 1.0, 1e-12);
}

TEST(StateVector, CcxAndCswapPermuteBasis)
{
    StateVector sv(3);
    sv.applyGate(qc::Gate(qc::GateType::X, {0}));
    sv.applyGate(qc::Gate(qc::GateType::X, {1}));
    sv.applyGate(qc::Gate(qc::GateType::CCX, {0, 1, 2}));
    EXPECT_NEAR(std::norm(sv.amplitude(0b111)), 1.0, 1e-12);

    StateVector sw(3);
    sw.applyGate(qc::Gate(qc::GateType::X, {0}));
    sw.applyGate(qc::Gate(qc::GateType::X, {1}));
    sw.applyGate(qc::Gate(qc::GateType::CSWAP, {0, 1, 2}));
    // control q0=1: qubits 1,2 swap -> |101>
    EXPECT_NEAR(std::norm(sw.amplitude(0b101)), 1.0, 1e-12);
}

TEST(StateVector, MeasurementCollapsesAndIsDeterministicOnBasisStates)
{
    stats::Rng rng(4);
    StateVector sv(2);
    sv.applyGate(qc::Gate(qc::GateType::X, {1}));
    EXPECT_EQ(sv.measure(1, rng), 1);
    EXPECT_EQ(sv.measure(0, rng), 0);
    EXPECT_NEAR(sv.norm(), 1.0, 1e-12);
}

TEST(StateVector, MeasurementOnGhzCorrelatesQubits)
{
    stats::Rng rng(9);
    for (int trial = 0; trial < 20; ++trial) {
        qc::Circuit c(2);
        c.h(0).cx(0, 1);
        StateVector sv = finalState(c);
        int first = sv.measure(0, rng);
        int second = sv.measure(1, rng);
        EXPECT_EQ(first, second);
    }
}

TEST(StateVector, ResetForcesZero)
{
    stats::Rng rng(2);
    StateVector sv(1);
    sv.applyGate(qc::Gate(qc::GateType::X, {0}));
    sv.reset(0, rng);
    EXPECT_NEAR(std::norm(sv.amplitude(0)), 1.0, 1e-12);
}

TEST(StateVector, ExpectationOfPauliStrings)
{
    qc::Circuit c(2);
    c.h(0).cx(0, 1); // GHZ2
    StateVector sv = finalState(c);
    EXPECT_NEAR(sv.expectation(qc::PauliString::fromLabel("ZZ")).real(),
                1.0, 1e-12);
    EXPECT_NEAR(sv.expectation(qc::PauliString::fromLabel("XX")).real(),
                1.0, 1e-12);
    EXPECT_NEAR(sv.expectation(qc::PauliString::fromLabel("YY")).real(),
                -1.0, 1e-12);
    EXPECT_NEAR(sv.expectation(qc::PauliString::fromLabel("ZI")).real(),
                0.0, 1e-12);
    EXPECT_NEAR(sv.expectationZ({0, 1}), 1.0, 1e-12);
    EXPECT_NEAR(sv.expectationZ({0}), 0.0, 1e-12);
}

TEST(StateVector, FidelityWith)
{
    StateVector a(1), b(1);
    EXPECT_NEAR(a.fidelityWith(b), 1.0, 1e-12);
    b.applyGate(qc::Gate(qc::GateType::H, {0}));
    EXPECT_NEAR(a.fidelityWith(b), 0.5, 1e-12);
    b.applyGate(qc::Gate(qc::GateType::H, {0}));
    EXPECT_NEAR(a.fidelityWith(b), 1.0, 1e-12);
}

TEST(StateVector, SamplingMatchesProbabilities)
{
    stats::Rng rng(31);
    qc::Circuit c(2);
    c.h(0);
    StateVector sv = finalState(c);
    std::size_t ones = 0;
    for (int i = 0; i < 5000; ++i)
        ones += sv.sampleBasisState(rng) & 1;
    EXPECT_NEAR(static_cast<double>(ones) / 5000.0, 0.5, 0.03);
}

TEST(StateVector, RejectsNonUnitaryInApplyGate)
{
    StateVector sv(1);
    EXPECT_THROW(sv.applyGate(qc::Gate(qc::GateType::MEASURE, {0})),
                 std::invalid_argument);
    EXPECT_THROW(sv.applyGate(qc::Gate(qc::GateType::RESET, {0})),
                 std::invalid_argument);
}

TEST(IdealDistribution, GhzGivesFiftyFifty)
{
    qc::Circuit c(2, 2);
    c.h(0).cx(0, 1).measureAll();
    auto dist = idealDistribution(c);
    EXPECT_NEAR(dist.probability("00"), 0.5, 1e-12);
    EXPECT_NEAR(dist.probability("11"), 0.5, 1e-12);
    EXPECT_NEAR(dist.totalMass(), 1.0, 1e-12);
}

TEST(IdealDistribution, HonorsClassicalBitMapping)
{
    qc::Circuit c(2, 2);
    c.x(0);
    c.measure(0, 1); // qubit 0 -> clbit 1
    c.measure(1, 0);
    auto dist = idealDistribution(c);
    EXPECT_NEAR(dist.probability("01"), 1.0, 1e-12);
}

TEST(IdealDistribution, RejectsMidCircuitOps)
{
    qc::Circuit c(1, 1);
    c.measure(0, 0);
    c.h(0);
    EXPECT_THROW(idealDistribution(c), std::invalid_argument);

    qc::Circuit r(1, 1);
    r.reset(0);
    r.measure(0, 0);
    EXPECT_THROW(idealDistribution(r), std::invalid_argument);
}

TEST(UnitaryHelper, HGate)
{
    qc::Circuit c(1);
    c.h(0);
    auto u = smq::test::circuitUnitary(c);
    double inv_sqrt2 = 1.0 / std::sqrt(2.0);
    EXPECT_NEAR(u[0][0].real(), inv_sqrt2, 1e-12);
    EXPECT_NEAR(u[1][1].real(), -inv_sqrt2, 1e-12);
}

} // namespace
} // namespace smq::sim
