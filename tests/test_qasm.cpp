/**
 * @file
 * Tests for OpenQASM 2.0 serialisation: writer output, parser
 * acceptance (expressions, aliases, comments), round-trips, and error
 * reporting.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "qc/library.hpp"
#include "qc/qasm.hpp"
#include "stats/rng.hpp"

namespace smq::qc {
namespace {

TEST(QasmWriter, EmitsHeaderAndGates)
{
    Circuit c(2, 2);
    c.h(0).cx(0, 1).rz(0.25, 1).measure(0, 0).measure(1, 1);
    std::string qasm = toQasm(c);
    EXPECT_NE(qasm.find("OPENQASM 2.0;"), std::string::npos);
    EXPECT_NE(qasm.find("qreg q[2];"), std::string::npos);
    EXPECT_NE(qasm.find("creg c[2];"), std::string::npos);
    EXPECT_NE(qasm.find("cx q[0],q[1];"), std::string::npos);
    EXPECT_NE(qasm.find("rz(0.25) q[1];"), std::string::npos);
    EXPECT_NE(qasm.find("measure q[0] -> c[0];"), std::string::npos);
}

TEST(QasmParser, ParsesBasicProgram)
{
    const char *text = R"(
        OPENQASM 2.0;
        include "qelib1.inc";
        // a comment
        qreg q[3];
        creg c[3];
        h q[0];
        cx q[0],q[1];
        u3(pi/2, 0, pi) q[2];
        barrier q;
        measure q[0] -> c[0];
        reset q[1];
    )";
    Circuit c = fromQasm(text);
    EXPECT_EQ(c.numQubits(), 3u);
    EXPECT_EQ(c.numClbits(), 3u);
    ASSERT_EQ(c.size(), 6u);
    EXPECT_EQ(c.gates()[0].type, GateType::H);
    EXPECT_EQ(c.gates()[2].type, GateType::U3);
    EXPECT_NEAR(c.gates()[2].params[0], M_PI / 2.0, 1e-12);
    EXPECT_NEAR(c.gates()[2].params[2], M_PI, 1e-12);
    EXPECT_EQ(c.gates()[3].type, GateType::BARRIER);
    EXPECT_EQ(c.gates()[5].type, GateType::RESET);
}

TEST(QasmParser, EvaluatesParameterExpressions)
{
    Circuit c = fromQasm("OPENQASM 2.0; qreg q[1];"
                         "rz(-(pi/4) + 2*0.5) q[0];"
                         "rx(1e-3) q[0];"
                         "ry((1+2)/4) q[0];");
    EXPECT_NEAR(c.gates()[0].params[0], -M_PI / 4.0 + 1.0, 1e-12);
    EXPECT_NEAR(c.gates()[1].params[0], 1e-3, 1e-15);
    EXPECT_NEAR(c.gates()[2].params[0], 0.75, 1e-12);
}

TEST(QasmParser, AcceptsAliases)
{
    Circuit c = fromQasm("OPENQASM 2.0; qreg q[2];"
                         "cnot q[0],q[1]; u1(0.5) q[0];");
    EXPECT_EQ(c.gates()[0].type, GateType::CX);
    EXPECT_EQ(c.gates()[1].type, GateType::P);
}

TEST(QasmParser, ReportsLineOnError)
{
    try {
        fromQasm("OPENQASM 2.0;\nqreg q[1];\nbadgate q[0];\n");
        FAIL() << "expected parse error";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
    }
}

TEST(QasmParser, RejectsUnknownRegister)
{
    EXPECT_THROW(fromQasm("OPENQASM 2.0; qreg q[1]; h r[0];"),
                 std::runtime_error);
    EXPECT_THROW(fromQasm("OPENQASM 2.0; h q[0];"), std::runtime_error);
}

TEST(QasmParser, RejectsMissingHeader)
{
    EXPECT_THROW(fromQasm("qreg q[1]; h q[0];"), std::runtime_error);
}

class QasmRoundTrip : public ::testing::TestWithParam<int>
{
};

TEST_P(QasmRoundTrip, LibraryCircuitsSurviveRoundTrip)
{
    stats::Rng rng(17);
    Circuit original;
    switch (GetParam()) {
      case 0:
        original = library::qft(4);
        break;
      case 1:
        original = library::bernsteinVazirani({1, 0, 1, 1});
        break;
      case 2:
        original = library::cuccaroAdder(3);
        break;
      case 3:
        original = library::wState(5);
        break;
      case 4:
        original = library::randomLayered(4, 4, rng);
        break;
      case 5:
        original = library::iterativePhaseEstimation(4);
        break;
      default:
        FAIL();
    }
    Circuit reparsed = fromQasm(toQasm(original));
    ASSERT_EQ(reparsed.size(), original.size());
    for (std::size_t i = 0; i < original.size(); ++i) {
        const Gate &a = original.gates()[i];
        const Gate &b = reparsed.gates()[i];
        EXPECT_EQ(a.type, b.type) << "gate " << i;
        EXPECT_EQ(a.qubits, b.qubits) << "gate " << i;
        EXPECT_EQ(a.cbit, b.cbit) << "gate " << i;
        ASSERT_EQ(a.params.size(), b.params.size());
        for (std::size_t p = 0; p < a.params.size(); ++p)
            EXPECT_NEAR(a.params[p], b.params[p], 1e-15);
    }
}

INSTANTIATE_TEST_SUITE_P(Library, QasmRoundTrip, ::testing::Range(0, 6));

} // namespace
} // namespace smq::qc
