/**
 * @file
 * Tests for the TFIM exact solvers: the Lanczos ground-state energy
 * against the free-fermion closed form (periodic) and against dense
 * reference values (open), plus the variational relationship with the
 * VQE benchmark.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/benchmarks/vqe.hpp"
#include "core/tfim.hpp"

namespace smq::core {
namespace {

TEST(TfimMatvec, MatchesHandComputedTwoSpinMatrix)
{
    // n = 2 open chain, J = h = 1:
    // H = -Z0 Z1 - X0 - X1 in basis |00>,|10>,|01>,|11> (little-endian)
    // diag(-1, 1, 1, -1) with -1 on every single-bit-flip offdiagonal.
    std::vector<double> x(4, 0.0), y(4, 0.0);
    x[0] = 1.0;
    applyTfim(x, y, 2, 1.0, 1.0, Boundary::Open);
    EXPECT_DOUBLE_EQ(y[0], -1.0);
    EXPECT_DOUBLE_EQ(y[1], -1.0);
    EXPECT_DOUBLE_EQ(y[2], -1.0);
    EXPECT_DOUBLE_EQ(y[3], 0.0);

    x = {0.0, 1.0, 0.0, 0.0};
    applyTfim(x, y, 2, 1.0, 1.0, Boundary::Open);
    EXPECT_DOUBLE_EQ(y[1], 1.0);
    EXPECT_DOUBLE_EQ(y[0], -1.0);
    EXPECT_DOUBLE_EQ(y[3], -1.0);
}

TEST(TfimMatvec, ValidatesArguments)
{
    std::vector<double> x(4), y(8);
    EXPECT_THROW(applyTfim(x, y, 2, 1.0, 1.0, Boundary::Open),
                 std::invalid_argument);
    EXPECT_THROW(applyTfim(x, x, 1, 1.0, 1.0, Boundary::Open),
                 std::invalid_argument);
}

TEST(TfimExact, TwoSpinGroundEnergyClosedForm)
{
    // n = 2 open chain: eigenvalues of the 4x4 are -1 +- sqrt(1+4h^2)/..
    // check against a direct 4x4 diagonalisation value at J = h = 1:
    // ground energy = -sqrt(5) for H = -ZZ - X0 - X1? verify by power
    // iteration below instead; here check the periodic closed form at
    // the h = 0 and J = 0 limits.
    EXPECT_NEAR(tfimGroundEnergyExact(6, 1.0, 0.0), -6.0, 1e-12);
    EXPECT_NEAR(tfimGroundEnergyExact(6, 0.0, 1.0), -6.0, 1e-12);
}

TEST(TfimExact, ThermodynamicLimitApproaches4OverPi)
{
    // critical TFIM (J = h = 1): E0/N -> -4/pi
    double per_site = tfimGroundEnergyExact(200, 1.0, 1.0) / 200.0;
    EXPECT_NEAR(per_site, -4.0 / M_PI, 1e-4);
}

class LanczosVsExact : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(LanczosVsExact, PeriodicChainMatchesFreeFermions)
{
    std::size_t n = GetParam();
    for (double h : {0.5, 1.0, 1.7}) {
        double lanczos =
            tfimGroundEnergyLanczos(n, 1.0, h, Boundary::Periodic);
        double exact = tfimGroundEnergyExact(n, 1.0, h);
        EXPECT_NEAR(lanczos, exact, 1e-7)
            << "n=" << n << " h=" << h;
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, LanczosVsExact,
                         ::testing::Values(2, 4, 6, 8, 10));

TEST(Lanczos, OpenChainMatchesDensePowerIteration)
{
    // dense reference for n = 3 (same construction as the VQE test)
    const std::size_t n = 3, dim = 8;
    std::vector<std::vector<double>> hmat(dim,
                                          std::vector<double>(dim, 0.0));
    for (std::size_t s = 0; s < dim; ++s) {
        for (std::size_t q = 0; q + 1 < n; ++q) {
            double zi = (s >> q) & 1 ? -1.0 : 1.0;
            double zj = (s >> (q + 1)) & 1 ? -1.0 : 1.0;
            hmat[s][s] -= zi * zj;
        }
        for (std::size_t q = 0; q < n; ++q)
            hmat[s ^ (1u << q)][s] -= 1.0;
    }
    std::vector<double> v(dim, 1.0);
    for (int it = 0; it < 5000; ++it) {
        std::vector<double> w(dim, 0.0);
        for (std::size_t r = 0; r < dim; ++r)
            for (std::size_t c = 0; c < dim; ++c)
                w[r] += (r == c ? 10.0 : 0.0) * v[c] - hmat[r][c] * v[c];
        double norm = 0.0;
        for (double x : w)
            norm += x * x;
        norm = std::sqrt(norm);
        for (std::size_t r = 0; r < dim; ++r)
            v[r] = w[r] / norm;
    }
    double e0 = 0.0;
    for (std::size_t r = 0; r < dim; ++r) {
        double hv = 0.0;
        for (std::size_t c = 0; c < dim; ++c)
            hv += hmat[r][c] * v[c];
        e0 += v[r] * hv;
    }

    double lanczos = tfimGroundEnergyLanczos(3, 1.0, 1.0, Boundary::Open);
    EXPECT_NEAR(lanczos, e0, 1e-8);
}

TEST(Lanczos, OpenBelowPeriodicPlusBondEnergy)
{
    // removing a bond can only raise the ground energy by at most 2J
    double open = tfimGroundEnergyLanczos(8, 1.0, 1.0, Boundary::Open);
    double periodic = tfimGroundEnergyExact(8, 1.0, 1.0);
    EXPECT_GT(open, periodic - 1e-9);
    EXPECT_LT(open, periodic + 2.0);
}

TEST(Lanczos, VqeIdealEnergyRespectsExactBound)
{
    for (std::size_t n : {3, 4, 5}) {
        VqeBenchmark bench(n, 2);
        double exact =
            tfimGroundEnergyLanczos(n, 1.0, 1.0, Boundary::Open);
        EXPECT_GE(bench.idealEnergy(), exact - 1e-9) << n;
        // a 2-layer HWEA should get within 20% of the ground energy
        EXPECT_LT(bench.idealEnergy(), 0.8 * exact) << n;
    }
}

} // namespace
} // namespace smq::core
