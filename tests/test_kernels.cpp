/**
 * @file
 * Intra-op kernel suite (`ctest -L perf`): byte-identity of the
 * pool-parallel dense/stabilizer kernels against serial execution,
 * threshold boundary behaviour, AVX2-vs-scalar bitwise equality, the
 * nested-parallelism guard, and two-qubit fusion absorption.
 *
 * "Byte-identical" is meant literally: amplitudes are compared with
 * memcmp, not a tolerance. The determinism rules that make this hold
 * (disjoint elementwise partitions, fixed-grain chunked reductions
 * folded in chunk order) are documented in sim/kernels.hpp.
 */

#include <gtest/gtest.h>

#include <complex>
#include <cstring>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/names.hpp"
#include "qc/circuit.hpp"
#include "sim/density_matrix.hpp"
#include "sim/fusion.hpp"
#include "sim/kernels.hpp"
#include "sim/stabilizer.hpp"
#include "sim/statevector.hpp"
#include "stats/rng.hpp"
#include "util/thread_pool.hpp"

using namespace smq;
namespace kernels = smq::sim::kernels;

namespace {

/** Bit-pattern equality for doubles (distinguishes -0.0 from 0.0). */
bool
bitEqual(double a, double b)
{
    return std::memcmp(&a, &b, sizeof(a)) == 0;
}

/** Non-Clifford mix of 1q/2q/3q gates exercising every kernel path. */
qc::Circuit
denseKernelCircuit(std::size_t n)
{
    qc::Circuit c(n);
    for (std::size_t q = 0; q < n; ++q)
        c.h(q);
    for (std::size_t q = 0; q + 1 < n; ++q)
        c.cx(q, q + 1);
    c.t(0).rz(0.37, 1).rx(1.1, 2).s(n - 1);
    c.cz(0, n - 1);
    c.swap(1, 2);
    if (n >= 3) {
        c.ccx(0, 1, 2);
        c.cswap(n - 1, 0, 1);
    }
    c.rz(-0.81, 0).t(n - 2);
    c.cx(n - 1, 0);
    return c;
}

/** Clifford-only circuit wide enough for multi-word tableau rows. */
qc::Circuit
cliffordKernelCircuit(std::size_t n)
{
    qc::Circuit c(n);
    for (std::size_t q = 0; q < n; ++q)
        c.h(q);
    for (std::size_t q = 0; q + 1 < n; ++q)
        c.cx(q, q + 1);
    for (std::size_t q = 0; q < n; q += 3)
        c.s(q);
    c.x(1).y(2).z(3);
    c.cz(0, n / 2);
    c.swap(2, n - 1);
    return c;
}

std::vector<sim::Complex>
runStateVector(const qc::Circuit &circuit)
{
    sim::StateVector sv(circuit.numQubits());
    for (const qc::Gate &g : circuit.gates())
        sv.applyGate(g);
    return sv.amplitudes();
}

std::vector<sim::Complex>
snapshotDm(const sim::DensityMatrix &rho)
{
    std::vector<sim::Complex> out;
    out.reserve(rho.dimension() * rho.dimension());
    for (std::size_t r = 0; r < rho.dimension(); ++r)
        for (std::size_t c = 0; c < rho.dimension(); ++c)
            out.push_back(rho.element(r, c));
    return out;
}

sim::DensityMatrix
runDensityMatrix(const qc::Circuit &circuit)
{
    sim::DensityMatrix rho(circuit.numQubits());
    for (const qc::Gate &g : circuit.gates())
        rho.applyGate(g);
    // Exercise the channel kernels too (closed-form + Kraus paths).
    rho.depolarize1(0, 0.01);
    rho.depolarize2(0, 1, 0.02);
    rho.thermalRelax(2, 0.003, 0.001);
    rho.amplitudeDamp(1, 0.005);
    rho.dephase(0, 0.004);
    return rho;
}

void
expectBitIdentical(const std::vector<sim::Complex> &a,
                   const std::vector<sim::Complex> &b, const char *what)
{
    ASSERT_EQ(a.size(), b.size()) << what;
    ASSERT_EQ(std::memcmp(a.data(), b.data(),
                          a.size() * sizeof(sim::Complex)),
              0)
        << what << ": states differ bitwise";
}

} // namespace

// ---------------------------------------------------------------------
// Parallel vs serial byte-identity
// ---------------------------------------------------------------------

TEST(KernelIdentity, StateVectorBitIdenticalAcrossJobs)
{
    qc::Circuit circuit = denseKernelCircuit(7);
    kernels::KernelConfigGuard guard;
    kernels::setKernelThreshold(1); // every kernel takes the split path

    kernels::setKernelJobs(1);
    std::vector<sim::Complex> serial = runStateVector(circuit);

    kernels::setForceParallel(true);
    for (std::size_t jobs : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
        kernels::setKernelJobs(jobs);
        std::vector<sim::Complex> par = runStateVector(circuit);
        expectBitIdentical(serial, par, "statevector");
    }
}

TEST(KernelIdentity, StateVectorReductionsBitIdenticalAcrossJobs)
{
    qc::Circuit circuit = denseKernelCircuit(8);
    kernels::KernelConfigGuard guard;
    kernels::setKernelThreshold(1);

    kernels::setKernelJobs(1);
    sim::StateVector serial(circuit.numQubits());
    for (const qc::Gate &g : circuit.gates())
        serial.applyGate(g);
    const double p1 = serial.probabilityOfOne(3);
    const double ez = serial.expectationZ(std::vector<std::size_t>{2});

    kernels::setForceParallel(true);
    for (std::size_t jobs : {std::size_t{2}, std::size_t{8}}) {
        kernels::setKernelJobs(jobs);
        sim::StateVector par(circuit.numQubits());
        for (const qc::Gate &g : circuit.gates())
            par.applyGate(g);
        EXPECT_TRUE(bitEqual(par.probabilityOfOne(3), p1)) << "jobs " << jobs;
        EXPECT_TRUE(bitEqual(par.expectationZ(std::vector<std::size_t>{2}),
                             ez))
            << "jobs " << jobs;
    }
}

TEST(KernelIdentity, DensityMatrixBitIdenticalAcrossJobs)
{
    qc::Circuit circuit = denseKernelCircuit(5);
    kernels::KernelConfigGuard guard;
    kernels::setKernelThreshold(1);

    kernels::setKernelJobs(1);
    sim::DensityMatrix serial = runDensityMatrix(circuit);
    std::vector<sim::Complex> ref = snapshotDm(serial);
    const double purity = serial.purity();

    kernels::setForceParallel(true);
    for (std::size_t jobs : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
        kernels::setKernelJobs(jobs);
        sim::DensityMatrix par = runDensityMatrix(circuit);
        expectBitIdentical(ref, snapshotDm(par), "density matrix");
        EXPECT_TRUE(bitEqual(par.purity(), purity)) << "jobs " << jobs;
    }
}

TEST(KernelIdentity, StabilizerBitIdenticalAcrossJobs)
{
    // 70 qubits: two 64-bit words per row, so the word loops and the
    // partial top word are both exercised.
    qc::Circuit circuit = cliffordKernelCircuit(70);
    kernels::KernelConfigGuard guard;
    kernels::setKernelThreshold(1);

    auto runTableau = [&](std::vector<int> *outcomes) {
        sim::StabilizerSimulator st(circuit.numQubits());
        for (const qc::Gate &g : circuit.gates())
            st.applyGate(g);
        stats::Rng rng(42);
        for (std::size_t q = 0; q < 8; ++q)
            outcomes->push_back(st.measure(q, rng));
        return st;
    };

    kernels::setKernelJobs(1);
    std::vector<int> serial_outcomes;
    sim::StabilizerSimulator serial = runTableau(&serial_outcomes);

    kernels::setForceParallel(true);
    for (std::size_t jobs : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
        kernels::setKernelJobs(jobs);
        std::vector<int> outcomes;
        sim::StabilizerSimulator par = runTableau(&outcomes);
        EXPECT_EQ(outcomes, serial_outcomes) << "jobs " << jobs;
        EXPECT_TRUE(par.identicalTo(serial)) << "jobs " << jobs;
    }
}

// ---------------------------------------------------------------------
// Threshold boundary
// ---------------------------------------------------------------------

TEST(KernelThreshold, BoundaryDecidesParallelVsSerial)
{
    // applyMatrix1 on n qubits touches 2^n amplitudes; the dispatch
    // goes parallel iff elements >= threshold (and jobs > 1).
    constexpr std::size_t kQubits = 6;
    constexpr std::size_t kElements = std::size_t{1} << kQubits;

    obs::setMetricsEnabled(true);
    obs::Counter &par_ops = obs::counter(obs::names::kSimKernelParallelOps);
    obs::Counter &ser_ops = obs::counter(obs::names::kSimKernelSerialOps);

    kernels::KernelConfigGuard guard;
    kernels::setKernelJobs(2);

    auto countGate = [&](std::size_t threshold, std::uint64_t *par_delta,
                         std::uint64_t *ser_delta) {
        kernels::setKernelThreshold(threshold);
        sim::StateVector sv(kQubits);
        const std::uint64_t p0 = par_ops.value();
        const std::uint64_t s0 = ser_ops.value();
        sv.applyGate(qc::Gate(qc::GateType::H, {0}));
        *par_delta = par_ops.value() - p0;
        *ser_delta = ser_ops.value() - s0;
    };

    std::uint64_t par = 0, ser = 0;
    countGate(kElements, &par, &ser); // threshold == elements: parallel
    EXPECT_EQ(par, 1u);
    EXPECT_EQ(ser, 0u);

    countGate(kElements + 1, &par, &ser); // one past: serial
    EXPECT_EQ(par, 0u);
    EXPECT_EQ(ser, 1u);

    countGate(0, &par, &ser); // degenerate thresholds: always parallel
    EXPECT_EQ(par, 1u);
    countGate(1, &par, &ser);
    EXPECT_EQ(par, 1u);

    obs::setMetricsEnabled(false);
}

TEST(KernelThreshold, SingleJobStaysSerial)
{
    obs::setMetricsEnabled(true);
    obs::Counter &par_ops = obs::counter(obs::names::kSimKernelParallelOps);

    kernels::KernelConfigGuard guard;
    kernels::setKernelThreshold(1);
    kernels::setKernelJobs(1);

    const std::uint64_t p0 = par_ops.value();
    sim::StateVector sv(8);
    sv.applyGate(qc::Gate(qc::GateType::H, {0}));
    EXPECT_EQ(par_ops.value(), p0);

    obs::setMetricsEnabled(false);
}

// ---------------------------------------------------------------------
// SIMD dispatch
// ---------------------------------------------------------------------

TEST(KernelSimd, Avx2MatchesScalarBitwise)
{
    if (!kernels::avx2Supported())
        GTEST_SKIP() << "no AVX2 on this CPU";

    qc::Circuit circuit = denseKernelCircuit(8);
    kernels::KernelConfigGuard guard;
    kernels::setKernelJobs(1);

    kernels::setSimdMode(kernels::SimdMode::Scalar);
    ASSERT_FALSE(kernels::usingAvx2());
    std::vector<sim::Complex> scalar = runStateVector(circuit);

    kernels::setSimdMode(kernels::SimdMode::Avx2);
    if (!kernels::usingAvx2())
        GTEST_SKIP() << "AVX2 not compiled in (SMQ_SIMD=off)";
    std::vector<sim::Complex> avx = runStateVector(circuit);
    expectBitIdentical(scalar, avx, "avx2 vs scalar statevector");

    kernels::setSimdMode(kernels::SimdMode::Scalar);
    sim::DensityMatrix dm_scalar = runDensityMatrix(circuit);
    kernels::setSimdMode(kernels::SimdMode::Avx2);
    sim::DensityMatrix dm_avx = runDensityMatrix(circuit);
    expectBitIdentical(snapshotDm(dm_scalar), snapshotDm(dm_avx),
                       "avx2 vs scalar density matrix");
}

// ---------------------------------------------------------------------
// Nested-parallelism guard
// ---------------------------------------------------------------------

TEST(KernelGuard, NestedKernelsDegradeToSerial)
{
    obs::setMetricsEnabled(true);
    obs::Counter &par_ops = obs::counter(obs::names::kSimKernelParallelOps);
    obs::Counter &ser_ops = obs::counter(obs::names::kSimKernelSerialOps);

    kernels::KernelConfigGuard guard;
    kernels::setKernelThreshold(1);
    kernels::setKernelJobs(4);

    // Inside a util::parallelFor worker (a grid cell), kernels must
    // refuse to fork a second pool and run serial instead.
    const std::uint64_t p0 = par_ops.value();
    const std::uint64_t s0 = ser_ops.value();
    util::parallelFor(2, 2, [&](std::size_t) {
        sim::StateVector sv(6);
        sv.applyGate(qc::Gate(qc::GateType::H, {0}));
    });
    EXPECT_EQ(par_ops.value(), p0) << "nested kernel went parallel";
    EXPECT_EQ(ser_ops.value() - s0, 2u);

    // forceParallel overrides the guard (the fuzz sweep relies on it).
    kernels::setForceParallel(true);
    const std::uint64_t p1 = par_ops.value();
    util::parallelFor(2, 2, [&](std::size_t) {
        sim::StateVector sv(6);
        sv.applyGate(qc::Gate(qc::GateType::H, {0}));
    });
    EXPECT_EQ(par_ops.value() - p1, 2u) << "force did not override guard";

    obs::setMetricsEnabled(false);
}

// ---------------------------------------------------------------------
// Two-qubit fusion absorption
// ---------------------------------------------------------------------

TEST(FusionTwoQubit, AdjacentSamePairOpsMergeWithAbsorbedRuns)
{
    qc::Circuit c(2);
    c.cx(0, 1);
    c.rz(0.3, 0);
    c.cx(0, 1);
    auto ops = sim::fuseUnitaryCircuit(c);
    ASSERT_EQ(ops.size(), 1u);
    EXPECT_EQ(ops[0].kind, sim::FusedOp::Kind::Unitary2);
    EXPECT_EQ(ops[0].sourceGates, 3u);

    sim::StateVector fused(2);
    fused.applyUnitaryCircuit(c);
    sim::StateVector plain(2);
    for (const qc::Gate &g : c.gates())
        plain.applyGate(g);
    for (std::size_t i = 0; i < fused.dimension(); ++i) {
        EXPECT_NEAR(std::abs(fused.amplitude(i) - plain.amplitude(i)), 0.0,
                    1e-12)
            << "basis state " << i;
    }
}

TEST(FusionTwoQubit, ReversedPairDoesNotMerge)
{
    qc::Circuit c(2);
    c.cx(0, 1);
    c.cx(1, 0);
    auto ops = sim::fuseUnitaryCircuit(c);
    ASSERT_EQ(ops.size(), 2u);
    std::size_t absorbed = 0;
    for (const auto &op : ops)
        absorbed += op.sourceGates;
    EXPECT_EQ(absorbed, c.gates().size());
}

TEST(FusionTwoQubit, InterveningOtherQubitGateStaysCommuted)
{
    // H(2) between the two CX(0,1) commutes with them; the CXs still
    // merge and the overall unitary is unchanged.
    qc::Circuit c(3);
    c.cx(0, 1);
    c.h(2);
    c.t(1);
    c.cx(0, 1);
    auto ops = sim::fuseUnitaryCircuit(c);
    std::size_t absorbed = 0;
    std::size_t two_qubit = 0;
    for (const auto &op : ops) {
        absorbed += op.sourceGates;
        if (op.kind == sim::FusedOp::Kind::Unitary2)
            ++two_qubit;
    }
    EXPECT_EQ(absorbed, c.gates().size());
    EXPECT_EQ(two_qubit, 1u);

    sim::StateVector fused(3);
    fused.applyUnitaryCircuit(c);
    sim::StateVector plain(3);
    for (const qc::Gate &g : c.gates())
        plain.applyGate(g);
    for (std::size_t i = 0; i < fused.dimension(); ++i) {
        EXPECT_NEAR(std::abs(fused.amplitude(i) - plain.amplitude(i)), 0.0,
                    1e-12)
            << "basis state " << i;
    }
}
