/**
 * @file
 * Tests for the Pauli-string algebra: parsing, products, commutation,
 * and exact conjugation by every supported Clifford gate, verified
 * against dense matrix conjugation.
 */

#include <gtest/gtest.h>

#include <complex>

#include "qc/pauli.hpp"
#include "stats/rng.hpp"
#include "test_helpers.hpp"

namespace smq::qc {
namespace {

using smq::test::CMatrix;

/** Dense matrix of a PauliString (i^r X^x Z^z). */
CMatrix
pauliMatrix(const PauliString &p)
{
    std::size_t n = p.numQubits();
    std::size_t dim = std::size_t{1} << n;
    CMatrix m(dim, std::vector<std::complex<double>>(dim, 0.0));
    static const std::complex<double> phases[4] = {
        {1, 0}, {0, 1}, {-1, 0}, {0, -1}};
    std::size_t xm = 0, zm = 0;
    for (std::size_t q = 0; q < n; ++q) {
        if (p.xBit(q))
            xm |= std::size_t{1} << q;
        if (p.zBit(q))
            zm |= std::size_t{1} << q;
    }
    for (std::size_t s = 0; s < dim; ++s) {
        double sign = __builtin_parityll(s & zm) ? -1.0 : 1.0;
        m[s ^ xm][s] = phases[p.phasePower()] * sign;
    }
    return m;
}

TEST(PauliString, LabelRoundTrip)
{
    for (const char *label : {"XIYZ", "III", "YYY", "ZXZX"}) {
        PauliString p = PauliString::fromLabel(label);
        EXPECT_EQ(p.toString(), std::string("+") + label);
    }
    EXPECT_THROW(PauliString::fromLabel("XQ"), std::invalid_argument);
}

TEST(PauliString, WeightSupportAndZType)
{
    PauliString p = PauliString::fromLabel("XIZI");
    EXPECT_EQ(p.weight(), 2u);
    EXPECT_EQ(p.support(), (std::vector<std::size_t>{0, 2}));
    EXPECT_FALSE(p.isZType());
    EXPECT_TRUE(PauliString::fromLabel("IZZI").isZType());
    EXPECT_TRUE(PauliString(3).isIdentity());
}

TEST(PauliString, SignOfZTypeStrings)
{
    PauliString z = PauliString::fromLabel("ZZ");
    EXPECT_EQ(z.sign(), 1);
    z.setPhasePower(2);
    EXPECT_EQ(z.sign(), -1);
    z.setPhasePower(1);
    EXPECT_THROW(z.sign(), std::logic_error);
    EXPECT_THROW(PauliString::fromLabel("XZ").sign(), std::logic_error);
}

TEST(PauliString, ProductsCarryExactPhases)
{
    // X * Y = iZ, Y * X = -iZ, X * Z = -iY
    PauliString x = PauliString::fromLabel("X");
    PauliString y = PauliString::fromLabel("Y");
    PauliString z = PauliString::fromLabel("Z");
    EXPECT_EQ((x * y).toString(), "+iZ");
    EXPECT_EQ((y * x).toString(), "-iZ");
    EXPECT_EQ((x * z).toString(), "-iY");
    EXPECT_EQ((z * x).toString(), "+iY");
    EXPECT_EQ((x * x).toString(), "+I");
}

TEST(PauliString, ProductMatchesMatrixProduct)
{
    stats::Rng rng(23);
    const char *letters = "IXYZ";
    for (int trial = 0; trial < 50; ++trial) {
        std::string la, lb;
        for (int q = 0; q < 3; ++q) {
            la.push_back(letters[rng.index(4)]);
            lb.push_back(letters[rng.index(4)]);
        }
        PauliString a = PauliString::fromLabel(la);
        PauliString b = PauliString::fromLabel(lb);
        CMatrix expect = smq::test::matmul(pauliMatrix(a), pauliMatrix(b));
        CMatrix got = pauliMatrix(a * b);
        double d = 0.0;
        for (std::size_t r = 0; r < expect.size(); ++r) {
            for (std::size_t c = 0; c < expect.size(); ++c)
                d += std::norm(expect[r][c] - got[r][c]);
        }
        EXPECT_LT(d, 1e-18) << la << " * " << lb;
    }
}

TEST(PauliString, CommutationMatchesDefinition)
{
    EXPECT_FALSE(PauliString::fromLabel("X").commutesWith(
        PauliString::fromLabel("Z")));
    EXPECT_TRUE(PauliString::fromLabel("XX").commutesWith(
        PauliString::fromLabel("ZZ")));
    EXPECT_TRUE(PauliString::fromLabel("XY").commutesWith(
        PauliString::fromLabel("YX")));
    EXPECT_FALSE(PauliString::fromLabel("XYI").commutesWith(
        PauliString::fromLabel("XZI")));
}

/** Gate types covered by conjugation, with arity. */
struct ConjCase
{
    GateType type;
    std::size_t arity;
};

class PauliConjugation : public ::testing::TestWithParam<ConjCase>
{
};

TEST_P(PauliConjugation, MatchesDenseConjugationOnAllPaulis)
{
    const auto [type, arity] = GetParam();
    std::vector<Qubit> qubits;
    for (std::size_t i = 0; i < arity; ++i)
        qubits.push_back(static_cast<Qubit>(i));
    Gate gate(type, qubits);

    Circuit c(arity);
    c.append(gate);
    CMatrix u = smq::test::circuitUnitary(c);

    const char *letters = "IXYZ";
    std::size_t n_labels = 1;
    for (std::size_t i = 0; i < arity; ++i)
        n_labels *= 4;
    for (std::size_t code = 0; code < n_labels; ++code) {
        std::string label;
        std::size_t rest = code;
        for (std::size_t q = 0; q < arity; ++q) {
            label.push_back(letters[rest % 4]);
            rest /= 4;
        }
        PauliString p = PauliString::fromLabel(label);
        PauliString conj = p;
        conj.conjugateBy(gate);

        // expected: U P U^dagger
        CMatrix up = smq::test::matmul(u, pauliMatrix(p));
        CMatrix udg(u.size(),
                    std::vector<std::complex<double>>(u.size()));
        for (std::size_t r = 0; r < u.size(); ++r) {
            for (std::size_t cc = 0; cc < u.size(); ++cc)
                udg[r][cc] = std::conj(u[cc][r]);
        }
        CMatrix expect = smq::test::matmul(up, udg);
        CMatrix got = pauliMatrix(conj);
        double d = 0.0;
        for (std::size_t r = 0; r < expect.size(); ++r) {
            for (std::size_t cc = 0; cc < expect.size(); ++cc)
                d += std::norm(expect[r][cc] - got[r][cc]);
        }
        EXPECT_LT(d, 1e-18)
            << gateName(type) << " on " << label << " -> "
            << conj.toString();
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllCliffordGates, PauliConjugation,
    ::testing::Values(ConjCase{GateType::I, 1}, ConjCase{GateType::X, 1},
                      ConjCase{GateType::Y, 1}, ConjCase{GateType::Z, 1},
                      ConjCase{GateType::H, 1}, ConjCase{GateType::S, 1},
                      ConjCase{GateType::SDG, 1},
                      ConjCase{GateType::SX, 1},
                      ConjCase{GateType::SXDG, 1},
                      ConjCase{GateType::CX, 2},
                      ConjCase{GateType::CY, 2},
                      ConjCase{GateType::CZ, 2},
                      ConjCase{GateType::SWAP, 2}),
    [](const ::testing::TestParamInfo<ConjCase> &info) {
        return gateName(info.param.type);
    });

TEST(PauliConjugationErrors, RejectsNonClifford)
{
    PauliString p = PauliString::fromLabel("X");
    EXPECT_THROW(p.conjugateBy(Gate(GateType::T, {0})),
                 std::invalid_argument);
    EXPECT_THROW(p.conjugateBy(Gate(GateType::RZ, {0}, {0.1})),
                 std::invalid_argument);
}

TEST(PauliConjugation, ThroughCircuitComposes)
{
    Circuit c(2);
    c.h(0).cx(0, 1);
    // Z0 -> (after H) X0 -> (after CX) X0 X1
    PauliString p = PauliString::fromLabel("ZI");
    p.conjugateByCircuit(c);
    EXPECT_EQ(p.toString(), "+XX");
}

} // namespace
} // namespace smq::qc
