/**
 * @file
 * Telemetry-consumer tests (`ctest -L report`).
 *
 * Four properties carry the consumer layer:
 *  1. The run-history store is durable and tolerant: records round-trip
 *     exactly, a crash-truncated tail line is skipped (and compacted
 *     away), newer schema versions load best-effort, and eight
 *     concurrent appenders interleave whole lines only.
 *  2. The sentinel's verdict is robust and its exit codes are a stable
 *     contract: a synthetic 2x slowdown exits 1, a matching run exits
 *     0, thin baselines pass on grace, bad usage exits 2.
 *  3. Live progress never perturbs results: a --jobs 8 grid with the
 *     JSONL heartbeat enabled is byte-identical to a silent serial
 *     grid.
 *  4. The HTML report round-trips from a real traced grid run and is
 *     self-contained (inline SVG, no external references).
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "fig_data.hpp"
#include "obs/fsio.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/names.hpp"
#include "obs/progress.hpp"
#include "report/history.hpp"
#include "report/html_report.hpp"
#include "report/sentinel.hpp"
#include "report/sentinel_cli.hpp"

using namespace smq;

namespace {

class ReportTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        obs::resetMetrics();
        obs::setMetricsEnabled(true);
    }
    void TearDown() override
    {
        obs::stopProgress();
        obs::setMetricsEnabled(false);
        obs::resetMetrics();
    }
};

std::filesystem::path
freshDir(const std::string &name)
{
    std::filesystem::path dir =
        std::filesystem::path(::testing::TempDir()) / name;
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir;
}

report::HistoryRecord
sampleRecord(double grid_ms = 120.0)
{
    report::HistoryRecord rec;
    rec.tool = "bench_perf";
    rec.gitRev = "abc1234";
    rec.deviceTableVersion = "v1";
    rec.seed = 7;
    rec.shots = 100;
    rec.repetitions = 2;
    rec.jobs = 4;
    const std::uint64_t ns =
        static_cast<std::uint64_t>(grid_ms * 1e6);
    rec.stages["fig2_grid_serial"] = obs::StageRollup{1, ns, ns, ns};
    rec.counters["sim.shots"] = 4200;
    rec.values["obs_overhead_frac"] = 0.004;
    rec.values["score.ghz@IonQ"] = 0.93;
    rec.extra["note"] = "quote\" and \\backslash";
    return rec;
}

/**
 * Minimal BENCH_perf.json with one grid stage at @p grid_ms. A
 * negative @p propagation_frac writes a pre-PR-9 file without the
 * propagation measurement.
 */
void
writePerfJson(const std::filesystem::path &path, double grid_ms,
              double propagation_frac = -1.0)
{
    std::ostringstream out;
    out << "{\n  \"threads_available\": 4,\n  \"grid_jobs\": 4,\n"
        << "  \"config\": {\"shots\": 100, \"repetitions\": 2, "
        << "\"full\": false},\n  \"stages\": [\n"
        << "    {\"name\": \"fig2_grid_serial\", \"wall_ms\": "
        << grid_ms << "}\n  ],\n"
        << "  \"obs_overhead\": {\"metrics_off_ms\": 10.0, "
        << "\"metrics_on_ms\": 10.04, \"overhead_frac\": 0.004, ";
    if (propagation_frac >= 0.0)
        out << "\"propagation_frac\": " << propagation_frac << ", ";
    out << "\"within_2pct\": true}\n}\n";
    ASSERT_TRUE(obs::atomicWriteFile(path.string(), out.str()));
}

/** One Chrome trace-event line for a hand-built trace.json. */
std::string
traceEvent(const char *name, double ts_us, double dur_us, int tid,
           const std::string &trace_id)
{
    std::ostringstream out;
    out.setf(std::ios::fixed);
    out.precision(3);
    out << "{\"name\":\"" << name
        << "\",\"cat\":\"smq\",\"ph\":\"X\",\"ts\":" << ts_us
        << ",\"dur\":" << dur_us << ",\"tid\":" << tid
        << ",\"args\":{\"trace.id\":\"" << trace_id << "\"}}";
    return out.str();
}

void
writeTraceJson(const std::filesystem::path &dir,
               const std::string &events)
{
    std::filesystem::create_directories(dir);
    ASSERT_TRUE(obs::atomicWriteFile(
        (dir / "trace.json").string(),
        "{\"traceEvents\":[" + events + "]}\n"));
}

const std::string kTraceA(32, 'a');
const std::string kTraceB(32, 'b');

/**
 * A synthetic two-process trace pair: a client dir with one `submit`
 * span and a daemon dir whose clock epoch sits 44 s later, holding
 * the server-side spans of the same trace plus one span of an
 * unrelated trace. @p ts_shift_us moves a dir's epoch without moving
 * any span relative to its siblings — stitching must erase it.
 */
void
writeStitchDirs(const std::filesystem::path &client,
                const std::filesystem::path &daemon,
                double client_shift_us = 0.0,
                double daemon_shift_us = 0.0)
{
    writeTraceJson(client, traceEvent("submit", 7000.0 + client_shift_us,
                                      900.0, 1, kTraceB));
    writeTraceJson(
        daemon,
        traceEvent("serve.job", 52000.0 + daemon_shift_us, 400.0, 4,
                   kTraceB) +
            "," +
            traceEvent("serve.queue_wait", 51000.0 + daemon_shift_us,
                       800.0, 4, kTraceB) +
            "," +
            traceEvent("job", 52050.0 + daemon_shift_us, 300.0, 4,
                       kTraceA));
}

std::string
slurpFile(const std::filesystem::path &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream contents;
    contents << in.rdbuf();
    return contents.str();
}

bench::Scale
miniScale()
{
    bench::Scale scale;
    scale.defaultShots = 30;
    scale.repetitions = 2;
    scale.useCache = false;
    return scale;
}

} // namespace

// ---------------------------------------------------------------------
// Run-history store
// ---------------------------------------------------------------------

TEST_F(ReportTest, HistoryRecordRoundTripsThroughJsonLine)
{
    report::HistoryRecord rec = sampleRecord();
    const std::string line = rec.toJsonLine();
    EXPECT_EQ(line.find('\n'), std::string::npos);

    report::HistoryRecord back = report::HistoryRecord::fromJsonLine(line);
    EXPECT_EQ(back.schema, report::kHistorySchema);
    EXPECT_EQ(back.tool, rec.tool);
    EXPECT_EQ(back.gitRev, rec.gitRev);
    EXPECT_EQ(back.seed, rec.seed);
    EXPECT_EQ(back.shots, rec.shots);
    EXPECT_EQ(back.repetitions, rec.repetitions);
    EXPECT_EQ(back.jobs, rec.jobs);
    ASSERT_EQ(back.stages.count("fig2_grid_serial"), 1u);
    EXPECT_EQ(back.stages["fig2_grid_serial"].totalNs,
              rec.stages["fig2_grid_serial"].totalNs);
    EXPECT_EQ(back.counters["sim.shots"], 4200u);
    EXPECT_DOUBLE_EQ(back.values["score.ghz@IonQ"], 0.93);
    EXPECT_EQ(back.extra["note"], "quote\" and \\backslash");
    // Exact re-serialization: the line is a fixed point.
    EXPECT_EQ(back.toJsonLine(), line);
}

TEST_F(ReportTest, LoadSkipsCorruptTailAndCompactionDropsIt)
{
    const std::filesystem::path dir = freshDir("report_corrupt_tail");
    const std::string store = (dir / "runs.jsonl").string();
    ASSERT_TRUE(report::appendHistory(store, sampleRecord(100.0)));
    ASSERT_TRUE(report::appendHistory(store, sampleRecord(110.0)));
    {
        // Simulate a crash mid-append: half a record, no newline.
        std::ofstream out(store, std::ios::app);
        out << "{\"schema\":\"smq-run-history-v1\",\"tool\":\"ben";
    }
    report::HistoryLoad load = report::loadHistory(store);
    EXPECT_EQ(load.records.size(), 2u);
    EXPECT_EQ(load.skippedLines, 1u);
    EXPECT_TRUE(load.corruptTail);

    ASSERT_TRUE(report::compactHistory(store));
    load = report::loadHistory(store);
    EXPECT_EQ(load.records.size(), 2u);
    EXPECT_EQ(load.skippedLines, 0u);
    EXPECT_FALSE(load.corruptTail);

    // keepLast drops the oldest records atomically.
    ASSERT_TRUE(report::compactHistory(store, 1));
    load = report::loadHistory(store);
    ASSERT_EQ(load.records.size(), 1u);
    EXPECT_EQ(load.records[0].stages["fig2_grid_serial"].totalNs,
              static_cast<std::uint64_t>(110.0 * 1e6));
}

TEST_F(ReportTest, LoadAcceptsNewerSchemaVersionsAndSkipsForeignOnes)
{
    const std::filesystem::path dir = freshDir("report_mixed_schema");
    const std::string store = (dir / "runs.jsonl").string();
    report::HistoryRecord v1 = sampleRecord();
    ASSERT_TRUE(report::appendHistory(store, v1));
    // A v2 writer: same shape plus a field this loader doesn't know.
    std::string v2_line = v1.toJsonLine();
    const std::string from = "\"schema\":\"smq-run-history-v1\"";
    v2_line.replace(v2_line.find(from), from.size(),
                    "\"schema\":\"smq-run-history-v2\",\"future\":1");
    ASSERT_TRUE(obs::appendLineDurable(store, v2_line));
    // A foreign producer's line: parseable JSON, wrong schema family.
    ASSERT_TRUE(obs::appendLineDurable(
        store, "{\"schema\":\"other-format-v1\",\"tool\":\"x\"}"));

    report::HistoryLoad load = report::loadHistory(store);
    ASSERT_EQ(load.records.size(), 2u);
    EXPECT_EQ(load.records[1].schema, "smq-run-history-v2");
    EXPECT_EQ(load.records[1].tool, "bench_perf");
    EXPECT_EQ(load.skippedLines, 1u);
}

TEST_F(ReportTest, ConcurrentAppendsInterleaveWholeLinesOnly)
{
    const std::filesystem::path dir = freshDir("report_concurrent");
    const std::string store = (dir / "runs.jsonl").string();
    constexpr int kThreads = 8;
    constexpr int kAppendsPerThread = 25;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&store, t] {
            for (int i = 0; i < kAppendsPerThread; ++i) {
                report::HistoryRecord rec = sampleRecord(
                    100.0 + t * kAppendsPerThread + i);
                rec.seed = static_cast<std::uint64_t>(t);
                EXPECT_TRUE(report::appendHistory(store, rec));
            }
        });
    }
    for (std::thread &t : threads)
        t.join();

    report::HistoryLoad load = report::loadHistory(store);
    EXPECT_EQ(load.records.size(),
              static_cast<std::size_t>(kThreads * kAppendsPerThread));
    EXPECT_EQ(load.skippedLines, 0u);
    EXPECT_EQ(obs::counter(obs::names::kHistoryAppends).value(),
              static_cast<std::uint64_t>(kThreads * kAppendsPerThread));
}

// ---------------------------------------------------------------------
// Perf-regression sentinel
// ---------------------------------------------------------------------

TEST_F(ReportTest, CheckPerfFlagsTwoTimesSlowdownAndPassesSteadyState)
{
    std::vector<report::HistoryRecord> history = {
        sampleRecord(100.0), sampleRecord(102.0), sampleRecord(98.0)};
    report::PerfSnapshot current;
    current.shots = 100;
    current.repetitions = 2;
    current.stageMs["fig2_grid_serial"] = 101.0;

    report::CheckReport steady = report::checkPerf(current, history);
    EXPECT_FALSE(steady.regression());

    current.stageMs["fig2_grid_serial"] = 200.0; // synthetic 2x
    report::CheckReport slow = report::checkPerf(current, history);
    EXPECT_TRUE(slow.regression());
    EXPECT_NE(slow.render().find("REGRESSED"), std::string::npos);
}

TEST_F(ReportTest, CheckPerfGracesThinBaselinesAndConfigMismatches)
{
    report::PerfSnapshot current;
    current.shots = 100;
    current.repetitions = 2;
    current.stageMs["fig2_grid_serial"] = 500.0;

    // No baseline at all: first run passes.
    report::CheckReport first =
        report::checkPerf(current, {});
    EXPECT_FALSE(first.regression());
    EXPECT_EQ(first.baselineRuns, 0u);

    // Two runs when three are required: small-sample grace.
    std::vector<report::HistoryRecord> thin = {sampleRecord(100.0),
                                               sampleRecord(101.0)};
    report::CheckReport graced = report::checkPerf(current, thin);
    EXPECT_FALSE(graced.regression());
    EXPECT_NE(graced.render().find("grace"), std::string::npos);

    // A different workload config never matches the trajectory.
    std::vector<report::HistoryRecord> other = {
        sampleRecord(100.0), sampleRecord(100.0), sampleRecord(100.0)};
    for (report::HistoryRecord &rec : other)
        rec.shots = 999;
    report::CheckReport mismatched = report::checkPerf(current, other);
    EXPECT_FALSE(mismatched.regression());
    EXPECT_EQ(mismatched.baselineRuns, 0u);
}

TEST_F(ReportTest, SentinelCliExitCodesAreAStableContract)
{
    const std::filesystem::path dir = freshDir("report_sentinel_cli");
    const std::string store = (dir / "runs.jsonl").string();
    const std::string perf = (dir / "BENCH_perf.json").string();
    writePerfJson(perf, 100.0);

    std::ostringstream out, err;
    auto run = [&](std::vector<std::string> args) {
        out.str("");
        err.str("");
        return report::sentinelMain(args, out, err);
    };

    // Usage errors exit 2.
    EXPECT_EQ(run({}), report::kSentinelUsage);
    EXPECT_EQ(run({"frobnicate"}), report::kSentinelUsage);
    EXPECT_EQ(run({"check", perf}), report::kSentinelUsage);
    EXPECT_EQ(run({"check", (dir / "missing.json").string(),
                   "--baseline", store}),
              report::kSentinelUsage);

    // First run: no store yet, passes on grace.
    EXPECT_EQ(run({"check", perf, "--baseline", store}),
              report::kSentinelOk);
    EXPECT_NE(out.str().find("grace"), std::string::npos);

    // Promote three baseline runs, then a matching check passes...
    for (int i = 0; i < 3; ++i)
        EXPECT_EQ(run({"baseline", perf, "--history", store}),
                  report::kSentinelOk);
    EXPECT_EQ(run({"check", perf, "--baseline", store}),
              report::kSentinelOk);
    EXPECT_NE(out.str().find("verdict: ok"), std::string::npos);

    // ...and a synthetic 2x slowdown fails with exit 1.
    writePerfJson(perf, 200.0);
    EXPECT_EQ(run({"check", perf, "--baseline", store}),
              report::kSentinelRegression);
    EXPECT_NE(out.str().find("REGRESSED"), std::string::npos);

    // A looser threshold can wave the same slowdown through.
    EXPECT_EQ(run({"check", perf, "--baseline", store, "--threshold",
                   "2.5"}),
              report::kSentinelOk);
}

TEST_F(ReportTest, SentinelIngestFlattensManifestDirectories)
{
    const std::filesystem::path dir = freshDir("report_ingest");
    const std::string store = (dir / "runs.jsonl").string();
    std::filesystem::create_directories(dir / "nested");
    {
        bench::Scale scale = miniScale();
        bench::ObsSession session("ingest_tool", scale);
        session.note("origin", "test");
    }
    // ObsSession writes into the CWD; move the manifest under dir.
    std::filesystem::rename("ingest_tool_manifest.json",
                            dir / "nested" / "ingest_tool_manifest.json");

    std::ostringstream out, err;
    EXPECT_EQ(report::sentinelMain({"ingest", dir.string(), "--history",
                                    store},
                                   out, err),
              report::kSentinelOk);
    EXPECT_NE(out.str().find("ingested 1 manifest(s)"),
              std::string::npos);
    report::HistoryLoad load = report::loadHistory(store);
    ASSERT_EQ(load.records.size(), 1u);
    EXPECT_EQ(load.records[0].tool, "ingest_tool");
    EXPECT_EQ(load.records[0].extra["origin"], "test");
}

TEST_F(ReportTest, PropagationGateSkipsLegacyFilesAndJudgesNewOnes)
{
    const std::filesystem::path dir = freshDir("report_propagation");

    // Pre-PR-9 perf files carry no propagation measurement: the
    // snapshot says so explicitly (-1), and flattening to history
    // omits the key rather than recording a phantom 0.
    const std::string legacy = (dir / "legacy.json").string();
    writePerfJson(legacy, 100.0);
    report::PerfSnapshot old_snap = report::loadPerfJson(legacy);
    EXPECT_DOUBLE_EQ(old_snap.obsPropagationFrac, -1.0);
    EXPECT_EQ(report::historyFromPerf(old_snap)
                  .values.count("obs_propagation_frac"),
              0u);

    // A current file round-trips the fraction into history values.
    const std::string fresh = (dir / "fresh.json").string();
    writePerfJson(fresh, 100.0, 0.004);
    report::PerfSnapshot snap = report::loadPerfJson(fresh);
    EXPECT_DOUBLE_EQ(snap.obsPropagationFrac, 0.004);
    EXPECT_DOUBLE_EQ(report::historyFromPerf(snap).values.at(
                         "obs_propagation_frac"),
                     0.004);

    std::vector<report::HistoryRecord> history;
    for (double frac : {0.004, 0.005, 0.006}) {
        report::HistoryRecord rec = sampleRecord(100.0);
        rec.values["obs_propagation_frac"] = frac;
        history.push_back(rec);
    }
    report::PerfSnapshot current;
    current.shots = 100;
    current.repetitions = 2;
    current.stageMs["fig2_grid_serial"] = 100.0;

    // Inside the absolute 2% budget nothing fails, even at ~4x the
    // baseline median — overhead within budget is not a regression.
    current.obsPropagationFrac = 0.019;
    EXPECT_FALSE(report::checkPerf(current, history).regression());

    // Blowing the budget AND the robust gates regresses, attributed
    // to the propagation pseudo-stage in the verdict table.
    current.obsPropagationFrac = 0.05;
    report::CheckReport busted = report::checkPerf(current, history);
    EXPECT_TRUE(busted.regression());
    bool propagation_regressed = false;
    for (const report::StageCheck &stage : busted.stages) {
        if (stage.stage == "obs_propagation_frac")
            propagation_regressed = stage.regressed;
    }
    EXPECT_TRUE(propagation_regressed);
    EXPECT_NE(busted.render().find("obs_propagation_frac"),
              std::string::npos);

    // A legacy *current* run: the gate is absent, not a zero verdict.
    current.obsPropagationFrac = -1.0;
    report::CheckReport skipped = report::checkPerf(current, history);
    EXPECT_FALSE(skipped.regression());
    for (const report::StageCheck &stage : skipped.stages)
        EXPECT_NE(stage.stage, "obs_propagation_frac");
}

// ---------------------------------------------------------------------
// Multi-process trace stitching
// ---------------------------------------------------------------------

TEST_F(ReportTest, MergedChromeTraceNormalizesEpochsDeterministically)
{
    const std::filesystem::path dir = freshDir("report_merged_trace");
    const std::filesystem::path client = dir / "client";
    const std::filesystem::path daemon = dir / "daemon";
    writeStitchDirs(client, daemon);

    std::string note;
    const std::string merged = report::renderMergedChromeTrace(
        {client.string(), daemon.string()}, note);
    EXPECT_TRUE(note.empty()) << note;

    obs::JsonValue root = obs::parseJson(merged);
    const std::vector<obs::JsonValue> &events =
        root.at("traceEvents").array;
    ASSERT_EQ(events.size(), 4u);

    // Ordered by (trace id, process, ts): trace A's lone daemon span
    // first, then trace B's client submit followed by the daemon side.
    EXPECT_EQ(events[0].at("name").asString(), "job");
    EXPECT_EQ(events[0].at("pid").asU64(), 2u);
    EXPECT_EQ(events[0].at("args").at("trace.id").asString(), kTraceA);
    EXPECT_EQ(events[1].at("name").asString(), "submit");
    EXPECT_EQ(events[1].at("pid").asU64(), 1u);
    EXPECT_EQ(events[2].at("name").asString(), "serve.queue_wait");
    EXPECT_EQ(events[2].at("pid").asU64(), 2u);
    EXPECT_EQ(events[3].at("name").asString(), "serve.job");
    EXPECT_EQ(events[3].at("args").at("trace.id").asString(), kTraceB);

    // Each directory's timestamps are normalized to its own earliest
    // span: both processes start at 0 despite 44 s of epoch skew.
    EXPECT_DOUBLE_EQ(events[1].at("ts").asDouble(), 0.0);
    EXPECT_DOUBLE_EQ(events[2].at("ts").asDouble(), 0.0);
    EXPECT_DOUBLE_EQ(events[3].at("ts").asDouble(), 1000.0);
    EXPECT_DOUBLE_EQ(events[0].at("ts").asDouble(), 1050.0);

    // Shifting either process's clock epoch is invisible: the merged
    // document is byte-identical, which is the determinism contract.
    writeStitchDirs(client, daemon, /*client_shift_us=*/123456.25,
                    /*daemon_shift_us=*/987654.5);
    std::string shifted_note;
    EXPECT_EQ(report::renderMergedChromeTrace(
                  {client.string(), daemon.string()}, shifted_note),
              merged);

    // An unreadable directory degrades to a note, not a failure.
    std::string missing_note;
    EXPECT_EQ(report::renderMergedChromeTrace(
                  {client.string(), daemon.string(),
                   (dir / "nope").string()},
                  missing_note),
              merged);
    EXPECT_NE(missing_note.find("no trace.json"), std::string::npos);
}

TEST_F(ReportTest, HtmlReportDrawsStitchedPerProcessLanes)
{
    const std::filesystem::path dir = freshDir("report_stitch_html");
    const std::filesystem::path client = dir / "client";
    const std::filesystem::path daemon = dir / "daemon";
    writeStitchDirs(client, daemon);

    report::ReportInputs inputs;
    inputs.history = {sampleRecord()};
    inputs.traceDirs = {client.string(), daemon.string()};
    const std::string html = report::renderHtmlReport(inputs);

    // Lanes are keyed (process, thread) and labelled p<P>/t<T> once
    // more than one process contributes spans.
    EXPECT_NE(html.find("p0/t1"), std::string::npos);
    EXPECT_NE(html.find("p1/t4"), std::string::npos);
    EXPECT_NE(html.find("process 1, thread 4"), std::string::npos);
    EXPECT_NE(html.find("serve.queue_wait"), std::string::npos);
    EXPECT_NE(html.find("trace " + kTraceB), std::string::npos);
}

TEST_F(ReportTest, SentinelReportCliWritesTheMergedTraceDocument)
{
    const std::filesystem::path dir = freshDir("report_merged_cli");
    const std::filesystem::path client = dir / "client";
    const std::filesystem::path daemon = dir / "daemon";
    writeStitchDirs(client, daemon);
    const std::string store = (dir / "runs.jsonl").string();
    ASSERT_TRUE(report::appendHistory(store, sampleRecord()));

    const std::string merged_path = (dir / "merged.json").string();
    const std::string out_path = (dir / "report.html").string();
    std::ostringstream out, err;
    EXPECT_EQ(report::sentinelMain(
                  {"report", "--history", store, "--trace",
                   client.string(), "--trace", daemon.string(), "--out",
                   out_path, "--merged-trace", merged_path},
                  out, err),
              report::kSentinelOk);

    obs::JsonValue root = obs::parseJson(slurpFile(merged_path));
    std::set<std::uint64_t> pids;
    for (const obs::JsonValue &e : root.at("traceEvents").array)
        pids.insert(e.at("pid").asU64());
    EXPECT_EQ(pids, (std::set<std::uint64_t>{1, 2}));

    const std::string html = slurpFile(out_path);
    EXPECT_NE(html.find("p1/t4"), std::string::npos);
}

// ---------------------------------------------------------------------
// Live progress
// ---------------------------------------------------------------------

TEST_F(ReportTest, HeartbeatParallelGridIsByteIdenticalToSilentSerial)
{
    bench::Scale scale = miniScale();
    scale.jobs = 1;
    const std::string silent_serial =
        bench::serializeGrid(bench::computeFig2Grid(scale));

    std::ostringstream heartbeat;
    obs::ProgressOptions options;
    options.mode = obs::ProgressOptions::Mode::Jsonl;
    options.heartbeatSecs = 0.0; // emit on every tick
    options.out = &heartbeat;
    obs::startProgress(options);
    scale.jobs = 8;
    const std::string reported_parallel =
        bench::serializeGrid(bench::computeFig2Grid(scale));
    obs::stopProgress();

    EXPECT_EQ(reported_parallel, silent_serial);

    // The stream really carried progress, one JSON object per line,
    // cell counts reaching the full grid.
    const std::string stream = heartbeat.str();
    EXPECT_NE(stream.find("\"event\":\"progress\""), std::string::npos);
    EXPECT_NE(stream.find("\"unit\":\"job\""), std::string::npos);
    EXPECT_NE(stream.find("\"event\":\"progress_end\""),
              std::string::npos);
    EXPECT_GT(obs::counter(obs::names::kProgressTicks).value(), 0u);
}

TEST_F(ReportTest, ProgressOffIsTheDefaultAndTicksAreFree)
{
    EXPECT_FALSE(obs::progressEnabled());
    // Safe no-ops without a sink; nothing counted.
    obs::progressTick(obs::names::kSpanJob);
    obs::progressEnd();
    EXPECT_EQ(obs::counter(obs::names::kProgressTicks).value(), 0u);
}

TEST_F(ReportTest, TtyProgressOverwritesOneLineAndFinishesWithNewline)
{
    std::ostringstream tty;
    obs::ProgressOptions options;
    options.mode = obs::ProgressOptions::Mode::Tty;
    options.heartbeatSecs = 0.0;
    options.out = &tty;
    obs::startProgress(options);
    obs::progressBegin("grid", obs::names::kSpanJob, 4, 2);
    for (int i = 0; i < 4; ++i)
        obs::progressTick(obs::names::kSpanJob);
    // Ticks of a different unit are ignored, not double-counted.
    obs::progressTick(obs::names::kSpanRepetition);
    obs::progressEnd();
    obs::stopProgress();

    const std::string text = tty.str();
    EXPECT_NE(text.find('\r'), std::string::npos);
    EXPECT_NE(text.find("4/4"), std::string::npos);
    EXPECT_EQ(text.find("5/4"), std::string::npos);
    EXPECT_EQ(text.back(), '\n');
}

// ---------------------------------------------------------------------
// HTML run report
// ---------------------------------------------------------------------

TEST_F(ReportTest, HtmlReportRoundTripsFromARealTracedGridRun)
{
    const std::filesystem::path dir = freshDir("report_html");
    const std::string store = (dir / "runs.jsonl").string();
    bench::Scale scale = miniScale();
    scale.traceDir = (dir / "trace").string();
    scale.historyPath = store;
    {
        bench::ObsSession session("report_html_tool", scale);
        bench::Fig2Grid grid = bench::computeFig2Grid(scale);
        bench::noteGridScores(session, grid);
    }
    std::filesystem::remove("report_html_tool_manifest.json");

    report::HistoryLoad load = report::loadHistory(store);
    ASSERT_EQ(load.records.size(), 1u);
    EXPECT_FALSE(load.records[0].stages.empty());

    report::ReportInputs inputs;
    inputs.history = load.records;
    inputs.traceDir = scale.traceDir;
    const std::string html = report::renderHtmlReport(inputs);

    EXPECT_NE(html.find("<!DOCTYPE html>"), std::string::npos);
    EXPECT_NE(html.find("<svg"), std::string::npos); // waterfall drawn
    EXPECT_NE(html.find("report_html_tool"), std::string::npos);
    // Fig. 2 matrix: a benchmark row and a device column made it in.
    EXPECT_NE(html.find("ghz"), std::string::npos);
    EXPECT_NE(html.find("IonQ"), std::string::npos);
    // Self-contained: no external scripts, stylesheets or images.
    EXPECT_EQ(html.find("<script"), std::string::npos);
    EXPECT_EQ(html.find("http://"), std::string::npos);
    EXPECT_EQ(html.find("https://"), std::string::npos);

    // The CLI path writes the same page atomically.
    const std::string out_path = (dir / "report.html").string();
    std::ostringstream out, err;
    EXPECT_EQ(report::sentinelMain({"report", "--history", store,
                                    "--trace", scale.traceDir, "--out",
                                    out_path},
                                   out, err),
              report::kSentinelOk);
    std::ifstream written(out_path);
    ASSERT_TRUE(written);
    std::ostringstream contents;
    contents << written.rdbuf();
    EXPECT_NE(contents.str().find("<svg"), std::string::npos);
}

TEST_F(ReportTest, HtmlReportDegradesGracefullyWithoutInputs)
{
    report::ReportInputs inputs; // empty store, no trace
    const std::string html = report::renderHtmlReport(inputs);
    EXPECT_NE(html.find("store is empty"), std::string::npos);

    inputs.history = {sampleRecord()};
    inputs.traceDir = "/nonexistent/trace/dir";
    const std::string with_note = report::renderHtmlReport(inputs);
    EXPECT_NE(with_note.find("no trace.json"), std::string::npos);

    // Escaping: hostile names cannot break out of the markup.
    report::HistoryRecord hostile = sampleRecord();
    hostile.tool = "<script>alert(1)</script>";
    inputs.history = {hostile};
    const std::string escaped = report::renderHtmlReport(inputs);
    EXPECT_EQ(escaped.find("<script>alert"), std::string::npos);
    EXPECT_NE(escaped.find("&lt;script&gt;"), std::string::npos);
}
