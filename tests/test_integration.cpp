/**
 * @file
 * Cross-module integration tests: OpenQASM as the interchange format
 * through the full pipeline (generate -> QASM -> parse -> transpile ->
 * execute -> score), engine cross-checks, and end-to-end determinism.
 */

#include <gtest/gtest.h>

#include "core/benchmarks/ghz.hpp"
#include "core/benchmarks/mermin_bell.hpp"
#include "core/benchmarks/qaoa.hpp"
#include "core/harness.hpp"
#include "qc/qasm.hpp"
#include "sim/density_matrix.hpp"
#include "sim/stabilizer.hpp"
#include "sim/statevector.hpp"
#include "stats/hellinger.hpp"

namespace smq {
namespace {

TEST(Integration, BenchmarkSurvivesQasmInterchange)
{
    // the paper's "write-once-target-all" flow: serialise a benchmark
    // circuit to OpenQASM, parse it back, run the parsed copy, and
    // score with the original benchmark object
    core::MerminBellBenchmark bench(4);
    qc::Circuit original = bench.circuits()[0];
    qc::Circuit reparsed = qc::fromQasm(qc::toQasm(original));

    sim::RunOptions options;
    options.shots = 50000;
    stats::Rng rng(3);
    stats::Counts counts = sim::run(reparsed, options, rng);
    EXPECT_GT(bench.score({counts}), 0.97);
}

TEST(Integration, TranspiledCircuitIsStillValidQasm)
{
    core::QaoaSwapBenchmark bench(4, 5);
    transpile::TranspileResult result = transpile::transpile(
        bench.circuits()[0], device::ibmCasablanca());
    auto [compact, mapping] = transpile::compactCircuit(result.circuit);

    // native-basis circuit must round-trip through OpenQASM
    qc::Circuit reparsed = qc::fromQasm(qc::toQasm(compact));
    EXPECT_EQ(reparsed.size(), compact.size());

    sim::RunOptions options;
    options.shots = 20000;
    stats::Rng rng(9);
    stats::Counts counts = sim::run(reparsed, options, rng);
    EXPECT_GT(bench.score({counts}), 0.95);
}

TEST(Integration, ThreeEnginesAgreeOnACliffordCircuit)
{
    // state-vector, density-matrix and stabilizer engines on the same
    // noiseless GHZ circuit
    core::GhzBenchmark bench(4);
    qc::Circuit circuit = bench.circuits()[0];

    sim::RunOptions options;
    options.shots = 40000;
    stats::Rng rng_a(1), rng_b(2);
    stats::Counts sv = sim::run(circuit, options, rng_a);
    stats::Counts tableau = sim::runStabilizer(circuit, options, rng_b);
    stats::Distribution dm =
        sim::noisyDistribution(circuit, sim::NoiseModel::ideal());

    EXPECT_GT(stats::hellingerFidelity(sv, dm), 0.999);
    EXPECT_GT(stats::hellingerFidelity(tableau, dm), 0.999);
}

TEST(Integration, FullHarnessIsDeterministicAcrossRebuilds)
{
    // identical options + seeds => identical scores, even through the
    // full transpile/trajectory stack
    core::GhzBenchmark bench(5);
    core::HarnessOptions options;
    options.shots = 800;
    options.repetitions = 3;
    core::BenchmarkRun a =
        core::runBenchmark(bench, device::ibmMumbai(), options);
    core::BenchmarkRun b =
        core::runBenchmark(bench, device::ibmMumbai(), options);
    EXPECT_EQ(a.scores, b.scores);
    EXPECT_EQ(a.swapsInserted, b.swapsInserted);
    EXPECT_EQ(a.physicalTwoQubitGates, b.physicalTwoQubitGates);
}

TEST(Integration, DensityMatrixHandlesThreeQubitPermutations)
{
    // CCX / CSWAP have a dedicated permutation path in the DM engine
    qc::Circuit c(3, 3);
    c.x(0).x(1).ccx(0, 1, 2).cswap(2, 0, 1).measureAll();
    stats::Distribution dm =
        sim::noisyDistribution(c, sim::NoiseModel::ideal());
    stats::Distribution sv = sim::idealDistribution(c);
    EXPECT_GT(stats::hellingerFidelity(sv, dm), 1.0 - 1e-9);
}

TEST(Integration, OpenDivisionScoresAtLeastAsWellOnAverage)
{
    // fewer 2q gates can only help under 2q-dominated noise
    core::QaoaVanillaBenchmark bench(5, 13);
    core::HarnessOptions closed;
    closed.shots = 2000;
    closed.repetitions = 3;
    core::HarnessOptions open = closed;
    open.transpile.division = transpile::Division::Open;

    core::BenchmarkRun closed_run =
        core::runBenchmark(bench, device::ibmToronto(), closed);
    core::BenchmarkRun open_run =
        core::runBenchmark(bench, device::ibmToronto(), open);
    EXPECT_LE(open_run.physicalTwoQubitGates,
              closed_run.physicalTwoQubitGates);
    // scores within statistical noise of each other or better
    EXPECT_GT(open_run.summary.mean,
              closed_run.summary.mean - 0.15);
}

} // namespace
} // namespace smq
