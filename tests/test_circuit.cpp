/**
 * @file
 * Tests for the circuit IR: gate metadata, builder validation,
 * inverse, remapping, composition, and aggregate counts.
 */

#include <gtest/gtest.h>

#include "qc/circuit.hpp"

namespace smq::qc {
namespace {

TEST(GateMeta, NamesRoundTrip)
{
    for (int t = 0; t <= static_cast<int>(GateType::BARRIER); ++t) {
        GateType type = static_cast<GateType>(t);
        EXPECT_EQ(gateTypeFromName(gateName(type)), type);
    }
    EXPECT_EQ(gateTypeFromName("cnot"), GateType::CX);
    EXPECT_EQ(gateTypeFromName("u1"), GateType::P);
    EXPECT_THROW(gateTypeFromName("bogus"), std::invalid_argument);
}

TEST(GateMeta, ArityAndParams)
{
    EXPECT_EQ(gateArity(GateType::H), 1u);
    EXPECT_EQ(gateArity(GateType::CX), 2u);
    EXPECT_EQ(gateArity(GateType::CCX), 3u);
    EXPECT_EQ(gateParamCount(GateType::U3), 3u);
    EXPECT_EQ(gateParamCount(GateType::RZ), 1u);
    EXPECT_FALSE(isUnitary(GateType::MEASURE));
    EXPECT_FALSE(isUnitary(GateType::BARRIER));
    EXPECT_TRUE(isTwoQubit(GateType::RZZ));
    EXPECT_FALSE(isTwoQubit(GateType::CCX));
    EXPECT_TRUE(isClifford(GateType::S));
    EXPECT_FALSE(isClifford(GateType::T));
    EXPECT_FALSE(isClifford(GateType::RZ));
}

TEST(Circuit, BuilderAppendsValidatedGates)
{
    Circuit c(3, 2);
    c.h(0).cx(0, 1).rz(0.5, 2).measure(1, 0);
    EXPECT_EQ(c.size(), 4u);
    EXPECT_EQ(c.gates()[1].type, GateType::CX);
    EXPECT_EQ(c.gates()[3].cbit, 0);
}

TEST(Circuit, RejectsOutOfRangeOperands)
{
    Circuit c(2, 1);
    EXPECT_THROW(c.h(2), std::out_of_range);
    EXPECT_THROW(c.cx(0, 5), std::out_of_range);
    EXPECT_THROW(c.measure(0, 3), std::out_of_range);
    EXPECT_THROW(c.cx(1, 1), std::invalid_argument); // duplicate operand
}

TEST(Circuit, RejectsMalformedGateRecords)
{
    Circuit c(2, 0);
    EXPECT_THROW(c.append(Gate(GateType::CX, {0})), std::invalid_argument);
    EXPECT_THROW(c.append(Gate(GateType::RZ, {0}, {})),
                 std::invalid_argument);
    EXPECT_THROW(c.append(Gate(GateType::H, {0}, {1.0})),
                 std::invalid_argument);
}

TEST(Circuit, MeasureAllGrowsClassicalRegister)
{
    Circuit c(3, 0);
    c.h(0);
    c.measureAll();
    EXPECT_EQ(c.numClbits(), 3u);
    EXPECT_EQ(c.measureCount(), 3u);
}

TEST(Circuit, InverseReversesAndInvertsGates)
{
    Circuit c(2, 0);
    c.h(0).s(1).t(0).rz(0.3, 1).cx(0, 1);
    Circuit inv = c.inverse();
    ASSERT_EQ(inv.size(), c.size());
    EXPECT_EQ(inv.gates()[0].type, GateType::CX);
    EXPECT_EQ(inv.gates()[1].type, GateType::RZ);
    EXPECT_DOUBLE_EQ(inv.gates()[1].params[0], -0.3);
    EXPECT_EQ(inv.gates()[2].type, GateType::TDG);
    EXPECT_EQ(inv.gates()[3].type, GateType::SDG);
    EXPECT_EQ(inv.gates()[4].type, GateType::H);
}

TEST(Circuit, InverseOfU3UsesAngleIdentity)
{
    Gate g(GateType::U3, {0}, {0.3, 0.7, -0.2});
    Gate inv = inverseGate(g);
    EXPECT_DOUBLE_EQ(inv.params[0], -0.3);
    EXPECT_DOUBLE_EQ(inv.params[1], 0.2);
    EXPECT_DOUBLE_EQ(inv.params[2], -0.7);
}

TEST(Circuit, InverseRejectsMeasurement)
{
    Circuit c(1, 1);
    c.measure(0, 0);
    EXPECT_THROW(c.inverse(), std::invalid_argument);
}

TEST(Circuit, RemappedRelabelsQubits)
{
    Circuit c(2, 1);
    c.h(0).cx(0, 1).measure(1, 0);
    Circuit r = c.remapped({3, 1}, 4);
    EXPECT_EQ(r.numQubits(), 4u);
    EXPECT_EQ(r.gates()[0].qubits[0], 3u);
    EXPECT_EQ(r.gates()[1].qubits[0], 3u);
    EXPECT_EQ(r.gates()[1].qubits[1], 1u);
    EXPECT_EQ(r.gates()[2].qubits[0], 1u);
    EXPECT_THROW(c.remapped({0}, 2), std::invalid_argument);
    EXPECT_THROW(c.remapped({0, 9}, 2), std::out_of_range);
}

TEST(Circuit, ComposeAppendsOtherCircuit)
{
    Circuit a(2, 1);
    a.h(0);
    Circuit b(2, 1);
    b.cx(0, 1).measure(0, 0);
    a.compose(b);
    EXPECT_EQ(a.size(), 3u);

    Circuit too_big(3, 0);
    EXPECT_THROW(a.compose(too_big), std::invalid_argument);
}

TEST(Circuit, AggregateCountsIgnoreBarriers)
{
    Circuit c(3, 3);
    c.h(0).barrier().cx(0, 1).rzz(0.1, 1, 2).barrier();
    c.measure(0, 0);
    c.reset(1);
    EXPECT_EQ(c.opCount(), 5u);
    EXPECT_EQ(c.multiQubitGateCount(), 2u);
    EXPECT_EQ(c.measureCount(), 1u);
    EXPECT_EQ(c.resetCount(), 1u);
}

TEST(Circuit, ToStringMentionsGates)
{
    Circuit c(2, 1, "demo");
    c.rz(0.5, 1).measure(1, 0);
    std::string s = c.toString();
    EXPECT_NE(s.find("demo"), std::string::npos);
    EXPECT_NE(s.find("rz"), std::string::npos);
    EXPECT_NE(s.find("-> c[0]"), std::string::npos);
}

} // namespace
} // namespace smq::qc
