/**
 * @file
 * Tests for readout-error mitigation: calibration recovers the
 * injected confusion rates, unfolding restores distributions hit by
 * pure readout error, and benchmark scores improve under mitigation.
 */

#include <gtest/gtest.h>

#include "core/benchmarks/ghz.hpp"
#include "core/mitigation.hpp"
#include "sim/runner.hpp"
#include "stats/hellinger.hpp"

namespace smq::core {
namespace {

sim::NoiseModel
readoutOnlyNoise(double p_meas)
{
    sim::NoiseModel noise;
    noise.enabled = true;
    noise.pMeas = p_meas;
    return noise;
}

TEST(Mitigation, CalibrationRecoversInjectedRates)
{
    stats::Rng rng(3);
    ReadoutCalibration cal =
        calibrateReadout(readoutOnlyNoise(0.08), 3, 20000, rng);
    ASSERT_EQ(cal.numQubits(), 3u);
    for (std::size_t q = 0; q < 3; ++q) {
        EXPECT_NEAR(cal.p01[q], 0.08, 0.01);
        EXPECT_NEAR(cal.p10[q], 0.08, 0.01);
    }
}

TEST(Mitigation, UnfoldsPureReadoutError)
{
    // GHZ under readout-only noise: mitigation should restore the
    // two-peak distribution almost exactly
    GhzBenchmark bench(4);
    qc::Circuit circuit = bench.circuits()[0];
    sim::NoiseModel noise = readoutOnlyNoise(0.06);

    sim::RunOptions options;
    options.shots = 60000;
    options.noise = noise;
    stats::Rng rng(7);
    stats::Counts raw = sim::run(circuit, options, rng);
    double raw_score = bench.score({raw});

    ReadoutCalibration cal = calibrateReadout(noise, 4, 60000, rng);
    stats::Distribution mitigated = mitigateReadout(raw, cal);

    stats::Distribution ideal;
    ideal.add("0000", 0.5);
    ideal.add("1111", 0.5);
    double mitigated_score = stats::hellingerFidelity(mitigated, ideal);

    EXPECT_LT(raw_score, 0.93);       // readout error visibly hurts
    EXPECT_GT(mitigated_score, 0.985); // mitigation recovers it
    EXPECT_GT(mitigated_score, raw_score + 0.04);
}

TEST(Mitigation, ImprovesScoresUnderMixedNoise)
{
    GhzBenchmark bench(3);
    qc::Circuit circuit = bench.circuits()[0];
    sim::NoiseModel noise = readoutOnlyNoise(0.05);
    noise.p1 = 0.002;
    noise.p2 = 0.01;

    sim::RunOptions options;
    options.shots = 40000;
    options.noise = noise;
    stats::Rng rng(11);
    stats::Counts raw = sim::run(circuit, options, rng);

    stats::Rng cal_rng(13);
    ReadoutCalibration cal = calibrateReadout(noise, 3, 40000, cal_rng);
    stats::Distribution mitigated = mitigateReadout(raw, cal);

    stats::Distribution ideal;
    ideal.add("000", 0.5);
    ideal.add("111", 0.5);
    double raw_score = bench.score({raw});
    double mitigated_score = stats::hellingerFidelity(mitigated, ideal);
    // gate errors remain, but the readout component is removed
    EXPECT_GT(mitigated_score, raw_score);
}

TEST(Mitigation, OutputIsANormalisedDistribution)
{
    stats::Counts counts;
    counts.add("00", 700);
    counts.add("01", 100);
    counts.add("10", 100);
    counts.add("11", 100);
    ReadoutCalibration cal;
    cal.p01 = {0.1, 0.05};
    cal.p10 = {0.08, 0.12};
    stats::Distribution mitigated = mitigateReadout(counts, cal);
    EXPECT_NEAR(mitigated.totalMass(), 1.0, 1e-9);
    for (const auto &[bits, p] : mitigated.map())
        EXPECT_GE(p, 0.0);
}

TEST(Mitigation, ValidatesInputs)
{
    stats::Rng rng(1);
    EXPECT_THROW(calibrateReadout(readoutOnlyNoise(0.1), 0, 100, rng),
                 std::invalid_argument);

    stats::Counts counts;
    counts.add("010", 10);
    ReadoutCalibration narrow;
    narrow.p01 = {0.1};
    narrow.p10 = {0.1};
    EXPECT_THROW(mitigateReadout(counts, narrow), std::invalid_argument);

    ReadoutCalibration singular;
    singular.p01 = {0.5, 0.5, 0.5};
    singular.p10 = {0.5, 0.5, 0.5};
    EXPECT_THROW(mitigateReadout(counts, singular), std::logic_error);
}

} // namespace
} // namespace smq::core
