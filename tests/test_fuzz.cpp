/**
 * @file
 * The differential-fuzzing suite (`ctest -L fuzz`): QASM round-trip
 * properties over every benchmark generator, regression tests for the
 * latent bugs the harness surfaced (numeric-literal parsing, targeted
 * barriers, sentinel flag validation, degenerate hulls), and unit
 * coverage of the generator / oracles / shrinker / harness themselves.
 */

#include <cmath>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/features.hpp"
#include "core/suites.hpp"
#include "fuzz/fuzz_cli.hpp"
#include "fuzz/generator.hpp"
#include "fuzz/harness.hpp"
#include "fuzz/oracles.hpp"
#include "fuzz/shrink.hpp"
#include "geom/hull.hpp"
#include "qc/circuit.hpp"
#include "qc/dag.hpp"
#include "qc/qasm.hpp"
#include "qc/schedule.hpp"
#include "report/sentinel_cli.hpp"
#include "sim/stabilizer.hpp"
#include "sim/statevector.hpp"
#include "stats/rng.hpp"

namespace smq {
namespace {

// ---------------------------------------------------------------------
// Round-trip property: every benchmark generator's circuits survive
// toQasm/fromQasm with an identical gate stream and feature vector.
// ---------------------------------------------------------------------

TEST(FuzzQasmRoundTrip, AllBenchmarkGeneratorsRoundTripExactly)
{
    auto suite = core::quickSuite();
    ASSERT_EQ(suite.size(), 8u);
    for (const auto &benchmark : suite) {
        for (const qc::Circuit &circuit : benchmark->circuits()) {
            SCOPED_TRACE(benchmark->name());
            qc::Circuit back = qc::fromQasm(qc::toQasm(circuit));
            EXPECT_EQ(back.gates(), circuit.gates());
            EXPECT_EQ(back.numQubits(), circuit.numQubits());
            EXPECT_EQ(back.numClbits(), circuit.numClbits());
            EXPECT_EQ(core::computeFeatures(back).asArray(),
                      core::computeFeatures(circuit).asArray());
            fuzz::OracleResult r = fuzz::oracleQasmRoundTrip(circuit);
            EXPECT_EQ(r.status, fuzz::OracleStatus::Pass) << r.detail;
        }
    }
}

TEST(FuzzQasmRoundTrip, Figure2InstancesRoundTripExactly)
{
    for (const auto &benchmark : core::figure2Benchmarks()) {
        for (const qc::Circuit &circuit : benchmark->circuits()) {
            SCOPED_TRACE(benchmark->name());
            fuzz::OracleResult r = fuzz::oracleQasmRoundTrip(circuit);
            EXPECT_EQ(r.status, fuzz::OracleStatus::Pass) << r.detail;
        }
    }
}

// ---------------------------------------------------------------------
// Bugfix regression: parseFactor must reject tokens std::stod would
// partial-parse ("1.2.3" -> 1.2, "1e" -> 1) instead of accepting a
// silently wrong angle.
// ---------------------------------------------------------------------

namespace {

std::string
qasmWithAngle(const std::string &angle)
{
    return "OPENQASM 2.0;\nqreg q[1];\nrz(" + angle + ") q[0];\n";
}

} // namespace

TEST(FuzzQasmRegression, MalformedNumericLiteralsAreRejected)
{
    for (const char *bad : {"1.2.3", "1e", "3e+", ".", "1.5e"}) {
        SCOPED_TRACE(bad);
        EXPECT_THROW(qc::fromQasm(qasmWithAngle(bad)), std::runtime_error);
    }
}

TEST(FuzzQasmRegression, ValidNumericLiteralsStillParse)
{
    struct Case
    {
        const char *text;
        double value;
    };
    for (const Case &c : {Case{"0.5", 0.5}, Case{"1e3", 1000.0},
                          Case{"2.5e-2", 0.025}, Case{"7", 7.0},
                          Case{"pi/2", M_PI / 2.0}}) {
        SCOPED_TRACE(c.text);
        qc::Circuit parsed = qc::fromQasm(qasmWithAngle(c.text));
        ASSERT_EQ(parsed.gates().size(), 1u);
        EXPECT_DOUBLE_EQ(parsed.gates()[0].params[0], c.value);
    }
}

// ---------------------------------------------------------------------
// Bugfix regression: targeted barriers round-trip through QASM with
// their actual operand list, and fence only the listed qubits.
// ---------------------------------------------------------------------

TEST(FuzzBarrierRegression, TargetedBarrierEmitsOperandList)
{
    qc::Circuit circuit(4);
    circuit.h(0).h(2);
    circuit.barrier({0, 2});
    circuit.x(0).x(1);

    std::string qasm = qc::toQasm(circuit);
    EXPECT_NE(qasm.find("barrier q[0],q[2];"), std::string::npos) << qasm;

    qc::Circuit back = qc::fromQasm(qasm);
    EXPECT_EQ(back, circuit);
    EXPECT_EQ(core::computeFeatures(back).asArray(),
              core::computeFeatures(circuit).asArray());
}

TEST(FuzzBarrierRegression, BareRegisterOperandIsFullFence)
{
    qc::Circuit parsed = qc::fromQasm(
        "OPENQASM 2.0;\nqreg q[3];\nh q[0];\nbarrier q;\nx q[1];\n");
    ASSERT_EQ(parsed.gates().size(), 3u);
    EXPECT_EQ(parsed.gates()[1].type, qc::GateType::BARRIER);
    EXPECT_TRUE(parsed.gates()[1].qubits.empty());

    // A bare register anywhere in the operand list widens to a full
    // fence, matching OpenQASM semantics.
    qc::Circuit widened = qc::fromQasm(
        "OPENQASM 2.0;\nqreg q[3];\nbarrier q[0],q;\n");
    ASSERT_EQ(widened.gates().size(), 1u);
    EXPECT_TRUE(widened.gates()[0].qubits.empty());
}

TEST(FuzzBarrierRegression, TargetedFenceDoesNotSerialiseOtherQubits)
{
    // Qubit 2 is untouched by the fence: its gate stays in moment 1.
    qc::Circuit targeted(3);
    targeted.h(0);
    targeted.barrier({0, 1});
    targeted.x(1).x(2);

    qc::Circuit full(3);
    full.h(0);
    full.barrier();
    full.x(1).x(2);

    qc::Schedule st = qc::schedule(targeted);
    qc::Schedule sf = qc::schedule(full);
    EXPECT_EQ(st.depth(), sf.depth());

    // Under the full fence every post-barrier gate lands after h(0);
    // the targeted fence leaves x(2) free to share h(0)'s moment.
    EXPECT_EQ(st.momentOf[3], 0); // x(2), instruction index 3
    EXPECT_EQ(sf.momentOf[3], 1);
}

TEST(FuzzBarrierRegression, DagBarrierFencesQubitsWithHistory)
{
    // Latent-bug shape: q1 already had an op before the barrier, so
    // the old DAG builder (which only seeded *empty* frontiers) let
    // the post-barrier gate on q1 bypass the q0 chain entirely.
    qc::Circuit circuit(2);
    circuit.h(1).h(0).h(0);
    circuit.barrier();
    circuit.h(1);

    qc::GateDag dag(circuit);
    EXPECT_EQ(dag.depth(), 3u);
    ASSERT_EQ(dag.predecessors(4).size(), 1u);
    EXPECT_EQ(dag.predecessors(4)[0], 2u); // the deeper h(0), not h(1)
}

TEST(FuzzBarrierRegression, BarrierOperandsAreValidated)
{
    qc::Circuit circuit(3);
    EXPECT_THROW(circuit.barrier({0, 7}), std::out_of_range);
    EXPECT_THROW(circuit.barrier({1, 1}), std::invalid_argument);
    EXPECT_THROW(
        qc::fromQasm("OPENQASM 2.0;\nqreg q[2];\nbarrier r[0];\n"),
        std::runtime_error);
}

// ---------------------------------------------------------------------
// Bugfix regression: sentinel numeric flags are validated in full, not
// partial-parsed; a malformed value is a usage error (exit 2).
// ---------------------------------------------------------------------

namespace {

int
sentinel(const std::vector<std::string> &args, std::string *err_text = nullptr)
{
    std::ostringstream out, err;
    int rc = report::sentinelMain(args, out, err);
    if (err_text != nullptr)
        *err_text = err.str();
    return rc;
}

} // namespace

TEST(FuzzSentinelRegression, MalformedNumericFlagsAreUsageErrors)
{
    std::string err;
    EXPECT_EQ(sentinel({"check", "perf.json", "--baseline", "h.jsonl",
                        "--threshold", "0.5abc"},
                       &err),
              report::kSentinelUsage);
    EXPECT_NE(err.find("bad --threshold"), std::string::npos) << err;

    EXPECT_EQ(sentinel({"check", "perf.json", "--baseline", "h.jsonl",
                        "--threshold", "abc"}),
              report::kSentinelUsage);
    EXPECT_EQ(sentinel({"check", "perf.json", "--baseline", "h.jsonl",
                        "--min-samples", "-3"}),
              report::kSentinelUsage);
    EXPECT_EQ(sentinel({"check", "perf.json", "--baseline", "h.jsonl",
                        "--window", "2x"}),
              report::kSentinelUsage);
    EXPECT_EQ(sentinel({"compact", "--history", "h.jsonl", "--keep", "5x"}),
              report::kSentinelUsage);
}

// ---------------------------------------------------------------------
// Bugfix regression: degenerate inputs that survive every joggle
// attempt report volume 0 with a warning instead of throwing.
// ---------------------------------------------------------------------

TEST(FuzzHullRegression, DegenerateInputSurvivingJoggleReportsZero)
{
    // A tiny-scale simplex whose facet normals underflow the facet
    // determinant: every exact and joggled pass hits the degenerate-
    // facet guard, which used to propagate as std::logic_error.
    const std::size_t dim = 27;
    const double s = 2e-12;
    std::vector<geom::Point> points;
    points.push_back(geom::Point(dim, 0.0));
    for (std::size_t i = 0; i < dim; ++i) {
        geom::Point p(dim, 0.0);
        p[i] = s;
        points.push_back(std::move(p));
    }
    geom::HullResult hull;
    EXPECT_NO_THROW(hull = geom::convexHull(points, dim, 1e-300));
    EXPECT_EQ(hull.volume, 0.0);
    EXPECT_EQ(hull.affineRank, dim - 1);
    EXPECT_TRUE(hull.facets.empty());
}

// ---------------------------------------------------------------------
// Generator: determinism and mode coverage.
// ---------------------------------------------------------------------

TEST(FuzzGenerator, SameSeedSameCircuit)
{
    fuzz::GeneratorOptions options;
    stats::Rng a(99), b(99);
    for (int i = 0; i < 20; ++i) {
        EXPECT_EQ(fuzz::randomCircuit(options, a),
                  fuzz::randomCircuit(options, b));
    }
}

TEST(FuzzGenerator, CliffordModeStaysInStabilizerGateSet)
{
    fuzz::GeneratorOptions options;
    options.cliffordOnly = true;
    stats::Rng rng(7);
    for (int i = 0; i < 30; ++i) {
        qc::Circuit circuit = fuzz::randomCircuit(options, rng);
        EXPECT_TRUE(sim::isCliffordCircuit(circuit));
    }
}

TEST(FuzzGenerator, RespectsShapeBounds)
{
    fuzz::GeneratorOptions options;
    options.minQubits = 3;
    options.maxQubits = 4;
    options.maxGates = 12;
    stats::Rng rng(11);
    for (int i = 0; i < 30; ++i) {
        qc::Circuit circuit = fuzz::randomCircuit(options, rng);
        EXPECT_GE(circuit.numQubits(), 3u);
        EXPECT_LE(circuit.numQubits(), 4u);
        // body + terminal measure-all layer
        EXPECT_LE(circuit.gates().size(),
                  12u + circuit.numQubits());
    }
}

// ---------------------------------------------------------------------
// Exact branching walkers: agreement with the terminal-measurement
// reference and correct mid-circuit branch enumeration.
// ---------------------------------------------------------------------

TEST(FuzzWalkers, ExactDenseMatchesIdealOnTerminalCircuit)
{
    qc::Circuit ghz(3, 3);
    ghz.h(0).cx(0, 1).cx(1, 2).measureAll();
    stats::Distribution exact = fuzz::exactDenseDistribution(ghz);
    stats::Distribution ideal = sim::idealDistribution(ghz);
    for (const auto &[bits, p] : ideal.map())
        EXPECT_NEAR(exact.probability(bits), p, 1e-12) << bits;
    EXPECT_NEAR(exact.totalMass(), 1.0, 1e-12);
}

TEST(FuzzWalkers, MidCircuitBranchesAreEnumeratedExactly)
{
    // h; measure -> c0; reset; measure -> c1: the second readout is
    // deterministically 0, the first is a fair coin.
    qc::Circuit circuit(1, 2);
    circuit.h(0).measure(0, 0).reset(0).measure(0, 1);
    stats::Distribution dense = fuzz::exactDenseDistribution(circuit);
    EXPECT_NEAR(dense.probability("00"), 0.5, 1e-12);
    EXPECT_NEAR(dense.probability("10"), 0.5, 1e-12);
    stats::Distribution stab = fuzz::exactStabilizerDistribution(circuit);
    EXPECT_NEAR(stab.probability("00"), 0.5, 1e-12);
    EXPECT_NEAR(stab.probability("10"), 0.5, 1e-12);
}

TEST(FuzzWalkers, StabilizerWalkerMatchesDenseOnGhz)
{
    qc::Circuit ghz(4, 4);
    ghz.h(0).cx(0, 1).cx(1, 2).cx(2, 3).measureAll();
    stats::Distribution stab = fuzz::exactStabilizerDistribution(ghz);
    EXPECT_NEAR(stab.probability("0000"), 0.5, 1e-12);
    EXPECT_NEAR(stab.probability("1111"), 0.5, 1e-12);
}

TEST(FuzzWalkers, StatevectorProjectReturnsBranchProbability)
{
    sim::StateVector state(1);
    // |0>: the 1-branch is impossible and must leave the state alone.
    EXPECT_EQ(state.project(0, 1), 0.0);
    EXPECT_NEAR(std::abs(state.amplitude(0)), 1.0, 1e-12);

    state.applyGate(qc::Gate(qc::GateType::H, {0}));
    EXPECT_NEAR(state.project(0, 1), 0.5, 1e-12);
    EXPECT_NEAR(std::abs(state.amplitude(1)), 1.0, 1e-12);
}

TEST(FuzzWalkers, StabilizerMeasureForcedCollapsesTableau)
{
    sim::StabilizerSimulator sim(1);
    EXPECT_EQ(sim.measureForced(0, 1), 0.0); // |0> cannot read 1
    sim.applyGate(qc::Gate(qc::GateType::H, {0}));
    EXPECT_NEAR(sim.measureForced(0, 1), 0.5, 1e-12);
    // Collapsed: the same outcome is now deterministic.
    EXPECT_EQ(sim.measureForced(0, 1), 1.0);
}

// ---------------------------------------------------------------------
// Oracles: pass on known-good circuits, dispatch table is total.
// ---------------------------------------------------------------------

TEST(FuzzOracles, AllOraclesAcceptCliffordTerminalCircuit)
{
    qc::Circuit circuit(3, 3);
    circuit.h(0).cx(0, 1).s(1).cz(1, 2).measureAll();
    for (std::size_t i = 0; i < fuzz::kOracleCount; ++i) {
        auto id = static_cast<fuzz::OracleId>(i);
        fuzz::OracleResult r = fuzz::runOracle(id, circuit);
        EXPECT_NE(r.status, fuzz::OracleStatus::Fail)
            << fuzz::oracleName(id) << ": " << r.detail;
    }
}

TEST(FuzzOracles, PreconditionedOraclesSkipOutOfScopeCases)
{
    qc::Circuit non_clifford(2, 2);
    non_clifford.t(0).cx(0, 1).measureAll();
    EXPECT_EQ(fuzz::oracleSvVsStabilizer(non_clifford).status,
              fuzz::OracleStatus::Skip);

    qc::Circuit mid_circuit(1, 2);
    mid_circuit.h(0).measure(0, 0).h(0).measure(0, 1);
    EXPECT_EQ(fuzz::oracleSvVsDm(mid_circuit).status,
              fuzz::OracleStatus::Skip);
}

TEST(FuzzOracles, NamesAreStable)
{
    EXPECT_STREQ(fuzz::oracleName(fuzz::OracleId::SvVsDm), "sv-vs-dm");
    EXPECT_STREQ(fuzz::oracleName(fuzz::OracleId::SvVsStabilizer),
                 "sv-vs-stab");
    EXPECT_STREQ(fuzz::oracleName(fuzz::OracleId::Transpile), "transpile");
    EXPECT_STREQ(fuzz::oracleName(fuzz::OracleId::QasmRoundTrip),
                 "qasm-roundtrip");
    EXPECT_STREQ(fuzz::oracleName(fuzz::OracleId::Fusion), "fusion");
}

// ---------------------------------------------------------------------
// Shrinker: minimises to the essential instruction, deterministically,
// within budget; a throwing predicate counts as "does not reproduce".
// ---------------------------------------------------------------------

namespace {

bool
containsCz(const qc::Circuit &circuit)
{
    for (const qc::Gate &g : circuit.gates()) {
        if (g.type == qc::GateType::CZ)
            return true;
    }
    return false;
}

} // namespace

TEST(FuzzShrink, ReducesToSingleEssentialGate)
{
    qc::Circuit circuit(4, 4);
    circuit.h(0).t(1).rx(0.3, 2).cx(0, 3).s(3);
    circuit.cz(1, 2);
    circuit.h(3).rz(1.7, 0).swap(0, 1).measureAll();
    ASSERT_TRUE(containsCz(circuit));

    fuzz::ShrinkResult r = fuzz::shrink(circuit, containsCz);
    EXPECT_EQ(r.circuit.gates().size(), 1u);
    EXPECT_EQ(r.circuit.gates()[0].type, qc::GateType::CZ);
    EXPECT_EQ(r.circuit.numQubits(), 2u); // drop-qubit compacted
    EXPECT_LE(r.predicateCalls, 2000u);

    // Determinism: the same failure always shrinks to the same repro.
    fuzz::ShrinkResult again = fuzz::shrink(circuit, containsCz);
    EXPECT_EQ(again.circuit, r.circuit);
}

TEST(FuzzShrink, ThrowingPredicateMeansNoRepro)
{
    qc::Circuit circuit(2, 2);
    circuit.h(0).cz(0, 1).measureAll();
    auto touchy = [](const qc::Circuit &candidate) {
        if (candidate.gates().size() < 3)
            throw std::runtime_error("predicate exploded");
        return containsCz(candidate);
    };
    fuzz::ShrinkResult r = fuzz::shrink(circuit, touchy);
    // Cannot go below 3 instructions without the predicate throwing.
    EXPECT_GE(r.circuit.gates().size(), 3u);
    EXPECT_TRUE(containsCz(r.circuit));
}

TEST(FuzzShrink, SnapsAnglesToReadableValues)
{
    qc::Circuit circuit(1, 1);
    circuit.rx(1.234567, 0).measure(0, 0);
    auto has_rx = [](const qc::Circuit &candidate) {
        for (const qc::Gate &g : candidate.gates()) {
            if (g.type == qc::GateType::RX)
                return true;
        }
        return false;
    };
    fuzz::ShrinkResult r = fuzz::shrink(circuit, has_rx);
    ASSERT_EQ(r.circuit.gates().size(), 1u);
    EXPECT_EQ(r.circuit.gates()[0].params[0], 0.0);
}

// ---------------------------------------------------------------------
// Harness: clean corpus, tally accounting, jobs byte-identity, and the
// report surface the CLI exposes.
// ---------------------------------------------------------------------

TEST(FuzzHarness, SmokeCorpusIsCleanAndAccountedFor)
{
    fuzz::FuzzOptions options;
    options.seed = 3;
    options.cases = 40;
    options.jobs = 3;
    fuzz::FuzzReport report = fuzz::runFuzz(options);
    EXPECT_TRUE(report.clean());
    EXPECT_EQ(report.casesRun, 40u);
    EXPECT_EQ(report.casesFailed, 0u);
    for (const fuzz::OracleTally &tally : report.tallies) {
        EXPECT_EQ(tally.passes + tally.skips + tally.failures,
                  report.casesRun);
    }
    EXPECT_NE(report.render().find("verdict: CLEAN"), std::string::npos);
}

TEST(FuzzHarness, ParallelReportIsByteIdenticalToSerial)
{
    fuzz::FuzzOptions options;
    options.seed = 17;
    options.cases = 30;
    options.jobs = 4;
    fuzz::FuzzReport report = fuzz::runFuzz(options);
    EXPECT_EQ(fuzz::verifyJobsIdentity(report), "");
}

TEST(FuzzHarness, RegressionSnippetEmbedsRepro)
{
    qc::Circuit shrunk(2, 2);
    shrunk.h(0).cx(0, 1).measureAll();
    fuzz::FuzzFailure failure;
    failure.caseIndex = 12;
    failure.caseSeed = 0xabcdu;
    failure.oracle = fuzz::OracleId::QasmRoundTrip;
    failure.shrunk = shrunk;
    failure.reproQasm = qc::toQasm(shrunk);
    std::string snippet = fuzz::regressionTestSnippet(failure);
    EXPECT_NE(snippet.find("runOracle"), std::string::npos);
    EXPECT_NE(snippet.find("QasmRoundTrip"), std::string::npos);
    EXPECT_NE(snippet.find("h q[0];"), std::string::npos);
}

// ---------------------------------------------------------------------
// CLI: exit-code contract and output determinism.
// ---------------------------------------------------------------------

namespace {

int
fuzzCli(const std::vector<std::string> &args, std::string *out_text = nullptr,
        std::string *err_text = nullptr)
{
    std::ostringstream out, err;
    int rc = fuzz::fuzzMain(args, out, err);
    if (out_text != nullptr)
        *out_text = out.str();
    if (err_text != nullptr)
        *err_text = err.str();
    return rc;
}

} // namespace

TEST(FuzzCli, HelpExitsCleanly)
{
    std::string out;
    EXPECT_EQ(fuzzCli({"--help"}, &out), fuzz::kFuzzOk);
    EXPECT_NE(out.find("--seed"), std::string::npos);
}

TEST(FuzzCli, UsageErrorsExitTwo)
{
    std::string err;
    EXPECT_EQ(fuzzCli({"--bogus"}, nullptr, &err), fuzz::kFuzzUsage);
    EXPECT_NE(err.find("unknown flag"), std::string::npos) << err;
    EXPECT_EQ(fuzzCli({"--seed", "12x"}), fuzz::kFuzzUsage);
    EXPECT_EQ(fuzzCli({"--cases"}), fuzz::kFuzzUsage);
    EXPECT_EQ(fuzzCli({"--min-qubits", "6", "--max-qubits", "3"}),
              fuzz::kFuzzUsage);
    EXPECT_EQ(fuzzCli({"--max-qubits", "30"}), fuzz::kFuzzUsage);
}

TEST(FuzzCli, CleanRunIsDeterministic)
{
    const std::vector<std::string> args = {"--seed", "5", "--cases", "25",
                                           "--jobs", "2"};
    std::string first, second;
    EXPECT_EQ(fuzzCli(args, &first), fuzz::kFuzzOk);
    EXPECT_EQ(fuzzCli(args, &second), fuzz::kFuzzOk);
    EXPECT_EQ(first, second);
    EXPECT_NE(first.find("jobs identity: ok"), std::string::npos);
}

} // namespace
} // namespace smq
