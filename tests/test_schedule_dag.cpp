/**
 * @file
 * Tests for moment scheduling (depth, liveness matrix, barriers) and
 * the dependency DAG (critical-path two-qubit counting).
 */

#include <gtest/gtest.h>

#include "qc/dag.hpp"
#include "qc/schedule.hpp"

namespace smq::qc {
namespace {

TEST(Schedule, ParallelGatesShareAMoment)
{
    Circuit c(3, 0);
    c.h(0).h(1).h(2).cx(0, 1);
    Schedule s = schedule(c);
    EXPECT_EQ(s.depth(), 2u);
    EXPECT_EQ(s.moments[0].size(), 3u);
    EXPECT_EQ(s.moments[1].size(), 1u);
}

TEST(Schedule, GhzLadderDepthIsLinear)
{
    // h + (n-1) serial CNOTs: depth n
    const std::size_t n = 6;
    Circuit c(n, 0);
    c.h(0);
    for (std::size_t i = 0; i + 1 < n; ++i)
        c.cx(static_cast<Qubit>(i), static_cast<Qubit>(i + 1));
    EXPECT_EQ(schedule(c).depth(), n);
}

TEST(Schedule, BarrierFencesAllQubits)
{
    Circuit c(2, 0);
    c.h(0).barrier().h(1);
    // without the barrier h(1) would share moment 0
    Schedule s = schedule(c);
    EXPECT_EQ(s.depth(), 2u);
    EXPECT_EQ(s.momentOf[0], 0);
    EXPECT_EQ(s.momentOf[2], 1);
}

TEST(Schedule, MeasureAndResetOccupyMoments)
{
    Circuit c(1, 1);
    c.h(0).measure(0, 0).reset(0).h(0);
    EXPECT_EQ(schedule(c).depth(), 4u);
}

TEST(Schedule, LivenessMatrixMarksActiveSlots)
{
    Circuit c(2, 0);
    c.h(0).cx(0, 1);
    Schedule s = schedule(c);
    auto live = livenessMatrix(c, s);
    ASSERT_EQ(live.size(), 2u);
    ASSERT_EQ(live[0].size(), 2u);
    EXPECT_EQ(live[0][0], 1); // h
    EXPECT_EQ(live[1][0], 0); // idle
    EXPECT_EQ(live[0][1], 1); // cx
    EXPECT_EQ(live[1][1], 1); // cx
}

TEST(Dag, LevelsFollowDependencies)
{
    Circuit c(3, 0);
    c.h(0);        // level 1
    c.cx(0, 1);    // level 2
    c.h(2);        // level 1
    c.cx(1, 2);    // level 3
    GateDag dag(c);
    EXPECT_EQ(dag.level(0), 1u);
    EXPECT_EQ(dag.level(1), 2u);
    EXPECT_EQ(dag.level(2), 1u);
    EXPECT_EQ(dag.level(3), 3u);
    EXPECT_EQ(dag.depth(), 3u);
}

TEST(Dag, CriticalTwoQubitCountOnGhz)
{
    // GHZ ladder: every CX lies on the critical path.
    const std::size_t n = 5;
    Circuit c(n, 0);
    c.h(0);
    for (std::size_t i = 0; i + 1 < n; ++i)
        c.cx(static_cast<Qubit>(i), static_cast<Qubit>(i + 1));
    GateDag dag(c);
    EXPECT_EQ(dag.criticalTwoQubitCount(), n - 1);
}

TEST(Dag, CriticalPathPrefersTwoQubitRichBranch)
{
    // Two equal-depth branches: one all-1q, one with a CX. The
    // critical count must report the CX-rich path.
    Circuit c(3, 0);
    c.h(0).h(0).h(0);    // depth-3 branch of 1q gates on qubit 0
    c.cx(1, 2);          // level 1
    c.h(1);              // level 2
    c.h(1);              // level 3
    GateDag dag(c);
    EXPECT_EQ(dag.depth(), 3u);
    EXPECT_EQ(dag.criticalTwoQubitCount(), 1u);
}

TEST(Dag, SerializedTwoQubitChainCountsAll)
{
    Circuit c(2, 0);
    c.cx(0, 1).cx(0, 1).cx(0, 1);
    GateDag dag(c);
    EXPECT_EQ(dag.criticalTwoQubitCount(), 3u);
}

TEST(Dag, EmptyCircuit)
{
    Circuit c(2, 0);
    GateDag dag(c);
    EXPECT_EQ(dag.depth(), 0u);
    EXPECT_EQ(dag.criticalTwoQubitCount(), 0u);
}

TEST(Dag, ParallelTwoQubitGatesCountOncePerLevel)
{
    // Two CXs in the same moment followed by one joining CX: the
    // longest path holds 2 of the 3.
    Circuit c(4, 0);
    c.cx(0, 1).cx(2, 3).cx(1, 2);
    GateDag dag(c);
    EXPECT_EQ(dag.depth(), 2u);
    EXPECT_EQ(dag.criticalTwoQubitCount(), 2u);
}

} // namespace
} // namespace smq::qc
