/**
 * @file
 * Tests for the fault-tolerant job execution layer: seeded
 * fault-schedule determinism, retry-until-success under transient
 * faults, deadline exhaustion salvaging partial results, capability
 * gating, and byte-for-byte reproducibility of full sweep reports.
 */

#include <gtest/gtest.h>

#include "core/benchmarks/error_correction.hpp"
#include "core/benchmarks/ghz.hpp"
#include "core/suites.hpp"
#include "jobs/report.hpp"

namespace smq::jobs {
namespace {

FaultProfile
stormProfile()
{
    FaultProfile profile;
    profile.pTransient = 0.25;
    profile.pQueueTimeout = 0.10;
    profile.pShotTruncation = 0.15;
    profile.calibrationDrift = 0.05;
    return profile;
}

JobOptions
quickJobOptions()
{
    JobOptions options;
    options.harness.shots = 100;
    options.harness.repetitions = 3;
    return options;
}

TEST(FaultInjector, DeterministicAndOrderIndependent)
{
    FaultInjector a(42), b(42);
    a.setDefaultProfile(stormProfile());
    b.setDefaultProfile(stormProfile());

    // Same labels, any call order: identical decisions.
    FaultDecision d1 = a.decide("IBM-Lagos", "ghz_5", 2, 1);
    a.decide("IonQ", "vqe_4", 0, 0); // interleaved unrelated call
    FaultDecision d2 = a.decide("IBM-Lagos", "ghz_5", 2, 1);
    FaultDecision d3 = b.decide("IBM-Lagos", "ghz_5", 2, 1);
    EXPECT_EQ(d1.kind, d2.kind);
    EXPECT_EQ(d1.kind, d3.kind);
    EXPECT_DOUBLE_EQ(d1.shotFraction, d3.shotFraction);
    EXPECT_DOUBLE_EQ(d1.driftFactor, d3.driftFactor);

    // A different seed produces a different schedule somewhere.
    FaultInjector c(43);
    c.setDefaultProfile(stormProfile());
    bool any_different = false;
    for (std::size_t rep = 0; rep < 20 && !any_different; ++rep) {
        for (std::size_t attempt = 0; attempt < 4; ++attempt) {
            if (a.decide("IBM-Lagos", "ghz_5", rep, attempt).kind !=
                c.decide("IBM-Lagos", "ghz_5", rep, attempt).kind) {
                any_different = true;
                break;
            }
        }
    }
    EXPECT_TRUE(any_different);
}

TEST(FaultInjector, CleanProfileInjectsNothing)
{
    FaultInjector injector(9);
    for (std::size_t rep = 0; rep < 10; ++rep) {
        FaultDecision d = injector.decide("IBM-Lagos", "ghz_5", rep, 0);
        EXPECT_EQ(d.kind, FaultKind::None);
        EXPECT_DOUBLE_EQ(d.shotFraction, 1.0);
        EXPECT_DOUBLE_EQ(d.driftFactor, 1.0);
    }
}

TEST(FaultInjector, DriftPerturbsOnlyErrorRates)
{
    sim::NoiseModel noise = device::ibmLagos().noise;
    sim::NoiseModel drifted = FaultInjector::perturbed(noise, 1.5);
    EXPECT_DOUBLE_EQ(drifted.p1, noise.p1 * 1.5);
    EXPECT_DOUBLE_EQ(drifted.p2, noise.p2 * 1.5);
    EXPECT_DOUBLE_EQ(drifted.pMeas, noise.pMeas * 1.5);
    EXPECT_DOUBLE_EQ(drifted.t1, noise.t1);
    EXPECT_DOUBLE_EQ(drifted.time2q, noise.time2q);
    // Probabilities stay probabilities under extreme drift.
    sim::NoiseModel extreme = FaultInjector::perturbed(noise, 1e6);
    EXPECT_LE(extreme.p2, 0.5);
}

TEST(RetryPolicy, DecorrelatedJitterStaysWithinBounds)
{
    RetryPolicy policy;
    stats::Rng rng(3);
    double delay = policy.baseDelayUs;
    for (int i = 0; i < 50; ++i) {
        delay = policy.nextDelay(delay, rng);
        EXPECT_GE(delay, policy.baseDelayUs);
        EXPECT_LE(delay, policy.maxDelayUs);
    }
}

TEST(Scheduler, RetryUntilSuccessUnderTransientFaults)
{
    core::GhzBenchmark bench(3);
    JobOptions options = quickJobOptions();
    options.retry.maxAttempts = 8;

    FaultInjector injector(11);
    FaultProfile profile;
    profile.pTransient = 0.5; // heavy transient weather, no other modes
    injector.setDefaultProfile(profile);

    SweepContext ctx(options, injector);
    core::BenchmarkRun run =
        runJob(bench, device::ibmLagos(), options, ctx);

    EXPECT_EQ(run.status, core::RunStatus::Ok);
    EXPECT_EQ(run.cause, core::FailureCause::None);
    ASSERT_EQ(run.scores.size(), options.harness.repetitions);
    // With p=0.5 per attempt, retries must have happened for this seed.
    EXPECT_GT(run.attempts, options.harness.repetitions);
    EXPECT_FALSE(run.detail.empty());
    for (double s : run.scores) {
        EXPECT_GE(s, 0.0);
        EXPECT_LE(s, 1.0);
    }
}

TEST(Scheduler, AttemptCapExhaustionSalvagesOtherRepetitions)
{
    core::GhzBenchmark bench(3);
    JobOptions options = quickJobOptions();
    options.harness.repetitions = 6;
    options.retry.maxAttempts = 1; // a single fault loses the rep

    FaultInjector injector(5);
    FaultProfile profile;
    profile.pTransient = 0.5;
    injector.setDefaultProfile(profile);

    SweepContext ctx(options, injector);
    core::BenchmarkRun run =
        runJob(bench, device::ibmLagos(), options, ctx);

    // For this seed some repetitions fail outright and some survive.
    ASSERT_GT(run.scores.size(), 0u);
    ASSERT_LT(run.scores.size(), options.harness.repetitions);
    EXPECT_EQ(run.status, core::RunStatus::Partial);
    EXPECT_EQ(run.cause, core::FailureCause::AttemptsExhausted);
    EXPECT_GT(run.errorBarScale, 1.0);
    EXPECT_EQ(run.summary.n, run.scores.size());
}

TEST(Scheduler, DeadlineExhaustionSalvagesCompletedRepetitions)
{
    core::GhzBenchmark bench(3);
    JobOptions options = quickJobOptions();
    options.harness.repetitions = 4;

    // Reference: the same job with no deadline (same seeds).
    SweepContext unlimited(options, FaultInjector(1));
    core::BenchmarkRun full =
        runJob(bench, device::ibmLagos(), options, unlimited);
    ASSERT_EQ(full.scores.size(), 4u);

    // Budget covers roughly two repetitions: submit + queue is 0.6 s
    // and 100 shots cost 0.025 s, so one repetition is ~0.625 s.
    JobOptions limited = options;
    limited.suiteBudgetUs = 1.26e6;
    SweepContext ctx(limited, FaultInjector(1));
    core::BenchmarkRun run =
        runJob(bench, device::ibmLagos(), limited, ctx);

    EXPECT_EQ(run.status, core::RunStatus::Partial);
    EXPECT_EQ(run.cause, core::FailureCause::DeadlineExceeded);
    ASSERT_GT(run.scores.size(), 0u);
    ASSERT_LT(run.scores.size(), 4u);
    // Salvaged scores are exactly the completed repetitions: a prefix
    // of the unlimited run, not re-scored or interpolated.
    for (std::size_t i = 0; i < run.scores.size(); ++i)
        EXPECT_DOUBLE_EQ(run.scores[i], full.scores[i]);
    EXPECT_GT(run.errorBarScale, 1.0);
    EXPECT_EQ(run.summary.n, run.scores.size());

    // The next job in the same exhausted context is skipped, not run.
    core::BenchmarkRun next =
        runJob(bench, device::ibmLagos(), limited, ctx);
    EXPECT_EQ(next.status, core::RunStatus::Skipped);
    EXPECT_EQ(next.cause, core::FailureCause::DeadlineExceeded);
    EXPECT_TRUE(next.scores.empty());
}

TEST(Scheduler, CapabilityGatesErrorCorrectionOnIonDevice)
{
    // The IonQ service generation the paper used had no mid-circuit
    // measurement; the reference collection script skips bit-code.
    device::Device ion = device::ionqDevice();
    ASSERT_FALSE(ion.caps.midCircuitMeasurement);

    JobOptions options = quickJobOptions();
    SweepContext ctx(options);

    core::BitCodeBenchmark bit_code =
        core::BitCodeBenchmark::alternating(3, 1);
    core::BenchmarkRun gated = runJob(bit_code, ion, options, ctx);
    EXPECT_EQ(gated.status, core::RunStatus::Skipped);
    EXPECT_EQ(gated.cause,
              core::FailureCause::MissingMidCircuitMeasurement);
    EXPECT_TRUE(gated.scores.empty());

    // Terminal-measurement benchmarks still run on the same device.
    core::GhzBenchmark ghz(3);
    core::BenchmarkRun ok = runJob(ghz, ion, options, ctx);
    EXPECT_EQ(ok.status, core::RunStatus::Ok);
    EXPECT_EQ(ok.scores.size(), options.harness.repetitions);
}

TEST(Scheduler, ServiceLimitsGateAndDegradeGracefully)
{
    core::GhzBenchmark bench(3);
    JobOptions options = quickJobOptions();
    options.harness.shots = 500;

    // A register cap below the benchmark width skips the job.
    device::Device capped = device::perfectDevice(6);
    capped.caps.maxRegisterSize = 2;
    SweepContext ctx1(options);
    core::BenchmarkRun skipped = runJob(bench, capped, options, ctx1);
    EXPECT_EQ(skipped.status, core::RunStatus::Skipped);
    EXPECT_EQ(skipped.cause, core::FailureCause::RegisterTooWide);

    // A shot cap clamps rather than failing.
    device::Device miser = device::perfectDevice(6);
    miser.caps.maxShots = 50;
    SweepContext ctx2(options);
    core::BenchmarkRun clamped = runJob(bench, miser, options, ctx2);
    EXPECT_EQ(clamped.status, core::RunStatus::Ok);
    EXPECT_NE(clamped.detail.find("clamped"), std::string::npos);
}

TEST(Scheduler, ShotTruncationReportsPartialWithCause)
{
    core::GhzBenchmark bench(3);
    JobOptions options = quickJobOptions();

    FaultInjector injector(2);
    FaultProfile profile;
    profile.pShotTruncation = 1.0; // every attempt truncates
    profile.minShotFraction = 0.3;
    injector.setDefaultProfile(profile);

    SweepContext ctx(options, injector);
    core::BenchmarkRun run =
        runJob(bench, device::ibmLagos(), options, ctx);

    EXPECT_EQ(run.status, core::RunStatus::Partial);
    EXPECT_EQ(run.cause, core::FailureCause::ShotTruncation);
    EXPECT_EQ(run.scores.size(), options.harness.repetitions);
    EXPECT_NE(run.detail.find("truncated"), std::string::npos);
}

TEST(Report, FullSweepNeverThrowsAndExplainsEveryCell)
{
    std::vector<core::BenchmarkPtr> suite = core::quickSuite();
    std::vector<device::Device> devices = device::allDevices();

    JobOptions options;
    options.harness.shots = 40;
    options.harness.repetitions = 2;
    options.retry.maxAttempts = 2;

    FaultInjector injector(2022);
    injector.setDefaultProfile(stormProfile());

    SuiteReport report;
    ASSERT_NO_THROW(
        report = runSweep(suite, devices, options, injector));
    ASSERT_EQ(report.rows.size(), suite.size());

    std::size_t degraded = 0;
    for (const ReportRow &row : report.rows) {
        ASSERT_EQ(row.runs.size(), devices.size());
        for (const core::BenchmarkRun &run : row.runs) {
            if (run.status == core::RunStatus::Ok) {
                EXPECT_EQ(run.cause, core::FailureCause::None);
                EXPECT_EQ(run.scores.size(),
                          options.harness.repetitions);
            } else {
                // Every degraded cell explains itself.
                EXPECT_NE(run.cause, core::FailureCause::None)
                    << run.benchmark << " @ " << run.device;
                ++degraded;
            }
            if (run.scores.size() < options.harness.repetitions)
                EXPECT_NE(run.status, core::RunStatus::Ok);
        }
    }
    // The storm profile and capability gates must have landed somewhere
    // in the 8 x 9 grid (EC-on-IonQ skips alone guarantee two).
    EXPECT_GT(degraded, 0u);

    std::array<std::size_t, 5> tally = statusTally(report);
    EXPECT_GT(tally[static_cast<std::size_t>(
                  core::RunStatus::Skipped)],
              0u);
}

TEST(Report, SameSeedReproducesReportByteForByte)
{
    std::vector<core::BenchmarkPtr> suite = core::quickSuite();
    std::vector<device::Device> devices = device::allDevices();

    JobOptions options;
    options.harness.shots = 40;
    options.harness.repetitions = 2;
    options.retry.maxAttempts = 2;

    FaultInjector injector(2022);
    injector.setDefaultProfile(stormProfile());

    std::string first =
        renderReport(runSweep(suite, devices, options, injector));
    std::string second =
        renderReport(runSweep(suite, devices, options, injector));
    EXPECT_EQ(first, second);

    FaultInjector other(2023);
    other.setDefaultProfile(stormProfile());
    std::string different =
        renderReport(runSweep(suite, devices, options, other));
    EXPECT_NE(first, different);
}

TEST(Runner, FaultHookTruncatesExecution)
{
    core::GhzBenchmark bench(3);
    qc::Circuit circuit = bench.circuits().front();

    sim::RunOptions ro;
    ro.shots = 1000;
    ro.noise = device::ibmLagos().noise;
    ro.faultHook = [](std::uint64_t done) { return done >= 100; };
    stats::Rng rng(4);
    stats::Counts counts = sim::run(circuit, ro, rng);
    EXPECT_GE(counts.shots(), 100u);
    EXPECT_LT(counts.shots(), 1000u);

    // Noiseless path batches too.
    sim::RunOptions ideal;
    ideal.shots = 5000;
    ideal.faultHook = [](std::uint64_t done) { return done >= 600; };
    stats::Counts ideal_counts = sim::run(circuit, ideal, rng);
    EXPECT_GE(ideal_counts.shots(), 600u);
    EXPECT_LT(ideal_counts.shots(), 5000u);
}

} // namespace
} // namespace smq::jobs
