/**
 * @file
 * Tests for hardware topologies and device models (Table II data).
 */

#include <gtest/gtest.h>

#include "device/device.hpp"

namespace smq::device {
namespace {

TEST(Topology, LineDistancesAndPaths)
{
    Topology t = Topology::line(5);
    EXPECT_EQ(t.numQubits(), 5u);
    EXPECT_EQ(t.numEdges(), 4u);
    EXPECT_TRUE(t.coupled(1, 2));
    EXPECT_FALSE(t.coupled(0, 2));
    EXPECT_EQ(t.distance(0, 4), 4u);
    auto path = t.shortestPath(0, 3);
    EXPECT_EQ(path, (std::vector<std::size_t>{0, 1, 2, 3}));
    EXPECT_TRUE(t.connectedGraph());
}

TEST(Topology, RingWrapsAround)
{
    Topology t = Topology::ring(6);
    EXPECT_EQ(t.numEdges(), 6u);
    EXPECT_EQ(t.distance(0, 5), 1u);
    EXPECT_EQ(t.distance(0, 3), 3u);
}

TEST(Topology, GridNeighborhoods)
{
    Topology t = Topology::grid(3, 4);
    EXPECT_EQ(t.numQubits(), 12u);
    // corner has 2, edge has 3, interior has 4 neighbours
    EXPECT_EQ(t.neighbors(0).size(), 2u);
    EXPECT_EQ(t.neighbors(1).size(), 3u);
    EXPECT_EQ(t.neighbors(5).size(), 4u);
    EXPECT_EQ(t.distance(0, 11), 5u);
}

TEST(Topology, AllToAllIsDiameterOne)
{
    Topology t = Topology::allToAll(7);
    EXPECT_EQ(t.numEdges(), 21u);
    for (std::size_t i = 0; i < 7; ++i) {
        for (std::size_t j = 0; j < 7; ++j) {
            if (i != j) {
                EXPECT_EQ(t.distance(i, j), 1u);
            }
        }
    }
}

TEST(Topology, IbmLayoutsAreConnectedAndSized)
{
    EXPECT_EQ(Topology::ibmFalcon7().numQubits(), 7u);
    EXPECT_TRUE(Topology::ibmFalcon7().connectedGraph());
    EXPECT_EQ(Topology::ibmFalcon16().numQubits(), 16u);
    EXPECT_TRUE(Topology::ibmFalcon16().connectedGraph());
    EXPECT_EQ(Topology::ibmFalcon27().numQubits(), 27u);
    EXPECT_TRUE(Topology::ibmFalcon27().connectedGraph());
    // heavy-hex style: no qubit exceeds degree 3
    for (std::size_t q = 0; q < 27; ++q)
        EXPECT_LE(Topology::ibmFalcon27().neighbors(q).size(), 3u);
}

TEST(Topology, RejectsBadEdges)
{
    EXPECT_THROW(Topology(3, {{0, 3}}), std::invalid_argument);
    EXPECT_THROW(Topology(3, {{1, 1}}), std::invalid_argument);
}

TEST(Devices, NineQpusWithPaperCalibration)
{
    auto devices = allDevices();
    ASSERT_EQ(devices.size(), 9u);

    // Table II rows spot-checked verbatim
    const Device &casablanca = devices[0];
    EXPECT_EQ(casablanca.name, "IBM-Casablanca");
    EXPECT_EQ(casablanca.numQubits(), 7u);
    EXPECT_NEAR(casablanca.noise.t1, 91.21, 1e-9);
    EXPECT_NEAR(casablanca.noise.t2, 125.23, 1e-9);
    EXPECT_NEAR(casablanca.noise.p2, 0.0083, 1e-12);
    EXPECT_NEAR(casablanca.noise.pMeas, 0.0209, 1e-12);
    EXPECT_NEAR(casablanca.noise.time2q, 0.443, 1e-12);

    const Device &ionq = devices[7];
    EXPECT_EQ(ionq.name, "IonQ");
    EXPECT_EQ(ionq.numQubits(), 11u);
    EXPECT_TRUE(ionq.allToAll());
    EXPECT_EQ(ionq.kind, ArchitectureKind::TrappedIon);
    EXPECT_EQ(ionq.family, NativeFamily::ION);
    EXPECT_NEAR(ionq.noise.p2, 0.0304, 1e-12);
    EXPECT_NEAR(ionq.noise.time2q, 210.0, 1e-9);

    const Device &aqt = devices[8];
    EXPECT_EQ(aqt.name, "AQT");
    EXPECT_EQ(aqt.numQubits(), 4u);
    EXPECT_EQ(aqt.family, NativeFamily::AQT);

    for (const Device &d : devices) {
        EXPECT_TRUE(d.noise.enabled);
        EXPECT_TRUE(d.topology.connectedGraph()) << d.name;
        EXPECT_GT(d.noise.p2, d.noise.p1) << d.name;
    }
}

TEST(Devices, PerfectDeviceIsNoiselessAllToAll)
{
    Device d = perfectDevice(5);
    EXPECT_FALSE(d.noise.enabled);
    EXPECT_TRUE(d.allToAll());
}

} // namespace
} // namespace smq::device
