/**
 * @file
 * Tests for the six feature computations (paper Eqs. 1-6), including
 * closed-form values for GHZ circuits and hand-built edge cases.
 */

#include <gtest/gtest.h>

#include "core/benchmarks/error_correction.hpp"
#include "core/benchmarks/ghz.hpp"
#include "core/features.hpp"
#include "qc/library.hpp"

namespace smq::core {
namespace {

class GhzFeatures : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(GhzFeatures, MatchClosedForms)
{
    const std::size_t n = GetParam();
    qc::Circuit c = GhzBenchmark(n).circuits()[0];
    FeatureVector f = computeFeatures(c);
    double nd = static_cast<double>(n);

    // communication: path graph, average degree 2(n-1)/n over (n-1)
    EXPECT_NEAR(f.communication, 2.0 / nd, 1e-12);
    // every CX lies on the critical path
    EXPECT_NEAR(f.criticalDepth, 1.0, 1e-12);
    // (n-1) CX out of 2n ops (h + CXs + n measures)
    EXPECT_NEAR(f.entanglement, (nd - 1.0) / (2.0 * nd), 1e-12);
    // depth = n + 1
    EXPECT_NEAR(f.parallelism, 1.0 / (nd + 1.0), 1e-12);
    // active slots: 1 + 2(n-1) + n over n(n+1)
    EXPECT_NEAR(f.liveness, (3.0 * nd - 1.0) / (nd * (nd + 1.0)), 1e-12);
    // terminal measurement only
    EXPECT_NEAR(f.measurement, 0.0, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Sizes, GhzFeatures,
                         ::testing::Values(2, 3, 4, 8, 16, 64));

TEST(Features, AllFeaturesAreInUnitInterval)
{
    stats::Rng rng(3);
    std::vector<qc::Circuit> circuits = {
        qc::library::qft(5),
        qc::library::randomLayered(5, 6, rng),
        qc::library::iterativePhaseEstimation(5),
        BitCodeBenchmark::alternating(4, 2).circuits()[0],
    };
    for (const qc::Circuit &c : circuits) {
        FeatureVector f = computeFeatures(c);
        for (double v : f.asArray()) {
            EXPECT_GE(v, 0.0) << c.name();
            EXPECT_LE(v, 1.0) << c.name();
        }
    }
}

TEST(Features, CompleteGraphProgramHasFullCommunication)
{
    const std::size_t n = 5;
    qc::Circuit c(n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i + 1; j < n; ++j)
            c.cz(static_cast<qc::Qubit>(i), static_cast<qc::Qubit>(j));
    }
    EXPECT_NEAR(programCommunication(c), 1.0, 1e-12);
}

TEST(Features, FullyParallelLayerScoresOne)
{
    // n gates in a single moment: (n/1 - 1)/(n - 1) = 1
    const std::size_t n = 6;
    qc::Circuit c(n);
    for (std::size_t q = 0; q < n; ++q)
        c.h(static_cast<qc::Qubit>(q));
    EXPECT_NEAR(parallelism(c), 1.0, 1e-12);
    EXPECT_NEAR(liveness(c), 1.0, 1e-12);
}

TEST(Features, SerialCircuitHasZeroParallelism)
{
    qc::Circuit c(3);
    c.h(0).h(0).h(0);
    EXPECT_NEAR(parallelism(c), 0.0, 1e-12);
    EXPECT_NEAR(liveness(c), 1.0 / 3.0, 1e-12);
}

TEST(Features, MeasurementCountsOnlyMidCircuitLayers)
{
    // terminal measurement: feature 0
    qc::Circuit terminal(2, 2);
    terminal.h(0).cx(0, 1).measureAll();
    EXPECT_NEAR(measurementFeature(terminal), 0.0, 1e-12);

    // one mid-circuit measure+reset layer pair out of depth 4
    qc::Circuit mid(1, 2);
    mid.h(0);          // moment 0
    mid.measure(0, 0); // moment 1 (mid-circuit)
    mid.reset(0);      // moment 2 (mid-circuit)
    mid.measure(0, 1); // moment 3 (terminal)
    EXPECT_NEAR(measurementFeature(mid), 0.5, 1e-12);
}

TEST(Features, ErrorCorrectionBenchmarksExerciseMeasurementAxis)
{
    FeatureVector bit = computeFeatures(
        BitCodeBenchmark::alternating(3, 2).circuits()[0]);
    EXPECT_GT(bit.measurement, 0.0);
    FeatureVector phase = computeFeatures(
        PhaseCodeBenchmark::alternating(3, 2).circuits()[0]);
    EXPECT_GT(phase.measurement, 0.0);
}

TEST(Features, EmptyAndTrivialCircuits)
{
    qc::Circuit empty(3, 0);
    FeatureVector f = computeFeatures(empty);
    for (double v : f.asArray())
        EXPECT_EQ(v, 0.0);

    qc::Circuit single(1, 0);
    single.h(0);
    FeatureVector g = computeFeatures(single);
    EXPECT_EQ(g.communication, 0.0);
    EXPECT_EQ(g.parallelism, 0.0); // n < 2
    EXPECT_EQ(g.liveness, 1.0);
}

TEST(Features, StatsReportProgramShape)
{
    qc::Circuit c(3, 3);
    c.h(0).cx(0, 1).rzz(0.2, 1, 2).barrier().measureAll();
    c.reset(0);
    ProgramStats s = computeStats(c);
    EXPECT_EQ(s.numQubits, 3u);
    EXPECT_EQ(s.gateCount, 7u);
    EXPECT_EQ(s.twoQubitGates, 2u);
    EXPECT_EQ(s.measurements, 3u);
    EXPECT_EQ(s.resets, 1u);
    EXPECT_GE(s.depth, 4u);
}

TEST(Features, AxisNamesMatchOrder)
{
    const auto &names = FeatureVector::axisNames();
    EXPECT_EQ(names[0], "Program Communication");
    EXPECT_EQ(names[5], "Measurement");
    FeatureVector f;
    f.measurement = 0.7;
    EXPECT_EQ(f.asArray()[5], 0.7);
}

} // namespace
} // namespace smq::core
