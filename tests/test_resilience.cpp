/**
 * @file
 * Crash-tolerance tests: deterministic shard partitioning, the
 * checkpoint journal (round-trip, corrupt-tail tolerance, merge with
 * overlap/conflict/missing detection), the simulator memory budget,
 * cooperative shutdown, and — through real subprocesses of
 * smq_grid_tool — the two acceptance properties: a sweep SIGKILLed at
 * every journal boundary and resumed is byte-identical to an
 * uninterrupted one, and the merge of N shard journals equals the
 * merge of a serial journal for N in {2, 3, 5}.
 */

#include <gtest/gtest.h>

#include <sys/wait.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/harness.hpp"
#include "core/suites.hpp"
#include "device/device.hpp"
#include "jobs/scheduler.hpp"
#include "obs/fsio.hpp"
#include "report/checkpoint.hpp"
#include "report/history.hpp"
#include "report/sentinel_cli.hpp"
#include "sim/density_matrix.hpp"
#include "sim/memory.hpp"
#include "sim/statevector.hpp"
#include "util/stop.hpp"
#include "util/thread_pool.hpp"

namespace smq {
namespace {

namespace fs = std::filesystem;

// --- shard partitioner -----------------------------------------------

TEST(ShardSpec, ParseAcceptsOnlyStrictIOverN)
{
    auto spec = core::parseShardSpec("2/5");
    ASSERT_TRUE(spec.has_value());
    EXPECT_EQ(spec->index, 2u);
    EXPECT_EQ(spec->count, 5u);
    EXPECT_TRUE(spec->active());
    EXPECT_EQ(spec->text(), "2/5");

    auto whole = core::parseShardSpec("0/1");
    ASSERT_TRUE(whole.has_value());
    EXPECT_FALSE(whole->active());

    for (const char *bad :
         {"", "/", "1/", "/3", "3/3", "5/2", "1/0", "1/3x", "x1/3",
          "1//3", "-1/3", "1/3 ", " 1/3", "1.0/3"}) {
        EXPECT_FALSE(core::parseShardSpec(bad).has_value())
            << "accepted '" << bad << "'";
    }
}

TEST(ShardPartition, EveryCellOwnedByExactlyOneShard)
{
    std::vector<core::BenchmarkPtr> suite = core::quickSuite();
    std::vector<device::Device> devices = device::allDevices();
    for (std::size_t n : {2u, 3u, 5u}) {
        std::size_t total = 0;
        std::vector<std::size_t> per_shard(n, 0);
        for (const core::BenchmarkPtr &bench : suite) {
            for (const device::Device &dev : devices) {
                const std::size_t owner =
                    core::shardOfCell(bench->name(), dev.name, n);
                ASSERT_LT(owner, n);
                std::size_t owners = 0;
                for (std::size_t i = 0; i < n; ++i) {
                    core::ShardSpec shard{i, n};
                    if (core::shardOwnsCell(shard, bench->name(),
                                            dev.name)) {
                        ++owners;
                        EXPECT_EQ(i, owner);
                    }
                }
                EXPECT_EQ(owners, 1u);
                ++per_shard[owner];
                ++total;
            }
        }
        EXPECT_EQ(total, suite.size() * devices.size());
        // The label hash should spread the quick grid over shards
        // (deterministic given the fixed derivation, so not flaky).
        std::size_t non_empty = 0;
        for (std::size_t count : per_shard)
            non_empty += count > 0 ? 1 : 0;
        EXPECT_GE(non_empty, 2u) << "degenerate split at N=" << n;
    }
}

TEST(ShardPartition, AssignmentDependsOnlyOnLabels)
{
    // Pure function of (benchmark, device, N): repeated calls and
    // interleaved unrelated calls cannot change an assignment.
    const std::size_t a = core::shardOfCell("ghz_5", "IonQ", 3);
    core::shardOfCell("vqe_4", "AQT", 3);
    EXPECT_EQ(core::shardOfCell("ghz_5", "IonQ", 3), a);
    EXPECT_EQ(core::shardOfCell("ghz_5", "IonQ", 1), 0u);
}

// --- checkpoint journal ----------------------------------------------

fs::path
freshDir(const std::string &name)
{
    fs::path dir = fs::temp_directory_path() /
                   ("smq_resilience_" + name + "_" +
                    std::to_string(::getpid()));
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir;
}

report::CheckpointHeader
demoHeader()
{
    report::CheckpointHeader header;
    header.tool = "test";
    header.config = "shots=40;repetitions=2;faults=0;fault_seed=2022";
    header.shardIndex = 0;
    header.shardCount = 1;
    header.devices = {"devA", "devB"};
    header.benchmarks = {"bench1", "bench2"};
    return header;
}

report::CheckpointRow
demoRow(const std::string &benchmark)
{
    report::CheckpointRow row;
    row.benchmark = benchmark;
    row.isErrorCorrection = false;
    row.features = {0.1, 0.2, 0.3, 0.4, 0.5, 0.625};
    row.stats = {4, 7, 30, 12, 4, 0};
    return row;
}

report::CheckpointCell
demoCell(const std::string &benchmark, const std::string &device,
         double score)
{
    report::CheckpointCell cell;
    cell.benchmark = benchmark;
    cell.device = device;
    cell.final = true;
    cell.status = 0;
    cell.cause = 0;
    cell.plannedRepetitions = 2;
    cell.attempts = 2;
    cell.errorBarScale = 1.0;
    cell.swapsInserted = 3;
    cell.physicalTwoQubitGates = 17;
    cell.scores = {score, score / 3.0};
    return cell;
}

void
writeFullJournal(const fs::path &dir,
                 const report::CheckpointHeader &header)
{
    report::CheckpointWriter writer(dir.string());
    ASSERT_TRUE(writer.writeHeader(header));
    for (const std::string &bench : header.benchmarks)
        ASSERT_TRUE(writer.appendRow(demoRow(bench)));
    for (const std::string &bench : header.benchmarks)
        for (const std::string &dev : header.devices)
            ASSERT_TRUE(writer.appendCell(demoCell(bench, dev, 0.9)));
    EXPECT_TRUE(writer.error().empty());
}

TEST(Checkpoint, JournalRoundTripsExactly)
{
    fs::path dir = freshDir("roundtrip");
    report::CheckpointHeader header = demoHeader();
    writeFullJournal(dir, header);

    report::CheckpointLoad load = report::loadCheckpoint(dir.string());
    EXPECT_TRUE(load.exists);
    ASSERT_TRUE(load.headerOk);
    EXPECT_TRUE(load.header.sameWorkload(header));
    EXPECT_EQ(load.header.tool, "test");
    ASSERT_EQ(load.rows.size(), 2u);
    EXPECT_EQ(load.rows[0].toJsonLine(), demoRow("bench1").toJsonLine());
    ASSERT_EQ(load.cells.size(), 4u);
    EXPECT_EQ(load.cells[0].toJsonLine(),
              demoCell("bench1", "devA", 0.9).toJsonLine());
    EXPECT_EQ(load.skippedLines, 0u);
    EXPECT_FALSE(load.corruptTail);
    fs::remove_all(dir);
}

TEST(Checkpoint, TruncatedTailIsToleratedNotFatal)
{
    fs::path dir = freshDir("corrupt");
    writeFullJournal(dir, demoHeader());
    {
        // What a SIGKILL mid-write leaves behind: a torn last line.
        std::ofstream out(dir / report::kCheckpointFile,
                          std::ios::app);
        out << "{\"schema\":\"smq-checkpoint-v1\",\"kind\":\"cel";
    }
    report::CheckpointLoad load = report::loadCheckpoint(dir.string());
    EXPECT_TRUE(load.headerOk);
    EXPECT_EQ(load.cells.size(), 4u);
    EXPECT_EQ(load.skippedLines, 1u);
    EXPECT_TRUE(load.corruptTail);
    fs::remove_all(dir);
}

TEST(Checkpoint, MissingJournalIsAFreshStart)
{
    fs::path dir = freshDir("missing");
    report::CheckpointLoad load = report::loadCheckpoint(dir.string());
    EXPECT_FALSE(load.exists);
    EXPECT_FALSE(load.headerOk);
    fs::remove_all(dir);
}

TEST(Checkpoint, InactiveWriterIsANoOp)
{
    report::CheckpointWriter writer;
    EXPECT_FALSE(writer.active());
    EXPECT_TRUE(writer.writeHeader(demoHeader()));
    EXPECT_TRUE(writer.appendCell(demoCell("b", "d", 0.5)));
    EXPECT_EQ(writer.cellsJournaled(), 0u);
}

TEST(Checkpoint, WriteFailureSurfacesErrnoText)
{
    // Parent "directory" is a regular file: every write must fail
    // with a structured error, not a silent false.
    fs::path blocker = freshDir("blocker") / "file";
    { std::ofstream out(blocker); out << "x"; }
    report::CheckpointWriter writer((blocker / "sub").string());
    EXPECT_FALSE(writer.appendCell(demoCell("b", "d", 0.5)));
    EXPECT_FALSE(writer.error().empty());
    fs::remove_all(blocker.parent_path());
}

TEST(History, AppendFailureSurfacesErrnoText)
{
    report::HistoryRecord record;
    record.tool = "test";
    std::string error;
    EXPECT_FALSE(report::appendHistory(
        "/nonexistent-smq-dir/runs.jsonl", record, &error));
    EXPECT_FALSE(error.empty());
    EXPECT_NE(error.find(":"), std::string::npos) << error;
}

// --- merge -----------------------------------------------------------

TEST(Merge, ShardUnionReassemblesAndFlagsOverlap)
{
    report::CheckpointHeader header = demoHeader();
    header.shardCount = 2;

    fs::path dir0 = freshDir("merge_s0");
    header.shardIndex = 0;
    {
        report::CheckpointWriter writer(dir0.string());
        writer.writeHeader(header);
        for (const std::string &bench : header.benchmarks)
            writer.appendRow(demoRow(bench));
        writer.appendCell(demoCell("bench1", "devA", 0.9));
        writer.appendCell(demoCell("bench2", "devB", 0.7));
        // Overlap: also journaled (identically) by shard 1.
        writer.appendCell(demoCell("bench1", "devB", 0.8));
    }
    fs::path dir1 = freshDir("merge_s1");
    header.shardIndex = 1;
    {
        report::CheckpointWriter writer(dir1.string());
        writer.writeHeader(header);
        for (const std::string &bench : header.benchmarks)
            writer.appendRow(demoRow(bench));
        writer.appendCell(demoCell("bench1", "devB", 0.8));
        writer.appendCell(demoCell("bench2", "devA", 0.6));
    }

    report::MergedGrid merged =
        report::mergeCheckpoints({dir0.string(), dir1.string()});
    EXPECT_TRUE(merged.complete());
    EXPECT_TRUE(merged.missingShards.empty());
    EXPECT_TRUE(merged.missingCells.empty());
    ASSERT_EQ(merged.overlapCells.size(), 1u);
    EXPECT_EQ(merged.overlapCells[0], "bench1@devB");
    ASSERT_EQ(merged.rows.size(), 2u);
    ASSERT_EQ(merged.cells.size(), 2u);
    EXPECT_EQ(merged.cells[1][0].toJsonLine(),
              demoCell("bench2", "devA", 0.6).toJsonLine());

    // A missing shard demotes the merge to incomplete, listing gaps.
    report::MergedGrid partial =
        report::mergeCheckpoints({dir0.string()});
    EXPECT_FALSE(partial.complete());
    ASSERT_EQ(partial.missingShards.size(), 1u);
    EXPECT_EQ(partial.missingShards[0], 1u);
    EXPECT_EQ(partial.missingCells.size(), 1u);
    EXPECT_EQ(partial.missingCells[0], "bench2@devA");

    fs::remove_all(dir0);
    fs::remove_all(dir1);
}

TEST(Merge, ConflictingResultsAndForeignWorkloadsThrow)
{
    report::CheckpointHeader header = demoHeader();
    fs::path dir0 = freshDir("conflict_a");
    {
        report::CheckpointWriter writer(dir0.string());
        writer.writeHeader(header);
        writer.appendRow(demoRow("bench1"));
        writer.appendCell(demoCell("bench1", "devA", 0.9));
    }
    fs::path dir1 = freshDir("conflict_b");
    {
        report::CheckpointWriter writer(dir1.string());
        writer.writeHeader(header);
        writer.appendRow(demoRow("bench1"));
        writer.appendCell(demoCell("bench1", "devA", 0.1)); // diverges
    }
    EXPECT_THROW(
        report::mergeCheckpoints({dir0.string(), dir1.string()}),
        std::runtime_error);

    fs::path dir2 = freshDir("conflict_c");
    {
        report::CheckpointHeader other = header;
        other.config = "shots=9999";
        report::CheckpointWriter writer(dir2.string());
        writer.writeHeader(other);
    }
    EXPECT_THROW(
        report::mergeCheckpoints({dir0.string(), dir2.string()}),
        std::runtime_error);
    EXPECT_THROW(report::mergeCheckpoints({}), std::runtime_error);

    fs::remove_all(dir0);
    fs::remove_all(dir1);
    fs::remove_all(dir2);
}

TEST(Merge, SalvagedRecordsFillGapsButNeverDisplaceFinals)
{
    report::CheckpointHeader header = demoHeader();
    header.devices = {"devA"};
    header.benchmarks = {"bench1"};
    fs::path dir = freshDir("salvage");
    {
        report::CheckpointWriter writer(dir.string());
        writer.writeHeader(header);
        writer.appendRow(demoRow("bench1"));
        report::CheckpointCell partial = demoCell("bench1", "devA", 0.4);
        partial.final = false;
        writer.appendCell(partial);
        writer.appendCell(demoCell("bench1", "devA", 0.9));
    }
    report::MergedGrid merged =
        report::mergeCheckpoints({dir.string()});
    EXPECT_TRUE(merged.complete());
    EXPECT_EQ(merged.salvagedDropped, 1u);
    EXPECT_EQ(merged.cells[0][0].scores[0], 0.9);
    fs::remove_all(dir);
}

// --- memory budget ---------------------------------------------------

/** RAII budget override so a throwing test cannot leak the budget. */
class BudgetGuard
{
  public:
    explicit BudgetGuard(std::size_t bytes)
    {
        sim::setMemoryBudgetBytes(bytes);
    }
    ~BudgetGuard() { sim::setMemoryBudgetBytes(0); }
};

TEST(MemoryBudget, DenseBytesSaturatesInsteadOfOverflowing)
{
    EXPECT_EQ(sim::denseBytes(3, 16, false), 8u * 16u);
    EXPECT_EQ(sim::denseBytes(3, 16, true), 64u * 16u);
    EXPECT_EQ(sim::denseBytes(200, 16, false), SIZE_MAX);
    EXPECT_EQ(sim::denseBytes(100, 16, true), SIZE_MAX);
}

TEST(MemoryBudget, DenseSimulatorsRefuseOverBudgetUpFront)
{
    BudgetGuard guard(1024); // 1 KiB: nothing real fits
    try {
        sim::StateVector sv(10); // would be 16 KiB
        FAIL() << "allocation was not refused";
    } catch (const sim::ResourceExhausted &e) {
        EXPECT_GT(e.requested, e.budget);
        EXPECT_NE(std::string(e.what()).find("memory budget"),
                  std::string::npos);
    }
    EXPECT_THROW(sim::DensityMatrix dm(6), sim::ResourceExhausted);
}

TEST(MemoryBudget, HarnessReportsStructuredTooLargeCell)
{
    // Build the suite before tightening the budget: the QAOA
    // constructors legitimately simulate during parameter setup.
    std::vector<core::BenchmarkPtr> suite = core::quickSuite();
    device::Device dev = device::allDevices().front();
    BudgetGuard guard(64);
    core::HarnessOptions options;
    options.shots = 50;
    options.repetitions = 2;
    core::BenchmarkRun run = core::runBenchmark(*suite[0], dev, options);
    EXPECT_EQ(run.status, core::RunStatus::TooLarge);
    EXPECT_EQ(run.cause, core::FailureCause::ResourceExhausted);
    EXPECT_TRUE(run.scores.empty());
    EXPECT_NE(run.detail.find("memory budget"), std::string::npos);
}

TEST(MemoryBudget, JobLayerReportsStructuredTooLargeCell)
{
    std::vector<core::BenchmarkPtr> suite = core::quickSuite();
    device::Device dev = device::allDevices().front();
    BudgetGuard guard(64);
    jobs::JobOptions options;
    options.harness.shots = 50;
    options.harness.repetitions = 2;
    jobs::SweepContext ctx(options);
    core::BenchmarkRun run = jobs::runJob(*suite[0], dev, options, ctx);
    EXPECT_EQ(run.status, core::RunStatus::TooLarge);
    EXPECT_EQ(run.cause, core::FailureCause::ResourceExhausted);
    EXPECT_TRUE(run.scores.empty());
}

// --- cooperative shutdown --------------------------------------------

TEST(Stop, RequestAndResetAreObservable)
{
    util::resetStopForTests();
    EXPECT_FALSE(util::stopRequested());
    util::requestStop();
    EXPECT_TRUE(util::stopRequested());
    util::resetStopForTests();
    EXPECT_FALSE(util::stopRequested());
}

TEST(Stop, ParallelForStopsClaimingIndices)
{
    util::resetStopForTests();
    std::atomic<std::size_t> ran{0};
    // Already-stopped predicate: nothing is claimed, serial or pooled.
    for (std::size_t jobs : {1u, 4u}) {
        ran = 0;
        util::parallelFor(
            jobs, 100, [&](std::size_t) { ++ran; },
            [] { return true; });
        EXPECT_EQ(ran.load(), 0u) << "jobs=" << jobs;
    }
    // A predicate tripping midway stops later claims (serial order).
    ran = 0;
    std::atomic<bool> stop{false};
    util::parallelFor(
        1, 100,
        [&](std::size_t i) {
            ++ran;
            if (i == 9)
                stop = true;
        },
        [&] { return stop.load(); });
    EXPECT_EQ(ran.load(), 10u);
}

TEST(Stop, JobLayerSkipsWithInterruptedCause)
{
    std::vector<core::BenchmarkPtr> suite = core::quickSuite();
    device::Device dev = device::allDevices().front();
    jobs::JobOptions options;
    options.harness.shots = 50;
    options.harness.repetitions = 2;
    options.stop = [] { return true; };
    jobs::SweepContext ctx(options);
    core::BenchmarkRun run = jobs::runJob(*suite[0], dev, options, ctx);
    EXPECT_EQ(run.status, core::RunStatus::Skipped);
    EXPECT_EQ(run.cause, core::FailureCause::Interrupted);
}

// --- end-to-end: kill/resume and shard union -------------------------

#ifdef SMQ_GRID_TOOL

/** The tiny grid every subprocess test runs: 3 benchmarks x 3
 *  devices at 40 shots — 9 cells, fractions of a second each. */
const char *kGridArgs = "--benchmarks 3 --devices 3 --shots 40";
constexpr std::size_t kGridCells = 9;

int
runCommand(const std::string &command)
{
    const int status = std::system(command.c_str());
    if (status == -1)
        return -1;
    if (WIFSIGNALED(status))
        return 128 + WTERMSIG(status);
    return WEXITSTATUS(status);
}

int
runGridTool(const std::string &env, const std::string &extraArgs)
{
    std::ostringstream command;
    command << env << (env.empty() ? "" : " ") << "\"" << SMQ_GRID_TOOL
            << "\" " << kGridArgs << " " << extraArgs
            << " >/dev/null 2>&1";
    return runCommand(command.str());
}

std::string
readFile(const fs::path &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream contents;
    contents << in.rdbuf();
    return contents.str();
}

std::string
referenceGrid(const fs::path &dir)
{
    const fs::path out = dir / "reference.txt";
    EXPECT_EQ(runGridTool("", "--out \"" + out.string() + "\""), 0);
    std::string text = readFile(out);
    EXPECT_FALSE(text.empty());
    return text;
}

TEST(Resilience, KillAtEveryJournalBoundaryThenResumeIsByteIdentical)
{
    fs::path dir = freshDir("kill_resume");
    const std::string reference = referenceGrid(dir);

    for (std::size_t k = 1; k <= kGridCells; ++k) {
        const fs::path journal = dir / ("ck_" + std::to_string(k));
        const fs::path out = dir / ("grid_" + std::to_string(k) + ".txt");
        // SIGKILL immediately after the k-th durable cell append: the
        // harshest possible death at an exact journal boundary.
        const int crash_exit = runGridTool(
            "SMQ_CRASH_AFTER_CELLS=" + std::to_string(k),
            "--checkpoint \"" + journal.string() + "\"");
        ASSERT_EQ(crash_exit, 128 + SIGKILL) << "k=" << k;

        report::CheckpointLoad load =
            report::loadCheckpoint(journal.string());
        ASSERT_TRUE(load.headerOk) << "k=" << k;
        EXPECT_EQ(load.cells.size(), k);

        const int resume_exit = runGridTool(
            "", "--resume \"" + journal.string() + "\" --out \"" +
                    out.string() + "\"");
        ASSERT_EQ(resume_exit, 0) << "k=" << k;
        EXPECT_EQ(readFile(out), reference)
            << "resume after kill at cell " << k
            << " diverged from the uninterrupted sweep";
    }
    fs::remove_all(dir);
}

TEST(Resilience, GracefulStopSalvagesJournalAndResumeCompletes)
{
    fs::path dir = freshDir("graceful");
    const std::string reference = referenceGrid(dir);
    const fs::path journal = dir / "ck";
    const fs::path out = dir / "grid.txt";

    // SIGTERM raised after the 3rd journaled cell drives the real
    // signal handler: the run must stop claiming cells, keep the
    // journal intact and exit with the documented resume code.
    const int stop_exit =
        runGridTool("SMQ_STOP_AFTER_CELLS=3",
                    "--checkpoint \"" + journal.string() + "\"");
    ASSERT_EQ(stop_exit, report::kExitInterrupted);
    report::CheckpointLoad load =
        report::loadCheckpoint(journal.string());
    ASSERT_TRUE(load.headerOk);
    EXPECT_GE(load.cells.size(), 3u);
    EXPECT_LT(load.cells.size(), kGridCells);

    const int resume_exit = runGridTool(
        "", "--resume \"" + journal.string() + "\" --out \"" +
                out.string() + "\"");
    ASSERT_EQ(resume_exit, 0);
    EXPECT_EQ(readFile(out), reference);
    fs::remove_all(dir);
}

TEST(Resilience, ResumeRefusesAForeignWorkload)
{
    fs::path dir = freshDir("foreign");
    const fs::path journal = dir / "ck";
    ASSERT_EQ(runGridTool("", "--checkpoint \"" + journal.string() +
                                  "\""),
              0);
    // Same journal, different shots: must exit with the usage code,
    // not silently mix two workloads in one journal.
    std::ostringstream command;
    command << "\"" << SMQ_GRID_TOOL
            << "\" --benchmarks 3 --devices 3 --shots 77 --resume \""
            << journal.string() << "\" >/dev/null 2>&1";
    EXPECT_EQ(runCommand(command.str()),
              report::kExitConfigMismatch);
    fs::remove_all(dir);
}

TEST(Resilience, ShardUnionMergesIdenticallyToSerialForN235)
{
    fs::path dir = freshDir("shard_union");

    // Serial reference journal (one shard owning everything).
    const fs::path serial = dir / "serial";
    ASSERT_EQ(
        runGridTool("", "--checkpoint \"" + serial.string() + "\""), 0);
    report::MergedGrid serial_merge =
        report::mergeCheckpoints({serial.string()});
    EXPECT_TRUE(serial_merge.complete());
    const std::string serial_text =
        report::renderMergedGrid(serial_merge);

    for (std::size_t n : {2u, 3u, 5u}) {
        std::vector<std::string> journals;
        for (std::size_t i = 0; i < n; ++i) {
            const fs::path journal =
                dir / ("s" + std::to_string(n) + "_" + std::to_string(i));
            const int exit_code = runGridTool(
                "", "--shard " + std::to_string(i) + "/" +
                        std::to_string(n) + " --checkpoint \"" +
                        journal.string() + "\"");
            ASSERT_EQ(exit_code, 0) << "shard " << i << "/" << n;
            journals.push_back(journal.string());
        }
        report::MergedGrid merged = report::mergeCheckpoints(journals);
        EXPECT_TRUE(merged.complete()) << "N=" << n;
        EXPECT_TRUE(merged.overlapCells.empty()) << "N=" << n;
        EXPECT_EQ(report::renderMergedGrid(merged), serial_text)
            << "shard union for N=" << n
            << " diverged from the serial sweep";
    }
    fs::remove_all(dir);
}

TEST(Resilience, SentinelMergeCliReportsAndExitCodes)
{
    fs::path dir = freshDir("sentinel_merge");
    const fs::path j0 = dir / "s0", j1 = dir / "s1";
    ASSERT_EQ(runGridTool("", "--shard 0/2 --checkpoint \"" +
                                  j0.string() + "\""),
              0);
    ASSERT_EQ(runGridTool("", "--shard 1/2 --checkpoint \"" +
                                  j1.string() + "\""),
              0);

    const fs::path out = dir / "merged.txt";
    const fs::path history = dir / "runs.jsonl";
    std::ostringstream stdout_text, stderr_text;
    int code = report::sentinelMain(
        {"merge", j0.string(), j1.string(), "--out", out.string(),
         "--history", history.string()},
        stdout_text, stderr_text);
    EXPECT_EQ(code, report::kSentinelOk) << stderr_text.str();
    EXPECT_NE(stdout_text.str().find("verdict: complete"),
              std::string::npos);
    EXPECT_FALSE(readFile(out).empty());

    report::HistoryLoad load = report::loadHistory(history.string());
    ASSERT_EQ(load.records.size(), 1u);
    EXPECT_EQ(load.records[0].tool, "smq_sentinel_merge");
    EXPECT_FALSE(load.records[0].values.empty());

    // One shard alone: incomplete, regression-style exit.
    std::ostringstream partial_out, partial_err;
    code = report::sentinelMain(
        {"merge", j0.string(), "--out", out.string()}, partial_out,
        partial_err);
    EXPECT_EQ(code, report::kSentinelRegression);
    EXPECT_NE(partial_out.str().find("missing shard"),
              std::string::npos);

    // No directories at all: usage.
    std::ostringstream usage_out, usage_err;
    code = report::sentinelMain({"merge"}, usage_out, usage_err);
    EXPECT_EQ(code, report::kSentinelUsage);
    fs::remove_all(dir);
}

#endif // SMQ_GRID_TOOL

} // namespace
} // namespace smq
