/**
 * @file
 * Determinism and correctness tests for the parallel execution engine
 * and the overhauled dense-simulator kernels (`ctest -L perf`).
 *
 * The load-bearing property of the whole perf layer is that
 * parallelism is an implementation detail: a threaded Fig. 2 grid (or
 * repetition loop) must be BYTE-identical to the serial one, with and
 * without fault injection. The kernel tests pin the reordered
 * density-matrix multiplies, the stride-based CCX/CSWAP enumeration
 * and single-qubit gate fusion against naive reference
 * implementations of the old loops.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <stdexcept>
#include <vector>

#include "core/benchmarks/ghz.hpp"
#include "core/harness.hpp"
#include "device/device.hpp"
#include "fig_data.hpp"
#include "qc/circuit.hpp"
#include "qc/qasm.hpp"
#include "sim/density_matrix.hpp"
#include "sim/fusion.hpp"
#include "sim/statevector.hpp"
#include "stats/rng.hpp"
#include "transpile/cache.hpp"
#include "util/thread_pool.hpp"

using namespace smq;

// ---------------------------------------------------------------------
// ThreadPool / parallelFor
// ---------------------------------------------------------------------

TEST(ThreadPool, CoversEveryIndexExactlyOnce)
{
    constexpr std::size_t kN = 997; // prime, not a multiple of jobs
    std::vector<std::atomic<int>> hits(kN);
    for (auto &h : hits)
        h.store(0);
    util::parallelFor(4, kN, [&](std::size_t i) { hits[i]++; });
    for (std::size_t i = 0; i < kN; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, SerialFallbackCoversEveryIndex)
{
    std::vector<int> hits(257, 0);
    util::parallelFor(1, hits.size(), [&](std::size_t i) { hits[i]++; });
    for (std::size_t i = 0; i < hits.size(); ++i)
        EXPECT_EQ(hits[i], 1);
}

TEST(ThreadPool, ReusablePoolRunsMultipleBatches)
{
    util::ThreadPool pool(3);
    EXPECT_EQ(pool.threadCount(), 3u);
    for (int batch = 0; batch < 5; ++batch) {
        std::atomic<std::size_t> sum{0};
        pool.parallelFor(100, [&](std::size_t i) { sum += i; });
        EXPECT_EQ(sum.load(), 4950u);
    }
}

TEST(ThreadPool, PropagatesFirstException)
{
    EXPECT_THROW(util::parallelFor(4, 64,
                                   [&](std::size_t i) {
                                       if (i == 17)
                                           throw std::runtime_error("boom");
                                   }),
                 std::runtime_error);
    // The pool must stay usable after a throwing batch.
    std::atomic<int> count{0};
    util::parallelFor(4, 32, [&](std::size_t) { count++; });
    EXPECT_EQ(count.load(), 32);
}

TEST(ThreadPool, DeriveTaskSeedIsStableAndCollisionFree)
{
    EXPECT_EQ(util::deriveTaskSeed(12345, 7),
              util::deriveTaskSeed(12345, 7));
    std::set<std::uint64_t> seen;
    for (std::uint64_t base : {0ull, 1ull, 12345ull})
        for (std::uint64_t task = 0; task < 1000; ++task)
            seen.insert(util::deriveTaskSeed(base, task));
    EXPECT_EQ(seen.size(), 3000u);
}

// ---------------------------------------------------------------------
// Single-qubit gate fusion
// ---------------------------------------------------------------------

namespace {

/** A circuit with long single-qubit runs interleaved with entanglers. */
qc::Circuit
fusionTestCircuit()
{
    qc::Circuit c(4);
    c.h(0).t(0).s(0).rz(0.3, 0).h(1).x(1).rx(1.1, 1);
    c.cx(0, 1);
    c.t(1).h(2).rz(-0.7, 2).h(3);
    c.ccx(1, 2, 3);
    c.rx(0.25, 3).t(3).h(0);
    c.cswap(0, 1, 2);
    c.rz(2.1, 1).s(2).h(3).t(3);
    return c;
}

} // namespace

TEST(Fusion, FusedStateMatchesGateByGateApplication)
{
    qc::Circuit circuit = fusionTestCircuit();

    sim::StateVector fused(circuit.numQubits());
    fused.applyUnitaryCircuit(circuit); // fuses internally

    sim::StateVector reference(circuit.numQubits());
    for (const qc::Gate &gate : circuit.gates())
        reference.applyGate(gate);

    ASSERT_EQ(fused.dimension(), reference.dimension());
    for (std::size_t k = 0; k < fused.dimension(); ++k) {
        EXPECT_NEAR(fused.amplitude(k).real(),
                    reference.amplitude(k).real(), 1e-12);
        EXPECT_NEAR(fused.amplitude(k).imag(),
                    reference.amplitude(k).imag(), 1e-12);
    }
}

TEST(Fusion, AbsorbsSingleQubitRuns)
{
    qc::Circuit circuit = fusionTestCircuit();
    auto ops = sim::fuseUnitaryCircuit(circuit);
    ASSERT_LT(ops.size(), circuit.gates().size());
    std::size_t absorbed = 0;
    for (const auto &op : ops)
        absorbed += op.sourceGates;
    EXPECT_EQ(absorbed, circuit.gates().size());
}

TEST(Fusion, RejectsNonUnitaryCircuits)
{
    qc::Circuit c(2);
    c.h(0);
    c.measureAll();
    EXPECT_THROW(sim::fuseUnitaryCircuit(c), std::invalid_argument);
}

// ---------------------------------------------------------------------
// Density-matrix kernels vs naive full-matrix reference
// ---------------------------------------------------------------------

namespace {

using DenseMatrix = std::vector<std::vector<sim::Complex>>;

/** Snapshot rho through the public element() accessor. */
DenseMatrix
snapshot(const sim::DensityMatrix &rho)
{
    DenseMatrix m(rho.dimension(),
                  std::vector<sim::Complex>(rho.dimension()));
    for (std::size_t r = 0; r < rho.dimension(); ++r)
        for (std::size_t c = 0; c < rho.dimension(); ++c)
            m[r][c] = rho.element(r, c);
    return m;
}

/** Embed a 1-qubit unitary on qubit q into the full 2^n matrix. */
DenseMatrix
embed1(const sim::Matrix2 &u, std::size_t q, std::size_t n)
{
    const std::size_t dim = std::size_t{1} << n;
    DenseMatrix full(dim, std::vector<sim::Complex>(dim, 0.0));
    const std::size_t mask = std::size_t{1} << q;
    for (std::size_t r = 0; r < dim; ++r)
        for (std::size_t c = 0; c < dim; ++c)
            if ((r & ~mask) == (c & ~mask)) {
                std::size_t rb = (r >> q) & 1, cb = (c >> q) & 1;
                full[r][c] = u[rb * 2 + cb];
            }
    return full;
}

/** Embed a 2-qubit unitary (basis k = 2 b0 + b1, gate_matrices.hpp). */
DenseMatrix
embed2(const sim::Matrix4 &u, std::size_t q0, std::size_t q1,
       std::size_t n)
{
    const std::size_t dim = std::size_t{1} << n;
    DenseMatrix full(dim, std::vector<sim::Complex>(dim, 0.0));
    const std::size_t mask =
        (std::size_t{1} << q0) | (std::size_t{1} << q1);
    for (std::size_t r = 0; r < dim; ++r)
        for (std::size_t c = 0; c < dim; ++c)
            if ((r & ~mask) == (c & ~mask)) {
                std::size_t kr = 2 * ((r >> q0) & 1) + ((r >> q1) & 1);
                std::size_t kc = 2 * ((c >> q0) & 1) + ((c >> q1) & 1);
                full[r][c] = u[kr * 4 + kc];
            }
    return full;
}

/** Naive U rho U^dagger with full matrices (the oracle). */
DenseMatrix
conjugate(const DenseMatrix &u, const DenseMatrix &rho)
{
    const std::size_t dim = rho.size();
    DenseMatrix out(dim, std::vector<sim::Complex>(dim, 0.0));
    for (std::size_t i = 0; i < dim; ++i)
        for (std::size_t j = 0; j < dim; ++j) {
            sim::Complex acc = 0.0;
            for (std::size_t a = 0; a < dim; ++a)
                for (std::size_t b = 0; b < dim; ++b)
                    acc += u[i][a] * rho[a][b] * std::conj(u[j][b]);
            out[i][j] = acc;
        }
    return out;
}

/** A non-trivial mixed-ish starting state over 3 qubits. */
sim::DensityMatrix
preparedRho()
{
    sim::DensityMatrix rho(3);
    rho.applyGate(qc::Gate(qc::GateType::H, {0}));
    rho.applyGate(qc::Gate(qc::GateType::CX, {0, 1}));
    rho.applyGate(qc::Gate(qc::GateType::T, {1}));
    rho.applyGate(qc::Gate(qc::GateType::RX, {2}, {0.9}));
    rho.depolarize1(1, 0.05); // genuinely mixed
    return rho;
}

void
expectMatrixNear(const DenseMatrix &a, const DenseMatrix &b, double tol)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t r = 0; r < a.size(); ++r)
        for (std::size_t c = 0; c < a.size(); ++c) {
            EXPECT_NEAR(a[r][c].real(), b[r][c].real(), tol)
                << "(" << r << "," << c << ")";
            EXPECT_NEAR(a[r][c].imag(), b[r][c].imag(), tol)
                << "(" << r << "," << c << ")";
        }
}

} // namespace

TEST(DensityKernels, ApplyMatrix1MatchesFullMatrixReference)
{
    for (std::size_t q = 0; q < 3; ++q) {
        for (auto type : {qc::GateType::H, qc::GateType::T,
                          qc::GateType::SX}) {
            sim::DensityMatrix rho = preparedRho();
            DenseMatrix before = snapshot(rho);
            sim::Matrix2 u = sim::gateMatrix1(qc::Gate(type, {0}));
            rho.applyMatrix1(q, u);
            expectMatrixNear(snapshot(rho),
                             conjugate(embed1(u, q, 3), before), 1e-12);
        }
    }
}

TEST(DensityKernels, ApplyMatrix2MatchesFullMatrixReference)
{
    for (std::size_t q0 = 0; q0 < 3; ++q0) {
        for (std::size_t q1 = 0; q1 < 3; ++q1) {
            if (q0 == q1)
                continue;
            sim::DensityMatrix rho = preparedRho();
            DenseMatrix before = snapshot(rho);
            sim::Matrix4 u = sim::gateMatrix2(
                qc::Gate(qc::GateType::RZZ, {0, 1}, {0.6}));
            rho.applyMatrix2(q0, q1, u);
            expectMatrixNear(snapshot(rho),
                             conjugate(embed2(u, q0, q1, 3), before),
                             1e-12);
        }
    }
}

// ---------------------------------------------------------------------
// CCX / CSWAP stride-based enumeration vs reference permutation
// ---------------------------------------------------------------------

namespace {

/** Random unitary prefix producing a dense, structureless state. */
qc::Circuit
randomPrefix(std::size_t n, std::uint64_t seed)
{
    stats::Rng rng(seed);
    qc::Circuit c(n);
    for (int layer = 0; layer < 3; ++layer) {
        for (std::size_t q = 0; q < n; ++q) {
            c.rx(rng.uniform(0.0, 3.0), static_cast<qc::Qubit>(q));
            c.rz(rng.uniform(0.0, 3.0), static_cast<qc::Qubit>(q));
        }
        for (std::size_t q = layer % 2; q + 1 < n; q += 2)
            c.cx(static_cast<qc::Qubit>(q),
                 static_cast<qc::Qubit>(q + 1));
    }
    return c;
}

} // namespace

TEST(StateVectorStrides, CcxMatchesReferencePermutation)
{
    constexpr std::size_t kN = 5;
    std::uint64_t seed = 11;
    for (qc::Qubit c0 = 0; c0 < kN; ++c0) {
        for (qc::Qubit c1 = 0; c1 < kN; ++c1) {
            for (qc::Qubit t = 0; t < kN; ++t) {
                if (c0 == c1 || c0 == t || c1 == t)
                    continue;
                sim::StateVector sv(kN);
                sv.applyUnitaryCircuit(randomPrefix(kN, seed));
                std::vector<sim::Complex> before = sv.amplitudes();
                sv.applyGate(qc::Gate(qc::GateType::CCX, {c0, c1, t}));

                const std::size_t b0 = std::size_t{1} << c0;
                const std::size_t b1 = std::size_t{1} << c1;
                const std::size_t bt = std::size_t{1} << t;
                for (std::size_t k = 0; k < before.size(); ++k) {
                    sim::Complex expected =
                        ((k & b0) && (k & b1)) ? before[k ^ bt]
                                               : before[k];
                    // pure permutation: exact, not approximate
                    EXPECT_EQ(sv.amplitude(k), expected)
                        << "c0=" << c0 << " c1=" << c1 << " t=" << t
                        << " k=" << k;
                }
                ++seed;
            }
        }
    }
}

TEST(StateVectorStrides, CswapMatchesReferencePermutation)
{
    constexpr std::size_t kN = 5;
    std::uint64_t seed = 31;
    for (qc::Qubit c = 0; c < kN; ++c) {
        for (qc::Qubit a = 0; a < kN; ++a) {
            for (qc::Qubit b = 0; b < kN; ++b) {
                if (c == a || c == b || a == b)
                    continue;
                sim::StateVector sv(kN);
                sv.applyUnitaryCircuit(randomPrefix(kN, seed));
                std::vector<sim::Complex> before = sv.amplitudes();
                sv.applyGate(qc::Gate(qc::GateType::CSWAP, {c, a, b}));

                const std::size_t bc = std::size_t{1} << c;
                const std::size_t ba = std::size_t{1} << a;
                const std::size_t bb = std::size_t{1} << b;
                for (std::size_t k = 0; k < before.size(); ++k) {
                    std::size_t src = k;
                    if (k & bc) {
                        std::size_t bit_a = (k >> a) & 1;
                        std::size_t bit_b = (k >> b) & 1;
                        src = (k & ~(ba | bb)) | (bit_a ? bb : 0) |
                              (bit_b ? ba : 0);
                    }
                    EXPECT_EQ(sv.amplitude(k), before[src])
                        << "c=" << c << " a=" << a << " b=" << b
                        << " k=" << k;
                }
                ++seed;
            }
        }
    }
}

// ---------------------------------------------------------------------
// Transpile memoization
// ---------------------------------------------------------------------

TEST(TranspileCache, HitMissAccountingAndIdenticalResults)
{
    transpile::clearTranspileCache();
    core::GhzBenchmark ghz(5);
    qc::Circuit circuit = ghz.circuits()[0];
    device::Device dev = device::ibmLagos();

    transpile::TranspileResult direct = transpile::transpile(circuit, dev);
    transpile::TranspileResult first =
        transpile::cachedTranspile(circuit, dev);
    transpile::TranspileResult second =
        transpile::cachedTranspile(circuit, dev);

    transpile::CacheStats stats = transpile::transpileCacheStats();
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.hits, 1u);

    EXPECT_EQ(qc::toQasm(first.circuit), qc::toQasm(direct.circuit));
    EXPECT_EQ(qc::toQasm(second.circuit), qc::toQasm(direct.circuit));
    EXPECT_EQ(first.initialLayout, direct.initialLayout);
    EXPECT_EQ(second.finalLayout, direct.finalLayout);
    EXPECT_EQ(second.swapsInserted, direct.swapsInserted);
    EXPECT_EQ(second.twoQubitGateCount, direct.twoQubitGateCount);
}

TEST(TranspileCache, DistinguishesDevicesAndOptions)
{
    transpile::clearTranspileCache();
    core::GhzBenchmark ghz(5);
    qc::Circuit circuit = ghz.circuits()[0];

    transpile::cachedTranspile(circuit, device::ibmLagos());
    transpile::cachedTranspile(circuit, device::ibmCasablanca());
    transpile::TranspileOptions no_opt;
    no_opt.optimize = false;
    transpile::cachedTranspile(circuit, device::ibmLagos(), no_opt);

    transpile::CacheStats stats = transpile::transpileCacheStats();
    EXPECT_EQ(stats.misses, 3u);
    EXPECT_EQ(stats.hits, 0u);
    transpile::clearTranspileCache();
}

// ---------------------------------------------------------------------
// Parallel repetitions and the threaded Fig. 2 grid
// ---------------------------------------------------------------------

TEST(ParallelHarness, RepetitionScoresIdenticalAcrossJobCounts)
{
    core::GhzBenchmark ghz(4);
    device::Device dev = device::ibmCasablanca();
    core::HarnessOptions options;
    options.shots = 200;
    options.repetitions = 4;
    options.seed = 777;

    options.jobs = 1;
    core::BenchmarkRun serial = core::runBenchmark(ghz, dev, options);
    options.jobs = 3;
    core::BenchmarkRun threaded = core::runBenchmark(ghz, dev, options);

    ASSERT_EQ(serial.scores.size(), threaded.scores.size());
    for (std::size_t i = 0; i < serial.scores.size(); ++i)
        EXPECT_EQ(serial.scores[i], threaded.scores[i]) << "rep " << i;
}

namespace {

bench::Scale
miniScale()
{
    bench::Scale scale;
    scale.defaultShots = 30;
    scale.repetitions = 2;
    scale.useCache = false;
    return scale;
}

} // namespace

TEST(ParallelGrid, ByteIdenticalToSerial)
{
    bench::Scale scale = miniScale();
    scale.jobs = 1;
    std::string serial = bench::serializeGrid(bench::computeFig2Grid(scale));
    scale.jobs = 4;
    std::string threaded =
        bench::serializeGrid(bench::computeFig2Grid(scale));
    EXPECT_EQ(serial, threaded);
}

TEST(ParallelGrid, ByteIdenticalToSerialUnderFaultInjection)
{
    bench::Scale scale = miniScale();
    scale.faults = true;
    scale.jobs = 1;
    std::string serial = bench::serializeGrid(bench::computeFig2Grid(scale));
    scale.jobs = 4;
    std::string threaded =
        bench::serializeGrid(bench::computeFig2Grid(scale));
    EXPECT_EQ(serial, threaded);
}
