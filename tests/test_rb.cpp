/**
 * @file
 * Tests for randomized benchmarking: Clifford group closure, sequence
 * identity property, and recovery of the injected error rate.
 */

#include <gtest/gtest.h>

#include "core/randomized_benchmarking.hpp"
#include "sim/runner.hpp"
#include "sim/statevector.hpp"
#include "transpile/euler.hpp"

namespace smq::core {
namespace {

TEST(CliffordGroup, HasTwentyFourElementsWithValidInverses)
{
    const auto &group = clifford1qGroup();
    ASSERT_EQ(group.size(), 24u);
    EXPECT_TRUE(group[0].gates.empty()); // identity first (BFS)
    for (const Clifford1q &c : group) {
        std::vector<qc::Gate> seq, inv_seq;
        for (qc::GateType t : c.gates)
            seq.emplace_back(t, std::vector<qc::Qubit>{0});
        for (qc::GateType t : group[c.inverseIndex].gates)
            inv_seq.emplace_back(t, std::vector<qc::Qubit>{0});
        sim::Matrix2 product = sim::multiply(
            transpile::sequenceMatrix(inv_seq),
            transpile::sequenceMatrix(seq));
        sim::Matrix2 identity = {1.0, 0.0, 0.0, 1.0};
        EXPECT_LT(sim::phaseInvariantDistance(product, identity), 1e-9);
    }
}

TEST(RbSequence, NoiselessSurvivalIsOne)
{
    stats::Rng rng(3);
    for (std::size_t length : {0, 1, 5, 20}) {
        qc::Circuit circuit = rbSequence(length, rng);
        sim::RunOptions options;
        options.shots = 200;
        stats::Rng run_rng(7);
        stats::Counts counts = sim::run(circuit, options, run_rng);
        EXPECT_EQ(counts.at("0"), 200u) << "length " << length;
    }
}

TEST(RbSequence, LengthControlsGateCount)
{
    stats::Rng rng(5);
    qc::Circuit small = rbSequence(2, rng);
    qc::Circuit large = rbSequence(40, rng);
    EXPECT_GT(large.size(), small.size());
}

TEST(Rb, RecoversInjectedDepolarizingRate)
{
    // gate depolarising with probability p per H/S gate: the RB decay
    // must land near the per-Clifford composition of that error
    sim::NoiseModel noise;
    noise.enabled = true;
    noise.p1 = 0.02;

    stats::Rng rng(11);
    RbResult result =
        runRb(noise, {1, 4, 8, 16, 32, 64}, 24, 300, rng);

    EXPECT_GT(result.decay, 0.8);
    EXPECT_LT(result.decay, 0.999);
    // error per Clifford ~ gates/Clifford (~1.9) * p1/2
    EXPECT_GT(result.errorPerClifford, 0.005);
    EXPECT_LT(result.errorPerClifford, 0.08);
    // survival decreases with length
    EXPECT_GT(result.survival.front(), result.survival.back());
}

TEST(Rb, CleanerNoiseGivesSlowerDecay)
{
    sim::NoiseModel dirty;
    dirty.enabled = true;
    dirty.p1 = 0.03;
    sim::NoiseModel clean;
    clean.enabled = true;
    clean.p1 = 0.003;

    stats::Rng rng_a(21), rng_b(21);
    RbResult d = runRb(dirty, {1, 8, 24, 48}, 16, 250, rng_a);
    RbResult c = runRb(clean, {1, 8, 24, 48}, 16, 250, rng_b);
    EXPECT_GT(c.decay, d.decay);
    EXPECT_LT(c.errorPerClifford, d.errorPerClifford);
}

TEST(Rb, ValidatesArguments)
{
    sim::NoiseModel noise;
    stats::Rng rng(1);
    EXPECT_THROW(runRb(noise, {1, 2}, 4, 50, rng),
                 std::invalid_argument);
    EXPECT_THROW(runRb2q(noise, {1, 2}, 4, 50, rng),
                 std::invalid_argument);
}

TEST(CliffordGroup2q, HasCorrectOrderAndValidInverses)
{
    const auto &group = clifford2qGroup();
    ASSERT_EQ(group.size(), 11520u);
    // spot-check a sample of inverses against the dense simulator
    stats::Rng rng(9);
    for (int trial = 0; trial < 20; ++trial) {
        const Clifford2q &c = group[rng.index(group.size())];
        qc::Circuit circuit(2);
        for (const qc::Gate &g : c.gates)
            circuit.append(g);
        for (const qc::Gate &g : group[c.inverseIndex].gates)
            circuit.append(g);
        sim::StateVector sv = sim::finalState(circuit);
        EXPECT_NEAR(std::norm(sv.amplitude(0)), 1.0, 1e-9);
    }
}

TEST(RbSequence2q, NoiselessSurvivalIsOne)
{
    stats::Rng rng(4);
    for (std::size_t length : {0, 1, 3, 8}) {
        qc::Circuit circuit = rbSequence2q(length, rng);
        sim::RunOptions options;
        options.shots = 100;
        stats::Rng run_rng(6);
        stats::Counts counts = sim::run(circuit, options, run_rng);
        EXPECT_EQ(counts.at("00"), 100u) << "length " << length;
    }
}

TEST(Rb2q, TwoQubitErrorDominatesDecay)
{
    // inject only 2q depolarising error: the 2q RB decay must be much
    // faster than the 1q RB decay under the same model
    sim::NoiseModel noise;
    noise.enabled = true;
    noise.p2 = 0.03;

    stats::Rng rng(31);
    RbResult two = runRb2q(noise, {1, 4, 8, 16}, 10, 200, rng);
    EXPECT_GT(two.errorPerClifford, 0.01);
    EXPECT_LT(two.errorPerClifford, 0.2);
    EXPECT_GT(two.survival.front(), two.survival.back());

    stats::Rng rng1(32);
    RbResult one = runRb(noise, {1, 8, 32, 64}, 10, 200, rng1);
    // 1q RB sequences contain no CX: unaffected by p2
    EXPECT_LT(one.errorPerClifford, 0.01);
}

} // namespace
} // namespace smq::core
