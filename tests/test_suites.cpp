/**
 * @file
 * Sanity tests for the suite registries: instance counts match the
 * paper's Table I, names are unique, and every Fig. 2 instance is
 * executable on at least one device model.
 */

#include <gtest/gtest.h>

#include <set>

#include "core/suites.hpp"
#include "device/device.hpp"

namespace smq::core {
namespace {

TEST(Suites, SupermarqPointCountMatchesPaper)
{
    EXPECT_EQ(supermarqFeaturePoints().size(), 52u);
}

TEST(Suites, QasmbenchProxyCountMatchesPaper)
{
    EXPECT_EQ(qasmbenchProxyFeaturePoints().size(), 62u);
}

TEST(Suites, SmallSuiteCountsMatchPaper)
{
    EXPECT_EQ(syntheticFeaturePoints().size(), 7u); // 6 axes + origin
    EXPECT_EQ(triqProxyFeaturePoints().size(), 12u);
    EXPECT_EQ(pplProxyFeaturePoints().size(), 9u);
    EXPECT_EQ(cbgProxyFeaturePoints(123).size(), 123u);
}

TEST(Suites, AllFeaturePointsAreInUnitCube)
{
    for (const auto &points :
         {supermarqFeaturePoints(), qasmbenchProxyFeaturePoints(),
          triqProxyFeaturePoints(), pplProxyFeaturePoints()}) {
        for (const FeatureVector &f : points) {
            for (double v : f.asArray()) {
                EXPECT_GE(v, 0.0);
                EXPECT_LE(v, 1.0);
            }
        }
    }
}

TEST(Suites, Figure2InstancesAreWellFormed)
{
    auto suite = figure2Benchmarks();
    EXPECT_GE(suite.size(), 20u);

    std::set<std::string> names;
    std::size_t largest_device = 0;
    for (const device::Device &dev : device::allDevices())
        largest_device = std::max(largest_device, dev.numQubits());

    for (const BenchmarkPtr &bench : suite) {
        EXPECT_TRUE(names.insert(bench->name()).second)
            << "duplicate name " << bench->name();
        EXPECT_GE(bench->numQubits(), 2u);
        // every instance fits at least the largest device
        EXPECT_LE(bench->numQubits(), largest_device) << bench->name();
        // circuits are generable and measure something
        for (const qc::Circuit &c : bench->circuits())
            EXPECT_GT(c.measureCount(), 0u) << bench->name();
    }
}

TEST(Suites, Figure2CoversAllEightApplications)
{
    auto suite = figure2Benchmarks();
    const char *prefixes[] = {"ghz_",          "mermin_bell_",
                              "bit_code_",     "phase_code_",
                              "qaoa_vanilla_", "qaoa_zzswap_",
                              "vqe_",          "hamiltonian_sim_"};
    for (const char *prefix : prefixes) {
        bool found = false;
        for (const BenchmarkPtr &bench : suite)
            found |= bench->name().rfind(prefix, 0) == 0;
        EXPECT_TRUE(found) << "missing application " << prefix;
    }
}

} // namespace
} // namespace smq::core
