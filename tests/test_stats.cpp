/**
 * @file
 * Tests for the stats substrate: counts, distributions, Hellinger
 * fidelity, descriptive statistics, and linear regression.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "stats/counts.hpp"
#include "stats/descriptive.hpp"
#include "stats/hellinger.hpp"
#include "stats/regression.hpp"
#include "stats/rng.hpp"
#include "stats/table.hpp"

namespace smq::stats {
namespace {

TEST(Counts, AccumulatesShotsAndProbabilities)
{
    Counts counts;
    counts.add("00", 3);
    counts.add("11", 1);
    counts.add("00");
    EXPECT_EQ(counts.shots(), 5u);
    EXPECT_EQ(counts.at("00"), 4u);
    EXPECT_EQ(counts.at("01"), 0u);
    EXPECT_DOUBLE_EQ(counts.probability("00"), 0.8);
    EXPECT_EQ(counts.size(), 2u);
}

TEST(Counts, ParityExpectationMatchesHandComputation)
{
    Counts counts;
    counts.add("00", 50);
    counts.add("11", 50);
    // Z0 Z1 on a GHZ-like histogram: both keys have even parity
    EXPECT_DOUBLE_EQ(counts.parityExpectation({0, 1}), 1.0);
    // Z0 alone averages to zero
    EXPECT_DOUBLE_EQ(counts.parityExpectation({0}), 0.0);
}

TEST(Counts, ParityExpectationThrowsOnBadIndex)
{
    Counts counts;
    counts.add("01");
    EXPECT_THROW(counts.parityExpectation({5}), std::out_of_range);
}

TEST(Counts, MarginalKeepsSelectedBits)
{
    Counts counts;
    counts.add("010", 2);
    counts.add("110", 3);
    Counts marg = counts.marginal({1, 2});
    EXPECT_EQ(marg.at("10"), 5u);
    EXPECT_EQ(marg.shots(), 5u);
}

TEST(Counts, MergeSumsHistograms)
{
    Counts a, b;
    a.add("0", 2);
    b.add("0", 3);
    b.add("1", 1);
    a.merge(b);
    EXPECT_EQ(a.at("0"), 5u);
    EXPECT_EQ(a.shots(), 6u);
}

TEST(Distribution, NormalizeAndSample)
{
    Distribution dist;
    dist.add("0", 2.0);
    dist.add("1", 2.0);
    dist.normalize();
    EXPECT_NEAR(dist.totalMass(), 1.0, 1e-12);

    Rng rng(3);
    Counts sampled = dist.sample(10000, rng);
    EXPECT_EQ(sampled.shots(), 10000u);
    EXPECT_NEAR(sampled.probability("0"), 0.5, 0.03);
}

TEST(Distribution, RejectsNegativeMass)
{
    Distribution dist;
    EXPECT_THROW(dist.add("0", -0.1), std::invalid_argument);
}

TEST(Hellinger, IdenticalDistributionsScoreOne)
{
    Distribution p;
    p.add("00", 0.5);
    p.add("11", 0.5);
    EXPECT_NEAR(hellingerFidelity(p, p), 1.0, 1e-12);
}

TEST(Hellinger, DisjointDistributionsScoreZero)
{
    Distribution p, q;
    p.add("00", 1.0);
    q.add("11", 1.0);
    EXPECT_NEAR(hellingerFidelity(p, q), 0.0, 1e-12);
    EXPECT_NEAR(hellingerDistance(p, q), 1.0, 1e-12);
}

TEST(Hellinger, KnownOverlapValue)
{
    // P uniform over {00, 11}; Q puts all mass on 00:
    // BC = sqrt(0.5), fidelity = 0.5.
    Distribution p, q;
    p.add("00", 0.5);
    p.add("11", 0.5);
    q.add("00", 1.0);
    EXPECT_NEAR(hellingerFidelity(p, q), 0.5, 1e-12);
}

TEST(Hellinger, CountsOverloadMatchesDistribution)
{
    Counts counts;
    counts.add("00", 500);
    counts.add("11", 500);
    Distribution ideal;
    ideal.add("00", 0.5);
    ideal.add("11", 0.5);
    EXPECT_NEAR(hellingerFidelity(counts, ideal), 1.0, 1e-12);
}

TEST(Descriptive, SummaryOfKnownSample)
{
    std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
    Summary s = summarize(xs);
    EXPECT_DOUBLE_EQ(s.mean, 2.5);
    EXPECT_DOUBLE_EQ(s.min, 1.0);
    EXPECT_DOUBLE_EQ(s.max, 4.0);
    EXPECT_NEAR(s.stddev, std::sqrt(5.0 / 3.0), 1e-12);
    EXPECT_DOUBLE_EQ(median(xs), 2.5);
}

TEST(Descriptive, RunningStatsMatchesBatch)
{
    std::vector<double> xs = {0.3, -1.2, 4.7, 2.2, 0.0};
    RunningStats rs;
    for (double x : xs)
        rs.push(x);
    EXPECT_NEAR(rs.mean(), mean(xs), 1e-12);
    EXPECT_NEAR(rs.stddev(), stddev(xs), 1e-12);
}

TEST(Descriptive, EmptySampleThrows)
{
    EXPECT_THROW(mean({}), std::invalid_argument);
    EXPECT_THROW(summarize({}), std::invalid_argument);
}

TEST(Regression, RecoversExactLine)
{
    std::vector<double> xs = {0.0, 1.0, 2.0, 3.0};
    std::vector<double> ys = {1.0, 3.0, 5.0, 7.0}; // y = 1 + 2x
    LinearFit fit = linearRegression(xs, ys);
    EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
    EXPECT_NEAR(fit.slope, 2.0, 1e-12);
    EXPECT_NEAR(fit.r2, 1.0, 1e-12);
    EXPECT_NEAR(fit.predict(10.0), 21.0, 1e-12);
}

TEST(Regression, UncorrelatedDataHasLowR2)
{
    std::vector<double> xs = {0, 1, 2, 3};
    std::vector<double> ys = {1, -1, 1, -1};
    LinearFit fit = linearRegression(xs, ys);
    EXPECT_LT(fit.r2, 0.3);
}

TEST(Regression, DegenerateInputsAreFlat)
{
    LinearFit fit = linearRegression({2.0, 2.0, 2.0}, {1.0, 5.0, 3.0});
    EXPECT_DOUBLE_EQ(fit.slope, 0.0);
    EXPECT_DOUBLE_EQ(fit.r2, 0.0);
    EXPECT_DOUBLE_EQ(fit.intercept, 3.0);
}

TEST(Regression, PearsonSignFollowsSlope)
{
    EXPECT_NEAR(pearson({0, 1, 2}, {2, 1, 0}), -1.0, 1e-12);
    EXPECT_NEAR(pearson({0, 1, 2}, {0, 1, 2}), 1.0, 1e-12);
}

TEST(Rng, DiscreteRespectsWeights)
{
    Rng rng(11);
    std::vector<double> weights = {0.0, 3.0, 1.0};
    std::size_t hits1 = 0;
    for (int i = 0; i < 4000; ++i) {
        std::size_t idx = rng.discrete(weights);
        ASSERT_NE(idx, 0u);
        hits1 += idx == 1;
    }
    EXPECT_NEAR(static_cast<double>(hits1) / 4000.0, 0.75, 0.03);
}

TEST(Rng, DeterministicGivenSeed)
{
    Rng a(5), b(5);
    for (int i = 0; i < 10; ++i)
        EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(Rng, BernoulliEdgeCases)
{
    Rng rng(1);
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
}

TEST(Table, RendersAlignedColumns)
{
    TextTable table({"name", "value"});
    table.addRow({"alpha", "1"});
    table.addRow({"b", "22"});
    std::string out = table.render();
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("-----"), std::string::npos);
    EXPECT_THROW(table.addRow({"only-one-cell"}), std::invalid_argument);
}

TEST(Table, NumberFormatting)
{
    EXPECT_EQ(formatFixed(3.14159, 2), "3.14");
    EXPECT_EQ(formatScientific(0.0014, 1), "1.4e-03");
}

} // namespace
} // namespace smq::stats
