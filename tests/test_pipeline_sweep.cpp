/**
 * @file
 * Broad end-to-end property sweep: every library kernel, transpiled
 * onto every native-gate family's device, must preserve its measured
 * output distribution exactly on a noiseless device. This is the
 * repository's strongest integration guarantee: IR -> decompose ->
 * layout -> route -> native translation -> simulate is
 * distribution-preserving for arbitrary realistic workloads.
 */

#include <gtest/gtest.h>

#include "device/device.hpp"
#include "qc/library.hpp"
#include "sim/statevector.hpp"
#include "stats/hellinger.hpp"
#include "transpile/native.hpp"
#include "transpile/transpiler.hpp"

namespace smq {
namespace {

struct SweepCase
{
    const char *kernel;
    const char *device;
};

qc::Circuit
makeKernel(const std::string &name)
{
    namespace lib = qc::library;
    stats::Rng rng(5);
    qc::Circuit c;
    if (name == "qft") {
        c = lib::qft(4);
        c.measureAll();
    } else if (name == "bv") {
        c = lib::bernsteinVazirani({1, 0, 1});
    } else if (name == "adder") {
        c = lib::cuccaroAdder(1);
        c.measureAll();
    } else if (name == "wstate") {
        c = lib::wState(4);
        c.measureAll();
    } else if (name == "hidden_shift") {
        c = lib::hiddenShift({1, 0, 0, 1});
    } else if (name == "grover") {
        c = lib::grover(3, {1, 0, 1}, 1);
    } else if (name == "random") {
        c = lib::randomLayered(4, 3, rng);
        c.measureAll();
    } else if (name == "qpe") {
        c = lib::quantumPhaseEstimation(3);
    } else {
        throw std::logic_error("unknown kernel " + name);
    }
    return c;
}

device::Device
makeDevice(const std::string &name)
{
    // noiseless copies: we check exact distribution preservation
    device::Device dev;
    if (name == "ibm16")
        dev = device::ibmGuadalupe();
    else if (name == "ion")
        dev = device::ionqDevice();
    else if (name == "line8")
        dev = device::aqtDevice(); // 4q line; small kernels only
    else
        throw std::logic_error("unknown device " + name);
    dev.noise = sim::NoiseModel::ideal();
    return dev;
}

class PipelineSweep : public ::testing::TestWithParam<SweepCase>
{
};

TEST_P(PipelineSweep, DistributionPreservedThroughFullPipeline)
{
    const auto [kernel, device_name] = GetParam();
    qc::Circuit logical = makeKernel(kernel);
    device::Device dev = makeDevice(device_name);
    if (logical.numQubits() > dev.numQubits())
        GTEST_SKIP() << "kernel larger than device";

    transpile::TranspileResult result =
        transpile::transpile(logical, dev);
    auto [compact, mapping] = transpile::compactCircuit(result.circuit);
    ASSERT_LE(compact.numQubits(), 16u);

    // every 2q gate must respect the coupling map (on the original
    // physical indices)
    for (const qc::Gate &g : result.circuit.gates()) {
        if (g.isUnitary() && g.qubits.size() == 2) {
            EXPECT_TRUE(dev.topology.coupled(g.qubits[0], g.qubits[1]))
                << g.toString();
        }
        if (g.isUnitary()) {
            EXPECT_TRUE(transpile::isNativeGate(g, dev.family))
                << qc::gateName(g.type);
        }
    }

    auto expected = sim::idealDistribution(logical);
    auto actual = sim::idealDistribution(compact);
    EXPECT_GT(stats::hellingerFidelity(actual, expected), 1.0 - 1e-9)
        << kernel << " on " << device_name;
}

INSTANTIATE_TEST_SUITE_P(
    KernelsTimesDevices, PipelineSweep,
    ::testing::Values(
        SweepCase{"qft", "ibm16"}, SweepCase{"qft", "ion"},
        SweepCase{"bv", "ibm16"}, SweepCase{"bv", "ion"},
        SweepCase{"bv", "line8"}, SweepCase{"adder", "ibm16"},
        SweepCase{"adder", "ion"}, SweepCase{"adder", "line8"},
        SweepCase{"wstate", "ibm16"}, SweepCase{"wstate", "ion"},
        SweepCase{"wstate", "line8"}, SweepCase{"hidden_shift", "ibm16"},
        SweepCase{"hidden_shift", "ion"},
        SweepCase{"hidden_shift", "line8"},
        SweepCase{"grover", "ibm16"}, SweepCase{"grover", "ion"},
        SweepCase{"random", "ibm16"}, SweepCase{"random", "ion"},
        SweepCase{"random", "line8"}, SweepCase{"qpe", "ibm16"},
        SweepCase{"qpe", "ion"}, SweepCase{"qpe", "line8"}),
    [](const ::testing::TestParamInfo<SweepCase> &info) {
        return std::string(info.param.kernel) + "_on_" +
               info.param.device;
    });

} // namespace
} // namespace smq
