/**
 * @file
 * Tests for the d-dimensional convex-hull volume: known polytopes,
 * rank-deficient inputs, containment, and the Monte-Carlo
 * cross-check, in the dimensions the coverage metric uses.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "geom/hull.hpp"

namespace smq::geom {
namespace {

double
factorial(std::size_t n)
{
    double f = 1.0;
    for (std::size_t k = 2; k <= n; ++k)
        f *= static_cast<double>(k);
    return f;
}

std::vector<Point>
hypercubeCorners(std::size_t dim)
{
    std::vector<Point> points;
    for (std::size_t mask = 0; mask < (std::size_t{1} << dim); ++mask) {
        Point p(dim);
        for (std::size_t k = 0; k < dim; ++k)
            p[k] = (mask >> k) & 1 ? 1.0 : 0.0;
        points.push_back(std::move(p));
    }
    return points;
}

std::vector<Point>
simplexCorners(std::size_t dim)
{
    std::vector<Point> points(dim + 1, Point(dim, 0.0));
    for (std::size_t k = 0; k < dim; ++k)
        points[k + 1][k] = 1.0;
    return points;
}

TEST(Determinant, KnownValues)
{
    EXPECT_NEAR(determinant({{2.0}}), 2.0, 1e-12);
    EXPECT_NEAR(determinant({{1, 2}, {3, 4}}), -2.0, 1e-12);
    EXPECT_NEAR(determinant({{0, 1}, {1, 0}}), -1.0, 1e-12);
    EXPECT_NEAR(determinant({{1, 2, 3}, {4, 5, 6}, {7, 8, 9}}), 0.0,
                1e-9);
}

class HypercubeVolume : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(HypercubeVolume, IsOne)
{
    std::size_t dim = GetParam();
    HullResult hull = convexHull(hypercubeCorners(dim), dim);
    EXPECT_EQ(hull.affineRank, dim);
    EXPECT_NEAR(hull.volume, 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Dims, HypercubeVolume,
                         ::testing::Values(2, 3, 4, 5, 6));

class SimplexVolume : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(SimplexVolume, IsInverseFactorial)
{
    std::size_t dim = GetParam();
    HullResult hull = convexHull(simplexCorners(dim), dim);
    EXPECT_NEAR(hull.volume, 1.0 / factorial(dim), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Dims, SimplexVolume,
                         ::testing::Values(2, 3, 4, 5, 6));

TEST(Hull, SixDimensionalSyntheticSuiteValue)
{
    // origin + 6 unit vectors: the paper's synthetic suite (Table I)
    // has volume 1/6! = 1.389e-3.
    std::vector<Point> points = simplexCorners(6);
    HullResult hull = convexHull(points, 6);
    EXPECT_NEAR(hull.volume, 1.0 / 720.0, 1e-12);
}

TEST(Hull, InteriorPointsDoNotChangeVolume)
{
    auto points = hypercubeCorners(3);
    points.push_back({0.5, 0.5, 0.5});
    points.push_back({0.25, 0.5, 0.75});
    HullResult hull = convexHull(points, 3);
    EXPECT_NEAR(hull.volume, 1.0, 1e-9);
}

TEST(Hull, DuplicatePointsAreHarmless)
{
    auto points = simplexCorners(4);
    points.push_back(points[0]);
    points.push_back(points[2]);
    HullResult hull = convexHull(points, 4);
    EXPECT_NEAR(hull.volume, 1.0 / factorial(4), 1e-12);
}

TEST(Hull, RankDeficientInputsReportZeroVolumeAndRank)
{
    // all points on the z = 0 hyperplane of R^3
    std::vector<Point> flat = {{0, 0, 0}, {1, 0, 0}, {0, 1, 0},
                               {1, 1, 0}, {0.3, 0.7, 0}};
    HullResult hull = convexHull(flat, 3);
    EXPECT_EQ(hull.volume, 0.0);
    EXPECT_EQ(hull.affineRank, 2u);
    EXPECT_TRUE(hull.facets.empty());
}

TEST(Hull, TooFewPointsGiveZero)
{
    // only 3 points in R^3: hull is at most a triangle
    std::vector<Point> points = {
        {0, 0, 0}, {1, 0, 0}, {0, 1, 0}};
    HullResult hull = convexHull(points, 3);
    EXPECT_EQ(hull.volume, 0.0);
}

TEST(Hull, ContainsClassifiesPoints)
{
    HullResult hull = convexHull(hypercubeCorners(3), 3);
    EXPECT_TRUE(hull.contains({0.5, 0.5, 0.5}));
    EXPECT_TRUE(hull.contains({0.0, 0.0, 0.0}));
    EXPECT_FALSE(hull.contains({1.5, 0.5, 0.5}));
    EXPECT_FALSE(hull.contains({-0.1, 0.0, 0.0}));
}

TEST(Hull, ScalingLawHolds)
{
    // scaling one axis by s multiplies the volume by s
    auto points = hypercubeCorners(4);
    for (Point &p : points)
        p[2] *= 0.25;
    HullResult hull = convexHull(points, 4);
    EXPECT_NEAR(hull.volume, 0.25, 1e-9);
}

TEST(MonteCarloVolume, AgreesWithExactHull)
{
    stats::Rng rng(55);
    auto points = simplexCorners(4);
    HullResult hull = convexHull(points, 4);
    double mc = monteCarloVolume(hull, points, 4, 200000, rng);
    EXPECT_NEAR(mc, hull.volume, 0.15 * hull.volume);
}

TEST(MonteCarloVolume, ZeroForEmptyHull)
{
    stats::Rng rng(1);
    HullResult empty;
    EXPECT_EQ(monteCarloVolume(empty, {}, 3, 100, rng), 0.0);
}

TEST(Hull, RandomPointCloudInvariants)
{
    // volume of a random cloud inside the unit cube is positive, at
    // most 1, and every input point is contained in the hull.
    stats::Rng rng(42);
    std::vector<Point> points;
    for (int i = 0; i < 40; ++i) {
        Point p(5);
        for (double &x : p)
            x = rng.uniform();
        points.push_back(std::move(p));
    }
    HullResult hull = convexHull(points, 5);
    EXPECT_GT(hull.volume, 0.0);
    EXPECT_LT(hull.volume, 1.0);
    for (const Point &p : points)
        EXPECT_TRUE(hull.contains(p, 1e-7));
}

} // namespace
} // namespace smq::geom
