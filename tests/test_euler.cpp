/**
 * @file
 * Tests for one-qubit Euler synthesis: ZYZ angles and the IBM ZXZXZ
 * form, over random unitaries and structured edge cases.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "sim/gate_matrices.hpp"
#include "stats/rng.hpp"
#include "transpile/euler.hpp"

namespace smq::transpile {
namespace {

sim::Matrix2
randomUnitary(stats::Rng &rng)
{
    qc::Gate g(qc::GateType::U3, {0},
               {rng.uniform(0.0, M_PI), rng.uniform(0.0, 2.0 * M_PI),
                rng.uniform(0.0, 2.0 * M_PI)});
    return sim::gateMatrix1(g);
}

class EulerRandom : public ::testing::TestWithParam<int>
{
};

TEST_P(EulerRandom, ZyzReconstructionIsExact)
{
    stats::Rng rng(GetParam());
    for (int i = 0; i < 40; ++i) {
        sim::Matrix2 u = randomUnitary(rng);
        auto gates = synthesizeZYZ(u, 0);
        EXPECT_LE(gates.size(), 3u);
        sim::Matrix2 v = sequenceMatrix(gates);
        EXPECT_LT(sim::phaseInvariantDistance(u, v), 1e-9);
    }
}

TEST_P(EulerRandom, ZxzxzReconstructionIsExact)
{
    stats::Rng rng(1000 + GetParam());
    for (int i = 0; i < 40; ++i) {
        sim::Matrix2 u = randomUnitary(rng);
        auto gates = synthesizeZXZXZ(u, 0);
        EXPECT_LE(gates.size(), 5u);
        for (const qc::Gate &g : gates) {
            EXPECT_TRUE(g.type == qc::GateType::RZ ||
                        g.type == qc::GateType::SX);
        }
        sim::Matrix2 v = sequenceMatrix(gates);
        EXPECT_LT(sim::phaseInvariantDistance(u, v), 1e-9);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EulerRandom, ::testing::Range(0, 4));

TEST(Euler, DiagonalGateBecomesSingleRz)
{
    qc::Gate s(qc::GateType::S, {0});
    auto gates = synthesizeZXZXZ(sim::gateMatrix1(s), 0);
    ASSERT_EQ(gates.size(), 1u);
    EXPECT_EQ(gates[0].type, qc::GateType::RZ);
    EXPECT_NEAR(gates[0].params[0], M_PI / 2.0, 1e-9);
}

TEST(Euler, IdentityNeedsNoGates)
{
    sim::Matrix2 id = {1.0, 0.0, 0.0, 1.0};
    EXPECT_TRUE(synthesizeZYZ(id, 0).empty());
    EXPECT_TRUE(synthesizeZXZXZ(id, 0).empty());
}

TEST(Euler, AntiDiagonalCaseIsHandled)
{
    // X is fully anti-diagonal (theta = pi, |v00| = 0)
    sim::Matrix2 x = {0.0, 1.0, 1.0, 0.0};
    auto gates = synthesizeZYZ(x, 0);
    EXPECT_LT(sim::phaseInvariantDistance(x, sequenceMatrix(gates)), 1e-9);
    auto native = synthesizeZXZXZ(x, 0);
    EXPECT_LT(sim::phaseInvariantDistance(x, sequenceMatrix(native)),
              1e-9);
}

TEST(Euler, AnglesReproduceKnownHadamard)
{
    const double inv_sqrt2 = 1.0 / std::sqrt(2.0);
    sim::Matrix2 h = {inv_sqrt2, inv_sqrt2, inv_sqrt2, -inv_sqrt2};
    EulerAngles e = zyzDecompose(h);
    EXPECT_NEAR(e.theta, M_PI / 2.0, 1e-9);
    // the ZYZ angles are not unique; the reconstruction must be exact
    auto gates = synthesizeZYZ(h, 0);
    EXPECT_LT(sim::phaseInvariantDistance(h, sequenceMatrix(gates)),
              1e-9);
    // phi + lambda = pi (mod 2 pi) is pinned by the diagonal entries
    double sum = std::fmod(std::abs(e.phi + e.lambda), 2.0 * M_PI);
    EXPECT_NEAR(sum, M_PI, 1e-9);
}

TEST(Euler, SequenceMatrixRejectsMultiQubitGates)
{
    EXPECT_THROW(sequenceMatrix({qc::Gate(qc::GateType::CX, {0, 1})}),
                 std::invalid_argument);
}

} // namespace
} // namespace smq::transpile
