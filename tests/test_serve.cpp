/**
 * @file
 * Benchmark-as-a-service tests (`ctest -L serve`): the factory
 * grammar, cache-key derivation and LRU eviction, the smq-serve-v1
 * parser, the Server lifecycle in manual and threaded modes (cache
 * hit byte-identity, queue-full backpressure, cancel of queued and
 * in-flight jobs, shutdown drain), the pipe-mode CLI end to end, the
 * PROTOCOL.md doc-closure contract, and — through real subprocesses
 * of smq_serve / smq_sentinel — the socket transport, the `submit`
 * client, busy-socket detection and SIGTERM drain.
 */

#include <gtest/gtest.h>

#include <sys/wait.h>

#include <chrono>
#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <tuple>
#include <unistd.h>
#include <vector>

#include "core/status.hpp"
#include "device/device.hpp"
#include "jobs/scheduler.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/names.hpp"
#include "obs/trace.hpp"
#include "obs/trace_context.hpp"
#include "serve/cache.hpp"
#include "serve/factory.hpp"
#include "serve/protocol.hpp"
#include "serve/serve_cli.hpp"
#include "serve/server.hpp"
#include "serve/socket.hpp"
#include "util/stop.hpp"

namespace smq {
namespace {

namespace fs = std::filesystem;

fs::path
freshDir(const std::string &name)
{
    fs::path dir = fs::temp_directory_path() / name;
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir;
}

std::string
slurp(const fs::path &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream contents;
    contents << in.rdbuf();
    return contents.str();
}

/** Parse a reply line, asserting it is a JSON object. */
obs::JsonValue
parseReply(const std::string &reply)
{
    obs::JsonValue root;
    EXPECT_NO_THROW(root = obs::parseJson(reply)) << reply;
    EXPECT_EQ(root.kind, obs::JsonValue::Kind::Object) << reply;
    return root;
}

/** The `ok` field of a reply (false when absent/malformed). */
bool
replyOk(const std::string &reply)
{
    const obs::JsonValue root = parseReply(reply);
    const obs::JsonValue *ok = root.find("ok");
    return ok != nullptr && ok->kind == obs::JsonValue::Kind::Bool &&
           ok->boolean;
}

std::string
replyField(const std::string &reply, const char *field)
{
    const obs::JsonValue root = parseReply(reply);
    const obs::JsonValue *value = root.find(field);
    return value == nullptr ? std::string() : value->text;
}

/** Extract the raw `"result":{...}` object text from a reply line. */
std::string
resultObjectText(const std::string &reply)
{
    const std::size_t start = reply.find("\"result\":{");
    if (start == std::string::npos)
        return "";
    // The payload contains no nested objects, so the first '}' after
    // the marker closes it.
    const std::size_t open = reply.find('{', start);
    const std::size_t close = reply.find('}', open);
    if (close == std::string::npos)
        return "";
    return reply.substr(open, close - open + 1);
}

// --- factory ---------------------------------------------------------

TEST(ServeFactory, RoundTripsCanonicalNames)
{
    for (const char *name :
         {"ghz_3", "ghz_12", "mermin_bell_3", "bit_code_3d1r",
          "phase_code_3d2r", "qaoa_vanilla_4", "qaoa_zzswap_4",
          "qaoa_vanilla_4_p2", "vqe_4", "hamiltonian_sim_4q1s"}) {
        core::BenchmarkPtr benchmark = serve::makeBenchmark(name);
        ASSERT_NE(benchmark, nullptr) << name;
        EXPECT_EQ(benchmark->name(), name);
    }
}

TEST(ServeFactory, RejectsNamesOutsideTheGrammar)
{
    for (const char *name :
         {"", "ghz", "ghz_", "ghz_0", "ghz_1", "ghz_2x", "ghz_-3",
          "ghz_03x", "bit_code_3d", "bit_code_3d0r", "phase_code_d1r",
          "hamiltonian_sim_4q", "hamiltonian_sim_4q0s", "GHZ_3",
          "toffoli_3", "qaoa_vanilla_4_p1", "qaoa_vanilla_4_p9"}) {
        EXPECT_EQ(serve::makeBenchmark(name), nullptr) << name;
    }
}

TEST(ServeFactory, CapsVariationalSizesButNotStructuralOnes)
{
    // QAOA/VQE run a classical optimiser against a noiseless
    // statevector at construction; a 40-qubit request must be refused
    // at the name layer, not attempted.
    EXPECT_EQ(serve::makeBenchmark("vqe_13"), nullptr);
    EXPECT_EQ(serve::makeBenchmark("qaoa_vanilla_13"), nullptr);
    EXPECT_EQ(serve::makeBenchmark("mermin_bell_13"), nullptr);
    // Structural circuits are cheap to build; the harness itself
    // reports them TooLarge when they exceed the simulator gate.
    EXPECT_NE(serve::makeBenchmark("ghz_100"), nullptr);
}

TEST(ServeFactory, FindsDevicesByExactName)
{
    const std::vector<device::Device> devices = device::allDevices();
    const device::Device *aqt = serve::findDevice("AQT", devices);
    ASSERT_NE(aqt, nullptr);
    EXPECT_EQ(aqt->name, "AQT");
    EXPECT_EQ(serve::findDevice("aqt", devices), nullptr);
    EXPECT_EQ(serve::findDevice("", devices), nullptr);
}

// --- cache key -------------------------------------------------------

TEST(ServeCacheKey, DeterministicAndSensitiveToEveryField)
{
    const std::vector<device::Device> devices = device::allDevices();
    const device::Device *device = serve::findDevice("AQT", devices);
    ASSERT_NE(device, nullptr);
    core::BenchmarkPtr ghz3 = serve::makeBenchmark("ghz_3");

    serve::SubmitSpec base;
    base.benchmark = "ghz_3";
    base.device = "AQT";
    const serve::CacheKey key1 = deriveCacheKey(base, *ghz3, *device);
    const serve::CacheKey key2 = deriveCacheKey(base, *ghz3, *device);
    EXPECT_EQ(key1.hex, key2.hex);
    EXPECT_EQ(key1.text, key2.text);
    EXPECT_EQ(key1.hex.size(), 16u);

    std::vector<serve::SubmitSpec> variants(5, base);
    variants[0].shots = 1999;
    variants[1].repetitions = 4;
    variants[2].seed = 1;
    variants[3].faults = true;
    variants[4].faultSeed = 9;
    for (const serve::SubmitSpec &variant : variants) {
        EXPECT_NE(deriveCacheKey(variant, *ghz3, *device).hex, key1.hex)
            << variant.shots << " " << variant.repetitions;
    }

    // Different circuit content and different device both re-key.
    core::BenchmarkPtr ghz4 = serve::makeBenchmark("ghz_4");
    serve::SubmitSpec other = base;
    other.benchmark = "ghz_4";
    EXPECT_NE(deriveCacheKey(other, *ghz4, *device).hex, key1.hex);
    const device::Device *ionq = serve::findDevice("IonQ", devices);
    if (ionq != nullptr) {
        EXPECT_NE(deriveCacheKey(base, *ghz3, *ionq).hex, key1.hex);
    }
}

// --- result cache ----------------------------------------------------

TEST(ServeCache, LruEvictionUnderByteBudget)
{
    // Budget fits two ~100-byte entries (64 bytes bookkeeping each).
    serve::ResultCache cache(400);
    const std::string payload(120, 'x');
    cache.insert("a", payload);
    cache.insert("b", payload);
    EXPECT_TRUE(cache.lookup("a").has_value()); // refresh: a is now MRU
    cache.insert("c", payload);                 // evicts b, the LRU
    EXPECT_TRUE(cache.lookup("a").has_value());
    EXPECT_FALSE(cache.lookup("b").has_value());
    EXPECT_TRUE(cache.lookup("c").has_value());

    const serve::CacheStats stats = cache.stats();
    EXPECT_EQ(stats.entries, 2u);
    EXPECT_EQ(stats.evictions, 1u);
    EXPECT_EQ(stats.hits, 3u);
    EXPECT_EQ(stats.misses, 1u);
}

TEST(ServeCache, OversizePayloadIsNotStored)
{
    serve::ResultCache cache(100);
    cache.insert("k", std::string(200, 'y'));
    EXPECT_FALSE(cache.lookup("k").has_value());
    EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(ServeCache, ReinsertRefreshesPayload)
{
    serve::ResultCache cache(1 << 12);
    cache.insert("k", "old");
    cache.insert("k", "new");
    auto hit = cache.lookup("k");
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(*hit, "new");
    EXPECT_EQ(cache.stats().entries, 1u);
}

// --- protocol parsing ------------------------------------------------

TEST(ServeProtocol, RejectsMalformedLinesWithTypedErrors)
{
    using serve::ErrorCode;
    const std::pair<const char *, ErrorCode> cases[] = {
        {"garbage", ErrorCode::BadRequest},
        {"[1,2]", ErrorCode::BadRequest},
        {"{}", ErrorCode::BadRequest},
        {"{\"type\":7}", ErrorCode::BadRequest},
        {"{\"type\":\"noop\"}", ErrorCode::UnknownType},
        {"{\"type\":\"status\"}", ErrorCode::BadRequest},
        {"{\"type\":\"status\",\"id\":\"\"}", ErrorCode::BadField},
        {"{\"type\":\"submit\"}", ErrorCode::BadRequest},
        {"{\"type\":\"submit\",\"benchmark\":\"ghz_3\"}",
         ErrorCode::BadRequest},
        {"{\"type\":\"submit\",\"benchmark\":\"ghz_3\",\"device\":"
         "\"AQT\",\"shots\":0}",
         ErrorCode::BadField},
        {"{\"type\":\"submit\",\"benchmark\":\"ghz_3\",\"device\":"
         "\"AQT\",\"shots\":-5}",
         ErrorCode::BadField},
        {"{\"type\":\"submit\",\"benchmark\":\"ghz_3\",\"device\":"
         "\"AQT\",\"shots\":\"many\"}",
         ErrorCode::BadField},
        {"{\"type\":\"submit\",\"benchmark\":\"ghz_3\",\"device\":"
         "\"AQT\",\"seed\":99999999999999999999999}",
         ErrorCode::BadField},
        {"{\"type\":\"submit\",\"benchmark\":\"ghz_3\",\"device\":"
         "\"AQT\",\"repetitions\":20000}",
         ErrorCode::BadField},
        {"{\"type\":\"submit\",\"benchmark\":\"ghz_3\",\"device\":"
         "\"AQT\",\"wait\":\"yes\"}",
         ErrorCode::BadField},
    };
    for (const auto &[line, code] : cases) {
        serve::ParsedRequest parsed = serve::parseRequest(line);
        EXPECT_FALSE(parsed.ok()) << line;
        EXPECT_EQ(parsed.error, code) << line;
        EXPECT_FALSE(parsed.message.empty()) << line;
    }
}

TEST(ServeProtocol, AcceptsFullyPopulatedSubmit)
{
    serve::ParsedRequest parsed = serve::parseRequest(
        "{\"type\":\"submit\",\"benchmark\":\"ghz_4\",\"device\":"
        "\"IonQ\",\"shots\":500,\"repetitions\":2,\"seed\":42,"
        "\"faults\":true,\"fault_seed\":7,\"wait\":true}");
    ASSERT_TRUE(parsed.ok()) << parsed.message;
    const serve::SubmitSpec &spec = parsed.request->submit;
    EXPECT_EQ(spec.benchmark, "ghz_4");
    EXPECT_EQ(spec.device, "IonQ");
    EXPECT_EQ(spec.shots, 500u);
    EXPECT_EQ(spec.repetitions, 2u);
    EXPECT_EQ(spec.seed, 42u);
    EXPECT_TRUE(spec.faults);
    EXPECT_EQ(spec.faultSeed, 7u);
    EXPECT_TRUE(spec.wait);
}

TEST(ServeProtocol, ParsesAndValidatesTheOptionalTraceField)
{
    const obs::TraceContext ctx =
        obs::TraceContext::derive(12345, "ghz_3", "AQT");
    const std::string prefix =
        "{\"type\":\"submit\",\"benchmark\":\"ghz_3\",\"device\":"
        "\"AQT\"";

    serve::ParsedRequest full = serve::parseRequest(
        prefix + ",\"trace\":{\"id\":\"" + ctx.traceIdHex() +
        "\",\"parent\":\"" + ctx.parentSpanHex() + "\"}}");
    ASSERT_TRUE(full.ok()) << full.message;
    EXPECT_EQ(full.request->submit.trace, ctx);

    // The parent half is optional; an absent trace is "no context".
    serve::ParsedRequest headless = serve::parseRequest(
        prefix + ",\"trace\":{\"id\":\"" + ctx.traceIdHex() + "\"}}");
    ASSERT_TRUE(headless.ok()) << headless.message;
    EXPECT_EQ(headless.request->submit.trace.traceIdHex(),
              ctx.traceIdHex());
    EXPECT_EQ(headless.request->submit.trace.parentSpan, 0u);
    serve::ParsedRequest absent = serve::parseRequest(prefix + "}");
    ASSERT_TRUE(absent.ok()) << absent.message;
    EXPECT_FALSE(absent.request->submit.trace.valid());

    // Present-but-malformed is a typed bad_field, never a silent drop:
    // a client that meant to correlate spans should learn its ids
    // never matched.
    const std::string traces[] = {
        "\"zzz\"",                                // not an object
        "{}",                                     // id missing
        "{\"id\":7}",                             // id not a string
        "{\"id\":\"abc\"}",                       // wrong length
        "{\"id\":\"" + std::string(32, '0') + "\"}", // all-zero
        "{\"id\":\"" + ctx.traceIdHex().substr(0, 31) + "G\"}",
        "{\"id\":\"" + ctx.traceIdHex() + "\",\"parent\":\"xy\"}",
        "{\"id\":\"" + ctx.traceIdHex() + "\",\"parent\":4}",
    };
    for (const std::string &trace : traces) {
        serve::ParsedRequest parsed =
            serve::parseRequest(prefix + ",\"trace\":" + trace + "}");
        EXPECT_FALSE(parsed.ok()) << trace;
        EXPECT_EQ(parsed.error, serve::ErrorCode::BadField) << trace;
    }
}

TEST(ServeProtocol, ErrorLinesAreValidJson)
{
    const std::string line = serve::errorLine(
        serve::ErrorCode::BadRequest, "quote \" and \\ backslash");
    const obs::JsonValue root = parseReply(line);
    EXPECT_FALSE(replyOk(line));
    EXPECT_EQ(root.at("error").asString(), "bad_request");
    EXPECT_EQ(root.at("message").asString(), "quote \" and \\ backslash");
}

// --- server: manual mode ---------------------------------------------

/** A manual-mode server: no workers, jobs run via step(). */
serve::ServerOptions
manualOptions()
{
    serve::ServerOptions options;
    options.autoStart = false;
    options.queueLimit = 2;
    return options;
}

std::string
submitLine(const std::string &benchmark, const std::string &device,
           bool wait, std::uint64_t shots = 50,
           std::uint64_t repetitions = 2)
{
    std::ostringstream out;
    out << "{\"type\":\"submit\",\"benchmark\":\"" << benchmark
        << "\",\"device\":\"" << device << "\",\"shots\":" << shots
        << ",\"repetitions\":" << repetitions
        << ",\"wait\":" << (wait ? "true" : "false") << "}";
    return out.str();
}

/** A submit line carrying @p trace as its wire context. */
std::string
tracedSubmitLine(const std::string &benchmark, const std::string &device,
                 bool wait, const obs::TraceContext &trace,
                 std::uint64_t shots = 50, std::uint64_t repetitions = 2)
{
    std::string line =
        submitLine(benchmark, device, wait, shots, repetitions);
    line.insert(line.size() - 1, ",\"trace\":{\"id\":\"" +
                                     trace.traceIdHex() +
                                     "\",\"parent\":\"" +
                                     trace.parentSpanHex() + "\"}");
    return line;
}

TEST(ServeServer, SubmitWaitExecutesInlineAndSecondHitIsByteIdentical)
{
    obs::resetMetrics();
    obs::setMetricsEnabled(true);
    serve::Server server(manualOptions());

    const std::string first =
        server.handle(submitLine("ghz_3", "AQT", true));
    ASSERT_TRUE(replyOk(first)) << first;
    EXPECT_EQ(replyField(first, "state"), "done");
    const std::string payload1 = resultObjectText(first);
    ASSERT_FALSE(payload1.empty()) << first;

    const std::uint64_t shots_after_first =
        obs::snapshotMetrics().counters[obs::names::kSimShots];
    EXPECT_GT(shots_after_first, 0u);

    const std::string second =
        server.handle(submitLine("ghz_3", "AQT", true));
    ASSERT_TRUE(replyOk(second)) << second;
    EXPECT_EQ(replyField(second, "state"), "done");

    // The acceptance criterion: a repeat submit is served from the
    // cache — byte-identical payload, a serve.cache.hit increment,
    // and no further simulator work.
    EXPECT_EQ(resultObjectText(second), payload1);
    EXPECT_NE(second.find("\"cached\":true"), std::string::npos);
    obs::MetricsSnapshot snapshot = obs::snapshotMetrics();
    EXPECT_EQ(snapshot.counters[obs::names::kServeCacheHit], 1u);
    EXPECT_EQ(snapshot.counters[obs::names::kSimShots],
              shots_after_first);
    obs::setMetricsEnabled(false);
    obs::resetMetrics();
}

TEST(ServeServer, DaemonResultMatchesTheBatchJobPath)
{
    serve::Server server(manualOptions());
    const std::string reply =
        server.handle(submitLine("ghz_3", "AQT", true, 80, 3));
    ASSERT_TRUE(replyOk(reply)) << reply;
    const obs::JsonValue result =
        obs::parseJson(resultObjectText(reply));

    // The exact same spec through the batch layer directly.
    core::BenchmarkPtr benchmark = serve::makeBenchmark("ghz_3");
    const std::vector<device::Device> devices = device::allDevices();
    const device::Device *device = serve::findDevice("AQT", devices);
    jobs::JobOptions options;
    options.harness.shots = 80;
    options.harness.repetitions = 3;
    options.harness.seed = 12345;
    jobs::FaultInjector injector(0);
    jobs::SweepContext ctx(options, injector);
    core::BenchmarkRun run =
        jobs::runJob(*benchmark, *device, options, ctx);

    EXPECT_EQ(result.at("status").asString(),
              std::string(core::toString(run.status)));
    ASSERT_EQ(result.at("scores").array.size(), run.scores.size());
    for (std::size_t i = 0; i < run.scores.size(); ++i) {
        EXPECT_DOUBLE_EQ(result.at("scores").array[i].asDouble(),
                         run.scores[i]);
    }
    EXPECT_DOUBLE_EQ(result.at("mean").asDouble(), run.summary.mean);
}

TEST(ServeServer, QueueFullBackpressure)
{
    obs::resetMetrics();
    obs::setMetricsEnabled(true);
    serve::Server server(manualOptions()); // queueLimit = 2

    EXPECT_TRUE(replyOk(server.handle(submitLine("ghz_3", "AQT", false))));
    EXPECT_TRUE(
        replyOk(server.handle(submitLine("ghz_4", "AQT", false))));
    const std::string rejected =
        server.handle(submitLine("ghz_5", "AQT", false));
    EXPECT_FALSE(replyOk(rejected));
    EXPECT_EQ(replyField(rejected, "error"), "queue_full");
    EXPECT_EQ(obs::snapshotMetrics()
                  .counters[obs::names::kServeQueueRejected],
              1u);

    // Draining one job frees a slot.
    EXPECT_TRUE(server.step());
    EXPECT_TRUE(
        replyOk(server.handle(submitLine("ghz_5", "AQT", false))));
    obs::setMetricsEnabled(false);
    obs::resetMetrics();
}

TEST(ServeServer, CancelQueuedJobNeverRuns)
{
    serve::Server server(manualOptions());
    const std::string submitted =
        server.handle(submitLine("ghz_3", "AQT", false));
    const std::string id = replyField(submitted, "id");
    ASSERT_FALSE(id.empty());

    const std::string cancelled =
        server.handle("{\"type\":\"cancel\",\"id\":\"" + id + "\"}");
    EXPECT_TRUE(replyOk(cancelled)) << cancelled;
    EXPECT_EQ(replyField(cancelled, "state"), "cancelled");

    // The queue is empty (nothing to step) and the result is refused.
    EXPECT_FALSE(server.step());
    const std::string result =
        server.handle("{\"type\":\"result\",\"id\":\"" + id + "\"}");
    EXPECT_FALSE(replyOk(result));
    EXPECT_EQ(replyField(result, "error"), "cancelled");

    // Cancel is idempotent on terminal jobs.
    const std::string again =
        server.handle("{\"type\":\"cancel\",\"id\":\"" + id + "\"}");
    EXPECT_TRUE(replyOk(again));
}

TEST(ServeServer, StatusAndResultFollowTheLifecycle)
{
    serve::Server server(manualOptions());
    EXPECT_EQ(replyField(
                  server.handle("{\"type\":\"status\",\"id\":\"job-9\"}"),
                  "error"),
              "not_found");

    const std::string submitted =
        server.handle(submitLine("ghz_3", "AQT", false));
    const std::string id = replyField(submitted, "id");
    EXPECT_EQ(replyField(submitted, "state"), "queued");

    const std::string early =
        server.handle("{\"type\":\"result\",\"id\":\"" + id + "\"}");
    EXPECT_FALSE(replyOk(early));
    EXPECT_EQ(replyField(early, "error"), "not_ready");

    EXPECT_TRUE(server.step());
    EXPECT_EQ(replyField(server.handle("{\"type\":\"status\",\"id\":\"" +
                                       id + "\"}"),
                         "state"),
              "done");
    const std::string result =
        server.handle("{\"type\":\"result\",\"id\":\"" + id + "\"}");
    EXPECT_TRUE(replyOk(result)) << result;
    EXPECT_FALSE(resultObjectText(result).empty());
}

TEST(ServeServer, UnknownNamesAreTypedErrors)
{
    serve::Server server(manualOptions());
    EXPECT_EQ(
        replyField(server.handle(submitLine("warp_9", "AQT", false)),
                   "error"),
        "unknown_benchmark");
    EXPECT_EQ(
        replyField(server.handle(submitLine("ghz_3", "HAL9000", false)),
                   "error"),
        "unknown_device");
}

TEST(ServeServer, ShutdownCancelsQueuedAndRefusesNewSubmits)
{
    serve::Server server(manualOptions());
    const std::string submitted =
        server.handle(submitLine("ghz_3", "AQT", false));
    const std::string id = replyField(submitted, "id");

    const std::string shutdown =
        server.handle("{\"type\":\"shutdown\"}");
    EXPECT_TRUE(replyOk(shutdown)) << shutdown;
    EXPECT_NE(shutdown.find("\"cancelled_queued\":1"),
              std::string::npos);

    EXPECT_EQ(replyField(server.handle("{\"type\":\"status\",\"id\":\"" +
                                       id + "\"}"),
                         "state"),
              "cancelled");
    const std::string refused =
        server.handle(submitLine("ghz_3", "AQT", false));
    EXPECT_EQ(replyField(refused, "error"), "shutting_down");

    // stats stays serviceable while draining.
    const std::string stats = server.handle("{\"type\":\"stats\"}");
    EXPECT_TRUE(replyOk(stats));
    EXPECT_NE(stats.find("\"draining\":true"), std::string::npos);
    server.drain();
}

TEST(ServeServer, StatsReportsQueueCacheAndJobTallies)
{
    serve::Server server(manualOptions());
    server.handle(submitLine("ghz_3", "AQT", true));
    server.handle(submitLine("ghz_3", "AQT", true)); // cache hit
    server.handle(submitLine("ghz_4", "AQT", false));

    const obs::JsonValue stats =
        parseReply(server.handle("{\"type\":\"stats\"}"));
    EXPECT_EQ(stats.at("protocol").asString(), "smq-serve-v1");
    EXPECT_EQ(stats.at("queue_depth").asU64(), 1u);
    EXPECT_EQ(stats.at("jobs").at("done").asU64(), 2u);
    EXPECT_EQ(stats.at("jobs").at("queued").asU64(), 1u);
    EXPECT_EQ(stats.at("cache").at("hits").asU64(), 1u);
    EXPECT_EQ(stats.at("cache").at("entries").asU64(), 1u);
}

TEST(ServeServer, StatsCarriesUptimeHighWaterHitRatioAndJobQuantiles)
{
    obs::resetMetrics();
    obs::setMetricsEnabled(true);
    serve::Server server(manualOptions());
    server.handle(submitLine("ghz_3", "AQT", true));
    server.handle(submitLine("ghz_3", "AQT", true)); // cache hit
    server.handle(submitLine("ghz_4", "AQT", false)); // queued

    const obs::JsonValue stats =
        parseReply(server.handle("{\"type\":\"stats\"}"));
    ASSERT_NE(stats.find("uptime_seconds"), nullptr);
    // The wait submit and the queued one both passed through the
    // queue, one at a time; the cache hit never enqueued.
    EXPECT_EQ(stats.at("queue_high_water").asU64(), 1u);
    // Lookups: miss (ghz_3), hit (ghz_3), miss (ghz_4).
    EXPECT_DOUBLE_EQ(stats.at("cache").at("hit_ratio").asDouble(),
                     1.0 / 3.0);
    // job_ns tallies *executed* jobs only — the cache hit ran nothing —
    // with quantiles from the shared stage.serve.job.ns histogram.
    const obs::JsonValue &job_ns = stats.at("job_ns");
    EXPECT_EQ(job_ns.at("count").asU64(), 1u);
    const double p50 = job_ns.at("p50").asDouble();
    const double p90 = job_ns.at("p90").asDouble();
    const double p99 = job_ns.at("p99").asDouble();
    EXPECT_GT(p50, 0.0);
    EXPECT_LE(p50, p90);
    EXPECT_LE(p90, p99);
    obs::setMetricsEnabled(false);
    obs::resetMetrics();
}

TEST(ServeServer, SubmitReplyEchoesTheJobsTraceId)
{
    serve::Server server(manualOptions());

    // A propagated client context is adopted verbatim.
    const obs::TraceContext ctx =
        obs::TraceContext::derive(777, "client", "side");
    const std::string propagated = server.handle(
        tracedSubmitLine("ghz_3", "AQT", true, ctx, 40, 2));
    ASSERT_TRUE(replyOk(propagated)) << propagated;
    EXPECT_EQ(replyField(propagated, "trace_id"), ctx.traceIdHex());

    // Without one, the daemon derives the context from the submit's
    // identity (default seed 12345), deterministically.
    const std::string derived =
        server.handle(submitLine("ghz_4", "AQT", true, 40, 2));
    ASSERT_TRUE(replyOk(derived)) << derived;
    EXPECT_EQ(replyField(derived, "trace_id"),
              obs::TraceContext::derive(12345, "ghz_4", "AQT")
                  .traceIdHex());

    // A cache-served repeat still lands in the *caller's* trace: the
    // result bytes are shared, the trace identity is per-request.
    const obs::TraceContext other =
        obs::TraceContext::derive(778, "client", "side");
    const std::string repeat = server.handle(
        tracedSubmitLine("ghz_3", "AQT", true, other, 40, 2));
    ASSERT_TRUE(replyOk(repeat)) << repeat;
    EXPECT_NE(repeat.find("\"cached\":true"), std::string::npos);
    EXPECT_EQ(replyField(repeat, "trace_id"), other.traceIdHex());
}

TEST(ServeServer, TracedSubmitIsByteIdenticalToUntracedAtAnyWorkers)
{
    // Baseline: no metrics, no tracing, no context, manual server.
    std::string untraced;
    {
        serve::Server server(manualOptions());
        const std::string reply =
            server.handle(submitLine("ghz_3", "AQT", true, 60, 2));
        ASSERT_TRUE(replyOk(reply)) << reply;
        untraced = resultObjectText(reply);
    }
    ASSERT_FALSE(untraced.empty());

    // Tracing + propagation on, 1 and 8 workers: same payload bytes.
    const obs::TraceContext ctx =
        obs::TraceContext::derive(12345, "ghz_3", "AQT");
    for (std::size_t workers : {std::size_t{1}, std::size_t{8}}) {
        obs::resetMetrics();
        obs::setMetricsEnabled(true);
        const fs::path dir =
            freshDir("smq_serve_traced_w" + std::to_string(workers));
        obs::startTracing(dir.string());
        std::string payload;
        {
            serve::ServerOptions options;
            options.workers = workers;
            options.queueLimit = 16;
            serve::Server server(options);
            const std::string reply = server.handle(
                tracedSubmitLine("ghz_3", "AQT", true, ctx, 60, 2));
            EXPECT_TRUE(replyOk(reply)) << reply;
            EXPECT_EQ(replyField(reply, "trace_id"), ctx.traceIdHex());
            payload = resultObjectText(reply);
            server.requestShutdown();
            server.drain();
        }
        obs::stopTracing();
        obs::setMetricsEnabled(false);
        EXPECT_EQ(payload, untraced)
            << "propagation perturbed the result at workers="
            << workers;
        // The daemon-side spans carry the client's trace id.
        EXPECT_NE(slurp(dir / "events.jsonl").find(ctx.traceIdHex()),
                  std::string::npos)
            << "no daemon span carried the trace id at workers="
            << workers;
    }
    obs::resetMetrics();
}

TEST(ServeServer, SignalStopRefusesSubmitsLikeShutdown)
{
    util::resetStopForTests();
    serve::Server server(manualOptions());
    util::requestStop();
    const std::string refused =
        server.handle(submitLine("ghz_3", "AQT", false));
    EXPECT_EQ(replyField(refused, "error"), "shutting_down");
    util::resetStopForTests();
}

TEST(ServeServer, ManifestPerJobWhenDirConfigured)
{
    const fs::path dir = freshDir("smq_serve_manifests");
    serve::ServerOptions options = manualOptions();
    options.manifestDir = dir.string();
    serve::Server server(options);
    const std::string reply =
        server.handle(submitLine("ghz_3", "AQT", true));
    const std::string id = replyField(reply, "id");
    const std::string manifest =
        slurp(dir / (id + "_manifest.json"));
    ASSERT_FALSE(manifest.empty());
    EXPECT_NE(manifest.find("\"serve.job_id\": \"" + id + "\""),
              std::string::npos);
    EXPECT_NE(manifest.find("serve.cache_key"), std::string::npos);
    EXPECT_TRUE(server.storageError().empty());
}

// --- server: worker threads ------------------------------------------

TEST(ServeServer, WorkersExecuteSubmitsAndDrainOnShutdown)
{
    serve::ServerOptions options;
    options.workers = 2;
    options.queueLimit = 16;
    serve::Server server(options);

    const std::string reply =
        server.handle(submitLine("ghz_3", "AQT", true, 40, 2));
    ASSERT_TRUE(replyOk(reply)) << reply;
    EXPECT_EQ(replyField(reply, "state"), "done");

    std::vector<std::string> ids;
    for (int i = 0; i < 4; ++i) {
        const std::string submitted =
            server.handle(submitLine("ghz_4", "AQT", false, 40, 2));
        ASSERT_TRUE(replyOk(submitted));
        ids.push_back(replyField(submitted, "id"));
    }
    server.requestShutdown();
    server.drain();

    // Every accepted job is terminal after drain.
    for (const std::string &id : ids) {
        const std::string state = replyField(
            server.handle("{\"type\":\"status\",\"id\":\"" + id + "\"}"),
            "state");
        EXPECT_TRUE(state == "done" || state == "cancelled") << state;
    }
}

TEST(ServeServer, CancelRunningJobSalvagesAndNeverCaches)
{
    serve::ServerOptions options;
    options.workers = 1;
    options.queueLimit = 4;
    serve::Server server(options);

    // 10000 repetitions of a tiny circuit: seconds of work, so the
    // cancel lands while the job is running; the jobs-layer stop
    // probe then salvages the completed repetitions.
    const std::string submitted = server.handle(
        submitLine("ghz_2", "AQT", false, 20, 10000));
    ASSERT_TRUE(replyOk(submitted)) << submitted;
    const std::string id = replyField(submitted, "id");

    // Wait until it is actually running before cancelling.
    for (int i = 0; i < 200; ++i) {
        const std::string state = replyField(
            server.handle("{\"type\":\"status\",\"id\":\"" + id + "\"}"),
            "state");
        if (state == "running")
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    EXPECT_TRUE(replyOk(
        server.handle("{\"type\":\"cancel\",\"id\":\"" + id + "\"}")));

    std::string state;
    for (int i = 0; i < 2000; ++i) {
        state = replyField(
            server.handle("{\"type\":\"status\",\"id\":\"" + id + "\"}"),
            "state");
        if (state == "done" || state == "cancelled")
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }

    if (state == "done") {
        const std::string result = server.handle(
            "{\"type\":\"result\",\"id\":\"" + id + "\"}");
        EXPECT_NE(result.find("\"cause\":\"interrupted\""),
                  std::string::npos)
            << result;
        // Interrupted results are timing-dependent and must never be
        // served from the cache: an identical submit starts fresh.
        const std::string again = server.handle(
            submitLine("ghz_2", "AQT", false, 20, 10000));
        ASSERT_TRUE(replyOk(again));
        EXPECT_NE(again.find("\"cached\":false"), std::string::npos);
        const std::string id2 = replyField(again, "id");
        server.handle("{\"type\":\"cancel\",\"id\":\"" + id2 + "\"}");
    }
    server.requestShutdown();
    server.drain();
}

// --- pipe-mode CLI ---------------------------------------------------

TEST(ServeCli, PipeModeEndToEnd)
{
    std::istringstream in(
        "{\"type\":\"stats\"}\n" +
        submitLine("ghz_3", "AQT", true, 40, 2) + "\n" +
        submitLine("ghz_3", "AQT", true, 40, 2) + "\n" +
        "not json\n"
        "{\"type\":\"shutdown\"}\n");
    std::ostringstream out, err;
    const int exit_code = serve::serveMain(
        {"--pipe", "--workers", "1", "--no-metrics"}, in, out, err);
    EXPECT_EQ(exit_code, serve::kServeOk) << err.str();

    std::istringstream lines(out.str());
    std::string line;
    std::vector<std::string> replies;
    while (std::getline(lines, line))
        replies.push_back(line);
    ASSERT_EQ(replies.size(), 5u) << out.str();
    EXPECT_TRUE(replyOk(replies[0]));
    EXPECT_TRUE(replyOk(replies[1]));
    EXPECT_TRUE(replyOk(replies[2]));
    EXPECT_EQ(resultObjectText(replies[2]), resultObjectText(replies[1]));
    EXPECT_NE(replies[2].find("\"cached\":true"), std::string::npos);
    EXPECT_FALSE(replyOk(replies[3]));
    EXPECT_TRUE(replyOk(replies[4]));
}

TEST(ServeCli, PipeModePropagatesClientTraceContexts)
{
    const obs::TraceContext ctx =
        obs::TraceContext::derive(5, "pipe", "client");
    std::istringstream in(
        tracedSubmitLine("ghz_3", "AQT", true, ctx, 40, 2) + "\n" +
        "{\"type\":\"shutdown\"}\n");
    std::ostringstream out, err;
    const int exit_code = serve::serveMain(
        {"--pipe", "--workers", "1", "--no-metrics"}, in, out, err);
    EXPECT_EQ(exit_code, serve::kServeOk) << err.str();

    std::istringstream lines(out.str());
    std::string reply;
    ASSERT_TRUE(std::getline(lines, reply)) << out.str();
    ASSERT_TRUE(replyOk(reply)) << reply;
    // The trace id sent over the pipe comes back on the reply line.
    EXPECT_EQ(replyField(reply, "trace_id"), ctx.traceIdHex());
}

TEST(ServeCli, MetricsFileCarriesAPrometheusSnapshot)
{
    obs::resetMetrics();
    const fs::path dir = freshDir("smq_serve_metrics_file");
    const std::string path = (dir / "metrics.prom").string();
    std::istringstream in(submitLine("ghz_3", "AQT", true, 40, 2) +
                          "\n{\"type\":\"stats\"}\n"
                          "{\"type\":\"shutdown\"}\n");
    std::ostringstream out, err;
    const int exit_code = serve::serveMain(
        {"--pipe", "--workers", "1", "--metrics-file", path}, in, out,
        err);
    EXPECT_EQ(exit_code, serve::kServeOk) << err.str();

    const std::string text = slurp(path);
    ASSERT_FALSE(text.empty()) << "metrics file not written";
    const auto has = [&text](const std::string &needle) {
        return text.find(needle) != std::string::npos;
    };
    EXPECT_TRUE(has("# TYPE smq_serve_requests counter")) << text;
    EXPECT_TRUE(has("smq_serve_jobs_completed 1"));
    // Stage histograms render as summaries with the shared quantiles.
    EXPECT_TRUE(has("# TYPE smq_stage_serve_job_ns summary"));
    EXPECT_TRUE(has("smq_stage_serve_job_ns{quantile=\"0.99\"}"));
    EXPECT_TRUE(has("smq_stage_serve_job_ns_count 1"));
    obs::setMetricsEnabled(false);
    obs::resetMetrics();
}

TEST(ServeCli, UsageErrors)
{
    std::istringstream in;
    std::ostringstream out, err;
    EXPECT_EQ(serve::serveMain({}, in, out, err), serve::kServeUsage);
    EXPECT_EQ(serve::serveMain({"--pipe", "--socket", "/tmp/x"}, in, out,
                               err),
              serve::kServeUsage);
    EXPECT_EQ(serve::serveMain({"--pipe", "--workers", "two"}, in, out,
                               err),
              serve::kServeUsage);
    EXPECT_EQ(serve::serveMain({"--bogus"}, in, out, err),
              serve::kServeUsage);
    EXPECT_EQ(serve::submitMain({}, out, err), serve::kSubmitUsage);
    EXPECT_EQ(serve::submitMain({"--socket", "/tmp/x", "--benchmark",
                                 "ghz_3", "--device", "AQT", "--shots",
                                 "zero"},
                                out, err),
              serve::kSubmitUsage);
}

// --- doc closure -----------------------------------------------------

TEST(ServeDocs, ProtocolDocCoversTheWholeWireVocabulary)
{
    const std::string doc = slurp(fs::path(SMQ_SOURCE_DIR) / "docs" /
                                  "PROTOCOL.md");
    ASSERT_FALSE(doc.empty()) << "docs/PROTOCOL.md missing";

    auto documented = [&doc](const std::string &token) {
        return doc.find("`" + token + "`") != std::string::npos;
    };

    EXPECT_TRUE(documented(serve::kProtocolVersion));
    EXPECT_TRUE(documented(serve::kResultSchema));
    for (serve::RequestType type : serve::kAllRequestTypes)
        EXPECT_TRUE(documented(serve::toString(type)))
            << "request type '" << serve::toString(type)
            << "' not documented in PROTOCOL.md";
    for (serve::ErrorCode code : serve::kAllErrorCodes)
        EXPECT_TRUE(documented(serve::toString(code)))
            << "error code '" << serve::toString(code)
            << "' not documented in PROTOCOL.md";
    for (serve::JobState state : serve::kAllJobStates)
        EXPECT_TRUE(documented(serve::toString(state)))
            << "job state '" << serve::toString(state)
            << "' not documented in PROTOCOL.md";

    // The result payload carries the run-status taxonomy; the doc
    // must map every enumerator of both status enums.
    for (core::RunStatus status :
         {core::RunStatus::Ok, core::RunStatus::Partial,
          core::RunStatus::Skipped, core::RunStatus::TooLarge,
          core::RunStatus::Failed})
        EXPECT_TRUE(documented(core::toString(status)))
            << "run status '" << core::toString(status)
            << "' not documented in PROTOCOL.md";
    for (core::FailureCause cause :
         {core::FailureCause::None, core::FailureCause::TransientFault,
          core::FailureCause::QueueTimeout,
          core::FailureCause::DeadlineExceeded,
          core::FailureCause::AttemptsExhausted,
          core::FailureCause::ShotTruncation,
          core::FailureCause::MissingMidCircuitMeasurement,
          core::FailureCause::RegisterTooWide,
          core::FailureCause::SimulatorLimit,
          core::FailureCause::Internal, core::FailureCause::Interrupted,
          core::FailureCause::ResourceExhausted,
          core::FailureCause::StorageError})
        EXPECT_TRUE(documented(core::toString(cause)))
            << "failure cause '" << core::toString(cause)
            << "' not documented in PROTOCOL.md";

    // Result payload fields, so clients can code against the table.
    for (const char *field :
         {"schema", "benchmark", "device", "cache_key", "shots",
          "repetitions", "seed", "status", "cause", "scores", "mean",
          "stddev", "error_bar_scale", "planned_repetitions",
          "attempts", "physical_two_qubit_gates", "swaps_inserted",
          "plan", "detail"})
        EXPECT_TRUE(documented(field))
            << "result field '" << field
            << "' not documented in PROTOCOL.md";

    // The observability extensions: the optional submit trace context,
    // the trace_id reply field, and the stats-reply additions.
    for (const char *field :
         {"trace", "trace_id", "uptime_seconds", "queue_high_water",
          "hit_ratio", "job_ns"})
        EXPECT_TRUE(documented(field))
            << "wire field '" << field
            << "' not documented in PROTOCOL.md";
}

// --- end-to-end over the socket --------------------------------------

#if defined(SMQ_SERVE_TOOL) && defined(SMQ_SENTINEL_TOOL)

int
runCommand(const std::string &command)
{
    const int status = std::system(command.c_str());
    if (status == -1)
        return -1;
    if (WIFSIGNALED(status))
        return 128 + WTERMSIG(status);
    return WEXITSTATUS(status);
}

/** Spawn the daemon, wait until its socket answers stats. */
pid_t
spawnDaemon(const std::string &socket_path)
{
    const pid_t pid = ::fork();
    if (pid == 0) {
        ::execl(SMQ_SERVE_TOOL, SMQ_SERVE_TOOL, "--socket",
                socket_path.c_str(), "--workers", "2", "--no-metrics",
                static_cast<char *>(nullptr));
        _exit(127);
    }
    for (int i = 0; i < 400; ++i) {
        std::string reply;
        if (serve::requestOverSocket(socket_path, "{\"type\":\"stats\"}",
                                     &reply, nullptr))
            return pid;
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return pid; // tests will fail on the unreachable socket
}

TEST(ServeSmoke, SocketDaemonSentinelSubmitAndSigtermDrain)
{
    const fs::path dir = freshDir("smq_serve_smoke");
    const std::string socket_path = (dir / "smq.sock").string();
    const pid_t daemon = spawnDaemon(socket_path);
    ASSERT_GT(daemon, 0);

    // Two identical submits through the real client binary: the
    // second must be served from the cache, byte-identical.
    const std::string submit_cmd =
        std::string("\"") + SMQ_SENTINEL_TOOL +
        "\" submit --socket \"" + socket_path +
        "\" --benchmark ghz_3 --device AQT --shots 40 "
        "--repetitions 2 > ";
    const fs::path first = dir / "first.json";
    const fs::path second = dir / "second.json";
    EXPECT_EQ(runCommand(submit_cmd + "\"" + first.string() + "\""), 0);
    EXPECT_EQ(runCommand(submit_cmd + "\"" + second.string() + "\""), 0);

    const std::string reply1 = slurp(first);
    const std::string reply2 = slurp(second);
    EXPECT_TRUE(replyOk(reply1)) << reply1;
    EXPECT_NE(reply2.find("\"cached\":true"), std::string::npos)
        << reply2;
    EXPECT_EQ(resultObjectText(reply1), resultObjectText(reply2));
    EXPECT_FALSE(resultObjectText(reply1).empty());

    // A bad submit exits 1 and prints the typed error.
    EXPECT_EQ(runCommand(std::string("\"") + SMQ_SENTINEL_TOOL +
                         "\" submit --socket \"" + socket_path +
                         "\" --benchmark warp_9 --device AQT "
                         ">/dev/null 2>&1"),
              1);

    // A second daemon on the same socket refuses with exit 75.
    EXPECT_EQ(runCommand(std::string("\"") + SMQ_SERVE_TOOL +
                         "\" --socket \"" + socket_path +
                         "\" >/dev/null 2>&1"),
              75);

    // Fill the queue, then SIGTERM: the daemon must drain in-flight
    // work and exit 0 (the grid driver's salvage discipline).
    for (int i = 0; i < 6; ++i) {
        std::string reply;
        serve::requestOverSocket(
            socket_path,
            submitLine("ghz_4", "AQT", false, 2000, 500), &reply,
            nullptr);
    }
    ASSERT_EQ(::kill(daemon, SIGTERM), 0);
    int status = 0;
    ASSERT_EQ(::waitpid(daemon, &status, 0), daemon);
    EXPECT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), 0);
    EXPECT_FALSE(fs::exists(socket_path)); // socket file cleaned up
}

/** One traced client+daemon round trip; returns the stitched events. */
struct StitchRun
{
    std::string traceId; ///< trace_id echoed on the submit reply
    /** (pid, name, args trace.id) per merged event, in file order. */
    std::vector<std::tuple<int, std::string, std::string>> events;
};

StitchRun
runTracedSubmitOnce(const fs::path &dir)
{
    StitchRun run;
    const std::string socket_path = (dir / "smq.sock").string();
    const fs::path client_trace = dir / "client_trace";
    const fs::path daemon_trace = dir / "daemon_trace";

    const pid_t daemon = ::fork();
    if (daemon == 0) {
        ::execl(SMQ_SERVE_TOOL, SMQ_SERVE_TOOL, "--socket",
                socket_path.c_str(), "--workers", "1", "--no-metrics",
                "--trace", daemon_trace.string().c_str(),
                static_cast<char *>(nullptr));
        _exit(127);
    }
    EXPECT_GT(daemon, 0);
    for (int i = 0; i < 400; ++i) {
        std::string reply;
        if (serve::requestOverSocket(socket_path, "{\"type\":\"stats\"}",
                                     &reply, nullptr))
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }

    const fs::path reply_path = dir / "reply.json";
    EXPECT_EQ(runCommand(std::string("\"") + SMQ_SENTINEL_TOOL +
                         "\" submit --socket \"" + socket_path +
                         "\" --benchmark ghz_3 --device AQT --shots 40 "
                         "--repetitions 2 --trace \"" +
                         client_trace.string() + "\" > \"" +
                         reply_path.string() + "\""),
              0);
    const std::string reply = slurp(reply_path);
    EXPECT_TRUE(replyOk(reply)) << reply;
    run.traceId = replyField(reply, "trace_id");
    EXPECT_EQ(run.traceId.size(), 32u) << reply;

    // Graceful shutdown flushes the daemon's trace directory.
    std::string shutdown_reply;
    EXPECT_TRUE(serve::requestOverSocket(socket_path,
                                         "{\"type\":\"shutdown\"}",
                                         &shutdown_reply, nullptr));
    int status = 0;
    EXPECT_EQ(::waitpid(daemon, &status, 0), daemon);
    EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);

    // Stitch both processes' traces with the real report command.
    const fs::path merged = dir / "merged_trace.json";
    EXPECT_EQ(runCommand(std::string("\"") + SMQ_SENTINEL_TOOL +
                         "\" report --history \"" +
                         (dir / "runs.jsonl").string() + "\" --trace \"" +
                         client_trace.string() + "\" --trace \"" +
                         daemon_trace.string() + "\" --out \"" +
                         (dir / "report.html").string() +
                         "\" --merged-trace \"" + merged.string() +
                         "\" > /dev/null"),
              0);

    obs::JsonValue root = obs::parseJson(slurp(merged));
    const obs::JsonValue *events = root.find("traceEvents");
    EXPECT_NE(events, nullptr);
    if (events != nullptr) {
        for (const obs::JsonValue &e : events->array) {
            std::string trace_id;
            if (const obs::JsonValue *args = e.find("args")) {
                if (const obs::JsonValue *id = args->find("trace.id"))
                    trace_id = id->asString();
            }
            run.events.emplace_back(
                static_cast<int>(e.at("pid").asU64()),
                e.at("name").asString(), trace_id);
        }
    }
    return run;
}

TEST(ServeSmoke, MergedWaterfallStitchesProcessesAndIsDeterministic)
{
    // The same submit against two independent daemon processes: both
    // runs must land on the same derived trace id, and the merged
    // Chrome trace must stitch client + daemon spans under it with an
    // identical event structure (clock epochs are normalized away).
    const StitchRun first =
        runTracedSubmitOnce(freshDir("smq_serve_stitch_a"));
    const StitchRun second =
        runTracedSubmitOnce(freshDir("smq_serve_stitch_b"));

    EXPECT_EQ(first.traceId, second.traceId)
        << "the derived trace id must be a pure function of the submit";
    ASSERT_FALSE(first.events.empty());

    // One trace, two processes: every span is tagged with the reply's
    // trace id, and both pid 1 (client) and pid 2 (daemon) show up.
    std::set<int> pids;
    std::set<std::string> names;
    for (const auto &[pid, name, trace_id] : first.events) {
        EXPECT_EQ(trace_id, first.traceId) << name;
        pids.insert(pid);
        names.insert(name);
    }
    EXPECT_EQ(pids, (std::set<int>{1, 2}));
    EXPECT_TRUE(names.count(obs::names::kSpanSubmit));
    EXPECT_TRUE(names.count(obs::names::kSpanServeQueueWait));
    EXPECT_TRUE(names.count(obs::names::kSpanServeJob));

    // Determinism: the stitched (pid, name, trace id) sequence — the
    // waterfall's structure — is identical across the two daemons.
    EXPECT_EQ(first.events, second.events);
}

TEST(ServeSmoke, StaleSocketFileIsReclaimed)
{
    const fs::path dir = freshDir("smq_serve_stale");
    const std::string socket_path = (dir / "stale.sock").string();
    // A plain file at the socket path, as a crashed daemon leaves.
    { std::ofstream(socket_path) << ""; }

    const pid_t daemon = spawnDaemon(socket_path);
    ASSERT_GT(daemon, 0);
    std::string reply;
    EXPECT_TRUE(serve::requestOverSocket(
        socket_path, "{\"type\":\"stats\"}", &reply, nullptr));
    EXPECT_TRUE(replyOk(reply));

    std::string shutdown_reply;
    EXPECT_TRUE(serve::requestOverSocket(socket_path,
                                         "{\"type\":\"shutdown\"}",
                                         &shutdown_reply, nullptr));
    EXPECT_TRUE(replyOk(shutdown_reply));
    int status = 0;
    ASSERT_EQ(::waitpid(daemon, &status, 0), daemon);
    EXPECT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), 0);
}

#endif // SMQ_SERVE_TOOL && SMQ_SENTINEL_TOOL

} // namespace
} // namespace smq
