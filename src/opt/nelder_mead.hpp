/**
 * @file
 * Derivative-free optimisation for the variational benchmarks.
 *
 * The QAOA and VQE proxy-applications (paper Sec. IV-D/E) require
 * classically optimised circuit parameters: "we found optimal
 * parameters via classical simulation and then executed these ...
 * circuits on the real QC systems". NelderMead plays the role SciPy
 * plays in the reference artifact.
 */

#ifndef SMQ_OPT_NELDER_MEAD_HPP
#define SMQ_OPT_NELDER_MEAD_HPP

#include <functional>
#include <vector>

namespace smq::opt {

/** Objective: R^n -> R, minimised. */
using Objective = std::function<double(const std::vector<double> &)>;

/** Configuration for the Nelder-Mead simplex search. */
struct NelderMeadOptions
{
    std::size_t maxIterations = 400;
    double initialStep = 0.4;  ///< simplex edge length around the seed
    double fTolerance = 1e-9;  ///< spread-of-values stopping criterion
    double xTolerance = 1e-9;  ///< simplex-diameter stopping criterion
};

/** Result of an optimisation run. */
struct OptResult
{
    std::vector<double> x; ///< best parameters found
    double value = 0.0;    ///< objective at x
    std::size_t iterations = 0;
    bool converged = false;
};

/** Minimise @p f starting from @p seed. */
OptResult nelderMead(const Objective &f, std::vector<double> seed,
                     const NelderMeadOptions &options = {});

/**
 * Exhaustive grid search over a box, returning the best point; used
 * to seed Nelder-Mead for the periodic QAOA landscape.
 *
 * @param lo,hi per-dimension bounds; @param points_per_dim grid size.
 */
OptResult gridSearch(const Objective &f, const std::vector<double> &lo,
                     const std::vector<double> &hi,
                     std::size_t points_per_dim);

} // namespace smq::opt

#endif // SMQ_OPT_NELDER_MEAD_HPP
