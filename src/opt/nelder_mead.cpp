#include <limits>
#include "opt/nelder_mead.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace smq::opt {

OptResult
nelderMead(const Objective &f, std::vector<double> seed,
           const NelderMeadOptions &options)
{
    const std::size_t n = seed.size();
    if (n == 0)
        throw std::invalid_argument("nelderMead: empty seed");

    // standard coefficients
    const double alpha = 1.0; // reflection
    const double gamma = 2.0; // expansion
    const double rho = 0.5;   // contraction
    const double sigma = 0.5; // shrink

    struct Vertex
    {
        std::vector<double> x;
        double value;
    };
    std::vector<Vertex> simplex;
    simplex.reserve(n + 1);
    simplex.push_back({seed, f(seed)});
    for (std::size_t d = 0; d < n; ++d) {
        std::vector<double> x = seed;
        x[d] += options.initialStep;
        simplex.push_back({x, f(x)});
    }

    OptResult result;
    for (std::size_t iter = 0; iter < options.maxIterations; ++iter) {
        std::sort(simplex.begin(), simplex.end(),
                  [](const Vertex &a, const Vertex &b) {
                      return a.value < b.value;
                  });
        result.iterations = iter;

        // convergence tests
        double f_spread = simplex.back().value - simplex.front().value;
        double x_spread = 0.0;
        for (std::size_t d = 0; d < n; ++d) {
            for (const Vertex &v : simplex) {
                x_spread = std::max(
                    x_spread, std::abs(v.x[d] - simplex.front().x[d]));
            }
        }
        if (std::abs(f_spread) < options.fTolerance &&
            x_spread < options.xTolerance) {
            result.converged = true;
            break;
        }

        // centroid of all but worst
        std::vector<double> centroid(n, 0.0);
        for (std::size_t v = 0; v < n; ++v) {
            for (std::size_t d = 0; d < n; ++d)
                centroid[d] += simplex[v].x[d];
        }
        for (double &c : centroid)
            c /= static_cast<double>(n);

        auto blend = [&](double coeff) {
            std::vector<double> x(n);
            for (std::size_t d = 0; d < n; ++d) {
                x[d] = centroid[d] +
                       coeff * (simplex.back().x[d] - centroid[d]);
            }
            return x;
        };

        std::vector<double> reflected = blend(-alpha);
        double f_reflected = f(reflected);
        if (f_reflected < simplex.front().value) {
            std::vector<double> expanded = blend(-gamma);
            double f_expanded = f(expanded);
            if (f_expanded < f_reflected)
                simplex.back() = {expanded, f_expanded};
            else
                simplex.back() = {reflected, f_reflected};
            continue;
        }
        if (f_reflected < simplex[n - 1].value) {
            simplex.back() = {reflected, f_reflected};
            continue;
        }
        std::vector<double> contracted = blend(rho);
        double f_contracted = f(contracted);
        if (f_contracted < simplex.back().value) {
            simplex.back() = {contracted, f_contracted};
            continue;
        }
        // shrink toward the best vertex
        for (std::size_t v = 1; v <= n; ++v) {
            for (std::size_t d = 0; d < n; ++d) {
                simplex[v].x[d] = simplex[0].x[d] +
                                  sigma * (simplex[v].x[d] -
                                           simplex[0].x[d]);
            }
            simplex[v].value = f(simplex[v].x);
        }
    }

    std::sort(simplex.begin(), simplex.end(),
              [](const Vertex &a, const Vertex &b) {
                  return a.value < b.value;
              });
    result.x = simplex.front().x;
    result.value = simplex.front().value;
    return result;
}

OptResult
gridSearch(const Objective &f, const std::vector<double> &lo,
           const std::vector<double> &hi, std::size_t points_per_dim)
{
    if (lo.size() != hi.size() || lo.empty())
        throw std::invalid_argument("gridSearch: bad bounds");
    if (points_per_dim < 2)
        throw std::invalid_argument("gridSearch: need >= 2 points per dim");

    const std::size_t n = lo.size();
    std::size_t total = 1;
    for (std::size_t d = 0; d < n; ++d)
        total *= points_per_dim;

    OptResult result;
    result.value = std::numeric_limits<double>::infinity();
    std::vector<double> x(n);
    for (std::size_t idx = 0; idx < total; ++idx) {
        std::size_t rest = idx;
        for (std::size_t d = 0; d < n; ++d) {
            std::size_t k = rest % points_per_dim;
            rest /= points_per_dim;
            x[d] = lo[d] + (hi[d] - lo[d]) * static_cast<double>(k) /
                               static_cast<double>(points_per_dim - 1);
        }
        double value = f(x);
        ++result.iterations;
        if (value < result.value) {
            result.value = value;
            result.x = x;
        }
    }
    result.converged = true;
    return result;
}

} // namespace smq::opt
