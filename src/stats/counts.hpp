/**
 * @file
 * Measurement-outcome histograms ("counts") and probability
 * distributions over bitstrings.
 *
 * A Counts object is the universal currency between the simulator /
 * hardware model and the benchmark score functions: every benchmark
 * run produces a Counts, and every score function consumes one.
 *
 * Bitstring convention: character i of the key is the outcome of
 * classical bit i (little-endian in bit index, leftmost character is
 * bit 0). This matches the order in which measurement operations write
 * their classical bits.
 */

#ifndef SMQ_STATS_COUNTS_HPP
#define SMQ_STATS_COUNTS_HPP

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "stats/rng.hpp"

namespace smq::stats {

/** A histogram of observed bitstrings. */
class Counts
{
  public:
    using Map = std::map<std::string, std::uint64_t>;

    Counts() = default;

    /** Construct from an existing key->count map. */
    explicit Counts(Map counts);

    /** Record one observation of @p bits. */
    void add(const std::string &bits, std::uint64_t n = 1);

    /** Total number of shots recorded. */
    std::uint64_t shots() const { return shots_; }

    /** Number of distinct bitstrings observed. */
    std::size_t size() const { return counts_.size(); }

    /** Count for a specific bitstring (0 if never seen). */
    std::uint64_t at(const std::string &bits) const;

    /** Empirical probability of a specific bitstring. */
    double probability(const std::string &bits) const;

    /** Underlying map, ordered by bitstring. */
    const Map &map() const { return counts_; }

    /**
     * Expectation of (-1)^(parity of marked bits) over the histogram.
     * This evaluates a Z-type Pauli observable from Z-basis counts.
     *
     * @param support indices of the bits included in the parity.
     */
    double parityExpectation(const std::vector<std::size_t> &support) const;

    /**
     * Marginalise onto a subset of bit positions, preserving order of
     * @p keep within the new keys.
     */
    Counts marginal(const std::vector<std::size_t> &keep) const;

    /** Merge another histogram into this one. */
    void merge(const Counts &other);

  private:
    Map counts_;
    std::uint64_t shots_ = 0;
};

/**
 * An exact probability distribution over bitstrings. Used for ideal
 * (noiseless / analytic) reference distributions in score functions.
 */
class Distribution
{
  public:
    using Map = std::map<std::string, double>;

    Distribution() = default;

    /** Construct from key->probability; validates non-negativity. */
    explicit Distribution(Map probs);

    /** Probability of @p bits (0 if absent). */
    double probability(const std::string &bits) const;

    /** Add probability mass to a bitstring. */
    void add(const std::string &bits, double p);

    /** Sum of all probability mass. */
    double totalMass() const;

    /** Scale all probabilities so the total mass is 1. */
    void normalize();

    const Map &map() const { return probs_; }

    /** Draw @p shots samples to build a Counts histogram. */
    Counts sample(std::uint64_t shots, Rng &rng) const;

  private:
    Map probs_;
};

/** Convert a histogram into its empirical distribution. */
Distribution toDistribution(const Counts &counts);

} // namespace smq::stats

#endif // SMQ_STATS_COUNTS_HPP
