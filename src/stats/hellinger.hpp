/**
 * @file
 * Hellinger fidelity between probability distributions.
 *
 * The GHZ, bit-code and phase-code benchmarks all score a run as the
 * Hellinger fidelity between the experimentally observed distribution
 * and the ideal one (paper Sec. IV-A, IV-C), following Qiskit's
 * hellinger_fidelity definition:
 *
 *   H(P,Q)^2 = 1 - sum_i sqrt(p_i q_i)           (squared distance)
 *   fidelity = (1 - H^2)^2 = (sum_i sqrt(p_i q_i))^2
 */

#ifndef SMQ_STATS_HELLINGER_HPP
#define SMQ_STATS_HELLINGER_HPP

#include "stats/counts.hpp"

namespace smq::stats {

/** Bhattacharyya coefficient sum_i sqrt(p_i q_i), in [0, 1]. */
double bhattacharyya(const Distribution &p, const Distribution &q);

/** Hellinger distance sqrt(1 - BC), in [0, 1]. */
double hellingerDistance(const Distribution &p, const Distribution &q);

/** Hellinger fidelity (BC squared), in [0, 1]. */
double hellingerFidelity(const Distribution &p, const Distribution &q);

/** Convenience overload scoring a histogram against an ideal. */
double hellingerFidelity(const Counts &experiment, const Distribution &ideal);

} // namespace smq::stats

#endif // SMQ_STATS_HELLINGER_HPP
