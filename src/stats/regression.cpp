#include "stats/regression.hpp"

#include <cmath>
#include <stdexcept>

#include "stats/descriptive.hpp"

namespace smq::stats {

LinearFit
linearRegression(const std::vector<double> &xs, const std::vector<double> &ys)
{
    if (xs.size() != ys.size())
        throw std::invalid_argument("linearRegression: size mismatch");
    LinearFit fit;
    fit.n = xs.size();
    if (xs.empty())
        return fit;

    double mx = mean(xs);
    double my = mean(ys);
    double sxx = 0.0, sxy = 0.0, syy = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        double dx = xs[i] - mx;
        double dy = ys[i] - my;
        sxx += dx * dx;
        sxy += dx * dy;
        syy += dy * dy;
    }
    if (sxx <= 0.0 || xs.size() < 2) {
        fit.intercept = my;
        fit.slope = 0.0;
        fit.r2 = 0.0;
        return fit;
    }
    fit.slope = sxy / sxx;
    fit.intercept = my - fit.slope * mx;
    // R^2 = explained variance / total variance; if y is constant the
    // fit is exact and conventionally R^2 = 0 (nothing to explain).
    fit.r2 = (syy <= 0.0) ? 0.0 : (sxy * sxy) / (sxx * syy);
    return fit;
}

double
pearson(const std::vector<double> &xs, const std::vector<double> &ys)
{
    LinearFit fit = linearRegression(xs, ys);
    if (fit.r2 <= 0.0)
        return 0.0;
    double r = std::sqrt(fit.r2);
    return fit.slope < 0.0 ? -r : r;
}

} // namespace smq::stats
