/**
 * @file
 * Ordinary least squares regression and correlation measures.
 *
 * Fig. 3 of the paper reports, for every (application feature, QPU)
 * pair, the coefficient of determination R^2 of a linear regression of
 * benchmark score against feature value; Fig. 4 shows one such fit.
 */

#ifndef SMQ_STATS_REGRESSION_HPP
#define SMQ_STATS_REGRESSION_HPP

#include <cstddef>
#include <vector>

namespace smq::stats {

/** Result of a simple (one predictor) least-squares fit y = a + b x. */
struct LinearFit
{
    double intercept = 0.0; ///< a
    double slope = 0.0;     ///< b
    double r2 = 0.0;        ///< coefficient of determination
    std::size_t n = 0;      ///< number of points fitted

    /** Predicted value at @p x. */
    double predict(double x) const { return intercept + slope * x; }
};

/**
 * Fit y = a + b x by ordinary least squares.
 *
 * Degenerate inputs (fewer than two points, or zero variance in x)
 * yield a flat fit through the mean with r2 = 0.
 *
 * @pre xs.size() == ys.size()
 */
LinearFit linearRegression(const std::vector<double> &xs,
                           const std::vector<double> &ys);

/** Pearson correlation coefficient; 0 for degenerate inputs. */
double pearson(const std::vector<double> &xs, const std::vector<double> &ys);

} // namespace smq::stats

#endif // SMQ_STATS_REGRESSION_HPP
