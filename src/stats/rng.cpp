#include "stats/rng.hpp"

#include <cassert>
#include <stdexcept>

namespace smq::stats {

double
Rng::uniform()
{
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
}

double
Rng::uniform(double lo, double hi)
{
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

std::size_t
Rng::index(std::size_t n)
{
    assert(n > 0);
    return std::uniform_int_distribution<std::size_t>(0, n - 1)(engine_);
}

bool
Rng::bernoulli(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return std::bernoulli_distribution(p)(engine_);
}

double
Rng::gaussian()
{
    return std::normal_distribution<double>(0.0, 1.0)(engine_);
}

std::size_t
Rng::discrete(const std::vector<double> &weights)
{
    double total = 0.0;
    for (double w : weights) {
        if (w < 0.0)
            throw std::invalid_argument("Rng::discrete: negative weight");
        total += w;
    }
    if (total <= 0.0)
        throw std::invalid_argument("Rng::discrete: all weights zero");
    double r = uniform() * total;
    double acc = 0.0;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        acc += weights[i];
        if (r < acc)
            return i;
    }
    return weights.size() - 1;
}

} // namespace smq::stats
