#include "stats/hellinger.hpp"

#include <algorithm>
#include <cmath>

namespace smq::stats {

double
bhattacharyya(const Distribution &p, const Distribution &q)
{
    double bc = 0.0;
    for (const auto &[bits, pp] : p.map()) {
        double qq = q.probability(bits);
        if (pp > 0.0 && qq > 0.0)
            bc += std::sqrt(pp * qq);
    }
    return std::min(bc, 1.0);
}

double
hellingerDistance(const Distribution &p, const Distribution &q)
{
    return std::sqrt(std::max(0.0, 1.0 - bhattacharyya(p, q)));
}

double
hellingerFidelity(const Distribution &p, const Distribution &q)
{
    double bc = bhattacharyya(p, q);
    return bc * bc;
}

double
hellingerFidelity(const Counts &experiment, const Distribution &ideal)
{
    return hellingerFidelity(toDistribution(experiment), ideal);
}

} // namespace smq::stats
