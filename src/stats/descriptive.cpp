#include "stats/descriptive.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace smq::stats {

double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        throw std::invalid_argument("mean: empty sample");
    double total = 0.0;
    for (double x : xs)
        total += x;
    return total / static_cast<double>(xs.size());
}

double
stddev(const std::vector<double> &xs)
{
    if (xs.size() < 2)
        return 0.0;
    double mu = mean(xs);
    double ss = 0.0;
    for (double x : xs)
        ss += (x - mu) * (x - mu);
    return std::sqrt(ss / static_cast<double>(xs.size() - 1));
}

double
median(std::vector<double> xs)
{
    if (xs.empty())
        throw std::invalid_argument("median: empty sample");
    std::sort(xs.begin(), xs.end());
    std::size_t mid = xs.size() / 2;
    if (xs.size() % 2 == 1)
        return xs[mid];
    return 0.5 * (xs[mid - 1] + xs[mid]);
}

Summary
summarize(const std::vector<double> &xs)
{
    if (xs.empty())
        throw std::invalid_argument("summarize: empty sample");
    Summary s;
    s.n = xs.size();
    s.mean = mean(xs);
    s.stddev = stddev(xs);
    s.min = *std::min_element(xs.begin(), xs.end());
    s.max = *std::max_element(xs.begin(), xs.end());
    return s;
}

void
RunningStats::push(double x)
{
    ++n_;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

double
RunningStats::variance() const
{
    if (n_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(n_ - 1);
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

} // namespace smq::stats
