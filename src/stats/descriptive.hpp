/**
 * @file
 * Descriptive statistics over samples of benchmark scores.
 *
 * Fig. 2 of the paper reports the mean score over repeated benchmark
 * runs with one-standard-deviation error bars; Summary packages
 * exactly those quantities.
 */

#ifndef SMQ_STATS_DESCRIPTIVE_HPP
#define SMQ_STATS_DESCRIPTIVE_HPP

#include <cstddef>
#include <vector>

namespace smq::stats {

/** Mean / spread summary of a sample. */
struct Summary
{
    std::size_t n = 0;  ///< sample size
    double mean = 0.0;  ///< arithmetic mean
    double stddev = 0.0; ///< sample standard deviation (n-1 denominator)
    double min = 0.0;   ///< smallest sample
    double max = 0.0;   ///< largest sample
};

/** Arithmetic mean. @pre xs non-empty. */
double mean(const std::vector<double> &xs);

/**
 * Sample standard deviation (Bessel-corrected). Returns 0 for samples
 * of size < 2.
 */
double stddev(const std::vector<double> &xs);

/** Median (average of middle two for even sizes). @pre xs non-empty. */
double median(std::vector<double> xs);

/** Full summary of a sample. @pre xs non-empty. */
Summary summarize(const std::vector<double> &xs);

/**
 * Streaming mean/variance accumulator (Welford's algorithm), used by
 * the trajectory runner to aggregate scores without storing every
 * repetition.
 */
class RunningStats
{
  public:
    /** Fold one observation into the accumulator. */
    void push(double x);

    std::size_t count() const { return n_; }
    double mean() const { return mean_; }

    /** Sample variance; 0 when fewer than two observations. */
    double variance() const;
    double stddev() const;

  private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
};

} // namespace smq::stats

#endif // SMQ_STATS_DESCRIPTIVE_HPP
