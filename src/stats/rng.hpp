/**
 * @file
 * Deterministic random-number generation used across the suite.
 *
 * Every stochastic component (noise-trajectory sampling, measurement
 * collapse, SK-model instance generation, Monte-Carlo volume
 * estimation) draws from an explicitly seeded Rng so that experiments
 * are exactly reproducible run-to-run.
 */

#ifndef SMQ_STATS_RNG_HPP
#define SMQ_STATS_RNG_HPP

#include <cstdint>
#include <random>
#include <vector>

namespace smq::stats {

/**
 * A seeded pseudo-random generator with the handful of draw shapes the
 * suite needs. Thin wrapper around std::mt19937_64 so the engine can be
 * swapped without touching call sites.
 */
class Rng
{
  public:
    /** Construct with an explicit seed (default fixed seed). */
    explicit Rng(std::uint64_t seed = 0x5351u) : engine_(seed) {}

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n). @pre n > 0. */
    std::size_t index(std::size_t n);

    /** Fair coin; true with probability p. */
    bool bernoulli(double p);

    /** Standard normal draw. */
    double gaussian();

    /**
     * Sample an index from an unnormalised non-negative weight vector.
     * @pre at least one weight is positive.
     */
    std::size_t discrete(const std::vector<double> &weights);

    /** Access the underlying engine (e.g. for std::shuffle). */
    std::mt19937_64 &engine() { return engine_; }

  private:
    std::mt19937_64 engine_;
};

} // namespace smq::stats

#endif // SMQ_STATS_RNG_HPP
