#include "stats/counts.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace smq::stats {

Counts::Counts(Map counts) : counts_(std::move(counts))
{
    for (const auto &[bits, n] : counts_)
        shots_ += n;
}

void
Counts::add(const std::string &bits, std::uint64_t n)
{
    counts_[bits] += n;
    shots_ += n;
}

std::uint64_t
Counts::at(const std::string &bits) const
{
    auto it = counts_.find(bits);
    return it == counts_.end() ? 0 : it->second;
}

double
Counts::probability(const std::string &bits) const
{
    if (shots_ == 0)
        return 0.0;
    return static_cast<double>(at(bits)) / static_cast<double>(shots_);
}

double
Counts::parityExpectation(const std::vector<std::size_t> &support) const
{
    if (shots_ == 0)
        return 0.0;
    double acc = 0.0;
    for (const auto &[bits, n] : counts_) {
        int parity = 0;
        for (std::size_t idx : support) {
            if (idx >= bits.size())
                throw std::out_of_range(
                    "Counts::parityExpectation: bit index out of range");
            parity ^= (bits[idx] == '1');
        }
        acc += (parity ? -1.0 : 1.0) * static_cast<double>(n);
    }
    return acc / static_cast<double>(shots_);
}

Counts
Counts::marginal(const std::vector<std::size_t> &keep) const
{
    Counts out;
    for (const auto &[bits, n] : counts_) {
        std::string key;
        key.reserve(keep.size());
        for (std::size_t idx : keep) {
            if (idx >= bits.size())
                throw std::out_of_range(
                    "Counts::marginal: bit index out of range");
            key.push_back(bits[idx]);
        }
        out.add(key, n);
    }
    return out;
}

void
Counts::merge(const Counts &other)
{
    for (const auto &[bits, n] : other.counts_)
        add(bits, n);
}

Distribution::Distribution(Map probs) : probs_(std::move(probs))
{
    for (const auto &[bits, p] : probs_) {
        if (p < 0.0)
            throw std::invalid_argument(
                "Distribution: negative probability for key " + bits);
    }
}

double
Distribution::probability(const std::string &bits) const
{
    auto it = probs_.find(bits);
    return it == probs_.end() ? 0.0 : it->second;
}

void
Distribution::add(const std::string &bits, double p)
{
    if (p < 0.0)
        throw std::invalid_argument("Distribution::add: negative mass");
    probs_[bits] += p;
}

double
Distribution::totalMass() const
{
    double total = 0.0;
    for (const auto &[bits, p] : probs_)
        total += p;
    return total;
}

void
Distribution::normalize()
{
    double total = totalMass();
    if (total <= 0.0)
        throw std::logic_error("Distribution::normalize: zero total mass");
    for (auto &[bits, p] : probs_)
        p /= total;
}

Counts
Distribution::sample(std::uint64_t shots, Rng &rng) const
{
    std::vector<const std::string *> keys;
    std::vector<double> weights;
    keys.reserve(probs_.size());
    weights.reserve(probs_.size());
    for (const auto &[bits, p] : probs_) {
        keys.push_back(&bits);
        weights.push_back(p);
    }
    Counts out;
    for (std::uint64_t s = 0; s < shots; ++s)
        out.add(*keys[rng.discrete(weights)]);
    return out;
}

Distribution
toDistribution(const Counts &counts)
{
    Distribution dist;
    if (counts.shots() == 0)
        return dist;
    for (const auto &[bits, n] : counts.map()) {
        dist.add(bits, static_cast<double>(n) /
                           static_cast<double>(counts.shots()));
    }
    return dist;
}

} // namespace smq::stats
