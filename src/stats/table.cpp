#include "stats/table.hpp"

#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace smq::stats {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    if (headers_.empty())
        throw std::invalid_argument("TextTable: no headers");
}

void
TextTable::addRow(std::vector<std::string> row)
{
    if (row.size() != headers_.size())
        throw std::invalid_argument("TextTable::addRow: wrong cell count");
    rows_.push_back(std::move(row));
}

std::string
TextTable::render() const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    std::ostringstream out;
    auto emit_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            out << std::left << std::setw(static_cast<int>(widths[c]))
                << row[c];
            out << (c + 1 == row.size() ? "\n" : "  ");
        }
    };
    emit_row(headers_);
    for (std::size_t c = 0; c < headers_.size(); ++c) {
        out << std::string(widths[c], '-')
            << (c + 1 == headers_.size() ? "\n" : "  ");
    }
    for (const auto &row : rows_)
        emit_row(row);
    return out.str();
}

std::string
formatFixed(double value, int precision)
{
    std::ostringstream out;
    out << std::fixed << std::setprecision(precision) << value;
    return out.str();
}

std::string
formatScientific(double value, int precision)
{
    std::ostringstream out;
    out << std::scientific << std::setprecision(precision) << value;
    return out.str();
}

} // namespace smq::stats
