/**
 * @file
 * Plain-text table formatting for the experiment regenerators.
 *
 * Every bench binary prints the rows/series of one paper table or
 * figure; TextTable keeps that output aligned and consistent.
 */

#ifndef SMQ_STATS_TABLE_HPP
#define SMQ_STATS_TABLE_HPP

#include <cstddef>
#include <string>
#include <vector>

namespace smq::stats {

/** A simple column-aligned text table. */
class TextTable
{
  public:
    /** Construct with column headers. */
    explicit TextTable(std::vector<std::string> headers);

    /** Append a row; must have exactly as many cells as headers. */
    void addRow(std::vector<std::string> row);

    /** Render the table with a header separator line. */
    std::string render() const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with fixed precision. */
std::string formatFixed(double value, int precision);

/** Format a double in scientific notation (paper Table I style). */
std::string formatScientific(double value, int precision);

} // namespace smq::stats

#endif // SMQ_STATS_TABLE_HPP
