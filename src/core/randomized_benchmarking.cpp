#include "core/randomized_benchmarking.hpp"

#include <array>
#include <cmath>
#include <deque>
#include <map>
#include <stdexcept>

#include "opt/nelder_mead.hpp"
#include "sim/gate_matrices.hpp"
#include "sim/runner.hpp"

namespace smq::core {

namespace {

/** Phase-invariant key of a 2x2 unitary for group-closure hashing. */
std::array<long long, 8>
matrixKey(const sim::Matrix2 &m)
{
    // normalise the global phase at the FIRST significant entry (all
    // Clifford entries are 0 or >= 1/(2 sqrt 2) in magnitude, so the
    // reference index is stable under floating-point noise, unlike an
    // argmax over tied magnitudes)
    std::size_t k = 0;
    while (k < 4 && std::abs(m[k]) < 0.1)
        ++k;
    sim::Complex phase = m[k] / std::abs(m[k]);
    std::array<long long, 8> key{};
    for (std::size_t i = 0; i < 4; ++i) {
        sim::Complex v = m[i] / phase;
        key[2 * i] = std::llround(v.real() * 1e6);
        key[2 * i + 1] = std::llround(v.imag() * 1e6);
    }
    return key;
}

sim::Matrix2
matrixOfGates(const std::vector<qc::GateType> &gates)
{
    sim::Matrix2 m = {1.0, 0.0, 0.0, 1.0};
    for (qc::GateType t : gates)
        m = sim::multiply(sim::gateMatrix1(qc::Gate(t, {0})), m);
    return m;
}

std::vector<Clifford1q>
buildGroup()
{
    // BFS closure of {H, S}: shortest decompositions first
    std::vector<Clifford1q> group;
    std::vector<sim::Matrix2> matrices;
    std::map<std::array<long long, 8>, std::size_t> seen;

    std::deque<std::vector<qc::GateType>> frontier;
    frontier.push_back({});
    while (!frontier.empty()) {
        std::vector<qc::GateType> gates = std::move(frontier.front());
        frontier.pop_front();
        sim::Matrix2 m = matrixOfGates(gates);
        auto key = matrixKey(m);
        if (seen.count(key))
            continue;
        seen.emplace(key, group.size());
        group.push_back(Clifford1q{gates, 0});
        matrices.push_back(m);
        for (qc::GateType next : {qc::GateType::H, qc::GateType::S}) {
            std::vector<qc::GateType> extended = gates;
            extended.push_back(next);
            frontier.push_back(std::move(extended));
        }
    }
    if (group.size() != 24)
        throw std::logic_error("clifford1qGroup: closure != 24");

    // inverses by lookup of the conjugate transpose
    for (std::size_t i = 0; i < group.size(); ++i) {
        auto key = matrixKey(sim::dagger(matrices[i]));
        auto it = seen.find(key);
        if (it == seen.end())
            throw std::logic_error("clifford1qGroup: inverse missing");
        group[i].inverseIndex = it->second;
    }
    return group;
}

} // namespace

const std::vector<Clifford1q> &
clifford1qGroup()
{
    static const std::vector<Clifford1q> group = buildGroup();
    return group;
}

qc::Circuit
rbSequence(std::size_t length, stats::Rng &rng)
{
    const auto &group = clifford1qGroup();
    qc::Circuit circuit(1, 1, "rb_" + std::to_string(length));

    // accumulate the product to find the closing inverse exactly
    sim::Matrix2 total = {1.0, 0.0, 0.0, 1.0};
    for (std::size_t s = 0; s < length; ++s) {
        const Clifford1q &c = group[rng.index(group.size())];
        for (qc::GateType t : c.gates)
            circuit.append(qc::Gate(t, {0}));
        total = sim::multiply(matrixOfGates(c.gates), total);
    }
    // find the group element equal to total (up to phase) and append
    // its inverse's decomposition
    const auto target = sim::dagger(total);
    bool found = false;
    for (const Clifford1q &c : group) {
        if (sim::phaseInvariantDistance(matrixOfGates(c.gates), target) <
            1e-6) {
            for (qc::GateType t : c.gates)
                circuit.append(qc::Gate(t, {0}));
            found = true;
            break;
        }
    }
    if (!found)
        throw std::logic_error("rbSequence: closing inverse not found");
    circuit.measure(0, 0);
    return circuit;
}

RbResult
runRb(const sim::NoiseModel &noise,
      const std::vector<std::size_t> &lengths, std::size_t sequences,
      std::uint64_t shots, stats::Rng &rng)
{
    if (lengths.size() < 3)
        throw std::invalid_argument("runRb: need >= 3 sequence lengths");
    RbResult result;
    result.lengths = lengths;
    for (std::size_t m : lengths) {
        double total = 0.0;
        for (std::size_t s = 0; s < sequences; ++s) {
            qc::Circuit circuit = rbSequence(m, rng);
            sim::RunOptions options;
            options.shots = shots;
            options.noise = noise;
            options.shotsPerTrajectory = 1;
            stats::Counts counts = sim::run(circuit, options, rng);
            total += counts.probability("0");
        }
        result.survival.push_back(total / static_cast<double>(sequences));
    }

    // Least-squares fit of A p^m + B with the asymptote pinned at
    // B = 1/2 (the symmetric-SPAM fixed point of 1q RB); fitting B
    // freely is degenerate at the small error rates of Table II.
    const double b = 0.5;
    // fit in log-space for p so tiny error rates stay resolvable
    auto loss = [&](const std::vector<double> &params) {
        double a = params[0];
        double p = 1.0 - std::exp(params[1]); // params[1] = log(1 - p)
        double err = 0.0;
        for (std::size_t i = 0; i < lengths.size(); ++i) {
            double predicted =
                a * std::pow(p, static_cast<double>(lengths[i])) + b;
            double d = predicted - result.survival[i];
            err += d * d;
        }
        return err;
    };
    opt::NelderMeadOptions nm;
    nm.maxIterations = 3000;
    nm.initialStep = 0.5;
    opt::OptResult fit = opt::nelderMead(loss, {0.5, std::log(1e-3)}, nm);
    result.a = fit.x[0];
    result.decay = 1.0 - std::exp(fit.x[1]);
    result.b = b;
    result.errorPerClifford = (1.0 - result.decay) / 2.0;
    return result;
}

// ------------------------------------------------------------- 2q RB

namespace {

using Matrix4 = std::array<sim::Complex, 16>;

Matrix4
multiply4(const Matrix4 &a, const Matrix4 &b)
{
    Matrix4 out{};
    for (std::size_t r = 0; r < 4; ++r) {
        for (std::size_t k = 0; k < 4; ++k) {
            sim::Complex v = a[r * 4 + k];
            for (std::size_t c = 0; c < 4; ++c)
                out[r * 4 + c] += v * b[k * 4 + c];
        }
    }
    return out;
}

Matrix4
dagger4(const Matrix4 &m)
{
    Matrix4 out{};
    for (std::size_t r = 0; r < 4; ++r)
        for (std::size_t c = 0; c < 4; ++c)
            out[r * 4 + c] = std::conj(m[c * 4 + r]);
    return out;
}

/** 4x4 matrix of a gate on qubits {0,1} (basis |b0 b1>, b0 = MSB). */
Matrix4
gateMatrix4(const qc::Gate &gate)
{
    if (gate.qubits.size() == 2)
        return sim::gateMatrix2(gate);
    // embed a 1q matrix: operand 0 is the b0 (MSB) slot
    sim::Matrix2 u = sim::gateMatrix1(gate);
    Matrix4 m{};
    bool on_first = gate.qubits[0] == 0;
    for (std::size_t b0 = 0; b0 < 2; ++b0) {
        for (std::size_t b1 = 0; b1 < 2; ++b1) {
            for (std::size_t c0 = 0; c0 < 2; ++c0) {
                for (std::size_t c1 = 0; c1 < 2; ++c1) {
                    sim::Complex value;
                    if (on_first) {
                        value = (b1 == c1) ? u[b0 * 2 + c0]
                                           : sim::Complex{0.0, 0.0};
                    } else {
                        value = (b0 == c0) ? u[b1 * 2 + c1]
                                           : sim::Complex{0.0, 0.0};
                    }
                    m[(b0 * 2 + b1) * 4 + (c0 * 2 + c1)] = value;
                }
            }
        }
    }
    return m;
}

std::array<long long, 32>
matrixKey4(const Matrix4 &m)
{
    // first-significant-entry phase reference (see matrixKey)
    std::size_t k = 0;
    while (k < 16 && std::abs(m[k]) < 0.1)
        ++k;
    sim::Complex phase = m[k] / std::abs(m[k]);
    std::array<long long, 32> key{};
    for (std::size_t i = 0; i < 16; ++i) {
        sim::Complex v = m[i] / phase;
        key[2 * i] = std::llround(v.real() * 1e6);
        key[2 * i + 1] = std::llround(v.imag() * 1e6);
    }
    return key;
}

Matrix4
matrixOfGateWord(const std::vector<qc::Gate> &gates)
{
    Matrix4 m{};
    m[0] = m[5] = m[10] = m[15] = 1.0;
    for (const qc::Gate &g : gates)
        m = multiply4(gateMatrix4(g), m);
    return m;
}

std::vector<Clifford2q>
buildGroup2q()
{
    const std::vector<qc::Gate> generators = {
        qc::Gate(qc::GateType::H, {0}), qc::Gate(qc::GateType::H, {1}),
        qc::Gate(qc::GateType::S, {0}), qc::Gate(qc::GateType::S, {1}),
        qc::Gate(qc::GateType::CX, {0, 1}),
    };
    std::vector<Clifford2q> group;
    std::vector<Matrix4> matrices;
    std::map<std::array<long long, 32>, std::size_t> seen;

    std::deque<std::size_t> frontier; // indices into group
    {
        Clifford2q identity;
        Matrix4 id{};
        id[0] = id[5] = id[10] = id[15] = 1.0;
        seen.emplace(matrixKey4(id), 0);
        group.push_back(identity);
        matrices.push_back(id);
        frontier.push_back(0);
    }
    while (!frontier.empty()) {
        std::size_t idx = frontier.front();
        frontier.pop_front();
        for (const qc::Gate &g : generators) {
            Matrix4 m = multiply4(gateMatrix4(g), matrices[idx]);
            auto key = matrixKey4(m);
            if (seen.count(key))
                continue;
            Clifford2q next;
            next.gates = group[idx].gates;
            next.gates.push_back(g);
            seen.emplace(key, group.size());
            group.push_back(std::move(next));
            matrices.push_back(m);
            frontier.push_back(group.size() - 1);
        }
    }
    if (group.size() != 11520)
        throw std::logic_error("clifford2qGroup: closure != 11520");
    for (std::size_t i = 0; i < group.size(); ++i) {
        auto key = matrixKey4(dagger4(matrices[i]));
        auto it = seen.find(key);
        if (it == seen.end())
            throw std::logic_error("clifford2qGroup: inverse missing");
        group[i].inverseIndex = it->second;
    }
    return group;
}

} // namespace

const std::vector<Clifford2q> &
clifford2qGroup()
{
    static const std::vector<Clifford2q> group = buildGroup2q();
    return group;
}

qc::Circuit
rbSequence2q(std::size_t length, stats::Rng &rng)
{
    const auto &group = clifford2qGroup();
    qc::Circuit circuit(2, 2, "rb2q_" + std::to_string(length));

    Matrix4 total{};
    total[0] = total[5] = total[10] = total[15] = 1.0;
    std::size_t accumulated = 0; // group index of the product so far

    // track the product as a group element so the inverse is a table
    // lookup (composition via matrix key lookup)
    static std::map<std::array<long long, 32>, std::size_t> *index =
        nullptr;
    if (index == nullptr) {
        index = new std::map<std::array<long long, 32>, std::size_t>();
        for (std::size_t i = 0; i < group.size(); ++i) {
            (*index)[matrixKey4(matrixOfGateWord(group[i].gates))] = i;
        }
    }

    for (std::size_t s = 0; s < length; ++s) {
        const Clifford2q &c = group[rng.index(group.size())];
        for (const qc::Gate &g : c.gates)
            circuit.append(g);
        total = multiply4(matrixOfGateWord(c.gates), total);
    }
    auto it = index->find(matrixKey4(total));
    if (it == index->end())
        throw std::logic_error("rbSequence2q: product not in group");
    accumulated = it->second;
    for (const qc::Gate &g : group[group[accumulated].inverseIndex].gates)
        circuit.append(g);
    circuit.measure(0, 0);
    circuit.measure(1, 1);
    return circuit;
}

RbResult
runRb2q(const sim::NoiseModel &noise,
        const std::vector<std::size_t> &lengths, std::size_t sequences,
        std::uint64_t shots, stats::Rng &rng)
{
    if (lengths.size() < 3)
        throw std::invalid_argument("runRb2q: need >= 3 lengths");
    RbResult result;
    result.lengths = lengths;
    for (std::size_t m : lengths) {
        double total = 0.0;
        for (std::size_t s = 0; s < sequences; ++s) {
            qc::Circuit circuit = rbSequence2q(m, rng);
            sim::RunOptions options;
            options.shots = shots;
            options.noise = noise;
            options.shotsPerTrajectory = 1;
            stats::Counts counts = sim::run(circuit, options, rng);
            total += counts.probability("00");
        }
        result.survival.push_back(total / static_cast<double>(sequences));
    }

    // fit A p^m + B with the asymptote pinned at B = 1/4 (dim 4)
    const double b = 0.25;
    auto loss = [&](const std::vector<double> &params) {
        double a = params[0];
        double p = 1.0 - std::exp(params[1]);
        double err = 0.0;
        for (std::size_t i = 0; i < lengths.size(); ++i) {
            double predicted =
                a * std::pow(p, static_cast<double>(lengths[i])) + b;
            double d = predicted - result.survival[i];
            err += d * d;
        }
        return err;
    };
    opt::NelderMeadOptions nm;
    nm.maxIterations = 3000;
    nm.initialStep = 0.5;
    opt::OptResult fit = opt::nelderMead(loss, {0.75, std::log(1e-2)}, nm);
    result.a = fit.x[0];
    result.decay = 1.0 - std::exp(fit.x[1]);
    result.b = b;
    result.errorPerClifford = 3.0 * (1.0 - result.decay) / 4.0;
    return result;
}

} // namespace smq::core
