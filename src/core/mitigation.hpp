/**
 * @file
 * Readout-error mitigation.
 *
 * The paper's Closed Division explicitly forbids "post-processing
 * techniques like error-mitigation" (Sec. V) and defers them to the
 * future Open division. This module implements the standard
 * tensored-readout mitigation so the repository can quantify exactly
 * how much of each benchmark's score loss is measurement error:
 * calibrate a per-qubit confusion matrix from |0>/|1> preparation
 * circuits, then unfold observed histograms through its inverse.
 */

#ifndef SMQ_CORE_MITIGATION_HPP
#define SMQ_CORE_MITIGATION_HPP

#include <vector>

#include "sim/noise.hpp"
#include "stats/counts.hpp"
#include "stats/rng.hpp"

namespace smq::core {

/** Per-qubit readout confusion parameters. */
struct ReadoutCalibration
{
    /** p01[q] = P(read 1 | prepared 0), p10[q] = P(read 0 | prep 1). */
    std::vector<double> p01;
    std::vector<double> p10;

    std::size_t numQubits() const { return p01.size(); }
};

/**
 * Calibrate the confusion matrix of @p num_qubits qubits under a
 * noise model by executing the standard |0...0> and |1...1>
 * preparation circuits.
 */
ReadoutCalibration calibrateReadout(const sim::NoiseModel &noise,
                                    std::size_t num_qubits,
                                    std::uint64_t shots,
                                    stats::Rng &rng);

/**
 * Unfold a histogram through the inverse per-qubit confusion
 * matrices (tensored mitigation). Negative quasi-probabilities from
 * the inversion are clipped and the result renormalised; the output
 * is a distribution scaled back to the input shot count.
 *
 * @pre every key has exactly calibration.numQubits() bits measuring
 *      qubit i into bit i.
 */
stats::Distribution mitigateReadout(const stats::Counts &counts,
                                    const ReadoutCalibration &calibration);

} // namespace smq::core

#endif // SMQ_CORE_MITIGATION_HPP
