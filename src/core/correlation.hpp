/**
 * @file
 * Feature-performance correlation analysis (paper Sec. VI, Figs. 3-4).
 *
 * For every (feature, QPU) pair, regress the benchmark scores observed
 * on that QPU against the feature values of the benchmarks and report
 * R^2 — "the proportion of the variance in that QPU's performance
 * attributable to that feature". The paper contrasts the regression
 * over all benchmarks with one excluding the error-correction
 * benchmarks, exposing the outsized impact of RESET/mid-circuit
 * measurement.
 */

#ifndef SMQ_CORE_CORRELATION_HPP
#define SMQ_CORE_CORRELATION_HPP

#include <string>
#include <vector>

#include "core/features.hpp"
#include "stats/regression.hpp"

namespace smq::core {

/** One benchmark's feature values + its mean score on one device. */
struct ScoredInstance
{
    std::string benchmark;
    bool isErrorCorrection = false; ///< bit/phase code instance
    FeatureVector features;
    ProgramStats stats;
    double score = 0.0;
};

/** The feature axes of the Fig. 3 heatmap (6 features + 3 classic). */
extern const std::vector<std::string> kCorrelationAxes;

/** Feature value of an instance along a named axis. */
double axisValue(const ScoredInstance &instance, std::size_t axis);

/**
 * R^2 per axis for one device's scored instances.
 *
 * @param exclude_error_correction drop bit/phase-code instances
 *        before regressing (Fig. 3b).
 */
std::vector<double>
correlationRow(const std::vector<ScoredInstance> &instances,
               bool exclude_error_correction);

/** The underlying linear fit for one axis (Fig. 4's example). */
stats::LinearFit axisFit(const std::vector<ScoredInstance> &instances,
                         std::size_t axis,
                         bool exclude_error_correction);

} // namespace smq::core

#endif // SMQ_CORE_CORRELATION_HPP
