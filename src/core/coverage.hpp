/**
 * @file
 * Suite coverage: convex-hull volume in the 6-D feature space
 * (paper Sec. IV-G, Table I).
 */

#ifndef SMQ_CORE_COVERAGE_HPP
#define SMQ_CORE_COVERAGE_HPP

#include <string>
#include <vector>

#include "core/features.hpp"
#include "geom/hull.hpp"

namespace smq::core {

/** Coverage of one suite. */
struct CoverageResult
{
    std::string suite;
    double volume = 0.0;
    std::size_t numCircuits = 0;
    std::size_t affineRank = 0; ///< < 6 means volume exactly 0
};

/** Hull volume of a set of feature vectors. */
CoverageResult computeCoverage(const std::string &suite_name,
                               const std::vector<FeatureVector> &features);

/** Feature vectors of a set of circuits. */
std::vector<FeatureVector>
featuresOfCircuits(const std::vector<qc::Circuit> &circuits);

} // namespace smq::core

#endif // SMQ_CORE_COVERAGE_HPP
