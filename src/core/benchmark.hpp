/**
 * @file
 * The benchmark interface: every SupermarQ application is a scalable
 * circuit generator plus a scalable score function (paper Sec. IV).
 *
 * A benchmark exposes one or more OpenQASM-level circuits; the harness
 * executes them (on a device model or real counts) and hands the
 * resulting histograms back to score(), which maps them to [0, 1]
 * (1 = ideal execution). No step requires classical simulation that
 * grows with the benchmark size beyond what the paper itself uses.
 */

#ifndef SMQ_CORE_BENCHMARK_HPP
#define SMQ_CORE_BENCHMARK_HPP

#include <memory>
#include <string>
#include <vector>

#include "qc/circuit.hpp"
#include "stats/counts.hpp"

namespace smq::core {

/** Abstract benchmark: circuits + score function. */
class Benchmark
{
  public:
    virtual ~Benchmark() = default;

    /** Display name, e.g. "ghz_5". */
    virtual std::string name() const = 0;

    /** Number of logical qubits the benchmark needs. */
    virtual std::size_t numQubits() const = 0;

    /**
     * The circuits to execute (most benchmarks need one; VQE needs two
     * to cover both measurement bases of its Hamiltonian).
     */
    virtual std::vector<qc::Circuit> circuits() const = 0;

    /**
     * Map one histogram per circuit (same order as circuits()) to a
     * score in [0, 1]; 1 means indistinguishable from ideal execution.
     */
    virtual double score(const std::vector<stats::Counts> &counts)
        const = 0;
};

using BenchmarkPtr = std::unique_ptr<Benchmark>;

} // namespace smq::core

#endif // SMQ_CORE_BENCHMARK_HPP
