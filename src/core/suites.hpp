/**
 * @file
 * Benchmark suites: the SupermarQ instances evaluated in the paper's
 * figures plus the proxy suites of the Table I coverage comparison.
 *
 * Proxy composition follows DESIGN.md Sec. 5: the published circuit
 * counts and qubit ranges of QASMBench, TriQ, PPL+2020 and CBG2021
 * are regenerated from the circuit library, since only their feature
 * vectors enter the coverage computation.
 */

#ifndef SMQ_CORE_SUITES_HPP
#define SMQ_CORE_SUITES_HPP

#include <optional>
#include <string_view>
#include <vector>

#include "core/benchmark.hpp"
#include "core/features.hpp"

namespace smq::core {

/**
 * One shard of a partitioned (benchmark x device) grid: this process
 * owns shard `index` of `count`. The default 0/1 owns everything.
 */
struct ShardSpec
{
    std::size_t index = 0;
    std::size_t count = 1;

    /** Whether the grid is actually split (count > 1). */
    bool active() const { return count > 1; }

    /** "i/N" — the flag syntax, also used in journals/manifests. */
    std::string text() const
    {
        return std::to_string(index) + "/" + std::to_string(count);
    }
};

/**
 * Parse "i/N" (0 <= i < N, N >= 1). Returns nullopt on anything else
 * — including partial parses like "1/3x" — so a mistyped --shard
 * fails loudly instead of silently running the wrong slice.
 */
std::optional<ShardSpec> parseShardSpec(std::string_view text);

/**
 * Deterministic shard assignment of one grid cell, derived with the
 * same label-hash (util::labelSeed) that seeds the cell's simulation
 * streams. Depends only on the two labels — never on row order, grid
 * shape or execution order — so any shard reproduces in isolation
 * and the union over shards covers every cell exactly once.
 */
std::size_t shardOfCell(std::string_view benchmark,
                        std::string_view device,
                        std::size_t shardCount);

/** Whether @p shard owns the (benchmark, device) cell. */
bool shardOwnsCell(const ShardSpec &shard, std::string_view benchmark,
                   std::string_view device);

/**
 * The Fig. 2 benchmark instances: all eight applications at the sizes
 * evaluated in the paper (small enough for every device class).
 */
std::vector<BenchmarkPtr> figure2Benchmarks();

/**
 * The smallest instance of each of the eight applications: a fast,
 * representative sweep for smoke runs, job-layer demos and tests. It
 * deliberately includes the mid-circuit-measurement benchmarks (bit
 * and phase code) so capability gating has something to gate.
 */
std::vector<BenchmarkPtr> quickSuite();

/**
 * Feature vectors of the SupermarQ suite for the Table I coverage
 * computation: the eight applications swept from 3 to 1000 qubits
 * (52 instances; variational parameters fixed, as features do not
 * depend on them).
 */
std::vector<FeatureVector> supermarqFeaturePoints();

/** QASMBench proxy: 62 library kernels spanning 2..1000 qubits. */
std::vector<FeatureVector> qasmbenchProxyFeaturePoints();

/**
 * The synthetic suite: hypothetical proxy-benchmarks maximising one
 * feature each (the 6 axis unit vectors) plus the trivial program at
 * the origin. Hull volume is exactly 1/6! ~ 1.4e-3, matching Table I.
 */
std::vector<FeatureVector> syntheticFeaturePoints();

/** TriQ proxy: 12 small (<= 8 qubit) NISQ kernels. */
std::vector<FeatureVector> triqProxyFeaturePoints();

/** PPL+2020 proxy: 9 small (3-5 qubit) kernels. */
std::vector<FeatureVector> pplProxyFeaturePoints();

/**
 * CBG2021 proxy: a dense parametric family of shallow structured
 * circuits (subsampled from the published 10476 instances; hull
 * volume depends only on the extreme points).
 */
std::vector<FeatureVector> cbgProxyFeaturePoints(std::size_t count = 400);

} // namespace smq::core

#endif // SMQ_CORE_SUITES_HPP
