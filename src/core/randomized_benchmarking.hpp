/**
 * @file
 * Single-qubit randomized benchmarking (RB).
 *
 * The paper's Sec. II contrasts gate-level characterisation
 * (randomized benchmarking) with application-level benchmarking. This
 * module implements standard 1q RB — random Clifford sequences closed
 * by the group inverse, survival probability fitted to A p^m + B —
 * and serves as a self-consistency check of the repository's device
 * models: the RB-extracted error per Clifford must track the Table II
 * calibration each model was built from (see bench_rb and the RB
 * tests).
 */

#ifndef SMQ_CORE_RANDOMIZED_BENCHMARKING_HPP
#define SMQ_CORE_RANDOMIZED_BENCHMARKING_HPP

#include <vector>

#include "qc/circuit.hpp"
#include "sim/noise.hpp"
#include "stats/rng.hpp"

namespace smq::core {

/** One element of the 24-element single-qubit Clifford group. */
struct Clifford1q
{
    std::vector<qc::GateType> gates; ///< H/S decomposition, in order
    std::size_t inverseIndex = 0;    ///< index of the group inverse
};

/**
 * The single-qubit Clifford group, generated as the closure of {H, S}
 * with shortest-first decompositions and precomputed inverses.
 * The returned table always has exactly 24 elements; index 0 is the
 * identity.
 */
const std::vector<Clifford1q> &clifford1qGroup();

/**
 * Build one RB sequence circuit: @p length random Cliffords followed
 * by the exact group inverse of their product, then a measurement of
 * qubit 0. A noiseless execution returns |0> with certainty.
 */
qc::Circuit rbSequence(std::size_t length, stats::Rng &rng);

/** Aggregate result of an RB experiment. */
struct RbResult
{
    std::vector<std::size_t> lengths;
    std::vector<double> survival;    ///< mean P(0) per length
    double a = 0.0;                  ///< fit amplitude
    double b = 0.0;                  ///< fit offset
    double decay = 1.0;              ///< fitted p
    double errorPerClifford = 0.0;   ///< (1 - p) / 2
};

/**
 * Run 1q RB against a noise model: @p sequences random circuits per
 * length, @p shots each, then a Nelder-Mead fit of A p^m + B.
 */
RbResult runRb(const sim::NoiseModel &noise,
               const std::vector<std::size_t> &lengths,
               std::size_t sequences, std::uint64_t shots,
               stats::Rng &rng);

/** One element of the 11520-element two-qubit Clifford group. */
struct Clifford2q
{
    std::vector<qc::Gate> gates;  ///< {H,S on either qubit, CX} words
    std::size_t inverseIndex = 0; ///< index of the group inverse
};

/**
 * The two-qubit Clifford group, generated as the BFS closure of
 * {H0, H1, S0, S1, CX01} (shortest decompositions first, 11520
 * elements). Built lazily on first use (~a second).
 */
const std::vector<Clifford2q> &clifford2qGroup();

/**
 * Build one 2q RB sequence: @p length random two-qubit Cliffords
 * closed by the exact group inverse, measuring both qubits. A
 * noiseless execution returns "00" with certainty.
 */
qc::Circuit rbSequence2q(std::size_t length, stats::Rng &rng);

/**
 * Run 2q RB against a noise model; result.errorPerClifford uses the
 * two-qubit convention (1 - p) * 3 / 4.
 */
RbResult runRb2q(const sim::NoiseModel &noise,
                 const std::vector<std::size_t> &lengths,
                 std::size_t sequences, std::uint64_t shots,
                 stats::Rng &rng);

} // namespace smq::core

#endif // SMQ_CORE_RANDOMIZED_BENCHMARKING_HPP
