/**
 * @file
 * The SupermarQ feature vectors (paper Sec. III-B, Eqs. 1-6).
 *
 * Six hardware-agnostic features quantify how an application stresses
 * a QPU: program communication, critical-depth, entanglement-ratio,
 * parallelism, liveness, and measurement. Suites are compared by the
 * convex-hull volume of their feature vectors (coverage.hpp).
 */

#ifndef SMQ_CORE_FEATURES_HPP
#define SMQ_CORE_FEATURES_HPP

#include <array>
#include <string>
#include <vector>

#include "qc/circuit.hpp"

namespace smq::core {

/** The six application features, each in [0, 1]. */
struct FeatureVector
{
    double communication = 0.0; ///< Eq. 1: normalised average degree
    double criticalDepth = 0.0; ///< Eq. 2: 2q gates on the critical path
    double entanglement = 0.0;  ///< Eq. 3: 2q share of all operations
    double parallelism = 0.0;   ///< Eq. 4: gate density vs depth
    double liveness = 0.0;      ///< Eq. 5: fraction of active qubit-slots
    double measurement = 0.0;   ///< Eq. 6: mid-circuit measure/reset layers

    /** As a point in feature space (axis order as listed above). */
    std::array<double, 6> asArray() const
    {
        return {communication, criticalDepth, entanglement,
                parallelism,   liveness,      measurement};
    }

    /** Axis labels matching asArray(), e.g. for feature-map output. */
    static const std::array<std::string, 6> &axisNames();
};

/**
 * Auxiliary program statistics used by the Fig. 3 correlation study
 * alongside the six features (depth, qubit count, 2q-gate count were
 * "typical features used in prior work").
 */
struct ProgramStats
{
    std::size_t numQubits = 0;
    std::size_t depth = 0;
    std::size_t gateCount = 0;     ///< non-barrier operations
    std::size_t twoQubitGates = 0; ///< multi-qubit unitary count
    std::size_t measurements = 0;
    std::size_t resets = 0;
};

/** Compute the six features of a circuit. */
FeatureVector computeFeatures(const qc::Circuit &circuit);

/** Compute the auxiliary statistics of a circuit. */
ProgramStats computeStats(const qc::Circuit &circuit);

/// @name Individual feature computations (exposed for testing)
/// @{
double programCommunication(const qc::Circuit &circuit);
double criticalDepth(const qc::Circuit &circuit);
double entanglementRatio(const qc::Circuit &circuit);
double parallelism(const qc::Circuit &circuit);
double liveness(const qc::Circuit &circuit);
double measurementFeature(const qc::Circuit &circuit);
/// @}

} // namespace smq::core

#endif // SMQ_CORE_FEATURES_HPP
