/**
 * @file
 * The benchmark execution harness: generate -> transpile -> execute ->
 * score, standing in for the paper's SuperstaQ-based collection flow
 * (Sec. V). Devices are the calibrated noise models of device.hpp.
 */

#ifndef SMQ_CORE_HARNESS_HPP
#define SMQ_CORE_HARNESS_HPP

#include <optional>
#include <string>
#include <vector>

#include "core/benchmark.hpp"
#include "device/device.hpp"
#include "stats/descriptive.hpp"
#include "transpile/transpiler.hpp"

namespace smq::core {

/** Execution knobs mirroring the paper's methodology. */
struct HarnessOptions
{
    std::uint64_t shots = 2000;  ///< per circuit per repetition
    std::size_t repetitions = 3; ///< independent runs for error bars
    std::uint64_t seed = 12345;
    transpile::TranspileOptions transpile;
    /**
     * Largest compacted register the simulator accepts; benchmarks
     * whose routed circuits exceed it are reported as "too large",
     * like the X markers of Fig. 2.
     */
    std::size_t maxSimQubits = 22;
};

/** Outcome of running one benchmark on one device. */
struct BenchmarkRun
{
    std::string benchmark;
    std::string device;
    bool tooLarge = false;            ///< did not fit (Fig. 2's X)
    std::vector<double> scores;       ///< one per repetition
    stats::Summary summary;           ///< over scores (valid unless X)
    std::size_t physicalTwoQubitGates = 0; ///< post-transpile
    std::size_t swapsInserted = 0;
};

/** Run one benchmark on one device. */
BenchmarkRun runBenchmark(const Benchmark &benchmark,
                          const device::Device &device,
                          const HarnessOptions &options = {});

/**
 * Execute a benchmark's circuits noiselessly (sanity baseline: every
 * SupermarQ benchmark must score ~1 on a perfect machine).
 */
double noiselessScore(const Benchmark &benchmark, std::uint64_t shots,
                      std::uint64_t seed = 7);

} // namespace smq::core

#endif // SMQ_CORE_HARNESS_HPP
