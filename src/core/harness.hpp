/**
 * @file
 * The benchmark execution harness: generate -> transpile -> execute ->
 * score, standing in for the paper's SuperstaQ-based collection flow
 * (Sec. V). Devices are the calibrated noise models of device.hpp.
 *
 * runBenchmark() is the direct synchronous path; the fault-tolerant
 * job layer (jobs/scheduler.hpp) builds on the same prepareCircuits()
 * / runRepetition() primitives and adds retries, deadlines, capability
 * gating and partial-result salvage.
 */

#ifndef SMQ_CORE_HARNESS_HPP
#define SMQ_CORE_HARNESS_HPP

#include <optional>
#include <string>
#include <vector>

#include "core/benchmark.hpp"
#include "core/status.hpp"
#include "device/device.hpp"
#include "obs/manifest.hpp"
#include "sim/runner.hpp"
#include "stats/descriptive.hpp"
#include "transpile/transpiler.hpp"

namespace smq::core {

/** Execution knobs mirroring the paper's methodology. */
struct HarnessOptions
{
    std::uint64_t shots = 2000;  ///< per circuit per repetition
    std::size_t repetitions = 3; ///< independent runs for error bars
    std::uint64_t seed = 12345;
    /**
     * Worker threads for the repetition loop (1 = serial). Each
     * repetition draws from its own seed-derived stream, so any jobs
     * value produces byte-identical scores.
     */
    std::size_t jobs = 1;
    transpile::TranspileOptions transpile;
    /**
     * Largest compacted register the simulator accepts; benchmarks
     * whose routed circuits exceed it are reported as "too large",
     * like the X markers of Fig. 2.
     */
    std::size_t maxSimQubits = 22;
    /**
     * Simulation engine (--backend): Auto lets the planner pick the
     * cheapest faithful backend per circuit; anything else forces it.
     */
    sim::BackendKind backend = sim::BackendKind::Auto;
    /** Planner knobs consulted when backend == Auto. */
    sim::PlannerConfig planner;
};

/** Outcome of running one benchmark on one device. */
struct BenchmarkRun
{
    std::string benchmark;
    std::string device;
    RunStatus status = RunStatus::Ok;
    FailureCause cause = FailureCause::None;
    std::string detail;               ///< human-readable event trail
    bool tooLarge = false;            ///< status == TooLarge (Fig. 2's X)
    std::vector<double> scores;       ///< one per completed repetition
    stats::Summary summary;           ///< over scores (valid if scoreable)
    std::size_t plannedRepetitions = 0;
    std::size_t attempts = 0;         ///< submissions incl. retries
    /**
     * Error-bar widening for salvaged results: sqrt(planned/completed)
     * repetitions (1 for complete runs). Reports display
     * stddev * errorBarScale.
     */
    double errorBarScale = 1.0;
    std::size_t physicalTwoQubitGates = 0; ///< post-transpile
    std::size_t swapsInserted = 0;
    /**
     * Compact plan record: the unique backend-plan tokens of the
     * prepared circuits joined with '+', e.g. "stabilizer:clifford"
     * or "trajectory:width>dm-cutoff". Empty when the cell never
     * reached planning (capability skips, register too wide).
     */
    std::string plan;
};

/**
 * A benchmark's circuits transpiled to a device and compacted for
 * simulation, with the routing cost totals. When the routed register
 * exceeds maxSimQubits, tooLarge is set and circuits/counters are
 * empty (no partially-accumulated totals are ever reported).
 */
struct PreparedCircuits
{
    std::vector<qc::Circuit> circuits;
    /** One backend plan per circuit (same order), from planCircuit. */
    std::vector<sim::Plan> plans;
    bool tooLarge = false;
    std::size_t physicalTwoQubitGates = 0;
    std::size_t swapsInserted = 0;

    /** Unique plan tokens joined with '+' (the BenchmarkRun record). */
    std::string planSummary() const;
};

/** Transpile + compact every circuit of @p benchmark for @p device. */
PreparedCircuits prepareCircuits(const Benchmark &benchmark,
                                 const device::Device &device,
                                 const HarnessOptions &options);

/**
 * Execute one scoring repetition over prepared circuits: run each for
 * @p shots under @p noise and score the histograms.
 * @pre prepared.tooLarge is false.
 */
double runRepetition(const Benchmark &benchmark,
                     const PreparedCircuits &prepared,
                     const sim::NoiseModel &noise, std::uint64_t shots,
                     stats::Rng &rng,
                     const sim::FaultHook &faultHook = {},
                     sim::BackendKind backend = sim::BackendKind::Auto,
                     const sim::PlannerConfig &planner = {});

/** Run one benchmark on one device (no retries; throws on bad input). */
BenchmarkRun runBenchmark(const Benchmark &benchmark,
                          const device::Device &device,
                          const HarnessOptions &options = {});

/**
 * Execute a benchmark's circuits noiselessly (sanity baseline: every
 * SupermarQ benchmark must score ~1 on a perfect machine).
 *
 * @throws std::invalid_argument when shots == 0 or the benchmark
 *   needs more than @p maxSimQubits qubits (a 30-qubit statevector
 *   would exhaust memory long before producing a score).
 */
double noiselessScore(const Benchmark &benchmark, std::uint64_t shots,
                      std::uint64_t seed = 7,
                      std::size_t maxSimQubits = 22);

/**
 * Capture the current metric-registry state into a run manifest whose
 * configuration block reflects @p options, stamped with the built-in
 * device table version. The standard provenance record for programs
 * driven by HarnessOptions (the examples); the regenerators use
 * bench::ObsSession, which does the same from a bench::Scale.
 */
obs::RunManifest makeRunManifest(const std::string &tool,
                                 const HarnessOptions &options);

} // namespace smq::core

#endif // SMQ_CORE_HARNESS_HPP
