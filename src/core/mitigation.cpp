#include "core/mitigation.hpp"

#include <cmath>
#include <stdexcept>

#include "qc/circuit.hpp"
#include "sim/runner.hpp"

namespace smq::core {

ReadoutCalibration
calibrateReadout(const sim::NoiseModel &noise, std::size_t num_qubits,
                 std::uint64_t shots, stats::Rng &rng)
{
    if (num_qubits == 0 || shots == 0)
        throw std::invalid_argument("calibrateReadout: empty request");

    auto run_prep = [&](bool ones) {
        qc::Circuit circuit(num_qubits, num_qubits,
                            ones ? "cal_ones" : "cal_zeros");
        if (ones) {
            for (std::size_t q = 0; q < num_qubits; ++q)
                circuit.x(static_cast<qc::Qubit>(q));
        }
        circuit.measureAll();
        sim::RunOptions options;
        options.shots = shots;
        options.noise = noise;
        return sim::run(circuit, options, rng);
    };

    stats::Counts zeros = run_prep(false);
    stats::Counts ones = run_prep(true);

    ReadoutCalibration cal;
    cal.p01.resize(num_qubits);
    cal.p10.resize(num_qubits);
    for (std::size_t q = 0; q < num_qubits; ++q) {
        // marginal flip rates per qubit
        double flips0 = 0.0, flips1 = 0.0;
        for (const auto &[bits, n] : zeros.map()) {
            if (bits[q] == '1')
                flips0 += static_cast<double>(n);
        }
        for (const auto &[bits, n] : ones.map()) {
            if (bits[q] == '0')
                flips1 += static_cast<double>(n);
        }
        cal.p01[q] = flips0 / static_cast<double>(zeros.shots());
        cal.p10[q] = flips1 / static_cast<double>(ones.shots());
    }
    return cal;
}

stats::Distribution
mitigateReadout(const stats::Counts &counts,
                const ReadoutCalibration &calibration)
{
    if (counts.shots() == 0)
        throw std::invalid_argument("mitigateReadout: empty histogram");
    const std::size_t n = calibration.numQubits();

    // quasi-probabilities per observed key, unfolded bit by bit:
    // M_q = [[1 - p01, p10], [p01, 1 - p10]],
    // M_q^{-1} = (1/det) [[1 - p10, -p10], [-p01, 1 - p01]]
    std::map<std::string, double> quasi;
    for (const auto &[bits, cnt] : counts.map()) {
        if (bits.size() != n)
            throw std::invalid_argument(
                "mitigateReadout: key width != calibration width");
        quasi[bits] = static_cast<double>(cnt) /
                      static_cast<double>(counts.shots());
    }

    for (std::size_t q = 0; q < n; ++q) {
        double p01 = calibration.p01[q];
        double p10 = calibration.p10[q];
        double det = 1.0 - p01 - p10;
        if (std::abs(det) < 1e-6)
            throw std::logic_error(
                "mitigateReadout: confusion matrix is singular");
        std::map<std::string, double> next;
        for (const auto &[bits, p] : quasi) {
            std::string flipped = bits;
            flipped[q] = bits[q] == '0' ? '1' : '0';
            auto it = quasi.find(flipped);
            double other = it == quasi.end() ? 0.0 : it->second;
            double value;
            if (bits[q] == '0')
                value = ((1.0 - p10) * p - p10 * other) / det;
            else
                value = ((1.0 - p01) * p - p01 * other) / det;
            next[bits] = value;
        }
        quasi = std::move(next);
    }

    // clip negative quasi-probabilities and renormalise
    stats::Distribution mitigated;
    double total = 0.0;
    for (const auto &[bits, p] : quasi)
        total += std::max(p, 0.0);
    if (total <= 0.0)
        throw std::logic_error("mitigateReadout: degenerate unfolding");
    for (const auto &[bits, p] : quasi) {
        if (p > 0.0)
            mitigated.add(bits, p / total);
    }
    return mitigated;
}

} // namespace smq::core
