#include "core/features.hpp"

#include <algorithm>

#include "qc/dag.hpp"
#include "qc/interaction_graph.hpp"
#include "qc/schedule.hpp"

namespace smq::core {

const std::array<std::string, 6> &
FeatureVector::axisNames()
{
    static const std::array<std::string, 6> names = {
        "Program Communication", "Critical Depth", "Entanglement-Ratio",
        "Parallelism",           "Liveness",       "Measurement"};
    return names;
}

double
programCommunication(const qc::Circuit &circuit)
{
    return qc::InteractionGraph(circuit).normalizedAverageDegree();
}

double
criticalDepth(const qc::Circuit &circuit)
{
    qc::GateDag dag(circuit);
    std::size_t total = circuit.multiQubitGateCount();
    if (total == 0)
        return 0.0;
    return static_cast<double>(dag.criticalTwoQubitCount()) /
           static_cast<double>(total);
}

double
entanglementRatio(const qc::Circuit &circuit)
{
    std::size_t ops = circuit.opCount();
    if (ops == 0)
        return 0.0;
    return static_cast<double>(circuit.multiQubitGateCount()) /
           static_cast<double>(ops);
}

double
parallelism(const qc::Circuit &circuit)
{
    std::size_t n = circuit.numQubits();
    if (n < 2)
        return 0.0;
    qc::Schedule sched = qc::schedule(circuit);
    if (sched.depth() == 0)
        return 0.0;
    double density = static_cast<double>(circuit.opCount()) /
                     static_cast<double>(sched.depth());
    double value = (density - 1.0) / static_cast<double>(n - 1);
    return std::clamp(value, 0.0, 1.0);
}

double
liveness(const qc::Circuit &circuit)
{
    qc::Schedule sched = qc::schedule(circuit);
    std::size_t n = circuit.numQubits();
    std::size_t d = sched.depth();
    if (n == 0 || d == 0)
        return 0.0;
    auto live = qc::livenessMatrix(circuit, sched);
    std::size_t active = 0;
    for (const auto &row : live) {
        for (std::uint8_t cell : row)
            active += cell;
    }
    return static_cast<double>(active) / static_cast<double>(n * d);
}

double
measurementFeature(const qc::Circuit &circuit)
{
    qc::Schedule sched = qc::schedule(circuit);
    std::size_t d = sched.depth();
    if (d == 0)
        return 0.0;

    // An op is mid-circuit when some later moment touches its qubit.
    const auto &gates = circuit.gates();
    std::vector<std::ptrdiff_t> last_moment(circuit.numQubits(), -1);
    for (std::size_t i = 0; i < gates.size(); ++i) {
        if (gates[i].type == qc::GateType::BARRIER)
            continue;
        for (qc::Qubit q : gates[i].qubits) {
            last_moment[q] =
                std::max(last_moment[q], sched.momentOf[i]);
        }
    }
    std::vector<bool> layer_has_mcm(d, false);
    for (std::size_t i = 0; i < gates.size(); ++i) {
        const qc::Gate &g = gates[i];
        if (g.type != qc::GateType::MEASURE &&
            g.type != qc::GateType::RESET) {
            continue;
        }
        if (sched.momentOf[i] < last_moment[g.qubits[0]])
            layer_has_mcm[static_cast<std::size_t>(sched.momentOf[i])] =
                true;
    }
    std::size_t mcm_layers = static_cast<std::size_t>(std::count(
        layer_has_mcm.begin(), layer_has_mcm.end(), true));
    return static_cast<double>(mcm_layers) / static_cast<double>(d);
}

FeatureVector
computeFeatures(const qc::Circuit &circuit)
{
    FeatureVector f;
    f.communication = programCommunication(circuit);
    f.criticalDepth = criticalDepth(circuit);
    f.entanglement = entanglementRatio(circuit);
    f.parallelism = parallelism(circuit);
    f.liveness = liveness(circuit);
    f.measurement = measurementFeature(circuit);
    return f;
}

ProgramStats
computeStats(const qc::Circuit &circuit)
{
    ProgramStats s;
    s.numQubits = circuit.numQubits();
    s.depth = qc::schedule(circuit).depth();
    s.gateCount = circuit.opCount();
    s.twoQubitGates = circuit.multiQubitGateCount();
    s.measurements = circuit.measureCount();
    s.resets = circuit.resetCount();
    return s;
}

} // namespace smq::core
