#include "core/harness.hpp"

#include <stdexcept>

#include "sim/runner.hpp"

namespace smq::core {

BenchmarkRun
runBenchmark(const Benchmark &benchmark, const device::Device &device,
             const HarnessOptions &options)
{
    BenchmarkRun run;
    run.benchmark = benchmark.name();
    run.device = device.name;

    if (benchmark.numQubits() > device.numQubits()) {
        run.tooLarge = true;
        return run;
    }

    // Transpile each circuit once (the Closed-Division pipeline is
    // deterministic); repetitions then differ by trajectory sampling,
    // which captures shot-to-shot and run-to-run noise variation.
    std::vector<qc::Circuit> compact_circuits;
    for (const qc::Circuit &logical : benchmark.circuits()) {
        transpile::TranspileResult result =
            transpile::transpile(logical, device, options.transpile);
        run.physicalTwoQubitGates += result.twoQubitGateCount;
        run.swapsInserted += result.swapsInserted;
        auto [compact, mapping] =
            transpile::compactCircuit(result.circuit);
        if (compact.numQubits() > options.maxSimQubits) {
            run.tooLarge = true;
            return run;
        }
        compact_circuits.push_back(std::move(compact));
    }

    stats::Rng rng(options.seed);
    for (std::size_t rep = 0; rep < options.repetitions; ++rep) {
        std::vector<stats::Counts> counts;
        counts.reserve(compact_circuits.size());
        for (const qc::Circuit &circuit : compact_circuits) {
            sim::RunOptions ro;
            ro.shots = options.shots;
            ro.noise = device.noise;
            counts.push_back(sim::run(circuit, ro, rng));
        }
        run.scores.push_back(benchmark.score(counts));
    }
    run.summary = stats::summarize(run.scores);
    return run;
}

double
noiselessScore(const Benchmark &benchmark, std::uint64_t shots,
               std::uint64_t seed)
{
    stats::Rng rng(seed);
    std::vector<stats::Counts> counts;
    for (const qc::Circuit &circuit : benchmark.circuits()) {
        sim::RunOptions ro;
        ro.shots = shots;
        counts.push_back(sim::run(circuit, ro, rng));
    }
    return benchmark.score(counts);
}

} // namespace smq::core
