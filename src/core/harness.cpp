#include "core/harness.hpp"

#include <stdexcept>

namespace smq::core {

PreparedCircuits
prepareCircuits(const Benchmark &benchmark, const device::Device &device,
                const HarnessOptions &options)
{
    // Transpile each circuit once (the Closed-Division pipeline is
    // deterministic); repetitions then differ by trajectory sampling,
    // which captures shot-to-shot and run-to-run noise variation.
    PreparedCircuits prepared;
    for (const qc::Circuit &logical : benchmark.circuits()) {
        transpile::TranspileResult result =
            transpile::transpile(logical, device, options.transpile);
        prepared.physicalTwoQubitGates += result.twoQubitGateCount;
        prepared.swapsInserted += result.swapsInserted;
        auto [compact, mapping] =
            transpile::compactCircuit(result.circuit);
        if (compact.numQubits() > options.maxSimQubits) {
            // Bail out consistently: a half-summed gate count over a
            // prefix of the circuit list would be misleading.
            prepared = PreparedCircuits{};
            prepared.tooLarge = true;
            return prepared;
        }
        prepared.circuits.push_back(std::move(compact));
    }
    return prepared;
}

double
runRepetition(const Benchmark &benchmark, const PreparedCircuits &prepared,
              const sim::NoiseModel &noise, std::uint64_t shots,
              stats::Rng &rng, const sim::FaultHook &faultHook)
{
    std::vector<stats::Counts> counts;
    counts.reserve(prepared.circuits.size());
    for (const qc::Circuit &circuit : prepared.circuits) {
        sim::RunOptions ro;
        ro.shots = shots;
        ro.noise = noise;
        ro.faultHook = faultHook;
        counts.push_back(sim::run(circuit, ro, rng));
    }
    return benchmark.score(counts);
}

BenchmarkRun
runBenchmark(const Benchmark &benchmark, const device::Device &device,
             const HarnessOptions &options)
{
    BenchmarkRun run;
    run.benchmark = benchmark.name();
    run.device = device.name;
    run.plannedRepetitions = options.repetitions;

    if (benchmark.numQubits() > device.numQubits()) {
        run.status = RunStatus::TooLarge;
        run.cause = FailureCause::RegisterTooWide;
        run.tooLarge = true;
        return run;
    }

    PreparedCircuits prepared =
        prepareCircuits(benchmark, device, options);
    if (prepared.tooLarge) {
        run.status = RunStatus::TooLarge;
        run.cause = FailureCause::SimulatorLimit;
        run.tooLarge = true;
        return run;
    }
    run.physicalTwoQubitGates = prepared.physicalTwoQubitGates;
    run.swapsInserted = prepared.swapsInserted;

    stats::Rng rng(options.seed);
    for (std::size_t rep = 0; rep < options.repetitions; ++rep) {
        run.scores.push_back(runRepetition(benchmark, prepared,
                                           device.noise, options.shots,
                                           rng));
        ++run.attempts;
    }
    run.summary = stats::summarize(run.scores);
    return run;
}

double
noiselessScore(const Benchmark &benchmark, std::uint64_t shots,
               std::uint64_t seed, std::size_t maxSimQubits)
{
    if (shots == 0)
        throw std::invalid_argument("noiselessScore: shots == 0");
    if (benchmark.numQubits() > maxSimQubits) {
        throw std::invalid_argument(
            "noiselessScore: " + benchmark.name() + " needs " +
            std::to_string(benchmark.numQubits()) +
            " qubits, over the statevector budget of " +
            std::to_string(maxSimQubits));
    }
    stats::Rng rng(seed);
    std::vector<stats::Counts> counts;
    for (const qc::Circuit &circuit : benchmark.circuits()) {
        sim::RunOptions ro;
        ro.shots = shots;
        counts.push_back(sim::run(circuit, ro, rng));
    }
    return benchmark.score(counts);
}

} // namespace smq::core
