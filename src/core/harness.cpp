#include "core/harness.hpp"

#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/names.hpp"
#include "obs/progress.hpp"
#include "obs/trace.hpp"
#include "sim/memory.hpp"
#include "sim/planner.hpp"
#include "transpile/cache.hpp"
#include "util/thread_pool.hpp"

namespace smq::core {

std::string
PreparedCircuits::planSummary() const
{
    std::string summary;
    for (const sim::Plan &plan : plans) {
        const std::string token = plan.token();
        // Deduplicate while preserving first-seen order (most
        // benchmarks plan all their circuits identically).
        if (("+" + summary + "+").find("+" + token + "+") !=
            std::string::npos)
            continue;
        if (!summary.empty())
            summary += "+";
        summary += token;
    }
    return summary;
}

PreparedCircuits
prepareCircuits(const Benchmark &benchmark, const device::Device &device,
                const HarnessOptions &options)
{
    SMQ_TRACE_SPAN(obs::names::kSpanPrepare,
                   obs::jsonField("benchmark", benchmark.name()) + "," +
                       obs::jsonField("device", device.name));
    // Transpile each circuit once (the Closed-Division pipeline is
    // deterministic); repetitions then differ by trajectory sampling,
    // which captures shot-to-shot and run-to-run noise variation.
    // Results are memoized process-wide, so repeated sweeps over the
    // same (benchmark instance, device) stop re-transpiling.
    PreparedCircuits prepared;
    for (const qc::Circuit &logical : benchmark.circuits()) {
        transpile::TranspileResult result =
            transpile::cachedTranspile(logical, device, options.transpile);
        prepared.physicalTwoQubitGates += result.twoQubitGateCount;
        prepared.swapsInserted += result.swapsInserted;
        auto [compact, mapping] =
            transpile::compactCircuit(result.circuit);
        if (compact.numQubits() > options.maxSimQubits) {
            // Bail out consistently: a half-summed gate count over a
            // prefix of the circuit list would be misleading.
            prepared = PreparedCircuits{};
            prepared.tooLarge = true;
            return prepared;
        }
        // Record the backend decision next to the circuit it covers:
        // planCircuit is pure, so the plan journaled here is exactly
        // the one the runner re-derives at execution time.
        sim::PlannerConfig config = options.planner;
        if (options.backend != sim::BackendKind::Auto)
            config.force = options.backend;
        prepared.plans.push_back(
            sim::planCircuit(compact, device.noise, config));
        prepared.circuits.push_back(std::move(compact));
    }
    return prepared;
}

double
runRepetition(const Benchmark &benchmark, const PreparedCircuits &prepared,
              const sim::NoiseModel &noise, std::uint64_t shots,
              stats::Rng &rng, const sim::FaultHook &faultHook,
              sim::BackendKind backend, const sim::PlannerConfig &planner)
{
    std::vector<stats::Counts> counts;
    counts.reserve(prepared.circuits.size());
    for (const qc::Circuit &circuit : prepared.circuits) {
        sim::RunOptions ro;
        ro.shots = shots;
        ro.noise = noise;
        ro.faultHook = faultHook;
        ro.backend = backend;
        ro.planner = planner;
        counts.push_back(sim::run(circuit, ro, rng));
    }
    return benchmark.score(counts);
}

BenchmarkRun
runBenchmark(const Benchmark &benchmark, const device::Device &device,
             const HarnessOptions &options)
{
    static obs::Counter &runs_counter =
        obs::counter(obs::names::kHarnessRuns);
    static obs::Counter &too_large_counter =
        obs::counter(obs::names::kHarnessTooLarge);
    runs_counter.add();

    BenchmarkRun run;
    run.benchmark = benchmark.name();
    run.device = device.name;
    run.plannedRepetitions = options.repetitions;

    if (benchmark.numQubits() > device.numQubits()) {
        too_large_counter.add();
        run.status = RunStatus::TooLarge;
        run.cause = FailureCause::RegisterTooWide;
        run.tooLarge = true;
        return run;
    }

    PreparedCircuits prepared =
        prepareCircuits(benchmark, device, options);
    if (prepared.tooLarge) {
        too_large_counter.add();
        run.status = RunStatus::TooLarge;
        run.cause = FailureCause::SimulatorLimit;
        run.tooLarge = true;
        return run;
    }
    run.physicalTwoQubitGates = prepared.physicalTwoQubitGates;
    run.swapsInserted = prepared.swapsInserted;
    run.plan = prepared.planSummary();

    // Every repetition owns a seed-derived stream, so the loop can fan
    // out across worker threads and still produce the scores a serial
    // run would: each slot is written by exactly one task.
    static obs::Counter &reps_counter =
        obs::counter(obs::names::kHarnessRepetitions);
    run.scores.assign(options.repetitions, 0.0);
    try {
        util::parallelFor(
            options.jobs, options.repetitions, [&](std::size_t rep) {
                SMQ_TRACE_SPAN(
                    obs::names::kSpanRepetition,
                    obs::jsonField("benchmark", run.benchmark) + "," +
                        obs::jsonField("device", run.device) + "," +
                        obs::jsonField("rep",
                                       static_cast<std::uint64_t>(rep)));
                reps_counter.add();
                stats::Rng rng(util::deriveTaskSeed(options.seed, rep));
                run.scores[rep] = runRepetition(
                    benchmark, prepared, device.noise, options.shots,
                    rng, {}, options.backend, options.planner);
                obs::progressTick(obs::names::kSpanRepetition);
            });
    } catch (const sim::ResourceExhausted &e) {
        // A cell that would not fit in memory is a structured outcome
        // (Fig. 2's X), not a reason to take down the whole sweep.
        too_large_counter.add();
        run = BenchmarkRun{};
        run.benchmark = benchmark.name();
        run.device = device.name;
        run.plannedRepetitions = options.repetitions;
        run.status = RunStatus::TooLarge;
        run.cause = FailureCause::ResourceExhausted;
        run.tooLarge = true;
        run.detail = e.what();
        return run;
    }
    run.attempts = options.repetitions;
    run.summary = stats::summarize(run.scores);
    return run;
}

double
noiselessScore(const Benchmark &benchmark, std::uint64_t shots,
               std::uint64_t seed, std::size_t maxSimQubits)
{
    if (shots == 0)
        throw std::invalid_argument("noiselessScore: shots == 0");
    if (benchmark.numQubits() > maxSimQubits) {
        throw std::invalid_argument(
            "noiselessScore: " + benchmark.name() + " needs " +
            std::to_string(benchmark.numQubits()) +
            " qubits, over the statevector budget of " +
            std::to_string(maxSimQubits));
    }
    stats::Rng rng(seed);
    std::vector<stats::Counts> counts;
    for (const qc::Circuit &circuit : benchmark.circuits()) {
        sim::RunOptions ro;
        ro.shots = shots;
        counts.push_back(sim::run(circuit, ro, rng));
    }
    return benchmark.score(counts);
}

obs::RunManifest
makeRunManifest(const std::string &tool, const HarnessOptions &options)
{
    obs::RunManifest manifest = obs::RunManifest::capture(tool);
    manifest.deviceTableVersion = device::kDeviceTableVersion;
    manifest.seed = options.seed;
    manifest.shots = options.shots;
    manifest.repetitions = options.repetitions;
    manifest.jobs = options.jobs;
    // The requested engine; per-job manifests additionally carry the
    // resolved per-cell plan (chosen backend + reason).
    manifest.extra["sim.backend"] = sim::toString(options.backend);
    return manifest;
}

} // namespace smq::core
