#include "core/coverage.hpp"

namespace smq::core {

CoverageResult
computeCoverage(const std::string &suite_name,
                const std::vector<FeatureVector> &features)
{
    std::vector<geom::Point> points;
    points.reserve(features.size());
    for (const FeatureVector &f : features) {
        auto arr = f.asArray();
        points.emplace_back(arr.begin(), arr.end());
    }
    geom::HullResult hull = geom::convexHull(points, 6);

    CoverageResult result;
    result.suite = suite_name;
    result.volume = hull.volume;
    result.numCircuits = features.size();
    result.affineRank = hull.affineRank;
    return result;
}

std::vector<FeatureVector>
featuresOfCircuits(const std::vector<qc::Circuit> &circuits)
{
    std::vector<FeatureVector> features;
    features.reserve(circuits.size());
    for (const qc::Circuit &circuit : circuits)
        features.push_back(computeFeatures(circuit));
    return features;
}

} // namespace smq::core
