/**
 * @file
 * Exact solutions of the 1-D transverse-field Ising model.
 *
 * The paper picks the TFIM for its VQE and Hamiltonian-simulation
 * benchmarks precisely because it is "exactly solvable via classical
 * methods" (Sec. IV-E, citing Pfeuty). This module provides that
 * classical reference: a matrix-free Lanczos ground-state solver for
 * any chain, and the free-fermion closed form for periodic chains,
 * used to validate the variational benchmarks and to quantify ansatz
 * quality.
 *
 *   H = -J sum_i Z_i Z_{i+1} - h sum_i X_i
 */

#ifndef SMQ_CORE_TFIM_HPP
#define SMQ_CORE_TFIM_HPP

#include <cstddef>
#include <vector>

namespace smq::core {

/** Chain boundary conditions. */
enum class Boundary { Open, Periodic };

/**
 * y = H x for the TFIM Hamiltonian on n spins (H is real symmetric in
 * the computational basis, so real vectors suffice).
 * @pre x.size() == y.size() == 2^n, n <= 24.
 */
void applyTfim(const std::vector<double> &x, std::vector<double> &y,
               std::size_t n, double j, double h, Boundary boundary);

/**
 * Ground-state energy by the Lanczos method with full
 * reorthogonalisation (matrix-free; dimension 2^n).
 *
 * @param max_iters Krylov dimension cap.
 * @param tol       convergence threshold on the energy.
 */
double tfimGroundEnergyLanczos(std::size_t n, double j, double h,
                               Boundary boundary,
                               std::size_t max_iters = 200,
                               double tol = 1e-12);

/**
 * Exact ground energy of the PERIODIC chain via free fermions:
 * E0 = -(1/2) sum_m eps(k_m), eps(k) = 2 sqrt(J^2 + h^2 - 2 J h cos k)
 * over the antiperiodic momenta k_m = (2m + 1) pi / n.
 */
double tfimGroundEnergyExact(std::size_t n, double j, double h);

} // namespace smq::core

#endif // SMQ_CORE_TFIM_HPP
