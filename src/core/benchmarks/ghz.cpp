#include "core/benchmarks/ghz.hpp"

#include <stdexcept>

#include "stats/hellinger.hpp"

namespace smq::core {

GhzBenchmark::GhzBenchmark(std::size_t num_qubits) : numQubits_(num_qubits)
{
    if (num_qubits < 2)
        throw std::invalid_argument("GhzBenchmark: need >= 2 qubits");
}

std::string
GhzBenchmark::name() const
{
    return "ghz_" + std::to_string(numQubits_);
}

std::vector<qc::Circuit>
GhzBenchmark::circuits() const
{
    qc::Circuit circuit(numQubits_, numQubits_, name());
    circuit.h(0);
    for (std::size_t i = 0; i + 1 < numQubits_; ++i)
        circuit.cx(static_cast<qc::Qubit>(i),
                   static_cast<qc::Qubit>(i + 1));
    circuit.measureAll();
    return {circuit};
}

double
GhzBenchmark::score(const std::vector<stats::Counts> &counts) const
{
    if (counts.size() != 1)
        throw std::invalid_argument("GhzBenchmark::score: one histogram");
    stats::Distribution ideal;
    ideal.add(std::string(numQubits_, '0'), 0.5);
    ideal.add(std::string(numQubits_, '1'), 0.5);
    return stats::hellingerFidelity(counts[0], ideal);
}

} // namespace smq::core
