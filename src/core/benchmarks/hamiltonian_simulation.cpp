#include "core/benchmarks/hamiltonian_simulation.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "sim/statevector.hpp"

namespace smq::core {

HamiltonianSimulationBenchmark::HamiltonianSimulationBenchmark(
    std::size_t num_qubits, std::size_t steps, TfimDriveParams params)
    : numQubits_(num_qubits), steps_(steps), params_(params)
{
    if (num_qubits < 2)
        throw std::invalid_argument(
            "HamiltonianSimulationBenchmark: need >= 2 qubits");
    if (steps < 1)
        throw std::invalid_argument(
            "HamiltonianSimulationBenchmark: need >= 1 step");
}

std::string
HamiltonianSimulationBenchmark::name() const
{
    return "hamiltonian_sim_" + std::to_string(numQubits_) + "q" +
           std::to_string(steps_) + "s";
}

qc::Circuit
HamiltonianSimulationBenchmark::evolutionCircuit() const
{
    qc::Circuit circuit(numQubits_, 0, name() + "_evolution");
    for (std::size_t k = 0; k < steps_; ++k) {
        double t = (static_cast<double>(k) + 0.5) * params_.dt;
        double field = params_.epsPh * std::cos(params_.omegaPh * t);
        // exp(-i H dt) ~ prod exp(+i Jz dt ZZ) prod exp(+i field dt X)
        for (std::size_t q = 0; q + 1 < numQubits_; q += 2)
            circuit.rzz(-2.0 * params_.jz * params_.dt,
                        static_cast<qc::Qubit>(q),
                        static_cast<qc::Qubit>(q + 1));
        for (std::size_t q = 1; q + 1 < numQubits_; q += 2)
            circuit.rzz(-2.0 * params_.jz * params_.dt,
                        static_cast<qc::Qubit>(q),
                        static_cast<qc::Qubit>(q + 1));
        for (std::size_t q = 0; q < numQubits_; ++q)
            circuit.rx(-2.0 * field * params_.dt,
                       static_cast<qc::Qubit>(q));
    }
    return circuit;
}

std::vector<qc::Circuit>
HamiltonianSimulationBenchmark::circuits() const
{
    qc::Circuit circuit = evolutionCircuit();
    circuit.setName(name());
    circuit.measureAll();
    return {circuit};
}

double
HamiltonianSimulationBenchmark::magnetizationFromCounts(
    const stats::Counts &counts) const
{
    double total = 0.0;
    for (std::size_t q = 0; q < numQubits_; ++q)
        total += counts.parityExpectation({q});
    return total / static_cast<double>(numQubits_);
}

double
HamiltonianSimulationBenchmark::idealMagnetization() const
{
    std::call_once(idealOnce_, [&] {
        sim::StateVector state = sim::finalState(evolutionCircuit());
        double total = 0.0;
        for (std::size_t q = 0; q < numQubits_; ++q)
            total += state.expectationZ({q});
        idealMagnetization_ = total / static_cast<double>(numQubits_);
    });
    return idealMagnetization_;
}

double
HamiltonianSimulationBenchmark::score(
    const std::vector<stats::Counts> &counts) const
{
    if (counts.size() != 1)
        throw std::invalid_argument(
            "HamiltonianSimulationBenchmark::score: one histogram");
    double experimental = magnetizationFromCounts(counts[0]);
    double score =
        1.0 - std::abs(idealMagnetization() - experimental) / 2.0;
    return std::clamp(score, 0.0, 1.0);
}

} // namespace smq::core
