/**
 * @file
 * VQE proxy benchmark on the 1-D transverse-field Ising model
 * (paper Sec. IV-E).
 *
 * The variational optimisation runs classically to convergence on the
 * noiseless simulator; the QPU then evaluates the energy of the
 * optimised hardware-efficient ansatz. Energy measurement needs two
 * circuits (ZZ terms in the computational basis, X terms after a
 * Hadamard layer). Score: 1 - |(E_ideal - E_exp) / (2 E_ideal)|.
 *
 * H = -J sum_i Z_i Z_{i+1} - h sum_i X_i (open chain, J = h = 1).
 */

#ifndef SMQ_CORE_BENCHMARKS_VQE_HPP
#define SMQ_CORE_BENCHMARKS_VQE_HPP

#include <vector>

#include "core/benchmark.hpp"

namespace smq::core {

/** The VQE benchmark on an n-spin TFIM chain. */
class VqeBenchmark : public Benchmark
{
  public:
    /**
     * @param num_qubits chain length (>= 2).
     * @param layers entangling layers in the ansatz (>= 1).
     * @param optimize when false, fixed parameters are used (for
     *        feature-vector generation at large sizes).
     */
    explicit VqeBenchmark(std::size_t num_qubits, std::size_t layers = 1,
                          bool optimize = true);

    std::string name() const override;
    std::size_t numQubits() const override { return numQubits_; }
    std::vector<qc::Circuit> circuits() const override;
    double score(const std::vector<stats::Counts> &counts) const override;

    /** The hardware-efficient ansatz at given parameters. */
    qc::Circuit ansatz(const std::vector<double> &params) const;

    /** Number of variational parameters: (layers + 1) * n. */
    std::size_t numParameters() const
    {
        return (layers_ + 1) * numQubits_;
    }

    const std::vector<double> &parameters() const { return params_; }

    /** Noiseless energy at the optimised parameters. */
    double idealEnergy() const { return idealEnergy_; }

    /** Energy estimate from (Z-basis, X-basis) histograms. */
    double energyFromCounts(const stats::Counts &z_counts,
                            const stats::Counts &x_counts) const;

  private:
    double noiselessEnergy(const std::vector<double> &params) const;

    std::size_t numQubits_;
    std::size_t layers_;
    std::vector<double> params_;
    double idealEnergy_ = 0.0;
};

} // namespace smq::core

#endif // SMQ_CORE_BENCHMARKS_VQE_HPP
