/**
 * @file
 * GHZ state-preparation benchmark (paper Sec. IV-A).
 *
 * A Hadamard followed by a CNOT ladder prepares
 * (|0...0> + |1...1>)/sqrt(2); the score is the Hellinger fidelity
 * between the observed distribution and the ideal 50/50 split over
 * the two all-equal bitstrings.
 */

#ifndef SMQ_CORE_BENCHMARKS_GHZ_HPP
#define SMQ_CORE_BENCHMARKS_GHZ_HPP

#include "core/benchmark.hpp"

namespace smq::core {

/** The GHZ benchmark on n qubits. */
class GhzBenchmark : public Benchmark
{
  public:
    /** @param num_qubits chain length (>= 2). */
    explicit GhzBenchmark(std::size_t num_qubits);

    std::string name() const override;
    std::size_t numQubits() const override { return numQubits_; }
    std::vector<qc::Circuit> circuits() const override;
    double score(const std::vector<stats::Counts> &counts) const override;

  private:
    std::size_t numQubits_;
};

} // namespace smq::core

#endif // SMQ_CORE_BENCHMARKS_GHZ_HPP
