#include "core/benchmarks/mermin_bell.hpp"

#include <cmath>
#include <stdexcept>

#include "qc/clifford.hpp"

namespace smq::core {

MerminBellBenchmark::MerminBellBenchmark(std::size_t num_qubits)
    : numQubits_(num_qubits)
{
    if (num_qubits < 2 || num_qubits > 12)
        throw std::invalid_argument(
            "MerminBellBenchmark: supported range is 2..12 qubits "
            "(the Mermin expansion has 2^{n-1} terms)");

    auto terms = merminTerms(num_qubits);
    std::vector<qc::PauliString> paulis;
    paulis.reserve(terms.size());
    for (const auto &[coeff, p] : terms)
        paulis.push_back(p);
    measurementCircuit_ = qc::diagonalizationCircuit(paulis, num_qubits);

    // Pre-compute each term's rotated Z-string: sign and bit support.
    zTerms_.reserve(terms.size());
    for (const auto &[coeff, p] : terms) {
        qc::PauliString rotated = p;
        rotated.conjugateByCircuit(measurementCircuit_);
        if (!rotated.isZType())
            throw std::logic_error(
                "MerminBellBenchmark: diagonalisation failed");
        zTerms_.emplace_back(coeff * rotated.sign(), rotated.support());
    }
}

std::string
MerminBellBenchmark::name() const
{
    return "mermin_bell_" + std::to_string(numQubits_);
}

std::vector<std::pair<double, qc::PauliString>>
MerminBellBenchmark::merminTerms(std::size_t num_qubits)
{
    std::vector<std::pair<double, qc::PauliString>> terms;
    std::size_t count = std::size_t{1} << num_qubits;
    for (std::size_t mask = 0; mask < count; ++mask) {
        std::size_t y_count =
            static_cast<std::size_t>(__builtin_popcountll(mask));
        if (y_count % 2 == 0)
            continue;
        std::string label;
        label.reserve(num_qubits);
        for (std::size_t q = 0; q < num_qubits; ++q)
            label.push_back((mask >> q) & 1 ? 'Y' : 'X');
        double coeff = ((y_count - 1) / 2) % 2 == 0 ? 1.0 : -1.0;
        terms.emplace_back(coeff, qc::PauliString::fromLabel(label));
    }
    return terms;
}

double
MerminBellBenchmark::classicalBound(std::size_t num_qubits)
{
    return std::pow(2.0, static_cast<double>(num_qubits / 2));
}

double
MerminBellBenchmark::quantumValue(std::size_t num_qubits)
{
    return std::pow(2.0, static_cast<double>(num_qubits - 1));
}

std::vector<qc::Circuit>
MerminBellBenchmark::circuits() const
{
    qc::Circuit circuit(numQubits_, numQubits_, name());
    // GHZ-with-phase preparation: (|0..0> + i|1..1>)/sqrt(2)
    circuit.h(0);
    circuit.s(0);
    for (std::size_t i = 0; i + 1 < numQubits_; ++i)
        circuit.cx(static_cast<qc::Qubit>(i),
                   static_cast<qc::Qubit>(i + 1));
    // shared-basis rotation, then measure everything
    circuit.compose(measurementCircuit_);
    circuit.measureAll();
    return {circuit};
}

double
MerminBellBenchmark::merminExpectation(const stats::Counts &counts) const
{
    double expectation = 0.0;
    for (const auto &[weight, support] : zTerms_)
        expectation += weight * counts.parityExpectation(support);
    return expectation;
}

double
MerminBellBenchmark::score(const std::vector<stats::Counts> &counts) const
{
    if (counts.size() != 1)
        throw std::invalid_argument(
            "MerminBellBenchmark::score: one histogram");
    double m = merminExpectation(counts[0]);
    double q = quantumValue(numQubits_);
    return (m + q) / (2.0 * q);
}

} // namespace smq::core
