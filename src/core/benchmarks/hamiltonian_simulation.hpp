/**
 * @file
 * Hamiltonian-simulation benchmark (paper Sec. IV-F).
 *
 * Trotterised time evolution of the 1-D transverse-field Ising model
 * with a time-varying drive,
 *
 *   H(t) = -sum_i ( J_z Z_i Z_{i+1} + eps_ph cos(w_ph t) X_i ),
 *
 * followed by a measurement of the average magnetisation
 * m_z = (1/N) sum_i <Z_i>. Score: 1 - |m_ideal - m_exp| / 2.
 *
 * Default drive parameters are chosen so the magnetisation leaves the
 * trivial fixed points (documented in EXPERIMENTS.md); the reference
 * values themselves come from noiseless simulation, mirroring the
 * paper's classical comparison.
 */

#ifndef SMQ_CORE_BENCHMARKS_HAMILTONIAN_SIMULATION_HPP
#define SMQ_CORE_BENCHMARKS_HAMILTONIAN_SIMULATION_HPP

#include <mutex>

#include "core/benchmark.hpp"

namespace smq::core {

/** Drive/coupling parameters of the simulated TFIM. */
struct TfimDriveParams
{
    double jz = 1.0;     ///< ZZ coupling
    double epsPh = 2.0;  ///< drive amplitude
    double omegaPh = 3.14159265358979323846; ///< drive frequency
    double dt = 0.25;    ///< Trotter step
};

/** The Hamiltonian-simulation benchmark on an n-spin chain. */
class HamiltonianSimulationBenchmark : public Benchmark
{
  public:
    /**
     * @param num_qubits chain length (>= 2).
     * @param steps Trotter steps (>= 1).
     */
    HamiltonianSimulationBenchmark(std::size_t num_qubits,
                                   std::size_t steps,
                                   TfimDriveParams params = {});

    std::string name() const override;
    std::size_t numQubits() const override { return numQubits_; }
    std::vector<qc::Circuit> circuits() const override;
    double score(const std::vector<stats::Counts> &counts) const override;

    /** Average magnetisation estimated from Z-basis counts. */
    double magnetizationFromCounts(const stats::Counts &counts) const;

    /** The noiseless reference magnetisation (lazy, cached;
     *  thread-safe — grid cells score one instance concurrently). */
    double idealMagnetization() const;

  private:
    qc::Circuit evolutionCircuit() const;

    std::size_t numQubits_;
    std::size_t steps_;
    TfimDriveParams params_;
    mutable std::once_flag idealOnce_;
    mutable double idealMagnetization_ = 2.0;
};

} // namespace smq::core

#endif // SMQ_CORE_BENCHMARKS_HAMILTONIAN_SIMULATION_HPP
