#include "core/benchmarks/error_correction.hpp"

#include <stdexcept>

#include "stats/hellinger.hpp"

namespace smq::core {

namespace {

std::vector<std::uint8_t>
alternatingPattern(std::size_t n)
{
    std::vector<std::uint8_t> bits(n);
    for (std::size_t i = 0; i < n; ++i)
        bits[i] = static_cast<std::uint8_t>(i % 2);
    return bits;
}

void
checkParams(std::size_t num_data, std::size_t rounds)
{
    if (num_data < 2)
        throw std::invalid_argument("EC benchmark: need >= 2 data qubits");
    if (rounds < 1)
        throw std::invalid_argument("EC benchmark: need >= 1 round");
}

} // namespace

// ---------------------------------------------------------------- bit code

BitCodeBenchmark::BitCodeBenchmark(std::vector<std::uint8_t> initial_bits,
                                   std::size_t rounds)
    : bits_(std::move(initial_bits)), numData_(bits_.size()),
      rounds_(rounds)
{
    checkParams(numData_, rounds_);
}

BitCodeBenchmark
BitCodeBenchmark::alternating(std::size_t num_data, std::size_t rounds)
{
    return BitCodeBenchmark(alternatingPattern(num_data), rounds);
}

std::string
BitCodeBenchmark::name() const
{
    return "bit_code_" + std::to_string(numData_) + "d" +
           std::to_string(rounds_) + "r";
}

std::vector<qc::Circuit>
BitCodeBenchmark::circuits() const
{
    std::size_t n_qubits = 2 * numData_ - 1;
    std::size_t n_anc = numData_ - 1;
    std::size_t n_clbits = rounds_ * n_anc + numData_;
    qc::Circuit circuit(n_qubits, n_clbits, name());
    auto data = [](std::size_t i) { return static_cast<qc::Qubit>(2 * i); };
    auto anc = [](std::size_t i) {
        return static_cast<qc::Qubit>(2 * i + 1);
    };

    for (std::size_t i = 0; i < numData_; ++i) {
        if (bits_[i])
            circuit.x(data(i));
    }
    for (std::size_t r = 0; r < rounds_; ++r) {
        circuit.barrier();
        for (std::size_t i = 0; i < n_anc; ++i) {
            circuit.cx(data(i), anc(i));
            circuit.cx(data(i + 1), anc(i));
        }
        for (std::size_t i = 0; i < n_anc; ++i) {
            circuit.measure(anc(i), r * n_anc + i);
            circuit.reset(anc(i));
        }
    }
    circuit.barrier();
    for (std::size_t i = 0; i < numData_; ++i)
        circuit.measure(data(i), rounds_ * n_anc + i);
    return {circuit};
}

stats::Distribution
BitCodeBenchmark::idealOutput() const
{
    std::size_t n_anc = numData_ - 1;
    std::string key(rounds_ * n_anc + numData_, '0');
    for (std::size_t r = 0; r < rounds_; ++r) {
        for (std::size_t i = 0; i < n_anc; ++i) {
            if ((bits_[i] ^ bits_[i + 1]) != 0)
                key[r * n_anc + i] = '1';
        }
    }
    for (std::size_t i = 0; i < numData_; ++i) {
        if (bits_[i])
            key[rounds_ * n_anc + i] = '1';
    }
    stats::Distribution ideal;
    ideal.add(key, 1.0);
    return ideal;
}

double
BitCodeBenchmark::score(const std::vector<stats::Counts> &counts) const
{
    if (counts.size() != 1)
        throw std::invalid_argument("BitCodeBenchmark::score: one histogram");
    return stats::hellingerFidelity(counts[0], idealOutput());
}

// -------------------------------------------------------------- phase code

PhaseCodeBenchmark::PhaseCodeBenchmark(
    std::vector<std::uint8_t> initial_signs, std::size_t rounds)
    : signs_(std::move(initial_signs)), numData_(signs_.size()),
      rounds_(rounds)
{
    checkParams(numData_, rounds_);
}

PhaseCodeBenchmark
PhaseCodeBenchmark::alternating(std::size_t num_data, std::size_t rounds)
{
    return PhaseCodeBenchmark(alternatingPattern(num_data), rounds);
}

std::string
PhaseCodeBenchmark::name() const
{
    return "phase_code_" + std::to_string(numData_) + "d" +
           std::to_string(rounds_) + "r";
}

std::vector<qc::Circuit>
PhaseCodeBenchmark::circuits() const
{
    std::size_t n_qubits = 2 * numData_ - 1;
    std::size_t n_anc = numData_ - 1;
    std::size_t n_clbits = rounds_ * n_anc + numData_;
    qc::Circuit circuit(n_qubits, n_clbits, name());
    auto data = [](std::size_t i) { return static_cast<qc::Qubit>(2 * i); };
    auto anc = [](std::size_t i) {
        return static_cast<qc::Qubit>(2 * i + 1);
    };

    for (std::size_t i = 0; i < numData_; ++i) {
        circuit.h(data(i));
        if (signs_[i])
            circuit.z(data(i));
    }
    for (std::size_t r = 0; r < rounds_; ++r) {
        circuit.barrier();
        // X_i X_{i+1} stabiliser: Hadamard sandwich around the CX pairs
        for (std::size_t i = 0; i < numData_; ++i)
            circuit.h(data(i));
        for (std::size_t i = 0; i < n_anc; ++i) {
            circuit.cx(data(i), anc(i));
            circuit.cx(data(i + 1), anc(i));
        }
        for (std::size_t i = 0; i < numData_; ++i)
            circuit.h(data(i));
        for (std::size_t i = 0; i < n_anc; ++i) {
            circuit.measure(anc(i), r * n_anc + i);
            circuit.reset(anc(i));
        }
    }
    circuit.barrier();
    for (std::size_t i = 0; i < numData_; ++i)
        circuit.measure(data(i), rounds_ * n_anc + i);
    return {circuit};
}

stats::Distribution
PhaseCodeBenchmark::idealOutput() const
{
    if (numData_ > 16)
        throw std::invalid_argument(
            "PhaseCodeBenchmark::idealOutput: 2^n keys; n > 16 data "
            "qubits unsupported for scoring (circuits still generate)");
    std::size_t n_anc = numData_ - 1;
    std::string syndrome(rounds_ * n_anc, '0');
    for (std::size_t r = 0; r < rounds_; ++r) {
        for (std::size_t i = 0; i < n_anc; ++i) {
            if ((signs_[i] ^ signs_[i + 1]) != 0)
                syndrome[r * n_anc + i] = '1';
        }
    }
    stats::Distribution ideal;
    std::size_t patterns = std::size_t{1} << numData_;
    double p = 1.0 / static_cast<double>(patterns);
    for (std::size_t pattern = 0; pattern < patterns; ++pattern) {
        std::string key = syndrome;
        key.resize(rounds_ * n_anc + numData_, '0');
        for (std::size_t i = 0; i < numData_; ++i) {
            if ((pattern >> i) & 1)
                key[rounds_ * n_anc + i] = '1';
        }
        ideal.add(key, p);
    }
    return ideal;
}

double
PhaseCodeBenchmark::score(const std::vector<stats::Counts> &counts) const
{
    if (counts.size() != 1)
        throw std::invalid_argument(
            "PhaseCodeBenchmark::score: one histogram");
    return stats::hellingerFidelity(counts[0], idealOutput());
}

} // namespace smq::core
