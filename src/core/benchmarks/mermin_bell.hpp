/**
 * @file
 * Mermin-Bell inequality benchmark (paper Sec. IV-B).
 *
 * Prepares |phi> = (|0...0> + i|1...1>)/sqrt(2), rotates into the
 * shared eigenbasis of the Mermin operator M (Eq. 7) via a synthesised
 * Clifford, and estimates <M> from one set of Z-basis counts. Quantum
 * mechanics achieves <M> = 2^{n-1}; local hidden-variable theories are
 * bounded by 2^{floor(n/2)} (Eqs. 8-9). The benchmark score is
 * (<M> + 2^{n-1}) / 2^n.
 */

#ifndef SMQ_CORE_BENCHMARKS_MERMIN_BELL_HPP
#define SMQ_CORE_BENCHMARKS_MERMIN_BELL_HPP

#include <vector>

#include "core/benchmark.hpp"
#include "qc/pauli.hpp"

namespace smq::core {

/** The Mermin-Bell benchmark on n qubits (2 <= n <= 12). */
class MerminBellBenchmark : public Benchmark
{
  public:
    explicit MerminBellBenchmark(std::size_t num_qubits);

    std::string name() const override;
    std::size_t numQubits() const override { return numQubits_; }
    std::vector<qc::Circuit> circuits() const override;
    double score(const std::vector<stats::Counts> &counts) const override;

    /**
     * The Mermin operator's Pauli expansion: all X/Y strings with an
     * odd number of Y's, with coefficient (-1)^{(|Y|-1)/2}.
     */
    static std::vector<std::pair<double, qc::PauliString>>
    merminTerms(std::size_t num_qubits);

    /** The local-hidden-variable bound 2^{floor(n/2)} (Eq. 9). */
    static double classicalBound(std::size_t num_qubits);

    /** The quantum value 2^{n-1} (Eq. 8). */
    static double quantumValue(std::size_t num_qubits);

    /** Estimate <M> from Z-basis counts in the rotated basis. */
    double merminExpectation(const stats::Counts &counts) const;

  private:
    std::size_t numQubits_;
    qc::Circuit measurementCircuit_; ///< shared-basis rotation
    /** Per term: coefficient * sign of the rotated Z-string, and the
     *  classical bits in its parity support. */
    std::vector<std::pair<double, std::vector<std::size_t>>> zTerms_;
};

} // namespace smq::core

#endif // SMQ_CORE_BENCHMARKS_MERMIN_BELL_HPP
