/**
 * @file
 * QAOA proxy benchmarks on the Sherrington-Kirkpatrick model
 * (paper Sec. IV-D).
 *
 * Both variants evaluate a single iteration of level-1 QAOA for
 * MaxCut on a complete graph with +/-1 edge weights. The angles are
 * found classically (noiseless simulation, grid + Nelder-Mead); the
 * QPU's score is 1 - |(<H>_ideal - <H>_exp) / (2 <H>_ideal)| with
 * H = sum_{(i,j) in E} w_ij Z_i Z_j.
 *
 * The Vanilla ansatz applies one RZZ per edge (requiring all-to-all
 * connectivity); the ZZ-SWAP ansatz uses a linear-depth SWAP network
 * (each RZZ+SWAP fused into 3 CX + 1 RZ) that needs only
 * nearest-neighbour couplings.
 */

#ifndef SMQ_CORE_BENCHMARKS_QAOA_HPP
#define SMQ_CORE_BENCHMARKS_QAOA_HPP

#include <vector>

#include "core/benchmark.hpp"
#include "stats/rng.hpp"

namespace smq::core {

/** A Sherrington-Kirkpatrick MaxCut instance: w_ij in {-1, +1}. */
struct SkModel
{
    std::size_t numQubits = 0;
    std::vector<double> weights; ///< row-major upper triangle packed

    /** Random +/-1 instance with the given seed. */
    static SkModel random(std::size_t num_qubits, std::uint64_t seed);

    /** Edge weight w_ij (i != j). */
    double weight(std::size_t i, std::size_t j) const;

    /** H = sum w_ij Z_i Z_j evaluated on a computational basis state. */
    double energyOfBitstring(const std::string &bits) const;
};

/** Shared machinery for both QAOA variants. */
class QaoaBenchmarkBase : public Benchmark
{
  public:
    std::size_t numQubits() const override { return model_.numQubits; }

    /** The optimised (gamma, beta). */
    const std::vector<double> &parameters() const { return params_; }

    /** Noiseless <H> at the optimised parameters. */
    double idealEnergy() const { return idealEnergy_; }

    /** Estimate <H> from Z-basis counts. */
    double energyFromCounts(const stats::Counts &counts) const;

    double score(const std::vector<stats::Counts> &counts) const override;

  protected:
    /**
     * @param model SK instance.
     * @param levels QAOA depth p (the paper evaluates p = 1 for
     *        scalable classical verification; higher p is supported
     *        as an extension).
     * @param optimize when false, fixed angles are used (feature-
     *        vector generation for very large instances).
     */
    QaoaBenchmarkBase(SkModel model, std::size_t levels, bool optimize);

    /** The variant's ansatz circuit at parameters
     *  (gamma_1, beta_1, ..., gamma_p, beta_p). */
    virtual qc::Circuit ansatz(const std::vector<double> &params)
        const = 0;

    /** clbit index measuring logical qubit i. */
    virtual std::size_t clbitOfLogical(std::size_t i) const = 0;

    /** Called by subclass constructors once the ansatz is available. */
    void finalizeParameters();

    SkModel model_;
    std::size_t levels_;
    bool optimize_;
    std::vector<double> params_;
    double idealEnergy_ = 0.0;
};

/** The Vanilla QAOA benchmark (one RZZ per edge). */
class QaoaVanillaBenchmark : public QaoaBenchmarkBase
{
  public:
    explicit QaoaVanillaBenchmark(std::size_t num_qubits,
                                  std::uint64_t seed = 1,
                                  bool optimize = true,
                                  std::size_t levels = 1);

    std::string name() const override;
    std::vector<qc::Circuit> circuits() const override;

  protected:
    qc::Circuit ansatz(const std::vector<double> &params) const override;
    std::size_t clbitOfLogical(std::size_t i) const override { return i; }
};

/** The ZZ-SWAP-network QAOA benchmark (linear depth). */
class QaoaSwapBenchmark : public QaoaBenchmarkBase
{
  public:
    explicit QaoaSwapBenchmark(std::size_t num_qubits,
                               std::uint64_t seed = 1,
                               bool optimize = true,
                               std::size_t levels = 1);

    std::string name() const override;
    std::vector<qc::Circuit> circuits() const override;

    /** position -> logical qubit after the full network. */
    const std::vector<std::size_t> &finalPermutation() const
    {
        return permutation_;
    }

  protected:
    qc::Circuit ansatz(const std::vector<double> &params) const override;
    std::size_t clbitOfLogical(std::size_t i) const override;

  private:
    std::vector<std::size_t> permutation_; ///< position -> logical
};

} // namespace smq::core

#endif // SMQ_CORE_BENCHMARKS_QAOA_HPP
