#include "core/benchmarks/vqe.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "opt/nelder_mead.hpp"
#include "sim/statevector.hpp"

namespace smq::core {

VqeBenchmark::VqeBenchmark(std::size_t num_qubits, std::size_t layers,
                           bool optimize)
    : numQubits_(num_qubits), layers_(layers)
{
    if (num_qubits < 2)
        throw std::invalid_argument("VqeBenchmark: need >= 2 qubits");
    if (layers < 1)
        throw std::invalid_argument("VqeBenchmark: need >= 1 layer");

    params_.assign(numParameters(), 0.1);
    if (!optimize) {
        // Feature-vector-only instances: fixed parameters, no
        // simulation. score() is unavailable.
        return;
    }
    auto objective = [&](const std::vector<double> &p) {
        return noiselessEnergy(p);
    };
    opt::NelderMeadOptions nm;
    nm.maxIterations = 600;
    nm.initialStep = 0.5;
    opt::OptResult best = opt::nelderMead(objective, params_, nm);
    // one restart from a different seed to dodge local minima
    std::vector<double> seed2(numParameters());
    for (std::size_t i = 0; i < seed2.size(); ++i)
        seed2[i] = 0.3 + 0.1 * static_cast<double>(i % 5);
    opt::OptResult second = opt::nelderMead(objective, seed2, nm);
    params_ = second.value < best.value ? second.x : best.x;
    idealEnergy_ = noiselessEnergy(params_);
}

std::string
VqeBenchmark::name() const
{
    return "vqe_" + std::to_string(numQubits_);
}

qc::Circuit
VqeBenchmark::ansatz(const std::vector<double> &params) const
{
    if (params.size() != numParameters())
        throw std::invalid_argument("VqeBenchmark::ansatz: param count");
    qc::Circuit circuit(numQubits_, 0, "vqe_ansatz");
    std::size_t k = 0;
    for (std::size_t layer = 0; layer < layers_; ++layer) {
        for (std::size_t q = 0; q < numQubits_; ++q)
            circuit.ry(params[k++], static_cast<qc::Qubit>(q));
        for (std::size_t q = 0; q + 1 < numQubits_; ++q)
            circuit.cx(static_cast<qc::Qubit>(q),
                       static_cast<qc::Qubit>(q + 1));
    }
    for (std::size_t q = 0; q < numQubits_; ++q)
        circuit.ry(params[k++], static_cast<qc::Qubit>(q));
    return circuit;
}

double
VqeBenchmark::noiselessEnergy(const std::vector<double> &params) const
{
    sim::StateVector state = sim::finalState(ansatz(params));
    double energy = 0.0;
    for (std::size_t q = 0; q + 1 < numQubits_; ++q)
        energy -= state.expectationZ({q, q + 1});
    for (std::size_t q = 0; q < numQubits_; ++q) {
        qc::PauliString x(numQubits_);
        x.setX(q, true);
        energy -= state.expectation(x).real();
    }
    return energy;
}

std::vector<qc::Circuit>
VqeBenchmark::circuits() const
{
    qc::Circuit z_basis = ansatz(params_);
    z_basis.setName(name() + "_zbasis");
    z_basis.measureAll();

    qc::Circuit x_basis = ansatz(params_);
    x_basis.setName(name() + "_xbasis");
    for (std::size_t q = 0; q < numQubits_; ++q)
        x_basis.h(static_cast<qc::Qubit>(q));
    x_basis.measureAll();

    return {z_basis, x_basis};
}

double
VqeBenchmark::energyFromCounts(const stats::Counts &z_counts,
                               const stats::Counts &x_counts) const
{
    double energy = 0.0;
    for (std::size_t q = 0; q + 1 < numQubits_; ++q)
        energy -= z_counts.parityExpectation({q, q + 1});
    for (std::size_t q = 0; q < numQubits_; ++q)
        energy -= x_counts.parityExpectation({q});
    return energy;
}

double
VqeBenchmark::score(const std::vector<stats::Counts> &counts) const
{
    if (counts.size() != 2)
        throw std::invalid_argument(
            "VqeBenchmark::score: expected Z-basis and X-basis counts");
    double experimental = energyFromCounts(counts[0], counts[1]);
    if (std::abs(idealEnergy_) < 1e-12)
        throw std::logic_error("VqeBenchmark::score: ideal energy zero");
    double score = 1.0 - std::abs((idealEnergy_ - experimental) /
                                  (2.0 * idealEnergy_));
    return std::clamp(score, 0.0, 1.0);
}

} // namespace smq::core
