/**
 * @file
 * Error-correction proxy benchmarks (paper Sec. IV-C).
 *
 * Repetition-code subroutines parameterised by the number of data
 * qubits and rounds. They exercise the circuit structure of real ECCs
 * — syndrome extraction onto interleaved ancillas, mid-circuit
 * measurement, and RESET — without correcting anything. Scores are
 * Hellinger fidelities against analytically known ideal output
 * distributions, so scoring stays scalable.
 *
 * Layout: data qubit i sits at index 2i, the ancilla between data i
 * and i+1 at index 2i+1. Classical bits: round-major syndrome bits
 * first (rounds x (n-1)), then the final data measurement (n bits).
 */

#ifndef SMQ_CORE_BENCHMARKS_ERROR_CORRECTION_HPP
#define SMQ_CORE_BENCHMARKS_ERROR_CORRECTION_HPP

#include <vector>

#include "core/benchmark.hpp"

namespace smq::core {

/**
 * Bit-flip repetition code proxy: data prepared in a computational
 * pattern, Z_i Z_{i+1} stabilisers measured each round. The ideal
 * output is a single deterministic bitstring (syndromes = parities of
 * adjacent pattern bits).
 */
class BitCodeBenchmark : public Benchmark
{
  public:
    /**
     * @param initial_bits data-qubit preparation pattern (n >= 2).
     * @param rounds number of syndrome-extraction rounds (>= 1).
     */
    BitCodeBenchmark(std::vector<std::uint8_t> initial_bits,
                     std::size_t rounds);

    /** Alternating 0101... pattern of the given length. */
    static BitCodeBenchmark alternating(std::size_t num_data,
                                        std::size_t rounds);

    std::string name() const override;
    std::size_t numQubits() const override { return 2 * numData_ - 1; }
    std::vector<qc::Circuit> circuits() const override;
    double score(const std::vector<stats::Counts> &counts) const override;

    /** The ideal (deterministic) output distribution. */
    stats::Distribution idealOutput() const;

  private:
    std::vector<std::uint8_t> bits_;
    std::size_t numData_;
    std::size_t rounds_;
};

/**
 * Phase-flip repetition code proxy: data prepared in |+>/|-> signs,
 * X_i X_{i+1} stabilisers measured each round (via Hadamard basis
 * sandwiches). The ideal output is uniform over the data bits with
 * deterministic syndromes (parities of adjacent sign bits).
 */
class PhaseCodeBenchmark : public Benchmark
{
  public:
    /**
     * @param initial_signs 0 = |+>, 1 = |-> per data qubit (n >= 2).
     * @param rounds number of syndrome-extraction rounds (>= 1).
     */
    PhaseCodeBenchmark(std::vector<std::uint8_t> initial_signs,
                       std::size_t rounds);

    /** Alternating +-+-... pattern of the given length. */
    static PhaseCodeBenchmark alternating(std::size_t num_data,
                                          std::size_t rounds);

    std::string name() const override;
    std::size_t numQubits() const override { return 2 * numData_ - 1; }
    std::vector<qc::Circuit> circuits() const override;
    double score(const std::vector<stats::Counts> &counts) const override;

    /** The ideal output distribution (2^n equally likely keys). */
    stats::Distribution idealOutput() const;

  private:
    std::vector<std::uint8_t> signs_;
    std::size_t numData_;
    std::size_t rounds_;
};

} // namespace smq::core

#endif // SMQ_CORE_BENCHMARKS_ERROR_CORRECTION_HPP
