#include "core/benchmarks/qaoa.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "opt/nelder_mead.hpp"
#include "sim/statevector.hpp"

namespace smq::core {

namespace {
constexpr double kPi = 3.14159265358979323846;
} // namespace

// ------------------------------------------------------------------ model

SkModel
SkModel::random(std::size_t num_qubits, std::uint64_t seed)
{
    if (num_qubits < 2)
        throw std::invalid_argument("SkModel: need >= 2 qubits");
    SkModel model;
    model.numQubits = num_qubits;
    stats::Rng rng(seed);
    model.weights.resize(num_qubits * (num_qubits - 1) / 2);
    for (double &w : model.weights)
        w = rng.bernoulli(0.5) ? 1.0 : -1.0;
    return model;
}

double
SkModel::weight(std::size_t i, std::size_t j) const
{
    if (i == j || i >= numQubits || j >= numQubits)
        throw std::out_of_range("SkModel::weight");
    if (i > j)
        std::swap(i, j);
    // packed upper triangle: offset(i) = i*n - i(i+1)/2
    std::size_t offset = i * numQubits - i * (i + 1) / 2;
    return weights[offset + (j - i - 1)];
}

double
SkModel::energyOfBitstring(const std::string &bits) const
{
    double energy = 0.0;
    for (std::size_t i = 0; i < numQubits; ++i) {
        for (std::size_t j = i + 1; j < numQubits; ++j) {
            double zi = bits[i] == '1' ? -1.0 : 1.0;
            double zj = bits[j] == '1' ? -1.0 : 1.0;
            energy += weight(i, j) * zi * zj;
        }
    }
    return energy;
}

// ------------------------------------------------------------------- base

QaoaBenchmarkBase::QaoaBenchmarkBase(SkModel model, std::size_t levels,
                                     bool optimize)
    : model_(std::move(model)), levels_(levels), optimize_(optimize)
{
    if (levels_ == 0)
        throw std::invalid_argument("QaoaBenchmarkBase: levels >= 1");
    // fixed fallback angles, staggered per level
    params_.clear();
    for (std::size_t l = 0; l < levels_; ++l) {
        params_.push_back(0.35 / static_cast<double>(l + 1));
        params_.push_back(0.25 / static_cast<double>(l + 1));
    }
}

void
QaoaBenchmarkBase::finalizeParameters()
{
    auto noiseless_energy = [&](const std::vector<double> &p) {
        sim::StateVector state = sim::finalState(ansatz(p));
        double energy = 0.0;
        for (std::size_t i = 0; i < model_.numQubits; ++i) {
            for (std::size_t j = i + 1; j < model_.numQubits; ++j) {
                // expectation in terms of physical positions
                std::size_t a = clbitOfLogical(i);
                std::size_t b = clbitOfLogical(j);
                energy += model_.weight(i, j) *
                          state.expectationZ({a, b});
            }
        }
        return energy;
    };

    if (!optimize_) {
        // Feature-vector-only instances (arbitrarily large): fixed
        // angles, no simulation. score() is unavailable.
        idealEnergy_ = 0.0;
        return;
    }
    std::vector<double> seed_params;
    if (levels_ == 1) {
        opt::OptResult grid =
            opt::gridSearch(noiseless_energy, {0.0, 0.0}, {kPi, kPi}, 9);
        seed_params = grid.x;
    } else {
        seed_params = params_; // staggered schedule seed for p > 1
    }
    opt::NelderMeadOptions nm;
    nm.maxIterations = 150 * levels_;
    nm.initialStep = 0.15;
    opt::OptResult refined =
        opt::nelderMead(noiseless_energy, seed_params, nm);
    params_ = refined.value < noiseless_energy(seed_params)
                  ? refined.x
                  : seed_params;
    idealEnergy_ = noiseless_energy(params_);
}

double
QaoaBenchmarkBase::energyFromCounts(const stats::Counts &counts) const
{
    double energy = 0.0;
    for (std::size_t i = 0; i < model_.numQubits; ++i) {
        for (std::size_t j = i + 1; j < model_.numQubits; ++j) {
            energy += model_.weight(i, j) *
                      counts.parityExpectation(
                          {clbitOfLogical(i), clbitOfLogical(j)});
        }
    }
    return energy;
}

double
QaoaBenchmarkBase::score(const std::vector<stats::Counts> &counts) const
{
    if (counts.size() != 1)
        throw std::invalid_argument("Qaoa score: one histogram expected");
    double experimental = energyFromCounts(counts[0]);
    if (std::abs(idealEnergy_) < 1e-12)
        throw std::logic_error(
            "Qaoa score: ideal energy is zero; re-seed the SK instance");
    double score =
        1.0 - std::abs((idealEnergy_ - experimental) /
                       (2.0 * idealEnergy_));
    return std::clamp(score, 0.0, 1.0);
}

// ---------------------------------------------------------------- vanilla

QaoaVanillaBenchmark::QaoaVanillaBenchmark(std::size_t num_qubits,
                                           std::uint64_t seed,
                                           bool optimize,
                                           std::size_t levels)
    : QaoaBenchmarkBase(SkModel::random(num_qubits, seed), levels,
                        optimize)
{
    finalizeParameters();
}

std::string
QaoaVanillaBenchmark::name() const
{
    std::string suffix =
        levels_ > 1 ? "_p" + std::to_string(levels_) : "";
    return "qaoa_vanilla_" + std::to_string(model_.numQubits) + suffix;
}

qc::Circuit
QaoaVanillaBenchmark::ansatz(const std::vector<double> &params) const
{
    if (params.size() != 2 * levels_)
        throw std::invalid_argument("QaoaVanilla::ansatz: param count");
    std::size_t n = model_.numQubits;
    qc::Circuit circuit(n, 0, "qaoa_vanilla_ansatz");
    for (std::size_t q = 0; q < n; ++q)
        circuit.h(static_cast<qc::Qubit>(q));
    for (std::size_t level = 0; level < levels_; ++level) {
        double gamma = params[2 * level];
        double beta = params[2 * level + 1];
        for (std::size_t i = 0; i < n; ++i) {
            for (std::size_t j = i + 1; j < n; ++j) {
                circuit.rzz(2.0 * gamma * model_.weight(i, j),
                            static_cast<qc::Qubit>(i),
                            static_cast<qc::Qubit>(j));
            }
        }
        for (std::size_t q = 0; q < n; ++q)
            circuit.rx(2.0 * beta, static_cast<qc::Qubit>(q));
    }
    return circuit;
}

std::vector<qc::Circuit>
QaoaVanillaBenchmark::circuits() const
{
    qc::Circuit circuit = ansatz(params_);
    circuit.setName(name());
    circuit.measureAll();
    return {circuit};
}

// --------------------------------------------------------------- ZZ-SWAP

QaoaSwapBenchmark::QaoaSwapBenchmark(std::size_t num_qubits,
                                     std::uint64_t seed, bool optimize,
                                     std::size_t levels)
    : QaoaBenchmarkBase(SkModel::random(num_qubits, seed), levels,
                        optimize)
{
    // Each QAOA level runs a full brickwork of n layers, reversing the
    // qubit order; track the cumulative permutation explicitly.
    permutation_.resize(num_qubits);
    for (std::size_t p = 0; p < num_qubits; ++p)
        permutation_[p] = p;
    for (std::size_t level = 0; level < levels_; ++level) {
        for (std::size_t layer = 0; layer < num_qubits; ++layer) {
            for (std::size_t p = layer % 2; p + 1 < num_qubits; p += 2)
                std::swap(permutation_[p], permutation_[p + 1]);
        }
    }
    finalizeParameters();
}

std::string
QaoaSwapBenchmark::name() const
{
    std::string suffix =
        levels_ > 1 ? "_p" + std::to_string(levels_) : "";
    return "qaoa_zzswap_" + std::to_string(model_.numQubits) + suffix;
}

std::size_t
QaoaSwapBenchmark::clbitOfLogical(std::size_t i) const
{
    for (std::size_t p = 0; p < permutation_.size(); ++p) {
        if (permutation_[p] == i)
            return p;
    }
    throw std::logic_error("QaoaSwapBenchmark: bad permutation");
}

qc::Circuit
QaoaSwapBenchmark::ansatz(const std::vector<double> &params) const
{
    if (params.size() != 2 * levels_)
        throw std::invalid_argument("QaoaSwap::ansatz: param count");
    std::size_t n = model_.numQubits;
    qc::Circuit circuit(n, 0, "qaoa_zzswap_ansatz");
    for (std::size_t q = 0; q < n; ++q)
        circuit.h(static_cast<qc::Qubit>(q));

    // brickwork of fused RZZ+SWAP blocks: 3 CX + 1 RZ each
    std::vector<std::size_t> perm(n);
    for (std::size_t p = 0; p < n; ++p)
        perm[p] = p;
    for (std::size_t level = 0; level < levels_; ++level) {
        double gamma = params[2 * level];
        double beta = params[2 * level + 1];
        for (std::size_t layer = 0; layer < n; ++layer) {
            for (std::size_t p = layer % 2; p + 1 < n; p += 2) {
                qc::Qubit a = static_cast<qc::Qubit>(p);
                qc::Qubit b = static_cast<qc::Qubit>(p + 1);
                double w = model_.weight(perm[p], perm[p + 1]);
                circuit.cx(a, b);
                circuit.rz(2.0 * gamma * w, b);
                circuit.cx(b, a);
                circuit.cx(a, b);
                std::swap(perm[p], perm[p + 1]);
            }
        }
        for (std::size_t q = 0; q < n; ++q)
            circuit.rx(2.0 * beta, static_cast<qc::Qubit>(q));
    }
    return circuit;
}

std::vector<qc::Circuit>
QaoaSwapBenchmark::circuits() const
{
    qc::Circuit circuit = ansatz(params_);
    circuit.setName(name());
    circuit.measureAll();
    return {circuit};
}

} // namespace smq::core
