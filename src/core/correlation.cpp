#include "core/correlation.hpp"

#include <stdexcept>

namespace smq::core {

const std::vector<std::string> kCorrelationAxes = {
    "Program Communication",
    "Critical Depth",
    "Entanglement-Ratio",
    "Parallelism",
    "Liveness",
    "Measurement",
    "Depth",
    "Num Qubits",
    "Num 2Q Gates",
};

double
axisValue(const ScoredInstance &instance, std::size_t axis)
{
    switch (axis) {
      case 0:
        return instance.features.communication;
      case 1:
        return instance.features.criticalDepth;
      case 2:
        return instance.features.entanglement;
      case 3:
        return instance.features.parallelism;
      case 4:
        return instance.features.liveness;
      case 5:
        return instance.features.measurement;
      case 6:
        return static_cast<double>(instance.stats.depth);
      case 7:
        return static_cast<double>(instance.stats.numQubits);
      case 8:
        return static_cast<double>(instance.stats.twoQubitGates);
      default:
        throw std::out_of_range("axisValue: bad axis");
    }
}

stats::LinearFit
axisFit(const std::vector<ScoredInstance> &instances, std::size_t axis,
        bool exclude_error_correction)
{
    std::vector<double> xs, ys;
    for (const ScoredInstance &inst : instances) {
        if (exclude_error_correction && inst.isErrorCorrection)
            continue;
        xs.push_back(axisValue(inst, axis));
        ys.push_back(inst.score);
    }
    return stats::linearRegression(xs, ys);
}

std::vector<double>
correlationRow(const std::vector<ScoredInstance> &instances,
               bool exclude_error_correction)
{
    std::vector<double> row;
    row.reserve(kCorrelationAxes.size());
    for (std::size_t axis = 0; axis < kCorrelationAxes.size(); ++axis)
        row.push_back(axisFit(instances, axis, exclude_error_correction).r2);
    return row;
}

} // namespace smq::core
