/**
 * @file
 * Error taxonomy for benchmark execution.
 *
 * Cloud collection (paper Sec. V) is lossy: jobs time out, devices
 * reject circuits they cannot run (the reference SuperstaQ script
 * skips bit-code on targets without mid-circuit measurement), and
 * some (benchmark, device) pairs simply fail. Every BenchmarkRun
 * therefore carries a RunStatus + FailureCause so each cell of the
 * Fig. 2 score matrix explains itself instead of silently vanishing.
 */

#ifndef SMQ_CORE_STATUS_HPP
#define SMQ_CORE_STATUS_HPP

namespace smq::core {

/** Terminal state of one (benchmark, device) execution. */
enum class RunStatus {
    Ok,       ///< all planned repetitions completed at full shots
    Partial,  ///< some results salvaged (deadline/attempt cap/truncation)
    Skipped,  ///< not attempted: a declared capability is missing
    TooLarge, ///< does not fit the device or simulator (Fig. 2's X)
    Failed,   ///< attempted, nothing salvageable
};

/** Why a run is not Ok (None for Ok runs). */
enum class FailureCause {
    None,
    TransientFault,    ///< injected/submission-time execution fault
    QueueTimeout,      ///< job expired in the device queue
    DeadlineExceeded,  ///< suite-level time budget ran out
    AttemptsExhausted, ///< per-job retry cap hit
    ShotTruncation,    ///< service returned fewer shots than requested
    MissingMidCircuitMeasurement, ///< device lacks mid-circuit MEASURE/RESET
    RegisterTooWide,   ///< more qubits than the device/service accepts
    SimulatorLimit,    ///< routed circuit exceeds the simulator budget
    Internal,          ///< unexpected exception, preserved in detail
    Interrupted,       ///< cooperative shutdown cut the run short
    ResourceExhausted, ///< allocation would exceed the memory budget
    StorageError,      ///< journal/history write failed (ENOSPC, ...)
};

/** True when the run produced scores usable for analysis. */
constexpr bool
scoreable(RunStatus status)
{
    return status == RunStatus::Ok || status == RunStatus::Partial;
}

constexpr const char *
toString(RunStatus status)
{
    switch (status) {
      case RunStatus::Ok: return "ok";
      case RunStatus::Partial: return "partial";
      case RunStatus::Skipped: return "skipped";
      case RunStatus::TooLarge: return "too_large";
      case RunStatus::Failed: return "failed";
    }
    return "?";
}

constexpr const char *
toString(FailureCause cause)
{
    switch (cause) {
      case FailureCause::None: return "none";
      case FailureCause::TransientFault: return "transient_fault";
      case FailureCause::QueueTimeout: return "queue_timeout";
      case FailureCause::DeadlineExceeded: return "deadline_exceeded";
      case FailureCause::AttemptsExhausted: return "attempts_exhausted";
      case FailureCause::ShotTruncation: return "shot_truncation";
      case FailureCause::MissingMidCircuitMeasurement:
          return "missing_mid_circuit_measurement";
      case FailureCause::RegisterTooWide: return "register_too_wide";
      case FailureCause::SimulatorLimit: return "simulator_limit";
      case FailureCause::Internal: return "internal";
      case FailureCause::Interrupted: return "interrupted";
      case FailureCause::ResourceExhausted: return "resource_exhausted";
      case FailureCause::StorageError: return "storage_error";
    }
    return "?";
}

/** Compact cause tag for table cells ("-" for None). */
constexpr const char *
causeToken(FailureCause cause)
{
    switch (cause) {
      case FailureCause::None: return "-";
      case FailureCause::TransientFault: return "transient";
      case FailureCause::QueueTimeout: return "queue";
      case FailureCause::DeadlineExceeded: return "deadline";
      case FailureCause::AttemptsExhausted: return "attempts";
      case FailureCause::ShotTruncation: return "shots";
      case FailureCause::MissingMidCircuitMeasurement: return "no-mcm";
      case FailureCause::RegisterTooWide: return "register";
      case FailureCause::SimulatorLimit: return "simulator";
      case FailureCause::Internal: return "internal";
      case FailureCause::Interrupted: return "interrupted";
      case FailureCause::ResourceExhausted: return "memory";
      case FailureCause::StorageError: return "storage";
    }
    return "?";
}

} // namespace smq::core

#endif // SMQ_CORE_STATUS_HPP
