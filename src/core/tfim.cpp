#include "core/tfim.hpp"

#include <cmath>
#include <stdexcept>

#include "stats/rng.hpp"

namespace smq::core {

void
applyTfim(const std::vector<double> &x, std::vector<double> &y,
          std::size_t n, double j, double h, Boundary boundary)
{
    if (n < 2 || n > 24)
        throw std::invalid_argument("applyTfim: 2 <= n <= 24");
    const std::size_t dim = std::size_t{1} << n;
    if (x.size() != dim || y.size() != dim)
        throw std::invalid_argument("applyTfim: dimension mismatch");

    const std::size_t bonds = boundary == Boundary::Open ? n - 1 : n;
    for (std::size_t s = 0; s < dim; ++s) {
        // diagonal: -J sum Z_i Z_{i+1}
        double diag = 0.0;
        for (std::size_t b = 0; b < bonds; ++b) {
            std::size_t i = b;
            std::size_t k = (b + 1) % n;
            bool same = (((s >> i) ^ (s >> k)) & 1) == 0;
            diag += same ? -j : j;
        }
        y[s] = diag * x[s];
    }
    // off-diagonal: -h sum X_i
    for (std::size_t q = 0; q < n; ++q) {
        const std::size_t mask = std::size_t{1} << q;
        for (std::size_t s = 0; s < dim; ++s)
            y[s] -= h * x[s ^ mask];
    }
}

namespace {

/**
 * Smallest eigenvalue of a symmetric tridiagonal matrix (diagonal a,
 * off-diagonal b) by Sturm-sequence bisection.
 */
double
tridiagonalSmallestEigenvalue(const std::vector<double> &a,
                              const std::vector<double> &b)
{
    const std::size_t m = a.size();
    // Gershgorin bounds
    double lo = a[0], hi = a[0];
    for (std::size_t i = 0; i < m; ++i) {
        double radius = (i > 0 ? std::abs(b[i - 1]) : 0.0) +
                        (i + 1 < m ? std::abs(b[i]) : 0.0);
        lo = std::min(lo, a[i] - radius);
        hi = std::max(hi, a[i] + radius);
    }
    // count of eigenvalues < lambda via the Sturm sequence
    auto count_below = [&](double lambda) {
        std::size_t count = 0;
        double d = 1.0;
        for (std::size_t i = 0; i < m; ++i) {
            double off = i > 0 ? b[i - 1] : 0.0;
            d = a[i] - lambda - (off * off) / (d == 0.0 ? 1e-300 : d);
            if (d < 0.0)
                ++count;
        }
        return count;
    };
    for (int iter = 0; iter < 200; ++iter) {
        double mid = 0.5 * (lo + hi);
        if (count_below(mid) >= 1)
            hi = mid;
        else
            lo = mid;
        if (hi - lo < 1e-13 * std::max(1.0, std::abs(hi)))
            break;
    }
    return 0.5 * (lo + hi);
}

} // namespace

double
tfimGroundEnergyLanczos(std::size_t n, double j, double h,
                        Boundary boundary, std::size_t max_iters,
                        double tol)
{
    const std::size_t dim = std::size_t{1} << n;
    stats::Rng rng(7);

    std::vector<std::vector<double>> basis; // Lanczos vectors
    std::vector<double> alpha, beta;

    std::vector<double> v(dim);
    for (double &x : v)
        x = rng.gaussian();
    double norm = 0.0;
    for (double x : v)
        norm += x * x;
    norm = std::sqrt(norm);
    for (double &x : v)
        x /= norm;

    std::vector<double> w(dim);
    double previous = 1e300;
    std::size_t stagnant = 0; // consecutive sub-tolerance improvements
    for (std::size_t it = 0; it < max_iters; ++it) {
        basis.push_back(v);
        applyTfim(v, w, n, j, h, boundary);

        double a = 0.0;
        for (std::size_t s = 0; s < dim; ++s)
            a += v[s] * w[s];
        alpha.push_back(a);

        // w <- w - a v - beta v_prev, then full reorthogonalisation
        for (std::size_t s = 0; s < dim; ++s)
            w[s] -= a * v[s];
        if (!beta.empty()) {
            const std::vector<double> &prev = basis[basis.size() - 2];
            for (std::size_t s = 0; s < dim; ++s)
                w[s] -= beta.back() * prev[s];
        }
        for (const std::vector<double> &u : basis) {
            double proj = 0.0;
            for (std::size_t s = 0; s < dim; ++s)
                proj += u[s] * w[s];
            for (std::size_t s = 0; s < dim; ++s)
                w[s] -= proj * u[s];
        }

        double b = 0.0;
        for (double x : w)
            b += x * x;
        b = std::sqrt(b);

        double energy = tridiagonalSmallestEigenvalue(alpha, beta);
        // Lanczos Ritz values can plateau before converging; demand
        // several consecutive sub-tolerance improvements.
        stagnant = std::abs(energy - previous) < tol ? stagnant + 1 : 0;
        if (stagnant >= 5 || b < 1e-12)
            return energy;
        previous = energy;

        beta.push_back(b);
        for (std::size_t s = 0; s < dim; ++s)
            v[s] = w[s] / b;
    }
    return previous;
}

double
tfimGroundEnergyExact(std::size_t n, double j, double h)
{
    if (n < 2)
        throw std::invalid_argument("tfimGroundEnergyExact: n >= 2");
    double total = 0.0;
    for (std::size_t m = 0; m < n; ++m) {
        double k = (2.0 * static_cast<double>(m) + 1.0) * M_PI /
                   static_cast<double>(n);
        total += 2.0 * std::sqrt(j * j + h * h - 2.0 * j * h * std::cos(k));
    }
    return -0.5 * total;
}

} // namespace smq::core
