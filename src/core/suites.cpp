#include "core/suites.hpp"

#include <cctype>

#include "core/coverage.hpp"

#include "core/benchmarks/error_correction.hpp"
#include "core/benchmarks/ghz.hpp"
#include "core/benchmarks/hamiltonian_simulation.hpp"
#include "core/benchmarks/mermin_bell.hpp"
#include "core/benchmarks/qaoa.hpp"
#include "core/benchmarks/vqe.hpp"
#include "qc/library.hpp"
#include "util/seed.hpp"

namespace smq::core {

namespace {

/** Fixed base seed of the shard derivation (any constant works; it
 *  only has to be the same in every process of a sharded sweep). */
constexpr std::uint64_t kShardStream = 0x5351u; // "SQ"

/** Full-token decimal parse; rejects empty/partial/overflowing. */
std::optional<std::size_t>
parseShardNumber(std::string_view text)
{
    if (text.empty())
        return std::nullopt;
    std::size_t value = 0;
    for (char c : text) {
        if (!std::isdigit(static_cast<unsigned char>(c)))
            return std::nullopt;
        if (value > (SIZE_MAX - 9) / 10)
            return std::nullopt;
        value = value * 10 + static_cast<std::size_t>(c - '0');
    }
    return value;
}

} // namespace

std::optional<ShardSpec>
parseShardSpec(std::string_view text)
{
    const std::size_t slash = text.find('/');
    if (slash == std::string_view::npos)
        return std::nullopt;
    auto index = parseShardNumber(text.substr(0, slash));
    auto count = parseShardNumber(text.substr(slash + 1));
    if (!index || !count || *count == 0 || *index >= *count)
        return std::nullopt;
    return ShardSpec{*index, *count};
}

std::size_t
shardOfCell(std::string_view benchmark, std::string_view device,
            std::size_t shardCount)
{
    if (shardCount <= 1)
        return 0;
    return static_cast<std::size_t>(
        util::labelSeed(kShardStream, device, benchmark) % shardCount);
}

bool
shardOwnsCell(const ShardSpec &shard, std::string_view benchmark,
              std::string_view device)
{
    return shardOfCell(benchmark, device, shard.count) == shard.index;
}

namespace {

FeatureVector
featuresOfBenchmark(const Benchmark &benchmark)
{
    // The coverage study characterises each benchmark by its primary
    // circuit (VQE's two circuits share the ansatz structure).
    return computeFeatures(benchmark.circuits().front());
}

std::vector<std::uint8_t>
secretBits(std::size_t n, std::uint64_t pattern)
{
    std::vector<std::uint8_t> bits(n);
    for (std::size_t i = 0; i < n; ++i)
        bits[i] = static_cast<std::uint8_t>((pattern >> (i % 64)) & 1);
    return bits;
}

} // namespace

std::vector<BenchmarkPtr>
figure2Benchmarks()
{
    std::vector<BenchmarkPtr> suite;
    // GHZ: 3..16 qubits (27q devices cap at the simulator budget)
    for (std::size_t n : {3, 5, 7, 11, 16})
        suite.push_back(std::make_unique<GhzBenchmark>(n));
    // Mermin-Bell: the hard, all-to-all benchmark stays small
    for (std::size_t n : {3, 4, 5})
        suite.push_back(std::make_unique<MerminBellBenchmark>(n));
    // error-correction proxies: (data qubits, rounds)
    suite.push_back(std::make_unique<BitCodeBenchmark>(
        BitCodeBenchmark::alternating(3, 1)));
    suite.push_back(std::make_unique<BitCodeBenchmark>(
        BitCodeBenchmark::alternating(4, 2)));
    suite.push_back(std::make_unique<BitCodeBenchmark>(
        BitCodeBenchmark::alternating(6, 2)));
    suite.push_back(std::make_unique<PhaseCodeBenchmark>(
        PhaseCodeBenchmark::alternating(3, 1)));
    suite.push_back(std::make_unique<PhaseCodeBenchmark>(
        PhaseCodeBenchmark::alternating(4, 2)));
    suite.push_back(std::make_unique<PhaseCodeBenchmark>(
        PhaseCodeBenchmark::alternating(6, 2)));
    // QAOA on SK instances
    for (std::size_t n : {4, 6, 8})
        suite.push_back(std::make_unique<QaoaVanillaBenchmark>(n, n));
    for (std::size_t n : {4, 6, 8})
        suite.push_back(std::make_unique<QaoaSwapBenchmark>(n, n));
    // VQE on the TFIM chain
    for (std::size_t n : {4, 6, 8})
        suite.push_back(std::make_unique<VqeBenchmark>(n, 1));
    // Hamiltonian simulation: (qubits, Trotter steps)
    suite.push_back(
        std::make_unique<HamiltonianSimulationBenchmark>(4, 3));
    suite.push_back(
        std::make_unique<HamiltonianSimulationBenchmark>(6, 4));
    suite.push_back(
        std::make_unique<HamiltonianSimulationBenchmark>(8, 5));
    return suite;
}

std::vector<BenchmarkPtr>
quickSuite()
{
    std::vector<BenchmarkPtr> suite;
    suite.push_back(std::make_unique<GhzBenchmark>(4));
    suite.push_back(std::make_unique<MerminBellBenchmark>(3));
    suite.push_back(std::make_unique<BitCodeBenchmark>(
        BitCodeBenchmark::alternating(3, 1)));
    suite.push_back(std::make_unique<PhaseCodeBenchmark>(
        PhaseCodeBenchmark::alternating(3, 1)));
    suite.push_back(std::make_unique<QaoaVanillaBenchmark>(4, 3));
    suite.push_back(std::make_unique<QaoaSwapBenchmark>(4, 3));
    suite.push_back(std::make_unique<VqeBenchmark>(4, 1));
    suite.push_back(
        std::make_unique<HamiltonianSimulationBenchmark>(4, 2));
    return suite;
}

std::vector<FeatureVector>
supermarqFeaturePoints()
{
    std::vector<FeatureVector> points;

    // 52 instances across the eight applications, sizes 2..1000 and
    // varied round/step/layer parameters (matching the paper's count).
    for (std::size_t n : {2, 3, 5, 10, 50, 100, 500, 1000})
        points.push_back(featuresOfBenchmark(GhzBenchmark(n)));
    for (std::size_t n : {2, 3, 4, 5, 6, 8, 10, 12})
        points.push_back(featuresOfBenchmark(MerminBellBenchmark(n)));
    for (auto [d, r] : std::vector<std::pair<std::size_t, std::size_t>>{
             {2, 1}, {2, 8}, {3, 8}, {11, 2}, {251, 3}, {500, 4}}) {
        points.push_back(featuresOfBenchmark(
            BitCodeBenchmark::alternating(d, r)));
    }
    for (auto [d, r] : std::vector<std::pair<std::size_t, std::size_t>>{
             {2, 1}, {2, 8}, {3, 8}, {11, 2}, {251, 3}, {500, 4}}) {
        points.push_back(featuresOfBenchmark(
            PhaseCodeBenchmark::alternating(d, r)));
    }
    for (std::size_t n : {2, 4, 10, 30, 100})
        points.push_back(featuresOfBenchmark(
            QaoaVanillaBenchmark(n, n, /*optimize=*/false)));
    for (std::size_t n : {2, 4, 10, 30, 100})
        points.push_back(featuresOfBenchmark(
            QaoaSwapBenchmark(n, n, /*optimize=*/false)));
    for (std::size_t n : {4, 10, 100, 1000})
        points.push_back(featuresOfBenchmark(
            VqeBenchmark(n, 1, /*optimize=*/false)));
    for (std::size_t n : {4, 50})
        points.push_back(featuresOfBenchmark(
            VqeBenchmark(n, 4, /*optimize=*/false)));
    for (auto [n, s] : std::vector<std::pair<std::size_t, std::size_t>>{
             {4, 3},   {10, 4},   {30, 4}, {100, 5},
             {300, 5}, {1000, 6}, {6, 1},  {50, 12}}) {
        points.push_back(featuresOfBenchmark(
            HamiltonianSimulationBenchmark(n, s)));
    }
    return points; // 8 + 8 + 6 + 6 + 5 + 5 + 6 + 8 = 52 instances
}

std::vector<FeatureVector>
qasmbenchProxyFeaturePoints()
{
    namespace lib = qc::library;
    std::vector<qc::Circuit> circuits;
    stats::Rng rng(99);

    for (std::size_t n : {2, 3, 4, 5, 8, 12, 16, 24, 50, 100, 433, 1000})
        circuits.push_back(lib::ghzLadder(n));
    for (std::size_t n : {3, 4, 5, 8, 12, 16, 32, 64})
        circuits.push_back(lib::qft(n));
    for (std::size_t n : {3, 5, 8, 14, 19, 30})
        circuits.push_back(lib::bernsteinVazirani(secretBits(n, 0x5a5a5)));
    for (std::size_t n : {1, 2, 4, 8, 16, 32})
        circuits.push_back(lib::cuccaroAdder(n));
    circuits.push_back(lib::grover(3, {1, 0, 1}, 2));
    circuits.push_back(lib::grover(5, {1, 0, 1, 1, 0}, 3));
    circuits.push_back(lib::grover(8, {1, 0, 1, 1, 0, 0, 1, 0}, 4));
    for (std::size_t n : {3, 5, 10, 20, 60})
        circuits.push_back(lib::wState(n));
    for (std::size_t n : {4, 6, 10, 20})
        circuits.push_back(lib::hiddenShift(secretBits(n, 0x33c3)));
    for (std::size_t n : {3, 5, 9, 15})
        circuits.push_back(lib::toffoliChain(n));
    for (std::size_t n : {4, 8, 16})
        circuits.push_back(lib::randomLayered(n, n, rng));
    for (std::size_t n : {2, 5, 10})
        circuits.push_back(lib::swapTest(n));
    for (std::size_t r : {3, 6, 10})
        circuits.push_back(lib::iterativePhaseEstimation(r));
    for (std::size_t n : {3, 5})
        circuits.push_back(lib::quantumPhaseEstimation(n));
    circuits.push_back(lib::deutschJozsa(4, false));
    circuits.push_back(lib::deutschJozsa(6, true));
    circuits.push_back(lib::deutschJozsa(10, true));

    return featuresOfCircuits(circuits); // 62 kernels
}

std::vector<FeatureVector>
syntheticFeaturePoints()
{
    std::vector<FeatureVector> points;
    points.push_back(FeatureVector{}); // the trivial program
    for (std::size_t axis = 0; axis < 6; ++axis) {
        FeatureVector f;
        double *fields[6] = {&f.communication, &f.criticalDepth,
                             &f.entanglement,  &f.parallelism,
                             &f.liveness,      &f.measurement};
        *fields[axis] = 1.0;
        points.push_back(f);
    }
    return points;
}

std::vector<FeatureVector>
triqProxyFeaturePoints()
{
    namespace lib = qc::library;
    std::vector<qc::Circuit> circuits;
    // the small NISQ kernels evaluated by TriQ (bv, qft, toffoli,
    // fredkin, or/peres-style reversible logic, adders, hidden shift)
    circuits.push_back(lib::bernsteinVazirani(secretBits(3, 0b101)));
    circuits.push_back(lib::bernsteinVazirani(secretBits(4, 0b1101)));
    circuits.push_back(lib::qft(2));
    circuits.push_back(lib::qft(4));
    circuits.push_back(lib::toffoliChain(3));
    {
        qc::Circuit fredkin(3, 3, "fredkin");
        fredkin.x(0).x(1);
        fredkin.cswap(0, 1, 2);
        fredkin.measureAll();
        circuits.push_back(fredkin);
    }
    {
        qc::Circuit peres(3, 3, "peres");
        peres.ccx(0, 1, 2);
        peres.cx(0, 1);
        peres.measureAll();
        circuits.push_back(peres);
    }
    {
        qc::Circuit or_gate(3, 1, "or");
        or_gate.x(0);
        or_gate.x(1);
        or_gate.ccx(0, 1, 2);
        or_gate.x(0);
        or_gate.x(1);
        or_gate.x(2);
        or_gate.measure(2, 0);
        circuits.push_back(or_gate);
    }
    circuits.push_back(lib::cuccaroAdder(1));
    circuits.push_back(lib::cuccaroAdder(2));
    circuits.push_back(lib::hiddenShift(secretBits(2, 0b11)));
    circuits.push_back(lib::ghzLadder(4));
    return featuresOfCircuits(circuits);
}

std::vector<FeatureVector>
pplProxyFeaturePoints()
{
    namespace lib = qc::library;
    std::vector<qc::Circuit> circuits;
    circuits.push_back(lib::ghzLadder(3));
    circuits.push_back(lib::wState(3));
    circuits.push_back(lib::bernsteinVazirani(secretBits(3, 0b110)));
    circuits.push_back(lib::qft(3));
    circuits.push_back(lib::toffoliChain(3));
    circuits.push_back(lib::hiddenShift(secretBits(4, 0b1001)));
    circuits.push_back(lib::cuccaroAdder(1));
    circuits.push_back(lib::qft(5));
    circuits.push_back(lib::ghzLadder(5));
    return featuresOfCircuits(circuits);
}

std::vector<FeatureVector>
cbgProxyFeaturePoints(std::size_t count)
{
    // Shallow structured family: H layer + nearest-neighbour CZ brick
    // + RZ layer, repeated; instances sweep width and bricks. A small
    // fraction uses an ancilla measure+reset round, giving the family
    // a thin measurement extent (hence tiny but nonzero volume).
    std::vector<qc::Circuit> circuits;
    std::size_t idx = 0;
    for (std::size_t n = 2; circuits.size() < count; ++n) {
        if (n > 30)
            n = 2;
        for (std::size_t bricks = 1; bricks <= 4 && circuits.size() < count;
             ++bricks, ++idx) {
            qc::Circuit c(n, n, "cbg_" + std::to_string(idx));
            for (std::size_t q = 0; q < n; ++q)
                c.h(static_cast<qc::Qubit>(q));
            for (std::size_t b = 0; b < bricks; ++b) {
                for (std::size_t q = b % 2; q + 1 < n; q += 2)
                    c.cz(static_cast<qc::Qubit>(q),
                         static_cast<qc::Qubit>(q + 1));
                for (std::size_t q = 0; q < n; ++q)
                    c.rz(0.1 + 0.05 * static_cast<double>(b + q),
                         static_cast<qc::Qubit>(q));
            }
            if (idx % 17 == 0 && n >= 3) {
                c.measure(0, 0);
                c.reset(0);
                c.h(0);
            }
            c.measureAll();
            circuits.push_back(std::move(c));
        }
    }
    return featuresOfCircuits(circuits);
}

} // namespace smq::core
