/**
 * @file
 * Initial qubit placement (layout) passes.
 *
 * The Closed Division allows "noise-aware qubit mapping" (paper
 * Sec. V); with device-level uniform calibration this reduces to
 * connectivity-aware placement: put heavily interacting logical qubits
 * on tightly coupled physical qubits to minimise later SWAP insertion.
 */

#ifndef SMQ_TRANSPILE_LAYOUT_HPP
#define SMQ_TRANSPILE_LAYOUT_HPP

#include <vector>

#include "device/topology.hpp"
#include "qc/circuit.hpp"

namespace smq::transpile {

/** How initial placement is chosen. */
enum class LayoutStrategy {
    Trivial,      ///< logical i -> physical i
    Connectivity, ///< greedy subgraph match by interaction degree
};

/**
 * Choose an initial layout: result[logical] = physical.
 * @pre circuit.numQubits() <= topology.numQubits()
 */
std::vector<std::size_t> chooseLayout(const qc::Circuit &circuit,
                                      const device::Topology &topology,
                                      LayoutStrategy strategy);

} // namespace smq::transpile

#endif // SMQ_TRANSPILE_LAYOUT_HPP
