/**
 * @file
 * Process-wide transpilation memoization.
 *
 * The pipeline is deterministic: the same (circuit, device, options)
 * triple always produces the same TranspileResult. The Fig. 2 / 3 / 4
 * regenerators and the perf harness nonetheless re-run it for
 * identical inputs (serial-vs-parallel comparisons, repeated sweeps,
 * shared benchmark instances), so results are memoized behind a
 * content key. The cache is thread-safe; concurrent misses for the
 * same key both compute and arrive at identical results, so whichever
 * insert wins is correct.
 */

#ifndef SMQ_TRANSPILE_CACHE_HPP
#define SMQ_TRANSPILE_CACHE_HPP

#include <cstddef>

#include "transpile/transpiler.hpp"

namespace smq::transpile {

/** Hit/miss counters for tests and perf reporting. */
struct CacheStats
{
    std::size_t hits = 0;
    std::size_t misses = 0;
};

/**
 * transpile() with memoization. The key covers the device identity
 * (name, size, coupling-edge count), every TranspileOptions knob, and
 * the exact gate content of the circuit (full-precision parameters).
 */
TranspileResult cachedTranspile(const qc::Circuit &circuit,
                                const device::Device &device,
                                const TranspileOptions &options = {});

/** Counters since process start (or the last clear). */
CacheStats transpileCacheStats();

/** Drop all memoized results and reset the counters. */
void clearTranspileCache();

} // namespace smq::transpile

#endif // SMQ_TRANSPILE_CACHE_HPP
