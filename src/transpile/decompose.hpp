/**
 * @file
 * Lowering pass: rewrite every gate into {one-qubit gates, CX}.
 *
 * Routing and gate-cancellation operate on this normal form; native
 * translation afterwards maps CX onto each platform's entangler.
 */

#ifndef SMQ_TRANSPILE_DECOMPOSE_HPP
#define SMQ_TRANSPILE_DECOMPOSE_HPP

#include "qc/circuit.hpp"

namespace smq::transpile {

/**
 * Rewrite @p circuit so that every unitary instruction is either a
 * one-qubit gate or a CX. MEASURE / RESET / BARRIER pass through.
 */
qc::Circuit decomposeToCx(const qc::Circuit &circuit);

/** Append the {1q, CX} expansion of one gate to @p out. */
void appendDecomposed(qc::Circuit &out, const qc::Gate &gate);

} // namespace smq::transpile

#endif // SMQ_TRANSPILE_DECOMPOSE_HPP
