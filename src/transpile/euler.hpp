/**
 * @file
 * One-qubit unitary decompositions (Euler angles).
 *
 * Used by the 1q-fusion pass (merge adjacent gates, re-synthesise) and
 * by native-gate translation (ZYZ for ion/AQT bases, ZXZXZ with sqrt-X
 * for the IBM basis).
 */

#ifndef SMQ_TRANSPILE_EULER_HPP
#define SMQ_TRANSPILE_EULER_HPP

#include <vector>

#include "qc/gate.hpp"
#include "sim/gate_matrices.hpp"

namespace smq::transpile {

/** ZYZ Euler angles: U = e^{i alpha} RZ(phi) RY(theta) RZ(lambda). */
struct EulerAngles
{
    double theta = 0.0;
    double phi = 0.0;
    double lambda = 0.0;
    double alpha = 0.0; ///< global phase
};

/** Decompose any 2x2 unitary into ZYZ Euler angles. */
EulerAngles zyzDecompose(const sim::Matrix2 &u);

/**
 * Gates realising @p u (up to global phase) in the {RZ, RY} basis, in
 * execution order. Near-identity matrices yield an empty sequence;
 * zero rotations are omitted.
 */
std::vector<qc::Gate> synthesizeZYZ(const sim::Matrix2 &u, qc::Qubit q,
                                    double tolerance = 1e-9);

/**
 * Gates realising @p u (up to global phase) in the IBM {RZ, SX} basis
 * (RZ SX RZ SX RZ), in execution order; pure-diagonal matrices yield a
 * single RZ.
 */
std::vector<qc::Gate> synthesizeZXZXZ(const sim::Matrix2 &u, qc::Qubit q,
                                      double tolerance = 1e-9);

/** The 2x2 unitary of a (possibly composite) 1q gate sequence applied
 *  in order. */
sim::Matrix2 sequenceMatrix(const std::vector<qc::Gate> &gates);

} // namespace smq::transpile

#endif // SMQ_TRANSPILE_EULER_HPP
