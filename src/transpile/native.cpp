#include "transpile/native.hpp"

#include <cmath>
#include <stdexcept>

#include "sim/gate_matrices.hpp"
#include "transpile/euler.hpp"

namespace smq::transpile {

namespace {

constexpr double kPi = 3.14159265358979323846;

void
appendNative1q(qc::Circuit &out, const qc::Gate &gate,
               device::NativeFamily family)
{
    sim::Matrix2 m = sim::gateMatrix1(gate);
    std::vector<qc::Gate> seq;
    if (family == device::NativeFamily::IBM)
        seq = synthesizeZXZXZ(m, gate.qubits[0]);
    else
        seq = synthesizeZYZ(m, gate.qubits[0]);
    for (qc::Gate &g : seq)
        out.append(std::move(g));
}

/** CX in the ion basis: RY/RXX/RX sandwich around RXX(pi/2). */
void
appendIonCx(qc::Circuit &out, qc::Qubit c, qc::Qubit t)
{
    out.ry(kPi / 2.0, c);
    out.rxx(kPi / 2.0, c, t);
    out.rx(-kPi / 2.0, c);
    out.rx(-kPi / 2.0, t);
    out.ry(-kPi / 2.0, c);
}

/** CX in the AQT basis: CZ conjugated by RY on the target
 *  (CX = (I x RY(pi/2)) CZ (I x RY(-pi/2)) exactly, since the Z
 *  factors of H = RY(pi/2) Z commute through CZ). */
void
appendAqtCx(qc::Circuit &out, qc::Qubit c, qc::Qubit t)
{
    out.ry(-kPi / 2.0, t);
    out.cz(c, t);
    out.ry(kPi / 2.0, t);
}

void
appendNativeCx(qc::Circuit &out, qc::Qubit c, qc::Qubit t,
               device::NativeFamily family)
{
    switch (family) {
      case device::NativeFamily::IBM:
        out.cx(c, t);
        return;
      case device::NativeFamily::ION:
        appendIonCx(out, c, t);
        return;
      case device::NativeFamily::AQT:
        appendAqtCx(out, c, t);
        return;
    }
    throw std::logic_error("appendNativeCx: unknown family");
}

} // namespace

bool
isNativeGate(const qc::Gate &gate, device::NativeFamily family)
{
    using qc::GateType;
    switch (family) {
      case device::NativeFamily::IBM:
        return gate.type == GateType::RZ || gate.type == GateType::SX ||
               gate.type == GateType::X || gate.type == GateType::CX;
      case device::NativeFamily::ION:
        return gate.type == GateType::RX || gate.type == GateType::RY ||
               gate.type == GateType::RZ || gate.type == GateType::RXX;
      case device::NativeFamily::AQT:
        return gate.type == GateType::RX || gate.type == GateType::RY ||
               gate.type == GateType::RZ || gate.type == GateType::CZ;
    }
    return false;
}

qc::Circuit
translateToNative(const qc::Circuit &circuit, device::NativeFamily family)
{
    qc::Circuit out(circuit.numQubits(), circuit.numClbits(),
                    circuit.name());
    for (const qc::Gate &g : circuit.gates()) {
        if (g.type == qc::GateType::BARRIER ||
            g.type == qc::GateType::MEASURE ||
            g.type == qc::GateType::RESET) {
            out.append(g);
            continue;
        }
        if (isNativeGate(g, family)) {
            out.append(g);
            continue;
        }
        if (g.qubits.size() == 1) {
            appendNative1q(out, g, family);
            continue;
        }
        if (g.type == qc::GateType::CX) {
            appendNativeCx(out, g.qubits[0], g.qubits[1], family);
            continue;
        }
        if (g.type == qc::GateType::SWAP) {
            appendNativeCx(out, g.qubits[0], g.qubits[1], family);
            appendNativeCx(out, g.qubits[1], g.qubits[0], family);
            appendNativeCx(out, g.qubits[0], g.qubits[1], family);
            continue;
        }
        throw std::invalid_argument(
            "translateToNative: unexpected gate " + qc::gateName(g.type) +
            " (run decomposeToCx + route first)");
    }
    return out;
}

} // namespace smq::transpile
