/**
 * @file
 * Native-gate translation.
 *
 * The last transpiler stage: rewrite the routed {1q, CX, SWAP} circuit
 * into each platform's native vocabulary (paper Sec. III-A(3): the
 * compiler must be free to exploit the hardware's own gate set).
 *
 *  - IBM superconducting: {RZ, SX, X} + CX
 *  - Trapped ion (IonQ): {RX, RY, RZ} + RXX(pi/2) (Molmer-Sorensen)
 *  - AQT superconducting: {RX, RY, RZ} + CZ
 */

#ifndef SMQ_TRANSPILE_NATIVE_HPP
#define SMQ_TRANSPILE_NATIVE_HPP

#include "device/device.hpp"
#include "qc/circuit.hpp"

namespace smq::transpile {

/**
 * Rewrite all gates into the family's native set. Input must contain
 * only 1q unitaries, CX, SWAP, MEASURE, RESET, BARRIER.
 */
qc::Circuit translateToNative(const qc::Circuit &circuit,
                              device::NativeFamily family);

/** True when a gate is native to the family. */
bool isNativeGate(const qc::Gate &gate, device::NativeFamily family);

} // namespace smq::transpile

#endif // SMQ_TRANSPILE_NATIVE_HPP
