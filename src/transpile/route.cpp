#include "transpile/route.hpp"

#include <limits>
#include <stdexcept>

namespace smq::transpile {

namespace {

/** Number of upcoming 2q gates considered by the lookahead. */
constexpr std::size_t kLookahead = 5;

} // namespace

RoutingResult
route(const qc::Circuit &circuit, const device::Topology &topology,
      const std::vector<std::size_t> &initial_layout)
{
    std::size_t n_logical = circuit.numQubits();
    std::size_t n_physical = topology.numQubits();
    if (initial_layout.size() != n_logical)
        throw std::invalid_argument("route: layout size mismatch");
    if (n_logical > n_physical)
        throw std::invalid_argument("route: circuit larger than device");
    if (!topology.connectedGraph())
        throw std::invalid_argument("route: disconnected topology");

    std::vector<std::size_t> l2p = initial_layout;
    constexpr std::size_t unset = std::numeric_limits<std::size_t>::max();
    std::vector<std::size_t> p2l(n_physical, unset);
    for (std::size_t l = 0; l < n_logical; ++l) {
        if (l2p[l] >= n_physical || p2l[l2p[l]] != unset)
            throw std::invalid_argument("route: invalid layout");
        p2l[l2p[l]] = l;
    }

    // Pre-collect the logical 2q gate sequence for lookahead costs.
    const auto &gates = circuit.gates();
    std::vector<std::pair<qc::Qubit, qc::Qubit>> future_pairs;
    std::vector<std::size_t> future_index_of_gate(gates.size(), 0);
    for (std::size_t i = 0; i < gates.size(); ++i) {
        future_index_of_gate[i] = future_pairs.size();
        if (gates[i].isUnitary() && gates[i].qubits.size() == 2)
            future_pairs.emplace_back(gates[i].qubits[0],
                                      gates[i].qubits[1]);
    }

    RoutingResult result;
    result.circuit = qc::Circuit(n_physical, circuit.numClbits(),
                                 circuit.name());
    result.initialLayout = initial_layout;

    auto lookahead_cost = [&](std::size_t from_future) {
        double cost = 0.0;
        double weight = 1.0;
        std::size_t end =
            std::min(future_pairs.size(), from_future + kLookahead);
        for (std::size_t k = from_future; k < end; ++k) {
            cost += weight * static_cast<double>(topology.distance(
                                 l2p[future_pairs[k].first],
                                 l2p[future_pairs[k].second]));
            weight *= 0.7;
        }
        return cost;
    };

    auto update_maps = [&](std::size_t pa, std::size_t pb) {
        std::size_t la = p2l[pa], lb = p2l[pb];
        if (la != unset)
            l2p[la] = pb;
        if (lb != unset)
            l2p[lb] = pa;
        std::swap(p2l[pa], p2l[pb]);
    };
    auto do_swap = [&](std::size_t pa, std::size_t pb) {
        result.circuit.swap(static_cast<qc::Qubit>(pa),
                            static_cast<qc::Qubit>(pb));
        ++result.swapsInserted;
        update_maps(pa, pb);
    };

    for (std::size_t i = 0; i < gates.size(); ++i) {
        const qc::Gate &g = gates[i];
        if (g.type == qc::GateType::BARRIER) {
            if (g.qubits.empty()) {
                result.circuit.barrier();
            } else {
                // Targeted fence: carry the operands through the
                // current layout so it fences the same logical qubits.
                std::vector<qc::Qubit> fenced;
                fenced.reserve(g.qubits.size());
                for (qc::Qubit q : g.qubits)
                    fenced.push_back(static_cast<qc::Qubit>(l2p[q]));
                result.circuit.barrier(std::move(fenced));
            }
            continue;
        }
        if (g.qubits.size() > 2)
            throw std::invalid_argument(
                "route: decompose to <=2 qubit gates first");
        if (g.qubits.size() <= 1 || !g.isUnitary()) {
            qc::Gate mapped = g;
            for (qc::Qubit &q : mapped.qubits)
                q = static_cast<qc::Qubit>(l2p[q]);
            result.circuit.append(std::move(mapped));
            continue;
        }

        // two-qubit gate: swap until adjacent
        qc::Qubit la = g.qubits[0], lb = g.qubits[1];
        while (!topology.coupled(l2p[la], l2p[lb])) {
            std::size_t pa = l2p[la], pb = l2p[lb];
            std::vector<std::size_t> path = topology.shortestPath(pa, pb);
            // option A: move la one hop toward lb; option B: reverse
            std::size_t step_a = path[1];
            std::size_t step_b = path[path.size() - 2];

            // probe both options on the mapping only
            update_maps(pa, step_a);
            double cost_a = lookahead_cost(future_index_of_gate[i]);
            update_maps(pa, step_a); // undo

            update_maps(pb, step_b);
            double cost_b = lookahead_cost(future_index_of_gate[i]);
            update_maps(pb, step_b); // undo

            if (cost_a <= cost_b)
                do_swap(pa, step_a);
            else
                do_swap(pb, step_b);
        }
        qc::Gate mapped = g;
        mapped.qubits[0] = static_cast<qc::Qubit>(l2p[la]);
        mapped.qubits[1] = static_cast<qc::Qubit>(l2p[lb]);
        result.circuit.append(std::move(mapped));
    }

    result.finalLayout = l2p;
    return result;
}

} // namespace smq::transpile
