#include "transpile/cache.hpp"

#include <cstdio>
#include <mutex>
#include <unordered_map>

#include "obs/metrics.hpp"
#include "obs/names.hpp"

namespace smq::transpile {

namespace {

std::mutex g_mutex;
std::unordered_map<std::string, TranspileResult> g_cache;
CacheStats g_stats;

void
appendGate(std::string &key, const qc::Gate &g)
{
    char buf[40];
    key += std::to_string(static_cast<int>(g.type));
    for (qc::Qubit q : g.qubits) {
        key += ',';
        key += std::to_string(q);
    }
    for (double p : g.params) {
        // hex float: exact round trip, no precision-collision risk
        std::snprintf(buf, sizeof buf, ";%a", p);
        key += buf;
    }
    if (g.cbit >= 0) {
        key += '>';
        key += std::to_string(g.cbit);
    }
    key += '|';
}

std::string
makeKey(const qc::Circuit &circuit, const device::Device &device,
        const TranspileOptions &options)
{
    std::string key;
    key.reserve(64 + circuit.gates().size() * 12);
    key += device.name;
    key += '\x1f';
    key += std::to_string(device.numQubits());
    key += ':';
    key += std::to_string(device.topology.numEdges());
    key += '\x1f';
    key += std::to_string(static_cast<int>(options.layout));
    key += options.optimize ? 'o' : '-';
    key += options.toNativeGates ? 'n' : '-';
    key += std::to_string(static_cast<int>(options.division));
    key += '\x1f';
    key += std::to_string(circuit.numQubits());
    key += ':';
    key += std::to_string(circuit.numClbits());
    key += '\x1f';
    for (const qc::Gate &g : circuit.gates())
        appendGate(key, g);
    return key;
}

} // namespace

TranspileResult
cachedTranspile(const qc::Circuit &circuit, const device::Device &device,
                const TranspileOptions &options)
{
    static obs::Counter &hit_counter =
        obs::counter(obs::names::kTranspileCacheHit);
    static obs::Counter &miss_counter =
        obs::counter(obs::names::kTranspileCacheMiss);

    std::string key = makeKey(circuit, device, options);
    {
        std::lock_guard<std::mutex> lock(g_mutex);
        auto it = g_cache.find(key);
        if (it != g_cache.end()) {
            ++g_stats.hits;
            hit_counter.add();
            return it->second;
        }
        ++g_stats.misses;
        miss_counter.add();
    }
    TranspileResult result = transpile(circuit, device, options);
    {
        std::lock_guard<std::mutex> lock(g_mutex);
        g_cache.emplace(std::move(key), result);
    }
    return result;
}

CacheStats
transpileCacheStats()
{
    std::lock_guard<std::mutex> lock(g_mutex);
    return g_stats;
}

void
clearTranspileCache()
{
    std::lock_guard<std::mutex> lock(g_mutex);
    g_cache.clear();
    g_stats = CacheStats{};
}

} // namespace smq::transpile
