#include "transpile/transpiler.hpp"

#include <limits>

#include "transpile/decompose.hpp"
#include "transpile/native.hpp"
#include "transpile/optimize.hpp"
#include "transpile/route.hpp"

namespace smq::transpile {

TranspileResult
transpile(const qc::Circuit &circuit, const device::Device &device,
          const TranspileOptions &options)
{
    qc::Circuit working = decomposeToCx(circuit);
    if (options.optimize) {
        working = fuseSingleQubitGates(working);
        working = cancelAdjacentGates(working);
        if (options.division == Division::Open)
            working = commutationAwareCancellation(working);
    }

    std::vector<std::size_t> layout =
        chooseLayout(working, device.topology, options.layout);
    RoutingResult routed = route(working, device.topology, layout);

    qc::Circuit physical = decomposeToCx(routed.circuit); // expand SWAPs
    if (options.optimize) {
        physical = cancelAdjacentGates(physical);
        if (options.division == Division::Open)
            physical = commutationAwareCancellation(physical);
        physical = fuseSingleQubitGates(physical);
    }
    if (options.toNativeGates) {
        physical = translateToNative(physical, device.family);
        if (options.optimize)
            physical = cancelAdjacentGates(physical);
    }

    TranspileResult result;
    result.circuit = std::move(physical);
    result.initialLayout = std::move(routed.initialLayout);
    result.finalLayout = std::move(routed.finalLayout);
    result.swapsInserted = routed.swapsInserted;
    result.twoQubitGateCount = result.circuit.multiQubitGateCount();
    return result;
}

std::pair<qc::Circuit, std::vector<std::size_t>>
compactCircuit(const qc::Circuit &circuit)
{
    constexpr std::size_t unset = std::numeric_limits<std::size_t>::max();
    std::vector<std::size_t> mapping(circuit.numQubits(), unset);
    std::size_t next = 0;
    for (const qc::Gate &g : circuit.gates()) {
        for (qc::Qubit q : g.qubits) {
            if (mapping[q] == unset)
                mapping[q] = next++;
        }
    }
    qc::Circuit compact(next, circuit.numClbits(), circuit.name());
    for (const qc::Gate &g : circuit.gates()) {
        qc::Gate mapped = g;
        for (qc::Qubit &q : mapped.qubits)
            q = static_cast<qc::Qubit>(mapping[q]);
        compact.append(std::move(mapped));
    }
    return {std::move(compact), std::move(mapping)};
}

} // namespace smq::transpile
