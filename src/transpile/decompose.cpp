#include "transpile/decompose.hpp"

#include <cmath>
#include <stdexcept>

namespace smq::transpile {

namespace {

constexpr double kPi = 3.14159265358979323846;

void
appendSwapAsCx(qc::Circuit &out, qc::Qubit a, qc::Qubit b)
{
    out.cx(a, b);
    out.cx(b, a);
    out.cx(a, b);
}

void
appendCcx(qc::Circuit &out, qc::Qubit a, qc::Qubit b, qc::Qubit t)
{
    // standard 6-CX Toffoli
    out.h(t);
    out.cx(b, t);
    out.tdg(t);
    out.cx(a, t);
    out.t(t);
    out.cx(b, t);
    out.tdg(t);
    out.cx(a, t);
    out.t(b);
    out.t(t);
    out.h(t);
    out.cx(a, b);
    out.t(a);
    out.tdg(b);
    out.cx(a, b);
}

} // namespace

void
appendDecomposed(qc::Circuit &out, const qc::Gate &gate)
{
    using qc::GateType;
    switch (gate.type) {
      case GateType::BARRIER:
      case GateType::MEASURE:
      case GateType::RESET:
        out.append(gate);
        return;
      case GateType::CX:
        out.append(gate);
        return;
      case GateType::CY:
        out.sdg(gate.qubits[1]);
        out.cx(gate.qubits[0], gate.qubits[1]);
        out.s(gate.qubits[1]);
        return;
      case GateType::CZ:
        out.h(gate.qubits[1]);
        out.cx(gate.qubits[0], gate.qubits[1]);
        out.h(gate.qubits[1]);
        return;
      case GateType::CH: {
        // H = V X V^dg with V = RY(-pi/4) (H and X share eigenvalues
        // +/-1), so CH = (I x V) CX (I x V^dg) exactly.
        qc::Qubit c = gate.qubits[0], t = gate.qubits[1];
        out.ry(kPi / 4.0, t);
        out.cx(c, t);
        out.ry(-kPi / 4.0, t);
        return;
      }
      case GateType::CP: {
        double lambda = gate.params[0];
        qc::Qubit c = gate.qubits[0], t = gate.qubits[1];
        out.p(lambda / 2.0, c);
        out.cx(c, t);
        out.p(-lambda / 2.0, t);
        out.cx(c, t);
        out.p(lambda / 2.0, t);
        return;
      }
      case GateType::SWAP:
        appendSwapAsCx(out, gate.qubits[0], gate.qubits[1]);
        return;
      case GateType::ISWAP: {
        // iSWAP = (S x S) (H x I) CX(a,b) CX(b,a) (I x H)
        qc::Qubit a = gate.qubits[0], b = gate.qubits[1];
        out.h(b);
        out.cx(b, a);
        out.cx(a, b);
        out.h(a);
        out.s(a);
        out.s(b);
        return;
      }
      case GateType::RXX: {
        qc::Qubit a = gate.qubits[0], b = gate.qubits[1];
        out.h(a);
        out.h(b);
        out.cx(a, b);
        out.rz(gate.params[0], b);
        out.cx(a, b);
        out.h(a);
        out.h(b);
        return;
      }
      case GateType::RYY: {
        qc::Qubit a = gate.qubits[0], b = gate.qubits[1];
        out.rx(kPi / 2.0, a);
        out.rx(kPi / 2.0, b);
        out.cx(a, b);
        out.rz(gate.params[0], b);
        out.cx(a, b);
        out.rx(-kPi / 2.0, a);
        out.rx(-kPi / 2.0, b);
        return;
      }
      case GateType::RZZ: {
        qc::Qubit a = gate.qubits[0], b = gate.qubits[1];
        out.cx(a, b);
        out.rz(gate.params[0], b);
        out.cx(a, b);
        return;
      }
      case GateType::CCX:
        appendCcx(out, gate.qubits[0], gate.qubits[1], gate.qubits[2]);
        return;
      case GateType::CSWAP:
        out.cx(gate.qubits[2], gate.qubits[1]);
        appendCcx(out, gate.qubits[0], gate.qubits[1], gate.qubits[2]);
        out.cx(gate.qubits[2], gate.qubits[1]);
        return;
      default:
        // one-qubit gates pass through
        if (gate.qubits.size() == 1) {
            out.append(gate);
            return;
        }
        throw std::invalid_argument("appendDecomposed: unhandled gate " +
                                    qc::gateName(gate.type));
    }
}

qc::Circuit
decomposeToCx(const qc::Circuit &circuit)
{
    qc::Circuit out(circuit.numQubits(), circuit.numClbits(),
                    circuit.name());
    for (const qc::Gate &g : circuit.gates())
        appendDecomposed(out, g);
    return out;
}

} // namespace smq::transpile
