/**
 * @file
 * SWAP-insertion routing.
 *
 * Rewrites a {1q, CX} circuit over logical qubits into an equivalent
 * circuit over physical qubits in which every CX acts on a coupled
 * pair, inserting SWAP chains along shortest paths. The paper's
 * discussion (Sec. VI-VII) hinges on exactly this cost: mismatched
 * program/hardware connectivity burns extra 2q gates and decoheres
 * the run.
 */

#ifndef SMQ_TRANSPILE_ROUTE_HPP
#define SMQ_TRANSPILE_ROUTE_HPP

#include <vector>

#include "device/topology.hpp"
#include "qc/circuit.hpp"

namespace smq::transpile {

/** Result of routing a circuit onto a topology. */
struct RoutingResult
{
    qc::Circuit circuit;                   ///< physical-qubit circuit
    std::vector<std::size_t> initialLayout; ///< logical -> physical
    std::vector<std::size_t> finalLayout;   ///< logical -> physical
    std::size_t swapsInserted = 0;          ///< number of SWAPs added
};

/**
 * Route @p circuit (any gate set; multi-qubit gates must be 2-qubit)
 * onto @p topology starting from @p initial_layout. SWAPs are emitted
 * as SWAP gates (decompose afterwards). Lookahead: when moving the two
 * operands together, the endpoint whose move least disturbs upcoming
 * gates is preferred.
 */
RoutingResult route(const qc::Circuit &circuit,
                    const device::Topology &topology,
                    const std::vector<std::size_t> &initial_layout);

} // namespace smq::transpile

#endif // SMQ_TRANSPILE_ROUTE_HPP
