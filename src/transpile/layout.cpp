#include "transpile/layout.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "qc/interaction_graph.hpp"

namespace smq::transpile {

namespace {

std::vector<std::size_t>
trivialLayout(std::size_t logical, std::size_t physical)
{
    if (logical > physical)
        throw std::invalid_argument("layout: circuit larger than device");
    std::vector<std::size_t> layout(logical);
    for (std::size_t i = 0; i < logical; ++i)
        layout[i] = i;
    return layout;
}

/**
 * Greedy placement: repeatedly take the unplaced logical qubit with
 * the strongest connection to already-placed ones (falling back to
 * interaction degree) and put it on the free physical qubit minimising
 * total distance to the placed neighbours (tie-break: higher physical
 * degree).
 */
std::vector<std::size_t>
connectivityLayout(const qc::Circuit &circuit,
                   const device::Topology &topology)
{
    std::size_t n_logical = circuit.numQubits();
    std::size_t n_physical = topology.numQubits();
    if (n_logical > n_physical)
        throw std::invalid_argument("layout: circuit larger than device");

    qc::InteractionGraph graph(circuit);
    constexpr std::size_t unset = std::numeric_limits<std::size_t>::max();
    std::vector<std::size_t> layout(n_logical, unset);
    std::vector<bool> physical_used(n_physical, false);

    // interaction weights (edge multiplicity would be better; degree
    // suffices for the suite's structured circuits)
    auto placed_neighbors = [&](std::size_t logical) {
        std::vector<std::size_t> result;
        for (std::size_t other = 0; other < n_logical; ++other) {
            if (layout[other] != unset &&
                graph.connected(static_cast<qc::Qubit>(logical),
                                static_cast<qc::Qubit>(other))) {
                result.push_back(layout[other]);
            }
        }
        return result;
    };

    for (std::size_t step = 0; step < n_logical; ++step) {
        // pick the next logical qubit
        std::size_t best_logical = unset;
        std::size_t best_key = 0;
        for (std::size_t l = 0; l < n_logical; ++l) {
            if (layout[l] != unset)
                continue;
            // key = (#placed neighbours, total degree)
            std::size_t placed = placed_neighbors(l).size();
            std::size_t key = placed * (n_logical + 1) +
                              graph.degree(static_cast<qc::Qubit>(l));
            if (best_logical == unset || key > best_key) {
                best_logical = l;
                best_key = key;
            }
        }

        // pick its physical home
        std::vector<std::size_t> anchors = placed_neighbors(best_logical);
        std::size_t best_physical = unset;
        double best_cost = std::numeric_limits<double>::infinity();
        for (std::size_t p = 0; p < n_physical; ++p) {
            if (physical_used[p])
                continue;
            double cost = 0.0;
            for (std::size_t a : anchors)
                cost += static_cast<double>(topology.distance(p, a));
            // prefer well-connected physical qubits on ties
            cost -= 0.01 * static_cast<double>(topology.neighbors(p).size());
            if (cost < best_cost) {
                best_cost = cost;
                best_physical = p;
            }
        }
        layout[best_logical] = best_physical;
        physical_used[best_physical] = true;
    }
    return layout;
}

} // namespace

std::vector<std::size_t>
chooseLayout(const qc::Circuit &circuit, const device::Topology &topology,
             LayoutStrategy strategy)
{
    switch (strategy) {
      case LayoutStrategy::Trivial:
        return trivialLayout(circuit.numQubits(), topology.numQubits());
      case LayoutStrategy::Connectivity:
        return connectivityLayout(circuit, topology);
    }
    throw std::logic_error("chooseLayout: unknown strategy");
}

} // namespace smq::transpile
