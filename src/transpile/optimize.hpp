/**
 * @file
 * Closed-Division peephole optimisations: one-qubit gate fusion and
 * adjacent-CX cancellation (paper Sec. V allows "reordering of
 * commuting gates and cancellation of adjacent gates").
 */

#ifndef SMQ_TRANSPILE_OPTIMIZE_HPP
#define SMQ_TRANSPILE_OPTIMIZE_HPP

#include "qc/circuit.hpp"

namespace smq::transpile {

/**
 * Merge maximal runs of adjacent one-qubit gates on the same qubit
 * into a single U3 (dropped entirely when the product is the identity
 * up to phase). Multi-qubit gates, measures, resets and barriers act
 * as fences per qubit.
 */
qc::Circuit fuseSingleQubitGates(const qc::Circuit &circuit);

/**
 * Cancel adjacent self-inverse two-qubit pairs (CX/CZ/SWAP on the same
 * qubits with no intervening operation on either qubit). Repeats to a
 * fixed point.
 */
qc::Circuit cancelAdjacentGates(const qc::Circuit &circuit);

/**
 * Open-Division extension (the paper defers an "Open" benchmarking
 * division to future work, Sec. V): commutation-aware CX cancellation.
 * Two equal CX gates also cancel when separated only by gates that
 * commute with them — Z-axis rotations (RZ/Z/S/T/P) on the control,
 * X-axis rotations (RX/X/SX) on the target, and other CX gates sharing
 * the same control or the same target. Repeats to a fixed point.
 */
qc::Circuit commutationAwareCancellation(const qc::Circuit &circuit);

} // namespace smq::transpile

#endif // SMQ_TRANSPILE_OPTIMIZE_HPP
