#include "transpile/optimize.hpp"

#include <cmath>
#include <optional>

#include "sim/gate_matrices.hpp"
#include "transpile/euler.hpp"

namespace smq::transpile {

namespace {

bool
isIdentityUpToPhase(const sim::Matrix2 &m, double tol = 1e-10)
{
    if (std::abs(m[1]) > tol || std::abs(m[2]) > tol)
        return false;
    // both diagonal entries equal (same phase) => global phase only
    return std::abs(m[0] - m[3]) < tol;
}

} // namespace

qc::Circuit
fuseSingleQubitGates(const qc::Circuit &circuit)
{
    qc::Circuit out(circuit.numQubits(), circuit.numClbits(),
                    circuit.name());
    // pending[q] = accumulated 2x2 matrix awaiting emission
    std::vector<std::optional<sim::Matrix2>> pending(circuit.numQubits());

    auto flush = [&](qc::Qubit q) {
        if (!pending[q])
            return;
        const sim::Matrix2 &m = *pending[q];
        if (!isIdentityUpToPhase(m)) {
            EulerAngles e = zyzDecompose(m);
            out.u3(e.theta, e.phi, e.lambda, q);
        }
        pending[q].reset();
    };
    auto flushAll = [&]() {
        for (qc::Qubit q = 0; q < circuit.numQubits(); ++q)
            flush(q);
    };

    for (const qc::Gate &g : circuit.gates()) {
        if (g.type == qc::GateType::BARRIER) {
            flushAll();
            out.append(g);
            continue;
        }
        if (g.isUnitary() && g.qubits.size() == 1) {
            qc::Qubit q = g.qubits[0];
            sim::Matrix2 m = sim::gateMatrix1(g);
            pending[q] = pending[q] ? sim::multiply(m, *pending[q]) : m;
            continue;
        }
        for (qc::Qubit q : g.qubits)
            flush(q);
        out.append(g);
    }
    flushAll();
    return out;
}

namespace {

/** True when @p g commutes with CX(c, t) by the Open-Division rules. */
bool
commutesWithCx(const qc::Gate &g, qc::Qubit c, qc::Qubit t)
{
    using qc::GateType;
    bool touches_c = false, touches_t = false;
    for (qc::Qubit q : g.qubits) {
        touches_c |= q == c;
        touches_t |= q == t;
    }
    if (!touches_c && !touches_t)
        return true;
    if (!g.isUnitary())
        return false;
    if (g.qubits.size() == 1) {
        if (touches_c) {
            // Z-axis gates commute through the control
            return g.type == GateType::RZ || g.type == GateType::Z ||
                   g.type == GateType::S || g.type == GateType::SDG ||
                   g.type == GateType::T || g.type == GateType::TDG ||
                   g.type == GateType::P;
        }
        // X-axis gates commute through the target
        return g.type == GateType::RX || g.type == GateType::X ||
               g.type == GateType::SX || g.type == GateType::SXDG;
    }
    if (g.type == GateType::CX) {
        if (touches_c && touches_t)
            return false; // overlapping differently-oriented CX
        if (touches_c)
            return g.qubits[0] == c; // shared control commutes
        return g.qubits[1] == t;     // shared target commutes
    }
    return false;
}

} // namespace

qc::Circuit
commutationAwareCancellation(const qc::Circuit &circuit)
{
    std::vector<qc::Gate> gates(circuit.gates());
    bool changed = true;
    while (changed) {
        changed = false;
        std::vector<bool> removed(gates.size(), false);
        for (std::size_t i = 0; i < gates.size(); ++i) {
            if (removed[i] || gates[i].type != qc::GateType::CX)
                continue;
            qc::Qubit c = gates[i].qubits[0], t = gates[i].qubits[1];
            for (std::size_t j = i + 1; j < gates.size(); ++j) {
                if (removed[j])
                    continue;
                const qc::Gate &h = gates[j];
                if (h.type == qc::GateType::BARRIER)
                    break;
                if (h == gates[i]) {
                    removed[i] = removed[j] = true;
                    changed = true;
                    break;
                }
                if (!commutesWithCx(h, c, t))
                    break;
            }
        }
        if (changed) {
            std::vector<qc::Gate> next;
            next.reserve(gates.size());
            for (std::size_t i = 0; i < gates.size(); ++i) {
                if (!removed[i])
                    next.push_back(gates[i]);
            }
            gates = std::move(next);
        }
    }
    qc::Circuit out(circuit.numQubits(), circuit.numClbits(),
                    circuit.name());
    for (qc::Gate &g : gates)
        out.append(std::move(g));
    return out;
}

qc::Circuit
cancelAdjacentGates(const qc::Circuit &circuit)
{
    std::vector<qc::Gate> gates(circuit.gates());
    bool changed = true;
    while (changed) {
        changed = false;
        std::vector<bool> removed(gates.size(), false);
        // last pending self-inverse 2q gate per qubit frontier
        for (std::size_t i = 0; i < gates.size(); ++i) {
            if (removed[i])
                continue;
            const qc::Gate &g = gates[i];
            bool cancellable = g.type == qc::GateType::CX ||
                               g.type == qc::GateType::CZ ||
                               g.type == qc::GateType::SWAP;
            if (!cancellable)
                continue;
            // scan forward for the next op touching either qubit
            for (std::size_t j = i + 1; j < gates.size(); ++j) {
                if (removed[j])
                    continue;
                const qc::Gate &h = gates[j];
                if (h.type == qc::GateType::BARRIER)
                    break;
                bool touches = false;
                for (qc::Qubit q : h.qubits) {
                    if (q == g.qubits[0] || q == g.qubits[1])
                        touches = true;
                }
                if (!touches)
                    continue;
                if (h == g) {
                    removed[i] = removed[j] = true;
                    changed = true;
                }
                break;
            }
        }
        if (changed) {
            std::vector<qc::Gate> next;
            next.reserve(gates.size());
            for (std::size_t i = 0; i < gates.size(); ++i) {
                if (!removed[i])
                    next.push_back(gates[i]);
            }
            gates = std::move(next);
        }
    }
    qc::Circuit out(circuit.numQubits(), circuit.numClbits(),
                    circuit.name());
    for (qc::Gate &g : gates)
        out.append(std::move(g));
    return out;
}

} // namespace smq::transpile
