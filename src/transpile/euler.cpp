#include "transpile/euler.hpp"

#include <cmath>
#include <stdexcept>

namespace smq::transpile {

namespace {

constexpr double kPi = 3.14159265358979323846;

/** Map an angle into (-pi, pi]. */
double
wrapAngle(double a)
{
    while (a > kPi)
        a -= 2.0 * kPi;
    while (a <= -kPi)
        a += 2.0 * kPi;
    return a;
}

bool
isZeroAngle(double a, double tol)
{
    return std::abs(wrapAngle(a)) < tol;
}

} // namespace

EulerAngles
zyzDecompose(const sim::Matrix2 &u)
{
    using sim::Complex;
    Complex det = u[0] * u[3] - u[1] * u[2];
    double alpha = 0.5 * std::arg(det);
    Complex inv_phase = std::exp(Complex{0.0, -alpha});
    Complex v00 = u[0] * inv_phase;
    Complex v10 = u[2] * inv_phase;
    Complex v11 = u[3] * inv_phase;

    EulerAngles e;
    e.alpha = alpha;
    double c = std::abs(v00);
    double s = std::abs(v10);
    e.theta = 2.0 * std::atan2(s, c);

    if (s < 1e-12) {
        // diagonal: RZ(phi + lambda) only
        e.phi = 0.0;
        e.lambda = wrapAngle(2.0 * std::arg(v11));
    } else if (c < 1e-12) {
        // anti-diagonal: phi + lambda unconstrained, pick 0, so
        // phi = -lambda = (phi - lambda)/2 = arg(v10)
        e.phi = wrapAngle(std::arg(v10));
        e.lambda = wrapAngle(-e.phi);
    } else {
        double sum = 2.0 * std::arg(v11); // phi + lambda
        double diff = 2.0 * std::arg(v10); // phi - lambda
        e.phi = wrapAngle(0.5 * (sum + diff));
        e.lambda = wrapAngle(0.5 * (sum - diff));
    }
    return e;
}

std::vector<qc::Gate>
synthesizeZYZ(const sim::Matrix2 &u, qc::Qubit q, double tolerance)
{
    EulerAngles e = zyzDecompose(u);
    std::vector<qc::Gate> gates;
    if (!isZeroAngle(e.lambda, tolerance))
        gates.emplace_back(qc::GateType::RZ, std::vector<qc::Qubit>{q},
                           std::vector<double>{wrapAngle(e.lambda)});
    if (!isZeroAngle(e.theta, tolerance))
        gates.emplace_back(qc::GateType::RY, std::vector<qc::Qubit>{q},
                           std::vector<double>{wrapAngle(e.theta)});
    if (!isZeroAngle(e.phi, tolerance))
        gates.emplace_back(qc::GateType::RZ, std::vector<qc::Qubit>{q},
                           std::vector<double>{wrapAngle(e.phi)});
    return gates;
}

std::vector<qc::Gate>
synthesizeZXZXZ(const sim::Matrix2 &u, qc::Qubit q, double tolerance)
{
    EulerAngles e = zyzDecompose(u);
    std::vector<qc::Gate> gates;
    auto rz = [&](double angle) {
        if (!isZeroAngle(angle, tolerance))
            gates.emplace_back(qc::GateType::RZ, std::vector<qc::Qubit>{q},
                               std::vector<double>{wrapAngle(angle)});
    };
    auto sx = [&]() {
        gates.emplace_back(qc::GateType::SX, std::vector<qc::Qubit>{q});
    };

    if (isZeroAngle(e.theta, tolerance)) {
        rz(e.phi + e.lambda);
        return gates;
    }
    // U3(theta, phi, lambda) ~ RZ(phi+pi) SX RZ(theta+pi) SX RZ(lambda)
    rz(e.lambda);
    sx();
    rz(e.theta + kPi);
    sx();
    rz(e.phi + kPi);
    return gates;
}

sim::Matrix2
sequenceMatrix(const std::vector<qc::Gate> &gates)
{
    sim::Matrix2 m = {1.0, 0.0, 0.0, 1.0};
    for (const qc::Gate &g : gates) {
        if (g.qubits.size() != 1)
            throw std::invalid_argument(
                "sequenceMatrix: not a one-qubit gate");
        m = sim::multiply(sim::gateMatrix1(g), m);
    }
    return m;
}

} // namespace smq::transpile
