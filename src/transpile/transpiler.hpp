/**
 * @file
 * The Closed-Division transpilation pipeline.
 *
 * Mirrors the optimisation envelope the paper allows (Sec. V):
 * transpilation of OpenQASM to native gates, connectivity-aware qubit
 * mapping, SWAP insertion, commuting-gate reordering, and adjacent-
 * gate cancellation — but no pulse-level tricks or error mitigation.
 *
 * Pipeline: decomposeToCx -> fuse -> cancel -> layout -> route ->
 * decompose SWAPs -> cancel -> fuse -> native translation.
 */

#ifndef SMQ_TRANSPILE_TRANSPILER_HPP
#define SMQ_TRANSPILE_TRANSPILER_HPP

#include <vector>

#include "device/device.hpp"
#include "qc/circuit.hpp"
#include "transpile/layout.hpp"

namespace smq::transpile {

/**
 * Benchmarking division (paper Sec. V): Closed allows the cloud-level
 * optimisations only; Open additionally enables commutation-aware
 * cancellation (the paper defers the Open division to future work).
 */
enum class Division { Closed, Open };

/** Knobs for the transpilation pipeline. */
struct TranspileOptions
{
    LayoutStrategy layout = LayoutStrategy::Connectivity;
    bool optimize = true;        ///< fusion + cancellation passes
    bool toNativeGates = true;   ///< final basis translation
    Division division = Division::Closed;
};

/** Outcome of transpilation. */
struct TranspileResult
{
    qc::Circuit circuit;                    ///< over physical qubits
    std::vector<std::size_t> initialLayout; ///< logical -> physical
    std::vector<std::size_t> finalLayout;   ///< logical -> physical
    std::size_t swapsInserted = 0;
    std::size_t twoQubitGateCount = 0;      ///< after all passes
};

/** Run the full pipeline against a device. */
TranspileResult transpile(const qc::Circuit &circuit,
                          const device::Device &device,
                          const TranspileOptions &options = {});

/**
 * Drop idle qubits: relabel the qubits actually touched by gates to a
 * dense range so the simulator works on the smallest register.
 * Returns the compact circuit plus old-physical -> new index map
 * (SIZE_MAX for dropped qubits).
 */
std::pair<qc::Circuit, std::vector<std::size_t>>
compactCircuit(const qc::Circuit &circuit);

} // namespace smq::transpile

#endif // SMQ_TRANSPILE_TRANSPILER_HPP
