/**
 * @file
 * d-dimensional convex hull volume (beneath-beyond algorithm).
 *
 * The paper's coverage metric (Sec. IV-G, Table I) is the volume of
 * the convex hull of a suite's feature vectors in the 6-D feature
 * space. This module computes that volume for arbitrary dimension
 * with an incremental (beneath-beyond) hull: start from a maximal-
 * volume initial simplex, insert points one at a time, replace the
 * facets they can see. Rank-deficient point sets report volume 0 with
 * their affine rank, matching the geometric meaning of "no coverage"
 * along the missing directions.
 */

#ifndef SMQ_GEOM_HULL_HPP
#define SMQ_GEOM_HULL_HPP

#include <cstddef>
#include <vector>

#include "stats/rng.hpp"

namespace smq::geom {

/** A point in R^d. */
using Point = std::vector<double>;

/** One oriented hull facet: d vertex indices + outward halfspace. */
struct Facet
{
    std::vector<std::size_t> vertices; ///< indices into the input set
    Point normal;                      ///< outward unit normal
    double offset = 0.0;               ///< n . x <= offset inside
};

/** Result of a hull computation. */
struct HullResult
{
    double volume = 0.0;
    std::size_t affineRank = 0;       ///< affine dimension of the input
    std::vector<Facet> facets;        ///< empty when rank < d
    Point interiorPoint;              ///< a point strictly inside

    /** True when @p p lies inside or on the hull (within tolerance). */
    bool contains(const Point &p, double tolerance = 1e-9) const;
};

/**
 * Convex hull volume of @p points in R^dim.
 *
 * Near-duplicate points are merged (coordinates snapped to a grid of
 * pitch tolerance^(1/2)) before the hull is built; points within
 * @p tolerance of a facet hyperplane do not extend it. Both guards
 * keep clustered inputs (e.g. a parametric circuit family whose
 * feature vectors nearly coincide) from exploding the facet count.
 *
 * Degenerate (affinely dependent) inputs that survive the joggle
 * retries report volume 0 with a warning on stderr rather than
 * throwing, so coverage over a coplanar suite degrades gracefully.
 *
 * @param points input set (each of size dim).
 * @param tolerance geometric thickness below which points count as
 *        coplanar.
 */
HullResult convexHull(const std::vector<Point> &points, std::size_t dim,
                      double tolerance = 1e-9);

/**
 * Monte-Carlo estimate of the hull volume (bounding-box rejection
 * sampling against the facet halfspaces); cross-validates convexHull.
 */
double monteCarloVolume(const HullResult &hull,
                        const std::vector<Point> &points, std::size_t dim,
                        std::size_t samples, stats::Rng &rng);

/** Determinant of a dense square matrix (LU, partial pivoting). */
double determinant(std::vector<std::vector<double>> m);

} // namespace smq::geom

#endif // SMQ_GEOM_HULL_HPP
