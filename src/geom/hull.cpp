#include "geom/hull.hpp"

#include <algorithm>
#include <cmath>
#include <iostream>
#include <map>
#include <set>
#include <stdexcept>

namespace smq::geom {

namespace {

double
dot(const Point &a, const Point &b)
{
    double s = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i)
        s += a[i] * b[i];
    return s;
}

Point
subtract(const Point &a, const Point &b)
{
    Point out(a.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        out[i] = a[i] - b[i];
    return out;
}

double
norm(const Point &a)
{
    return std::sqrt(dot(a, a));
}

/**
 * Outward normal of the hyperplane through d points, via cofactor
 * expansion: normal[k] = (-1)^k det(edge matrix with column k removed),
 * where edges are v_i - v_0 for i = 1..d-1.
 */
Point
hyperplaneNormal(const std::vector<Point> &points,
                 const std::vector<std::size_t> &vertices, std::size_t dim)
{
    std::vector<std::vector<double>> edges(dim - 1,
                                           std::vector<double>(dim));
    for (std::size_t i = 1; i < dim; ++i)
        edges[i - 1] = subtract(points[vertices[i]], points[vertices[0]]);

    Point normal(dim, 0.0);
    for (std::size_t k = 0; k < dim; ++k) {
        std::vector<std::vector<double>> minor(
            dim - 1, std::vector<double>(dim - 1));
        for (std::size_t r = 0; r < dim - 1; ++r) {
            std::size_t cc = 0;
            for (std::size_t c = 0; c < dim; ++c) {
                if (c == k)
                    continue;
                minor[r][cc++] = edges[r][c];
            }
        }
        double cofactor = determinant(minor);
        normal[k] = (k % 2 == 0) ? cofactor : -cofactor;
    }
    return normal;
}

/** Build an oriented facet whose outward side excludes @p interior. */
Facet
makeFacet(const std::vector<Point> &points,
          std::vector<std::size_t> vertices, const Point &interior,
          std::size_t dim)
{
    Facet f;
    f.normal = hyperplaneNormal(points, vertices, dim);
    double len = norm(f.normal);
    if (len < 1e-300)
        throw std::logic_error("makeFacet: degenerate facet");
    for (double &x : f.normal)
        x /= len;
    f.offset = dot(f.normal, points[vertices[0]]);
    if (dot(f.normal, interior) > f.offset) {
        for (double &x : f.normal)
            x = -x;
        f.offset = -f.offset;
    }
    f.vertices = std::move(vertices);
    return f;
}

} // namespace

double
determinant(std::vector<std::vector<double>> m)
{
    const std::size_t n = m.size();
    double det = 1.0;
    for (std::size_t col = 0; col < n; ++col) {
        std::size_t pivot = col;
        for (std::size_t r = col + 1; r < n; ++r) {
            if (std::abs(m[r][col]) > std::abs(m[pivot][col]))
                pivot = r;
        }
        if (std::abs(m[pivot][col]) < 1e-300)
            return 0.0;
        if (pivot != col) {
            std::swap(m[pivot], m[col]);
            det = -det;
        }
        det *= m[col][col];
        for (std::size_t r = col + 1; r < n; ++r) {
            double factor = m[r][col] / m[col][col];
            for (std::size_t c = col; c < n; ++c)
                m[r][c] -= factor * m[col][c];
        }
    }
    return det;
}

bool
HullResult::contains(const Point &p, double tolerance) const
{
    if (facets.empty())
        return false;
    for (const Facet &f : facets) {
        double d = 0.0;
        for (std::size_t i = 0; i < p.size(); ++i)
            d += f.normal[i] * p[i];
        if (d > f.offset + tolerance)
            return false;
    }
    return true;
}

namespace {

/** One beneath-beyond pass; throws std::logic_error on a geometric
 *  degeneracy the tolerance did not catch. */
HullResult convexHullOnce(const std::vector<Point> &points,
                          std::size_t dim, double tolerance);

} // namespace

HullResult
convexHull(const std::vector<Point> &points, std::size_t dim,
           double tolerance)
{
    for (const Point &p : points) {
        if (p.size() != dim)
            throw std::invalid_argument("convexHull: dimension mismatch");
    }
    // Merge near-duplicates: snap to a grid a little coarser than the
    // tolerance and keep the first representative of each cell.
    const double pitch = std::max(std::sqrt(tolerance), 1e-12);
    std::set<std::vector<long long>> seen;
    std::vector<Point> unique_points;
    unique_points.reserve(points.size());
    for (const Point &p : points) {
        std::vector<long long> cell(dim);
        for (std::size_t k = 0; k < dim; ++k)
            cell[k] = static_cast<long long>(std::llround(p[k] / pitch));
        if (seen.insert(std::move(cell)).second)
            unique_points.push_back(p);
    }

    // Exact pass first; on a near-degenerate configuration (coplanar
    // ridges slipping past the tolerance) retry with a deterministic
    // joggle, exactly as qhull's QJ option does. The perturbation is
    // orders of magnitude below any feature-space scale of interest.
    double jitter = 10.0 * tolerance;
    for (int attempt = 0; attempt < 4; ++attempt) {
        std::vector<Point> working = unique_points;
        if (attempt > 0) {
            stats::Rng rng(12345 + static_cast<std::uint64_t>(attempt));
            for (Point &p : working) {
                for (double &x : p)
                    x += rng.uniform(-jitter, jitter);
            }
            jitter *= 10.0;
        }
        try {
            return convexHullOnce(working, dim, tolerance);
        } catch (const std::logic_error &) {
            continue;
        }
    }
    // Affinely dependent inputs (coplanar in dim-D) can survive every
    // joggle attempt. That is a legitimate zero-volume configuration,
    // not a caller error: report it as such so coverage computation can
    // proceed instead of aborting the whole suite.
    std::cerr << "convexHull: warning: degenerate input survived joggle; "
                 "reporting volume 0\n";
    HullResult flat;
    flat.affineRank = dim == 0 ? 0 : dim - 1;
    return flat;
}

namespace {

HullResult
convexHullOnce(const std::vector<Point> &points, std::size_t dim,
               double tolerance)
{
    HullResult result;
    if (points.size() < dim + 1)
        return result;

    // --- initial simplex by greedy Gram-Schmidt span maximisation ---
    std::vector<std::size_t> simplex;
    std::vector<Point> basis; // orthonormalised directions
    simplex.push_back(0);
    while (simplex.size() < dim + 1) {
        double best_residual = 0.0;
        std::size_t best_idx = points.size();
        Point best_vec;
        for (std::size_t i = 0; i < points.size(); ++i) {
            Point v = subtract(points[i], points[simplex[0]]);
            for (const Point &b : basis) {
                double proj = dot(v, b);
                for (std::size_t k = 0; k < dim; ++k)
                    v[k] -= proj * b[k];
            }
            double residual = norm(v);
            if (residual > best_residual) {
                best_residual = residual;
                best_idx = i;
                best_vec = v;
            }
        }
        if (best_idx == points.size() || best_residual < tolerance) {
            result.affineRank = simplex.size() - 1;
            return result; // rank-deficient: volume 0
        }
        for (double &x : best_vec)
            x /= best_residual;
        basis.push_back(std::move(best_vec));
        simplex.push_back(best_idx);
    }
    result.affineRank = dim;

    // interior point = simplex centroid
    Point interior(dim, 0.0);
    for (std::size_t idx : simplex) {
        for (std::size_t k = 0; k < dim; ++k)
            interior[k] += points[idx][k];
    }
    for (double &x : interior)
        x /= static_cast<double>(dim + 1);
    result.interiorPoint = interior;

    // simplex facets: drop each vertex in turn
    std::vector<Facet> facets;
    for (std::size_t drop = 0; drop < simplex.size(); ++drop) {
        std::vector<std::size_t> verts;
        for (std::size_t i = 0; i < simplex.size(); ++i) {
            if (i != drop)
                verts.push_back(simplex[i]);
        }
        facets.push_back(makeFacet(points, std::move(verts), interior, dim));
    }

    // --- incremental insertion ---
    std::vector<bool> in_simplex(points.size(), false);
    for (std::size_t idx : simplex)
        in_simplex[idx] = true;

    for (std::size_t p = 0; p < points.size(); ++p) {
        if (in_simplex[p])
            continue;
        std::vector<std::size_t> visible;
        for (std::size_t f = 0; f < facets.size(); ++f) {
            if (dot(facets[f].normal, points[p]) >
                facets[f].offset + tolerance) {
                visible.push_back(f);
            }
        }
        if (visible.empty())
            continue; // inside or on the hull

        // horizon ridges: (d-1)-subsets appearing exactly once among
        // the visible facets
        std::map<std::vector<std::size_t>, std::size_t> ridge_count;
        for (std::size_t f : visible) {
            const auto &verts = facets[f].vertices;
            for (std::size_t drop = 0; drop < verts.size(); ++drop) {
                std::vector<std::size_t> ridge;
                for (std::size_t i = 0; i < verts.size(); ++i) {
                    if (i != drop)
                        ridge.push_back(verts[i]);
                }
                std::sort(ridge.begin(), ridge.end());
                ++ridge_count[ridge];
            }
        }

        // delete visible facets
        std::vector<Facet> kept;
        kept.reserve(facets.size());
        std::vector<bool> is_visible(facets.size(), false);
        for (std::size_t f : visible)
            is_visible[f] = true;
        for (std::size_t f = 0; f < facets.size(); ++f) {
            if (!is_visible[f])
                kept.push_back(std::move(facets[f]));
        }
        facets = std::move(kept);

        // cone new facets over the horizon
        for (const auto &[ridge, count] : ridge_count) {
            if (count != 1)
                continue;
            std::vector<std::size_t> verts = ridge;
            verts.push_back(p);
            facets.push_back(
                makeFacet(points, std::move(verts), interior, dim));
        }
        if (facets.size() > 200000) {
            throw std::runtime_error(
                "convexHull: facet explosion (pathological input)");
        }
    }

    // --- volume: fan of simplices from the interior point ---
    double volume = 0.0;
    double factorial = 1.0;
    for (std::size_t k = 2; k <= dim; ++k)
        factorial *= static_cast<double>(k);
    for (const Facet &f : facets) {
        std::vector<std::vector<double>> edges(dim,
                                               std::vector<double>(dim));
        for (std::size_t i = 0; i < dim; ++i)
            edges[i] = subtract(points[f.vertices[i]], interior);
        volume += std::abs(determinant(edges)) / factorial;
    }
    result.volume = volume;
    result.facets = std::move(facets);
    return result;
}

} // namespace

double
monteCarloVolume(const HullResult &hull, const std::vector<Point> &points,
                 std::size_t dim, std::size_t samples, stats::Rng &rng)
{
    if (hull.facets.empty() || points.empty())
        return 0.0;
    Point lo(dim, 1e300), hi(dim, -1e300);
    for (const Point &p : points) {
        for (std::size_t k = 0; k < dim; ++k) {
            lo[k] = std::min(lo[k], p[k]);
            hi[k] = std::max(hi[k], p[k]);
        }
    }
    double box = 1.0;
    for (std::size_t k = 0; k < dim; ++k)
        box *= (hi[k] - lo[k]);
    if (box <= 0.0)
        return 0.0;

    std::size_t inside = 0;
    Point sample(dim);
    for (std::size_t s = 0; s < samples; ++s) {
        for (std::size_t k = 0; k < dim; ++k)
            sample[k] = rng.uniform(lo[k], hi[k]);
        if (hull.contains(sample))
            ++inside;
    }
    return box * static_cast<double>(inside) /
           static_cast<double>(samples);
}

} // namespace smq::geom
