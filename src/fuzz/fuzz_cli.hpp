/**
 * @file
 * Library entry point of the `smq_fuzz` tool (testable without
 * spawning a process, like report::sentinelMain).
 *
 * Exit-code contract:
 *  - 0: every oracle agreed on every case (and, when `--jobs` > 1,
 *       the serial rerun rendered a byte-identical report);
 *  - 1: at least one surviving discrepancy (shrunk repros emitted);
 *  - 2: usage error (unknown flag, malformed value).
 */

#ifndef SMQ_FUZZ_FUZZ_CLI_HPP
#define SMQ_FUZZ_FUZZ_CLI_HPP

#include <ostream>
#include <string>
#include <vector>

namespace smq::fuzz {

inline constexpr int kFuzzOk = 0;
inline constexpr int kFuzzDiscrepancy = 1;
inline constexpr int kFuzzUsage = 2;

/**
 * Run the fuzz CLI. Flags:
 *   --seed N --cases N --jobs N --clifford --min-qubits N
 *   --max-qubits N --max-gates N --no-mcm --no-shrink --out DIR
 *   --history FILE --metrics --protocol
 */
int fuzzMain(const std::vector<std::string> &args, std::ostream &out,
             std::ostream &err);

} // namespace smq::fuzz

#endif // SMQ_FUZZ_FUZZ_CLI_HPP
