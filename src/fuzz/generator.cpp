#include "fuzz/generator.hpp"

#include <algorithm>
#include <cmath>

namespace smq::fuzz {

namespace {

/** Unitary alphabet for mixed-mode fuzzing (everything but MEASURE /
 *  RESET / BARRIER, which are drawn separately). */
constexpr qc::GateType kFullAlphabet[] = {
    qc::GateType::I,     qc::GateType::X,    qc::GateType::Y,
    qc::GateType::Z,     qc::GateType::H,    qc::GateType::S,
    qc::GateType::SDG,   qc::GateType::T,    qc::GateType::TDG,
    qc::GateType::SX,    qc::GateType::SXDG, qc::GateType::RX,
    qc::GateType::RY,    qc::GateType::RZ,   qc::GateType::P,
    qc::GateType::U3,    qc::GateType::CX,   qc::GateType::CY,
    qc::GateType::CZ,    qc::GateType::CH,   qc::GateType::CP,
    qc::GateType::SWAP,  qc::GateType::ISWAP, qc::GateType::RXX,
    qc::GateType::RYY,   qc::GateType::RZZ,  qc::GateType::CCX,
    qc::GateType::CSWAP,
};

/** Exactly the gate set StabilizerSimulator::applyGate accepts. */
constexpr qc::GateType kCliffordAlphabet[] = {
    qc::GateType::I,   qc::GateType::X,    qc::GateType::Y,
    qc::GateType::Z,   qc::GateType::H,    qc::GateType::S,
    qc::GateType::SDG, qc::GateType::SX,   qc::GateType::SXDG,
    qc::GateType::CX,  qc::GateType::CY,   qc::GateType::CZ,
    qc::GateType::SWAP,
};

/** Distinct qubit operands, drawn without replacement. */
std::vector<qc::Qubit>
drawQubits(std::size_t arity, std::size_t n, stats::Rng &rng)
{
    std::vector<qc::Qubit> pool(n);
    for (std::size_t q = 0; q < n; ++q)
        pool[q] = static_cast<qc::Qubit>(q);
    std::vector<qc::Qubit> picked;
    picked.reserve(arity);
    for (std::size_t k = 0; k < arity; ++k) {
        std::size_t i = rng.index(pool.size());
        picked.push_back(pool[i]);
        pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(i));
    }
    return picked;
}

double
drawAngle(stats::Rng &rng)
{
    // Snap to a multiple of pi/4 about a third of the time so the
    // Clifford-angle special cases of the decomposition and fusion
    // paths get steady coverage.
    if (rng.bernoulli(1.0 / 3.0)) {
        return (static_cast<double>(rng.index(16)) - 8.0) * (M_PI / 4.0);
    }
    return rng.uniform(-M_PI, M_PI);
}

} // namespace

qc::Circuit
randomCircuit(const GeneratorOptions &options, stats::Rng &rng)
{
    const std::size_t span = options.maxQubits - options.minQubits + 1;
    const std::size_t n = options.minQubits + rng.index(span);
    const std::size_t gate_span = options.maxGates - options.minGates + 1;
    const std::size_t body = options.minGates + rng.index(gate_span);

    // Per-case mode draws: a mixed corpus must still feed the
    // preconditioned oracles, so a quarter of the cases go Clifford
    // (dense-vs-stabilizer) and half stay terminal-measurement only
    // (statevector-vs-density-matrix).
    const bool clifford = options.cliffordOnly || rng.bernoulli(0.25);
    const bool terminal_only = rng.bernoulli(0.5);
    const bool mcm = options.midCircuitMeasure && !terminal_only;
    const bool resets = options.resets && !terminal_only;

    qc::Circuit circuit(n, n);
    for (std::size_t i = 0; i < body; ++i) {
        const double roll = rng.uniform();
        if (mcm && roll < 0.05) {
            std::size_t q = rng.index(n);
            circuit.measure(static_cast<qc::Qubit>(q), rng.index(n));
            continue;
        }
        if (resets && roll < 0.10) {
            circuit.reset(static_cast<qc::Qubit>(rng.index(n)));
            continue;
        }
        if (options.barriers && roll < 0.15) {
            if (rng.bernoulli(0.5) || n < 2) {
                circuit.barrier();
            } else {
                // targeted fence over a random proper subset
                std::size_t width = 1 + rng.index(n - 1);
                circuit.barrier(drawQubits(width, n, rng));
            }
            continue;
        }
        qc::GateType type;
        if (clifford) {
            type = kCliffordAlphabet[rng.index(std::size(kCliffordAlphabet))];
        } else {
            type = kFullAlphabet[rng.index(std::size(kFullAlphabet))];
        }
        const std::size_t arity = qc::gateArity(type);
        if (arity > n) {
            --i; // too wide for this register; redraw
            continue;
        }
        std::vector<double> params(qc::gateParamCount(type));
        for (double &p : params)
            p = drawAngle(rng);
        circuit.append(
            qc::Gate(type, drawQubits(arity, n, rng), std::move(params)));
    }
    if (options.terminalMeasure)
        circuit.measureAll();
    return circuit;
}

} // namespace smq::fuzz
