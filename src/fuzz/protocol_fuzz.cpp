#include "fuzz/protocol_fuzz.hpp"

#include <exception>
#include <sstream>

#include "obs/json.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "stats/rng.hpp"

namespace smq::fuzz {

namespace {

/** Benchmarks the generator draws from: valid, tiny, and bogus. */
const char *const kBenchmarkPool[] = {
    "ghz_2",          "ghz_3",        "mermin_bell_2", "bit_code_3d1r",
    "hamiltonian_sim_2q1s", "ghz_0",  "ghz_999999",    "qaoa_vanilla_99",
    "not_a_benchmark", "",
};

/** Devices: mostly bogus so most valid-shaped submits stay cheap. */
const char *const kDevicePool[] = {
    "AQT", "no_such_device", "ibmq_belem", "",
};

const char *const kTypePool[] = {
    "submit", "status", "result", "cancel", "stats",
    "bogus",  "SUBMIT", "",
};

/** A structurally valid request with randomised (often bad) fields. */
std::string
generateStructured(stats::Rng &rng)
{
    std::ostringstream out;
    const char *type = kTypePool[rng.index(std::size(kTypePool))];
    out << "{\"type\":\"" << type << "\"";
    if (rng.bernoulli(0.7)) {
        out << ",\"benchmark\":\""
            << kBenchmarkPool[rng.index(std::size(kBenchmarkPool))]
            << "\"";
    }
    if (rng.bernoulli(0.7)) {
        out << ",\"device\":\""
            << kDevicePool[rng.index(std::size(kDevicePool))] << "\"";
    }
    if (rng.bernoulli(0.5))
        out << ",\"id\":\"job-" << rng.index(20) << "\"";
    if (rng.bernoulli(0.4)) {
        // Shots from benign through out-of-range to wrongly typed.
        switch (rng.index(4)) {
          case 0: out << ",\"shots\":" << (1 + rng.index(50)); break;
          case 1: out << ",\"shots\":0"; break;
          case 2: out << ",\"shots\":-7"; break;
          default: out << ",\"shots\":\"many\""; break;
        }
    }
    if (rng.bernoulli(0.3))
        out << ",\"repetitions\":" << rng.index(5);
    if (rng.bernoulli(0.3))
        out << ",\"seed\":99999999999999999999999999"; // overflows u64
    if (rng.bernoulli(0.2))
        out << ",\"faults\":" << (rng.bernoulli(0.5) ? "true" : "17");
    out << "}";
    return out.str();
}

/** Pure byte noise (printable-ish, embedded quotes and braces). */
std::string
generateNoise(stats::Rng &rng)
{
    static const char alphabet[] =
        "{}[]\",:truefalsenull0123456789.-+eE \\/x";
    std::string out;
    const std::size_t length = 1 + rng.index(60);
    for (std::size_t i = 0; i < length; ++i)
        out += alphabet[rng.index(sizeof(alphabet) - 1)];
    return out;
}

/** One corpus line: structured, mutated-structured, or noise. */
std::string
generateLine(stats::Rng &rng, std::string &previous)
{
    std::string line;
    switch (rng.index(6)) {
      case 0:
      case 1:
      case 2:
          line = generateStructured(rng);
          break;
      case 3: // truncation: valid shape cut mid-token
          line = generateStructured(rng);
          line.resize(rng.index(line.size()) + 1);
          break;
      case 4: // duplication: replay the previous line verbatim
          line = previous.empty() ? generateStructured(rng) : previous;
          break;
      default:
          line = generateNoise(rng);
          break;
    }
    previous = line;
    return line;
}

/**
 * Check one reply against the wire invariants; empty string = pass,
 * otherwise the reason it violates the protocol.
 */
std::string
checkReply(const std::string &reply, bool *ok_out)
{
    obs::JsonValue root;
    try {
        root = obs::parseJson(reply);
    } catch (const std::exception &e) {
        return std::string("reply is not valid JSON: ") + e.what();
    }
    if (root.kind != obs::JsonValue::Kind::Object)
        return "reply is not a JSON object";
    const obs::JsonValue *ok = root.find("ok");
    if (ok == nullptr || ok->kind != obs::JsonValue::Kind::Bool)
        return "reply lacks a boolean ok field";
    *ok_out = ok->boolean;
    if (ok->boolean)
        return "";
    const obs::JsonValue *code = root.find("error");
    if (code == nullptr || code->kind != obs::JsonValue::Kind::String)
        return "ok:false reply lacks a string error field";
    for (serve::ErrorCode known : serve::kAllErrorCodes) {
        if (code->text == serve::toString(known)) {
            const obs::JsonValue *message = root.find("message");
            if (message == nullptr ||
                message->kind != obs::JsonValue::Kind::String)
                return "ok:false reply lacks a string message field";
            return "";
        }
    }
    return "error code outside the documented vocabulary: " +
           code->text;
}

} // namespace

std::string
ProtocolFuzzReport::render() const
{
    std::ostringstream out;
    out << "protocol fuzz: " << casesRun << " case(s), " << okReplies
        << " ok, " << errorReplies << " well-formed error(s), "
        << failures.size() << " violation(s)\n";
    for (const std::string &failure : failures)
        out << "  " << failure << "\n";
    return out.str();
}

ProtocolFuzzReport
runProtocolFuzz(const ProtocolFuzzOptions &options)
{
    // Manual mode: no worker threads, tiny queue (exercises
    // queue_full), tiny cache. Queued work is drained with step() so
    // the corpus also covers the cached/running/done states.
    serve::ServerOptions server_options;
    server_options.autoStart = false;
    server_options.queueLimit = 4;
    server_options.cacheBytes = std::size_t(1) << 16;
    serve::Server server(server_options);

    stats::Rng rng(options.seed);
    ProtocolFuzzReport report;
    std::string previous;

    auto record = [&report](std::size_t case_index,
                            const std::string &line,
                            const std::string &reply,
                            const std::string &why) {
        std::ostringstream failure;
        failure << "case " << case_index << ": " << line << " -> "
                << reply << ": " << why;
        report.failures.push_back(failure.str());
    };

    for (std::size_t i = 0; i < options.cases; ++i) {
        const std::string line = generateLine(rng, previous);
        const std::string reply = server.handle(line);
        ++report.casesRun;

        bool ok = false;
        const std::string why = checkReply(reply, &ok);
        if (!why.empty())
            record(i, line, reply, why);
        else if (ok)
            ++report.okReplies;
        else
            ++report.errorReplies;

        // Keep the queue moving and the daemon honest: execute one
        // queued job now and then, and probe stats for liveness.
        if (rng.bernoulli(0.3))
            server.step();
        if (i % 16 == 15) {
            const std::string stats_reply =
                server.handle("{\"type\":\"stats\"}");
            bool stats_ok = false;
            const std::string stats_why =
                checkReply(stats_reply, &stats_ok);
            if (!stats_why.empty() || !stats_ok)
                record(i, "{\"type\":\"stats\"}", stats_reply,
                       stats_why.empty() ? "stats probe replied ok:false"
                                         : stats_why);
        }
    }

    // The closing handshake must also be well-formed.
    const std::string shutdown_reply =
        server.handle("{\"type\":\"shutdown\"}");
    bool shutdown_ok = false;
    const std::string shutdown_why =
        checkReply(shutdown_reply, &shutdown_ok);
    if (!shutdown_why.empty() || !shutdown_ok)
        record(options.cases, "{\"type\":\"shutdown\"}", shutdown_reply,
               shutdown_why.empty() ? "shutdown replied ok:false"
                                    : shutdown_why);
    return report;
}

} // namespace smq::fuzz
