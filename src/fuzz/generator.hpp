/**
 * @file
 * Seeded random-circuit generation for the differential fuzz harness.
 *
 * The generator draws small circuits over the full IR alphabet —
 * parameterised rotations, multi-qubit gates, mid-circuit MEASURE and
 * RESET, full-width and targeted barriers — or, in Clifford-only mode,
 * over exactly the gate set the stabilizer simulator accepts, so the
 * dense-vs-stabilizer oracle applies to every generated case. All
 * randomness comes from the caller's Rng: the same seed always yields
 * the same circuit, which is what makes failures replayable from a
 * (seed, case-index) pair alone.
 */

#ifndef SMQ_FUZZ_GENERATOR_HPP
#define SMQ_FUZZ_GENERATOR_HPP

#include <cstddef>

#include "qc/circuit.hpp"
#include "stats/rng.hpp"

namespace smq::fuzz {

/** Shape of the random circuits the fuzzer draws. */
struct GeneratorOptions
{
    std::size_t minQubits = 2;
    std::size_t maxQubits = 5;
    /** Random instructions before the terminal measurement layer. */
    std::size_t minGates = 1;
    std::size_t maxGates = 30;
    /** Restrict to the stabilizer simulator's gate set. */
    bool cliffordOnly = false;
    /** Allow mid-circuit MEASURE instructions. */
    bool midCircuitMeasure = true;
    /** Allow RESET instructions. */
    bool resets = true;
    /** Allow full-width and targeted BARRIER instructions. */
    bool barriers = true;
    /** End every circuit with measure-all (classical register = n). */
    bool terminalMeasure = true;
};

/**
 * Draw one random circuit. Parameterised gates get angles uniform in
 * (-pi, pi), sometimes snapped to multiples of pi/4 so Clifford-angle
 * edge cases are exercised; ISWAP is excluded in Clifford-only mode
 * (the tableau simulator does not accept it).
 */
qc::Circuit randomCircuit(const GeneratorOptions &options,
                          stats::Rng &rng);

} // namespace smq::fuzz

#endif // SMQ_FUZZ_GENERATOR_HPP
