/**
 * @file
 * Differential and metamorphic oracles for the fuzz harness.
 *
 * Each oracle checks one cross-cutting equivalence the suite's
 * correctness rests on:
 *
 *  1. sv-vs-dm        — statevector vs density-matrix agreement at
 *                       zero noise (terminal-measurement circuits);
 *  2. sv-vs-stab      — dense vs stabilizer-tableau distributions on
 *                       Clifford circuits, including mid-circuit
 *                       measure/reset via exact branch enumeration;
 *  3. transpile       — transpiled-vs-original output equivalence on
 *                       every device topology;
 *  4. qasm-roundtrip  — toQasm/fromQasm reproduces the exact gate
 *                       stream and the exact feature vector;
 *  5. fusion          — fusion-on vs fusion-off amplitude agreement
 *                       on the unitary part of the circuit. (The
 *                       serial-vs-`--jobs N` byte-identity half of
 *                       this oracle lives in the harness, which
 *                       compares whole rendered reports.)
 *
 * Oracles return Skip when their precondition does not hold for a
 * given case (e.g. oracle 2 on a non-Clifford circuit) so a mixed
 * corpus still drives every oracle without generating per-oracle
 * corpora.
 */

#ifndef SMQ_FUZZ_ORACLES_HPP
#define SMQ_FUZZ_ORACLES_HPP

#include <string>
#include <vector>

#include "qc/circuit.hpp"
#include "stats/counts.hpp"

namespace smq::fuzz {

/** Outcome of one oracle on one case. */
enum class OracleStatus { Pass, Skip, Fail };

struct OracleResult
{
    OracleStatus status = OracleStatus::Pass;
    /** Failure diagnosis / skip reason; empty on pass. */
    std::string detail;

    static OracleResult pass() { return {OracleStatus::Pass, ""}; }
    static OracleResult skip(std::string why)
    {
        return {OracleStatus::Skip, std::move(why)};
    }
    static OracleResult fail(std::string why)
    {
        return {OracleStatus::Fail, std::move(why)};
    }
};

/** Identifiers for the five oracles, in report order. */
enum class OracleId {
    SvVsDm = 0,
    SvVsStabilizer,
    Transpile,
    QasmRoundTrip,
    Fusion,
};

inline constexpr std::size_t kOracleCount = 5;

/** Short stable name used in reports and regression-test labels. */
const char *oracleName(OracleId id);

/**
 * Exact noiseless output distribution over the classical bits by
 * dense simulation with explicit branch enumeration at every MEASURE
 * and RESET — the mid-circuit-capable sibling of idealDistribution().
 * @throws std::runtime_error when the branch count exceeds
 *   @p max_branches (pathological measurement-heavy circuits).
 */
stats::Distribution
exactDenseDistribution(const qc::Circuit &circuit,
                       std::size_t max_branches = 4096);

/**
 * Exact output distribution of a Clifford circuit by stabilizer
 * simulation, enumerating both branches of every random measurement
 * with StabilizerSimulator::measureForced.
 * @throws std::invalid_argument on non-Clifford gates,
 *   std::runtime_error on branch explosion.
 */
stats::Distribution
exactStabilizerDistribution(const qc::Circuit &circuit,
                            std::size_t max_branches = 4096);

/// @name The five oracles
/// @{
OracleResult oracleSvVsDm(const qc::Circuit &circuit);
OracleResult oracleSvVsStabilizer(const qc::Circuit &circuit);
OracleResult oracleTranspile(const qc::Circuit &circuit);
OracleResult oracleQasmRoundTrip(const qc::Circuit &circuit);
OracleResult oracleFusion(const qc::Circuit &circuit);
/// @}

/** Dispatch by id (the harness iterates over all five). */
OracleResult runOracle(OracleId id, const qc::Circuit &circuit);

} // namespace smq::fuzz

#endif // SMQ_FUZZ_ORACLES_HPP
