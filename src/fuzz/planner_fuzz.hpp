/**
 * @file
 * Planner-vs-forced-backend differential oracle (`smq_fuzz
 * --planner`).
 *
 * The circuit oracles answer "do the simulators agree"; this one
 * answers "is the backend planner's choice faithful and pure". A
 * seeded corpus of random circuits (mixed Clifford/universal, with
 * and without mid-circuit operations, under noiseless and noisy
 * models) is pushed through sim::run() twice per case:
 *
 *   1. identity — running with backend Auto and re-running with the
 *      planner's own choice forced via --backend must produce
 *      byte-identical histograms from the same seed (the plan record
 *      is a faithful account of what actually executed);
 *   2. fidelity — on cases where an exact reference distribution is
 *      computable (branch-enumerated dense for noiseless circuits,
 *      the density-matrix closed form for small terminal noisy ones),
 *      the Auto histogram's total-variation distance from the
 *      reference must stay under a sampling-noise bound.
 *
 * Deterministic: corpus and report depend only on the seed, so a
 * failing (seed, case-index) pair is a complete repro.
 */

#ifndef SMQ_FUZZ_PLANNER_FUZZ_HPP
#define SMQ_FUZZ_PLANNER_FUZZ_HPP

#include <cstdint>
#include <string>
#include <vector>

namespace smq::fuzz {

struct PlannerFuzzOptions
{
    std::uint64_t seed = 1;
    std::size_t cases = 100; ///< random circuits drawn
    std::uint64_t shots = 4096;
    /**
     * TVD ceiling for the fidelity oracle. The default leaves ~3x
     * headroom over the expected multinomial fluctuation at the
     * default shots for the widest generated register.
     */
    double tvdBound = 0.12;
};

struct PlannerFuzzReport
{
    std::size_t casesRun = 0;
    std::size_t identityChecks = 0;
    std::size_t fidelityChecks = 0;
    std::size_t fidelitySkips = 0; ///< no computable exact reference
    /** Executions per chosen engine, keyed by plan token. */
    std::vector<std::string> planTokensSeen;
    /** Violations: "case N [plan]: <why>". */
    std::vector<std::string> failures;

    bool clean() const { return failures.empty(); }

    /** Deterministic human-readable summary. */
    std::string render() const;
};

/** Run the planner oracle over a fresh seeded corpus. */
PlannerFuzzReport runPlannerFuzz(const PlannerFuzzOptions &options);

} // namespace smq::fuzz

#endif // SMQ_FUZZ_PLANNER_FUZZ_HPP
