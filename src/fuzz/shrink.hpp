/**
 * @file
 * Delta-debugging minimiser for failing fuzz cases.
 *
 * Given a circuit that makes some predicate fail (an oracle
 * discrepancy, usually), shrink() searches for a smaller circuit that
 * still fails, using three passes iterated to a fixpoint:
 *
 *  - drop-gate: ddmin-style chunk removal over the instruction list,
 *    halving chunk sizes down to single instructions;
 *  - drop-qubit: remove every instruction touching one qubit and
 *    compact the register;
 *  - param-snap: replace gate angles by the nearest multiple of pi/4
 *    (and by 0), which turns noisy real-valued repros into readable
 *    ones.
 *
 * The predicate must be deterministic; the whole search is, too, so a
 * failing (seed, case) pair always shrinks to the same repro. The
 * predicate-evaluation budget bounds worst-case work.
 */

#ifndef SMQ_FUZZ_SHRINK_HPP
#define SMQ_FUZZ_SHRINK_HPP

#include <cstddef>
#include <functional>

#include "qc/circuit.hpp"

namespace smq::fuzz {

/** True when the candidate still reproduces the failure. Predicates
 *  must swallow their own exceptions (the shrinker treats a throwing
 *  predicate as "does not reproduce"). */
using FailurePredicate = std::function<bool(const qc::Circuit &)>;

struct ShrinkResult
{
    qc::Circuit circuit;          ///< smallest failing circuit found
    std::size_t predicateCalls = 0;
    std::size_t rounds = 0;       ///< fixpoint iterations
};

/**
 * Minimise @p circuit while @p still_fails holds. Returns the input
 * unchanged when nothing smaller fails (or the budget is exhausted).
 * @pre still_fails(circuit) is true.
 */
ShrinkResult shrink(const qc::Circuit &circuit,
                    const FailurePredicate &still_fails,
                    std::size_t max_predicate_calls = 2000);

} // namespace smq::fuzz

#endif // SMQ_FUZZ_SHRINK_HPP
