#include "fuzz/shrink.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace smq::fuzz {

namespace {

qc::Circuit
withGates(const qc::Circuit &like, const std::vector<qc::Gate> &gates)
{
    qc::Circuit out(like.numQubits(), like.numClbits(), like.name());
    for (const qc::Gate &g : gates)
        out.append(g);
    return out;
}

/** Run the predicate, treating exceptions as "does not reproduce". */
bool
check(const FailurePredicate &still_fails, const qc::Circuit &candidate,
      std::size_t &calls)
{
    ++calls;
    try {
        return still_fails(candidate);
    } catch (...) {
        return false;
    }
}

/** ddmin-style chunk removal over the instruction list. */
bool
dropGatesPass(qc::Circuit &best, const FailurePredicate &still_fails,
              std::size_t &calls, std::size_t budget)
{
    bool shrunk = false;
    std::vector<qc::Gate> gates = best.gates();
    for (std::size_t chunk = std::max<std::size_t>(gates.size() / 2, 1);
         chunk >= 1; chunk /= 2) {
        std::size_t i = 0;
        while (i < gates.size() && calls < budget) {
            std::vector<qc::Gate> candidate;
            candidate.reserve(gates.size());
            candidate.insert(candidate.end(), gates.begin(),
                             gates.begin() + static_cast<std::ptrdiff_t>(i));
            std::size_t end = std::min(gates.size(), i + chunk);
            candidate.insert(candidate.end(),
                             gates.begin() + static_cast<std::ptrdiff_t>(end),
                             gates.end());
            qc::Circuit trial = withGates(best, candidate);
            if (check(still_fails, trial, calls)) {
                gates = std::move(candidate);
                best = withGates(best, gates);
                shrunk = true;
                // stay at i: the next chunk slid into this position
            } else {
                i += chunk;
            }
        }
        if (chunk == 1)
            break;
    }
    return shrunk;
}

/** Remove one qubit entirely and compact the register. */
bool
dropQubitPass(qc::Circuit &best, const FailurePredicate &still_fails,
              std::size_t &calls, std::size_t budget)
{
    bool shrunk = false;
    bool retry = true;
    while (retry && best.numQubits() > 1 && calls < budget) {
        retry = false;
        for (qc::Qubit victim = 0; victim < best.numQubits(); ++victim) {
            std::vector<qc::Gate> gates;
            for (const qc::Gate &g : best.gates()) {
                qc::Gate mapped = g;
                if (g.type == qc::GateType::BARRIER) {
                    mapped.qubits.clear();
                    for (qc::Qubit q : g.qubits) {
                        if (q != victim)
                            mapped.qubits.push_back(q > victim ? q - 1 : q);
                    }
                    // a targeted fence reduced to nothing is dropped
                    if (!g.qubits.empty() && mapped.qubits.empty())
                        continue;
                } else {
                    bool touches = false;
                    for (qc::Qubit q : g.qubits)
                        touches = touches || q == victim;
                    if (touches)
                        continue;
                    for (qc::Qubit &q : mapped.qubits)
                        q = q > victim ? q - 1 : q;
                }
                gates.push_back(std::move(mapped));
            }
            qc::Circuit trial(best.numQubits() - 1, best.numClbits(),
                              best.name());
            for (qc::Gate &g : gates)
                trial.append(std::move(g));
            if (check(still_fails, trial, calls)) {
                best = std::move(trial);
                shrunk = true;
                retry = best.numQubits() > 1;
                break;
            }
            if (calls >= budget)
                break;
        }
    }
    return shrunk;
}

/** Snap angles to 0 or the nearest multiple of pi/4. */
bool
paramSnapPass(qc::Circuit &best, const FailurePredicate &still_fails,
              std::size_t &calls, std::size_t budget)
{
    bool shrunk = false;
    std::vector<qc::Gate> gates = best.gates();
    for (std::size_t i = 0; i < gates.size() && calls < budget; ++i) {
        for (std::size_t p = 0; p < gates[i].params.size(); ++p) {
            const double original = gates[i].params[p];
            const double snapped =
                std::round(original / (M_PI / 4.0)) * (M_PI / 4.0);
            for (double candidate : {0.0, snapped}) {
                if (candidate == original || calls >= budget)
                    continue;
                gates[i].params[p] = candidate;
                qc::Circuit trial = withGates(best, gates);
                if (check(still_fails, trial, calls)) {
                    best = std::move(trial);
                    shrunk = true;
                    break;
                }
                gates[i].params[p] = original;
            }
        }
    }
    return shrunk;
}

} // namespace

ShrinkResult
shrink(const qc::Circuit &circuit, const FailurePredicate &still_fails,
       std::size_t max_predicate_calls)
{
    ShrinkResult result;
    result.circuit = circuit;
    bool changed = true;
    while (changed && result.predicateCalls < max_predicate_calls) {
        ++result.rounds;
        changed = false;
        changed |= dropGatesPass(result.circuit, still_fails,
                                 result.predicateCalls,
                                 max_predicate_calls);
        changed |= dropQubitPass(result.circuit, still_fails,
                                 result.predicateCalls,
                                 max_predicate_calls);
        changed |= paramSnapPass(result.circuit, still_fails,
                                 result.predicateCalls,
                                 max_predicate_calls);
    }
    return result;
}

} // namespace smq::fuzz
