#include "fuzz/oracles.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "core/features.hpp"
#include "device/device.hpp"
#include "qc/qasm.hpp"
#include "sim/density_matrix.hpp"
#include "sim/fusion.hpp"
#include "sim/kernels.hpp"
#include "sim/runner.hpp"
#include "sim/stabilizer.hpp"
#include "sim/statevector.hpp"
#include "stats/hellinger.hpp"
#include "transpile/transpiler.hpp"

namespace smq::fuzz {

namespace {

/** Distribution mass below which branches/keys are pruned, matching
 *  idealDistribution's cutoff. */
constexpr double kMassCutoff = 1e-15;

/** Agreement tolerance on probabilities between exact backends. */
constexpr double kProbTolerance = 1e-9;

/** Largest |p - q| over the union of both key sets. */
double
maxProbabilityGap(const stats::Distribution &a, const stats::Distribution &b,
                  std::string *worst_key)
{
    double gap = 0.0;
    auto scan = [&](const stats::Distribution &lhs,
                    const stats::Distribution &rhs) {
        for (const auto &[key, p] : lhs.map()) {
            double d = std::abs(p - rhs.probability(key));
            if (d > gap) {
                gap = d;
                if (worst_key)
                    *worst_key = key;
            }
        }
    };
    scan(a, b);
    scan(b, a);
    return gap;
}

std::string
gapDetail(const std::string &what, double gap, const std::string &key)
{
    std::ostringstream out;
    out << what << ": max probability gap " << gap << " at key '" << key
        << "'";
    return out.str();
}

/** Bit-pattern equality (distinguishes -0.0 / 0.0, unlike ==). */
bool
bitEqual(const std::complex<double> &a, const std::complex<double> &b)
{
    return std::memcmp(&a, &b, sizeof(a)) == 0;
}

} // namespace

const char *
oracleName(OracleId id)
{
    switch (id) {
      case OracleId::SvVsDm:        return "sv-vs-dm";
      case OracleId::SvVsStabilizer: return "sv-vs-stab";
      case OracleId::Transpile:     return "transpile";
      case OracleId::QasmRoundTrip: return "qasm-roundtrip";
      case OracleId::Fusion:        return "fusion";
    }
    return "unknown";
}

stats::Distribution
exactDenseDistribution(const qc::Circuit &circuit, std::size_t max_branches)
{
    struct Branch
    {
        sim::StateVector state;
        double weight;
        std::string clbits;
    };
    std::vector<Branch> branches;
    branches.push_back({sim::StateVector(circuit.numQubits()), 1.0,
                        std::string(circuit.numClbits(), '0')});

    for (const qc::Gate &g : circuit.gates()) {
        if (g.type == qc::GateType::BARRIER)
            continue;
        if (g.type == qc::GateType::MEASURE ||
            g.type == qc::GateType::RESET) {
            std::vector<Branch> next;
            next.reserve(branches.size() * 2);
            const std::size_t q = g.qubits[0];
            for (Branch &b : branches) {
                for (int outcome = 0; outcome < 2; ++outcome) {
                    sim::StateVector state = b.state;
                    double p = state.project(q, outcome);
                    if (b.weight * p < kMassCutoff)
                        continue;
                    std::string clbits = b.clbits;
                    if (g.type == qc::GateType::MEASURE) {
                        clbits[static_cast<std::size_t>(g.cbit)] =
                            outcome ? '1' : '0';
                    } else if (outcome == 1) {
                        // RESET: flip the projected |1> branch to |0>
                        state.applyGate(qc::Gate(
                            qc::GateType::X,
                            {static_cast<qc::Qubit>(q)}));
                    }
                    next.push_back({std::move(state), b.weight * p,
                                    std::move(clbits)});
                }
            }
            branches = std::move(next);
            if (branches.size() > max_branches)
                throw std::runtime_error(
                    "exactDenseDistribution: branch explosion");
            continue;
        }
        for (Branch &b : branches)
            b.state.applyGate(g);
    }

    stats::Distribution dist;
    for (const Branch &b : branches)
        dist.add(b.clbits, b.weight);
    return dist;
}

stats::Distribution
exactStabilizerDistribution(const qc::Circuit &circuit,
                            std::size_t max_branches)
{
    struct Branch
    {
        sim::StabilizerSimulator state;
        double weight;
        std::string clbits;
    };
    std::vector<Branch> branches;
    branches.push_back({sim::StabilizerSimulator(circuit.numQubits()), 1.0,
                        std::string(circuit.numClbits(), '0')});

    for (const qc::Gate &g : circuit.gates()) {
        if (g.type == qc::GateType::BARRIER)
            continue;
        if (g.type == qc::GateType::MEASURE ||
            g.type == qc::GateType::RESET) {
            std::vector<Branch> next;
            next.reserve(branches.size() * 2);
            const std::size_t q = g.qubits[0];
            for (Branch &b : branches) {
                for (int outcome = 0; outcome < 2; ++outcome) {
                    sim::StabilizerSimulator state = b.state;
                    double p = state.measureForced(q, outcome);
                    if (b.weight * p < kMassCutoff)
                        continue;
                    std::string clbits = b.clbits;
                    if (g.type == qc::GateType::MEASURE) {
                        clbits[static_cast<std::size_t>(g.cbit)] =
                            outcome ? '1' : '0';
                    } else if (outcome == 1) {
                        state.applyGate(qc::Gate(
                            qc::GateType::X,
                            {static_cast<qc::Qubit>(q)}));
                    }
                    next.push_back({std::move(state), b.weight * p,
                                    std::move(clbits)});
                }
            }
            branches = std::move(next);
            if (branches.size() > max_branches)
                throw std::runtime_error(
                    "exactStabilizerDistribution: branch explosion");
            continue;
        }
        for (Branch &b : branches)
            b.state.applyGate(g);
    }

    stats::Distribution dist;
    for (const Branch &b : branches)
        dist.add(b.clbits, b.weight);
    return dist;
}

OracleResult
oracleSvVsDm(const qc::Circuit &circuit)
{
    if (circuit.measureCount() == 0)
        return OracleResult::skip("no measurements");
    if (sim::hasMidCircuitOperations(circuit))
        return OracleResult::skip("mid-circuit operations (DM is "
                                  "terminal-measurement only)");
    stats::Distribution sv = sim::idealDistribution(circuit);
    stats::Distribution dm =
        sim::noisyDistribution(circuit, sim::NoiseModel::ideal());
    std::string key;
    double gap = maxProbabilityGap(sv, dm, &key);
    if (gap > kProbTolerance)
        return OracleResult::fail(gapDetail("sv vs dm", gap, key));
    return OracleResult::pass();
}

OracleResult
oracleSvVsStabilizer(const qc::Circuit &circuit)
{
    if (!sim::isCliffordCircuit(circuit))
        return OracleResult::skip("non-Clifford circuit");
    if (circuit.measureCount() == 0)
        return OracleResult::skip("no measurements");
    stats::Distribution sv, stab;
    try {
        sv = exactDenseDistribution(circuit);
        stab = exactStabilizerDistribution(circuit);
    } catch (const std::runtime_error &e) {
        return OracleResult::skip(e.what());
    }
    std::string key;
    double gap = maxProbabilityGap(sv, stab, &key);
    if (gap > kProbTolerance)
        return OracleResult::fail(gapDetail("sv vs stabilizer", gap, key));
    return OracleResult::pass();
}

OracleResult
oracleTranspile(const qc::Circuit &circuit)
{
    if (circuit.measureCount() == 0)
        return OracleResult::skip("no measurements");
    stats::Distribution reference;
    try {
        reference = exactDenseDistribution(circuit);
    } catch (const std::runtime_error &e) {
        return OracleResult::skip(e.what());
    }
    for (const device::Device &dev : device::allDevices()) {
        if (circuit.numQubits() > dev.numQubits())
            continue;
        qc::Circuit compact;
        try {
            transpile::TranspileResult t = transpile::transpile(circuit, dev);
            compact = transpile::compactCircuit(t.circuit).first;
        } catch (const std::exception &e) {
            return OracleResult::fail(std::string("transpile threw on ") +
                                      dev.name + ": " + e.what());
        }
        stats::Distribution routed;
        try {
            routed = exactDenseDistribution(compact);
        } catch (const std::runtime_error &e) {
            return OracleResult::skip(std::string(e.what()) + " on " +
                                      dev.name);
        }
        // Gate decompositions accumulate rounding across many matrix
        // products, so the transpiled distribution agrees to ~1e-7,
        // not the exact-backend 1e-9.
        std::string key;
        double gap = maxProbabilityGap(reference, routed, &key);
        if (gap > 1e-7) {
            return OracleResult::fail(
                gapDetail("original vs transpiled on " + dev.name, gap,
                          key));
        }
    }
    return OracleResult::pass();
}

OracleResult
oracleQasmRoundTrip(const qc::Circuit &circuit)
{
    qc::Circuit parsed;
    try {
        parsed = qc::fromQasm(qc::toQasm(circuit));
    } catch (const std::exception &e) {
        return OracleResult::fail(std::string("round-trip threw: ") +
                                  e.what());
    }
    if (parsed.numQubits() != circuit.numQubits() ||
        parsed.numClbits() != circuit.numClbits()) {
        return OracleResult::fail("register sizes changed");
    }
    if (parsed.gates() != circuit.gates()) {
        std::size_t limit =
            std::min(parsed.size(), circuit.size());
        std::size_t at = limit;
        for (std::size_t i = 0; i < limit; ++i) {
            if (!(parsed.gates()[i] == circuit.gates()[i])) {
                at = i;
                break;
            }
        }
        std::ostringstream out;
        out << "gate stream diverges at instruction " << at << " ("
            << circuit.size() << " -> " << parsed.size() << " gates)";
        if (at < limit) {
            out << ": '" << circuit.gates()[at].toString() << "' vs '"
                << parsed.gates()[at].toString() << "'";
        }
        return OracleResult::fail(out.str());
    }
    core::FeatureVector before = core::computeFeatures(circuit);
    core::FeatureVector after = core::computeFeatures(parsed);
    const std::pair<const char *, std::pair<double, double>> axes[] = {
        {"communication", {before.communication, after.communication}},
        {"criticalDepth", {before.criticalDepth, after.criticalDepth}},
        {"entanglement", {before.entanglement, after.entanglement}},
        {"parallelism", {before.parallelism, after.parallelism}},
        {"liveness", {before.liveness, after.liveness}},
        {"measurement", {before.measurement, after.measurement}},
    };
    for (const auto &[axis, values] : axes) {
        if (values.first != values.second) {
            std::ostringstream out;
            out << "feature '" << axis << "' changed: " << values.first
                << " -> " << values.second;
            return OracleResult::fail(out.str());
        }
    }
    return OracleResult::pass();
}

OracleResult
oracleFusion(const qc::Circuit &circuit)
{
    // Unitary part only: fusion is defined over runs of unitary gates.
    qc::Circuit unitary(circuit.numQubits());
    for (const qc::Gate &g : circuit.gates()) {
        if (g.isUnitary())
            unitary.append(g);
    }
    if (unitary.empty())
        return OracleResult::skip("no unitary gates");
    sim::StateVector fused(circuit.numQubits());
    fused.applyUnitaryCircuit(unitary); // fuses single-qubit runs
    sim::StateVector plain(circuit.numQubits());
    for (const qc::Gate &g : unitary.gates())
        plain.applyGate(g);
    double gap = 0.0;
    std::size_t at = 0;
    for (std::size_t i = 0; i < fused.dimension(); ++i) {
        double d = std::abs(fused.amplitude(i) - plain.amplitude(i));
        if (d > gap) {
            gap = d;
            at = i;
        }
    }
    // Fused products reorder floating-point operations; demand
    // agreement well below anything a shot-level consumer can see.
    if (gap > 1e-10) {
        std::ostringstream out;
        out << "fusion-on vs fusion-off: amplitude gap " << gap
            << " at basis state " << at;
        return OracleResult::fail(out.str());
    }

    // Intra-op kernel threading sweep: force the size threshold to 1 so
    // every gate application takes the parallel code path, and demand
    // the result stays byte-identical to a strictly serial run.
    {
        sim::kernels::KernelConfigGuard guard;
        sim::kernels::setKernelThreshold(1);

        sim::kernels::setKernelJobs(1);
        sim::StateVector serial_sv(circuit.numQubits());
        serial_sv.applyUnitaryCircuit(unitary);
        sim::DensityMatrix serial_dm(circuit.numQubits());
        for (const qc::Gate &g : unitary.gates())
            serial_dm.applyGate(g);
        const bool clifford = sim::isCliffordCircuit(unitary);
        sim::StabilizerSimulator serial_stab(circuit.numQubits());
        if (clifford) {
            for (const qc::Gate &g : unitary.gates())
                serial_stab.applyGate(g);
        }

        sim::kernels::setForceParallel(true);
        for (std::size_t jobs : {std::size_t{2}, std::size_t{4}}) {
            sim::kernels::setKernelJobs(jobs);

            sim::StateVector par_sv(circuit.numQubits());
            par_sv.applyUnitaryCircuit(unitary);
            for (std::size_t i = 0; i < par_sv.dimension(); ++i) {
                if (!bitEqual(par_sv.amplitude(i), serial_sv.amplitude(i))) {
                    std::ostringstream out;
                    out << "intra-op threading (jobs=" << jobs
                        << "): statevector amplitude " << i
                        << " differs bitwise from serial";
                    return OracleResult::fail(out.str());
                }
            }

            sim::DensityMatrix par_dm(circuit.numQubits());
            for (const qc::Gate &g : unitary.gates())
                par_dm.applyGate(g);
            for (std::size_t r = 0; r < par_dm.dimension(); ++r) {
                for (std::size_t c = 0; c < par_dm.dimension(); ++c) {
                    if (!bitEqual(par_dm.element(r, c),
                                  serial_dm.element(r, c))) {
                        std::ostringstream out;
                        out << "intra-op threading (jobs=" << jobs
                            << "): density-matrix element (" << r << ", "
                            << c << ") differs bitwise from serial";
                        return OracleResult::fail(out.str());
                    }
                }
            }

            if (clifford) {
                sim::StabilizerSimulator par_stab(circuit.numQubits());
                for (const qc::Gate &g : unitary.gates())
                    par_stab.applyGate(g);
                if (!par_stab.identicalTo(serial_stab)) {
                    std::ostringstream out;
                    out << "intra-op threading (jobs=" << jobs
                        << "): stabilizer tableau differs from serial";
                    return OracleResult::fail(out.str());
                }
            }
        }
    }
    return OracleResult::pass();
}

OracleResult
runOracle(OracleId id, const qc::Circuit &circuit)
{
    switch (id) {
      case OracleId::SvVsDm:         return oracleSvVsDm(circuit);
      case OracleId::SvVsStabilizer: return oracleSvVsStabilizer(circuit);
      case OracleId::Transpile:      return oracleTranspile(circuit);
      case OracleId::QasmRoundTrip:  return oracleQasmRoundTrip(circuit);
      case OracleId::Fusion:         return oracleFusion(circuit);
    }
    return OracleResult::skip("unknown oracle");
}

} // namespace smq::fuzz
