#include "fuzz/fuzz_cli.hpp"

#include <cctype>
#include <exception>
#include <optional>

#include "fuzz/harness.hpp"
#include "fuzz/planner_fuzz.hpp"
#include "fuzz/protocol_fuzz.hpp"
#include "obs/metrics.hpp"
#include "obs/names.hpp"
#include "report/history.hpp"

namespace smq::fuzz {

namespace {

constexpr const char *kUsage =
    "usage: smq_fuzz [options]\n"
    "\n"
    "  --seed N        corpus seed (default 1); identical seeds give\n"
    "                  byte-identical reports at any --jobs\n"
    "  --cases N       number of random circuits (default 100)\n"
    "  --jobs N        worker threads (default 2; 0 = hardware); the\n"
    "                  corpus is re-run serially and compared when > 1\n"
    "  --clifford      Clifford-only gate alphabet\n"
    "  --min-qubits N  smallest register (default 2)\n"
    "  --max-qubits N  largest register (default 5)\n"
    "  --max-gates N   largest body length (default 30)\n"
    "  --no-mcm        no mid-circuit measurements or resets\n"
    "  --no-shrink     keep failing circuits unminimised\n"
    "  --out DIR       write repro .qasm + regression-test artifacts\n"
    "  --history FILE  append the run to a run-history store\n"
    "  --metrics       enable the fuzz.* metrics registry counters\n"
    "  --protocol      fuzz the smq-serve-v1 wire protocol instead of\n"
    "                  circuits (uses --seed / --cases only)\n"
    "  --planner       differential oracle for the backend planner:\n"
    "                  auto-vs-forced byte-identity and TVD against\n"
    "                  exact references (uses --seed / --cases only)\n";

/** Strict full-token unsigned parse (see report::sentinel_cli). */
std::optional<std::uint64_t>
parseU64(const std::string &text)
{
    if (text.empty() || !std::isdigit(static_cast<unsigned char>(text[0])))
        return std::nullopt;
    try {
        std::size_t consumed = 0;
        unsigned long long value = std::stoull(text, &consumed);
        if (consumed != text.size())
            return std::nullopt;
        return static_cast<std::uint64_t>(value);
    } catch (const std::exception &) {
        return std::nullopt;
    }
}

int
usageError(std::ostream &err, const std::string &message)
{
    err << "smq_fuzz: " << message << "\n" << kUsage;
    return kFuzzUsage;
}

} // namespace

int
fuzzMain(const std::vector<std::string> &args, std::ostream &out,
         std::ostream &err)
{
    FuzzOptions options;
    options.jobs = 2;
    std::string history;
    bool metrics = false;
    bool protocol = false;
    bool planner = false;

    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &arg = args[i];
        if (arg == "--help" || arg == "-h") {
            out << kUsage;
            return kFuzzOk;
        }
        if (arg == "--clifford") {
            options.gen.cliffordOnly = true;
            continue;
        }
        if (arg == "--no-mcm") {
            options.gen.midCircuitMeasure = false;
            options.gen.resets = false;
            continue;
        }
        if (arg == "--no-shrink") {
            options.shrinkFailures = false;
            continue;
        }
        if (arg == "--metrics") {
            metrics = true;
            continue;
        }
        if (arg == "--protocol") {
            protocol = true;
            continue;
        }
        if (arg == "--planner") {
            planner = true;
            continue;
        }
        // every remaining flag takes a value
        const bool takes_string = arg == "--out" || arg == "--history";
        const bool takes_number = arg == "--seed" || arg == "--cases" ||
                                  arg == "--jobs" ||
                                  arg == "--min-qubits" ||
                                  arg == "--max-qubits" ||
                                  arg == "--max-gates";
        if (!takes_string && !takes_number)
            return usageError(err, "unknown flag " + arg);
        if (i + 1 >= args.size())
            return usageError(err, arg + " needs a value");
        const std::string &value = args[++i];
        if (arg == "--out") {
            options.artifactDir = value;
            continue;
        }
        if (arg == "--history") {
            history = value;
            continue;
        }
        auto parsed = parseU64(value);
        if (!parsed)
            return usageError(err, "bad value for " + arg + ": '" + value +
                                       "'");
        if (arg == "--seed") {
            options.seed = *parsed;
        } else if (arg == "--cases") {
            options.cases = static_cast<std::size_t>(*parsed);
        } else if (arg == "--jobs") {
            options.jobs = static_cast<std::size_t>(*parsed);
        } else if (arg == "--min-qubits") {
            options.gen.minQubits = static_cast<std::size_t>(*parsed);
        } else if (arg == "--max-qubits") {
            options.gen.maxQubits = static_cast<std::size_t>(*parsed);
        } else if (arg == "--max-gates") {
            options.gen.maxGates = static_cast<std::size_t>(*parsed);
        }
    }
    if (options.gen.minQubits < 1 ||
        options.gen.minQubits > options.gen.maxQubits ||
        options.gen.maxQubits > 12) {
        return usageError(err, "qubit range must satisfy "
                               "1 <= min <= max <= 12");
    }
    if (options.gen.minGates > options.gen.maxGates)
        return usageError(err, "gate range must satisfy min <= max");

    if (metrics)
        obs::setMetricsEnabled(true);

    if (protocol) {
        ProtocolFuzzOptions protocol_options;
        protocol_options.seed = options.seed;
        protocol_options.cases = options.cases;
        ProtocolFuzzReport report = runProtocolFuzz(protocol_options);
        out << report.render();
        return report.clean() ? kFuzzOk : kFuzzDiscrepancy;
    }

    if (planner) {
        PlannerFuzzOptions planner_options;
        planner_options.seed = options.seed;
        planner_options.cases = options.cases;
        PlannerFuzzReport report = runPlannerFuzz(planner_options);
        out << report.render();
        return report.clean() ? kFuzzOk : kFuzzDiscrepancy;
    }

    FuzzReport report = runFuzz(options);
    out << report.render();

    std::string jobs_verdict;
    if (options.jobs != 1) {
        jobs_verdict = verifyJobsIdentity(report);
        out << "jobs identity: "
            << (jobs_verdict.empty() ? "ok (serial rerun byte-identical)"
                                     : jobs_verdict)
            << "\n";
    }

    if (!history.empty()) {
        report::HistoryRecord record;
        record.tool = "smq_fuzz";
        record.seed = options.seed;
        record.jobs = options.jobs;
        if (metrics) {
            for (const auto &[name, value] :
                 obs::snapshotMetrics().counters) {
                if (value > 0)
                    record.counters[name] = value;
            }
        }
        record.values["cases"] = static_cast<double>(report.casesRun);
        record.values["failures"] =
            static_cast<double>(report.failures.size());
        if (!report::appendHistory(history, record))
            err << "smq_fuzz: cannot append to " << history << "\n";
    }

    if (!report.clean() || !jobs_verdict.empty())
        return kFuzzDiscrepancy;
    return kFuzzOk;
}

} // namespace smq::fuzz
