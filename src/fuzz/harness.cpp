#include "fuzz/harness.hpp"

#include <filesystem>
#include <sstream>

#include "fuzz/shrink.hpp"
#include "obs/fsio.hpp"
#include "obs/metrics.hpp"
#include "obs/names.hpp"
#include "qc/qasm.hpp"
#include "util/thread_pool.hpp"

namespace smq::fuzz {

namespace {

/** Enumerator spelling for generated regression-test code. */
const char *
oracleEnumerator(OracleId id)
{
    switch (id) {
      case OracleId::SvVsDm:         return "SvVsDm";
      case OracleId::SvVsStabilizer: return "SvVsStabilizer";
      case OracleId::Transpile:      return "Transpile";
      case OracleId::QasmRoundTrip:  return "QasmRoundTrip";
      case OracleId::Fusion:         return "Fusion";
    }
    return "SvVsDm";
}

struct CaseOutcome
{
    std::uint64_t caseSeed = 0;
    std::array<OracleResult, kOracleCount> results;
};

void
writeArtifacts(const std::string &dir, const FuzzFailure &failure)
{
    namespace fs = std::filesystem;
    std::error_code ec;
    fs::create_directories(dir, ec);
    std::ostringstream stem;
    stem << dir << "/case" << failure.caseIndex << "_"
         << oracleName(failure.oracle);
    obs::atomicWriteFile(stem.str() + ".qasm", failure.reproQasm);
    obs::atomicWriteFile(stem.str() + "_test.cpp.txt",
                         failure.regressionTest);
}

} // namespace

std::string
regressionTestSnippet(const FuzzFailure &failure)
{
    std::ostringstream out;
    out << "// Shrunk from smq_fuzz case " << failure.caseIndex
        << " (case seed " << failure.caseSeed << "): "
        << failure.detail << "\n"
        << "TEST(FuzzRegression, Case" << failure.caseIndex << "_"
        << oracleEnumerator(failure.oracle) << ")\n"
        << "{\n"
        << "    const char *qasm = R\"qasm(" << failure.reproQasm
        << ")qasm\";\n"
        << "    smq::qc::Circuit circuit = smq::qc::fromQasm(qasm);\n"
        << "    smq::fuzz::OracleResult result = smq::fuzz::runOracle(\n"
        << "        smq::fuzz::OracleId::" << oracleEnumerator(failure.oracle)
        << ", circuit);\n"
        << "    EXPECT_NE(result.status, smq::fuzz::OracleStatus::Fail)\n"
        << "        << result.detail;\n"
        << "}\n";
    return out.str();
}

FuzzReport
runFuzz(const FuzzOptions &options)
{
    FuzzReport report;
    report.options = options;

    std::vector<CaseOutcome> outcomes(options.cases);
    util::parallelFor(options.jobs, options.cases, [&](std::size_t i) {
        CaseOutcome &slot = outcomes[i];
        slot.caseSeed = util::deriveTaskSeed(options.seed, i);
        stats::Rng rng(slot.caseSeed);
        qc::Circuit circuit = randomCircuit(options.gen, rng);
        for (std::size_t o = 0; o < kOracleCount; ++o)
            slot.results[o] = runOracle(static_cast<OracleId>(o), circuit);

        static obs::Counter &c_run = obs::counter(obs::names::kFuzzCasesRun);
        static obs::Counter &c_checks =
            obs::counter(obs::names::kFuzzOracleChecks);
        static obs::Counter &c_skips =
            obs::counter(obs::names::kFuzzOracleSkips);
        static obs::Counter &c_fails =
            obs::counter(obs::names::kFuzzOracleFailures);
        c_run.add();
        for (const OracleResult &r : slot.results) {
            switch (r.status) {
              case OracleStatus::Pass: c_checks.add(); break;
              case OracleStatus::Skip: c_skips.add(); break;
              case OracleStatus::Fail:
                c_checks.add();
                c_fails.add();
                break;
            }
        }
    });

    report.casesRun = options.cases;
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        bool failed = false;
        for (std::size_t o = 0; o < kOracleCount; ++o) {
            const OracleResult &r = outcomes[i].results[o];
            OracleTally &tally = report.tallies[o];
            switch (r.status) {
              case OracleStatus::Pass: ++tally.passes; break;
              case OracleStatus::Skip: ++tally.skips; break;
              case OracleStatus::Fail:
                ++tally.failures;
                failed = true;
                break;
            }
        }
        if (!failed)
            continue;
        ++report.casesFailed;
        static obs::Counter &c_cases_failed =
            obs::counter(obs::names::kFuzzCasesFailed);
        c_cases_failed.add();

        // Re-derive the circuit (cheap) rather than hold every
        // generated circuit across the whole corpus.
        stats::Rng rng(outcomes[i].caseSeed);
        qc::Circuit circuit = randomCircuit(options.gen, rng);
        for (std::size_t o = 0; o < kOracleCount; ++o) {
            const OracleResult &r = outcomes[i].results[o];
            if (r.status != OracleStatus::Fail)
                continue;
            FuzzFailure failure;
            failure.caseIndex = i;
            failure.caseSeed = outcomes[i].caseSeed;
            failure.oracle = static_cast<OracleId>(o);
            failure.detail = r.detail;
            failure.original = circuit;
            failure.shrunk = circuit;
            failure.shrunkDetail = r.detail;
            if (options.shrinkFailures) {
                OracleId oracle = failure.oracle;
                ShrinkResult shrunk = shrink(
                    circuit,
                    [oracle](const qc::Circuit &candidate) {
                        return runOracle(oracle, candidate).status ==
                               OracleStatus::Fail;
                    },
                    options.shrinkBudget);
                failure.shrunk = std::move(shrunk.circuit);
                failure.shrunkDetail =
                    runOracle(oracle, failure.shrunk).detail;
                static obs::Counter &c_rounds =
                    obs::counter(obs::names::kFuzzShrinkRounds);
                c_rounds.add(shrunk.rounds);
            }
            failure.reproQasm = qc::toQasm(failure.shrunk);
            failure.regressionTest = regressionTestSnippet(failure);
            if (!options.artifactDir.empty())
                writeArtifacts(options.artifactDir, failure);
            report.failures.push_back(std::move(failure));
        }
    }
    return report;
}

std::string
FuzzReport::render() const
{
    // Deliberately omits `jobs` and any wall-clock facts: the render
    // of a parallel run must be byte-identical to the serial one.
    std::ostringstream out;
    out << "smq_fuzz report\n"
        << "  seed " << options.seed << ", " << options.cases
        << " case(s), qubits [" << options.gen.minQubits << ","
        << options.gen.maxQubits << "], gates [" << options.gen.minGates
        << "," << options.gen.maxGates << "]"
        << (options.gen.cliffordOnly ? ", clifford-only" : "") << "\n";
    for (std::size_t o = 0; o < kOracleCount; ++o) {
        out << "  oracle " << oracleName(static_cast<OracleId>(o)) << ": "
            << tallies[o].passes << " pass, " << tallies[o].skips
            << " skip, " << tallies[o].failures << " fail\n";
    }
    for (const FuzzFailure &f : failures) {
        out << "  failure: case " << f.caseIndex << " (seed " << f.caseSeed
            << "), oracle " << oracleName(f.oracle) << "\n"
            << "    " << f.detail << "\n"
            << "    shrunk to " << f.shrunk.size() << " instruction(s), "
            << f.shrunk.numQubits() << " qubit(s): " << f.shrunkDetail
            << "\n";
        std::istringstream qasm(f.reproQasm);
        for (std::string line; std::getline(qasm, line);)
            out << "    | " << line << "\n";
    }
    out << "verdict: "
        << (failures.empty()
                ? "CLEAN"
                : std::to_string(failures.size()) + " DISCREPANCY(IES)")
        << "\n";
    return out.str();
}

std::string
verifyJobsIdentity(const FuzzReport &parallel_report)
{
    FuzzOptions serial = parallel_report.options;
    serial.jobs = 1;
    serial.artifactDir.clear(); // do not rewrite artifacts
    FuzzReport rerun = runFuzz(serial);
    if (rerun.render() != parallel_report.render())
        return "serial rerun rendered a different report (determinism "
               "violation)";
    return "";
}

} // namespace smq::fuzz
