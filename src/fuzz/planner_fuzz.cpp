#include "fuzz/planner_fuzz.hpp"

#include <algorithm>
#include <cmath>
#include <exception>
#include <sstream>

#include "fuzz/generator.hpp"
#include "fuzz/oracles.hpp"
#include "sim/density_matrix.hpp"
#include "sim/planner.hpp"
#include "sim/runner.hpp"
#include "stats/counts.hpp"
#include "util/thread_pool.hpp"

namespace smq::fuzz {

namespace {

/** Total-variation distance of an empirical histogram from an exact
 *  reference distribution. */
double
tvd(const stats::Counts &counts, const stats::Distribution &ref)
{
    const double n = static_cast<double>(counts.shots());
    double sum = 0.0;
    for (const auto &[bits, c] : counts.map())
        sum += std::abs(static_cast<double>(c) / n -
                        ref.probability(bits));
    for (const auto &[bits, p] : ref.map()) {
        if (counts.at(bits) == 0)
            sum += p;
    }
    return sum / 2.0;
}

} // namespace

std::string
PlannerFuzzReport::render() const
{
    std::ostringstream out;
    out << "planner fuzz: " << casesRun << " cases, " << identityChecks
        << " identity checks, " << fidelityChecks
        << " fidelity checks (" << fidelitySkips
        << " without an exact reference)\n";
    out << "plans seen:";
    for (const std::string &token : planTokensSeen)
        out << " " << token;
    out << "\n";
    if (failures.empty()) {
        out << "all clean\n";
    } else {
        out << failures.size() << " failure(s):\n";
        for (const std::string &failure : failures)
            out << "  " << failure << "\n";
    }
    return out.str();
}

PlannerFuzzReport
runPlannerFuzz(const PlannerFuzzOptions &options)
{
    PlannerFuzzReport report;
    for (std::size_t i = 0; i < options.cases; ++i) {
        ++report.casesRun;
        const std::uint64_t case_seed =
            util::deriveTaskSeed(options.seed, i);
        stats::Rng gen_rng(case_seed);

        // Sweep the corpus across the planner's whole decision
        // surface: Clifford-only thirds (stabilizer-eligible), mid-
        // circuit halves (trajectory-forcing), noisy odd cases.
        GeneratorOptions gen;
        gen.cliffordOnly = (i % 3 == 0);
        gen.midCircuitMeasure = (i % 2 == 0);
        gen.resets = (i % 2 == 0);
        const qc::Circuit circuit = randomCircuit(gen, gen_rng);

        sim::NoiseModel noise;
        if (i % 2 == 1) {
            noise.enabled = true;
            noise.p1 = 0.002;
            noise.p2 = 0.01;
            noise.pMeas = 0.01;
        }

        const sim::Plan plan = sim::planCircuit(circuit, noise);
        const std::string token = plan.token();
        if (std::find(report.planTokensSeen.begin(),
                      report.planTokensSeen.end(),
                      token) == report.planTokensSeen.end())
            report.planTokensSeen.push_back(token);
        auto fail = [&](const std::string &why) {
            report.failures.push_back("case " + std::to_string(i) +
                                      " [" + token + "]: " + why);
        };

        // --- oracle 1: auto vs forced-same-backend byte-identity ----
        sim::RunOptions ro;
        ro.shots = options.shots;
        ro.noise = noise;
        stats::Counts auto_counts, forced_counts;
        try {
            stats::Rng auto_rng(util::deriveTaskSeed(case_seed, 1));
            auto_counts = sim::run(circuit, ro, auto_rng);
            sim::RunOptions forced = ro;
            forced.backend = plan.backend;
            stats::Rng forced_rng(util::deriveTaskSeed(case_seed, 1));
            forced_counts = sim::run(circuit, forced, forced_rng);
        } catch (const std::exception &e) {
            fail(std::string("run threw: ") + e.what());
            continue;
        }
        ++report.identityChecks;
        if (auto_counts.map() != forced_counts.map()) {
            fail("forcing the planner's own choice changed the "
                 "histogram");
            continue;
        }

        // --- oracle 2: TVD against an exact reference ---------------
        stats::Distribution reference;
        bool have_reference = false;
        try {
            if (!noise.enabled) {
                reference = exactDenseDistribution(circuit);
                have_reference = true;
            } else if (!sim::hasMidCircuitOperations(circuit) &&
                       circuit.numQubits() <=
                           sim::kDensityMatrixHardCap) {
                reference = sim::noisyDistribution(circuit, noise);
                have_reference = true;
            }
        } catch (const std::exception &) {
            // branch explosion / unsupported shape: no reference
            have_reference = false;
        }
        if (!have_reference) {
            ++report.fidelitySkips;
            continue;
        }
        ++report.fidelityChecks;
        const double distance = tvd(auto_counts, reference);
        if (distance > options.tvdBound) {
            std::ostringstream why;
            why << "TVD " << distance << " from the exact reference "
                << "exceeds the bound " << options.tvdBound;
            fail(why.str());
        }
    }
    return report;
}

} // namespace smq::fuzz
