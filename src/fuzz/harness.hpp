/**
 * @file
 * The fuzz harness: deterministic corpus execution, failure shrinking,
 * artifact emission and report rendering.
 *
 * Case i draws its circuit from deriveTaskSeed(seed, i), so the corpus
 * is a pure function of (seed, cases, generator options) — independent
 * of `--jobs`, scheduling, or which oracles fire. Oracles run inside
 * the parallel loop; failures are collected in case order and shrunk
 * serially afterwards so the whole report (and every artifact) is
 * byte-identical run-to-run. That identity is itself oracle 5's second
 * half: runFuzz at `--jobs N` must render the same report as at
 * `--jobs 1`, and verifyJobsIdentity() checks exactly that.
 */

#ifndef SMQ_FUZZ_HARNESS_HPP
#define SMQ_FUZZ_HARNESS_HPP

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "fuzz/generator.hpp"
#include "fuzz/oracles.hpp"

namespace smq::fuzz {

/** Configuration of one fuzz run. */
struct FuzzOptions
{
    std::uint64_t seed = 1;
    std::size_t cases = 100;
    /** Worker threads (1 = serial; 0 = hardware default). */
    std::size_t jobs = 1;
    GeneratorOptions gen;
    /** Minimise failures with the delta-debugging shrinker. */
    bool shrinkFailures = true;
    std::size_t shrinkBudget = 2000;
    /** When non-empty, write repro .qasm + regression-test artifacts. */
    std::string artifactDir;
};

/** One oracle's tally over the corpus. */
struct OracleTally
{
    std::size_t passes = 0;
    std::size_t skips = 0;
    std::size_t failures = 0;
};

/** A surviving discrepancy, with its minimised reproduction. */
struct FuzzFailure
{
    std::size_t caseIndex = 0;
    std::uint64_t caseSeed = 0;
    OracleId oracle = OracleId::SvVsDm;
    std::string detail;        ///< diagnosis on the original circuit
    std::string shrunkDetail;  ///< diagnosis on the shrunk circuit
    qc::Circuit original;
    qc::Circuit shrunk;        ///< == original when shrinking is off
    std::string reproQasm;     ///< toQasm(shrunk)
    std::string regressionTest; ///< ready-to-paste GTest body
};

/** Outcome of a fuzz run. */
struct FuzzReport
{
    FuzzOptions options;
    std::size_t casesRun = 0;
    std::size_t casesFailed = 0;
    std::array<OracleTally, kOracleCount> tallies{};
    std::vector<FuzzFailure> failures;

    bool clean() const { return failures.empty(); }

    /** Deterministic multi-line summary (no wall-clock content). */
    std::string render() const;
};

/** Execute a fuzz run. Artifacts are written when artifactDir is set. */
FuzzReport runFuzz(const FuzzOptions &options);

/**
 * Oracle 5b: re-run the corpus serially and compare rendered reports
 * byte-for-byte against @p parallel_report. Returns an empty string on
 * identity, else a diagnostic.
 */
std::string verifyJobsIdentity(const FuzzReport &parallel_report);

/** The ready-to-paste GTest snippet embedded in failure artifacts. */
std::string regressionTestSnippet(const FuzzFailure &failure);

} // namespace smq::fuzz

#endif // SMQ_FUZZ_HARNESS_HPP
