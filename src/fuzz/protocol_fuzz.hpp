/**
 * @file
 * Wire-protocol fuzz oracle for the serve daemon (`smq_fuzz
 * --protocol`).
 *
 * The circuit oracles answer "do the simulators agree"; this one
 * answers "does the daemon survive hostile input". A seeded corpus of
 * request lines — valid submits, near-valid submits with out-of-range
 * or wrongly-typed fields, truncated JSON, duplicated lines, byte
 * noise — is pushed through Server::handle(), and every reply must
 * uphold the smq-serve-v1 invariants:
 *
 *   1. exactly one reply line per request line, parseable as JSON;
 *   2. the reply is an object with a boolean `ok` field;
 *   3. `ok:false` replies carry an `error` from the closed error-code
 *      vocabulary (docs/PROTOCOL.md) and a string `message`;
 *   4. the daemon stays serviceable: a `stats` probe interleaved
 *      through the corpus always answers `ok:true`.
 *
 * Deterministic: the corpus and the report depend only on the seed,
 * so a failing seed is a complete repro.
 */

#ifndef SMQ_FUZZ_PROTOCOL_FUZZ_HPP
#define SMQ_FUZZ_PROTOCOL_FUZZ_HPP

#include <cstdint>
#include <string>
#include <vector>

namespace smq::fuzz {

struct ProtocolFuzzOptions
{
    std::uint64_t seed = 1;
    std::size_t cases = 200; ///< request lines pushed at the server
};

struct ProtocolFuzzReport
{
    std::size_t casesRun = 0;
    std::size_t okReplies = 0;    ///< replies with ok:true
    std::size_t errorReplies = 0; ///< well-formed ok:false replies
    /** Invariant violations: "case N: <line> -> <reply>: <why>". */
    std::vector<std::string> failures;

    bool clean() const { return failures.empty(); }

    /** Deterministic human-readable summary. */
    std::string render() const;
};

/** Run the protocol oracle against a fresh in-process Server. */
ProtocolFuzzReport runProtocolFuzz(const ProtocolFuzzOptions &options);

} // namespace smq::fuzz

#endif // SMQ_FUZZ_PROTOCOL_FUZZ_HPP
