/**
 * @file
 * Quantum device models: topology + calibration + native gate family.
 *
 * These stand in for the nine QPUs of the paper's evaluation
 * (Table II, Sec. V). For the machines whose calibration Table II
 * lists (Casablanca, Montreal, Guadalupe, IonQ, AQT) the numbers are
 * taken verbatim; the remaining IBM devices named in the text (Lagos,
 * Jakarta, Mumbai, Toronto) use representative values from the same
 * hardware generation, documented in EXPERIMENTS.md.
 */

#ifndef SMQ_DEVICE_DEVICE_HPP
#define SMQ_DEVICE_DEVICE_HPP

#include <string>
#include <vector>

#include "device/topology.hpp"
#include "sim/noise.hpp"

namespace smq::device {

/**
 * Version tag of the built-in device table (the nine QPU models and
 * their Table II calibration values). Bump whenever a topology,
 * calibration number, or capability entry changes; run manifests
 * record it so archived results can be matched to the device data
 * they were produced with.
 */
inline constexpr const char *kDeviceTableVersion = "smq-devices-v1";

/** Native-gate family determining the transpiler's final basis. */
enum class NativeFamily {
    IBM,  ///< {rz, sx, x} + CX
    ION,  ///< {rx, ry, rz} + RXX (Molmer-Sorensen style)
    AQT,  ///< {rx, ry, rz} + CZ
};

/** Hardware architecture class (for reporting). */
enum class ArchitectureKind { Superconducting, TrappedIon };

/**
 * Service-level execution capabilities: what the cloud endpoint in
 * front of the QPU accepts. The paper's collection flow had to honour
 * exactly these limits — e.g. the error-correction benchmarks were
 * skipped on targets without mid-circuit measurement — and the job
 * scheduler gates submissions on them instead of throwing.
 */
struct Capabilities
{
    /** MEASURE/RESET before the end of the circuit is supported. */
    bool midCircuitMeasurement = true;
    /** Largest shot count one job may request (0 = unlimited). */
    std::uint64_t maxShots = 0;
    /** Widest register a job may use (0 = the full topology). */
    std::size_t maxRegisterSize = 0;
};

/** A benchmarkable device model. */
struct Device
{
    std::string name;
    ArchitectureKind kind = ArchitectureKind::Superconducting;
    NativeFamily family = NativeFamily::IBM;
    Topology topology;
    sim::NoiseModel noise; ///< Table II calibration as a noise model
    Capabilities caps;     ///< submission limits of the cloud service

    std::size_t numQubits() const { return topology.numQubits(); }

    /** True when the topology couples every pair directly. */
    bool allToAll() const
    {
        std::size_t n = topology.numQubits();
        return topology.numEdges() == n * (n - 1) / 2;
    }
};

/// @name The nine QPUs of the paper's evaluation
/// @{
Device ibmCasablanca();
Device ibmLagos();
Device ibmJakarta();
Device ibmGuadalupe();
Device ibmMontreal();
Device ibmMumbai();
Device ibmToronto();
Device ionqDevice();
Device aqtDevice();
/// @}

/** All nine devices, in the display order used by the figures. */
std::vector<Device> allDevices();

/** An idealised noiseless all-to-all device (for testing). */
Device perfectDevice(std::size_t num_qubits);

} // namespace smq::device

#endif // SMQ_DEVICE_DEVICE_HPP
