/**
 * @file
 * Quantum device models: topology + calibration + native gate family.
 *
 * These stand in for the nine QPUs of the paper's evaluation
 * (Table II, Sec. V). For the machines whose calibration Table II
 * lists (Casablanca, Montreal, Guadalupe, IonQ, AQT) the numbers are
 * taken verbatim; the remaining IBM devices named in the text (Lagos,
 * Jakarta, Mumbai, Toronto) use representative values from the same
 * hardware generation, documented in EXPERIMENTS.md.
 */

#ifndef SMQ_DEVICE_DEVICE_HPP
#define SMQ_DEVICE_DEVICE_HPP

#include <string>
#include <vector>

#include "device/topology.hpp"
#include "sim/noise.hpp"

namespace smq::device {

/** Native-gate family determining the transpiler's final basis. */
enum class NativeFamily {
    IBM,  ///< {rz, sx, x} + CX
    ION,  ///< {rx, ry, rz} + RXX (Molmer-Sorensen style)
    AQT,  ///< {rx, ry, rz} + CZ
};

/** Hardware architecture class (for reporting). */
enum class ArchitectureKind { Superconducting, TrappedIon };

/** A benchmarkable device model. */
struct Device
{
    std::string name;
    ArchitectureKind kind = ArchitectureKind::Superconducting;
    NativeFamily family = NativeFamily::IBM;
    Topology topology;
    sim::NoiseModel noise; ///< Table II calibration as a noise model

    std::size_t numQubits() const { return topology.numQubits(); }

    /** True when the topology couples every pair directly. */
    bool allToAll() const
    {
        std::size_t n = topology.numQubits();
        return topology.numEdges() == n * (n - 1) / 2;
    }
};

/// @name The nine QPUs of the paper's evaluation
/// @{
Device ibmCasablanca();
Device ibmLagos();
Device ibmJakarta();
Device ibmGuadalupe();
Device ibmMontreal();
Device ibmMumbai();
Device ibmToronto();
Device ionqDevice();
Device aqtDevice();
/// @}

/** All nine devices, in the display order used by the figures. */
std::vector<Device> allDevices();

/** An idealised noiseless all-to-all device (for testing). */
Device perfectDevice(std::size_t num_qubits);

} // namespace smq::device

#endif // SMQ_DEVICE_DEVICE_HPP
