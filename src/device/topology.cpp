#include "device/topology.hpp"

#include <algorithm>
#include <deque>
#include <limits>
#include <stdexcept>

namespace smq::device {

namespace {
constexpr std::size_t kUnreachable = std::numeric_limits<std::size_t>::max();
} // namespace

Topology::Topology(std::size_t num_qubits,
                   std::vector<std::pair<std::size_t, std::size_t>> edges)
    : numQubits_(num_qubits), adjacency_(num_qubits)
{
    for (auto [a, b] : edges) {
        if (a >= num_qubits || b >= num_qubits || a == b)
            throw std::invalid_argument("Topology: bad edge");
        auto edge = std::minmax(a, b);
        if (edges_.emplace(edge.first, edge.second).second) {
            adjacency_[a].push_back(b);
            adjacency_[b].push_back(a);
        }
    }
    for (auto &nbrs : adjacency_)
        std::sort(nbrs.begin(), nbrs.end());
    computeDistances();
}

void
Topology::computeDistances()
{
    dist_.assign(numQubits_,
                 std::vector<std::size_t>(numQubits_, kUnreachable));
    for (std::size_t src = 0; src < numQubits_; ++src) {
        std::deque<std::size_t> queue{src};
        dist_[src][src] = 0;
        while (!queue.empty()) {
            std::size_t u = queue.front();
            queue.pop_front();
            for (std::size_t v : adjacency_[u]) {
                if (dist_[src][v] == kUnreachable) {
                    dist_[src][v] = dist_[src][u] + 1;
                    queue.push_back(v);
                }
            }
        }
    }
}

bool
Topology::coupled(std::size_t a, std::size_t b) const
{
    if (a == b)
        return false;
    auto edge = std::minmax(a, b);
    return edges_.count({edge.first, edge.second}) > 0;
}

const std::vector<std::size_t> &
Topology::neighbors(std::size_t q) const
{
    return adjacency_.at(q);
}

std::size_t
Topology::distance(std::size_t a, std::size_t b) const
{
    return dist_.at(a).at(b);
}

std::vector<std::size_t>
Topology::shortestPath(std::size_t a, std::size_t b) const
{
    if (distance(a, b) == kUnreachable)
        throw std::invalid_argument("Topology::shortestPath: disconnected");
    std::vector<std::size_t> path{a};
    std::size_t current = a;
    while (current != b) {
        for (std::size_t v : adjacency_[current]) {
            if (dist_[v][b] + 1 == dist_[current][b]) {
                current = v;
                path.push_back(v);
                break;
            }
        }
    }
    return path;
}

bool
Topology::connectedGraph() const
{
    if (numQubits_ == 0)
        return true;
    for (std::size_t q = 0; q < numQubits_; ++q) {
        if (dist_[0][q] == kUnreachable)
            return false;
    }
    return true;
}

Topology
Topology::line(std::size_t n)
{
    std::vector<std::pair<std::size_t, std::size_t>> edges;
    for (std::size_t i = 0; i + 1 < n; ++i)
        edges.emplace_back(i, i + 1);
    return Topology(n, std::move(edges));
}

Topology
Topology::ring(std::size_t n)
{
    Topology t = line(n);
    if (n > 2)
        return Topology(n, [&] {
            std::vector<std::pair<std::size_t, std::size_t>> edges(
                t.edges_.begin(), t.edges_.end());
            edges.emplace_back(0, n - 1);
            return edges;
        }());
    return t;
}

Topology
Topology::grid(std::size_t rows, std::size_t cols)
{
    std::vector<std::pair<std::size_t, std::size_t>> edges;
    auto id = [cols](std::size_t r, std::size_t c) { return r * cols + c; };
    for (std::size_t r = 0; r < rows; ++r) {
        for (std::size_t c = 0; c < cols; ++c) {
            if (c + 1 < cols)
                edges.emplace_back(id(r, c), id(r, c + 1));
            if (r + 1 < rows)
                edges.emplace_back(id(r, c), id(r + 1, c));
        }
    }
    return Topology(rows * cols, std::move(edges));
}

Topology
Topology::allToAll(std::size_t n)
{
    std::vector<std::pair<std::size_t, std::size_t>> edges;
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i + 1; j < n; ++j)
            edges.emplace_back(i, j);
    }
    return Topology(n, std::move(edges));
}

Topology
Topology::ibmFalcon7()
{
    return Topology(7, {{0, 1}, {1, 2}, {1, 3}, {3, 5}, {4, 5}, {5, 6}});
}

Topology
Topology::ibmFalcon16()
{
    return Topology(16, {{0, 1},
                         {1, 2},
                         {1, 4},
                         {2, 3},
                         {3, 5},
                         {4, 7},
                         {5, 8},
                         {6, 7},
                         {7, 10},
                         {8, 9},
                         {8, 11},
                         {10, 12},
                         {11, 14},
                         {12, 13},
                         {12, 15},
                         {13, 14}});
}

Topology
Topology::ibmFalcon27()
{
    return Topology(27, {{0, 1},   {1, 2},   {1, 4},   {2, 3},   {3, 5},
                         {4, 7},   {5, 8},   {6, 7},   {7, 10},  {8, 9},
                         {8, 11},  {10, 12}, {11, 14}, {12, 13}, {12, 15},
                         {13, 14}, {14, 16}, {15, 18}, {16, 19}, {17, 18},
                         {18, 21}, {19, 20}, {19, 22}, {21, 23}, {22, 25},
                         {23, 24}, {24, 25}, {25, 26}});
}

} // namespace smq::device
