#include "device/device.hpp"

namespace smq::device {

namespace {

/** Pack Table II style calibration numbers into a NoiseModel. */
sim::NoiseModel
calibration(double t1_us, double t2_us, double time_1q, double time_2q,
            double time_meas, double err_1q_pct, double err_2q_pct,
            double err_meas_pct)
{
    sim::NoiseModel m;
    m.enabled = true;
    m.t1 = t1_us;
    m.t2 = t2_us;
    m.time1q = time_1q;
    m.time2q = time_2q;
    m.timeMeas = time_meas;
    m.p1 = err_1q_pct / 100.0;
    m.p2 = err_2q_pct / 100.0;
    m.pMeas = err_meas_pct / 100.0;
    m.pReset = err_meas_pct / 100.0; // reset uses the measurement chain
    return m;
}

Device
make(std::string name, ArchitectureKind kind, NativeFamily family,
     Topology topology, sim::NoiseModel noise)
{
    Device d;
    d.name = std::move(name);
    d.kind = kind;
    d.family = family;
    d.topology = std::move(topology);
    d.noise = noise;
    // Service limits typical of the 2021-era endpoints the paper used:
    // IBM jobs capped at 8192 shots; the IonQ service of that
    // generation had no mid-circuit measurement (the reference
    // collection script skips bit-code there); AQT capped at 4096.
    switch (family) {
      case NativeFamily::IBM:
        d.caps.maxShots = 8192;
        break;
      case NativeFamily::ION:
        d.caps.midCircuitMeasurement = false;
        d.caps.maxShots = 10000;
        break;
      case NativeFamily::AQT:
        d.caps.maxShots = 4096;
        break;
    }
    return d;
}

} // namespace

// Table II rows (verbatim).

Device
ibmCasablanca()
{
    return make("IBM-Casablanca", ArchitectureKind::Superconducting,
                NativeFamily::IBM, Topology::ibmFalcon7(),
                calibration(91.21, 125.23, 0.035, 0.443, 5.9, 0.028, 0.83,
                            2.09));
}

Device
ibmGuadalupe()
{
    return make("IBM-Guadalupe", ArchitectureKind::Superconducting,
                NativeFamily::IBM, Topology::ibmFalcon16(),
                calibration(99.52, 104.99, 0.035, 0.416, 5.4, 0.043, 1.03,
                            2.79));
}

Device
ibmMontreal()
{
    return make("IBM-Montreal", ArchitectureKind::Superconducting,
                NativeFamily::IBM, Topology::ibmFalcon27(),
                calibration(104.14, 86.88, 0.035, 0.423, 5.2, 0.052, 1.76,
                            1.96));
}

Device
ionqDevice()
{
    return make("IonQ", ArchitectureKind::TrappedIon, NativeFamily::ION,
                Topology::allToAll(11),
                calibration(1.0e7, 2.0e5, 10.0, 210.0, 100.0, 0.28, 3.04,
                            0.39));
}

Device
aqtDevice()
{
    return make("AQT", ArchitectureKind::Superconducting, NativeFamily::AQT,
                Topology::line(4),
                calibration(62.0, 37.0, 0.03, 0.152, 1.02, 0.083, 2.1,
                            1.25));
}

// Devices named in the paper's text/figures but not detailed in
// Table II; representative same-generation calibrations (documented in
// EXPERIMENTS.md).

Device
ibmLagos()
{
    return make("IBM-Lagos", ArchitectureKind::Superconducting,
                NativeFamily::IBM, Topology::ibmFalcon7(),
                calibration(120.0, 95.0, 0.035, 0.36, 5.3, 0.03, 0.77,
                            1.4));
}

Device
ibmJakarta()
{
    return make("IBM-Jakarta", ArchitectureKind::Superconducting,
                NativeFamily::IBM, Topology::ibmFalcon7(),
                calibration(115.0, 45.0, 0.035, 0.39, 5.5, 0.04, 0.94,
                            2.5));
}

Device
ibmMumbai()
{
    return make("IBM-Mumbai", ArchitectureKind::Superconducting,
                NativeFamily::IBM, Topology::ibmFalcon27(),
                calibration(110.0, 90.0, 0.035, 0.43, 5.3, 0.045, 1.3,
                            2.3));
}

Device
ibmToronto()
{
    return make("IBM-Toronto", ArchitectureKind::Superconducting,
                NativeFamily::IBM, Topology::ibmFalcon27(),
                calibration(95.0, 80.0, 0.035, 0.46, 5.6, 0.06, 1.9, 3.5));
}

std::vector<Device>
allDevices()
{
    return {ibmCasablanca(), ibmLagos(),    ibmJakarta(),
            ibmGuadalupe(),  ibmMontreal(), ibmMumbai(),
            ibmToronto(),    ionqDevice(),  aqtDevice()};
}

Device
perfectDevice(std::size_t num_qubits)
{
    Device d = make("Perfect-" + std::to_string(num_qubits),
                    ArchitectureKind::Superconducting, NativeFamily::IBM,
                    Topology::allToAll(num_qubits),
                    sim::NoiseModel::ideal());
    d.caps = Capabilities{}; // an idealised endpoint has no limits
    return d;
}

} // namespace smq::device
