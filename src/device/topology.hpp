/**
 * @file
 * Hardware qubit-coupling topologies.
 *
 * The paper shows (Sec. VI) that the match between program
 * connectivity and hardware topology dominates cross-platform
 * differences; Topology supplies the coupling graphs the router and
 * layout passes work against.
 */

#ifndef SMQ_DEVICE_TOPOLOGY_HPP
#define SMQ_DEVICE_TOPOLOGY_HPP

#include <cstddef>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace smq::device {

/** An undirected coupling graph over physical qubits. */
class Topology
{
  public:
    Topology() = default;

    /** Build from an explicit edge list. */
    Topology(std::size_t num_qubits,
             std::vector<std::pair<std::size_t, std::size_t>> edges);

    std::size_t numQubits() const { return numQubits_; }
    std::size_t numEdges() const { return edges_.size(); }

    const std::set<std::pair<std::size_t, std::size_t>> &edges() const
    {
        return edges_;
    }

    /** True when a two-qubit gate can act directly on (a, b). */
    bool coupled(std::size_t a, std::size_t b) const;

    /** Neighbours of physical qubit q. */
    const std::vector<std::size_t> &neighbors(std::size_t q) const;

    /** Hop distance between physical qubits (BFS; SIZE_MAX if cut). */
    std::size_t distance(std::size_t a, std::size_t b) const;

    /** A shortest path a -> b inclusive of both endpoints. */
    std::vector<std::size_t> shortestPath(std::size_t a,
                                          std::size_t b) const;

    /** True if every qubit can reach every other. */
    bool connectedGraph() const;

    /// @name Factories
    /// @{
    static Topology line(std::size_t n);
    static Topology ring(std::size_t n);
    static Topology grid(std::size_t rows, std::size_t cols);
    static Topology allToAll(std::size_t n);
    /** IBM 7-qubit Falcon "H" layout (Casablanca/Lagos/Jakarta). */
    static Topology ibmFalcon7();
    /** IBM 16-qubit Falcon heavy-hex layout (Guadalupe). */
    static Topology ibmFalcon16();
    /** IBM 27-qubit Falcon layout (Montreal/Mumbai/Toronto). */
    static Topology ibmFalcon27();
    /// @}

  private:
    void computeDistances();

    std::size_t numQubits_ = 0;
    std::set<std::pair<std::size_t, std::size_t>> edges_;
    std::vector<std::vector<std::size_t>> adjacency_;
    std::vector<std::vector<std::size_t>> dist_;
};

} // namespace smq::device

#endif // SMQ_DEVICE_TOPOLOGY_HPP
