/**
 * @file
 * The closed registry of metric and span names.
 *
 * Every counter, gauge, histogram and trace span emitted anywhere in
 * the harness takes its name from this header — never from an ad-hoc
 * string literal at the emitting site. That closure is what makes the
 * observability layer auditable: docs/OBSERVABILITY.md tables exactly
 * this set, and the `ctest -L obs` suite diffs the names emitted by a
 * real Fig. 2 grid run against the doc's registry table, so a metric
 * cannot be added without documenting it.
 *
 * Naming convention: `<subsystem>.<object>.<event>` in lower snake
 * case, dot-separated. Stage-duration histograms are derived as
 * `stage.<span-name>.ns` by the tracer (see trace.hpp).
 */

#ifndef SMQ_OBS_NAMES_HPP
#define SMQ_OBS_NAMES_HPP

namespace smq::obs::names {

// --- counters: transpilation -----------------------------------------
inline constexpr const char *kTranspileCacheHit = "transpile.cache.hit";
inline constexpr const char *kTranspileCacheMiss = "transpile.cache.miss";

// --- counters: synchronous harness -----------------------------------
inline constexpr const char *kHarnessRuns = "harness.runs";
inline constexpr const char *kHarnessRepetitions = "harness.repetitions";
inline constexpr const char *kHarnessTooLarge = "harness.too_large";

// --- counters: fault-tolerant job layer ------------------------------
inline constexpr const char *kJobsRetryAttempts = "jobs.retry.attempts";
inline constexpr const char *kJobsFaultsTransient = "jobs.faults.transient";
inline constexpr const char *kJobsFaultsQueueTimeout =
    "jobs.faults.queue_timeout";
inline constexpr const char *kJobsFaultsShotTruncation =
    "jobs.faults.shot_truncation";
inline constexpr const char *kJobsCellsOk = "jobs.cells.ok";
inline constexpr const char *kJobsCellsPartial = "jobs.cells.partial";
inline constexpr const char *kJobsCellsSkipped = "jobs.cells.skipped";
inline constexpr const char *kJobsCellsTooLarge = "jobs.cells.too_large";
inline constexpr const char *kJobsCellsFailed = "jobs.cells.failed";
inline constexpr const char *kJobsSalvagedRepetitions =
    "jobs.salvaged.repetitions";

// --- counters: simulators --------------------------------------------
inline constexpr const char *kSimSvGateApplies = "sim.sv.gate_applies";
inline constexpr const char *kSimDmGateApplies = "sim.dm.gate_applies";
inline constexpr const char *kSimShots = "sim.shots";
inline constexpr const char *kSimTrajectories = "sim.trajectories";

// --- counters: backend planner (sim/planner.*, sim/runner.cpp) -------
// One bump per dispatched circuit execution, keyed by the engine the
// planner chose; `overridden` additionally counts executions where an
// explicit --backend forced the choice instead of the planner.
inline constexpr const char *kSimPlanStatevector = "sim.plan.statevector";
inline constexpr const char *kSimPlanDensityMatrix =
    "sim.plan.density_matrix";
inline constexpr const char *kSimPlanStabilizer = "sim.plan.stabilizer";
inline constexpr const char *kSimPlanTrajectory = "sim.plan.trajectory";
inline constexpr const char *kSimPlanOverridden = "sim.plan.overridden";

// --- counters: intra-op kernel engine (sim/kernels.*) ----------------
inline constexpr const char *kSimKernelParallelOps =
    "sim.kernel.parallel_ops";
inline constexpr const char *kSimKernelSerialOps = "sim.kernel.serial_ops";
inline constexpr const char *kSimKernelTasksSplit =
    "sim.kernel.tasks_split";
inline constexpr const char *kSimKernelSimdAvx2 = "sim.kernel.simd_avx2";
inline constexpr const char *kSimKernelSimdScalar =
    "sim.kernel.simd_scalar";

// --- counters: thread pool -------------------------------------------
inline constexpr const char *kPoolBatches = "pool.batches";
inline constexpr const char *kPoolTasksRun = "pool.tasks.run";

// --- counters: telemetry consumers (src/report/, obs/progress) -------
inline constexpr const char *kHistoryAppends = "history.records.appended";
inline constexpr const char *kHistoryLoaded = "history.records.loaded";
inline constexpr const char *kHistorySkipped = "history.lines.skipped";
inline constexpr const char *kProgressTicks = "progress.ticks";
inline constexpr const char *kProgressEmits = "progress.emits";

// --- counters: crash-tolerant grid execution (checkpoint/shard) ------
inline constexpr const char *kCheckpointCellsJournaled =
    "checkpoint.cells.journaled";
inline constexpr const char *kCheckpointCellsResumed =
    "checkpoint.cells.resumed";
inline constexpr const char *kCheckpointCellsSalvaged =
    "checkpoint.cells.salvaged";
inline constexpr const char *kCheckpointAppendFailures =
    "checkpoint.append.failures";
inline constexpr const char *kShardCellsOwned = "shard.cells.owned";
inline constexpr const char *kShardCellsForeign = "shard.cells.foreign";

// --- counters: differential fuzz harness (src/fuzz/) -----------------
inline constexpr const char *kFuzzCasesRun = "fuzz.cases.run";
inline constexpr const char *kFuzzCasesFailed = "fuzz.cases.failed";
inline constexpr const char *kFuzzOracleChecks = "fuzz.oracle.checks";
inline constexpr const char *kFuzzOracleSkips = "fuzz.oracle.skips";
inline constexpr const char *kFuzzOracleFailures = "fuzz.oracle.failures";
inline constexpr const char *kFuzzShrinkRounds = "fuzz.shrink.rounds";

// --- counters: benchmark-as-a-service daemon (src/serve/) ------------
inline constexpr const char *kServeRequests = "serve.requests";
inline constexpr const char *kServeRequestsMalformed =
    "serve.requests.malformed";
inline constexpr const char *kServeJobsSubmitted = "serve.jobs.submitted";
inline constexpr const char *kServeJobsCompleted = "serve.jobs.completed";
inline constexpr const char *kServeJobsCancelled = "serve.jobs.cancelled";
inline constexpr const char *kServeQueueRejected = "serve.queue.rejected";
inline constexpr const char *kServeCacheHit = "serve.cache.hit";
inline constexpr const char *kServeCacheMiss = "serve.cache.miss";
inline constexpr const char *kServeCacheEvict = "serve.cache.evictions";

// --- counters: distributed tracing (obs/trace_context) ---------------
inline constexpr const char *kTracePropagated = "trace.propagated";
inline constexpr const char *kTraceDerived = "trace.derived";

// --- counters: resource accounting -----------------------------------
inline constexpr const char *kSimAllocBytes = "sim.alloc.bytes";
/** Manifest-only accounting keys (not registry metrics): peak RSS and
 *  process CPU time sampled by RunManifest::capture(). */
inline constexpr const char *kRssPeakBytes = "rss.peak_bytes";
inline constexpr const char *kCpuProcessNs = "cpu.process_ns";

// --- gauges ----------------------------------------------------------
inline constexpr const char *kPoolWorkers = "pool.workers";
inline constexpr const char *kServeWorkers = "serve.workers";
inline constexpr const char *kServeQueueLimit = "serve.queue.limit";

// --- span (stage) names ----------------------------------------------
// Each span name S additionally feeds the histogram `stage.S.ns` and
// the thread-CPU counter `cpu.S.ns` when metrics are enabled.
inline constexpr const char *kSpanPrepare = "prepare";
inline constexpr const char *kSpanRepetition = "repetition";
inline constexpr const char *kSpanJob = "job";
inline constexpr const char *kSpanGrid = "grid";
inline constexpr const char *kSpanServeJob = "serve.job";
inline constexpr const char *kSpanServeQueueWait = "serve.queue_wait";
inline constexpr const char *kSpanSubmit = "submit";

/** Prefix joining a span name to its duration histogram. */
inline constexpr const char *kStageHistogramPrefix = "stage.";
/** Suffix joining a span name to its duration histogram. */
inline constexpr const char *kStageHistogramSuffix = ".ns";
/** Prefix joining a span name to its thread-CPU-time counter. */
inline constexpr const char *kCpuCounterPrefix = "cpu.";
/** Suffix joining a span name to its thread-CPU-time counter. */
inline constexpr const char *kCpuCounterSuffix = ".ns";

} // namespace smq::obs::names

#endif // SMQ_OBS_NAMES_HPP
