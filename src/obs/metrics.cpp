#include "obs/metrics.hpp"

#include <bit>
#include <deque>
#include <mutex>
#include <unordered_map>

namespace smq::obs {

namespace detail {

std::size_t
threadShard()
{
    // Threads take round-robin shard slots on first use; a thread
    // keeps its slot for its lifetime, so two threads only share a
    // cell when more than kMetricShards threads exist.
    static std::atomic<std::size_t> next{0};
    thread_local const std::size_t shard =
        next.fetch_add(1, std::memory_order_relaxed) % kMetricShards;
    return shard;
}

} // namespace detail

namespace {

/**
 * The process-wide registry. Lookup is sharded by name hash: each
 * shard owns a mutex plus name -> metric maps, and metric objects
 * live in node-stable deques so handed-out references never move.
 */
class Registry
{
  public:
    static Registry &instance()
    {
        static Registry r;
        return r;
    }

    Counter &counter(std::string_view name)
    {
        return lookup(name, counters_,
                      [](Shard &s) -> auto & { return s.counters; });
    }
    Gauge &gauge(std::string_view name)
    {
        return lookup(name, gauges_,
                      [](Shard &s) -> auto & { return s.gauges; });
    }
    Histogram &histogram(std::string_view name)
    {
        return lookup(name, histograms_,
                      [](Shard &s) -> auto & { return s.histograms; });
    }

    MetricsSnapshot snapshot()
    {
        MetricsSnapshot snap;
        for (Shard &shard : shards_) {
            std::lock_guard<std::mutex> lock(shard.mutex);
            for (auto &[name, c] : shard.counters)
                snap.counters[name] = c->value();
            for (auto &[name, g] : shard.gauges)
                snap.gauges[name] = g->value();
            for (auto &[name, h] : shard.histograms)
                snap.histograms[name] = h->snapshot();
        }
        return snap;
    }

    void reset()
    {
        for (Shard &shard : shards_) {
            std::lock_guard<std::mutex> lock(shard.mutex);
            for (auto &[name, c] : shard.counters)
                c->reset();
            for (auto &[name, g] : shard.gauges)
                g->reset();
            for (auto &[name, h] : shard.histograms)
                h->reset();
        }
    }

  private:
    static constexpr std::size_t kLockShards = 8;

    struct Shard
    {
        std::mutex mutex;
        std::unordered_map<std::string, Counter *> counters;
        std::unordered_map<std::string, Gauge *> gauges;
        std::unordered_map<std::string, Histogram *> histograms;
    };

    Shard &shardFor(std::string_view name)
    {
        return shards_[std::hash<std::string_view>{}(name) %
                       kLockShards];
    }

    template <typename M, typename MapOf>
    M &lookup(std::string_view name, std::deque<M> &storage, MapOf mapOf)
    {
        Shard &shard = shardFor(name);
        std::lock_guard<std::mutex> lock(shard.mutex);
        auto &map = mapOf(shard);
        auto it = map.find(std::string(name));
        if (it != map.end())
            return *it->second;
        M *fresh = nullptr;
        {
            // The deques are shared across lock shards, so emplacing
            // takes the (cold) storage mutex; deque growth never
            // moves existing nodes, keeping old references valid.
            std::lock_guard<std::mutex> storage_lock(storageMutex_);
            fresh = &storage.emplace_back(std::string(name));
        }
        map.emplace(std::string(name), fresh);
        return *fresh;
    }

    std::array<Shard, kLockShards> shards_;
    std::deque<Counter> counters_;
    std::deque<Gauge> gauges_;
    std::deque<Histogram> histograms_;
    std::mutex storageMutex_;
};

} // namespace

void
Histogram::record(std::uint64_t value)
{
    if (!metricsEnabled())
        return;
    Cell &cell = cells_[detail::threadShard()];
    cell.count.fetch_add(1, std::memory_order_relaxed);
    cell.sum.fetch_add(value, std::memory_order_relaxed);
    // CAS loops for min/max: rare retries, still order-independent.
    std::uint64_t seen = cell.min.load(std::memory_order_relaxed);
    while (value < seen &&
           !cell.min.compare_exchange_weak(seen, value,
                                           std::memory_order_relaxed)) {
    }
    seen = cell.max.load(std::memory_order_relaxed);
    while (value > seen &&
           !cell.max.compare_exchange_weak(seen, value,
                                           std::memory_order_relaxed)) {
    }
    const std::size_t bucket =
        value == 0 ? 0
                   : static_cast<std::size_t>(std::bit_width(value));
    cell.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
}

HistogramSnapshot
Histogram::snapshot() const
{
    HistogramSnapshot snap;
    snap.min = UINT64_MAX;
    for (const Cell &cell : cells_) {
        snap.count += cell.count.load(std::memory_order_relaxed);
        snap.sum += cell.sum.load(std::memory_order_relaxed);
        snap.min = std::min(snap.min,
                            cell.min.load(std::memory_order_relaxed));
        snap.max = std::max(snap.max,
                            cell.max.load(std::memory_order_relaxed));
        for (std::size_t b = 0; b < snap.buckets.size(); ++b)
            snap.buckets[b] +=
                cell.buckets[b].load(std::memory_order_relaxed);
    }
    if (snap.count == 0)
        snap.min = 0;
    return snap;
}

void
Histogram::reset()
{
    for (Cell &cell : cells_) {
        cell.count.store(0, std::memory_order_relaxed);
        cell.sum.store(0, std::memory_order_relaxed);
        cell.min.store(UINT64_MAX, std::memory_order_relaxed);
        cell.max.store(0, std::memory_order_relaxed);
        for (auto &b : cell.buckets)
            b.store(0, std::memory_order_relaxed);
    }
}

Counter &
counter(std::string_view name)
{
    return Registry::instance().counter(name);
}

Gauge &
gauge(std::string_view name)
{
    return Registry::instance().gauge(name);
}

Histogram &
histogram(std::string_view name)
{
    return Registry::instance().histogram(name);
}

MetricsSnapshot
snapshotMetrics()
{
    return Registry::instance().snapshot();
}

void
resetMetrics()
{
    Registry::instance().reset();
}

} // namespace smq::obs
