#include "obs/progress.hpp"

#include <chrono>
#include <cmath>
#include <iostream>
#include <mutex>
#include <sstream>
#include <string>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/names.hpp"

namespace smq::obs {

namespace {

using Clock = std::chrono::steady_clock;

struct ProgressState
{
    std::mutex mutex;
    ProgressOptions options;
    bool phaseActive = false;
    std::string phase;
    std::string unit;
    std::uint64_t total = 0;
    std::uint64_t done = 0;
    std::size_t jobs = 1;
    Clock::time_point phaseStart;
    Clock::time_point lastEmit;
    bool everEmitted = false;
    std::size_t lastLineLength = 0; ///< for clean TTY overwrites
};

ProgressState &
state()
{
    static ProgressState s;
    return s;
}

std::ostream &
sinkStream(const ProgressState &s)
{
    return s.options.out != nullptr ? *s.options.out : std::cerr;
}

double
elapsedSecs(const ProgressState &s)
{
    return std::chrono::duration<double>(Clock::now() - s.phaseStart)
        .count();
}

/**
 * Seconds to completion: mean unit duration from the `stage.<unit>.ns`
 * histogram when metrics carry one, else the observed rate; either
 * way divided by the worker width.
 */
double
etaSecs(const ProgressState &s)
{
    if (s.done >= s.total || s.total == 0)
        return 0.0;
    const double remaining = static_cast<double>(s.total - s.done);
    const double width = static_cast<double>(s.jobs > 0 ? s.jobs : 1);
    if (metricsEnabled()) {
        HistogramSnapshot snap =
            histogram(std::string(names::kStageHistogramPrefix) +
                      s.unit + names::kStageHistogramSuffix)
                .snapshot();
        if (snap.count > 0)
            return remaining * snap.mean() / 1e9 / width;
    }
    if (s.done == 0)
        return -1.0; // unknown
    return remaining * elapsedSecs(s) / static_cast<double>(s.done);
}

std::string
formatSecs(double secs)
{
    if (secs < 0.0)
        return "?";
    std::ostringstream out;
    out.precision(1);
    out << std::fixed;
    if (secs >= 90.0)
        out << secs / 60.0 << "m";
    else
        out << secs << "s";
    return out.str();
}

/** One emission; caller holds the mutex. @p final closes the phase. */
void
emitLocked(ProgressState &s, bool final)
{
    std::ostream &out = sinkStream(s);
    if (s.options.mode == ProgressOptions::Mode::Tty) {
        std::ostringstream line;
        line << "[" << s.phase << "] " << s.done << "/" << s.total
             << " " << s.unit << "s";
        if (s.total > 0) {
            line.precision(1);
            line << std::fixed << " ("
                 << 100.0 * static_cast<double>(s.done) /
                        static_cast<double>(s.total)
                 << "%)";
        }
        if (!final)
            line << " eta " << formatSecs(etaSecs(s));
        std::string text = line.str();
        std::size_t pad =
            text.size() < s.lastLineLength
                ? s.lastLineLength - text.size()
                : 0;
        out << "\r" << text << std::string(pad, ' ');
        if (final)
            out << "\n";
        out.flush();
        s.lastLineLength = text.size();
    } else {
        std::ostringstream line;
        line.precision(1);
        line << std::fixed << "{\"event\":\""
             << (final ? "progress_end" : "progress") << "\",\"phase\":\""
             << escapeJson(s.phase) << "\",\"unit\":\""
             << escapeJson(s.unit) << "\",\"done\":" << s.done
             << ",\"total\":" << s.total
             << ",\"elapsed_s\":" << elapsedSecs(s);
        if (!final) {
            double eta = etaSecs(s);
            if (eta >= 0.0)
                line << ",\"eta_s\":" << eta;
        }
        line << "}";
        out << line.str() << "\n";
        out.flush();
    }
    s.lastEmit = Clock::now();
    s.everEmitted = true;
    counter(names::kProgressEmits).add();
}

} // namespace

void
startProgress(const ProgressOptions &options)
{
    ProgressState &s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    s.options = options;
    s.phaseActive = false;
    s.everEmitted = false;
    s.lastLineLength = 0;
    detail::g_progressEnabled.store(
        options.mode != ProgressOptions::Mode::Off,
        std::memory_order_relaxed);
}

void
stopProgress()
{
    if (!progressEnabled())
        return;
    progressEnd();
    ProgressState &s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    detail::g_progressEnabled.store(false, std::memory_order_relaxed);
    s.options = ProgressOptions{};
}

void
progressBegin(const char *phase, const char *unit, std::uint64_t total,
              std::size_t jobs)
{
    if (!progressEnabled())
        return;
    ProgressState &s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    s.phaseActive = true;
    s.phase = phase;
    s.unit = unit;
    s.total = total;
    s.done = 0;
    s.jobs = jobs;
    s.phaseStart = Clock::now();
    emitLocked(s, /*final=*/false);
}

void
progressEnd()
{
    if (!progressEnabled())
        return;
    ProgressState &s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    if (!s.phaseActive)
        return;
    emitLocked(s, /*final=*/true);
    s.phaseActive = false;
}

void
progressTick(const char *unit, std::uint64_t delta)
{
    if (!progressEnabled())
        return;
    ProgressState &s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    if (!s.phaseActive || s.unit != unit)
        return;
    s.done += delta;
    counter(names::kProgressTicks).add(delta);
    const double since_last =
        std::chrono::duration<double>(Clock::now() - s.lastEmit)
            .count();
    if (s.done >= s.total || since_last >= s.options.heartbeatSecs)
        emitLocked(s, /*final=*/false);
}

} // namespace smq::obs
