/**
 * @file
 * Cross-process trace identity (Dapper-style context propagation).
 *
 * A TraceContext is a 128-bit trace id plus the 64-bit id of the span
 * that caused the current work. It is derived *deterministically* from
 * the run seed and the workload labels (`util::labelSeed`), never from
 * wall clocks or entropy, so enabling propagation cannot perturb
 * results: the traced run is byte-identical to the untraced one, and
 * two runs of the same submit carry the same trace id.
 *
 * The current context is thread-local. Scoped code installs it with
 * TraceContextScope; the span tracer (`obs/trace.hpp`) reads it when
 * recording events and stamps `trace.id` / `trace.parent` into the
 * event args, which is what lets `smq_sentinel report` stitch the
 * trace files of a client process and a daemon process into one
 * waterfall. The thread pool forwards the submitting thread's context
 * to its workers for the duration of a batch, so spans recorded inside
 * `parallelFor` bodies inherit the batch's identity at any --jobs.
 *
 * On the wire (smq-serve-v1) the context travels as the optional
 * `trace` field of `submit` — 32 lowercase hex chars of trace id and
 * 16 of parent span id (docs/PROTOCOL.md §3).
 */

#ifndef SMQ_OBS_TRACE_CONTEXT_HPP
#define SMQ_OBS_TRACE_CONTEXT_HPP

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace smq::obs {

/** A propagated trace identity; all-zero means "no context". */
struct TraceContext
{
    std::uint64_t traceHi = 0;    ///< high 64 bits of the trace id
    std::uint64_t traceLo = 0;    ///< low 64 bits of the trace id
    std::uint64_t parentSpan = 0; ///< span id of the causing span

    /** True when a trace id is present (either half non-zero). */
    bool valid() const { return traceHi != 0 || traceLo != 0; }

    /** 32 lowercase hex chars: high half then low half. */
    std::string traceIdHex() const;
    /** 16 lowercase hex chars. */
    std::string parentSpanHex() const;

    /**
     * Deterministic derivation from the run identity. Two processes
     * given the same (seed, benchmark, device) derive the same
     * context, which is what makes replayed submits land in the same
     * trace. The parent span id doubles as the id of the client-side
     * `submit` span.
     */
    static TraceContext derive(std::uint64_t seed,
                               std::string_view benchmark,
                               std::string_view device);

    /**
     * Parse a wire context: @p trace_id must be exactly 32 lowercase
     * hex chars, @p parent_span empty or exactly 16. Returns
     * std::nullopt (never throws) on any violation, including an
     * all-zero trace id.
     */
    static std::optional<TraceContext>
    fromHex(std::string_view trace_id, std::string_view parent_span);

    bool operator==(const TraceContext &other) const
    {
        return traceHi == other.traceHi && traceLo == other.traceLo &&
               parentSpan == other.parentSpan;
    }
};

/** The calling thread's current context (invalid when none is set). */
TraceContext currentTraceContext();

/**
 * Install @p context as the calling thread's current context for the
 * scope's lifetime; restores the previous context on destruction, so
 * scopes nest. Installing an invalid context is a no-op scope.
 */
class TraceContextScope
{
  public:
    explicit TraceContextScope(const TraceContext &context);
    TraceContextScope(const TraceContextScope &) = delete;
    TraceContextScope &operator=(const TraceContextScope &) = delete;
    ~TraceContextScope();

  private:
    TraceContext saved_;
};

} // namespace smq::obs

#endif // SMQ_OBS_TRACE_CONTEXT_HPP
