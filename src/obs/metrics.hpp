/**
 * @file
 * Lock-sharded metrics registry: named counters, gauges and
 * histograms with order-independent aggregation.
 *
 * Design constraints (see DESIGN.md section 8):
 *  - **Zero overhead when disabled.** Every record path first reads
 *    one relaxed atomic bool; nothing else happens while it is false.
 *    The whole layer is off by default — benches and examples opt in.
 *  - **No hot-path locks.** Looking a metric *up* by name takes a
 *    shard mutex, but emitting sites do that once (static local
 *    reference) and then record through per-thread-sharded relaxed
 *    atomics, so concurrent increments never contend on a cache line.
 *  - **Order-independent aggregation.** All accumulated state is
 *    integral (counts, integer sums, min/max, log2 bucket counts), so
 *    a snapshot is a pure function of the multiset of recorded values
 *    — never of which thread recorded what, or in which order. The
 *    `ctest -L obs` suite verifies this under concurrency.
 *
 * Metric handles returned by counter()/gauge()/histogram() are valid
 * for the life of the process; resetMetrics() zeroes values but never
 * invalidates a handle. Construct metrics only through those lookup
 * functions — the public constructors exist for the registry's
 * node-stable storage, not for standalone use.
 */

#ifndef SMQ_OBS_METRICS_HPP
#define SMQ_OBS_METRICS_HPP

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace smq::obs {

namespace detail {
inline std::atomic<bool> g_metricsEnabled{false};
/** Stable small shard index for the calling thread. */
std::size_t threadShard();
} // namespace detail

/** Number of independent accumulation cells per metric. */
inline constexpr std::size_t kMetricShards = 16;

/** Turn the metrics registry on or off (off = zero overhead). */
inline void
setMetricsEnabled(bool on)
{
    detail::g_metricsEnabled.store(on, std::memory_order_relaxed);
}

/** Whether record paths currently accumulate. */
inline bool
metricsEnabled()
{
    return detail::g_metricsEnabled.load(std::memory_order_relaxed);
}

/**
 * A monotonically increasing event count. Increments are relaxed
 * atomic adds on a per-thread shard; value() sums the shards.
 */
class Counter
{
  public:
    /** @internal Registered by the registry; use obs::counter(). */
    explicit Counter(std::string name) : name_(std::move(name)) {}

    /** Add @p delta events (no-op while metrics are disabled). */
    void add(std::uint64_t delta = 1)
    {
        if (!metricsEnabled())
            return;
        cells_[detail::threadShard()].v.fetch_add(
            delta, std::memory_order_relaxed);
    }

    /** Total across all shards. */
    std::uint64_t value() const
    {
        std::uint64_t total = 0;
        for (const Cell &c : cells_)
            total += c.v.load(std::memory_order_relaxed);
        return total;
    }

    /** Zero the accumulated count (handles stay valid). */
    void reset()
    {
        for (Cell &c : cells_)
            c.v.store(0, std::memory_order_relaxed);
    }

    const std::string &name() const { return name_; }

  private:
    struct alignas(64) Cell
    {
        std::atomic<std::uint64_t> v{0};
    };
    std::string name_;
    std::array<Cell, kMetricShards> cells_;
};

/**
 * A last-written point-in-time value. Gauges are for run
 * configuration facts (pool width, thread count) that are set once
 * per run, not for concurrent accumulation — last write wins.
 */
class Gauge
{
  public:
    /** @internal Registered by the registry; use obs::gauge(). */
    explicit Gauge(std::string name) : name_(std::move(name)) {}

    /** Record the current value (no-op while metrics are disabled). */
    void set(std::int64_t value)
    {
        if (!metricsEnabled())
            return;
        value_.store(value, std::memory_order_relaxed);
    }

    std::int64_t value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    /** Zero the stored value (handles stay valid). */
    void reset() { value_.store(0, std::memory_order_relaxed); }

    const std::string &name() const { return name_; }

  private:
    std::string name_;
    std::atomic<std::int64_t> value_{0};
};

/** Snapshot of one histogram's order-independent accumulators. */
struct HistogramSnapshot
{
    std::uint64_t count = 0;
    std::uint64_t sum = 0; ///< integral, so the total is exact
    std::uint64_t min = 0; ///< 0 when count == 0
    std::uint64_t max = 0;
    /** bucket[i] counts values v with floor(log2(v)) == i-1 (v>=1);
     *  bucket[0] counts v == 0. */
    std::array<std::uint64_t, 65> buckets{};

    double mean() const
    {
        return count == 0 ? 0.0
                          : static_cast<double>(sum) /
                                static_cast<double>(count);
    }
};

/**
 * A distribution over non-negative integer values (durations are
 * recorded in nanoseconds). Accumulates count/sum/min/max plus log2
 * buckets; everything integral, so merging shards in any order yields
 * the same snapshot.
 */
class Histogram
{
  public:
    /** @internal Registered by the registry; use obs::histogram(). */
    explicit Histogram(std::string name) : name_(std::move(name)) {}

    /** Record one observation (no-op while metrics are disabled). */
    void record(std::uint64_t value);

    /** Merged view across all shards. */
    HistogramSnapshot snapshot() const;

    /** Zero the accumulated state (handles stay valid). */
    void reset();

    const std::string &name() const { return name_; }

  private:
    struct alignas(64) Cell
    {
        std::atomic<std::uint64_t> count{0};
        std::atomic<std::uint64_t> sum{0};
        std::atomic<std::uint64_t> min{UINT64_MAX};
        std::atomic<std::uint64_t> max{0};
        std::array<std::atomic<std::uint64_t>, 65> buckets{};
    };
    std::string name_;
    std::array<Cell, kMetricShards> cells_;
};

/**
 * Look up (registering on first use) the counter named @p name. The
 * returned reference is stable for the life of the process; emitting
 * sites should capture it once in a static local.
 */
Counter &counter(std::string_view name);

/** Look up (registering on first use) the gauge named @p name. */
Gauge &gauge(std::string_view name);

/** Look up (registering on first use) the histogram named @p name. */
Histogram &histogram(std::string_view name);

/** Name-sorted point-in-time view of every registered metric. */
struct MetricsSnapshot
{
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, std::int64_t> gauges;
    std::map<std::string, HistogramSnapshot> histograms;
};

/** Snapshot all registered metrics (deterministic name order). */
MetricsSnapshot snapshotMetrics();

/**
 * Zero every registered metric's accumulated state. Registrations
 * (and handles held by emitting sites) stay valid.
 */
void resetMetrics();

} // namespace smq::obs

#endif // SMQ_OBS_METRICS_HPP
