#include "obs/trace_context.hpp"

namespace smq::obs {

namespace {

thread_local TraceContext tCurrentContext;

// FNV-1a + splitmix64, the same derivation family as util::labelSeed.
// Re-implemented locally because smq_obs sits below smq_util in the
// link graph (the pool emits obs metrics) and may not depend on it.
constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

std::uint64_t
fnv1a(std::uint64_t h, std::string_view s)
{
    for (unsigned char c : s) {
        h ^= c;
        h *= kFnvPrime;
    }
    h ^= 0xffu; // separator so ("ab","c") != ("a","bc")
    h *= kFnvPrime;
    return h;
}

std::uint64_t
fnv1a(std::uint64_t h, std::uint64_t v)
{
    for (int byte = 0; byte < 8; ++byte) {
        h ^= (v >> (8 * byte)) & 0xffu;
        h *= kFnvPrime;
    }
    return h;
}

std::uint64_t
mix(std::uint64_t h)
{
    h += 0x9e3779b97f4a7c15ULL;
    h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
    h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
    return h ^ (h >> 31);
}

std::uint64_t
deriveWord(std::uint64_t seed, std::string_view benchmark,
           std::string_view device, std::uint64_t discriminator)
{
    std::uint64_t h = fnv1a(kFnvOffset, seed);
    h = fnv1a(h, benchmark);
    h = fnv1a(h, device);
    h = fnv1a(h, discriminator);
    return mix(h);
}

std::string
hex64(std::uint64_t v)
{
    static const char kDigits[] = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 15; i >= 0; --i) {
        out[static_cast<std::size_t>(i)] = kDigits[v & 0xf];
        v >>= 4;
    }
    return out;
}

/** Strict lowercase-hex parse; nullopt on any other character. */
std::optional<std::uint64_t>
parseHex64(std::string_view text)
{
    if (text.size() != 16)
        return std::nullopt;
    std::uint64_t v = 0;
    for (char c : text) {
        v <<= 4;
        if (c >= '0' && c <= '9')
            v |= static_cast<std::uint64_t>(c - '0');
        else if (c >= 'a' && c <= 'f')
            v |= static_cast<std::uint64_t>(c - 'a' + 10);
        else
            return std::nullopt;
    }
    return v;
}

} // namespace

std::string
TraceContext::traceIdHex() const
{
    return hex64(traceHi) + hex64(traceLo);
}

std::string
TraceContext::parentSpanHex() const
{
    return hex64(parentSpan);
}

TraceContext
TraceContext::derive(std::uint64_t seed, std::string_view benchmark,
                     std::string_view device)
{
    TraceContext ctx;
    ctx.traceHi = deriveWord(seed, benchmark, device, 1);
    ctx.traceLo = deriveWord(seed, benchmark, device, 2);
    ctx.parentSpan = deriveWord(seed, benchmark, device, 3);
    // labelSeed can in principle return 0 for both halves; nudge so
    // valid() holds for every derived context.
    if (ctx.traceHi == 0 && ctx.traceLo == 0)
        ctx.traceLo = 1;
    return ctx;
}

std::optional<TraceContext>
TraceContext::fromHex(std::string_view trace_id,
                      std::string_view parent_span)
{
    if (trace_id.size() != 32)
        return std::nullopt;
    const std::optional<std::uint64_t> hi =
        parseHex64(trace_id.substr(0, 16));
    const std::optional<std::uint64_t> lo =
        parseHex64(trace_id.substr(16, 16));
    if (!hi || !lo)
        return std::nullopt;
    TraceContext ctx;
    ctx.traceHi = *hi;
    ctx.traceLo = *lo;
    if (!ctx.valid())
        return std::nullopt;
    if (!parent_span.empty()) {
        const std::optional<std::uint64_t> parent =
            parseHex64(parent_span);
        if (!parent)
            return std::nullopt;
        ctx.parentSpan = *parent;
    }
    return ctx;
}

TraceContext
currentTraceContext()
{
    return tCurrentContext;
}

TraceContextScope::TraceContextScope(const TraceContext &context)
    : saved_(tCurrentContext)
{
    if (context.valid())
        tCurrentContext = context;
}

TraceContextScope::~TraceContextScope()
{
    tCurrentContext = saved_;
}

} // namespace smq::obs
