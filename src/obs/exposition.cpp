#include "obs/exposition.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>
#include <string>

#if defined(__unix__) || defined(__APPLE__)
#include <time.h>
#endif

namespace smq::obs {

namespace {

/** Lower edge of log2 bucket @p i (bucket 0 holds only zeros). */
double
bucketLower(std::size_t i)
{
    return i == 0 ? 0.0 : std::ldexp(1.0, static_cast<int>(i) - 1);
}

/** Upper edge (inclusive) of log2 bucket @p i. */
double
bucketUpper(std::size_t i)
{
    return i == 0 ? 0.0 : std::ldexp(1.0, static_cast<int>(i)) - 1.0;
}

std::string
sanitizeName(const std::string &name)
{
    std::string out = "smq_";
    for (char c : name) {
        const bool ok = (c >= 'a' && c <= 'z') ||
                        (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '_' || c == ':';
        out.push_back(ok ? c : '_');
    }
    return out;
}

void
writeDouble(std::ostringstream &out, double v)
{
    if (v == static_cast<double>(static_cast<std::uint64_t>(v)) &&
        v >= 0 && v < 1e18) {
        out << static_cast<std::uint64_t>(v);
        return;
    }
    out << v;
}

} // namespace

double
histogramQuantile(const HistogramSnapshot &snapshot, double q)
{
    if (snapshot.count == 0)
        return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    // 1-based target rank into the sorted multiset of observations.
    const double rank =
        q * static_cast<double>(snapshot.count - 1) + 1.0;
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < snapshot.buckets.size(); ++i) {
        const std::uint64_t n = snapshot.buckets[i];
        if (n == 0)
            continue;
        if (rank <= static_cast<double>(cumulative + n)) {
            const double lower = bucketLower(i);
            const double upper = bucketUpper(i);
            const double frac =
                (rank - static_cast<double>(cumulative)) /
                static_cast<double>(n);
            const double value = lower + frac * (upper - lower);
            return std::clamp(value,
                              static_cast<double>(snapshot.min),
                              static_cast<double>(snapshot.max));
        }
        cumulative += n;
    }
    return static_cast<double>(snapshot.max);
}

std::string
renderPrometheus(const MetricsSnapshot &snapshot)
{
    std::ostringstream out;
    for (const auto &[name, value] : snapshot.counters) {
        const std::string prom = sanitizeName(name);
        out << "# TYPE " << prom << " counter\n";
        out << prom << " " << value << "\n";
    }
    for (const auto &[name, value] : snapshot.gauges) {
        const std::string prom = sanitizeName(name);
        out << "# TYPE " << prom << " gauge\n";
        out << prom << " " << value << "\n";
    }
    for (const auto &[name, hist] : snapshot.histograms) {
        const std::string prom = sanitizeName(name);
        out << "# TYPE " << prom << " summary\n";
        for (const double q : {0.5, 0.9, 0.99}) {
            out << prom << "{quantile=\"" << q << "\"} ";
            writeDouble(out, histogramQuantile(hist, q));
            out << "\n";
        }
        out << prom << "_sum " << hist.sum << "\n";
        out << prom << "_count " << hist.count << "\n";
    }
    return out.str();
}

std::string
renderPrometheusSnapshot()
{
    return renderPrometheus(snapshotMetrics());
}

std::uint64_t
peakRssBytes()
{
#if defined(__linux__)
    std::ifstream status("/proc/self/status");
    std::string line;
    while (std::getline(status, line)) {
        if (line.rfind("VmHWM:", 0) != 0)
            continue;
        std::istringstream fields(line.substr(6));
        std::uint64_t kib = 0;
        fields >> kib;
        return kib * 1024;
    }
#endif
    return 0;
}

std::uint64_t
processCpuNs()
{
#if defined(__unix__) || defined(__APPLE__)
    timespec ts{};
    if (clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts) == 0)
        return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ull +
               static_cast<std::uint64_t>(ts.tv_nsec);
#endif
    return 0;
}

std::uint64_t
threadCpuNs()
{
#if defined(__unix__) || defined(__APPLE__)
    timespec ts{};
    if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0)
        return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ull +
               static_cast<std::uint64_t>(ts.tv_nsec);
#endif
    return 0;
}

} // namespace smq::obs
