#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <vector>

#include "obs/exposition.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/names.hpp"

namespace smq::obs {

namespace {

/** One completed span, buffered per thread until stopTracing(). */
struct SpanEvent
{
    const char *name;
    std::string args;      ///< pre-rendered JSON object body
    std::uint64_t startNs; ///< relative to the trace epoch
    std::uint64_t durNs;
    std::uint32_t tid;
};

struct TraceState
{
    std::mutex mutex;
    std::string dir;
    std::chrono::steady_clock::time_point epoch;
    /** Buffers of threads that have exited (moved in by dtors). */
    std::vector<std::vector<SpanEvent>> retired;
    /** Live per-thread buffers, registered on first span. */
    std::vector<std::vector<SpanEvent> *> live;
    std::uint32_t nextTid = 0;
};

TraceState &
state()
{
    static TraceState s;
    return s;
}

/**
 * Per-thread event buffer. Registered with the global state on
 * construction; on thread exit the events migrate to the retired
 * list so pools torn down before stopTracing() lose nothing.
 */
struct ThreadBuffer
{
    std::vector<SpanEvent> events;
    std::uint32_t tid = 0;

    ThreadBuffer()
    {
        TraceState &s = state();
        std::lock_guard<std::mutex> lock(s.mutex);
        tid = s.nextTid++;
        s.live.push_back(&events);
    }

    ~ThreadBuffer()
    {
        TraceState &s = state();
        std::lock_guard<std::mutex> lock(s.mutex);
        s.live.erase(
            std::remove(s.live.begin(), s.live.end(), &events),
            s.live.end());
        if (!events.empty())
            s.retired.push_back(std::move(events));
    }
};

ThreadBuffer &
threadBuffer()
{
    thread_local ThreadBuffer buffer;
    return buffer;
}

std::uint64_t
nowNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - state().epoch)
            .count());
}

/**
 * Stamp @p context into a pre-rendered args body so cross-process
 * consumers can stitch the event into its trace. No-op without a
 * valid context, which keeps single-process traces byte-identical to
 * what they were before propagation existed.
 */
void
appendContextFields(std::string &args, const TraceContext &context)
{
    if (!context.valid())
        return;
    if (!args.empty())
        args += ',';
    args += jsonField("trace.id", context.traceIdHex());
    args += ',';
    args += jsonField("trace.parent", context.parentSpanHex());
}

void
writeEventJson(std::ostream &out, const SpanEvent &e)
{
    // Chrome trace "complete" event; ts/dur are microseconds.
    out << "{\"name\":\"" << escapeJson(e.name)
        << "\",\"cat\":\"smq\",\"ph\":\"X\",\"ts\":"
        << static_cast<double>(e.startNs) / 1000.0
        << ",\"dur\":" << static_cast<double>(e.durNs) / 1000.0
        << ",\"pid\":1,\"tid\":" << e.tid << ",\"args\":{" << e.args
        << "}}";
}

} // namespace

bool
spanSinkActive()
{
    return tracingEnabled() || metricsEnabled();
}

void
startTracing(const std::string &dir)
{
    TraceState &s = state();
    {
        std::lock_guard<std::mutex> lock(s.mutex);
        s.dir = dir;
        s.epoch = std::chrono::steady_clock::now();
    }
    std::filesystem::create_directories(dir);
    detail::g_tracingEnabled.store(true, std::memory_order_relaxed);
}

void
stopTracing()
{
    if (!tracingEnabled())
        return;
    detail::g_tracingEnabled.store(false, std::memory_order_relaxed);

    TraceState &s = state();
    std::vector<SpanEvent> events;
    std::string dir;
    {
        std::lock_guard<std::mutex> lock(s.mutex);
        dir = s.dir;
        for (std::vector<SpanEvent> *buf : s.live) {
            events.insert(events.end(),
                          std::make_move_iterator(buf->begin()),
                          std::make_move_iterator(buf->end()));
            buf->clear();
        }
        for (std::vector<SpanEvent> &buf : s.retired)
            events.insert(events.end(),
                          std::make_move_iterator(buf.begin()),
                          std::make_move_iterator(buf.end()));
        s.retired.clear();
    }

    // Stable output order regardless of which thread buffered what.
    std::sort(events.begin(), events.end(),
              [](const SpanEvent &a, const SpanEvent &b) {
                  if (a.startNs != b.startNs)
                      return a.startNs < b.startNs;
                  if (a.tid != b.tid)
                      return a.tid < b.tid;
                  return a.durNs > b.durNs; // parents before children
              });

    std::ofstream trace(dir + "/trace.json", std::ios::trunc);
    std::ofstream jsonl(dir + "/events.jsonl", std::ios::trunc);
    trace.precision(3);
    jsonl.precision(3);
    trace << std::fixed << "{\"traceEvents\":[\n";
    jsonl << std::fixed;
    for (std::size_t i = 0; i < events.size(); ++i) {
        writeEventJson(trace, events[i]);
        trace << (i + 1 < events.size() ? ",\n" : "\n");
        writeEventJson(jsonl, events[i]);
        jsonl << "\n";
    }
    trace << "]}\n";
}

std::string
jsonField(std::string_view key, std::string_view value)
{
    std::string out = "\"";
    out += escapeJson(key);
    out += "\":\"";
    out += escapeJson(value);
    out += '"';
    return out;
}

std::string
jsonField(std::string_view key, std::uint64_t value)
{
    std::string out = "\"";
    out += escapeJson(key);
    out += "\":";
    out += std::to_string(value);
    return out;
}

std::uint64_t
traceNowNs()
{
    return tracingEnabled() ? nowNs() : 0;
}

void
recordSpan(const char *name, std::uint64_t start_ns,
           std::uint64_t dur_ns, std::string args)
{
    if (metricsEnabled()) {
        histogram(std::string(names::kStageHistogramPrefix) + name +
                  names::kStageHistogramSuffix)
            .record(dur_ns);
    }
    if (tracingEnabled()) {
        appendContextFields(args, currentTraceContext());
        ThreadBuffer &buf = threadBuffer();
        buf.events.push_back(
            {name, std::move(args), start_ns, dur_ns, buf.tid});
    }
}

SpanScope::SpanScope(const char *name, std::string args)
    : name_(name), args_(std::move(args))
{
    if (!spanSinkActive())
        return;
    active_ = true;
    context_ = currentTraceContext();
    if (metricsEnabled())
        cpuStartNs_ = threadCpuNs();
    startNs_ = nowNs();
}

SpanScope::~SpanScope()
{
    if (!active_)
        return;
    const std::uint64_t dur = nowNs() - startNs_;
    if (metricsEnabled()) {
        histogram(std::string(names::kStageHistogramPrefix) + name_ +
                  names::kStageHistogramSuffix)
            .record(dur);
        counter(std::string(names::kCpuCounterPrefix) + name_ +
                names::kCpuCounterSuffix)
            .add(threadCpuNs() - cpuStartNs_);
    }
    if (tracingEnabled()) {
        appendContextFields(args_, context_);
        ThreadBuffer &buf = threadBuffer();
        buf.events.push_back(
            {name_, std::move(args_), startNs_, dur, buf.tid});
    }
}

} // namespace smq::obs
