/**
 * @file
 * Live progress reporting for long sweeps.
 *
 * A `--jobs 8` Fig. 2 grid is minutes of silence without this: the
 * progress sink turns unit-of-work completions (grid cells, scoring
 * repetitions) into either a single self-overwriting TTY status line
 * or a machine-readable JSONL heartbeat stream for CI logs.
 *
 * The sink is **off by default and zero-cost when off**: every
 * progressTick() site first reads one relaxed atomic bool and does
 * nothing else while it is false. When on, emission is rate-limited
 * (ProgressOptions::heartbeatSecs) and guarded by a mutex, and output
 * goes to a side channel (stderr by default) — the sink never touches
 * RNG streams, task ordering, or simulated state, so a progress-
 * reporting run stays byte-identical to a silent one (asserted by
 * `ctest -L report`).
 *
 * Phases are coarse: the coordinating thread opens one with
 * progressBegin(phase, unit, total, jobs) and closes it with
 * progressEnd(). Worker threads call progressTick(unit); ticks whose
 * unit does not match the active phase's unit are ignored, so nested
 * instrumentation (repetitions inside a cell-counting grid) cannot
 * double-count. ETA blends the mean of the `stage.<unit>.ns`
 * histogram (when metrics are enabled) with the observed completion
 * rate, divided by the worker width.
 */

#ifndef SMQ_OBS_PROGRESS_HPP
#define SMQ_OBS_PROGRESS_HPP

#include <atomic>
#include <cstdint>
#include <iosfwd>

namespace smq::obs {

namespace detail {
inline std::atomic<bool> g_progressEnabled{false};
} // namespace detail

/** Whether startProgress() is active (one relaxed load). */
inline bool
progressEnabled()
{
    return detail::g_progressEnabled.load(std::memory_order_relaxed);
}

/** Configuration for the process-wide progress sink. */
struct ProgressOptions
{
    enum class Mode {
        Off,
        Tty,  ///< single `\r`-overwritten status line
        Jsonl ///< one JSON object per emission (CI logs)
    };
    Mode mode = Mode::Off;
    /** Minimum seconds between emissions (0 = emit on every tick). */
    double heartbeatSecs = 1.0;
    /** Emission stream; nullptr = std::cerr. */
    std::ostream *out = nullptr;
};

/** Enable the sink. A second start replaces the configuration. */
void startProgress(const ProgressOptions &options);

/** Final emission for an open phase, then disable. Safe when off. */
void stopProgress();

/**
 * Open a phase of @p total units named @p unit, executed @p jobs wide
 * (0 = hardware width). No-op while the sink is off. Call from the
 * coordinating thread, not from workers.
 */
void progressBegin(const char *phase, const char *unit,
                   std::uint64_t total, std::size_t jobs);

/** Close the active phase with a final emission. No-op when off. */
void progressEnd();

/**
 * Record @p delta completed units of kind @p unit. Thread-safe; free
 * while the sink is off; ignored when @p unit differs from the active
 * phase's unit.
 */
void progressTick(const char *unit, std::uint64_t delta = 1);

} // namespace smq::obs

#endif // SMQ_OBS_PROGRESS_HPP
