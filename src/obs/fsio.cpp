#include "obs/fsio.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <mutex>

#include <fcntl.h>
#include <unistd.h>

namespace smq::obs {

namespace {

/** "stage: strerror(errno)" into @p error (when asked for). */
void
setError(std::string *error, const char *stage, int saved_errno)
{
    if (error == nullptr)
        return;
    *error = std::string(stage) + ": " + std::strerror(saved_errno);
}

bool
writeAll(int fd, const char *data, std::size_t size)
{
    while (size > 0) {
        ssize_t n = ::write(fd, data, size);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        data += n;
        size -= static_cast<std::size_t>(n);
    }
    return true;
}

} // namespace

bool
atomicWriteFile(const std::string &path, std::string_view contents,
                std::string *error)
{
    const std::string tmp = path + ".tmp";
    int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) {
        setError(error, "open", errno);
        return false;
    }
    bool ok = writeAll(fd, contents.data(), contents.size());
    if (!ok)
        setError(error, "write", errno);
    // fsync before rename: without it a crash between rename and the
    // delayed writeback could leave a truncated *destination*.
    if (::fsync(fd) != 0) {
        if (ok)
            setError(error, "fsync", errno);
        ok = false;
    }
    if (::close(fd) != 0) {
        if (ok)
            setError(error, "close", errno);
        ok = false;
    }
    if (ok && ::rename(tmp.c_str(), path.c_str()) != 0) {
        setError(error, "rename", errno);
        ok = false;
    }
    if (!ok)
        ::unlink(tmp.c_str());
    return ok;
}

bool
appendLineDurable(const std::string &path, std::string_view line,
                  std::string *error)
{
    // One writer at a time in-process; O_APPEND makes the offset+write
    // atomic against other processes appending to the same file.
    static std::mutex mutex;
    std::lock_guard<std::mutex> lock(mutex);

    std::string buffer(line);
    if (buffer.empty() || buffer.back() != '\n')
        buffer += '\n';

    int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (fd < 0) {
        setError(error, "open", errno);
        return false;
    }
    bool ok = writeAll(fd, buffer.data(), buffer.size());
    if (!ok)
        setError(error, "write", errno);
    if (::fsync(fd) != 0) {
        if (ok)
            setError(error, "fsync", errno);
        ok = false;
    }
    if (::close(fd) != 0) {
        if (ok)
            setError(error, "close", errno);
        ok = false;
    }
    return ok;
}

} // namespace smq::obs
