#include "obs/fsio.hpp"

#include <cerrno>
#include <cstdio>
#include <mutex>

#include <fcntl.h>
#include <unistd.h>

namespace smq::obs {

namespace {

bool
writeAll(int fd, const char *data, std::size_t size)
{
    while (size > 0) {
        ssize_t n = ::write(fd, data, size);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        data += n;
        size -= static_cast<std::size_t>(n);
    }
    return true;
}

} // namespace

bool
atomicWriteFile(const std::string &path, std::string_view contents)
{
    const std::string tmp = path + ".tmp";
    int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0)
        return false;
    bool ok = writeAll(fd, contents.data(), contents.size());
    // fsync before rename: without it a crash between rename and the
    // delayed writeback could leave a truncated *destination*.
    ok = (::fsync(fd) == 0) && ok;
    ok = (::close(fd) == 0) && ok;
    if (!ok || ::rename(tmp.c_str(), path.c_str()) != 0) {
        ::unlink(tmp.c_str());
        return false;
    }
    return true;
}

bool
appendLineDurable(const std::string &path, std::string_view line)
{
    // One writer at a time in-process; O_APPEND makes the offset+write
    // atomic against other processes appending to the same file.
    static std::mutex mutex;
    std::lock_guard<std::mutex> lock(mutex);

    std::string buffer(line);
    if (buffer.empty() || buffer.back() != '\n')
        buffer += '\n';

    int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (fd < 0)
        return false;
    bool ok = writeAll(fd, buffer.data(), buffer.size());
    ok = (::fsync(fd) == 0) && ok;
    ok = (::close(fd) == 0) && ok;
    return ok;
}

} // namespace smq::obs
