#include "obs/json.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace smq::obs {

namespace {

class Parser
{
  public:
    explicit Parser(std::string_view src) : src_(src) {}

    JsonValue document()
    {
        JsonValue v = value();
        skipWhitespace();
        if (pos_ != src_.size())
            fail("trailing characters after document");
        return v;
    }

  private:
    [[noreturn]] void fail(const std::string &what)
    {
        throw std::runtime_error("json: " + what + " at byte " +
                                 std::to_string(pos_));
    }

    void skipWhitespace()
    {
        while (pos_ < src_.size() &&
               (src_[pos_] == ' ' || src_[pos_] == '\t' ||
                src_[pos_] == '\n' || src_[pos_] == '\r'))
            ++pos_;
    }

    char peek()
    {
        if (pos_ >= src_.size())
            fail("unexpected end of input");
        return src_[pos_];
    }

    void expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    bool consumeLiteral(std::string_view lit)
    {
        if (src_.substr(pos_, lit.size()) != lit)
            return false;
        pos_ += lit.size();
        return true;
    }

    JsonValue value()
    {
        skipWhitespace();
        char c = peek();
        switch (c) {
          case '{': return objectValue();
          case '[': return arrayValue();
          case '"': return stringValue();
          case 't':
          case 'f': return boolValue();
          case 'n': return nullValue();
          default: return numberValue();
        }
    }

    JsonValue objectValue()
    {
        JsonValue v;
        v.kind = JsonValue::Kind::Object;
        expect('{');
        skipWhitespace();
        if (peek() == '}') {
            ++pos_;
            return v;
        }
        for (;;) {
            skipWhitespace();
            JsonValue key = stringValue();
            skipWhitespace();
            expect(':');
            v.object.emplace_back(std::move(key.text), value());
            skipWhitespace();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return v;
        }
    }

    JsonValue arrayValue()
    {
        JsonValue v;
        v.kind = JsonValue::Kind::Array;
        expect('[');
        skipWhitespace();
        if (peek() == ']') {
            ++pos_;
            return v;
        }
        for (;;) {
            v.array.push_back(value());
            skipWhitespace();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return v;
        }
    }

    JsonValue stringValue()
    {
        JsonValue v;
        v.kind = JsonValue::Kind::String;
        expect('"');
        for (;;) {
            if (pos_ >= src_.size())
                fail("unterminated string");
            char c = src_[pos_++];
            if (c == '"')
                return v;
            if (c != '\\') {
                v.text += c;
                continue;
            }
            if (pos_ >= src_.size())
                fail("dangling escape");
            char esc = src_[pos_++];
            switch (esc) {
              case '"': v.text += '"'; break;
              case '\\': v.text += '\\'; break;
              case '/': v.text += '/'; break;
              case 'b': v.text += '\b'; break;
              case 'f': v.text += '\f'; break;
              case 'n': v.text += '\n'; break;
              case 'r': v.text += '\r'; break;
              case 't': v.text += '\t'; break;
              case 'u': {
                  if (pos_ + 4 > src_.size())
                      fail("truncated \\u escape");
                  unsigned code = 0;
                  for (int i = 0; i < 4; ++i) {
                      char h = src_[pos_++];
                      code <<= 4;
                      if (h >= '0' && h <= '9')
                          code += static_cast<unsigned>(h - '0');
                      else if (h >= 'a' && h <= 'f')
                          code += static_cast<unsigned>(h - 'a' + 10);
                      else if (h >= 'A' && h <= 'F')
                          code += static_cast<unsigned>(h - 'A' + 10);
                      else
                          fail("bad \\u escape digit");
                  }
                  // Our writers only escape control chars; encode the
                  // code point as UTF-8 without surrogate handling.
                  if (code < 0x80) {
                      v.text += static_cast<char>(code);
                  } else if (code < 0x800) {
                      v.text += static_cast<char>(0xC0 | (code >> 6));
                      v.text +=
                          static_cast<char>(0x80 | (code & 0x3F));
                  } else {
                      v.text += static_cast<char>(0xE0 | (code >> 12));
                      v.text += static_cast<char>(
                          0x80 | ((code >> 6) & 0x3F));
                      v.text +=
                          static_cast<char>(0x80 | (code & 0x3F));
                  }
                  break;
              }
              default: fail("unknown escape");
            }
        }
    }

    JsonValue boolValue()
    {
        JsonValue v;
        v.kind = JsonValue::Kind::Bool;
        if (consumeLiteral("true"))
            v.boolean = true;
        else if (consumeLiteral("false"))
            v.boolean = false;
        else
            fail("bad literal");
        return v;
    }

    JsonValue nullValue()
    {
        if (!consumeLiteral("null"))
            fail("bad literal");
        return JsonValue{};
    }

    JsonValue numberValue()
    {
        JsonValue v;
        v.kind = JsonValue::Kind::Number;
        std::size_t start = pos_;
        if (pos_ < src_.size() && src_[pos_] == '-')
            ++pos_;
        bool digits = false;
        auto eatDigits = [&] {
            while (pos_ < src_.size() &&
                   std::isdigit(static_cast<unsigned char>(src_[pos_]))) {
                ++pos_;
                digits = true;
            }
        };
        eatDigits();
        if (pos_ < src_.size() && src_[pos_] == '.') {
            ++pos_;
            eatDigits();
        }
        if (pos_ < src_.size() &&
            (src_[pos_] == 'e' || src_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < src_.size() &&
                (src_[pos_] == '+' || src_[pos_] == '-'))
                ++pos_;
            eatDigits();
        }
        if (!digits)
            fail("malformed number");
        v.text = std::string(src_.substr(start, pos_ - start));
        return v;
    }

    std::string_view src_;
    std::size_t pos_ = 0;
};

} // namespace

const JsonValue *
JsonValue::find(std::string_view key) const
{
    if (kind != Kind::Object)
        return nullptr;
    for (const auto &[k, v] : object) {
        if (k == key)
            return &v;
    }
    return nullptr;
}

const JsonValue &
JsonValue::at(std::string_view key) const
{
    const JsonValue *v = find(key);
    if (!v)
        throw std::runtime_error("json: missing required field '" +
                                 std::string(key) + "'");
    return *v;
}

bool
JsonValue::asBool() const
{
    if (kind != Kind::Bool)
        throw std::runtime_error("json: not a bool");
    return boolean;
}

double
JsonValue::asDouble() const
{
    if (kind != Kind::Number)
        throw std::runtime_error("json: not a number");
    return std::strtod(text.c_str(), nullptr);
}

std::uint64_t
JsonValue::asU64() const
{
    if (kind != Kind::Number)
        throw std::runtime_error("json: not a number");
    return std::strtoull(text.c_str(), nullptr, 10);
}

const std::string &
JsonValue::asString() const
{
    if (kind != Kind::String)
        throw std::runtime_error("json: not a string");
    return text;
}

JsonValue
parseJson(std::string_view source)
{
    return Parser(source).document();
}

std::string
escapeJson(std::string_view raw)
{
    std::string out;
    out.reserve(raw.size() + 8);
    for (char c : raw) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace smq::obs
