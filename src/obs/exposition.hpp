/**
 * @file
 * Metrics exposition and resource accounting.
 *
 * Three small consumers of the registry that every surface shares:
 *
 *  1. histogramQuantile() — the ONE place quantiles are derived from
 *     the log2-bucketed HistogramSnapshot. The serve `stats` reply,
 *     the Prometheus rendering and the HTML report all call it, so
 *     p50/p90/p99 can never disagree between surfaces.
 *  2. renderPrometheus() — the full registry as Prometheus text
 *     exposition format (counters, gauges, histograms as summaries
 *     with quantile lines), deterministic byte-for-byte for a given
 *     snapshot. `smq_serve --metrics-file PATH` writes it; any
 *     node-exporter-style textfile collector can scrape it.
 *  3. peakRssBytes() / processCpuNs() / threadCpuNs() — per-process
 *     resource probes (Linux `/proc/self/status` VmHWM and the POSIX
 *     CPU-time clocks) recorded into RunManifests as the `rss.*` /
 *     `cpu.*` accounting documented in OBSERVABILITY.md. Probes
 *     return 0 where the platform cannot answer; they never throw.
 */

#ifndef SMQ_OBS_EXPOSITION_HPP
#define SMQ_OBS_EXPOSITION_HPP

#include <cstdint>
#include <string>

#include "obs/metrics.hpp"

namespace smq::obs {

/**
 * Approximate the @p q quantile (0 ≤ q ≤ 1) of @p snapshot from its
 * log2 buckets: walk the cumulative bucket counts to the target rank,
 * interpolate linearly inside the covering bucket, and clamp to the
 * exact [min, max] the snapshot recorded. Deterministic — a pure
 * function of the snapshot. Returns 0 for an empty histogram.
 */
double histogramQuantile(const HistogramSnapshot &snapshot, double q);

/**
 * Render @p snapshot in Prometheus text exposition format. Metric
 * names are prefixed `smq_` and sanitized to the Prometheus charset
 * (every character outside [a-zA-Z0-9_:] becomes `_`). Counters
 * render as `counter`, gauges as `gauge`, histograms as `summary`
 * with p50/p90/p99 quantile lines plus `_sum`/`_count`. Output is
 * sorted by name — byte-identical for a given snapshot.
 */
std::string renderPrometheus(const MetricsSnapshot &snapshot);

/** Registry-wide convenience: renderPrometheus(snapshotMetrics()). */
std::string renderPrometheusSnapshot();

/**
 * Peak resident set size of this process in bytes (`VmHWM` from
 * /proc/self/status). 0 when the platform has no such probe.
 */
std::uint64_t peakRssBytes();

/** Process-wide CPU time (user+sys, all threads) in ns; 0 if unavailable. */
std::uint64_t processCpuNs();

/** Calling thread's CPU time in ns; 0 if unavailable. */
std::uint64_t threadCpuNs();

} // namespace smq::obs

#endif // SMQ_OBS_EXPOSITION_HPP
