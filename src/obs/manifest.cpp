#include "obs/manifest.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "obs/exposition.hpp"
#include "obs/fsio.hpp"
#include "obs/json.hpp"
#include "obs/names.hpp"

namespace smq::obs {

namespace {

/** "stage.<name>.ns" -> "<name>", or empty when not a stage metric. */
std::string
stageNameOf(const std::string &histogram_name)
{
    const std::string prefix = names::kStageHistogramPrefix;
    const std::string suffix = names::kStageHistogramSuffix;
    if (histogram_name.size() <= prefix.size() + suffix.size())
        return {};
    if (histogram_name.compare(0, prefix.size(), prefix) != 0)
        return {};
    if (histogram_name.compare(histogram_name.size() - suffix.size(),
                               suffix.size(), suffix) != 0)
        return {};
    return histogram_name.substr(
        prefix.size(),
        histogram_name.size() - prefix.size() - suffix.size());
}

} // namespace

RunManifest
RunManifest::capture(std::string tool)
{
    RunManifest m;
    m.tool = std::move(tool);
#ifdef SMQ_GIT_REV
    m.gitRev = SMQ_GIT_REV;
#endif
    MetricsSnapshot snap = snapshotMetrics();
    for (const auto &[name, value] : snap.counters) {
        if (value != 0)
            m.counters[name] = value;
    }
    for (const auto &[name, hist] : snap.histograms) {
        std::string stage = stageNameOf(name);
        if (stage.empty() || hist.count == 0)
            continue;
        m.stages[stage] =
            StageRollup{hist.count, hist.sum, hist.min, hist.max};
    }
    m.cacheHits = snap.counters.count(names::kTranspileCacheHit)
                      ? snap.counters.at(names::kTranspileCacheHit)
                      : 0;
    m.cacheMisses = snap.counters.count(names::kTranspileCacheMiss)
                        ? snap.counters.at(names::kTranspileCacheMiss)
                        : 0;
    // Per-run resource accounting: peak RSS and total process CPU
    // time ride in the counters map so they flatten into the history
    // store with everything else. Platforms without the probes (both
    // return 0 there) simply omit the keys.
    if (const std::uint64_t rss = peakRssBytes())
        m.counters[names::kRssPeakBytes] = rss;
    if (const std::uint64_t cpu = processCpuNs())
        m.counters[names::kCpuProcessNs] = cpu;
    return m;
}

std::string
RunManifest::toJson() const
{
    std::ostringstream out;
    out << "{\n";
    out << "  \"schema\": \"" << escapeJson(schema) << "\",\n";
    out << "  \"tool\": \"" << escapeJson(tool) << "\",\n";
    out << "  \"git_rev\": \"" << escapeJson(gitRev) << "\",\n";
    out << "  \"device_table_version\": \""
        << escapeJson(deviceTableVersion) << "\",\n";
    out << "  \"config\": {\n";
    out << "    \"seed\": " << seed << ",\n";
    out << "    \"shots\": " << shots << ",\n";
    out << "    \"repetitions\": " << repetitions << ",\n";
    out << "    \"jobs\": " << jobs << ",\n";
    out << "    \"faults\": " << (faultsEnabled ? "true" : "false")
        << ",\n";
    out << "    \"fault_seed\": " << faultSeed << ",\n";
    out << "    \"trace_dir\": \"" << escapeJson(traceDir) << "\"\n";
    out << "  },\n";
    out << "  \"transpile_cache\": {\"hits\": " << cacheHits
        << ", \"misses\": " << cacheMisses << "},\n";
    out << "  \"counters\": {";
    bool first = true;
    for (const auto &[name, value] : counters) {
        out << (first ? "\n" : ",\n") << "    \"" << escapeJson(name)
            << "\": " << value;
        first = false;
    }
    out << (first ? "" : "\n  ") << "},\n";
    out << "  \"stages\": {";
    first = true;
    for (const auto &[name, s] : stages) {
        out << (first ? "\n" : ",\n") << "    \"" << escapeJson(name)
            << "\": {\"count\": " << s.count
            << ", \"total_ns\": " << s.totalNs
            << ", \"min_ns\": " << s.minNs
            << ", \"max_ns\": " << s.maxNs << "}";
        first = false;
    }
    out << (first ? "" : "\n  ") << "},\n";
    out << "  \"extra\": {";
    first = true;
    for (const auto &[key, value] : extra) {
        out << (first ? "\n" : ",\n") << "    \"" << escapeJson(key)
            << "\": \"" << escapeJson(value) << "\"";
        first = false;
    }
    out << (first ? "" : "\n  ") << "}\n";
    out << "}\n";
    return out.str();
}

bool
RunManifest::writeFile(const std::string &path) const
{
    // tmp + fsync + rename: a crash mid-run can leave an orphaned temp
    // file but never a truncated <tool>_manifest.json.
    return atomicWriteFile(path, toJson());
}

RunManifest
RunManifest::fromJson(const std::string &json)
{
    JsonValue root = parseJson(json);
    RunManifest m;
    m.schema = root.at("schema").asString();
    if (m.schema != kManifestSchema)
        throw std::runtime_error("manifest: unknown schema '" +
                                 m.schema + "'");
    m.tool = root.at("tool").asString();
    m.gitRev = root.at("git_rev").asString();
    m.deviceTableVersion = root.at("device_table_version").asString();

    const JsonValue &config = root.at("config");
    m.seed = config.at("seed").asU64();
    m.shots = config.at("shots").asU64();
    m.repetitions = config.at("repetitions").asU64();
    m.jobs = config.at("jobs").asU64();
    m.faultsEnabled = config.at("faults").asBool();
    m.faultSeed = config.at("fault_seed").asU64();
    m.traceDir = config.at("trace_dir").asString();

    const JsonValue &cache = root.at("transpile_cache");
    m.cacheHits = cache.at("hits").asU64();
    m.cacheMisses = cache.at("misses").asU64();

    for (const auto &[name, value] : root.at("counters").object)
        m.counters[name] = value.asU64();
    for (const auto &[name, value] : root.at("stages").object) {
        m.stages[name] = StageRollup{value.at("count").asU64(),
                                     value.at("total_ns").asU64(),
                                     value.at("min_ns").asU64(),
                                     value.at("max_ns").asU64()};
    }
    for (const auto &[key, value] : root.at("extra").object)
        m.extra[key] = value.asString();
    return m;
}

RunManifest
RunManifest::readFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        throw std::runtime_error("manifest: cannot open " + path);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return fromJson(buffer.str());
}

} // namespace smq::obs
