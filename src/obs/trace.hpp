/**
 * @file
 * Scoped-span tracing with Chrome-trace and JSONL output.
 *
 * `SMQ_TRACE_SPAN("stage", args...)` opens an RAII span covering the
 * enclosing scope. While tracing is enabled (startTracing()), every
 * completed span is appended to a per-thread buffer — no locks, no
 * cross-thread traffic on the hot path — and stopTracing() merges the
 * buffers into two files in the trace directory:
 *
 *   - `trace.json`   Chrome trace-event format: open about://tracing
 *                    (or https://ui.perfetto.dev) and load the file.
 *   - `events.jsonl` one JSON object per line, for scripting/grep.
 *
 * Independently of tracing, while *metrics* are enabled every span end
 * records its duration into the histogram `stage.<name>.ns`, which is
 * what RunManifest reports as per-stage rollups. With both tracing and
 * metrics disabled a span costs two relaxed atomic loads.
 *
 * Span args are a pre-rendered JSON object body built with
 * jsonField(); the SMQ_TRACE_SPAN macro evaluates that expression only
 * when a span sink is active, so label formatting is also free when
 * the layer is off.
 *
 * Determinism contract: spans observe wall time but never touch RNG
 * streams, task ordering, or any simulated state, so enabling tracing
 * cannot perturb benchmark results (asserted by `ctest -L obs`).
 */

#ifndef SMQ_OBS_TRACE_HPP
#define SMQ_OBS_TRACE_HPP

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

#include "obs/trace_context.hpp"

namespace smq::obs {

namespace detail {
inline std::atomic<bool> g_tracingEnabled{false};
} // namespace detail

/** Whether startTracing() is active. */
inline bool
tracingEnabled()
{
    return detail::g_tracingEnabled.load(std::memory_order_relaxed);
}

/** True when spans have any active sink (trace files or metrics). */
bool spanSinkActive();

/**
 * Begin recording spans, to be written under @p dir (created if
 * missing) by stopTracing(). Not reentrant: a second start before
 * stop replaces the directory but keeps accumulated spans.
 */
void startTracing(const std::string &dir);

/**
 * Write `trace.json` + `events.jsonl` into the directory given to
 * startTracing(), clear all buffered spans, and disable tracing.
 * Must not race with in-flight spans (call from the coordinating
 * thread once worker pools have drained). No-op if tracing is off.
 */
void stopTracing();

/** `"key":"<escaped value>"` fragment for span args. */
std::string jsonField(std::string_view key, std::string_view value);

/** `"key":<value>` fragment for span args. */
std::string jsonField(std::string_view key, std::uint64_t value);

/**
 * Nanoseconds since the trace epoch, or 0 while tracing is off. For
 * call sites that need to timestamp the *start* of a non-RAII span
 * (e.g. the serve queue records [enqueue, dequeue)) long before they
 * can record it.
 */
std::uint64_t traceNowNs();

/**
 * Record one completed span outside RAII scoping: feeds the
 * `stage.<name>.ns` histogram while metrics are enabled and buffers a
 * trace event (stamped with the calling thread's TraceContext) while
 * tracing is enabled — exactly the sinks a SpanScope feeds. @p name
 * must outlive the trace session (pass a `names.hpp` constant).
 */
void recordSpan(const char *name, std::uint64_t start_ns,
                std::uint64_t dur_ns, std::string args = {});

/**
 * RAII span: records [construction, destruction) against the calling
 * thread. Use through SMQ_TRACE_SPAN rather than directly so the
 * args expression stays unevaluated when the layer is disabled.
 */
class SpanScope
{
  public:
    explicit SpanScope(const char *name, std::string args = {});
    SpanScope(const SpanScope &) = delete;
    SpanScope &operator=(const SpanScope &) = delete;
    ~SpanScope();

  private:
    const char *name_;
    std::string args_;
    TraceContext context_; ///< captured at open; stamped into args
    std::uint64_t startNs_ = 0;
    std::uint64_t cpuStartNs_ = 0;
    bool active_ = false;
};

#define SMQ_OBS_CAT2(a, b) a##b
#define SMQ_OBS_CAT(a, b) SMQ_OBS_CAT2(a, b)

/**
 * Open a span named @p name for the rest of the enclosing scope.
 * Optional second argument: a span-args JSON body, e.g.
 *   SMQ_TRACE_SPAN("repetition",
 *                  obs::jsonField("benchmark", b) + "," +
 *                  obs::jsonField("rep", rep));
 * The args expression is evaluated only while a sink is active.
 */
#define SMQ_TRACE_SPAN(...)                                              \
    ::smq::obs::SpanScope SMQ_OBS_CAT(smq_obs_span_, __LINE__)(          \
        SMQ_TRACE_SPAN_IMPL(__VA_ARGS__))
#define SMQ_TRACE_SPAN_IMPL(name, ...)                                   \
    (name) __VA_OPT__(, ::smq::obs::spanSinkActive()                     \
                             ? std::string(__VA_ARGS__)                  \
                             : std::string())

} // namespace smq::obs

#endif // SMQ_OBS_TRACE_HPP
