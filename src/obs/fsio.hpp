/**
 * @file
 * Crash-safe file primitives for the observability artifacts.
 *
 * Two write disciplines cover every telemetry file in the repo:
 *
 *  - atomicWriteFile(): write-to-temp, fsync, rename. A reader never
 *    sees a half-written manifest/report, and a crash mid-write leaves
 *    the previous version intact (the temp file is unlinked or
 *    orphaned, never the destination).
 *  - appendLineDurable(): one O_APPEND write of a full line followed
 *    by fsync, serialized by a process-wide mutex. Concurrent
 *    appenders (e.g. a `--jobs 8` sweep with per-cell records) cannot
 *    interleave bytes, and a crash can truncate at most the line being
 *    written — which the history loader tolerates by design.
 */

#ifndef SMQ_OBS_FSIO_HPP
#define SMQ_OBS_FSIO_HPP

#include <string>
#include <string_view>

namespace smq::obs {

/**
 * Replace @p path with @p contents via temp-file + fsync + rename.
 * @return false on any I/O failure (the destination is untouched).
 * When @p error is non-null it receives a "stage: strerror" message
 * (e.g. "write: No space left on device") so callers can surface
 * ENOSPC/EDQUOT as a structured failure instead of a silent false.
 */
bool atomicWriteFile(const std::string &path, std::string_view contents,
                     std::string *error = nullptr);

/**
 * Append @p line (a trailing newline is added if missing) to @p path
 * with a single write followed by fsync. Thread-safe within the
 * process. @return false on I/O failure, with the errno text in
 * @p error when provided.
 */
bool appendLineDurable(const std::string &path, std::string_view line,
                       std::string *error = nullptr);

} // namespace smq::obs

#endif // SMQ_OBS_FSIO_HPP
