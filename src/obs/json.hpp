/**
 * @file
 * Minimal JSON reading/writing for the observability artifacts.
 *
 * Scope is deliberately small: enough to round-trip RunManifest files
 * and to validate the Chrome-trace / JSONL outputs in tests. Numbers
 * keep their source text so 64-bit counters parse exactly (a double
 * would silently lose precision past 2^53).
 */

#ifndef SMQ_OBS_JSON_HPP
#define SMQ_OBS_JSON_HPP

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace smq::obs {

/** One parsed JSON value (tree-owning, order-preserving objects). */
class JsonValue
{
  public:
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Kind kind = Kind::Null;
    bool boolean = false;
    std::string text; ///< string payload, or the literal of a number
    std::vector<JsonValue> array;
    std::vector<std::pair<std::string, JsonValue>> object;

    bool isNull() const { return kind == Kind::Null; }

    /** Object member by key, or nullptr when absent / not an object. */
    const JsonValue *find(std::string_view key) const;

    /** @throws std::runtime_error when absent — for required fields. */
    const JsonValue &at(std::string_view key) const;

    /** @throws std::runtime_error on kind mismatch. */
    bool asBool() const;
    double asDouble() const;
    std::uint64_t asU64() const;
    const std::string &asString() const;
};

/**
 * Parse one JSON document. @throws std::runtime_error with a byte
 * offset on malformed input or trailing garbage.
 */
JsonValue parseJson(std::string_view source);

/** Escape @p raw for inclusion inside a JSON string literal. */
std::string escapeJson(std::string_view raw);

} // namespace smq::obs

#endif // SMQ_OBS_JSON_HPP
