/**
 * @file
 * Run manifests: the provenance record written next to every bench
 * and example output.
 *
 * A RunManifest captures what produced a set of numbers — seed, shot
 * and repetition counts, `--jobs` width, fault-injection config,
 * device table version, git revision — plus the outcome-side facts
 * the observability layer accumulated: transpile-cache hit/miss
 * counts, every registered counter, and per-stage wall-time rollups
 * from the span histograms. The JSON schema is documented (and
 * worked through) in docs/OBSERVABILITY.md; fromJson()/readFile()
 * parse it back, so manifests double as machine-readable inputs for
 * tooling and the `ctest -L obs` round-trip tests.
 *
 * Manifests are observational: writing one never mutates metric
 * state, and two manifests captured around the same work differ only
 * in what the run actually did.
 */

#ifndef SMQ_OBS_MANIFEST_HPP
#define SMQ_OBS_MANIFEST_HPP

#include <cstdint>
#include <map>
#include <string>

#include "obs/metrics.hpp"

namespace smq::obs {

/** Wall-time rollup of one span stage (from `stage.<name>.ns`). */
struct StageRollup
{
    std::uint64_t count = 0;   ///< completed spans
    std::uint64_t totalNs = 0; ///< summed duration
    std::uint64_t minNs = 0;
    std::uint64_t maxNs = 0;
};

/** Schema identifier written into (and required from) every file. */
inline constexpr const char *kManifestSchema = "smq-run-manifest-v1";

/** The provenance record for one bench/example invocation. */
struct RunManifest
{
    std::string schema = kManifestSchema;
    std::string tool;               ///< producing binary, e.g. "bench_fig2_scores"
    std::string gitRev = "unknown"; ///< source revision, if known at build time
    std::string deviceTableVersion; ///< device::kDeviceTableVersion of the run

    // --- execution configuration ------------------------------------
    std::uint64_t seed = 0;
    std::uint64_t shots = 0;
    std::uint64_t repetitions = 0;
    std::uint64_t jobs = 0;
    bool faultsEnabled = false;
    std::uint64_t faultSeed = 0;
    std::string traceDir; ///< empty = tracing was off

    // --- observed outcome --------------------------------------------
    std::uint64_t cacheHits = 0;
    std::uint64_t cacheMisses = 0;
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, StageRollup> stages;
    /** Tool-specific free-form facts (status tallies, scale notes). */
    std::map<std::string, std::string> extra;

    /**
     * Snapshot the registry into a manifest: counters with non-zero
     * values, stage rollups from the `stage.*.ns` histograms, and the
     * build-time git revision. Configuration fields are left for the
     * caller, which knows them.
     */
    static RunManifest capture(std::string tool);

    /** Serialize to the documented JSON schema (stable key order). */
    std::string toJson() const;

    /** Write toJson() to @p path. @return false on I/O failure. */
    bool writeFile(const std::string &path) const;

    /**
     * Parse a manifest. @throws std::runtime_error on malformed JSON
     * or a missing/mismatched schema field.
     */
    static RunManifest fromJson(const std::string &json);

    /** readFile(path) = fromJson(contents). @throws on I/O failure. */
    static RunManifest readFile(const std::string &path);
};

} // namespace smq::obs

#endif // SMQ_OBS_MANIFEST_HPP
