#include "serve/factory.hpp"

#include <cctype>
#include <exception>
#include <optional>
#include <string>

#include "core/benchmarks/error_correction.hpp"
#include "core/benchmarks/ghz.hpp"
#include "core/benchmarks/hamiltonian_simulation.hpp"
#include "core/benchmarks/mermin_bell.hpp"
#include "core/benchmarks/qaoa.hpp"
#include "core/benchmarks/vqe.hpp"

namespace smq::serve {

namespace {

// Size ceilings keep a *request* from becoming a resource attack at
// construction time. Non-variational circuits are cheap to build at
// any size (the harness itself reports oversized registers as
// TooLarge), but the variational benchmarks run their classical
// optimiser against a noiseless statevector when constructed, so
// their width must stay in the exactly-simulable regime.
constexpr std::size_t kMaxStructuralQubits = 1000;
constexpr std::size_t kMaxVariationalQubits = 12;
constexpr std::size_t kMaxRounds = 100;
constexpr std::size_t kMaxLevels = 8;

/** Cursor over the size suffix of a benchmark name. */
class NameCursor
{
  public:
    explicit NameCursor(std::string_view text) : text_(text) {}

    /** Consume a decimal run (no sign, no leading-zero tolerance). */
    std::optional<std::size_t> number()
    {
        if (pos_ >= text_.size() ||
            !std::isdigit(static_cast<unsigned char>(text_[pos_])))
            return std::nullopt;
        std::size_t value = 0;
        while (pos_ < text_.size() &&
               std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
            if (value > 1000000)
                return std::nullopt; // absurd sizes fail fast
            value = value * 10 +
                    static_cast<std::size_t>(text_[pos_] - '0');
            ++pos_;
        }
        return value;
    }

    /** Consume @p literal exactly. */
    bool literal(std::string_view literal)
    {
        if (text_.substr(pos_, literal.size()) != literal)
            return false;
        pos_ += literal.size();
        return true;
    }

    bool done() const { return pos_ == text_.size(); }

  private:
    std::string_view text_;
    std::size_t pos_ = 0;
};

core::BenchmarkPtr
parseSized(std::string_view suffix, std::size_t max_qubits,
           core::BenchmarkPtr (*build)(std::size_t))
{
    NameCursor cursor(suffix);
    std::optional<std::size_t> n = cursor.number();
    if (!n || !cursor.done() || *n < 2 || *n > max_qubits)
        return nullptr;
    return build(*n);
}

core::BenchmarkPtr
parseCode(std::string_view suffix, bool phase)
{
    NameCursor cursor(suffix);
    std::optional<std::size_t> data = cursor.number();
    if (!data || !cursor.literal("d"))
        return nullptr;
    std::optional<std::size_t> rounds = cursor.number();
    if (!rounds || !cursor.literal("r") || !cursor.done())
        return nullptr;
    if (*data < 2 || *data > kMaxStructuralQubits || *rounds < 1 ||
        *rounds > kMaxRounds)
        return nullptr;
    if (phase)
        return std::make_unique<core::PhaseCodeBenchmark>(
            core::PhaseCodeBenchmark::alternating(*data, *rounds));
    return std::make_unique<core::BitCodeBenchmark>(
        core::BitCodeBenchmark::alternating(*data, *rounds));
}

core::BenchmarkPtr
parseQaoa(std::string_view suffix, bool zzswap)
{
    NameCursor cursor(suffix);
    std::optional<std::size_t> n = cursor.number();
    if (!n || *n < 3 || *n > kMaxVariationalQubits)
        return nullptr;
    std::size_t levels = 1;
    if (!cursor.done()) {
        if (!cursor.literal("_p"))
            return nullptr;
        std::optional<std::size_t> p = cursor.number();
        if (!p || !cursor.done() || *p < 2 || *p > kMaxLevels)
            return nullptr;
        levels = *p;
    }
    if (zzswap)
        return std::make_unique<core::QaoaSwapBenchmark>(*n, 1, true,
                                                         levels);
    return std::make_unique<core::QaoaVanillaBenchmark>(*n, 1, true,
                                                        levels);
}

core::BenchmarkPtr
parseHamiltonian(std::string_view suffix)
{
    NameCursor cursor(suffix);
    std::optional<std::size_t> n = cursor.number();
    if (!n || !cursor.literal("q"))
        return nullptr;
    std::optional<std::size_t> steps = cursor.number();
    if (!steps || !cursor.literal("s") || !cursor.done())
        return nullptr;
    if (*n < 2 || *n > kMaxStructuralQubits || *steps < 1 ||
        *steps > kMaxRounds)
        return nullptr;
    return std::make_unique<core::HamiltonianSimulationBenchmark>(*n,
                                                                  *steps);
}

core::BenchmarkPtr
dispatch(std::string_view name)
{
    constexpr std::string_view kGhz = "ghz_";
    constexpr std::string_view kMermin = "mermin_bell_";
    constexpr std::string_view kBitCode = "bit_code_";
    constexpr std::string_view kPhaseCode = "phase_code_";
    constexpr std::string_view kQaoaVanilla = "qaoa_vanilla_";
    constexpr std::string_view kQaoaSwap = "qaoa_zzswap_";
    constexpr std::string_view kVqe = "vqe_";
    constexpr std::string_view kHamiltonian = "hamiltonian_sim_";

    if (name.rfind(kGhz, 0) == 0)
        return parseSized(name.substr(kGhz.size()), kMaxStructuralQubits,
                          [](std::size_t n) -> core::BenchmarkPtr {
                              return std::make_unique<core::GhzBenchmark>(
                                  n);
                          });
    if (name.rfind(kMermin, 0) == 0)
        return parseSized(
            name.substr(kMermin.size()), kMaxVariationalQubits,
            [](std::size_t n) -> core::BenchmarkPtr {
                if (n < 3)
                    return nullptr;
                return std::make_unique<core::MerminBellBenchmark>(n);
            });
    if (name.rfind(kBitCode, 0) == 0)
        return parseCode(name.substr(kBitCode.size()), false);
    if (name.rfind(kPhaseCode, 0) == 0)
        return parseCode(name.substr(kPhaseCode.size()), true);
    if (name.rfind(kQaoaVanilla, 0) == 0)
        return parseQaoa(name.substr(kQaoaVanilla.size()), false);
    if (name.rfind(kQaoaSwap, 0) == 0)
        return parseQaoa(name.substr(kQaoaSwap.size()), true);
    if (name.rfind(kVqe, 0) == 0)
        return parseSized(name.substr(kVqe.size()), kMaxVariationalQubits,
                          [](std::size_t n) -> core::BenchmarkPtr {
                              return std::make_unique<core::VqeBenchmark>(
                                  n, 1);
                          });
    if (name.rfind(kHamiltonian, 0) == 0)
        return parseHamiltonian(name.substr(kHamiltonian.size()));
    return nullptr;
}

} // namespace

core::BenchmarkPtr
makeBenchmark(std::string_view name)
{
    try {
        core::BenchmarkPtr benchmark = dispatch(name);
        // The grammar must invert name() exactly; a mismatch means the
        // request named an instance this build cannot reproduce.
        if (benchmark && benchmark->name() != name)
            return nullptr;
        return benchmark;
    } catch (const std::exception &) {
        return nullptr; // constructor rejected the size
    }
}

const device::Device *
findDevice(std::string_view name,
           const std::vector<device::Device> &devices)
{
    for (const device::Device &device : devices) {
        if (device.name == name)
            return &device;
    }
    return nullptr;
}

} // namespace smq::serve
