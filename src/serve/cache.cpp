#include "serve/cache.hpp"

#include <sstream>

#include "obs/metrics.hpp"
#include "obs/names.hpp"
#include "qc/qasm.hpp"
#include "util/seed.hpp"

namespace smq::serve {

namespace {

/** Per-entry bookkeeping overhead charged against the byte budget. */
constexpr std::size_t kEntryOverheadBytes = 64;

std::string
hex16(std::uint64_t value)
{
    static const char digits[] = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 15; i >= 0; --i) {
        out[static_cast<std::size_t>(i)] = digits[value & 0xf];
        value >>= 4;
    }
    return out;
}

} // namespace

CacheKey
deriveCacheKey(const SubmitSpec &spec, const core::Benchmark &benchmark,
               const device::Device &device)
{
    // Hash the circuit *content*, not the benchmark name: the QASM
    // text pins gate streams and parameter values, so a factory change
    // that altered circuits would miss instead of serving stale data.
    std::uint64_t circuits_hash = 0x736d712d73657276; // "smq-serv"
    for (const qc::Circuit &circuit : benchmark.circuits()) {
        circuits_hash =
            util::labelSeed(circuits_hash, qc::toQasm(circuit), "");
    }

    CacheKey key;
    std::ostringstream text;
    text << "circuits=" << hex16(circuits_hash)
         << ";device=" << device.name
         << ";devtable=" << device::kDeviceTableVersion
         << ";shots=" << spec.shots
         << ";repetitions=" << spec.repetitions << ";seed=" << spec.seed
         << ";faults=" << (spec.faults ? 1 : 0)
         << ";fault_seed=" << spec.faultSeed;
    key.text = text.str();
    key.hex = hex16(util::labelSeed(0, key.text, ""));
    return key;
}

std::optional<std::string>
ResultCache::lookup(const std::string &key)
{
    static obs::Counter &hit_counter =
        obs::counter(obs::names::kServeCacheHit);
    static obs::Counter &miss_counter =
        obs::counter(obs::names::kServeCacheMiss);

    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(key);
    if (it == entries_.end()) {
        ++misses_;
        miss_counter.add();
        return std::nullopt;
    }
    lru_.splice(lru_.begin(), lru_, it->second.lruPosition);
    ++hits_;
    hit_counter.add();
    return it->second.payload;
}

void
ResultCache::insert(const std::string &key, std::string payload)
{
    std::lock_guard<std::mutex> lock(mutex_);
    const std::size_t incoming =
        payload.size() + key.size() + kEntryOverheadBytes;
    if (incoming > budget_)
        return; // larger than the whole cache: not storable

    auto it = entries_.find(key);
    if (it != entries_.end()) {
        bytes_ -= it->second.payload.size() + key.size() +
                  kEntryOverheadBytes;
        lru_.erase(it->second.lruPosition);
        entries_.erase(it);
    }
    evictToFitLocked(incoming);
    lru_.push_front(key);
    entries_.emplace(key, Entry{std::move(payload), lru_.begin()});
    bytes_ += incoming;
}

CacheStats
ResultCache::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    CacheStats stats;
    stats.entries = entries_.size();
    stats.bytes = bytes_;
    stats.hits = hits_;
    stats.misses = misses_;
    stats.evictions = evictions_;
    return stats;
}

void
ResultCache::evictToFitLocked(std::size_t incoming_bytes)
{
    static obs::Counter &evict_counter =
        obs::counter(obs::names::kServeCacheEvict);
    while (!lru_.empty() && bytes_ + incoming_bytes > budget_) {
        const std::string &victim = lru_.back();
        auto it = entries_.find(victim);
        bytes_ -= it->second.payload.size() + victim.size() +
                  kEntryOverheadBytes;
        entries_.erase(it);
        lru_.pop_back();
        ++evictions_;
        evict_counter.add();
    }
}

} // namespace smq::serve
