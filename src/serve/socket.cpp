#include "serve/socket.hpp"

#include <cerrno>
#include <cstring>
#include <map>
#include <vector>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "serve/server.hpp"
#include "util/stop.hpp"

namespace smq::serve {

namespace {

/** Poll timeout: the latency bound on noticing a shutdown signal. */
constexpr int kPollTimeoutMs = 100;

void
setError(std::string *error, const std::string &message)
{
    if (error != nullptr)
        *error = message + " (" + std::strerror(errno) + ")";
}

/** Fill a sockaddr_un; fails when @p path overflows sun_path. */
bool
makeAddress(const std::string &path, sockaddr_un *address)
{
    if (path.size() >= sizeof(address->sun_path))
        return false;
    std::memset(address, 0, sizeof(*address));
    address->sun_family = AF_UNIX;
    std::memcpy(address->sun_path, path.c_str(), path.size() + 1);
    return true;
}

/** Write all of @p data, retrying short writes and EINTR. */
bool
writeAll(int fd, const std::string &data)
{
    std::size_t sent = 0;
    while (sent < data.size()) {
        const ssize_t n =
            ::write(fd, data.data() + sent, data.size() - sent);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        sent += static_cast<std::size_t>(n);
    }
    return true;
}

/**
 * Probe whether a daemon is still answering on @p path. Used to tell
 * a live socket (refuse to start) from a stale file (reclaim it).
 */
bool
socketIsLive(const std::string &path)
{
    sockaddr_un address;
    if (!makeAddress(path, &address))
        return false;
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        return false;
    const bool live =
        ::connect(fd, reinterpret_cast<const sockaddr *>(&address),
                  sizeof(address)) == 0;
    ::close(fd);
    return live;
}

} // namespace

SocketLoopResult
serveOverSocket(Server &server, const std::string &path,
                std::string *error)
{
    sockaddr_un address;
    if (!makeAddress(path, &address)) {
        if (error != nullptr)
            *error = "socket path too long: " + path;
        return SocketLoopResult::BindError;
    }

    if (::access(path.c_str(), F_OK) == 0) {
        if (socketIsLive(path)) {
            if (error != nullptr)
                *error = "another daemon is serving " + path;
            return SocketLoopResult::Busy;
        }
        ::unlink(path.c_str()); // stale leftover from a crash: reclaim
    }

    const int listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd < 0) {
        setError(error, "socket() failed");
        return SocketLoopResult::BindError;
    }
    if (::bind(listen_fd, reinterpret_cast<const sockaddr *>(&address),
               sizeof(address)) != 0) {
        setError(error, "cannot bind " + path);
        ::close(listen_fd);
        return SocketLoopResult::BindError;
    }
    if (::listen(listen_fd, 16) != 0) {
        setError(error, "cannot listen on " + path);
        ::close(listen_fd);
        ::unlink(path.c_str());
        return SocketLoopResult::BindError;
    }

    // fd -> partial input not yet terminated by a newline.
    std::map<int, std::string> clients;

    while (!server.shuttingDown() && !util::stopRequested()) {
        std::vector<pollfd> fds;
        fds.push_back({listen_fd, POLLIN, 0});
        for (const auto &[fd, buffer] : clients)
            fds.push_back({fd, POLLIN, 0});

        const int ready =
            ::poll(fds.data(), fds.size(), kPollTimeoutMs);
        if (ready < 0) {
            if (errno == EINTR)
                continue; // signal: loop condition re-checks stop
            setError(error, "poll() failed");
            break;
        }
        if (ready == 0)
            continue; // timeout tick: re-check shutdown

        if (fds[0].revents & POLLIN) {
            const int client = ::accept(listen_fd, nullptr, nullptr);
            if (client >= 0)
                clients.emplace(client, std::string());
        }

        for (std::size_t i = 1; i < fds.size(); ++i) {
            if (!(fds[i].revents & (POLLIN | POLLHUP | POLLERR)))
                continue;
            const int fd = fds[i].fd;
            char chunk[4096];
            const ssize_t n = ::read(fd, chunk, sizeof(chunk));
            if (n <= 0) {
                if (n < 0 && errno == EINTR)
                    continue;
                ::close(fd); // disconnect (or error): drop the client
                clients.erase(fd);
                continue;
            }
            std::string &buffer = clients[fd];
            buffer.append(chunk, static_cast<std::size_t>(n));

            bool drop = false;
            std::size_t newline;
            while (!drop &&
                   (newline = buffer.find('\n')) != std::string::npos) {
                const std::string line = buffer.substr(0, newline);
                buffer.erase(0, newline + 1);
                if (line.empty())
                    continue; // blank keep-alive lines are ignored
                const std::string reply = server.handle(line) + "\n";
                if (!writeAll(fd, reply))
                    drop = true;
            }
            if (drop) {
                ::close(fd);
                clients.erase(fd);
            }
        }
    }

    for (const auto &[fd, buffer] : clients)
        ::close(fd);
    ::close(listen_fd);
    ::unlink(path.c_str());
    return SocketLoopResult::Drained;
}

bool
requestOverSocket(const std::string &path, const std::string &line,
                  std::string *reply, std::string *error)
{
    sockaddr_un address;
    if (!makeAddress(path, &address)) {
        if (error != nullptr)
            *error = "socket path too long: " + path;
        return false;
    }
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        setError(error, "socket() failed");
        return false;
    }
    if (::connect(fd, reinterpret_cast<const sockaddr *>(&address),
                  sizeof(address)) != 0) {
        setError(error, "cannot connect to " + path);
        ::close(fd);
        return false;
    }
    if (!writeAll(fd, line + "\n")) {
        setError(error, "write failed");
        ::close(fd);
        return false;
    }

    std::string received;
    for (;;) {
        char chunk[4096];
        const ssize_t n = ::read(fd, chunk, sizeof(chunk));
        if (n < 0) {
            if (errno == EINTR)
                continue;
            setError(error, "read failed");
            ::close(fd);
            return false;
        }
        if (n == 0)
            break; // daemon closed before a full line arrived
        received.append(chunk, static_cast<std::size_t>(n));
        const std::size_t newline = received.find('\n');
        if (newline != std::string::npos) {
            ::close(fd);
            if (reply != nullptr)
                *reply = received.substr(0, newline);
            return true;
        }
    }
    ::close(fd);
    if (error != nullptr)
        *error = "connection closed before a reply line arrived";
    return false;
}

} // namespace smq::serve
