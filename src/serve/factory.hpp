/**
 * @file
 * Name-driven construction of benchmark instances and device lookup
 * for the serve layer.
 *
 * Batch tools iterate suites built in code; a daemon receives the
 * benchmark as a *string* and must reconstruct the instance. The
 * factory inverts the canonical Benchmark::name() grammar — the same
 * names the Fig. 2 grid, checkpoint journals and history records use
 * — so a client can name any instance the batch tools can produce:
 *
 *     ghz_<N>                        GhzBenchmark(N)
 *     mermin_bell_<N>                MerminBellBenchmark(N)
 *     bit_code_<D>d<R>r              BitCodeBenchmark::alternating(D, R)
 *     phase_code_<D>d<R>r            PhaseCodeBenchmark::alternating(D, R)
 *     qaoa_vanilla_<N>[_p<P>]        QaoaVanillaBenchmark(N, 1, true, P)
 *     qaoa_zzswap_<N>[_p<P>]         QaoaSwapBenchmark(N, 1, true, P)
 *     vqe_<N>                        VqeBenchmark(N, 1)
 *     hamiltonian_sim_<N>q<S>s       HamiltonianSimulationBenchmark(N, S)
 *
 * Variational benchmarks (QAOA, VQE) use their default problem seed,
 * so a name maps to exactly one instance and the cache key derived
 * from its circuits is stable across daemon restarts.
 */

#ifndef SMQ_SERVE_FACTORY_HPP
#define SMQ_SERVE_FACTORY_HPP

#include <string_view>
#include <vector>

#include "core/benchmark.hpp"
#include "device/device.hpp"

namespace smq::serve {

/**
 * Build the benchmark instance named by @p name under the canonical
 * grammar above. Returns nullptr for names outside the grammar or
 * with out-of-range sizes (the daemon maps that to unknown_benchmark).
 * Postcondition: makeBenchmark(n)->name() == n for accepted names.
 */
core::BenchmarkPtr makeBenchmark(std::string_view name);

/**
 * Find @p name in @p devices (exact match on Device::name). Returns
 * nullptr when absent (the daemon maps that to unknown_device).
 */
const device::Device *findDevice(std::string_view name,
                                 const std::vector<device::Device> &devices);

} // namespace smq::serve

#endif // SMQ_SERVE_FACTORY_HPP
