/**
 * @file
 * The `smq-serve-v1` wire protocol: line-delimited JSON requests and
 * responses between benchmark clients and the smq_serve daemon.
 *
 * Every request is one JSON object on one line carrying a `type`
 * field; every reply is exactly one JSON object on one line carrying
 * an `ok` field. The full normative specification — field tables,
 * error-code taxonomy, cache-key derivation, backpressure semantics —
 * lives in docs/PROTOCOL.md, and the `ctest -L serve` doc-closure
 * test diffs that document against the enums below, so a message
 * type or error code cannot be added without documenting it (the
 * same discipline obs/names.hpp applies to metric names).
 *
 * Parsing never throws and never brings the daemon down: malformed
 * input becomes a structured error reply and the connection stays
 * usable (the smq_fuzz protocol oracle feeds seeded garbage at this
 * layer and asserts exactly that).
 */

#ifndef SMQ_SERVE_PROTOCOL_HPP
#define SMQ_SERVE_PROTOCOL_HPP

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "obs/trace_context.hpp"

namespace smq::serve {

/** Protocol identifier, echoed by `stats` replies. */
inline constexpr const char *kProtocolVersion = "smq-serve-v1";

/** Schema tag of the result payload object inside `result` replies. */
inline constexpr const char *kResultSchema = "smq-serve-result-v1";

/** Largest accepted `shots` value (rejected as bad_field above). */
inline constexpr std::uint64_t kMaxShots = 100000000;

/** Largest accepted `repetitions` value. */
inline constexpr std::uint64_t kMaxRepetitions = 10000;

/** The request vocabulary of smq-serve-v1. */
enum class RequestType {
    Submit,   ///< enqueue (or serve from cache) one benchmark job
    Status,   ///< query a job's lifecycle state
    Result,   ///< fetch a finished job's result payload
    Cancel,   ///< cancel a queued or in-flight job
    Stats,    ///< daemon-level queue/cache/counter snapshot
    Shutdown, ///< initiate graceful drain and exit
};

/** Every request type, for doc-closure iteration. */
inline constexpr std::array<RequestType, 6> kAllRequestTypes = {
    RequestType::Submit, RequestType::Status, RequestType::Result,
    RequestType::Cancel, RequestType::Stats,  RequestType::Shutdown,
};

constexpr const char *
toString(RequestType type)
{
    switch (type) {
      case RequestType::Submit: return "submit";
      case RequestType::Status: return "status";
      case RequestType::Result: return "result";
      case RequestType::Cancel: return "cancel";
      case RequestType::Stats: return "stats";
      case RequestType::Shutdown: return "shutdown";
    }
    return "?";
}

std::optional<RequestType> requestTypeFromString(std::string_view text);

/**
 * The error-code taxonomy of `ok:false` replies. Codes classify the
 * *request's* fate; a job that ran and failed is not an error at this
 * layer — its result payload carries the RunStatus/FailureCause
 * taxonomy of core/status.hpp instead (docs/PROTOCOL.md maps the two).
 */
enum class ErrorCode {
    BadRequest,       ///< not a JSON object / missing required field
    UnknownType,      ///< `type` is not in the smq-serve-v1 vocabulary
    UnknownBenchmark, ///< benchmark name outside the factory grammar
    UnknownDevice,    ///< device name not in the built-in table
    BadField,         ///< field present but out of range / wrong kind
    QueueFull,        ///< bounded queue at capacity (429-style; retry)
    NotFound,         ///< no job with the given id
    NotReady,         ///< result requested before the job finished
    Cancelled,        ///< result requested of a cancelled job
    ShuttingDown,     ///< submit refused: daemon is draining
};

/** Every error code, for doc-closure iteration. */
inline constexpr std::array<ErrorCode, 10> kAllErrorCodes = {
    ErrorCode::BadRequest, ErrorCode::UnknownType,
    ErrorCode::UnknownBenchmark, ErrorCode::UnknownDevice,
    ErrorCode::BadField, ErrorCode::QueueFull,
    ErrorCode::NotFound, ErrorCode::NotReady,
    ErrorCode::Cancelled, ErrorCode::ShuttingDown,
};

constexpr const char *
toString(ErrorCode code)
{
    switch (code) {
      case ErrorCode::BadRequest: return "bad_request";
      case ErrorCode::UnknownType: return "unknown_type";
      case ErrorCode::UnknownBenchmark: return "unknown_benchmark";
      case ErrorCode::UnknownDevice: return "unknown_device";
      case ErrorCode::BadField: return "bad_field";
      case ErrorCode::QueueFull: return "queue_full";
      case ErrorCode::NotFound: return "not_found";
      case ErrorCode::NotReady: return "not_ready";
      case ErrorCode::Cancelled: return "cancelled";
      case ErrorCode::ShuttingDown: return "shutting_down";
    }
    return "?";
}

/** Lifecycle of one submitted job. */
enum class JobState {
    Queued,    ///< accepted, waiting for a worker
    Running,   ///< a worker is executing it
    Done,      ///< terminal: a result payload exists
    Cancelled, ///< terminal: cancelled before a worker picked it up
};

/** Every job state, for doc-closure iteration. */
inline constexpr std::array<JobState, 4> kAllJobStates = {
    JobState::Queued, JobState::Running, JobState::Done,
    JobState::Cancelled,
};

constexpr const char *
toString(JobState state)
{
    switch (state) {
      case JobState::Queued: return "queued";
      case JobState::Running: return "running";
      case JobState::Done: return "done";
      case JobState::Cancelled: return "cancelled";
    }
    return "?";
}

/** Validated payload of one `submit` request. */
struct SubmitSpec
{
    std::string benchmark;          ///< canonical name, e.g. "ghz_4"
    std::string device;             ///< device-table name, e.g. "AQT"
    std::uint64_t shots = 2000;     ///< per circuit per repetition
    std::uint64_t repetitions = 3;  ///< independent scoring runs
    std::uint64_t seed = 12345;     ///< simulation stream seed
    bool faults = false;            ///< inject the documented profile
    std::uint64_t faultSeed = 0;    ///< fault-schedule seed
    bool wait = false;              ///< block until terminal, inline result
    /**
     * Optional client trace context from the wire `trace` object
     * (`{"id":"<32 hex>","parent":"<16 hex>"}`). Invalid (all-zero)
     * when the client sent none; the daemon then derives one from
     * (seed, benchmark, device), so either way the job's spans carry
     * a trace id. Deliberately excluded from the cache key: tracing
     * never changes what a submit computes.
     */
    obs::TraceContext trace;
};

/** One validated request. `id` is set for status/result/cancel. */
struct Request
{
    RequestType type = RequestType::Stats;
    std::string id;
    SubmitSpec submit;
};

/** Outcome of parsing one request line. */
struct ParsedRequest
{
    std::optional<Request> request; ///< set iff the line validated
    ErrorCode error = ErrorCode::BadRequest;
    std::string message;

    bool ok() const { return request.has_value(); }
};

/**
 * Parse + validate one request line. Never throws: malformed JSON,
 * missing fields and out-of-range values all come back as a
 * (code, message) pair ready for errorLine().
 */
ParsedRequest parseRequest(const std::string &line);

/** Render the standard `ok:false` reply line (no trailing newline). */
std::string errorLine(ErrorCode code, const std::string &message);

} // namespace smq::serve

#endif // SMQ_SERVE_PROTOCOL_HPP
