#include "serve/serve_cli.hpp"

#include <cctype>
#include <exception>
#include <istream>
#include <optional>
#include <ostream>
#include <sstream>

#include "core/harness.hpp"
#include "obs/json.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/names.hpp"
#include "obs/trace.hpp"
#include "obs/trace_context.hpp"
#include "serve/server.hpp"
#include "serve/socket.hpp"
#include "util/stop.hpp"

namespace smq::serve {

namespace {

constexpr const char *kUsage =
    "usage: smq_serve (--socket PATH | --pipe) [options]\n"
    "\n"
    "  --socket PATH       serve a Unix-domain socket at PATH\n"
    "  --pipe              serve stdin/stdout, one JSON line each way\n"
    "  --workers N         concurrent job executors (default 2)\n"
    "  --queue-limit N     queued jobs before queue_full (default 64)\n"
    "  --cache-mb N        result-cache budget in MiB (default 32)\n"
    "  --max-sim-qubits N  simulator width gate (default 22)\n"
    "  --backend NAME      force the simulation engine for every job:\n"
    "                      statevector, density-matrix, stabilizer or\n"
    "                      trajectory (default auto = planner's choice)\n"
    "  --manifest-dir DIR  write per-job + final run manifests to DIR\n"
    "  --trace DIR         record spans, written to DIR on shutdown\n"
    "  --metrics-file PATH rewrite PATH with a Prometheus text snapshot\n"
    "                      after every stats request and at shutdown\n"
    "  --no-metrics        leave the metric registry disabled\n"
    "\n"
    "exit codes: 0 clean drain, 75 socket already served,\n"
    "            74 bind or manifest-write failure, 2 usage\n";

/** Full-token unsigned parse (stoul partial-parses and wraps signs). */
std::optional<std::size_t>
parseSize(const std::string &text)
{
    if (text.empty() ||
        !std::isdigit(static_cast<unsigned char>(text[0])))
        return std::nullopt;
    try {
        std::size_t consumed = 0;
        unsigned long value = std::stoul(text, &consumed);
        if (consumed != text.size())
            return std::nullopt;
        return static_cast<std::size_t>(value);
    } catch (const std::exception &) {
        return std::nullopt;
    }
}

int
usageError(std::ostream &err, const std::string &message)
{
    err << "smq_serve: " << message << "\n" << kUsage;
    return kServeUsage;
}

/** Pipe transport: one request line in, one reply line out. */
void
servePipe(Server &server, std::istream &in, std::ostream &out)
{
    std::string line;
    while (!server.shuttingDown() && !util::stopRequested() &&
           std::getline(in, line)) {
        if (line.empty())
            continue;
        out << server.handle(line) << "\n" << std::flush;
    }
}

} // namespace

int
serveMain(const std::vector<std::string> &args, std::istream &in,
          std::ostream &out, std::ostream &err)
{
    ServerOptions options;
    std::string socket_path;
    std::string trace_dir;
    bool pipe_mode = false;
    bool metrics = true;

    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &arg = args[i];
        auto value = [&]() -> std::optional<std::string> {
            if (i + 1 >= args.size())
                return std::nullopt;
            return args[++i];
        };
        if (arg == "--socket") {
            auto v = value();
            if (!v)
                return usageError(err, "--socket needs PATH");
            socket_path = *v;
        } else if (arg == "--pipe") {
            pipe_mode = true;
        } else if (arg == "--workers") {
            auto v = value();
            auto n = v ? parseSize(*v) : std::nullopt;
            if (!n)
                return usageError(err, "bad --workers value");
            options.workers = *n;
        } else if (arg == "--queue-limit") {
            auto v = value();
            auto n = v ? parseSize(*v) : std::nullopt;
            if (!n || *n == 0)
                return usageError(err, "bad --queue-limit value");
            options.queueLimit = *n;
        } else if (arg == "--cache-mb") {
            auto v = value();
            auto n = v ? parseSize(*v) : std::nullopt;
            if (!n)
                return usageError(err, "bad --cache-mb value");
            options.cacheBytes = *n << 20;
        } else if (arg == "--max-sim-qubits") {
            auto v = value();
            auto n = v ? parseSize(*v) : std::nullopt;
            if (!n || *n == 0)
                return usageError(err, "bad --max-sim-qubits value");
            options.maxSimQubits = *n;
        } else if (arg == "--backend") {
            auto v = value();
            auto kind =
                v ? sim::backendFromString(*v) : std::nullopt;
            if (!kind)
                return usageError(err, "bad --backend value");
            options.backend = *kind;
        } else if (arg == "--manifest-dir") {
            auto v = value();
            if (!v)
                return usageError(err, "--manifest-dir needs DIR");
            options.manifestDir = *v;
        } else if (arg == "--trace") {
            auto v = value();
            if (!v)
                return usageError(err, "--trace needs DIR");
            trace_dir = *v;
        } else if (arg == "--metrics-file") {
            auto v = value();
            if (!v)
                return usageError(err, "--metrics-file needs PATH");
            options.metricsFile = *v;
        } else if (arg == "--no-metrics") {
            metrics = false;
        } else if (arg == "--help") {
            out << kUsage;
            return kServeOk;
        } else {
            return usageError(err, "unknown argument: " + arg);
        }
    }
    if (pipe_mode == !socket_path.empty())
        return usageError(err,
                          "exactly one of --socket and --pipe required");
    if (options.workers == 0)
        options.workers = 1; // the daemon always needs an executor

    if (metrics)
        obs::setMetricsEnabled(true);
    if (!trace_dir.empty())
        obs::startTracing(trace_dir);

    int exit_code = kServeOk;
    {
        Server server(options);
        if (pipe_mode) {
            servePipe(server, in, out);
        } else {
            std::string error;
            switch (serveOverSocket(server, socket_path, &error)) {
              case SocketLoopResult::Drained:
                break;
              case SocketLoopResult::Busy:
                err << "smq_serve: " << error << "\n";
                return kServeBusy;
              case SocketLoopResult::BindError:
                err << "smq_serve: " << error << "\n";
                return kServeStorageError;
            }
        }

        // EOF, a shutdown request, or a signal: drain in-flight work
        // (salvaged through the jobs-layer stop probe) and exit 0.
        server.requestShutdown();
        server.drain();
        // Final scrape covers the whole daemon lifetime, including
        // jobs finished after the last stats request.
        server.writeMetricsFile();
        if (!server.storageError().empty()) {
            err << "smq_serve: " << server.storageError() << "\n";
            exit_code = kServeStorageError;
        }

        if (!options.manifestDir.empty()) {
            core::HarnessOptions harness;
            harness.maxSimQubits = options.maxSimQubits;
            harness.backend = options.backend;
            obs::RunManifest manifest =
                core::makeRunManifest("smq_serve", harness);
            const JobCounts counts = server.jobCounts();
            manifest.extra["serve.jobs_done"] =
                std::to_string(counts.done);
            manifest.extra["serve.jobs_cancelled"] =
                std::to_string(counts.cancelled);
            const std::string path =
                options.manifestDir + "/smq_serve_manifest.json";
            if (!manifest.writeFile(path)) {
                err << "smq_serve: cannot write " << path << "\n";
                exit_code = kServeStorageError;
            }
        }
    }

    if (!trace_dir.empty())
        obs::stopTracing();
    return exit_code;
}

namespace {

constexpr const char *kSubmitUsageText =
    "usage: smq_sentinel submit --socket PATH --benchmark NAME\n"
    "           --device NAME [--shots N] [--repetitions N] [--seed N]\n"
    "           [--faults] [--fault-seed N] [--no-wait] [--trace DIR]\n"
    "\n"
    "  --trace DIR   record a client-side `submit` span to DIR; its\n"
    "                trace id rides the wire, so the daemon's spans\n"
    "                stitch under the same waterfall\n"
    "\n"
    "exit codes: 0 accepted (reply printed), 1 daemon rejected the\n"
    "            request, 2 usage error or daemon unreachable\n";

int
submitUsageError(std::ostream &err, const std::string &message)
{
    err << "smq_sentinel: " << message << "\n" << kSubmitUsageText;
    return kSubmitUsage;
}

} // namespace

int
submitMain(const std::vector<std::string> &args, std::ostream &out,
           std::ostream &err)
{
    std::string socket_path, benchmark, device, trace_dir;
    std::uint64_t shots = 2000, repetitions = 3, seed = 12345;
    std::uint64_t fault_seed = 0;
    bool faults = false, wait = true;

    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &arg = args[i];
        auto value = [&]() -> std::optional<std::string> {
            if (i + 1 >= args.size())
                return std::nullopt;
            return args[++i];
        };
        auto number = [&](const char *flag,
                          std::uint64_t &target) -> bool {
            auto v = value();
            auto n = v ? parseSize(*v) : std::nullopt;
            if (!n)
                return false;
            target = *n;
            (void)flag;
            return true;
        };
        if (arg == "--socket") {
            auto v = value();
            if (!v)
                return submitUsageError(err, "--socket needs PATH");
            socket_path = *v;
        } else if (arg == "--benchmark") {
            auto v = value();
            if (!v)
                return submitUsageError(err, "--benchmark needs NAME");
            benchmark = *v;
        } else if (arg == "--device") {
            auto v = value();
            if (!v)
                return submitUsageError(err, "--device needs NAME");
            device = *v;
        } else if (arg == "--shots") {
            if (!number("--shots", shots))
                return submitUsageError(err, "bad --shots value");
        } else if (arg == "--repetitions") {
            if (!number("--repetitions", repetitions))
                return submitUsageError(err, "bad --repetitions value");
        } else if (arg == "--seed") {
            if (!number("--seed", seed))
                return submitUsageError(err, "bad --seed value");
        } else if (arg == "--fault-seed") {
            if (!number("--fault-seed", fault_seed))
                return submitUsageError(err, "bad --fault-seed value");
        } else if (arg == "--faults") {
            faults = true;
        } else if (arg == "--no-wait") {
            wait = false;
        } else if (arg == "--trace") {
            auto v = value();
            if (!v)
                return submitUsageError(err, "--trace needs DIR");
            trace_dir = *v;
        } else if (arg == "--help") {
            out << kSubmitUsageText;
            return kSubmitOk;
        } else {
            return submitUsageError(err, "unknown argument: " + arg);
        }
    }
    if (socket_path.empty() || benchmark.empty() || device.empty())
        return submitUsageError(
            err, "--socket, --benchmark and --device are required");

    // The client originates the trace: the context is derived from the
    // same (seed, benchmark, device) identity the daemon would use, so
    // --trace on either side (or both) lands on the same trace id.
    const obs::TraceContext trace =
        obs::TraceContext::derive(seed, benchmark, device);
    if (!trace_dir.empty())
        obs::startTracing(trace_dir);

    std::ostringstream request;
    request << "{\"type\":\"submit\",\"benchmark\":\""
            << obs::escapeJson(benchmark) << "\",\"device\":\""
            << obs::escapeJson(device) << "\",\"shots\":" << shots
            << ",\"repetitions\":" << repetitions << ",\"seed\":" << seed
            << ",\"faults\":" << (faults ? "true" : "false")
            << ",\"fault_seed\":" << fault_seed
            << ",\"wait\":" << (wait ? "true" : "false")
            << ",\"trace\":{\"id\":\"" << trace.traceIdHex()
            << "\",\"parent\":\"" << trace.parentSpanHex() << "\"}}";

    std::string reply, error;
    bool sent = false;
    {
        obs::TraceContextScope trace_scope(trace);
        SMQ_TRACE_SPAN(obs::names::kSpanSubmit,
                       obs::jsonField("benchmark", benchmark));
        sent = requestOverSocket(socket_path, request.str(), &reply,
                                 &error);
    }
    if (!trace_dir.empty())
        obs::stopTracing();
    if (!sent) {
        err << "smq_sentinel: " << error << "\n";
        return kSubmitUsage;
    }
    out << reply << "\n";

    try {
        const obs::JsonValue root = obs::parseJson(reply);
        const obs::JsonValue *ok = root.find("ok");
        if (ok != nullptr && ok->kind == obs::JsonValue::Kind::Bool &&
            ok->boolean)
            return kSubmitOk;
    } catch (const std::exception &) {
        // fall through: an unparseable reply is a rejection
    }
    return kSubmitRejected;
}

} // namespace smq::serve
