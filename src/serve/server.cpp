#include "serve/server.hpp"

#include <exception>
#include <filesystem>
#include <sstream>

#include "core/harness.hpp"
#include "jobs/scheduler.hpp"
#include "obs/exposition.hpp"
#include "obs/fsio.hpp"
#include "obs/json.hpp"
#include "obs/manifest.hpp"
#include "serve/factory.hpp"
#include "obs/metrics.hpp"
#include "obs/names.hpp"
#include "obs/trace.hpp"
#include "obs/trace_context.hpp"
#include "util/stop.hpp"

namespace smq::serve {

namespace {

/**
 * The documented fault schedule applied when a submit sets
 * `"faults":true` — the "bad day on the cloud queue" regime of
 * examples/job_report (docs/PROTOCOL.md normatively lists these
 * numbers; changing them changes cache keys only through the
 * fault_seed field, so they must stay stable within a protocol
 * version).
 */
jobs::FaultProfile
serveFaultProfile()
{
    jobs::FaultProfile profile;
    profile.pTransient = 0.20;
    profile.pQueueTimeout = 0.10;
    profile.pShotTruncation = 0.15;
    profile.calibrationDrift = 0.08;
    return profile;
}

/** Same inf/nan-guarded 17-digit float text as the journal/cache. */
void
writeNumber(std::ostream &out, double value)
{
    std::ostringstream text;
    text.precision(17);
    text << value;
    std::string s = text.str();
    if (s.find("inf") != std::string::npos ||
        s.find("nan") != std::string::npos)
        s = "0";
    out << s;
}

/** Render the smq-serve-result-v1 payload of one finished run. */
std::string
renderResult(const core::BenchmarkRun &run, const SubmitSpec &spec,
             const CacheKey &key)
{
    std::ostringstream out;
    out << "{\"schema\":\"" << kResultSchema << "\""
        << ",\"benchmark\":\"" << obs::escapeJson(run.benchmark) << "\""
        << ",\"device\":\"" << obs::escapeJson(run.device) << "\""
        << ",\"cache_key\":\"" << key.hex << "\""
        << ",\"shots\":" << spec.shots
        << ",\"repetitions\":" << spec.repetitions
        << ",\"seed\":" << spec.seed
        << ",\"status\":\"" << core::toString(run.status) << "\""
        << ",\"cause\":\"" << core::toString(run.cause) << "\""
        << ",\"scores\":[";
    for (std::size_t i = 0; i < run.scores.size(); ++i) {
        if (i)
            out << ",";
        writeNumber(out, run.scores[i]);
    }
    out << "],\"mean\":";
    writeNumber(out, run.summary.mean);
    out << ",\"stddev\":";
    writeNumber(out, run.summary.stddev);
    out << ",\"error_bar_scale\":";
    writeNumber(out, run.errorBarScale);
    out << ",\"planned_repetitions\":" << run.plannedRepetitions
        << ",\"attempts\":" << run.attempts
        << ",\"physical_two_qubit_gates\":" << run.physicalTwoQubitGates
        << ",\"swaps_inserted\":" << run.swapsInserted
        << ",\"plan\":\"" << obs::escapeJson(run.plan) << "\""
        << ",\"detail\":\"" << obs::escapeJson(run.detail) << "\"}";
    return out.str();
}

} // namespace

Server::Server(ServerOptions options, std::vector<device::Device> devices)
    : options_(options), devices_(std::move(devices)),
      cache_(options.cacheBytes)
{
    obs::gauge(obs::names::kServeWorkers)
        .set(static_cast<std::int64_t>(options_.workers));
    obs::gauge(obs::names::kServeQueueLimit)
        .set(static_cast<std::int64_t>(options_.queueLimit));
    if (options_.autoStart && options_.workers > 0)
        startWorkers();
}

Server::~Server()
{
    requestShutdown();
    drain();
}

void
Server::startWorkers()
{
    // The caller of parallelFor participates, so a pool with
    // workers-1 threads plus the scheduler thread yields exactly
    // `workers` concurrent consumer loops.
    pool_ = std::make_unique<util::ThreadPool>(options_.workers - 1);
    workersRunning_ = true;
    scheduler_ = std::thread([this] {
        pool_->parallelFor(options_.workers,
                           [this](std::size_t) { workerLoop(); });
    });
}

void
Server::workerLoop()
{
    for (;;) {
        std::shared_ptr<Job> job;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            workAvailable_.wait(lock, [this] {
                return stopping_.load(std::memory_order_relaxed) ||
                       !queue_.empty();
            });
            if (queue_.empty())
                return; // shutdown and nothing left to claim
            job = queue_.front();
            queue_.pop_front();
            if (job->cancelRequested.load()) {
                job->state = JobState::Cancelled;
                finishJobLocked(*job);
                continue;
            }
            job->state = JobState::Running;
        }
        executeJob(*job);
    }
}

bool
Server::step()
{
    std::shared_ptr<Job> job;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (queue_.empty())
            return false;
        job = queue_.front();
        queue_.pop_front();
        if (job->cancelRequested.load()) {
            job->state = JobState::Cancelled;
            finishJobLocked(*job);
            return true;
        }
        job->state = JobState::Running;
    }
    executeJob(*job);
    return true;
}

void
Server::executeJob(Job &job)
{
    static obs::Counter &completed =
        obs::counter(obs::names::kServeJobsCompleted);

    // All spans below — queue-wait, serve.job, and everything
    // jobs::runJob opens down to the kernels — inherit this job's
    // trace identity, so a cross-process waterfall stitches on it.
    obs::TraceContextScope trace_scope(job.trace);
    if (obs::spanSinkActive() &&
        job.enqueuedAt.time_since_epoch().count() != 0) {
        const std::uint64_t wait_ns = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - job.enqueuedAt)
                .count());
        obs::recordSpan(obs::names::kSpanServeQueueWait,
                        job.enqueueTraceNs, wait_ns,
                        obs::jsonField("job", job.id));
    }

    jobs::JobOptions options;
    options.harness.shots = job.spec.shots;
    options.harness.repetitions =
        static_cast<std::size_t>(job.spec.repetitions);
    options.harness.seed = job.spec.seed;
    options.harness.jobs = 1; // concurrency comes from the worker pool
    options.harness.maxSimQubits = options_.maxSimQubits;
    options.harness.backend = options_.backend;
    options.stop = [this, &job] {
        return job.cancelRequested.load(std::memory_order_relaxed) ||
               stopping_.load(std::memory_order_relaxed) ||
               util::stopRequested();
    };

    jobs::FaultInjector injector(job.spec.faultSeed);
    if (job.spec.faults)
        injector.setDefaultProfile(serveFaultProfile());

    core::BenchmarkRun run;
    try {
        jobs::SweepContext ctx(options, injector);
        SMQ_TRACE_SPAN(obs::names::kSpanServeJob,
                       obs::jsonField("job", job.id));
        run = jobs::runJob(*job.benchmark, *job.device, options, ctx);
    } catch (const std::exception &e) {
        run.benchmark = job.spec.benchmark;
        run.device = job.spec.device;
        run.status = core::RunStatus::Failed;
        run.cause = core::FailureCause::Internal;
        run.detail = e.what();
    }

    std::string payload = renderResult(run, job.spec, job.key);
    const bool interrupted =
        run.cause == core::FailureCause::Interrupted;
    // Interrupted salvage depends on *when* the stop arrived — the one
    // nondeterministic outcome — so it must never be served to a later
    // identical request.
    if (!interrupted)
        cache_.insert(job.key.hex, payload);

    if (!options_.manifestDir.empty()) {
        obs::RunManifest manifest = core::makeRunManifest(
            "smq_serve", options.harness);
        manifest.extra["serve.job_id"] = job.id;
        manifest.extra["serve.benchmark"] = job.spec.benchmark;
        manifest.extra["serve.device"] = job.spec.device;
        manifest.extra["serve.cache_key"] = job.key.hex;
        manifest.extra["serve.status"] = core::toString(run.status);
        manifest.extra["serve.plan"] = run.plan;
        manifest.extra["serve.trace_id"] = job.trace.traceIdHex();
        const std::string path = options_.manifestDir + "/" + job.id +
                                 "_manifest.json";
        if (!manifest.writeFile(path)) {
            std::lock_guard<std::mutex> lock(mutex_);
            if (storageError_.empty())
                storageError_ = "manifest write failed: " + path;
        }
    }

    {
        std::lock_guard<std::mutex> lock(mutex_);
        job.payload = std::move(payload);
        job.interrupted = interrupted;
        job.state = JobState::Done;
        finishJobLocked(job);
    }
    completed.add();
}

void
Server::finishJobLocked(Job &job)
{
    static obs::Counter &cancelled =
        obs::counter(obs::names::kServeJobsCancelled);
    if (job.state == JobState::Cancelled)
        cancelled.add();
    terminalOrder_.push_back(job.id);
    // Bound the daemon's memory: drop the oldest terminal records
    // past the retention window (queued/running jobs are never here).
    while (terminalOrder_.size() > options_.retainedJobs) {
        jobs_.erase(terminalOrder_.front());
        terminalOrder_.pop_front();
    }
    jobDone_.notify_all();
}

void
Server::requestShutdown()
{
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_.store(true, std::memory_order_relaxed);
    // Queued jobs are cancelled, not run: drain means "finish what is
    // in flight", exactly the grid driver's SIGTERM discipline.
    while (!queue_.empty()) {
        std::shared_ptr<Job> job = queue_.front();
        queue_.pop_front();
        job->state = JobState::Cancelled;
        finishJobLocked(*job);
    }
    workAvailable_.notify_all();
}

void
Server::drain()
{
    if (scheduler_.joinable())
        scheduler_.join(); // workers exit after their in-flight job
    {
        std::lock_guard<std::mutex> lock(mutex_);
        workersRunning_ = false;
    }
}

std::string
Server::storageError() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return storageError_;
}

JobCounts
Server::jobCounts() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    JobCounts counts;
    for (const auto &[id, job] : jobs_) {
        switch (job->state) {
          case JobState::Queued: ++counts.queued; break;
          case JobState::Running: ++counts.running; break;
          case JobState::Done: ++counts.done; break;
          case JobState::Cancelled: ++counts.cancelled; break;
        }
    }
    return counts;
}

std::size_t
Server::queueDepth() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return queue_.size();
}

std::string
Server::handle(const std::string &line)
{
    static obs::Counter &requests =
        obs::counter(obs::names::kServeRequests);
    static obs::Counter &malformed =
        obs::counter(obs::names::kServeRequestsMalformed);

    requests.add();
    ParsedRequest parsed = parseRequest(line);
    if (!parsed.ok()) {
        malformed.add();
        return errorLine(parsed.error, parsed.message);
    }
    const Request &request = *parsed.request;
    switch (request.type) {
      case RequestType::Submit: return handleSubmit(request.submit);
      case RequestType::Status: return handleStatus(request.id);
      case RequestType::Result: return handleResult(request.id);
      case RequestType::Cancel: return handleCancel(request.id);
      case RequestType::Stats: return handleStats();
      case RequestType::Shutdown: return handleShutdown();
    }
    return errorLine(ErrorCode::BadRequest, "unreachable");
}

std::string
Server::submitReply(const Job &job, bool include_result) const
{
    std::ostringstream out;
    out << "{\"ok\":true,\"type\":\"submit\",\"id\":\"" << job.id
        << "\",\"state\":\"" << toString(job.state) << "\",\"cached\":"
        << (job.cached ? "true" : "false") << ",\"cache_key\":\""
        << job.key.hex << "\",\"trace_id\":\"" << job.trace.traceIdHex()
        << "\"";
    if (include_result && job.state == JobState::Done)
        out << ",\"result\":" << job.payload;
    out << "}";
    return out.str();
}

std::string
Server::handleSubmit(const SubmitSpec &spec)
{
    static obs::Counter &submitted =
        obs::counter(obs::names::kServeJobsSubmitted);
    static obs::Counter &rejected =
        obs::counter(obs::names::kServeQueueRejected);

    if (shuttingDown() || util::stopRequested())
        return errorLine(ErrorCode::ShuttingDown,
                         "daemon is draining; resubmit later");

    core::BenchmarkPtr benchmark = makeBenchmark(spec.benchmark);
    if (!benchmark)
        return errorLine(ErrorCode::UnknownBenchmark,
                         "no benchmark named " + spec.benchmark);
    const device::Device *device = findDevice(spec.device, devices_);
    if (device == nullptr)
        return errorLine(ErrorCode::UnknownDevice,
                         "no device named " + spec.device);

    CacheKey key = deriveCacheKey(spec, *benchmark, *device);
    std::optional<std::string> cached = cache_.lookup(key.hex);

    // Adopt the client's trace context, or derive one from the run
    // identity so a daemon-side trace always has an id to stitch on.
    // Either way the id is a pure function of the submit, never of
    // timing — the byte-identity contract.
    static obs::Counter &trace_propagated =
        obs::counter(obs::names::kTracePropagated);
    static obs::Counter &trace_derived =
        obs::counter(obs::names::kTraceDerived);
    obs::TraceContext trace = spec.trace;
    if (trace.valid()) {
        trace_propagated.add();
    } else {
        trace = obs::TraceContext::derive(spec.seed, spec.benchmark,
                                          spec.device);
        trace_derived.add();
    }

    std::shared_ptr<Job> job;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!cached && queue_.size() >= options_.queueLimit) {
            rejected.add();
            return errorLine(ErrorCode::QueueFull,
                             "queue at capacity (" +
                                 std::to_string(options_.queueLimit) +
                                 "); retry later");
        }
        job = std::make_shared<Job>();
        job->id = "job-" + std::to_string(nextId_++);
        job->spec = spec;
        job->benchmark = std::move(benchmark);
        job->device = device;
        job->key = std::move(key);
        job->trace = trace;
        jobs_.emplace(job->id, job);
        if (cached) {
            job->state = JobState::Done;
            job->cached = true;
            job->payload = std::move(*cached);
            finishJobLocked(*job);
        } else {
            submitted.add();
            job->enqueuedAt = std::chrono::steady_clock::now();
            job->enqueueTraceNs = obs::traceNowNs();
            queue_.push_back(job);
            queueHighWater_ = std::max(queueHighWater_, queue_.size());
            workAvailable_.notify_one();
        }
    }

    if (spec.wait)
        waitForJob(*job); // no-op when already terminal (cache hit)

    std::lock_guard<std::mutex> lock(mutex_);
    return submitReply(*job, spec.wait);
}

void
Server::waitForJob(Job &job)
{
    std::unique_lock<std::mutex> lock(mutex_);
    if (workersRunning_) {
        jobDone_.wait(lock, [&job] {
            return job.state == JobState::Done ||
                   job.state == JobState::Cancelled;
        });
        return;
    }
    // Manual mode: execute queued jobs on this thread, FIFO, until
    // the awaited one is terminal.
    while (job.state != JobState::Done &&
           job.state != JobState::Cancelled) {
        lock.unlock();
        if (!step())
            break; // queue empty yet job not terminal: cancelled race
        lock.lock();
    }
}

std::shared_ptr<Server::Job>
Server::findJobLocked(const std::string &id)
{
    auto it = jobs_.find(id);
    return it == jobs_.end() ? nullptr : it->second;
}

std::string
Server::handleStatus(const std::string &id)
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::shared_ptr<Job> job = findJobLocked(id);
    if (!job)
        return errorLine(ErrorCode::NotFound, "no job with id " + id);
    std::ostringstream out;
    out << "{\"ok\":true,\"type\":\"status\",\"id\":\"" << job->id
        << "\",\"state\":\"" << toString(job->state)
        << "\",\"cached\":" << (job->cached ? "true" : "false")
        << ",\"cache_key\":\"" << job->key.hex << "\"}";
    return out.str();
}

std::string
Server::handleResult(const std::string &id)
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::shared_ptr<Job> job = findJobLocked(id);
    if (!job)
        return errorLine(ErrorCode::NotFound, "no job with id " + id);
    if (job->state == JobState::Cancelled)
        return errorLine(ErrorCode::Cancelled,
                         "job " + id + " was cancelled before running");
    if (job->state != JobState::Done)
        return errorLine(ErrorCode::NotReady,
                         "job " + id + " is " + toString(job->state));
    std::ostringstream out;
    out << "{\"ok\":true,\"type\":\"result\",\"id\":\"" << job->id
        << "\",\"cached\":" << (job->cached ? "true" : "false")
        << ",\"result\":" << job->payload << "}";
    return out.str();
}

std::string
Server::handleCancel(const std::string &id)
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::shared_ptr<Job> job = findJobLocked(id);
    if (!job)
        return errorLine(ErrorCode::NotFound, "no job with id " + id);
    if (job->state == JobState::Queued) {
        for (auto it = queue_.begin(); it != queue_.end(); ++it) {
            if (*it == job) {
                queue_.erase(it);
                break;
            }
        }
        job->state = JobState::Cancelled;
        job->cancelRequested.store(true);
        finishJobLocked(*job);
    } else if (job->state == JobState::Running) {
        // The jobs-layer stop probe salvages completed repetitions;
        // the job still terminates as Done (cause Interrupted).
        job->cancelRequested.store(true);
    }
    // Terminal states: cancel is idempotent; report where things are.
    std::ostringstream out;
    out << "{\"ok\":true,\"type\":\"cancel\",\"id\":\"" << job->id
        << "\",\"state\":\"" << toString(job->state) << "\"}";
    return out.str();
}

std::string
Server::handleStats()
{
    // Cache stats first: cache_ has its own lock, and taking it while
    // holding mutex_ would order against workers inserting results.
    const CacheStats cache = cache_.stats();
    const JobCounts counts = jobCounts();
    // Quantiles come from the same shared registry histogram the spans
    // feed and the same obs::histogramQuantile the Prometheus snapshot
    // and the HTML report use — one derivation, three surfaces.
    const obs::HistogramSnapshot job_ns =
        obs::histogram(std::string(obs::names::kStageHistogramPrefix) +
                       obs::names::kSpanServeJob +
                       obs::names::kStageHistogramSuffix)
            .snapshot();
    const std::uint64_t uptime = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::seconds>(
            std::chrono::steady_clock::now() - startTime_)
            .count());
    const double ratio =
        cache.hits + cache.misses == 0
            ? 0.0
            : static_cast<double>(cache.hits) /
                  static_cast<double>(cache.hits + cache.misses);
    std::string reply;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        std::ostringstream out;
        out << "{\"ok\":true,\"type\":\"stats\",\"protocol\":\""
            << kProtocolVersion << "\""
            << ",\"workers\":" << options_.workers
            << ",\"uptime_seconds\":" << uptime
            << ",\"queue_depth\":" << queue_.size()
            << ",\"queue_limit\":" << options_.queueLimit
            << ",\"queue_high_water\":" << queueHighWater_
            << ",\"draining\":" << (shuttingDown() ? "true" : "false")
            << ",\"jobs\":{\"queued\":" << counts.queued
            << ",\"running\":" << counts.running
            << ",\"done\":" << counts.done
            << ",\"cancelled\":" << counts.cancelled << "}"
            << ",\"job_ns\":{\"count\":" << job_ns.count << ",\"p50\":";
        writeNumber(out, obs::histogramQuantile(job_ns, 0.5));
        out << ",\"p90\":";
        writeNumber(out, obs::histogramQuantile(job_ns, 0.9));
        out << ",\"p99\":";
        writeNumber(out, obs::histogramQuantile(job_ns, 0.99));
        out << "}"
            << ",\"cache\":{\"entries\":" << cache.entries
            << ",\"bytes\":" << cache.bytes
            << ",\"budget_bytes\":" << options_.cacheBytes
            << ",\"hits\":" << cache.hits
            << ",\"misses\":" << cache.misses
            << ",\"evictions\":" << cache.evictions
            << ",\"hit_ratio\":";
        writeNumber(out, ratio);
        out << "}}";
        reply = out.str();
    }
    // Refresh the textfile-collector snapshot outside the lock: a
    // slow disk must not stall submit/worker progress.
    writeMetricsFile();
    return reply;
}

void
Server::writeMetricsFile()
{
    if (options_.metricsFile.empty())
        return;
    std::string error;
    if (!obs::atomicWriteFile(options_.metricsFile,
                              obs::renderPrometheusSnapshot(), &error)) {
        std::lock_guard<std::mutex> lock(mutex_);
        if (storageError_.empty())
            storageError_ = "metrics write failed (" +
                            options_.metricsFile + "): " + error;
    }
}

std::size_t
Server::queueHighWater() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return queueHighWater_;
}

std::string
Server::handleShutdown()
{
    const std::size_t queued_before = queueDepth();
    requestShutdown();
    std::ostringstream out;
    out << "{\"ok\":true,\"type\":\"shutdown\",\"state\":\"draining\""
        << ",\"cancelled_queued\":" << queued_before << "}";
    return out.str();
}

} // namespace smq::serve
