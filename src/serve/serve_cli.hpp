/**
 * @file
 * The `smq_serve` command-line surface, packaged as a library
 * function so tests can drive the daemon in-process (pipe mode over
 * stringstreams) and assert exit codes without spawning binaries.
 *
 * Usage:
 *
 *     smq_serve --socket PATH [options]   serve a Unix-domain socket
 *     smq_serve --pipe [options]          serve stdin/stdout (tests,
 *                                         one-shot scripting)
 *
 * Options:
 *     --workers N         concurrent job executors (default 2)
 *     --queue-limit N     max queued jobs before queue_full (64)
 *     --cache-mb N        result-cache byte budget in MiB (32)
 *     --max-sim-qubits N  simulator width gate (22)
 *     --manifest-dir DIR  write per-job and final run manifests here
 *     --trace DIR         record spans; written on shutdown
 *     --metrics-file PATH Prometheus text snapshot, rewritten
 *                         atomically after every stats request
 *     --no-metrics        leave the metric registry disabled
 *
 * Exit codes (stable contract, documented in docs/OPERATIONS.md):
 *     0   clean drain after a shutdown request or SIGINT/SIGTERM
 *     75  EX_TEMPFAIL: another daemon is live on the socket
 *     74  EX_IOERR: socket bind failure or manifest write failure
 *     2   usage error
 */

#ifndef SMQ_SERVE_SERVE_CLI_HPP
#define SMQ_SERVE_SERVE_CLI_HPP

#include <iosfwd>
#include <string>
#include <vector>

namespace smq::serve {

/** Exit codes of serveMain (matches the grid driver's contract). */
enum ServeExit : int
{
    kServeOk = 0,
    kServeUsage = 2,
    kServeStorageError = 74, ///< EX_IOERR
    kServeBusy = 75,         ///< EX_TEMPFAIL: socket already served
};

/**
 * Run one daemon invocation. @p args excludes the program name; pipe
 * mode reads requests from @p in and writes replies to @p out, one
 * line each; diagnostics go to @p err.
 */
int serveMain(const std::vector<std::string> &args, std::istream &in,
              std::ostream &out, std::ostream &err);

/** Exit codes of submitMain. */
enum SubmitExit : int
{
    kSubmitOk = 0,       ///< daemon replied ok:true; result printed
    kSubmitRejected = 1, ///< daemon replied ok:false (error printed)
    kSubmitUsage = 2,    ///< bad flags or daemon unreachable
};

/**
 * The `smq_sentinel submit` client: build a `wait:true` submit
 * request, send it over the daemon's Unix socket, and print the reply
 * line to @p out.
 *
 *     submit --socket PATH --benchmark NAME --device NAME
 *            [--shots N] [--repetitions N] [--seed N]
 *            [--faults] [--fault-seed N] [--no-wait] [--trace DIR]
 *
 * The submit always carries the deterministic trace context derived
 * from (seed, benchmark, device); `--trace DIR` additionally records
 * the client-side `submit` span to DIR so `smq_sentinel report
 * --trace` can stitch it with the daemon's spans.
 *
 * @p args excludes the program name and the `submit` word itself.
 */
int submitMain(const std::vector<std::string> &args, std::ostream &out,
               std::ostream &err);

} // namespace smq::serve

#endif // SMQ_SERVE_SERVE_CLI_HPP
