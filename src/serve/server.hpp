/**
 * @file
 * The benchmark-as-a-service core: a bounded job queue over the
 * fault-tolerant `jobs/` layer, executed by workers running on the
 * `util/` thread pool, fronted by the smq-serve-v1 protocol and the
 * content-addressed result cache.
 *
 * The Server is transport-agnostic: handle() maps one request line to
 * exactly one response line, whatever carried it (Unix socket, stdin
 * pipe, an in-process test, the fuzz protocol oracle). Lifecycle:
 *
 *   submit ── cache hit ──────────────────────► done (cached)
 *   submit ── queue full ─► queue_full error (429-style backpressure)
 *   submit ─► queued ─► running ─► done        (worker execution)
 *          └► cancel while queued ─► cancelled (never runs)
 *             cancel while running ─► done     (salvaged, Interrupted)
 *
 * Graceful shutdown (protocol `shutdown`, SIGINT/SIGTERM via
 * util/stop, or requestShutdown()) follows the grid driver's drain
 * discipline: new submits are refused, queued jobs are cancelled,
 * in-flight jobs salvage their completed repetitions through the
 * jobs-layer stop probe, and drain() returns once every accepted job
 * is terminal — the daemon then exits 0.
 *
 * Determinism: job execution is the exact jobs::runJob path with a
 * per-request seed, so a daemon result is byte-identical to the batch
 * path under the same spec, and a cache hit is byte-identical to a
 * fresh run. Results cut short by cancel/shutdown (cause Interrupted)
 * are the one timing-dependent outcome, and are never cached.
 */

#ifndef SMQ_SERVE_SERVER_HPP
#define SMQ_SERVE_SERVER_HPP

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/benchmark.hpp"
#include "device/device.hpp"
#include "serve/cache.hpp"
#include "serve/protocol.hpp"
#include "sim/backend.hpp"
#include "util/thread_pool.hpp"

namespace smq::jobs {
struct JobOptions;
}

namespace smq::serve {

/** Daemon configuration (CLI flags map onto this 1:1). */
struct ServerOptions
{
    /** Concurrent job executors (0 = manual step()/drain() only). */
    std::size_t workers = 2;
    /** Largest number of queued (not yet running) jobs. */
    std::size_t queueLimit = 64;
    /** Result-cache byte budget (`--cache-mb` × 2^20). */
    std::size_t cacheBytes = std::size_t(32) << 20;
    /** Simulator width gate, as in the batch harness. */
    std::size_t maxSimQubits = 22;
    /**
     * Simulation engine for every job (`--backend`): Auto lets the
     * planner pick per circuit, anything else forces the engine.
     * Deliberately NOT part of the result cache key — the key hashes
     * the request (SubmitSpec) only, so changing the daemon's backend
     * serves possibly-different payloads under the same key; operators
     * who switch engines should start with a cold cache.
     */
    sim::BackendKind backend = sim::BackendKind::Auto;
    /** When non-empty: write `<job-id>_manifest.json` per job here. */
    std::string manifestDir;
    /** Spawn the worker pool in the constructor (tests may disable). */
    bool autoStart = true;
    /** Terminal job records retained for status/result queries. */
    std::size_t retainedJobs = 10000;
    /**
     * When non-empty: rewrite this file (atomically) with a Prometheus
     * text snapshot of the metric registry after every `stats` request
     * (`smq_serve --metrics-file`). A textfile collector pointed here
     * scrapes the daemon without speaking the protocol.
     */
    std::string metricsFile;
};

/** Point-in-time job-state tallies (for `stats` replies and tests). */
struct JobCounts
{
    std::size_t queued = 0;
    std::size_t running = 0;
    std::size_t done = 0;
    std::size_t cancelled = 0;
};

class Server
{
  public:
    explicit Server(ServerOptions options,
                    std::vector<device::Device> devices =
                        device::allDevices());

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** Initiates shutdown and drains before destruction. */
    ~Server();

    /**
     * Process one request line, returning exactly one response line
     * (no trailing newline). Never throws; malformed input yields an
     * `ok:false` reply and the server stays serviceable. A `submit`
     * with `"wait":true` blocks until the job is terminal and inlines
     * the result (executing on the caller when no workers run).
     */
    std::string handle(const std::string &line);

    /**
     * Run the oldest queued job on the calling thread (manual mode /
     * tests). @return false when the queue is empty.
     */
    bool step();

    /**
     * Refuse new submits, cancel queued jobs, wake the workers. Safe
     * from any thread; idempotent. The protocol `shutdown` request,
     * the signal-driven transport loops and the destructor all funnel
     * here.
     */
    void requestShutdown();

    /** Whether shutdown has been initiated. */
    bool shuttingDown() const
    {
        return stopping_.load(std::memory_order_relaxed);
    }

    /**
     * Block until every accepted job is terminal and the worker pool
     * has stopped. Requires requestShutdown() first (the destructor
     * does both).
     */
    void drain();

    /** First manifest-write failure ("write: No space left..."). */
    std::string storageError() const;

    /**
     * Write the Prometheus snapshot to options().metricsFile now
     * (no-op without one). The stats path calls this after every
     * reply; the CLI calls it once more after drain so the final
     * scrape reflects the whole daemon lifetime.
     */
    void writeMetricsFile();

    CacheStats cacheStats() const { return cache_.stats(); }
    JobCounts jobCounts() const;
    std::size_t queueDepth() const;
    /** Largest queue depth observed since construction. */
    std::size_t queueHighWater() const;
    const ServerOptions &options() const { return options_; }

  private:
    struct Job
    {
        std::string id;
        SubmitSpec spec;
        core::BenchmarkPtr benchmark;
        const device::Device *device = nullptr;
        CacheKey key;
        JobState state = JobState::Queued;
        bool cached = false;      ///< payload came from the cache
        bool interrupted = false; ///< salvaged under cancel/shutdown
        std::atomic<bool> cancelRequested{false};
        std::string payload; ///< result JSON once state == Done
        /** Trace identity: adopted from the wire or derived from the
         *  spec; every span the job emits carries it. */
        obs::TraceContext trace;
        /** Enqueue instant, for the `serve.queue_wait` span. Epoch
         *  (zero) for cache hits, which never queue. */
        std::chrono::steady_clock::time_point enqueuedAt{};
        /** Trace-epoch timestamp of the enqueue (0 when tracing off). */
        std::uint64_t enqueueTraceNs = 0;
    };

    std::string handleSubmit(const SubmitSpec &spec);
    std::string handleStatus(const std::string &id);
    std::string handleResult(const std::string &id);
    std::string handleCancel(const std::string &id);
    std::string handleStats();
    std::string handleShutdown();

    void startWorkers();
    void workerLoop();
    void executeJob(Job &job);
    void finishJobLocked(Job &job);
    void waitForJob(Job &job);
    std::shared_ptr<Job> findJobLocked(const std::string &id);
    std::string submitReply(const Job &job, bool include_result) const;

    ServerOptions options_;
    std::vector<device::Device> devices_;
    ResultCache cache_;

    mutable std::mutex mutex_;
    std::condition_variable workAvailable_;
    std::condition_variable jobDone_;
    // Jobs are shared: the map owns the records subject to retention
    // eviction, while the queue, an executing worker and a blocked
    // `wait` submit each hold their own reference — eviction can
    // never free a record someone is still reading.
    std::deque<std::shared_ptr<Job>> queue_;
    std::map<std::string, std::shared_ptr<Job>> jobs_;
    std::deque<std::string> terminalOrder_; ///< retention eviction order
    std::uint64_t nextId_ = 1;
    std::atomic<bool> stopping_{false};
    bool workersRunning_ = false;
    std::string storageError_;
    const std::chrono::steady_clock::time_point startTime_ =
        std::chrono::steady_clock::now();
    std::size_t queueHighWater_ = 0; ///< guarded by mutex_

    std::unique_ptr<util::ThreadPool> pool_;
    std::thread scheduler_;
};

} // namespace smq::serve

#endif // SMQ_SERVE_SERVER_HPP
