/**
 * @file
 * Unix-domain socket transport for the serve daemon, and the matching
 * one-shot client used by `smq_sentinel submit`.
 *
 * The transport is deliberately thin: it owns the listening socket
 * and per-connection line buffers, and maps every received line
 * through Server::handle() to exactly one reply line. All protocol
 * logic (including error replies for malformed input) lives in the
 * Server, so the pipe mode, the tests and the fuzz oracle exercise
 * the identical code path.
 *
 * Liveness rules (docs/OPERATIONS.md):
 *  - A pre-existing socket file that still accepts connections means
 *    another daemon is live: refuse to start (exit 75, EX_TEMPFAIL).
 *  - A pre-existing socket file that refuses connections is a stale
 *    leftover from a crash: silently unlink and take over.
 *  - bind/listen failures are environmental (exit 74, EX_IOERR).
 *
 * The accept loop polls with a short timeout so SIGINT/SIGTERM
 * (util/stop) and protocol `shutdown` requests are noticed promptly;
 * the loop returns once shutdown is initiated, leaving the drain to
 * the caller.
 */

#ifndef SMQ_SERVE_SOCKET_HPP
#define SMQ_SERVE_SOCKET_HPP

#include <string>

namespace smq::serve {

class Server;

/** Result of running the socket accept loop. */
enum class SocketLoopResult {
    Drained,   ///< shutdown initiated (signal or protocol); exit 0 path
    Busy,      ///< another daemon owns the socket; exit 75
    BindError, ///< could not create/bind/listen; exit 74
};

/**
 * Serve @p server over a Unix-domain stream socket at @p path until
 * shutdown is initiated. Owns the socket file: stale files are
 * reclaimed, and the file is unlinked on return. Failure details go
 * to @p error when non-null.
 */
SocketLoopResult serveOverSocket(Server &server, const std::string &path,
                                 std::string *error = nullptr);

/**
 * One-shot client: connect to @p path, send @p line (newline
 * appended), and return the single reply line via @p reply.
 * @return false (with @p error set) when the daemon is unreachable
 * or the connection drops before a full reply arrives.
 */
bool requestOverSocket(const std::string &path, const std::string &line,
                       std::string *reply, std::string *error = nullptr);

} // namespace smq::serve

#endif // SMQ_SERVE_SOCKET_HPP
