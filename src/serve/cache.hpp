/**
 * @file
 * The content-addressed result cache of the serve daemon.
 *
 * A benchmark result is a pure function of (circuits, device noise
 * model, shots, seed, repetitions, fault schedule) — the determinism
 * the whole harness is built on. The cache exploits that: the key is
 * derived from exactly those inputs (docs/PROTOCOL.md documents the
 * derivation normatively), so a repeated `submit` from any client is
 * served byte-identically without touching the simulator, and two
 * requests that differ in any result-relevant field can never alias.
 *
 * Eviction is LRU under a byte budget (`--cache-mb`): each entry
 * costs its payload size plus key overhead, and inserting past the
 * budget evicts least-recently-used entries first. A payload larger
 * than the whole budget is simply not cached. Thread-safe: daemon
 * workers insert concurrently with transport-thread lookups.
 */

#ifndef SMQ_SERVE_CACHE_HPP
#define SMQ_SERVE_CACHE_HPP

#include <cstdint>
#include <list>
#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "core/benchmark.hpp"
#include "device/device.hpp"
#include "serve/protocol.hpp"

namespace smq::serve {

/** A derived cache identity: the canonical key text and its address. */
struct CacheKey
{
    /**
     * Canonical key text, e.g.
     * "circuits=<16-hex>;device=AQT;devtable=smq-devices-v1;
     *  shots=2000;repetitions=3;seed=12345;faults=0;fault_seed=0".
     * Human-auditable; returned to clients for cache debugging.
     */
    std::string text;
    /** 16-hex-digit address: labelSeed over the key text. */
    std::string hex;
};

/**
 * Derive the cache key of one submit spec. @p benchmark must be the
 * instance the spec names; its circuits' OpenQASM text is hashed, so
 * the key survives daemon restarts and identifies the circuit content
 * (not the name — two names producing identical circuits share an
 * entry; a regenerated instance with different parameters cannot).
 */
CacheKey deriveCacheKey(const SubmitSpec &spec,
                        const core::Benchmark &benchmark,
                        const device::Device &device);

/** Point-in-time cache statistics (for `stats` replies and tests). */
struct CacheStats
{
    std::size_t entries = 0;
    std::size_t bytes = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
};

/** LRU byte-budget result cache, keyed by CacheKey::hex. */
class ResultCache
{
  public:
    explicit ResultCache(std::size_t budget_bytes)
        : budget_(budget_bytes)
    {
    }

    /**
     * Fetch the payload cached under @p key, refreshing its LRU
     * position. Counts a hit or miss (both locally and on the
     * `serve.cache.*` counters).
     */
    std::optional<std::string> lookup(const std::string &key);

    /**
     * Insert @p payload under @p key, evicting LRU entries until the
     * budget holds. Re-inserting an existing key refreshes the
     * payload. A payload that alone exceeds the budget is ignored.
     */
    void insert(const std::string &key, std::string payload);

    CacheStats stats() const;

  private:
    struct Entry
    {
        std::string payload;
        std::list<std::string>::iterator lruPosition;
    };

    void evictToFitLocked(std::size_t incoming_bytes);

    mutable std::mutex mutex_;
    std::size_t budget_;
    std::size_t bytes_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t evictions_ = 0;
    std::list<std::string> lru_; ///< front = most recently used
    std::map<std::string, Entry> entries_;
};

} // namespace smq::serve

#endif // SMQ_SERVE_CACHE_HPP
