#include "serve/protocol.hpp"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <exception>
#include <sstream>

#include "obs/json.hpp"

namespace smq::serve {

namespace {

/**
 * Strict u64 field read: the JSON number must be a plain non-negative
 * integer literal in range. obs::JsonValue::asU64 alone would let
 * "-5" wrap and "1.5" partial-parse, so out-of-domain values would
 * silently become huge shot counts instead of bad_field replies.
 */
std::optional<std::uint64_t>
readU64(const obs::JsonValue &value)
{
    if (value.kind != obs::JsonValue::Kind::Number)
        return std::nullopt;
    const std::string &text = value.text;
    if (text.empty())
        return std::nullopt;
    for (char c : text) {
        if (!std::isdigit(static_cast<unsigned char>(c)))
            return std::nullopt;
    }
    errno = 0;
    char *end = nullptr;
    unsigned long long parsed = std::strtoull(text.c_str(), &end, 10);
    if (errno == ERANGE || end != text.c_str() + text.size())
        return std::nullopt;
    return static_cast<std::uint64_t>(parsed);
}

ParsedRequest
fail(ErrorCode code, std::string message)
{
    ParsedRequest outcome;
    outcome.error = code;
    outcome.message = std::move(message);
    return outcome;
}

/** Read an optional bounded u64 field into @p target. */
bool
takeU64(const obs::JsonValue &object, const char *name,
        std::uint64_t minimum, std::uint64_t maximum,
        std::uint64_t &target, ParsedRequest &error)
{
    const obs::JsonValue *field = object.find(name);
    if (field == nullptr)
        return true;
    std::optional<std::uint64_t> value = readU64(*field);
    if (!value || *value < minimum || *value > maximum) {
        std::ostringstream message;
        message << name << " must be an integer in [" << minimum << ", "
                << maximum << "]";
        error = fail(ErrorCode::BadField, message.str());
        return false;
    }
    target = *value;
    return true;
}

/** Read an optional bool field into @p target. */
bool
takeBool(const obs::JsonValue &object, const char *name, bool &target,
         ParsedRequest &error)
{
    const obs::JsonValue *field = object.find(name);
    if (field == nullptr)
        return true;
    if (field->kind != obs::JsonValue::Kind::Bool) {
        error = fail(ErrorCode::BadField,
                     std::string(name) + " must be a boolean");
        return false;
    }
    target = field->boolean;
    return true;
}

/**
 * Read the optional `trace` object: `id` required (32 lowercase hex
 * chars), `parent` optional (16). Absence is fine — the daemon
 * derives a context — but a present-and-malformed context is a
 * bad_field, not something to silently drop: a client that *meant*
 * to correlate spans should learn its ids never matched.
 */
bool
takeTrace(const obs::JsonValue &object, obs::TraceContext &target,
          ParsedRequest &error)
{
    const obs::JsonValue *trace = object.find("trace");
    if (trace == nullptr)
        return true;
    if (trace->kind != obs::JsonValue::Kind::Object) {
        error = fail(ErrorCode::BadField, "trace must be an object");
        return false;
    }
    const obs::JsonValue *id = trace->find("id");
    if (id == nullptr || id->kind != obs::JsonValue::Kind::String) {
        error = fail(ErrorCode::BadField,
                     "trace.id must be a string of 32 hex chars");
        return false;
    }
    std::string parent;
    const obs::JsonValue *parent_field = trace->find("parent");
    if (parent_field != nullptr) {
        if (parent_field->kind != obs::JsonValue::Kind::String) {
            error = fail(ErrorCode::BadField,
                         "trace.parent must be a string of 16 hex chars");
            return false;
        }
        parent = parent_field->text;
    }
    std::optional<obs::TraceContext> context =
        obs::TraceContext::fromHex(id->text, parent);
    if (!context) {
        error = fail(ErrorCode::BadField,
                     "trace.id/parent must be 32/16 lowercase hex chars");
        return false;
    }
    target = *context;
    return true;
}

} // namespace

std::optional<RequestType>
requestTypeFromString(std::string_view text)
{
    for (RequestType type : kAllRequestTypes) {
        if (text == toString(type))
            return type;
    }
    return std::nullopt;
}

ParsedRequest
parseRequest(const std::string &line)
{
    obs::JsonValue root;
    try {
        root = obs::parseJson(line);
    } catch (const std::exception &e) {
        return fail(ErrorCode::BadRequest,
                    std::string("malformed JSON: ") + e.what());
    }
    if (root.kind != obs::JsonValue::Kind::Object)
        return fail(ErrorCode::BadRequest, "request must be a JSON object");

    const obs::JsonValue *type_field = root.find("type");
    if (type_field == nullptr)
        return fail(ErrorCode::BadRequest, "missing required field: type");
    if (type_field->kind != obs::JsonValue::Kind::String)
        return fail(ErrorCode::BadRequest, "type must be a string");
    std::optional<RequestType> type =
        requestTypeFromString(type_field->text);
    if (!type)
        return fail(ErrorCode::UnknownType,
                    "unknown request type: " + type_field->text);

    Request request;
    request.type = *type;

    switch (*type) {
      case RequestType::Status:
      case RequestType::Result:
      case RequestType::Cancel: {
          const obs::JsonValue *id = root.find("id");
          if (id == nullptr)
              return fail(ErrorCode::BadRequest,
                          "missing required field: id");
          if (id->kind != obs::JsonValue::Kind::String || id->text.empty())
              return fail(ErrorCode::BadField,
                          "id must be a non-empty string");
          request.id = id->text;
          break;
      }
      case RequestType::Submit: {
          const obs::JsonValue *benchmark = root.find("benchmark");
          if (benchmark == nullptr)
              return fail(ErrorCode::BadRequest,
                          "missing required field: benchmark");
          if (benchmark->kind != obs::JsonValue::Kind::String ||
              benchmark->text.empty())
              return fail(ErrorCode::BadField,
                          "benchmark must be a non-empty string");
          const obs::JsonValue *device = root.find("device");
          if (device == nullptr)
              return fail(ErrorCode::BadRequest,
                          "missing required field: device");
          if (device->kind != obs::JsonValue::Kind::String ||
              device->text.empty())
              return fail(ErrorCode::BadField,
                          "device must be a non-empty string");
          SubmitSpec &spec = request.submit;
          spec.benchmark = benchmark->text;
          spec.device = device->text;
          ParsedRequest error;
          if (!takeU64(root, "shots", 1, kMaxShots, spec.shots, error) ||
              !takeU64(root, "repetitions", 1, kMaxRepetitions,
                       spec.repetitions, error) ||
              !takeU64(root, "seed", 0, UINT64_MAX, spec.seed, error) ||
              !takeU64(root, "fault_seed", 0, UINT64_MAX, spec.faultSeed,
                       error) ||
              !takeBool(root, "faults", spec.faults, error) ||
              !takeBool(root, "wait", spec.wait, error))
              return error;
          if (!takeTrace(root, spec.trace, error))
              return error;
          break;
      }
      case RequestType::Stats:
      case RequestType::Shutdown:
          break;
    }

    ParsedRequest outcome;
    outcome.request = std::move(request);
    outcome.error = ErrorCode::BadRequest;
    return outcome;
}

std::string
errorLine(ErrorCode code, const std::string &message)
{
    std::ostringstream out;
    out << "{\"ok\":false,\"error\":\"" << toString(code)
        << "\",\"message\":\"" << obs::escapeJson(message) << "\"}";
    return out.str();
}

} // namespace smq::serve
