#include "util/seed.hpp"

namespace smq::util {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

std::uint64_t
fnv1a(std::uint64_t h, std::string_view s)
{
    for (unsigned char c : s) {
        h ^= c;
        h *= kFnvPrime;
    }
    h ^= 0xffu; // separator so ("ab","c") != ("a","bc")
    h *= kFnvPrime;
    return h;
}

std::uint64_t
fnv1a(std::uint64_t h, std::uint64_t v)
{
    for (int byte = 0; byte < 8; ++byte) {
        h ^= (v >> (8 * byte)) & 0xffu;
        h *= kFnvPrime;
    }
    return h;
}

/** splitmix64 finaliser: spreads FNV output over the full range. */
std::uint64_t
mix(std::uint64_t h)
{
    h += 0x9e3779b97f4a7c15ULL;
    h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
    h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
    return h ^ (h >> 31);
}

} // namespace

std::uint64_t
labelSeed(std::uint64_t seed, std::string_view labelA,
          std::string_view labelB, std::uint64_t a, std::uint64_t b)
{
    std::uint64_t h = fnv1a(kFnvOffset, seed);
    h = fnv1a(h, labelA);
    h = fnv1a(h, labelB);
    h = fnv1a(h, a);
    h = fnv1a(h, b);
    return mix(h);
}

} // namespace smq::util
