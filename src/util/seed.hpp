/**
 * @file
 * Label-derived seeds: the one hashing scheme behind every
 * order-independent stream in the harness.
 *
 * labelSeed() is FNV-1a over the label tuple with a splitmix64
 * finaliser. The jobs layer derives per-cell simulation and retry
 * streams from it (jobs::streamSeed), and the shard partitioner
 * (core::shardOfCell) assigns grid cells to shards with the same
 * derivation — so a cell's randomness *and* its shard are pure
 * functions of its labels, and any shard reproduces in isolation.
 */

#ifndef SMQ_UTIL_SEED_HPP
#define SMQ_UTIL_SEED_HPP

#include <cstdint>
#include <string_view>

namespace smq::util {

/**
 * Stable 64-bit seed from a base seed and two string labels plus two
 * numeric discriminators (FNV-1a with separators, splitmix64
 * finalised). Deterministic across platforms and process runs.
 */
std::uint64_t labelSeed(std::uint64_t seed, std::string_view labelA,
                        std::string_view labelB, std::uint64_t a = 0,
                        std::uint64_t b = 0);

} // namespace smq::util

#endif // SMQ_UTIL_SEED_HPP
