/**
 * @file
 * Cooperative shutdown: a process-wide stop flag settable from signal
 * handlers.
 *
 * A long grid sweep cannot afford to die mid-cell on Ctrl-C: the
 * checkpoint journal would lose the in-flight repetitions and the run
 * manifest would never be written. installStopHandlers() routes
 * SIGINT/SIGTERM into a lock-free flag; execution loops poll
 * stopRequested() at safe boundaries (before claiming a new grid
 * cell, before starting a repetition) and drain instead of aborting.
 * The second signal falls back to the default disposition, so a hung
 * drain can still be killed the ordinary way.
 */

#ifndef SMQ_UTIL_STOP_HPP
#define SMQ_UTIL_STOP_HPP

namespace smq::util {

/**
 * Install SIGINT/SIGTERM handlers that call requestStop(). Safe to
 * call more than once. After the first signal the handler resets the
 * disposition to SIG_DFL, so a repeated signal terminates immediately.
 */
void installStopHandlers();

/** Raise the stop flag (what the signal handlers do). Async-safe. */
void requestStop() noexcept;

/** Whether a stop has been requested. Cheap (one relaxed load). */
bool stopRequested() noexcept;

/** Clear the flag — for tests that simulate interruption in-process. */
void resetStopForTests() noexcept;

} // namespace smq::util

#endif // SMQ_UTIL_STOP_HPP
