/**
 * @file
 * Deterministic parallel execution primitives.
 *
 * The Fig. 2 grid is embarrassingly parallel once every cell derives
 * its randomness from labels instead of call order (PR 1 made fault
 * injection and the per-job simulation streams pure functions of
 * (seed, device, benchmark, rep, attempt)). The ThreadPool exploits
 * that: parallelFor() hands out loop indices to a fixed set of
 * workers, each task writes only its own slot, and deriveTaskSeed()
 * gives every task an order-independent RNG stream — so a parallel
 * sweep is byte-identical to the serial one, whatever the thread
 * count or scheduling.
 */

#ifndef SMQ_UTIL_THREAD_POOL_HPP
#define SMQ_UTIL_THREAD_POOL_HPP

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/trace_context.hpp"

namespace smq::util {

/**
 * Stable per-task seed: splitmix64 of (base, task). Tasks executed in
 * any order (or concurrently) reproduce the streams of a serial loop
 * seeding rep k with deriveTaskSeed(base, k).
 */
std::uint64_t deriveTaskSeed(std::uint64_t base, std::uint64_t task);

/** Thread count to use for "--jobs 0" / unspecified: the hardware. */
std::size_t defaultJobs();

/**
 * True while the calling thread is executing a task handed out by any
 * ThreadPool::parallelFor (including the caller thread, which
 * participates in its own batches). Nested parallel layers consult
 * this to stay serial instead of oversubscribing: a grid cell already
 * running on a pool worker must not fan its gate kernels out to a
 * second pool.
 */
bool inPoolTask();

/**
 * A fixed-size worker pool executing index-space loops.
 *
 * The pool owns `threads` workers; the caller of parallelFor()
 * participates too, so total concurrency is threads + 1. A pool with
 * zero workers degrades to a plain serial loop.
 */
class ThreadPool
{
  public:
    /** Spawn @p threads workers (0 = fully serial pool). */
    explicit ThreadPool(std::size_t threads);

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    ~ThreadPool();

    /** Worker count (excluding the calling thread). */
    std::size_t threadCount() const { return workers_.size(); }

    /**
     * Run body(i) for every i in [0, n), distributing indices over the
     * workers plus the calling thread; blocks until all complete.
     * Indices are claimed atomically, so each runs exactly once. The
     * first exception thrown by any task is rethrown here after the
     * batch drains. Not reentrant: body must not call parallelFor on
     * the same pool.
     *
     * When @p stop is non-empty it is consulted before each index is
     * claimed: once it returns true, no further indices are handed
     * out and the batch drains after the in-flight tasks finish. The
     * cooperative-shutdown path of the grid harness uses this to stop
     * claiming cells after SIGINT/SIGTERM without abandoning work
     * already running.
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)> &body,
                     const std::function<bool()> &stop = {});

  private:
    void workerLoop();
    void runIndices();

    std::vector<std::thread> workers_;
    std::mutex mutex_;
    std::condition_variable wake_;
    std::condition_variable done_;
    const std::function<void(std::size_t)> *body_ = nullptr;
    const std::function<bool()> *stopCheck_ = nullptr;
    /** Submitting thread's trace context, re-installed on every
     *  worker for the batch so spans recorded inside tasks carry the
     *  batch's trace identity at any --jobs. */
    obs::TraceContext batchContext_;
    std::size_t batchSize_ = 0;
    std::atomic<std::size_t> next_{0};
    std::size_t activeWorkers_ = 0;
    std::uint64_t generation_ = 0;
    std::exception_ptr error_;
    bool stop_ = false;
};

/**
 * One-shot convenience: run body(i) for i in [0, n) with @p jobs-way
 * concurrency (jobs <= 1 or n <= 1 runs serially on the caller, with
 * exceptions propagating directly). jobs == 0 means defaultJobs().
 * A non-empty @p stop stops further indices from being claimed once
 * it returns true (see ThreadPool::parallelFor).
 */
void parallelFor(std::size_t jobs, std::size_t n,
                 const std::function<void(std::size_t)> &body,
                 const std::function<bool()> &stop = {});

} // namespace smq::util

#endif // SMQ_UTIL_THREAD_POOL_HPP
