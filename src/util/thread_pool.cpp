#include "util/thread_pool.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "obs/names.hpp"

namespace smq::util {

namespace {

/**
 * One batch's worth of pool accounting. Recorded once per
 * parallelFor call (never per index), so the counters are identical
 * for serial and pooled execution of the same loop.
 */
void
recordBatch(std::size_t n, std::size_t workers)
{
    static obs::Counter &batches =
        obs::counter(obs::names::kPoolBatches);
    static obs::Counter &tasks =
        obs::counter(obs::names::kPoolTasksRun);
    batches.add();
    tasks.add(n);
    obs::gauge(obs::names::kPoolWorkers)
        .set(static_cast<std::int64_t>(workers));
}

/**
 * Set while a thread drains indices from a batch; the RAII form keeps
 * the flag correct even when a task throws, and restores rather than
 * clears so a worker of an outer pool stays marked after an inner
 * serial fallback returns.
 */
thread_local bool tInPoolTask = false;

struct PoolTaskScope
{
    bool saved;
    PoolTaskScope() : saved(tInPoolTask) { tInPoolTask = true; }
    ~PoolTaskScope() { tInPoolTask = saved; }
};

} // namespace

bool
inPoolTask()
{
    return tInPoolTask;
}

std::uint64_t
deriveTaskSeed(std::uint64_t base, std::uint64_t task)
{
    // splitmix64 over the combined word: cheap, well-mixed, and stable
    // across platforms (no std:: distribution involvement).
    std::uint64_t z = base + 0x9e3779b97f4a7c15ull * (task + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::size_t
defaultJobs()
{
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

ThreadPool::ThreadPool(std::size_t threads)
{
    workers_.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    wake_.notify_all();
    for (std::thread &w : workers_)
        w.join();
}

void
ThreadPool::runIndices()
{
    PoolTaskScope inPool;
    // Propagate the submitting thread's trace context: on the caller
    // this re-installs its own context (no-op); on workers it makes
    // task-level spans carry the batch's trace identity. Never
    // consulted by task bodies for randomness, so determinism holds.
    obs::TraceContextScope traceScope(batchContext_);
    for (;;) {
        if (stopCheck_ != nullptr && *stopCheck_ && (*stopCheck_)())
            return;
        std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
        if (i >= batchSize_)
            return;
        try {
            (*body_)(i);
        } catch (...) {
            std::lock_guard<std::mutex> lock(mutex_);
            if (!error_)
                error_ = std::current_exception();
        }
    }
}

void
ThreadPool::workerLoop()
{
    std::uint64_t seen = 0;
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        wake_.wait(lock,
                   [&] { return stop_ || generation_ != seen; });
        if (stop_)
            return;
        seen = generation_;
        lock.unlock();
        runIndices();
        lock.lock();
        if (--activeWorkers_ == 0)
            done_.notify_all();
    }
}

void
ThreadPool::parallelFor(std::size_t n,
                        const std::function<void(std::size_t)> &body,
                        const std::function<bool()> &stop)
{
    if (n == 0)
        return;
    recordBatch(n, workers_.size());
    if (workers_.empty() || n == 1) {
        for (std::size_t i = 0; i < n; ++i) {
            if (stop && stop())
                return;
            body(i);
        }
        return;
    }
    std::unique_lock<std::mutex> lock(mutex_);
    body_ = &body;
    stopCheck_ = stop ? &stop : nullptr;
    batchContext_ = obs::currentTraceContext();
    batchSize_ = n;
    next_.store(0, std::memory_order_relaxed);
    activeWorkers_ = workers_.size();
    error_ = nullptr;
    ++generation_;
    lock.unlock();
    wake_.notify_all();

    runIndices(); // the caller is a worker too

    lock.lock();
    done_.wait(lock, [&] { return activeWorkers_ == 0; });
    body_ = nullptr;
    stopCheck_ = nullptr;
    std::exception_ptr error = error_;
    error_ = nullptr;
    lock.unlock();
    if (error)
        std::rethrow_exception(error);
}

void
parallelFor(std::size_t jobs, std::size_t n,
            const std::function<void(std::size_t)> &body,
            const std::function<bool()> &stop)
{
    if (jobs == 0)
        jobs = defaultJobs();
    if (jobs <= 1 || n <= 1) {
        if (n > 0)
            recordBatch(n, 0);
        for (std::size_t i = 0; i < n; ++i) {
            if (stop && stop())
                return;
            body(i);
        }
        return;
    }
    ThreadPool pool(std::min(jobs, n) - 1);
    pool.parallelFor(n, body, stop);
}

} // namespace smq::util
