#include "util/stop.hpp"

#include <atomic>
#include <csignal>

namespace smq::util {

namespace {

std::atomic<bool> g_stop{false};

extern "C" void
stopSignalHandler(int sig)
{
    g_stop.store(true, std::memory_order_relaxed);
    // One chance to drain gracefully; the next signal kills for real.
    std::signal(sig, SIG_DFL);
}

} // namespace

void
installStopHandlers()
{
    std::signal(SIGINT, stopSignalHandler);
    std::signal(SIGTERM, stopSignalHandler);
}

void
requestStop() noexcept
{
    g_stop.store(true, std::memory_order_relaxed);
}

bool
stopRequested() noexcept
{
    return g_stop.load(std::memory_order_relaxed);
}

void
resetStopForTests() noexcept
{
    g_stop.store(false, std::memory_order_relaxed);
}

} // namespace smq::util
