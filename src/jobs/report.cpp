#include "jobs/report.hpp"

#include <exception>

#include "stats/table.hpp"

namespace smq::jobs {

SuiteReport
runSweep(const std::vector<core::BenchmarkPtr> &suite,
         const std::vector<device::Device> &devices,
         const JobOptions &options, FaultInjector injector)
{
    SuiteReport report;
    report.faultSeed = injector.seed();
    for (const device::Device &dev : devices)
        report.deviceNames.push_back(dev.name);

    SweepContext ctx(options, std::move(injector));
    for (const core::BenchmarkPtr &bench : suite) {
        ReportRow row;
        row.benchmark = bench->name();
        for (const device::Device &dev : devices) {
            try {
                row.runs.push_back(runJob(*bench, dev, options, ctx));
            } catch (const std::exception &e) {
                core::BenchmarkRun failed;
                failed.benchmark = row.benchmark;
                failed.device = dev.name;
                failed.plannedRepetitions = options.harness.repetitions;
                failed.status = core::RunStatus::Failed;
                failed.cause = core::FailureCause::Internal;
                failed.detail = e.what();
                row.runs.push_back(std::move(failed));
            }
        }
        report.rows.push_back(std::move(row));
    }
    report.simulatedElapsedUs = ctx.clock().now();
    return report;
}

std::array<std::size_t, 5>
statusTally(const SuiteReport &report)
{
    std::array<std::size_t, 5> tally{};
    for (const ReportRow &row : report.rows) {
        for (const core::BenchmarkRun &run : row.runs)
            ++tally[static_cast<std::size_t>(run.status)];
    }
    return tally;
}

std::string
cellText(const core::BenchmarkRun &run)
{
    using core::RunStatus;
    switch (run.status) {
      case RunStatus::Ok:
        return stats::formatFixed(run.summary.mean, 3) + "+-" +
               stats::formatFixed(run.summary.stddev, 3);
      case RunStatus::Partial:
        return stats::formatFixed(run.summary.mean, 3) + "+-" +
               stats::formatFixed(
                   run.summary.stddev * run.errorBarScale, 3) +
               " P(" + core::causeToken(run.cause) + ")";
      case RunStatus::Skipped:
        return std::string("skip(") + core::causeToken(run.cause) + ")";
      case RunStatus::TooLarge:
        return "X";
      case RunStatus::Failed:
        return std::string("fail(") + core::causeToken(run.cause) + ")";
    }
    return "?";
}

std::string
renderReport(const SuiteReport &report)
{
    std::vector<std::string> headers = {"benchmark"};
    for (const std::string &name : report.deviceNames)
        headers.push_back(name);
    stats::TextTable table(headers);
    for (const ReportRow &row : report.rows) {
        std::vector<std::string> cells = {row.benchmark};
        for (const core::BenchmarkRun &run : row.runs)
            cells.push_back(cellText(run));
        table.addRow(std::move(cells));
    }

    std::array<std::size_t, 5> tally = statusTally(report);
    std::string out = table.render();
    out += "\nstatus: ok=" + std::to_string(tally[0]) +
           " partial=" + std::to_string(tally[1]) +
           " skipped=" + std::to_string(tally[2]) +
           " too_large=" + std::to_string(tally[3]) +
           " failed=" + std::to_string(tally[4]) + "  (seed " +
           std::to_string(report.faultSeed) + ", simulated " +
           stats::formatFixed(report.simulatedElapsedUs / 1e6, 1) +
           " s)\n";
    return out;
}

} // namespace smq::jobs
