/**
 * @file
 * Simulated time for the job layer.
 *
 * Queue waits, backoff delays and suite deadlines are all measured on
 * a VirtualClock that only moves when the scheduler advances it, so a
 * "six-hour" collection sweep with minute-scale backoffs replays in
 * microseconds of wall time and every deadline decision is exactly
 * reproducible.
 */

#ifndef SMQ_JOBS_CLOCK_HPP
#define SMQ_JOBS_CLOCK_HPP

#include <limits>

namespace smq::jobs {

/** Monotonic simulated clock (microseconds since sweep start). */
class VirtualClock
{
  public:
    double now() const { return now_; }

    /** Move time forward; negative advances are ignored. */
    void advance(double us)
    {
        if (us > 0.0)
            now_ += us;
    }

  private:
    double now_ = 0.0;
};

/** An absolute point on a VirtualClock after which work must stop. */
class Deadline
{
  public:
    /** Never expires. */
    static Deadline unlimited() { return Deadline{}; }

    /** Expires @p budget_us after the clock's current time. */
    static Deadline after(const VirtualClock &clock, double budget_us)
    {
        Deadline d;
        d.at_ = clock.now() + budget_us;
        return d;
    }

    bool expired(const VirtualClock &clock) const
    {
        return clock.now() >= at_;
    }

    /** Simulated microseconds left (never negative). */
    double remaining(const VirtualClock &clock) const
    {
        double left = at_ - clock.now();
        return left > 0.0 ? left : 0.0;
    }

  private:
    double at_ = std::numeric_limits<double>::infinity();
};

} // namespace smq::jobs

#endif // SMQ_JOBS_CLOCK_HPP
