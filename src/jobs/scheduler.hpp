/**
 * @file
 * Fault-tolerant job scheduling: cloud-QPU submission semantics on
 * top of the synchronous harness.
 *
 * runJob() is runBenchmark() as the paper's collection scripts had to
 * write it: capability gating instead of crashes (devices without
 * mid-circuit measurement skip the error-correction proxies, exactly
 * as the reference SuperstaQ script does), retries with decorrelated-
 * jitter backoff for transient faults, a suite-level deadline budget
 * on a simulated clock, and partial-result salvage — when the deadline
 * or the attempt cap cuts a job short, the completed repetitions are
 * scored with Partial status and widened error bars rather than
 * discarded. Nothing in this layer throws on an unlucky schedule; the
 * outcome is always a structured BenchmarkRun.
 */

#ifndef SMQ_JOBS_SCHEDULER_HPP
#define SMQ_JOBS_SCHEDULER_HPP

#include <functional>
#include <limits>

#include "core/harness.hpp"
#include "jobs/clock.hpp"
#include "jobs/fault_injector.hpp"
#include "jobs/retry.hpp"

namespace smq::jobs {

/**
 * Simulated duration of submission stages, used to advance the
 * VirtualClock (the deadline currency). Defaults are round numbers in
 * the regime of the paper's collection runs.
 */
struct CostModel
{
    double submitOverheadUs = 0.1e6; ///< per attempt: build + upload
    double queueWaitUs = 0.5e6;      ///< per attempt: device queue
    double perShotUs = 250.0;        ///< execution, per shot per circuit
};

/** Knobs for one fault-tolerant job or sweep. */
struct JobOptions
{
    core::HarnessOptions harness;
    RetryPolicy retry;
    CostModel cost;
    /** Simulated budget for the whole sweep (infinity = no deadline). */
    double suiteBudgetUs = std::numeric_limits<double>::infinity();
    /**
     * Cooperative-shutdown probe (empty = never stop). Checked before
     * every submission attempt, exactly like the deadline: once it
     * returns true the job stops submitting, salvages the completed
     * repetitions through the partial-result path and reports cause
     * Interrupted. The grid harness wires util::stopRequested here so
     * SIGINT/SIGTERM drain in-flight cells instead of discarding them.
     */
    std::function<bool()> stop;
};

/**
 * Shared state across one sweep: the simulated clock, the suite
 * deadline derived from it, and the fault source. Jobs executed
 * against the same context consume the same time budget.
 */
class SweepContext
{
  public:
    explicit SweepContext(const JobOptions &options,
                          FaultInjector injector = FaultInjector())
        : injector_(std::move(injector)),
          deadline_(Deadline::after(clock_, options.suiteBudgetUs))
    {
    }

    VirtualClock &clock() { return clock_; }
    const Deadline &deadline() const { return deadline_; }
    const FaultInjector &injector() const { return injector_; }

  private:
    FaultInjector injector_;
    VirtualClock clock_;
    Deadline deadline_;
};

/**
 * Run one benchmark on one device under the fault-tolerant execution
 * model. Never throws on schedule outcomes (faults, deadlines,
 * missing capabilities); the BenchmarkRun's status/cause/detail
 * explain what happened. Deterministic: the result is a pure function
 * of (benchmark, device, options, injector seed, clock state).
 */
core::BenchmarkRun runJob(const core::Benchmark &benchmark,
                          const device::Device &device,
                          const JobOptions &options, SweepContext &ctx);

} // namespace smq::jobs

#endif // SMQ_JOBS_SCHEDULER_HPP
