#include "jobs/fault_injector.hpp"

#include <algorithm>
#include <cmath>

#include "stats/rng.hpp"
#include "util/seed.hpp"

namespace smq::jobs {

std::uint64_t
streamSeed(std::uint64_t seed, std::string_view device,
           std::string_view benchmark, std::uint64_t a, std::uint64_t b)
{
    // The shared label-hash (util::labelSeed) so per-job streams and
    // the shard partitioner agree on one derivation scheme.
    return util::labelSeed(seed, device, benchmark, a, b);
}

const FaultProfile &
FaultInjector::profile(const std::string &device) const
{
    auto it = perDevice_.find(device);
    return it == perDevice_.end() ? default_ : it->second;
}

FaultDecision
FaultInjector::decide(const std::string &device,
                      const std::string &benchmark, std::size_t rep,
                      std::size_t attempt) const
{
    FaultDecision decision;
    const FaultProfile &prof = profile(device);
    if (!prof.any())
        return decision;

    stats::Rng rng(streamSeed(seed_, device, benchmark, rep, attempt));
    // Draw in a fixed order so each probability gets an independent
    // variate regardless of which faults are enabled.
    double u = rng.uniform();
    double fraction = rng.uniform(prof.minShotFraction, 1.0);
    double drift = prof.calibrationDrift > 0.0
                       ? std::exp(prof.calibrationDrift * rng.gaussian())
                       : 1.0;
    decision.driftFactor = drift;

    if (u < prof.pTransient) {
        decision.kind = FaultKind::TransientFault;
    } else if (u < prof.pTransient + prof.pQueueTimeout) {
        decision.kind = FaultKind::QueueTimeout;
    } else if (u < prof.pTransient + prof.pQueueTimeout +
                       prof.pShotTruncation) {
        decision.kind = FaultKind::ShotTruncation;
        decision.shotFraction = fraction;
    }
    return decision;
}

sim::NoiseModel
FaultInjector::perturbed(const sim::NoiseModel &noise, double driftFactor)
{
    if (driftFactor == 1.0 || !noise.enabled)
        return noise;
    sim::NoiseModel drifted = noise;
    auto scale = [driftFactor](double p) {
        return std::clamp(p * driftFactor, 0.0, 0.5);
    };
    drifted.p1 = scale(noise.p1);
    drifted.p2 = scale(noise.p2);
    drifted.pMeas = scale(noise.pMeas);
    drifted.pReset = scale(noise.pReset);
    return drifted;
}

} // namespace smq::jobs
