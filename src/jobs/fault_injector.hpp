/**
 * @file
 * Deterministic fault injection for the job layer.
 *
 * Cloud QPU collection fails in recurring ways (paper Sec. V): jobs
 * hit transient execution errors, expire in the queue, come back with
 * fewer shots than requested, and run against calibrations that have
 * drifted since Table II was snapshotted. The FaultInjector replays
 * those failure modes from a seed: the decision for attempt k of
 * repetition r of (benchmark, device) depends only on the seed and
 * those labels — never on call order — so a failing sweep can be
 * re-run and re-observed bit-for-bit, and tests can assert exact
 * schedules.
 */

#ifndef SMQ_JOBS_FAULT_INJECTOR_HPP
#define SMQ_JOBS_FAULT_INJECTOR_HPP

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "sim/noise.hpp"

namespace smq::jobs {

/** What the injector decides happens to one submission attempt. */
enum class FaultKind {
    None,           ///< the attempt executes normally
    TransientFault, ///< execution error; retryable
    QueueTimeout,   ///< expired in the device queue; retryable
    ShotTruncation, ///< executes but returns a fraction of the shots
};

/** One attempt's fate, fully determined by (seed, labels). */
struct FaultDecision
{
    FaultKind kind = FaultKind::None;
    /** Fraction of requested shots delivered (< 1 on truncation). */
    double shotFraction = 1.0;
    /** Multiplicative calibration drift on the error rates. */
    double driftFactor = 1.0;
};

/** Per-device fault rates; all zero (the default) injects nothing. */
struct FaultProfile
{
    double pTransient = 0.0;      ///< transient execution fault
    double pQueueTimeout = 0.0;   ///< queue expiry
    double pShotTruncation = 0.0; ///< early job termination
    /** Truncated jobs keep a uniform fraction in [min, 1). */
    double minShotFraction = 0.25;
    /** Log-scale sigma of calibration drift (0 = calibration holds). */
    double calibrationDrift = 0.0;

    bool any() const
    {
        return pTransient > 0.0 || pQueueTimeout > 0.0 ||
               pShotTruncation > 0.0 || calibrationDrift > 0.0;
    }
};

/**
 * Stable 64-bit stream seed derived from a base seed and job labels
 * (FNV-1a over the strings, splitmix64 finalised). The scheduler also
 * uses it to give every job an order-independent simulation stream.
 */
std::uint64_t streamSeed(std::uint64_t seed, std::string_view device,
                         std::string_view benchmark, std::uint64_t a = 0,
                         std::uint64_t b = 0);

/** Seeded, per-device-configurable fault source. */
class FaultInjector
{
  public:
    explicit FaultInjector(std::uint64_t seed = 0) : seed_(seed) {}

    std::uint64_t seed() const { return seed_; }

    /** Profile used for devices without a specific entry. */
    void setDefaultProfile(const FaultProfile &profile)
    {
        default_ = profile;
    }

    void setProfile(const std::string &device,
                    const FaultProfile &profile)
    {
        perDevice_[device] = profile;
    }

    const FaultProfile &profile(const std::string &device) const;

    /**
     * The fate of attempt @p attempt of repetition @p rep of
     * (@p benchmark, @p device). Pure function of the seed and the
     * arguments.
     */
    FaultDecision decide(const std::string &device,
                         const std::string &benchmark, std::size_t rep,
                         std::size_t attempt) const;

    /**
     * @p noise with its error probabilities scaled by @p driftFactor
     * (clamped into [0, 0.5] so the model stays a probability).
     */
    static sim::NoiseModel perturbed(const sim::NoiseModel &noise,
                                     double driftFactor);

  private:
    std::uint64_t seed_;
    FaultProfile default_;
    std::map<std::string, FaultProfile> perDevice_;
};

} // namespace smq::jobs

#endif // SMQ_JOBS_FAULT_INJECTOR_HPP
