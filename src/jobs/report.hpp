/**
 * @file
 * Structured sweep reports: the full benchmark x device matrix with a
 * status in every cell.
 *
 * Where Fig. 2 of the paper prints an X for benchmarks that do not
 * fit, a fault-tolerant sweep has more ways to lose a cell — skipped
 * capabilities, exhausted retries, expired deadlines, truncated shots
 * — and the report keeps all of them visible. Rendering is strictly
 * deterministic (no timestamps, fixed float formatting): re-running a
 * sweep with the same seed must reproduce the report byte-for-byte.
 */

#ifndef SMQ_JOBS_REPORT_HPP
#define SMQ_JOBS_REPORT_HPP

#include <array>
#include <string>
#include <vector>

#include "jobs/scheduler.hpp"

namespace smq::jobs {

/** One benchmark instance evaluated across all devices of a sweep. */
struct ReportRow
{
    std::string benchmark;
    std::vector<core::BenchmarkRun> runs; ///< one per device
};

/** Outcome of a full suite x devices sweep. */
struct SuiteReport
{
    std::uint64_t faultSeed = 0;
    std::vector<std::string> deviceNames;
    std::vector<ReportRow> rows;
    double simulatedElapsedUs = 0.0;
};

/**
 * Execute every benchmark on every device under the fault-tolerant
 * job layer. Never throws: even an unexpected exception inside one
 * job becomes a Failed{Internal} cell carrying the message.
 */
SuiteReport runSweep(const std::vector<core::BenchmarkPtr> &suite,
                     const std::vector<device::Device> &devices,
                     const JobOptions &options,
                     FaultInjector injector = FaultInjector());

/** Runs per status, indexed by static_cast<size_t>(RunStatus). */
std::array<std::size_t, 5> statusTally(const SuiteReport &report);

/**
 * One-cell summary: "0.873+-0.021" (Ok), the same with a
 * " P(cause)" suffix and widened bar (Partial), "skip(cause)",
 * "X" (too large) or "fail(cause)".
 */
std::string cellText(const core::BenchmarkRun &run);

/** Deterministic text rendering of the whole report. */
std::string renderReport(const SuiteReport &report);

} // namespace smq::jobs

#endif // SMQ_JOBS_REPORT_HPP
