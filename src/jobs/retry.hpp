/**
 * @file
 * Retry policy for transient job failures.
 *
 * Retryable faults (transient execution errors, queue timeouts) are
 * resubmitted with exponential backoff and decorrelated jitter — the
 * AWS-architecture-blog variant where each delay is drawn uniformly
 * from [base, 3 * previous], capped — which avoids the synchronised
 * retry storms plain exponential backoff produces when many jobs fail
 * together. Delays are simulated (clock.hpp), so tests run instantly.
 */

#ifndef SMQ_JOBS_RETRY_HPP
#define SMQ_JOBS_RETRY_HPP

#include <cstddef>

#include "stats/rng.hpp"

namespace smq::jobs {

/** Backoff configuration (delays in simulated microseconds). */
struct RetryPolicy
{
    /** Submission attempts per repetition before giving up. */
    std::size_t maxAttempts = 4;
    double baseDelayUs = 1.0e6;  ///< first-retry delay (1 s)
    double maxDelayUs = 32.0e6;  ///< backoff cap (32 s)

    /**
     * Delay before the next retry, given the previous delay (pass
     * baseDelayUs for the first retry): decorrelated jitter
     * min(maxDelayUs, uniform(baseDelayUs, 3 * prev)).
     */
    double nextDelay(double prev_delay_us, stats::Rng &rng) const;
};

} // namespace smq::jobs

#endif // SMQ_JOBS_RETRY_HPP
