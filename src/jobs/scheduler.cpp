#include "jobs/scheduler.hpp"

#include <algorithm>
#include <cmath>

#include "obs/metrics.hpp"
#include "obs/names.hpp"
#include "obs/progress.hpp"
#include "obs/trace.hpp"
#include "sim/memory.hpp"

namespace smq::jobs {

namespace {

/** Stream discriminators for the per-job derived seeds. */
constexpr std::uint64_t kSimStream = 1;
constexpr std::uint64_t kRetryStream = 2;

bool
needsMidCircuitMeasurement(const core::Benchmark &benchmark)
{
    for (const qc::Circuit &circuit : benchmark.circuits()) {
        if (sim::hasMidCircuitOperations(circuit))
            return true;
    }
    return false;
}

std::string
attemptTag(std::size_t rep, std::size_t attempt)
{
    return "rep" + std::to_string(rep) + "/try" +
           std::to_string(attempt + 1);
}

void
appendEvent(std::string &detail, const std::string &event)
{
    if (!detail.empty())
        detail += "; ";
    detail += event;
}

/** Bump the per-status cell counter for a finished job. */
void
countCellStatus(core::RunStatus status)
{
    const char *name = nullptr;
    switch (status) {
      case core::RunStatus::Ok:
        name = obs::names::kJobsCellsOk;
        break;
      case core::RunStatus::Partial:
        name = obs::names::kJobsCellsPartial;
        break;
      case core::RunStatus::Skipped:
        name = obs::names::kJobsCellsSkipped;
        break;
      case core::RunStatus::TooLarge:
        name = obs::names::kJobsCellsTooLarge;
        break;
      case core::RunStatus::Failed:
        name = obs::names::kJobsCellsFailed;
        break;
    }
    if (name != nullptr)
        obs::counter(name).add();
}

/** runJob body; the public wrapper adds the span and cell counters. */
core::BenchmarkRun
runJobImpl(const core::Benchmark &benchmark, const device::Device &device,
           const JobOptions &options, SweepContext &ctx)
{
    using core::FailureCause;
    using core::RunStatus;

    core::BenchmarkRun run;
    run.benchmark = benchmark.name();
    run.device = device.name;
    run.plannedRepetitions = options.harness.repetitions;

    // --- capability gating: structured skips instead of throws ------
    if (benchmark.numQubits() > device.numQubits()) {
        run.status = RunStatus::TooLarge;
        run.cause = FailureCause::RegisterTooWide;
        run.tooLarge = true;
        run.detail = "needs " + std::to_string(benchmark.numQubits()) +
                     " qubits, device has " +
                     std::to_string(device.numQubits());
        return run;
    }
    const device::Capabilities &caps = device.caps;
    if (caps.maxRegisterSize > 0 &&
        benchmark.numQubits() > caps.maxRegisterSize) {
        run.status = RunStatus::Skipped;
        run.cause = FailureCause::RegisterTooWide;
        run.detail = "service register cap " +
                     std::to_string(caps.maxRegisterSize);
        return run;
    }
    if (!caps.midCircuitMeasurement &&
        needsMidCircuitMeasurement(benchmark)) {
        run.status = RunStatus::Skipped;
        run.cause = FailureCause::MissingMidCircuitMeasurement;
        run.detail = "device lacks mid-circuit measurement/RESET";
        return run;
    }
    if (ctx.deadline().expired(ctx.clock())) {
        run.status = RunStatus::Skipped;
        run.cause = FailureCause::DeadlineExceeded;
        run.detail = "suite budget exhausted before submission";
        return run;
    }

    // --- graceful degradation: clamp to the service shot cap --------
    std::uint64_t shots = options.harness.shots;
    if (caps.maxShots > 0 && shots > caps.maxShots) {
        shots = caps.maxShots;
        appendEvent(run.detail, "shots clamped to " +
                                    std::to_string(shots) +
                                    " (service cap)");
    }

    // --- transpile once, as the synchronous harness does ------------
    core::PreparedCircuits prepared =
        core::prepareCircuits(benchmark, device, options.harness);
    if (prepared.tooLarge) {
        run.status = RunStatus::TooLarge;
        run.cause = FailureCause::SimulatorLimit;
        run.tooLarge = true;
        return run;
    }
    if (options.stop && options.stop()) {
        run.status = RunStatus::Skipped;
        run.cause = FailureCause::Interrupted;
        run.detail = "shutdown requested before submission";
        return run;
    }
    run.physicalTwoQubitGates = prepared.physicalTwoQubitGates;
    run.swapsInserted = prepared.swapsInserted;
    // The plan rides along even for Partial/Failed outcomes: a
    // salvaged cell's record still names the engine that produced its
    // scores.
    run.plan = prepared.planSummary();

    // Per-job streams derived from (injector seed, labels): results do
    // not depend on where in the sweep this job runs.
    const FaultInjector &injector = ctx.injector();
    stats::Rng sim_rng(streamSeed(injector.seed(), device.name,
                                  run.benchmark, options.harness.seed,
                                  kSimStream));
    stats::Rng retry_rng(streamSeed(injector.seed(), device.name,
                                    run.benchmark, options.harness.seed,
                                    kRetryStream));

    const double shot_cost_us =
        options.cost.perShotUs *
        static_cast<double>(prepared.circuits.size());

    bool deadline_hit = false;
    bool attempts_exhausted = false;
    bool interrupted = false;
    std::size_t truncated_reps = 0;

    for (std::size_t rep = 0; rep < options.harness.repetitions; ++rep) {
        double delay = options.retry.baseDelayUs;
        bool completed = false;
        for (std::size_t attempt = 0;
             attempt < options.retry.maxAttempts; ++attempt) {
            // Cooperative shutdown behaves exactly like an expired
            // deadline: stop submitting, keep what already finished.
            if (options.stop && options.stop()) {
                interrupted = true;
                break;
            }
            if (ctx.deadline().expired(ctx.clock())) {
                deadline_hit = true;
                break;
            }
            FaultDecision decision = injector.decide(
                device.name, run.benchmark, rep, attempt);
            ctx.clock().advance(options.cost.submitOverheadUs +
                                options.cost.queueWaitUs);
            ++run.attempts;
            static obs::Counter &attempt_counter =
                obs::counter(obs::names::kJobsRetryAttempts);
            attempt_counter.add();

            if (decision.kind == FaultKind::TransientFault ||
                decision.kind == FaultKind::QueueTimeout) {
                obs::counter(decision.kind == FaultKind::TransientFault
                                 ? obs::names::kJobsFaultsTransient
                                 : obs::names::kJobsFaultsQueueTimeout)
                    .add();
                appendEvent(run.detail,
                            attemptTag(rep, attempt) + ": " +
                                core::causeToken(
                                    decision.kind ==
                                            FaultKind::TransientFault
                                        ? FailureCause::TransientFault
                                        : FailureCause::QueueTimeout));
                if (attempt + 1 == options.retry.maxAttempts) {
                    attempts_exhausted = true;
                    break;
                }
                delay = options.retry.nextDelay(delay, retry_rng);
                ctx.clock().advance(delay);
                continue;
            }

            std::uint64_t eff_shots = shots;
            if (decision.kind == FaultKind::ShotTruncation) {
                obs::counter(obs::names::kJobsFaultsShotTruncation).add();
                eff_shots = std::max<std::uint64_t>(
                    1, static_cast<std::uint64_t>(
                           static_cast<double>(shots) *
                           decision.shotFraction));
                ++truncated_reps;
                appendEvent(run.detail,
                            attemptTag(rep, attempt) +
                                ": truncated to " +
                                std::to_string(eff_shots) + "/" +
                                std::to_string(shots) + " shots");
            }
            ctx.clock().advance(static_cast<double>(eff_shots) *
                                shot_cost_us);
            sim::NoiseModel noise = FaultInjector::perturbed(
                device.noise, decision.driftFactor);
            try {
                run.scores.push_back(core::runRepetition(
                    benchmark, prepared, noise, eff_shots, sim_rng, {},
                    options.harness.backend, options.harness.planner));
            } catch (const sim::ResourceExhausted &e) {
                // The simulator refused the allocation up front: the
                // cell is structurally too large, end it here rather
                // than retrying into the same wall.
                run.status = RunStatus::TooLarge;
                run.cause = FailureCause::ResourceExhausted;
                run.tooLarge = true;
                run.scores.clear();
                appendEvent(run.detail, e.what());
                return run;
            }
            completed = true;
            break;
        }
        if (!completed && (deadline_hit || interrupted))
            break; // no budget left for the remaining repetitions
    }

    // --- salvage & classify -----------------------------------------
    std::size_t completed_reps = run.scores.size();
    if (completed_reps > 0) {
        run.summary = stats::summarize(run.scores);
        run.errorBarScale = std::sqrt(
            static_cast<double>(options.harness.repetitions) /
            static_cast<double>(completed_reps));
    }

    FailureCause loss = FailureCause::None;
    if (interrupted)
        loss = FailureCause::Interrupted;
    else if (deadline_hit)
        loss = FailureCause::DeadlineExceeded;
    else if (attempts_exhausted)
        loss = FailureCause::AttemptsExhausted;
    else if (truncated_reps > 0)
        loss = FailureCause::ShotTruncation;

    if (completed_reps == 0) {
        run.status = RunStatus::Failed;
        run.cause = loss == FailureCause::None ? FailureCause::Internal
                                               : loss;
    } else if (completed_reps < options.harness.repetitions) {
        run.status = RunStatus::Partial;
        run.cause = loss;
        appendEvent(run.detail,
                    "salvaged " + std::to_string(completed_reps) + "/" +
                        std::to_string(options.harness.repetitions) +
                        " repetitions");
    } else if (truncated_reps > 0) {
        run.status = RunStatus::Partial;
        run.cause = FailureCause::ShotTruncation;
    } else {
        run.status = RunStatus::Ok;
    }
    return run;
}

} // namespace

core::BenchmarkRun
runJob(const core::Benchmark &benchmark, const device::Device &device,
       const JobOptions &options, SweepContext &ctx)
{
    core::BenchmarkRun run;
    {
        SMQ_TRACE_SPAN(obs::names::kSpanJob,
                       obs::jsonField("benchmark", benchmark.name()) +
                           "," + obs::jsonField("device", device.name));
        run = runJobImpl(benchmark, device, options, ctx);
    }
    countCellStatus(run.status);
    obs::progressTick(obs::names::kSpanJob);
    if (run.status == core::RunStatus::Partial &&
        !run.scores.empty()) {
        obs::counter(obs::names::kJobsSalvagedRepetitions)
            .add(run.scores.size());
    }
    return run;
}

} // namespace smq::jobs
