#include "jobs/retry.hpp"

#include <algorithm>

namespace smq::jobs {

double
RetryPolicy::nextDelay(double prev_delay_us, stats::Rng &rng) const
{
    double lo = baseDelayUs;
    double hi = std::max(lo, 3.0 * prev_delay_us);
    double drawn = lo < hi ? rng.uniform(lo, hi) : lo;
    return std::min(maxDelayUs, drawn);
}

} // namespace smq::jobs
