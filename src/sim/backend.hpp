/**
 * @file
 * The closed vocabulary of simulation backends and the planner's
 * output record.
 *
 * Every engine the runner can dispatch to is an enumerator here, and
 * kAllBackendKinds closes the set the same way the serve protocol
 * closes its wire vocabulary: CLI parsing (`--backend`), the plan
 * records in manifests/serve replies, and the planner tests all
 * iterate the one array, so a backend cannot be added without naming
 * it everywhere at once.
 */

#ifndef SMQ_SIM_BACKEND_HPP
#define SMQ_SIM_BACKEND_HPP

#include <cstddef>
#include <optional>
#include <string>

namespace smq::sim {

/** The execution engines the shot runner can dispatch to. */
enum class BackendKind
{
    /** Let the planner pick the cheapest faithful engine. */
    Auto,
    /** Dense statevector: exact ideal sampling / noise trajectories. */
    Statevector,
    /** Dense density matrix: exact Kraus channels, small widths only. */
    DensityMatrix,
    /** CHP tableau: Clifford circuits at any width, twirled noise. */
    Stabilizer,
    /** Stochastic statevector trajectories (the wide-noisy escape). */
    Trajectory,
};

/** Every backend, Auto included (the `--backend` vocabulary). */
inline constexpr BackendKind kAllBackendKinds[] = {
    BackendKind::Auto,         BackendKind::Statevector,
    BackendKind::DensityMatrix, BackendKind::Stabilizer,
    BackendKind::Trajectory,
};

/** Canonical lower-case token (auto, statevector, density-matrix,
 *  stabilizer, trajectory) — the CLI/wire spelling. */
const char *toString(BackendKind kind);

/** Inverse of toString; nullopt for an unknown token. */
std::optional<BackendKind> backendFromString(const std::string &token);

/**
 * Planner knobs. Defaults encode "cheapest faithful": exact density
 * matrices are only chosen while 4^n work beats the trajectory
 * ensemble's (shots / shotsPerTrajectory) * 2^n, which at the default
 * shot budget crosses over near 6 qubits.
 */
struct PlannerConfig
{
    /** Explicit `--backend` override; Auto = plan freely. */
    BackendKind force = BackendKind::Auto;
    /**
     * Widest register the exact density-matrix engine is planned for;
     * noisy terminal circuits above it fall to trajectory sampling.
     * Clamped to the engine's hard cap (11 qubits).
     */
    std::size_t maxDensityMatrixQubits = 6;
    /** Dense statevector hard cap (matches StateVector's 26). */
    std::size_t maxStatevectorQubits = 26;
};

/**
 * The planner's decision for one circuit: the chosen engine plus the
 * facts that drove the choice. `token()` is the compact space-free
 * record written into grid caches, checkpoint cells, manifests and
 * serve replies.
 */
struct Plan
{
    BackendKind backend = BackendKind::Statevector;
    bool clifford = false;    ///< every instruction tableau-simulable
    bool midCircuit = false;  ///< outcome-dependent collapse present
    std::size_t width = 0;    ///< qubits after compaction
    /** Short space-free reason tag: "clifford", "exact-noise",
     *  "width>dm-cutoff", "mid-circuit", "ideal", "forced". */
    std::string reason;

    /** "backend:reason", e.g. "trajectory:width>dm-cutoff". */
    std::string token() const
    {
        return std::string(toString(backend)) +
               (reason.empty() ? "" : ":" + reason);
    }
};

} // namespace smq::sim

#endif // SMQ_SIM_BACKEND_HPP
