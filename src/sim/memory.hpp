/**
 * @file
 * Memory budgeting for the dense simulators.
 *
 * A statevector costs 16 * 2^n bytes and a density matrix 16 * 4^n:
 * one mis-sized grid cell used to die on std::bad_alloc (or the OOM
 * killer) and take the whole sweep with it. The budget guard turns
 * that into a *structured* failure: the dense simulators estimate
 * their allocation up front and throw sim::ResourceExhausted when it
 * would exceed the process budget, which the harness and job layer
 * catch and report as a TooLarge cell with cause ResourceExhausted —
 * one lost cell, not a lost run.
 *
 * The default budget is 4 GiB, overridable with the environment
 * variable SMQ_SIM_MEM_MB (mebibytes) or setMemoryBudgetBytes().
 */

#ifndef SMQ_SIM_MEMORY_HPP
#define SMQ_SIM_MEMORY_HPP

#include <cstddef>
#include <stdexcept>
#include <string>

namespace smq::sim {

/** Thrown when a simulator allocation would exceed the budget. */
class ResourceExhausted : public std::runtime_error
{
  public:
    ResourceExhausted(const std::string &message,
                      std::size_t requestedBytes,
                      std::size_t budgetBytes)
        : std::runtime_error(message), requested(requestedBytes),
          budget(budgetBytes)
    {
    }

    std::size_t requested; ///< bytes the allocation would have needed
    std::size_t budget;    ///< budget in force when it was rejected
};

/** Current budget in bytes (default 4 GiB, env SMQ_SIM_MEM_MB). */
std::size_t memoryBudgetBytes();

/**
 * Override the budget (bytes). 0 restores the default/environment
 * value. Tests use a tiny budget to exercise the rejection path
 * without allocating anything large.
 */
void setMemoryBudgetBytes(std::size_t bytes);

/**
 * Bytes needed for a dense representation of @p numQubits qubits with
 * @p bytesPerAmplitude per basis state, squared for density matrices.
 * Saturates at SIZE_MAX instead of overflowing.
 */
std::size_t denseBytes(std::size_t numQubits, std::size_t bytesPerAmp,
                       bool squared);

/**
 * @throws ResourceExhausted when @p bytes exceeds the budget; the
 * message names @p what (e.g. "statevector(28 qubits)") and both
 * sizes so a grid cell's detail string explains itself.
 */
void checkAllocationBudget(const std::string &what, std::size_t bytes);

} // namespace smq::sim

#endif // SMQ_SIM_MEMORY_HPP
