/**
 * @file
 * Unitary matrices for the gate set.
 *
 * Conventions: a one-qubit matrix is row-major 2x2. A two-qubit matrix
 * is row-major 4x4 in the basis |b0 b1> where b0 is the value of the
 * gate's FIRST operand (e.g. the CX control) and the basis index is
 * k = 2 b0 + b1.
 */

#ifndef SMQ_SIM_GATE_MATRICES_HPP
#define SMQ_SIM_GATE_MATRICES_HPP

#include <array>
#include <complex>

#include "qc/gate.hpp"

namespace smq::sim {

using Complex = std::complex<double>;
using Matrix2 = std::array<Complex, 4>;   ///< row-major 2x2
using Matrix4 = std::array<Complex, 16>;  ///< row-major 4x4

/** The 2x2 unitary of a one-qubit gate. @throws for other arities. */
Matrix2 gateMatrix1(const qc::Gate &gate);

/** The 4x4 unitary of a two-qubit gate. @throws for other arities. */
Matrix4 gateMatrix2(const qc::Gate &gate);

/** Matrix product a * b for 2x2 matrices. */
Matrix2 multiply(const Matrix2 &a, const Matrix2 &b);

/** Matrix product a * b for 4x4 matrices. */
Matrix4 multiply4(const Matrix4 &a, const Matrix4 &b);

/**
 * Kronecker product a (x) b in the two-qubit basis k = 2 b0 + b1,
 * where a acts on b0 (the gate's first operand) and b on b1.
 */
Matrix4 kron(const Matrix2 &a, const Matrix2 &b);

/** Conjugate transpose of a 2x2 matrix. */
Matrix2 dagger(const Matrix2 &m);

/** Frobenius distance between 2x2 matrices up to global phase. */
double phaseInvariantDistance(const Matrix2 &a, const Matrix2 &b);

} // namespace smq::sim

#endif // SMQ_SIM_GATE_MATRICES_HPP
