#include "sim/runner.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/names.hpp"
#include "qc/schedule.hpp"
#include "sim/statevector.hpp"

namespace smq::sim {

namespace {

/** One stochastic trajectory through a circuit body. */
inline void
countTrajectory()
{
    static obs::Counter &trajectories =
        obs::counter(obs::names::kSimTrajectories);
    trajectories.add();
}

/** Random non-identity Pauli on one qubit. */
void
applyRandomPauli(StateVector &state, std::size_t q, stats::Rng &rng)
{
    static const qc::GateType paulis[3] = {qc::GateType::X, qc::GateType::Y,
                                           qc::GateType::Z};
    qc::GateType type = paulis[rng.index(3)];
    state.applyGate(qc::Gate(type, {static_cast<qc::Qubit>(q)}));
}

/** Random non-identity two-qubit Pauli (uniform over the 15). */
void
applyRandomPauli2(StateVector &state, std::size_t qa, std::size_t qb,
                  stats::Rng &rng)
{
    std::size_t choice = rng.index(15) + 1; // 1..15, base-4 digits (pa, pb)
    std::size_t pa = choice / 4;
    std::size_t pb = choice % 4;
    static const qc::GateType paulis[4] = {qc::GateType::I, qc::GateType::X,
                                           qc::GateType::Y, qc::GateType::Z};
    if (pa != 0)
        state.applyGate(qc::Gate(paulis[pa], {static_cast<qc::Qubit>(qa)}));
    if (pb != 0)
        state.applyGate(qc::Gate(paulis[pb], {static_cast<qc::Qubit>(qb)}));
}

double
gateDuration(const qc::Gate &gate, const NoiseModel &noise)
{
    if (gate.type == qc::GateType::MEASURE ||
        gate.type == qc::GateType::RESET) {
        return noise.timeMeas;
    }
    if (gate.qubits.size() >= 2)
        return noise.time2q;
    return noise.time1q;
}

/** Apply idle thermal relaxation to one qubit for dt microseconds. */
void
applyIdleNoise(StateVector &state, std::size_t q, double dt,
               const NoiseModel &noise, stats::Rng &rng)
{
    const IdleChannel idle = noise.idleChannel(dt);
    state.thermalRelaxationTrajectory(q, idle.damp, idle.dephase, rng);
}

/** One trajectory through the full circuit, writing classical bits. */
std::string
runTrajectory(const qc::Circuit &circuit, const qc::Schedule &sched,
              const NoiseModel &noise, stats::Rng &rng, StateVector &state)
{
    state.resetToZero();
    std::string clbits(circuit.numClbits(), '0');
    const auto &gates = circuit.gates();

    // Hoisted out of the moment loop: one allocation per trajectory,
    // not one per moment.
    std::vector<bool> active(circuit.numQubits(), false);
    for (const auto &moment : sched.moments) {
        double duration = 0.0;
        active.assign(circuit.numQubits(), false);
        for (std::size_t idx : moment) {
            const qc::Gate &g = gates[idx];
            if (noise.enabled)
                duration = std::max(duration, gateDuration(g, noise));
            for (qc::Qubit q : g.qubits)
                active[q] = true;

            switch (g.type) {
              case qc::GateType::MEASURE: {
                int outcome = state.measure(g.qubits[0], rng);
                if (noise.enabled && rng.bernoulli(noise.pMeas))
                    outcome ^= 1;
                clbits[static_cast<std::size_t>(g.cbit)] =
                    outcome ? '1' : '0';
                break;
              }
              case qc::GateType::RESET:
                state.reset(g.qubits[0], rng);
                if (noise.enabled && rng.bernoulli(noise.pReset)) {
                    state.applyGate(qc::Gate(qc::GateType::X,
                                             {g.qubits[0]}));
                }
                break;
              default:
                state.applyGate(g);
                if (noise.enabled) {
                    if (g.qubits.size() == 1 && rng.bernoulli(noise.p1)) {
                        applyRandomPauli(state, g.qubits[0], rng);
                    } else if (g.qubits.size() >= 2 &&
                               rng.bernoulli(noise.p2)) {
                        applyRandomPauli2(state, g.qubits[0], g.qubits[1],
                                          rng);
                    }
                }
                break;
            }
        }
        if (noise.enabled && duration > 0.0) {
            for (std::size_t q = 0; q < circuit.numQubits(); ++q) {
                if (!active[q])
                    applyIdleNoise(state, q, duration, noise, rng);
            }
        }
    }
    return clbits;
}

} // namespace

bool
hasMidCircuitOperations(const qc::Circuit &circuit)
{
    std::vector<bool> finalized(circuit.numQubits(), false);
    for (const qc::Gate &g : circuit.gates()) {
        if (g.type == qc::GateType::BARRIER)
            continue;
        if (g.type == qc::GateType::RESET)
            return true;
        if (g.type == qc::GateType::MEASURE) {
            finalized[g.qubits[0]] = true;
            continue;
        }
        for (qc::Qubit q : g.qubits) {
            if (finalized[q])
                return true;
        }
    }
    return false;
}

stats::Counts
run(const qc::Circuit &circuit, const RunOptions &options, stats::Rng &rng)
{
    if (circuit.measureCount() == 0)
        throw std::invalid_argument(
            "run: circuit '" + circuit.name() +
            "' measures no classical bits; scores would be undefined");
    if (options.shots == 0)
        throw std::invalid_argument(
            "run: shots == 0 for circuit '" + circuit.name() + "'");

    {
        static obs::Counter &shots_counter =
            obs::counter(obs::names::kSimShots);
        shots_counter.add(options.shots);
    }

    const bool mid_circuit = hasMidCircuitOperations(circuit);

    // Noiseless, terminal measurements: sample the exact distribution.
    if (!options.noise.enabled && !mid_circuit) {
        if (!options.faultHook)
            return idealDistribution(circuit).sample(options.shots, rng);
        // Sample in batches so the hook can interrupt mid-run.
        stats::Distribution ideal = idealDistribution(circuit);
        stats::Counts counts;
        std::uint64_t done = 0;
        while (done < options.shots && !options.faultHook(done)) {
            std::uint64_t batch =
                std::min<std::uint64_t>(256, options.shots - done);
            counts.merge(ideal.sample(batch, rng));
            done += batch;
        }
        return counts;
    }

    qc::Schedule sched = qc::schedule(circuit);
    StateVector state(circuit.numQubits());
    stats::Counts counts;

    if (mid_circuit) {
        for (std::uint64_t s = 0; s < options.shots; ++s) {
            if (options.faultHook && options.faultHook(s))
                break;
            countTrajectory();
            counts.add(runTrajectory(circuit, sched, options.noise, rng,
                                     state));
        }
        return counts;
    }

    // Terminal measurements with gate noise: amortise several shots
    // per stochastic trajectory. Measurement collapse order does not
    // matter, so we split the circuit at the measurement boundary and
    // sample the pre-measurement state repeatedly.
    std::uint64_t per_traj = std::max<std::uint64_t>(
        1, std::min(options.shotsPerTrajectory, options.shots));

    // Identify classical mapping; all measurements are terminal.
    std::vector<std::ptrdiff_t> clbit_source(circuit.numClbits(), -1);
    qc::Circuit body(circuit.numQubits());
    for (const qc::Gate &g : circuit.gates()) {
        if (g.type == qc::GateType::MEASURE) {
            clbit_source[static_cast<std::size_t>(g.cbit)] =
                static_cast<std::ptrdiff_t>(g.qubits[0]);
        } else {
            body.append(g);
        }
    }
    qc::Schedule body_sched = qc::schedule(body);

    std::uint64_t remaining = options.shots;
    while (remaining > 0) {
        if (options.faultHook && options.faultHook(counts.shots()))
            break;
        std::uint64_t batch = std::min(per_traj, remaining);
        remaining -= batch;
        // Note: measurement-time idle noise for the terminal moment is
        // captured by the readout error probability itself.
        countTrajectory();
        runTrajectory(body, body_sched, options.noise, rng, state);
        for (std::uint64_t b = 0; b < batch; ++b) {
            std::size_t basis = state.sampleBasisState(rng);
            std::string clbits(circuit.numClbits(), '0');
            for (std::size_t c = 0; c < clbits.size(); ++c) {
                if (clbit_source[c] < 0)
                    continue;
                int bit = static_cast<int>(
                    (basis >> static_cast<std::size_t>(clbit_source[c])) & 1);
                if (options.noise.enabled &&
                    rng.bernoulli(options.noise.pMeas)) {
                    bit ^= 1;
                }
                clbits[c] = bit ? '1' : '0';
            }
            counts.add(clbits);
        }
    }
    return counts;
}

} // namespace smq::sim
