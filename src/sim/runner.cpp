#include "sim/runner.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/names.hpp"
#include "qc/schedule.hpp"
#include "sim/density_matrix.hpp"
#include "sim/memory.hpp"
#include "sim/planner.hpp"
#include "sim/stabilizer.hpp"
#include "sim/statevector.hpp"
#include "util/thread_pool.hpp"

namespace smq::sim {

namespace {

/** One stochastic trajectory through a circuit body. */
inline void
countTrajectory()
{
    static obs::Counter &trajectories =
        obs::counter(obs::names::kSimTrajectories);
    trajectories.add();
}

/** Bump the sim.plan.* counter for one dispatched circuit. */
void
countPlan(const Plan &plan, bool forced)
{
    const char *name = nullptr;
    switch (plan.backend) {
      case BackendKind::Statevector:
        name = obs::names::kSimPlanStatevector;
        break;
      case BackendKind::DensityMatrix:
        name = obs::names::kSimPlanDensityMatrix;
        break;
      case BackendKind::Stabilizer:
        name = obs::names::kSimPlanStabilizer;
        break;
      case BackendKind::Trajectory:
        name = obs::names::kSimPlanTrajectory;
        break;
      case BackendKind::Auto:
        break; // planCircuit never returns Auto
    }
    if (name != nullptr)
        obs::counter(name).add();
    if (forced)
        obs::counter(obs::names::kSimPlanOverridden).add();
}

/** Random non-identity Pauli on one qubit. */
void
applyRandomPauli(StateVector &state, std::size_t q, stats::Rng &rng)
{
    static const qc::GateType paulis[3] = {qc::GateType::X, qc::GateType::Y,
                                           qc::GateType::Z};
    qc::GateType type = paulis[rng.index(3)];
    state.applyGate(qc::Gate(type, {static_cast<qc::Qubit>(q)}));
}

/** Random non-identity two-qubit Pauli (uniform over the 15). */
void
applyRandomPauli2(StateVector &state, std::size_t qa, std::size_t qb,
                  stats::Rng &rng)
{
    std::size_t choice = rng.index(15) + 1; // 1..15, base-4 digits (pa, pb)
    std::size_t pa = choice / 4;
    std::size_t pb = choice % 4;
    static const qc::GateType paulis[4] = {qc::GateType::I, qc::GateType::X,
                                           qc::GateType::Y, qc::GateType::Z};
    if (pa != 0)
        state.applyGate(qc::Gate(paulis[pa], {static_cast<qc::Qubit>(qa)}));
    if (pb != 0)
        state.applyGate(qc::Gate(paulis[pb], {static_cast<qc::Qubit>(qb)}));
}

double
gateDuration(const qc::Gate &gate, const NoiseModel &noise)
{
    if (gate.type == qc::GateType::MEASURE ||
        gate.type == qc::GateType::RESET) {
        return noise.timeMeas;
    }
    if (gate.qubits.size() >= 2)
        return noise.time2q;
    return noise.time1q;
}

/** Apply idle thermal relaxation to one qubit for dt microseconds. */
void
applyIdleNoise(StateVector &state, std::size_t q, double dt,
               const NoiseModel &noise, stats::Rng &rng)
{
    const IdleChannel idle = noise.idleChannel(dt);
    state.thermalRelaxationTrajectory(q, idle.damp, idle.dephase, rng);
}

/** One trajectory through the full circuit, writing classical bits. */
std::string
runTrajectory(const qc::Circuit &circuit, const qc::Schedule &sched,
              const NoiseModel &noise, stats::Rng &rng, StateVector &state)
{
    state.resetToZero();
    std::string clbits(circuit.numClbits(), '0');
    const auto &gates = circuit.gates();

    // Hoisted out of the moment loop: one allocation per trajectory,
    // not one per moment.
    std::vector<bool> active(circuit.numQubits(), false);
    for (const auto &moment : sched.moments) {
        double duration = 0.0;
        active.assign(circuit.numQubits(), false);
        for (std::size_t idx : moment) {
            const qc::Gate &g = gates[idx];
            if (noise.enabled)
                duration = std::max(duration, gateDuration(g, noise));
            for (qc::Qubit q : g.qubits)
                active[q] = true;

            switch (g.type) {
              case qc::GateType::MEASURE: {
                int outcome = state.measure(g.qubits[0], rng);
                if (noise.enabled && rng.bernoulli(noise.pMeas))
                    outcome ^= 1;
                clbits[static_cast<std::size_t>(g.cbit)] =
                    outcome ? '1' : '0';
                break;
              }
              case qc::GateType::RESET:
                state.reset(g.qubits[0], rng);
                if (noise.enabled && rng.bernoulli(noise.pReset)) {
                    state.applyGate(qc::Gate(qc::GateType::X,
                                             {g.qubits[0]}));
                }
                break;
              default:
                state.applyGate(g);
                if (noise.enabled) {
                    if (g.qubits.size() == 1 && rng.bernoulli(noise.p1)) {
                        applyRandomPauli(state, g.qubits[0], rng);
                    } else if (g.qubits.size() >= 2 &&
                               rng.bernoulli(noise.p2)) {
                        applyRandomPauli2(state, g.qubits[0], g.qubits[1],
                                          rng);
                    }
                }
                break;
            }
        }
        if (noise.enabled && duration > 0.0) {
            for (std::size_t q = 0; q < circuit.numQubits(); ++q) {
                if (!active[q])
                    applyIdleNoise(state, q, duration, noise, rng);
            }
        }
    }
    return clbits;
}

/** Index of the last MEASURE instruction. @pre measureCount() > 0. */
std::size_t
lastMeasureIndex(const qc::Circuit &circuit)
{
    const auto &gates = circuit.gates();
    std::size_t last = 0;
    for (std::size_t i = 0; i < gates.size(); ++i) {
        if (gates[i].type == qc::GateType::MEASURE)
            last = i;
    }
    return last;
}

/**
 * The circuit with its non-operational tail removed: everything after
 * the last MEASURE (cleanup RESETs, barriers, uncomputation gates)
 * cannot influence a recorded bit, and would trip the exact engines'
 * terminal-measurement validation if left in place.
 */
qc::Circuit
terminalCore(const qc::Circuit &circuit)
{
    const auto &gates = circuit.gates();
    const std::size_t last = lastMeasureIndex(circuit);
    if (last + 1 == gates.size())
        return circuit;
    qc::Circuit core(circuit.numQubits(), circuit.numClbits(),
                     circuit.name());
    for (std::size_t i = 0; i <= last; ++i)
        core.append(gates[i]);
    return core;
}

/**
 * Sample @p shots outcomes from an exact distribution, honouring the
 * fault hook between 256-shot batches. Shot-exact: never overshoots.
 */
stats::Counts
sampleDistribution(stats::Distribution &dist, const RunOptions &options,
                   stats::Rng &rng)
{
    if (!options.faultHook)
        return dist.sample(options.shots, rng);
    stats::Counts counts;
    std::uint64_t done = 0;
    while (done < options.shots && !options.faultHook(done)) {
        std::uint64_t batch =
            std::min<std::uint64_t>(256, options.shots - done);
        counts.merge(dist.sample(batch, rng));
        done += batch;
    }
    return counts;
}

/** Noiseless terminal circuits: sample the exact distribution. */
stats::Counts
runIdealSampling(const qc::Circuit &core, const RunOptions &options,
                 stats::Rng &rng)
{
    stats::Distribution ideal = idealDistribution(core);
    return sampleDistribution(ideal, options, rng);
}

/** Exact Kraus channels on the density matrix, then sampling. */
stats::Counts
runDensityMatrixSampling(const qc::Circuit &core,
                         const RunOptions &options, stats::Rng &rng)
{
    const std::size_t width = core.numQubits();
    if (width > kDensityMatrixHardCap) {
        // A structured TooLarge outcome, not a usage error: the jobs
        // layer turns ResourceExhausted into Fig. 2's X marker.
        throw ResourceExhausted(
            "density_matrix(" + std::to_string(width) +
                " qubits) exceeds the exact engine's hard cap of " +
                std::to_string(kDensityMatrixHardCap) +
                " qubits (trajectory sampling covers wider registers)",
            denseBytes(width, 2 * sizeof(double), true),
            memoryBudgetBytes());
    }
    stats::Distribution dist = noisyDistribution(core, options.noise);
    return sampleDistribution(dist, options, rng);
}

/**
 * Stochastic statevector trajectories. Mid-circuit collapse runs one
 * trajectory per shot over the full circuit; terminal circuits
 * amortise shotsPerTrajectory shots per trajectory by splitting at
 * the measurement boundary. Every trajectory draws from its own
 * stream derived with deriveTaskSeed from one base draw on the
 * caller's rng, so a hook-truncated histogram is an exact prefix of
 * the full run's and batching cannot smear randomness across
 * trajectory boundaries.
 */
stats::Counts
runTrajectories(const qc::Circuit &circuit, const RunOptions &options,
                stats::Rng &rng, bool mid_circuit)
{
    const std::uint64_t base = rng.engine()();
    stats::Counts counts;

    if (mid_circuit) {
        qc::Schedule sched = qc::schedule(circuit);
        StateVector state(circuit.numQubits());
        for (std::uint64_t s = 0; s < options.shots; ++s) {
            if (options.faultHook && options.faultHook(s))
                break;
            countTrajectory();
            stats::Rng shot_rng(util::deriveTaskSeed(base, s));
            counts.add(runTrajectory(circuit, sched, options.noise,
                                     shot_rng, state));
        }
        return counts;
    }

    // Terminal measurements: amortise several shots per stochastic
    // trajectory. Measurement collapse order does not matter, so we
    // split the circuit at the measurement boundary and sample the
    // pre-measurement state repeatedly. The core excludes the
    // non-operational tail — a trailing gate on a measured qubit must
    // not perturb the sampled distribution.
    const qc::Circuit core = terminalCore(circuit);
    std::uint64_t per_traj = std::max<std::uint64_t>(
        1, std::min(options.shotsPerTrajectory, options.shots));

    std::vector<std::ptrdiff_t> clbit_source(circuit.numClbits(), -1);
    qc::Circuit body(circuit.numQubits());
    for (const qc::Gate &g : core.gates()) {
        if (g.type == qc::GateType::MEASURE) {
            clbit_source[static_cast<std::size_t>(g.cbit)] =
                static_cast<std::ptrdiff_t>(g.qubits[0]);
        } else {
            body.append(g);
        }
    }
    qc::Schedule body_sched = qc::schedule(body);
    StateVector state(circuit.numQubits());

    std::uint64_t remaining = options.shots;
    std::uint64_t trajectory = 0;
    while (remaining > 0) {
        if (options.faultHook && options.faultHook(counts.shots()))
            break;
        // Clamp the final batch: the histogram must hold exactly
        // options.shots entries, never a shotsPerTrajectory overshoot.
        const std::uint64_t batch = std::min(per_traj, remaining);
        remaining -= batch;
        // Note: measurement-time idle noise for the terminal moment is
        // captured by the readout error probability itself.
        countTrajectory();
        stats::Rng traj_rng(util::deriveTaskSeed(base, trajectory++));
        runTrajectory(body, body_sched, options.noise, traj_rng, state);
        for (std::uint64_t b = 0; b < batch; ++b) {
            std::size_t basis = state.sampleBasisState(traj_rng);
            std::string clbits(circuit.numClbits(), '0');
            for (std::size_t c = 0; c < clbits.size(); ++c) {
                if (clbit_source[c] < 0)
                    continue;
                int bit = static_cast<int>(
                    (basis >> static_cast<std::size_t>(clbit_source[c])) & 1);
                if (options.noise.enabled &&
                    traj_rng.bernoulli(options.noise.pMeas)) {
                    bit ^= 1;
                }
                clbits[c] = bit ? '1' : '0';
            }
            counts.add(clbits);
        }
    }
    return counts;
}

} // namespace

bool
hasMidCircuitOperations(const qc::Circuit &circuit)
{
    const auto &gates = circuit.gates();
    // Only operations up to the last MEASURE can influence a recorded
    // bit: scan that prefix and ignore the non-operational tail.
    std::size_t last_measure = gates.size();
    for (std::size_t i = gates.size(); i-- > 0;) {
        if (gates[i].type == qc::GateType::MEASURE) {
            last_measure = i;
            break;
        }
    }
    if (last_measure == gates.size())
        return false; // no measurement at all: nothing to collapse into

    std::vector<bool> finalized(circuit.numQubits(), false);
    for (std::size_t i = 0; i <= last_measure; ++i) {
        const qc::Gate &g = gates[i];
        if (g.type == qc::GateType::BARRIER)
            continue;
        if (g.type == qc::GateType::RESET)
            return true;
        if (g.type == qc::GateType::MEASURE) {
            finalized[g.qubits[0]] = true;
            continue;
        }
        for (qc::Qubit q : g.qubits) {
            if (finalized[q])
                return true;
        }
    }
    return false;
}

stats::Counts
run(const qc::Circuit &circuit, const RunOptions &options, stats::Rng &rng)
{
    if (circuit.measureCount() == 0)
        throw std::invalid_argument(
            "run: circuit '" + circuit.name() +
            "' measures no classical bits; scores would be undefined");
    if (options.shots == 0)
        throw std::invalid_argument(
            "run: shots == 0 for circuit '" + circuit.name() + "'");

    {
        static obs::Counter &shots_counter =
            obs::counter(obs::names::kSimShots);
        shots_counter.add(options.shots);
    }

    PlannerConfig config = options.planner;
    if (options.backend != BackendKind::Auto)
        config.force = options.backend;
    const Plan plan = planCircuit(circuit, options.noise, config);
    countPlan(plan, config.force != BackendKind::Auto);

    switch (plan.backend) {
      case BackendKind::Stabilizer:
        // The tableau engine handles mid-circuit collapse natively
        // and validates Clifford-ness itself (a forced stabilizer on
        // a non-Clifford circuit is a usage error).
        return runStabilizer(circuit, options, rng);

      case BackendKind::DensityMatrix:
        return runDensityMatrixSampling(terminalCore(circuit), options,
                                        rng);

      case BackendKind::Statevector:
        if (!options.noise.enabled && !plan.midCircuit)
            return runIdealSampling(terminalCore(circuit), options, rng);
        // A forced statevector under noise (or collapse) falls through
        // to its trajectory unravelling — same substrate, stochastic
        // channels.
        return runTrajectories(circuit, options, rng, plan.midCircuit);

      case BackendKind::Trajectory:
        return runTrajectories(circuit, options, rng, plan.midCircuit);

      case BackendKind::Auto:
        break; // planCircuit never returns Auto
    }
    throw std::logic_error("run: planner returned no backend");
}

} // namespace smq::sim
