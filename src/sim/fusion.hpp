/**
 * @file
 * Single-qubit gate fusion for the dense simulators.
 *
 * Benchmark circuits (especially after Euler decomposition in the
 * transpiler) contain long runs of single-qubit gates on the same
 * qubit. Applying each one separately sweeps the full 2^n state (or
 * 4^n density matrix) per gate; fusing a run into one 2x2 product
 * first means the state is touched once per run. Fusion is only used
 * on noiseless/unitary paths — per-gate noise channels pin the
 * trajectory engines to the unfused gate sequence.
 */

#ifndef SMQ_SIM_FUSION_HPP
#define SMQ_SIM_FUSION_HPP

#include <vector>

#include "qc/circuit.hpp"
#include "sim/gate_matrices.hpp"

namespace smq::sim {

/** One fused instruction: a dense unitary or an opaque pass-through. */
struct FusedOp
{
    enum class Kind {
        Unitary1,   ///< m2 on qubit q0
        Unitary2,   ///< m4 on (q0, q1), basis as gate_matrices.hpp
        Passthrough ///< gate applied verbatim (CCX, CSWAP)
    };

    Kind kind = Kind::Unitary1;
    std::size_t q0 = 0;
    std::size_t q1 = 0;
    Matrix2 m2{};
    Matrix4 m4{};
    qc::Gate gate;
    /** How many IR gates this op absorbs (diagnostics / tests). */
    std::size_t sourceGates = 1;
};

/**
 * Fuse maximal runs of single-qubit gates per qubit: a run ends when
 * a multi-qubit gate touches the qubit or the circuit ends. Gate
 * order across qubits is preserved up to commuting single-qubit
 * reorderings (which cannot change the unitary). BARRIERs are
 * dropped; MEASURE/RESET throw (callers strip terminal measurements
 * first, as the dense engines already require).
 */
std::vector<FusedOp> fuseUnitaryCircuit(const qc::Circuit &circuit);

} // namespace smq::sim

#endif // SMQ_SIM_FUSION_HPP
