/**
 * @file
 * The backend planner: inspect a circuit and pick the cheapest engine
 * that still reproduces the requested semantics faithfully.
 *
 * The paper's scalability principle needs one grid to span toy widths
 * and device-scale widths; hard-wiring the dense engine makes every
 * cell pay the most expensive backend. planCircuit() is a pure
 * function of (circuit, noise model, config) — no clocks, no globals —
 * so the same plan is recorded at prepare time (for manifests, grid
 * caches and serve replies) and re-derived at execution time, and the
 * decision is byte-stable across --jobs values and kill/resume cycles.
 *
 * Policy, in order:
 *   - an explicit `force` override wins (reason "forced"); forcing the
 *     stabilizer engine onto a non-Clifford circuit is rejected at
 *     execution, and forcing the density matrix past its hard cap
 *     raises ResourceExhausted (a structured TooLarge cell).
 *   - Clifford circuits take the tableau unless they are small,
 *     noiseless and terminal, where exact ideal sampling is cheaper.
 *   - noiseless terminal circuits sample the exact distribution
 *     (statevector); mid-circuit collapse forces trajectories.
 *   - noisy terminal circuits get the exact density matrix up to
 *     config.maxDensityMatrixQubits and trajectories beyond it.
 */

#ifndef SMQ_SIM_PLANNER_HPP
#define SMQ_SIM_PLANNER_HPP

#include "qc/circuit.hpp"
#include "sim/backend.hpp"
#include "sim/noise.hpp"

namespace smq::sim {

/** Hard engine cap of the dense density matrix (DensityMatrix ctor). */
inline constexpr std::size_t kDensityMatrixHardCap = 11;

/**
 * Choose the backend for one circuit under one noise model. Pure and
 * deterministic; never allocates simulator state.
 */
Plan planCircuit(const qc::Circuit &circuit, const NoiseModel &noise,
                 const PlannerConfig &config = {});

} // namespace smq::sim

#endif // SMQ_SIM_PLANNER_HPP
