/**
 * @file
 * Shot execution of circuits under a noise model.
 *
 * The runner stands in for a cloud QPU: it takes a (transpiled)
 * circuit, executes the requested number of shots under the device's
 * NoiseModel, and returns a histogram over the classical bits, just
 * as the paper's benchmark harness receives counts from hardware.
 *
 * run() is a dispatcher over pluggable backends (sim/backend.hpp):
 * exact ideal sampling and noise trajectories on the statevector,
 * exact Kraus channels on the density matrix, and the CHP tableau for
 * Clifford circuits. With options.backend == Auto the planner
 * (sim/planner.hpp) picks the cheapest faithful engine per circuit;
 * an explicit backend skips planning and is executed as forced.
 *
 * Noise trajectories use stochastic Pauli insertions for gate error,
 * per-moment thermal relaxation of idle qubits (moment durations from
 * gate times), and classical readout flips. Circuits whose
 * measurements are all terminal amortise several shots per trajectory;
 * mid-circuit measurement / RESET (the error-correction benchmarks)
 * force one trajectory per shot because the collapse is
 * outcome-dependent. Each terminal-mode trajectory draws from its own
 * deriveTaskSeed-derived stream, so a truncated run's histogram is an
 * exact prefix of the full run's.
 */

#ifndef SMQ_SIM_RUNNER_HPP
#define SMQ_SIM_RUNNER_HPP

#include <cstdint>
#include <functional>

#include "qc/circuit.hpp"
#include "sim/backend.hpp"
#include "sim/noise.hpp"
#include "stats/counts.hpp"
#include "stats/rng.hpp"

namespace smq::sim {

/**
 * Service-fault hook standing in for execution-side interruptions
 * (a cloud job killed mid-run). Consulted between shot batches with
 * the number of shots already recorded; returning true stops the run,
 * which then reports the partial histogram accumulated so far. The
 * jobs layer uses this to model shot truncation deterministically.
 */
using FaultHook = std::function<bool(std::uint64_t shotsDone)>;

/** Execution options for the shot runner. */
struct RunOptions
{
    std::uint64_t shots = 1000;
    NoiseModel noise = NoiseModel::ideal();
    /**
     * For terminal-measurement circuits, how many shots to draw from
     * each stochastic trajectory (1 = fully independent shots).
     */
    std::uint64_t shotsPerTrajectory = 20;
    /** Optional mid-execution interruption (empty = never fires). */
    FaultHook faultHook;
    /** Engine selection: Auto = planner-chosen, else forced. */
    BackendKind backend = BackendKind::Auto;
    /** Planner knobs consulted when backend == Auto. */
    PlannerConfig planner;
};

/**
 * True if the circuit contains an operation that forces
 * outcome-dependent collapse: a RESET, or a gate acting on an
 * already-measured qubit, *before the last MEASURE*. Trailing
 * non-operational ops — barriers, resets, or unitaries after the
 * final measurement — cannot influence any recorded bit and do not
 * count, so a trailing MEASURE-then-BARRIER (or cleanup RESET) keeps
 * the terminal fast path.
 */
bool hasMidCircuitOperations(const qc::Circuit &circuit);

/**
 * Execute @p circuit for options.shots shots and return the histogram
 * over its classical bits. Exact shot accounting: the histogram holds
 * exactly options.shots entries, or fewer only when options.faultHook
 * fired (never more, regardless of shotsPerTrajectory batching).
 *
 * @throws std::invalid_argument when the circuit measures zero
 *   classical bits or options.shots == 0 (an empty histogram would
 *   poison every downstream score with silent NaNs), or when a forced
 *   backend cannot represent the circuit (stabilizer on non-Clifford,
 *   density matrix / ideal sampling on mid-circuit collapse).
 * @throws ResourceExhausted when the chosen dense engine exceeds the
 *   memory budget (jobs layer reports the cell TooLarge).
 */
stats::Counts run(const qc::Circuit &circuit, const RunOptions &options,
                  stats::Rng &rng);

} // namespace smq::sim

#endif // SMQ_SIM_RUNNER_HPP
