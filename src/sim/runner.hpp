/**
 * @file
 * Shot execution of circuits under a noise model.
 *
 * The runner stands in for a cloud QPU: it takes a (transpiled)
 * circuit, executes the requested number of shots under the device's
 * NoiseModel, and returns a histogram over the classical bits, just
 * as the paper's benchmark harness receives counts from hardware.
 *
 * Noise is simulated with quantum trajectories over the state vector:
 * stochastic Pauli insertions for gate error, per-moment thermal
 * relaxation of idle qubits (moment durations from gate times), and
 * classical readout flips. Circuits whose measurements are all
 * terminal amortise several shots per trajectory; mid-circuit
 * measurement / RESET (the error-correction benchmarks) force one
 * trajectory per shot because the collapse is outcome-dependent.
 */

#ifndef SMQ_SIM_RUNNER_HPP
#define SMQ_SIM_RUNNER_HPP

#include <cstdint>
#include <functional>

#include "qc/circuit.hpp"
#include "sim/noise.hpp"
#include "stats/counts.hpp"
#include "stats/rng.hpp"

namespace smq::sim {

/**
 * Service-fault hook standing in for execution-side interruptions
 * (a cloud job killed mid-run). Consulted between shot batches with
 * the number of shots already recorded; returning true stops the run,
 * which then reports the partial histogram accumulated so far. The
 * jobs layer uses this to model shot truncation deterministically.
 */
using FaultHook = std::function<bool(std::uint64_t shotsDone)>;

/** Execution options for the shot runner. */
struct RunOptions
{
    std::uint64_t shots = 1000;
    NoiseModel noise = NoiseModel::ideal();
    /**
     * For terminal-measurement circuits, how many shots to draw from
     * each stochastic trajectory (1 = fully independent shots).
     */
    std::uint64_t shotsPerTrajectory = 20;
    /** Optional mid-execution interruption (empty = never fires). */
    FaultHook faultHook;
};

/** True if the circuit contains RESET or a non-terminal MEASURE. */
bool hasMidCircuitOperations(const qc::Circuit &circuit);

/**
 * Execute @p circuit for options.shots shots and return the histogram
 * over its classical bits.
 *
 * @throws std::invalid_argument when the circuit measures zero
 *   classical bits or options.shots == 0 (an empty histogram would
 *   poison every downstream score with silent NaNs).
 */
stats::Counts run(const qc::Circuit &circuit, const RunOptions &options,
                  stats::Rng &rng);

} // namespace smq::sim

#endif // SMQ_SIM_RUNNER_HPP
