#include "sim/statevector.hpp"

#include <cmath>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/names.hpp"
#include "sim/memory.hpp"

namespace smq::sim {

namespace {
constexpr std::size_t kMaxQubits = 26;

/** One kernel application (1q/2q matrix or 3q permutation). */
inline void
countSvKernel()
{
    static obs::Counter &applies =
        obs::counter(obs::names::kSimSvGateApplies);
    applies.add();
}

/**
 * Spread the n-3 bits of @p k around three zero slots at bit positions
 * p0 < p1 < p2: enumerates the subspace with those three qubits fixed
 * at 0 without scanning (and branching on) all 2^n indices.
 */
std::size_t
expand3(std::size_t k, std::size_t p0, std::size_t p1, std::size_t p2)
{
    std::size_t x = ((k >> p0) << (p0 + 1)) | (k & ((std::size_t{1} << p0) - 1));
    x = ((x >> p1) << (p1 + 1)) | (x & ((std::size_t{1} << p1) - 1));
    x = ((x >> p2) << (p2 + 1)) | (x & ((std::size_t{1} << p2) - 1));
    return x;
}

void
sort3(std::size_t &a, std::size_t &b, std::size_t &c)
{
    if (a > b)
        std::swap(a, b);
    if (b > c)
        std::swap(b, c);
    if (a > b)
        std::swap(a, b);
}

} // namespace

StateVector::StateVector(std::size_t num_qubits) : numQubits_(num_qubits)
{
    if (num_qubits > kMaxQubits)
        throw std::invalid_argument(
            "StateVector: too many qubits for dense simulation");
    // Estimate the allocation before attempting it: a too-large cell
    // must fail as a structured ResourceExhausted, not a bad_alloc
    // that kills the whole grid.
    checkAllocationBudget(
        "statevector(" + std::to_string(num_qubits) + " qubits)",
        denseBytes(num_qubits, sizeof(Complex), false));
    amps_.assign(std::size_t{1} << num_qubits, Complex{0.0, 0.0});
    amps_[0] = 1.0;
}

Complex
StateVector::amplitude(std::size_t basis_state) const
{
    return amps_.at(basis_state);
}

void
StateVector::resetToZero()
{
    std::fill(amps_.begin(), amps_.end(), Complex{0.0, 0.0});
    amps_[0] = 1.0;
}

void
StateVector::checkQubit(std::size_t q) const
{
    if (q >= numQubits_)
        throw std::out_of_range("StateVector: qubit index out of range");
}

void
StateVector::applyMatrix1(std::size_t q, const Matrix2 &m)
{
    checkQubit(q);
    countSvKernel();
    const std::size_t stride = std::size_t{1} << q;
    for (std::size_t base = 0; base < amps_.size(); base += 2 * stride) {
        for (std::size_t offset = 0; offset < stride; ++offset) {
            std::size_t i0 = base + offset;
            std::size_t i1 = i0 + stride;
            Complex a0 = amps_[i0];
            Complex a1 = amps_[i1];
            amps_[i0] = m[0] * a0 + m[1] * a1;
            amps_[i1] = m[2] * a0 + m[3] * a1;
        }
    }
}

void
StateVector::applyMatrix2(std::size_t q0, std::size_t q1, const Matrix4 &m)
{
    checkQubit(q0);
    checkQubit(q1);
    if (q0 == q1)
        throw std::invalid_argument("StateVector: duplicate qubit");
    countSvKernel();
    const std::size_t s0 = std::size_t{1} << q0;
    const std::size_t s1 = std::size_t{1} << q1;
    for (std::size_t idx = 0; idx < amps_.size(); ++idx) {
        if ((idx & s0) || (idx & s1))
            continue;
        std::size_t i[4] = {idx, idx + s1, idx + s0, idx + s0 + s1};
        Complex a[4] = {amps_[i[0]], amps_[i[1]], amps_[i[2]], amps_[i[3]]};
        for (std::size_t r = 0; r < 4; ++r) {
            amps_[i[r]] = m[r * 4 + 0] * a[0] + m[r * 4 + 1] * a[1] +
                          m[r * 4 + 2] * a[2] + m[r * 4 + 3] * a[3];
        }
    }
}

void
StateVector::applyGate(const qc::Gate &gate)
{
    using qc::GateType;
    switch (gate.type) {
      case GateType::CCX: {
        countSvKernel();
        // Only the c0=1, c1=1, t=0 subspace moves: enumerate its
        // 2^(n-3) members directly instead of branching over all 2^n.
        const std::size_t c0 = std::size_t{1} << gate.qubits[0];
        const std::size_t c1 = std::size_t{1} << gate.qubits[1];
        const std::size_t t = std::size_t{1} << gate.qubits[2];
        std::size_t p0 = gate.qubits[0], p1 = gate.qubits[1],
                    p2 = gate.qubits[2];
        sort3(p0, p1, p2);
        const std::size_t sub = amps_.size() >> 3;
        for (std::size_t k = 0; k < sub; ++k) {
            std::size_t base = expand3(k, p0, p1, p2) | c0 | c1;
            std::swap(amps_[base], amps_[base | t]);
        }
        return;
      }
      case GateType::CSWAP: {
        countSvKernel();
        // The moving subspace is c=1, a=1, b=0 <-> c=1, a=0, b=1.
        const std::size_t c = std::size_t{1} << gate.qubits[0];
        const std::size_t a = std::size_t{1} << gate.qubits[1];
        const std::size_t b = std::size_t{1} << gate.qubits[2];
        std::size_t p0 = gate.qubits[0], p1 = gate.qubits[1],
                    p2 = gate.qubits[2];
        sort3(p0, p1, p2);
        const std::size_t sub = amps_.size() >> 3;
        for (std::size_t k = 0; k < sub; ++k) {
            std::size_t base = expand3(k, p0, p1, p2) | c | a;
            std::swap(amps_[base], amps_[base ^ a ^ b]);
        }
        return;
      }
      case GateType::MEASURE:
      case GateType::RESET:
      case GateType::BARRIER:
        throw std::invalid_argument(
            "StateVector::applyGate: non-unitary instruction");
      default:
        break;
    }
    if (gate.qubits.size() == 1) {
        applyMatrix1(gate.qubits[0], gateMatrix1(gate));
    } else if (gate.qubits.size() == 2) {
        applyMatrix2(gate.qubits[0], gate.qubits[1], gateMatrix2(gate));
    } else {
        throw std::invalid_argument("StateVector::applyGate: bad arity");
    }
}

void
StateVector::applyFused(const std::vector<FusedOp> &ops)
{
    for (const FusedOp &op : ops) {
        switch (op.kind) {
          case FusedOp::Kind::Unitary1:
            applyMatrix1(op.q0, op.m2);
            break;
          case FusedOp::Kind::Unitary2:
            applyMatrix2(op.q0, op.q1, op.m4);
            break;
          case FusedOp::Kind::Passthrough:
            applyGate(op.gate);
            break;
        }
    }
}

void
StateVector::applyUnitaryCircuit(const qc::Circuit &circuit)
{
    if (circuit.numQubits() != numQubits_)
        throw std::invalid_argument("StateVector: circuit size mismatch");
    applyFused(fuseUnitaryCircuit(circuit));
}

double
StateVector::probabilityOfOne(std::size_t q) const
{
    checkQubit(q);
    const std::size_t mask = std::size_t{1} << q;
    double p = 0.0;
    for (std::size_t idx = 0; idx < amps_.size(); ++idx) {
        if (idx & mask)
            p += std::norm(amps_[idx]);
    }
    return p;
}

int
StateVector::measure(std::size_t q, stats::Rng &rng)
{
    double p1 = probabilityOfOne(q);
    int outcome = rng.bernoulli(p1) ? 1 : 0;
    const std::size_t mask = std::size_t{1} << q;
    double keep = outcome ? p1 : 1.0 - p1;
    if (keep <= 0.0)
        keep = 1.0; // numerically impossible branch; avoid div by zero
    double scale = 1.0 / std::sqrt(keep);
    for (std::size_t idx = 0; idx < amps_.size(); ++idx) {
        bool is_one = (idx & mask) != 0;
        if (is_one == (outcome == 1))
            amps_[idx] *= scale;
        else
            amps_[idx] = 0.0;
    }
    return outcome;
}

double
StateVector::project(std::size_t q, int outcome)
{
    double p1 = probabilityOfOne(q);
    double keep = outcome ? p1 : 1.0 - p1;
    if (keep <= 0.0)
        return 0.0;
    const std::size_t mask = std::size_t{1} << q;
    double scale = 1.0 / std::sqrt(keep);
    for (std::size_t idx = 0; idx < amps_.size(); ++idx) {
        bool is_one = (idx & mask) != 0;
        if (is_one == (outcome == 1))
            amps_[idx] *= scale;
        else
            amps_[idx] = 0.0;
    }
    return keep;
}

void
StateVector::thermalRelaxationTrajectory(std::size_t q, double p_damp,
                                         double p_phase, stats::Rng &rng)
{
    const std::size_t mask = std::size_t{1} << q;
    if (p_damp > 0.0) {
        double p1 = probabilityOfOne(q);
        if (p1 > 0.0 && rng.bernoulli(p_damp * p1)) {
            // jump |1> -> |0>: move the excited amplitudes down and
            // renormalise by sqrt(p1) in the same pass
            double scale = 1.0 / std::sqrt(p1);
            for (std::size_t idx = 0; idx < amps_.size(); ++idx) {
                if (idx & mask) {
                    amps_[idx ^ mask] = amps_[idx] * scale;
                    amps_[idx] = 0.0;
                }
            }
        } else if (p1 > 0.0) {
            // no-jump Kraus diag(1, sqrt(1 - p_damp)), renormalised by
            // the branch probability sqrt(1 - p_damp * p1)
            double renorm = std::sqrt(1.0 - p_damp * p1);
            double keep0 = 1.0 / renorm;
            double keep1 = std::sqrt(1.0 - p_damp) / renorm;
            for (std::size_t idx = 0; idx < amps_.size(); ++idx)
                amps_[idx] *= (idx & mask) ? keep1 : keep0;
        }
    }
    if (p_phase > 0.0 && rng.bernoulli(p_phase)) {
        for (std::size_t idx = 0; idx < amps_.size(); ++idx) {
            if (idx & mask)
                amps_[idx] = -amps_[idx];
        }
    }
}

void
StateVector::reset(std::size_t q, stats::Rng &rng)
{
    int outcome = measure(q, rng);
    if (outcome == 1)
        applyMatrix1(q, gateMatrix1(qc::Gate(qc::GateType::X,
                                             {static_cast<qc::Qubit>(q)})));
}

std::size_t
StateVector::sampleBasisState(stats::Rng &rng) const
{
    double r = rng.uniform();
    double acc = 0.0;
    for (std::size_t idx = 0; idx < amps_.size(); ++idx) {
        acc += std::norm(amps_[idx]);
        if (r < acc)
            return idx;
    }
    return amps_.size() - 1;
}

std::vector<double>
StateVector::probabilities() const
{
    std::vector<double> probs(amps_.size());
    for (std::size_t idx = 0; idx < amps_.size(); ++idx)
        probs[idx] = std::norm(amps_[idx]);
    return probs;
}

Complex
StateVector::expectation(const qc::PauliString &pauli) const
{
    if (pauli.numQubits() != numQubits_)
        throw std::invalid_argument("StateVector: Pauli size mismatch");
    // Apply P = i^r X^x Z^z to a copy: for basis state |s>,
    // Z^z contributes (-1)^(z . s) and X^x maps |s> -> |s ^ x>.
    std::size_t xmask = 0, zmask = 0;
    for (std::size_t q = 0; q < numQubits_; ++q) {
        if (pauli.xBit(q))
            xmask |= std::size_t{1} << q;
        if (pauli.zBit(q))
            zmask |= std::size_t{1} << q;
    }
    Complex acc{0.0, 0.0};
    for (std::size_t s = 0; s < amps_.size(); ++s) {
        // (P psi)[s ^ x] += (-1)^(z.s) psi[s]
        double sign = __builtin_parityll(s & zmask) ? -1.0 : 1.0;
        acc += std::conj(amps_[s ^ xmask]) * (sign * amps_[s]);
    }
    static const Complex phases[4] = {{1, 0}, {0, 1}, {-1, 0}, {0, -1}};
    return phases[pauli.phasePower()] * acc;
}

double
StateVector::expectationZ(const std::vector<std::size_t> &support) const
{
    std::size_t zmask = 0;
    for (std::size_t q : support) {
        checkQubit(q);
        zmask |= std::size_t{1} << q;
    }
    double acc = 0.0;
    for (std::size_t s = 0; s < amps_.size(); ++s) {
        int sign = __builtin_parityll(s & zmask) ? -1 : 1;
        acc += sign * std::norm(amps_[s]);
    }
    return acc;
}

double
StateVector::fidelityWith(const StateVector &other) const
{
    if (other.numQubits() != numQubits_)
        throw std::invalid_argument("StateVector: size mismatch");
    Complex overlap{0.0, 0.0};
    for (std::size_t idx = 0; idx < amps_.size(); ++idx)
        overlap += std::conj(other.amps_[idx]) * amps_[idx];
    return std::norm(overlap);
}

double
StateVector::norm() const
{
    double n2 = 0.0;
    for (const Complex &a : amps_)
        n2 += std::norm(a);
    return std::sqrt(n2);
}

void
StateVector::normalize()
{
    double n = norm();
    if (n < 1e-300)
        throw std::logic_error("StateVector::normalize: zero state");
    for (Complex &a : amps_)
        a /= n;
}

stats::Distribution
idealDistribution(const qc::Circuit &circuit)
{
    // Verify terminal measurements and record qubit -> clbit mapping.
    std::vector<bool> measured(circuit.numQubits(), false);
    std::vector<std::ptrdiff_t> clbit_source(circuit.numClbits(), -1);
    qc::Circuit unitary_part(circuit.numQubits());
    for (const qc::Gate &g : circuit.gates()) {
        if (g.type == qc::GateType::BARRIER)
            continue;
        if (g.type == qc::GateType::MEASURE) {
            measured[g.qubits[0]] = true;
            clbit_source[static_cast<std::size_t>(g.cbit)] =
                static_cast<std::ptrdiff_t>(g.qubits[0]);
            continue;
        }
        if (g.type == qc::GateType::RESET)
            throw std::invalid_argument(
                "idealDistribution: RESET requires trajectory simulation");
        for (qc::Qubit q : g.qubits) {
            if (measured[q])
                throw std::invalid_argument(
                    "idealDistribution: non-terminal measurement");
        }
        unitary_part.append(g);
    }

    StateVector state(circuit.numQubits());
    state.applyUnitaryCircuit(unitary_part);

    stats::Distribution dist;
    std::vector<double> probs = state.probabilities();
    for (std::size_t s = 0; s < probs.size(); ++s) {
        if (probs[s] < 1e-15)
            continue;
        std::string key(circuit.numClbits(), '0');
        for (std::size_t c = 0; c < circuit.numClbits(); ++c) {
            if (clbit_source[c] >= 0 &&
                (s >> static_cast<std::size_t>(clbit_source[c])) & 1) {
                key[c] = '1';
            }
        }
        dist.add(key, probs[s]);
    }
    return dist;
}

StateVector
finalState(const qc::Circuit &circuit)
{
    for (const qc::Gate &g : circuit.gates()) {
        if (g.type == qc::GateType::MEASURE || g.type == qc::GateType::RESET)
            throw std::invalid_argument(
                "finalState: circuit must be purely unitary");
    }
    StateVector state(circuit.numQubits());
    state.applyUnitaryCircuit(circuit);
    return state;
}

} // namespace smq::sim
