#include "sim/statevector.hpp"

#include <cmath>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/names.hpp"
#include "sim/kernels.hpp"
#include "sim/memory.hpp"
#include "sim/simd.hpp"

namespace smq::sim {

namespace {
constexpr std::size_t kMaxQubits = 26;

/** One kernel application (1q/2q matrix or 3q permutation). */
inline void
countSvKernel()
{
    static obs::Counter &applies =
        obs::counter(obs::names::kSimSvGateApplies);
    applies.add();
}

/**
 * Spread the bits of @p k around one zero slot at bit position p:
 * index k of the pair subspace -> amplitude index with qubit p clear.
 */
inline std::size_t
expand1(std::size_t k, std::size_t p)
{
    return ((k >> p) << (p + 1)) | (k & ((std::size_t{1} << p) - 1));
}

/** Two zero slots at bit positions p0 < p1. */
inline std::size_t
expand2(std::size_t k, std::size_t p0, std::size_t p1)
{
    std::size_t x = expand1(k, p0);
    return ((x >> p1) << (p1 + 1)) | (x & ((std::size_t{1} << p1) - 1));
}

/**
 * Spread the n-3 bits of @p k around three zero slots at bit positions
 * p0 < p1 < p2: enumerates the subspace with those three qubits fixed
 * at 0 without scanning (and branching on) all 2^n indices.
 */
inline std::size_t
expand3(std::size_t k, std::size_t p0, std::size_t p1, std::size_t p2)
{
    std::size_t x = expand2(k, p0, p1);
    return ((x >> p2) << (p2 + 1)) | (x & ((std::size_t{1} << p2) - 1));
}

void
sort3(std::size_t &a, std::size_t &b, std::size_t &c)
{
    if (a > b)
        std::swap(a, b);
    if (b > c)
        std::swap(b, c);
    if (a > b)
        std::swap(a, b);
}

} // namespace

StateVector::StateVector(std::size_t num_qubits) : numQubits_(num_qubits)
{
    if (num_qubits > kMaxQubits)
        throw std::invalid_argument(
            "StateVector: too many qubits for dense simulation");
    // Estimate the allocation before attempting it: a too-large cell
    // must fail as a structured ResourceExhausted, not a bad_alloc
    // that kills the whole grid.
    checkAllocationBudget(
        "statevector(" + std::to_string(num_qubits) + " qubits)",
        denseBytes(num_qubits, sizeof(Complex), false));
    amps_.assign(std::size_t{1} << num_qubits, Complex{0.0, 0.0});
    amps_[0] = 1.0;
}

Complex
StateVector::amplitude(std::size_t basis_state) const
{
    return amps_.at(basis_state);
}

void
StateVector::resetToZero()
{
    std::fill(amps_.begin(), amps_.end(), Complex{0.0, 0.0});
    amps_[0] = 1.0;
}

void
StateVector::checkQubit(std::size_t q) const
{
    if (q >= numQubits_)
        throw std::out_of_range("StateVector: qubit index out of range");
}

void
StateVector::applyMatrix1(std::size_t q, const Matrix2 &m)
{
    checkQubit(q);
    countSvKernel();
    kernels::recordSimdPath();
    const std::size_t stride = std::size_t{1} << q;
    Complex *amps = amps_.data();
    // Pair index p enumerates the qubit-q=0 subspace; consecutive p
    // with the same high bits form contiguous amplitude runs of
    // length `stride`, which the SIMD primitive consumes whole.
    kernels::forEachRange(
        amps_.size() / 2, amps_.size(),
        [&](std::size_t pb, std::size_t pe) {
            if (stride < 4) {
                for (std::size_t p = pb; p < pe; ++p) {
                    const std::size_t i0 = expand1(p, q);
                    const Complex a0 = amps[i0];
                    const Complex a1 = amps[i0 + stride];
                    amps[i0] = kernels::coeffMul(m[0], a0) +
                               kernels::coeffMul(m[1], a1);
                    amps[i0 + stride] = kernels::coeffMul(m[2], a0) +
                                        kernels::coeffMul(m[3], a1);
                }
                return;
            }
            std::size_t p = pb;
            while (p < pe) {
                const std::size_t off = p & (stride - 1);
                const std::size_t run = std::min(stride - off, pe - p);
                const std::size_t i0 = expand1(p, q);
                kernels::pairTransform(amps + i0, amps + i0 + stride,
                                       run, m);
                p += run;
            }
        });
}

void
StateVector::applyMatrix2(std::size_t q0, std::size_t q1, const Matrix4 &m)
{
    checkQubit(q0);
    checkQubit(q1);
    if (q0 == q1)
        throw std::invalid_argument("StateVector: duplicate qubit");
    countSvKernel();
    kernels::recordSimdPath();
    const std::size_t s0 = std::size_t{1} << q0;
    const std::size_t s1 = std::size_t{1} << q1;
    std::size_t p0 = q0, p1 = q1;
    if (p0 > p1)
        std::swap(p0, p1);
    const std::size_t sLow = std::size_t{1} << p0;
    Complex *amps = amps_.data();
    // Quad index k enumerates the both-qubits-0 subspace (no
    // branch-per-index scan); the four basis offsets follow the
    // |b0 b1> convention with s0 the FIRST operand's bit.
    kernels::forEachRange(
        amps_.size() / 4, amps_.size(),
        [&](std::size_t kb, std::size_t ke) {
            if (sLow < 4) {
                for (std::size_t k = kb; k < ke; ++k) {
                    const std::size_t idx = expand2(k, p0, p1);
                    const Complex a0 = amps[idx];
                    const Complex a1 = amps[idx + s1];
                    const Complex a2 = amps[idx + s0];
                    const Complex a3 = amps[idx + s0 + s1];
                    for (std::size_t r = 0; r < 4; ++r) {
                        Complex acc = kernels::coeffMul(m[r * 4 + 0], a0);
                        acc = acc + kernels::coeffMul(m[r * 4 + 1], a1);
                        acc = acc + kernels::coeffMul(m[r * 4 + 2], a2);
                        acc = acc + kernels::coeffMul(m[r * 4 + 3], a3);
                        const std::size_t out =
                            idx + (r & 2 ? s0 : 0) + (r & 1 ? s1 : 0);
                        amps[out] = acc;
                    }
                }
                return;
            }
            std::size_t k = kb;
            while (k < ke) {
                const std::size_t off = k & (sLow - 1);
                const std::size_t run = std::min(sLow - off, ke - k);
                const std::size_t idx = expand2(k, p0, p1);
                kernels::quadTransform(amps + idx, amps + idx + s1,
                                       amps + idx + s0,
                                       amps + idx + s0 + s1, run, m);
                k += run;
            }
        });
}

void
StateVector::applyGate(const qc::Gate &gate)
{
    using qc::GateType;
    switch (gate.type) {
      case GateType::CCX: {
        countSvKernel();
        // Only the c0=1, c1=1, t=0 subspace moves: enumerate its
        // 2^(n-3) members directly instead of branching over all 2^n.
        const std::size_t c0 = std::size_t{1} << gate.qubits[0];
        const std::size_t c1 = std::size_t{1} << gate.qubits[1];
        const std::size_t t = std::size_t{1} << gate.qubits[2];
        std::size_t p0 = gate.qubits[0], p1 = gate.qubits[1],
                    p2 = gate.qubits[2];
        sort3(p0, p1, p2);
        Complex *amps = amps_.data();
        kernels::forEachRange(
            amps_.size() >> 3, amps_.size() >> 2,
            [&](std::size_t kb, std::size_t ke) {
                for (std::size_t k = kb; k < ke; ++k) {
                    std::size_t base = expand3(k, p0, p1, p2) | c0 | c1;
                    std::swap(amps[base], amps[base | t]);
                }
            });
        return;
      }
      case GateType::CSWAP: {
        countSvKernel();
        // The moving subspace is c=1, a=1, b=0 <-> c=1, a=0, b=1.
        const std::size_t c = std::size_t{1} << gate.qubits[0];
        const std::size_t a = std::size_t{1} << gate.qubits[1];
        const std::size_t b = std::size_t{1} << gate.qubits[2];
        std::size_t p0 = gate.qubits[0], p1 = gate.qubits[1],
                    p2 = gate.qubits[2];
        sort3(p0, p1, p2);
        Complex *amps = amps_.data();
        kernels::forEachRange(
            amps_.size() >> 3, amps_.size() >> 2,
            [&](std::size_t kb, std::size_t ke) {
                for (std::size_t k = kb; k < ke; ++k) {
                    std::size_t base = expand3(k, p0, p1, p2) | c | a;
                    std::swap(amps[base], amps[base ^ a ^ b]);
                }
            });
        return;
      }
      case GateType::MEASURE:
      case GateType::RESET:
      case GateType::BARRIER:
        throw std::invalid_argument(
            "StateVector::applyGate: non-unitary instruction");
      default:
        break;
    }
    if (gate.qubits.size() == 1) {
        applyMatrix1(gate.qubits[0], gateMatrix1(gate));
    } else if (gate.qubits.size() == 2) {
        applyMatrix2(gate.qubits[0], gate.qubits[1], gateMatrix2(gate));
    } else {
        throw std::invalid_argument("StateVector::applyGate: bad arity");
    }
}

void
StateVector::applyFused(const std::vector<FusedOp> &ops)
{
    for (const FusedOp &op : ops) {
        switch (op.kind) {
          case FusedOp::Kind::Unitary1:
            applyMatrix1(op.q0, op.m2);
            break;
          case FusedOp::Kind::Unitary2:
            applyMatrix2(op.q0, op.q1, op.m4);
            break;
          case FusedOp::Kind::Passthrough:
            applyGate(op.gate);
            break;
        }
    }
}

void
StateVector::applyUnitaryCircuit(const qc::Circuit &circuit)
{
    if (circuit.numQubits() != numQubits_)
        throw std::invalid_argument("StateVector: circuit size mismatch");
    applyFused(fuseUnitaryCircuit(circuit));
}

double
StateVector::probabilityOfOne(std::size_t q) const
{
    checkQubit(q);
    const std::size_t mask = std::size_t{1} << q;
    const Complex *amps = amps_.data();
    return kernels::reduceChunked<double>(
        amps_.size(), [&](std::size_t b, std::size_t e) {
            double p = 0.0;
            for (std::size_t idx = b; idx < e; ++idx) {
                if (idx & mask)
                    p += std::norm(amps[idx]);
            }
            return p;
        });
}

int
StateVector::measure(std::size_t q, stats::Rng &rng)
{
    double p1 = probabilityOfOne(q);
    int outcome = rng.bernoulli(p1) ? 1 : 0;
    const std::size_t mask = std::size_t{1} << q;
    double keep = outcome ? p1 : 1.0 - p1;
    if (keep <= 0.0)
        keep = 1.0; // numerically impossible branch; avoid div by zero
    double scale = 1.0 / std::sqrt(keep);
    Complex *amps = amps_.data();
    kernels::forEachRange(
        amps_.size(), amps_.size(), [&](std::size_t b, std::size_t e) {
            for (std::size_t idx = b; idx < e; ++idx) {
                bool is_one = (idx & mask) != 0;
                if (is_one == (outcome == 1))
                    amps[idx] *= scale;
                else
                    amps[idx] = 0.0;
            }
        });
    return outcome;
}

double
StateVector::project(std::size_t q, int outcome)
{
    double p1 = probabilityOfOne(q);
    double keep = outcome ? p1 : 1.0 - p1;
    if (keep <= 0.0)
        return 0.0;
    const std::size_t mask = std::size_t{1} << q;
    double scale = 1.0 / std::sqrt(keep);
    Complex *amps = amps_.data();
    kernels::forEachRange(
        amps_.size(), amps_.size(), [&](std::size_t b, std::size_t e) {
            for (std::size_t idx = b; idx < e; ++idx) {
                bool is_one = (idx & mask) != 0;
                if (is_one == (outcome == 1))
                    amps[idx] *= scale;
                else
                    amps[idx] = 0.0;
            }
        });
    return keep;
}

void
StateVector::thermalRelaxationTrajectory(std::size_t q, double p_damp,
                                         double p_phase, stats::Rng &rng)
{
    const std::size_t mask = std::size_t{1} << q;
    Complex *amps = amps_.data();
    if (p_damp > 0.0) {
        double p1 = probabilityOfOne(q);
        if (p1 > 0.0 && rng.bernoulli(p_damp * p1)) {
            // jump |1> -> |0>: move the excited amplitudes down and
            // renormalise by sqrt(p1) in the same pass
            double scale = 1.0 / std::sqrt(p1);
            kernels::forEachRange(
                amps_.size(), amps_.size(),
                [&](std::size_t b, std::size_t e) {
                    for (std::size_t idx = b; idx < e; ++idx) {
                        if (idx & mask) {
                            amps[idx ^ mask] = amps[idx] * scale;
                            amps[idx] = 0.0;
                        }
                    }
                });
        } else if (p1 > 0.0) {
            // no-jump Kraus diag(1, sqrt(1 - p_damp)), renormalised by
            // the branch probability sqrt(1 - p_damp * p1)
            double renorm = std::sqrt(1.0 - p_damp * p1);
            double keep0 = 1.0 / renorm;
            double keep1 = std::sqrt(1.0 - p_damp) / renorm;
            kernels::forEachRange(
                amps_.size(), amps_.size(),
                [&](std::size_t b, std::size_t e) {
                    for (std::size_t idx = b; idx < e; ++idx)
                        amps[idx] *= (idx & mask) ? keep1 : keep0;
                });
        }
    }
    if (p_phase > 0.0 && rng.bernoulli(p_phase)) {
        kernels::forEachRange(
            amps_.size(), amps_.size(), [&](std::size_t b, std::size_t e) {
                for (std::size_t idx = b; idx < e; ++idx) {
                    if (idx & mask)
                        amps[idx] = -amps[idx];
                }
            });
    }
}

void
StateVector::reset(std::size_t q, stats::Rng &rng)
{
    int outcome = measure(q, rng);
    if (outcome == 1)
        applyMatrix1(q, gateMatrix1(qc::Gate(qc::GateType::X,
                                             {static_cast<qc::Qubit>(q)})));
}

std::size_t
StateVector::sampleBasisState(stats::Rng &rng) const
{
    // Sequential prefix scan: inherently serial, and one pass of
    // adds is memory-bound anyway.
    double r = rng.uniform();
    double acc = 0.0;
    for (std::size_t idx = 0; idx < amps_.size(); ++idx) {
        acc += std::norm(amps_[idx]);
        if (r < acc)
            return idx;
    }
    return amps_.size() - 1;
}

std::vector<double>
StateVector::probabilities() const
{
    std::vector<double> probs(amps_.size());
    const Complex *amps = amps_.data();
    double *out = probs.data();
    kernels::forEachRange(
        amps_.size(), amps_.size(), [&](std::size_t b, std::size_t e) {
            for (std::size_t idx = b; idx < e; ++idx)
                out[idx] = std::norm(amps[idx]);
        });
    return probs;
}

Complex
StateVector::expectation(const qc::PauliString &pauli) const
{
    if (pauli.numQubits() != numQubits_)
        throw std::invalid_argument("StateVector: Pauli size mismatch");
    // Apply P = i^r X^x Z^z to a copy: for basis state |s>,
    // Z^z contributes (-1)^(z . s) and X^x maps |s> -> |s ^ x>.
    std::size_t xmask = 0, zmask = 0;
    for (std::size_t q = 0; q < numQubits_; ++q) {
        if (pauli.xBit(q))
            xmask |= std::size_t{1} << q;
        if (pauli.zBit(q))
            zmask |= std::size_t{1} << q;
    }
    const Complex *amps = amps_.data();
    Complex acc = kernels::reduceChunked<Complex>(
        amps_.size(), [&](std::size_t b, std::size_t e) {
            double re = 0.0, im = 0.0;
            for (std::size_t s = b; s < e; ++s) {
                // (P psi)[s ^ x] += (-1)^(z.s) psi[s]; accumulate
                // conj(psi[s ^ x]) * that in split re/im form (no
                // __muldc3 in the loop)
                const double sign =
                    __builtin_parityll(s & zmask) ? -1.0 : 1.0;
                const Complex &u = amps[s ^ xmask];
                const double vr = sign * amps[s].real();
                const double vi = sign * amps[s].imag();
                re += u.real() * vr + u.imag() * vi;
                im += u.real() * vi - u.imag() * vr;
            }
            return Complex(re, im);
        });
    static const Complex phases[4] = {{1, 0}, {0, 1}, {-1, 0}, {0, -1}};
    return phases[pauli.phasePower()] * acc;
}

double
StateVector::expectationZ(const std::vector<std::size_t> &support) const
{
    std::size_t zmask = 0;
    for (std::size_t q : support) {
        checkQubit(q);
        zmask |= std::size_t{1} << q;
    }
    const Complex *amps = amps_.data();
    return kernels::reduceChunked<double>(
        amps_.size(), [&](std::size_t b, std::size_t e) {
            double acc = 0.0;
            for (std::size_t s = b; s < e; ++s) {
                int sign = __builtin_parityll(s & zmask) ? -1 : 1;
                acc += sign * std::norm(amps[s]);
            }
            return acc;
        });
}

double
StateVector::fidelityWith(const StateVector &other) const
{
    if (other.numQubits() != numQubits_)
        throw std::invalid_argument("StateVector: size mismatch");
    const Complex *mine = amps_.data();
    const Complex *theirs = other.amps_.data();
    Complex overlap = kernels::reduceChunked<Complex>(
        amps_.size(), [&](std::size_t b, std::size_t e) {
            double re = 0.0, im = 0.0;
            for (std::size_t idx = b; idx < e; ++idx) {
                const Complex &u = theirs[idx];
                const Complex &v = mine[idx];
                re += u.real() * v.real() + u.imag() * v.imag();
                im += u.real() * v.imag() - u.imag() * v.real();
            }
            return Complex(re, im);
        });
    return std::norm(overlap);
}

double
StateVector::norm() const
{
    const Complex *amps = amps_.data();
    double n2 = kernels::reduceChunked<double>(
        amps_.size(), [&](std::size_t b, std::size_t e) {
            double acc = 0.0;
            for (std::size_t idx = b; idx < e; ++idx)
                acc += std::norm(amps[idx]);
            return acc;
        });
    return std::sqrt(n2);
}

void
StateVector::normalize()
{
    double n = norm();
    if (n < 1e-300)
        throw std::logic_error("StateVector::normalize: zero state");
    Complex *amps = amps_.data();
    kernels::forEachRange(
        amps_.size(), amps_.size(), [&](std::size_t b, std::size_t e) {
            for (std::size_t idx = b; idx < e; ++idx)
                amps[idx] /= n;
        });
}

stats::Distribution
idealDistribution(const qc::Circuit &circuit)
{
    // Verify terminal measurements and record qubit -> clbit mapping.
    std::vector<bool> measured(circuit.numQubits(), false);
    std::vector<std::ptrdiff_t> clbit_source(circuit.numClbits(), -1);
    qc::Circuit unitary_part(circuit.numQubits());
    for (const qc::Gate &g : circuit.gates()) {
        if (g.type == qc::GateType::BARRIER)
            continue;
        if (g.type == qc::GateType::MEASURE) {
            measured[g.qubits[0]] = true;
            clbit_source[static_cast<std::size_t>(g.cbit)] =
                static_cast<std::ptrdiff_t>(g.qubits[0]);
            continue;
        }
        if (g.type == qc::GateType::RESET)
            throw std::invalid_argument(
                "idealDistribution: RESET requires trajectory simulation");
        for (qc::Qubit q : g.qubits) {
            if (measured[q])
                throw std::invalid_argument(
                    "idealDistribution: non-terminal measurement");
        }
        unitary_part.append(g);
    }

    StateVector state(circuit.numQubits());
    state.applyUnitaryCircuit(unitary_part);

    stats::Distribution dist;
    std::vector<double> probs = state.probabilities();
    for (std::size_t s = 0; s < probs.size(); ++s) {
        if (probs[s] < 1e-15)
            continue;
        std::string key(circuit.numClbits(), '0');
        for (std::size_t c = 0; c < circuit.numClbits(); ++c) {
            if (clbit_source[c] >= 0 &&
                (s >> static_cast<std::size_t>(clbit_source[c])) & 1) {
                key[c] = '1';
            }
        }
        dist.add(key, probs[s]);
    }
    return dist;
}

StateVector
finalState(const qc::Circuit &circuit)
{
    for (const qc::Gate &g : circuit.gates()) {
        if (g.type == qc::GateType::MEASURE || g.type == qc::GateType::RESET)
            throw std::invalid_argument(
                "finalState: circuit must be purely unitary");
    }
    StateVector state(circuit.numQubits());
    state.applyUnitaryCircuit(circuit);
    return state;
}

} // namespace smq::sim
