#include "sim/density_matrix.hpp"

#include <cmath>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/names.hpp"
#include "qc/schedule.hpp"
#include "sim/kernels.hpp"
#include "sim/memory.hpp"
#include "sim/simd.hpp"

namespace smq::sim {

namespace {
constexpr std::size_t kMaxQubits = 11;

/** One kernel application (1q/2q conjugation or 3q permutation). */
inline void
countDmKernel()
{
    static obs::Counter &applies =
        obs::counter(obs::names::kSimDmGateApplies);
    applies.add();
}

/**
 * Spread the bits of @p k around one zero slot at bit position p:
 * index k of the reduced space -> full index with bit p clear.
 */
inline std::size_t
expand1(std::size_t k, std::size_t p)
{
    return ((k >> p) << (p + 1)) | (k & ((std::size_t{1} << p) - 1));
}

/** Two zero slots at bit positions p0 < p1. */
inline std::size_t
expand2(std::size_t k, std::size_t p0, std::size_t p1)
{
    std::size_t x = expand1(k, p0);
    return ((x >> p1) << (p1 + 1)) | (x & ((std::size_t{1} << p1) - 1));
}

/** Three zero slots at bit positions p0 < p1 < p2. */
inline std::size_t
expand3(std::size_t k, std::size_t p0, std::size_t p1, std::size_t p2)
{
    std::size_t x = expand2(k, p0, p1);
    return ((x >> p2) << (p2 + 1)) | (x & ((std::size_t{1} << p2) - 1));
}

void
sort3(std::size_t &a, std::size_t &b, std::size_t &c)
{
    if (a > b)
        std::swap(a, b);
    if (b > c)
        std::swap(b, c);
    if (a > b)
        std::swap(a, b);
}

} // namespace

DensityMatrix::DensityMatrix(std::size_t num_qubits)
    : numQubits_(num_qubits), dim_(0)
{
    // Validate before sizing: the 1 << n the old initialiser ran was
    // undefined behaviour for n >= 64 (and meaningless past the cap).
    if (num_qubits > kMaxQubits)
        throw std::invalid_argument(
            "DensityMatrix: too many qubits for dense simulation");
    dim_ = std::size_t{1} << num_qubits;
    // Up-front estimate: rho is 4^n amplitudes, the first allocation
    // to blow past a budget on a mis-sized cell.
    checkAllocationBudget(
        "density_matrix(" + std::to_string(num_qubits) + " qubits)",
        denseBytes(num_qubits, sizeof(Complex), true));
    rho_.assign(dim_ * dim_, Complex{0.0, 0.0});
    rho_[0] = 1.0;
}

Complex
DensityMatrix::element(std::size_t r, std::size_t c) const
{
    if (r >= dim_ || c >= dim_)
        throw std::out_of_range("DensityMatrix::element");
    return rho_[r * dim_ + c];
}

void
DensityMatrix::checkQubit(std::size_t q) const
{
    if (q >= numQubits_)
        throw std::out_of_range("DensityMatrix: qubit index out of range");
}

void
DensityMatrix::applyMatrix1(std::size_t q, const Matrix2 &u)
{
    checkQubit(q);
    countDmKernel();
    kernels::recordSimdPath();
    const std::size_t stride = std::size_t{1} << q;
    Complex *rho = rho_.data();
    // Left multiply rho <- U rho: each row pair is two full contiguous
    // rows, the ideal shape for the SIMD pair primitive; the pair
    // index space splits across the pool.
    kernels::forEachRange(
        dim_ / 2, dim_ * dim_, [&](std::size_t pb, std::size_t pe) {
            for (std::size_t p = pb; p < pe; ++p) {
                Complex *row0 = rho + expand1(p, q) * dim_;
                kernels::pairTransform(row0, row0 + stride * dim_, dim_,
                                       u);
            }
        });
    // Right multiply rho <- rho U^dagger: within each row the column
    // pairs form contiguous runs of `stride`; rows split across the
    // pool. new[c0] = a0 conj(u00) + a1 conj(u01) etc., i.e. a plain
    // pair transform by the entrywise conjugate of u.
    const Matrix2 d = {std::conj(u[0]), std::conj(u[1]), std::conj(u[2]),
                       std::conj(u[3])};
    kernels::forEachRange(
        dim_, dim_ * dim_, [&](std::size_t rb, std::size_t re) {
            for (std::size_t r = rb; r < re; ++r) {
                Complex *row = rho + r * dim_;
                if (stride < 4) {
                    for (std::size_t p = 0; p < dim_ / 2; ++p) {
                        const std::size_t c0 = expand1(p, q);
                        const Complex a0 = row[c0];
                        const Complex a1 = row[c0 + stride];
                        row[c0] = kernels::coeffMul(d[0], a0) +
                                  kernels::coeffMul(d[1], a1);
                        row[c0 + stride] = kernels::coeffMul(d[2], a0) +
                                           kernels::coeffMul(d[3], a1);
                    }
                    continue;
                }
                for (std::size_t base = 0; base < dim_;
                     base += 2 * stride) {
                    kernels::pairTransform(row + base, row + base + stride,
                                           stride, d);
                }
            }
        });
}

void
DensityMatrix::applyMatrix2(std::size_t q0, std::size_t q1, const Matrix4 &u)
{
    checkQubit(q0);
    checkQubit(q1);
    if (q0 == q1)
        throw std::invalid_argument("DensityMatrix: duplicate qubit");
    countDmKernel();
    kernels::recordSimdPath();
    const std::size_t s0 = std::size_t{1} << q0;
    const std::size_t s1 = std::size_t{1} << q1;
    std::size_t p0 = q0, p1 = q1;
    if (p0 > p1)
        std::swap(p0, p1);
    const std::size_t sLow = std::size_t{1} << p0;
    Complex *rho = rho_.data();

    // Left multiply rho <- U rho: 4-row groups of full contiguous rows.
    kernels::forEachRange(
        dim_ / 4, dim_ * dim_, [&](std::size_t kb, std::size_t ke) {
            for (std::size_t k = kb; k < ke; ++k) {
                const std::size_t idx = expand2(k, p0, p1);
                kernels::quadTransform(rho + idx * dim_,
                                       rho + (idx + s1) * dim_,
                                       rho + (idx + s0) * dim_,
                                       rho + (idx + s0 + s1) * dim_,
                                       dim_, u);
            }
        });

    // Right multiply rho <- rho U^dagger: entrywise-conjugated matrix,
    // column quads in contiguous runs of sLow, rows split across the
    // pool.
    Matrix4 d;
    for (std::size_t k = 0; k < 16; ++k)
        d[k] = std::conj(u[k]);
    kernels::forEachRange(
        dim_, dim_ * dim_, [&](std::size_t rb, std::size_t re) {
            for (std::size_t r = rb; r < re; ++r) {
                Complex *row = rho + r * dim_;
                if (sLow < 4) {
                    for (std::size_t k = 0; k < dim_ / 4; ++k) {
                        const std::size_t idx = expand2(k, p0, p1);
                        const Complex a0 = row[idx];
                        const Complex a1 = row[idx + s1];
                        const Complex a2 = row[idx + s0];
                        const Complex a3 = row[idx + s0 + s1];
                        for (std::size_t rr = 0; rr < 4; ++rr) {
                            Complex acc =
                                kernels::coeffMul(d[rr * 4 + 0], a0);
                            acc = acc +
                                  kernels::coeffMul(d[rr * 4 + 1], a1);
                            acc = acc +
                                  kernels::coeffMul(d[rr * 4 + 2], a2);
                            acc = acc +
                                  kernels::coeffMul(d[rr * 4 + 3], a3);
                            row[idx + (rr & 2 ? s0 : 0) +
                                (rr & 1 ? s1 : 0)] = acc;
                        }
                    }
                    continue;
                }
                std::size_t k = 0;
                while (k < dim_ / 4) {
                    const std::size_t run =
                        std::min(sLow - (k & (sLow - 1)), dim_ / 4 - k);
                    const std::size_t idx = expand2(k, p0, p1);
                    kernels::quadTransform(row + idx, row + idx + s1,
                                           row + idx + s0,
                                           row + idx + s0 + s1, run, d);
                    k += run;
                }
            }
        });
}

void
DensityMatrix::applyGate(const qc::Gate &gate)
{
    using qc::GateType;
    if (gate.type == GateType::CCX || gate.type == GateType::CSWAP) {
        countDmKernel();
        // Both permutations are involutions pairing index m with
        // m ^ flip inside a selected subspace, so rho <- P rho P^T is
        // two in-place swap sweeps (rows, then columns per row) — no
        // 4^n scratch copy.
        std::size_t sel0, sel1, flip;
        if (gate.type == GateType::CCX) {
            sel0 = std::size_t{1} << gate.qubits[0];
            sel1 = std::size_t{1} << gate.qubits[1];
            flip = std::size_t{1} << gate.qubits[2];
        } else {
            sel0 = std::size_t{1} << gate.qubits[0];
            sel1 = std::size_t{1} << gate.qubits[1]; // a=1, b=0 side
            flip = (std::size_t{1} << gate.qubits[1]) |
                   (std::size_t{1} << gate.qubits[2]);
        }
        std::size_t p0 = gate.qubits[0], p1 = gate.qubits[1],
                    p2 = gate.qubits[2];
        sort3(p0, p1, p2);
        const std::size_t sub = dim_ >> 3;
        Complex *rho = rho_.data();
        kernels::forEachRange(
            sub, dim_ * dim_ / 4, [&](std::size_t kb, std::size_t ke) {
                for (std::size_t k = kb; k < ke; ++k) {
                    const std::size_t r =
                        expand3(k, p0, p1, p2) | sel0 | sel1;
                    Complex *rowA = rho + r * dim_;
                    Complex *rowB = rho + (r ^ flip) * dim_;
                    for (std::size_t c = 0; c < dim_; ++c)
                        std::swap(rowA[c], rowB[c]);
                }
            });
        kernels::forEachRange(
            dim_, dim_ * dim_ / 4, [&](std::size_t rb, std::size_t re) {
                for (std::size_t r = rb; r < re; ++r) {
                    Complex *row = rho + r * dim_;
                    for (std::size_t k = 0; k < sub; ++k) {
                        const std::size_t c =
                            expand3(k, p0, p1, p2) | sel0 | sel1;
                        std::swap(row[c], row[c ^ flip]);
                    }
                }
            });
        return;
    }
    if (gate.qubits.size() == 1) {
        applyMatrix1(gate.qubits[0], gateMatrix1(gate));
    } else if (gate.qubits.size() == 2) {
        applyMatrix2(gate.qubits[0], gate.qubits[1], gateMatrix2(gate));
    } else {
        throw std::invalid_argument("DensityMatrix::applyGate: bad arity");
    }
}

void
DensityMatrix::applyFused(const std::vector<FusedOp> &ops)
{
    for (const FusedOp &op : ops) {
        switch (op.kind) {
          case FusedOp::Kind::Unitary1:
            applyMatrix1(op.q0, op.m2);
            break;
          case FusedOp::Kind::Unitary2:
            applyMatrix2(op.q0, op.q1, op.m4);
            break;
          case FusedOp::Kind::Passthrough:
            applyGate(op.gate);
            break;
        }
    }
}

void
DensityMatrix::applyKraus1(std::size_t q, const std::vector<Matrix2> &kraus)
{
    checkQubit(q);
    countDmKernel();
    // Single fused pass: each (row-pair, column-pair) block B of the
    // q subsystem maps to sum_k K B K^dagger independently of every
    // other block, so no saved/accumulator copies of rho are needed
    // (the old implementation re-copied rho once per Kraus operator).
    const std::size_t stride = std::size_t{1} << q;
    Complex *rho = rho_.data();
    kernels::forEachRange(
        dim_ / 2, dim_ * dim_, [&](std::size_t pb, std::size_t pe) {
            for (std::size_t p = pb; p < pe; ++p) {
                const std::size_t r0 = expand1(p, q);
                Complex *row0 = rho + r0 * dim_;
                Complex *row1 = row0 + stride * dim_;
                for (std::size_t cp = 0; cp < dim_ / 2; ++cp) {
                    const std::size_t c0 = expand1(cp, q);
                    const std::size_t c1 = c0 + stride;
                    const Complex b00 = row0[c0], b01 = row0[c1];
                    const Complex b10 = row1[c0], b11 = row1[c1];
                    Complex n00{}, n01{}, n10{}, n11{};
                    for (const Matrix2 &k : kraus) {
                        // t = K B, then accumulate t K^dagger
                        const Complex t00 = k[0] * b00 + k[1] * b10;
                        const Complex t01 = k[0] * b01 + k[1] * b11;
                        const Complex t10 = k[2] * b00 + k[3] * b10;
                        const Complex t11 = k[2] * b01 + k[3] * b11;
                        n00 += t00 * std::conj(k[0]) +
                               t01 * std::conj(k[1]);
                        n01 += t00 * std::conj(k[2]) +
                               t01 * std::conj(k[3]);
                        n10 += t10 * std::conj(k[0]) +
                               t11 * std::conj(k[1]);
                        n11 += t10 * std::conj(k[2]) +
                               t11 * std::conj(k[3]);
                    }
                    row0[c0] = n00;
                    row0[c1] = n01;
                    row1[c0] = n10;
                    row1[c1] = n11;
                }
            }
        });
}

void
DensityMatrix::depolarize1(std::size_t q, double p)
{
    if (p <= 0.0)
        return;
    checkQubit(q);
    countDmKernel();
    // Closed form of (1-p) rho + (p/3)(X rho X + Y rho Y + Z rho Z)
    // per q-subsystem block: populations mix pairwise, coherences
    // scale — one pass instead of four Kraus conjugations.
    const double a = 1.0 - 2.0 * p / 3.0; // population keep
    const double b = 2.0 * p / 3.0;       // population swap-in
    const double c = 1.0 - 4.0 * p / 3.0; // coherence scale
    const std::size_t stride = std::size_t{1} << q;
    Complex *rho = rho_.data();
    kernels::forEachRange(
        dim_ / 2, dim_ * dim_, [&](std::size_t pb, std::size_t pe) {
            for (std::size_t pr = pb; pr < pe; ++pr) {
                Complex *row0 = rho + expand1(pr, q) * dim_;
                Complex *row1 = row0 + stride * dim_;
                for (std::size_t cp = 0; cp < dim_ / 2; ++cp) {
                    const std::size_t c0 = expand1(cp, q);
                    const std::size_t c1 = c0 + stride;
                    const Complex b00 = row0[c0], b11 = row1[c1];
                    row0[c0] = a * b00 + b * b11;
                    row1[c1] = b * b00 + a * b11;
                    row0[c1] *= c;
                    row1[c0] *= c;
                }
            }
        });
}

void
DensityMatrix::depolarize2(std::size_t qa, std::size_t qb, double p)
{
    if (p <= 0.0)
        return;
    checkQubit(qa);
    checkQubit(qb);
    countDmKernel();
    // Two-qubit Pauli twirl identity: sum over all 16 Paulis of
    // P B P = 4 Tr(B) I per (qa, qb) subsystem block, so
    //   rho' = (1-p) B + (p/15)(4 Tr(B) I - B)
    //        = (1 - 16p/15) B + (4p/15) Tr(B) I.
    // One pass over rho instead of 16 whole-matrix Kraus branches.
    const double alpha = 1.0 - 16.0 * p / 15.0;
    const double beta = 4.0 * p / 15.0;
    const std::size_t sa = std::size_t{1} << qa;
    const std::size_t sb = std::size_t{1} << qb;
    std::size_t p0 = qa, p1 = qb;
    if (p0 > p1)
        std::swap(p0, p1);
    Complex *rho = rho_.data();
    kernels::forEachRange(
        dim_ / 4, dim_ * dim_, [&](std::size_t kb, std::size_t ke) {
            for (std::size_t kr = kb; kr < ke; ++kr) {
                const std::size_t base = expand2(kr, p0, p1);
                Complex *rows[4] = {
                    rho + base * dim_, rho + (base + sb) * dim_,
                    rho + (base + sa) * dim_,
                    rho + (base + sa + sb) * dim_};
                for (std::size_t kc = 0; kc < dim_ / 4; ++kc) {
                    const std::size_t cbase = expand2(kc, p0, p1);
                    const std::size_t cols[4] = {cbase, cbase + sb,
                                                 cbase + sa,
                                                 cbase + sa + sb};
                    const Complex tr =
                        rows[0][cols[0]] + rows[1][cols[1]] +
                        rows[2][cols[2]] + rows[3][cols[3]];
                    for (int i = 0; i < 4; ++i) {
                        for (int j = 0; j < 4; ++j) {
                            Complex v = alpha * rows[i][cols[j]];
                            if (i == j)
                                v += beta * tr;
                            rows[i][cols[j]] = v;
                        }
                    }
                }
            }
        });
}

void
DensityMatrix::amplitudeDamp(std::size_t q, double gamma)
{
    if (gamma <= 0.0)
        return;
    thermalRelax(q, gamma, 0.0);
}

void
DensityMatrix::dephase(std::size_t q, double p)
{
    if (p <= 0.0)
        return;
    thermalRelax(q, 0.0, p);
}

void
DensityMatrix::thermalRelax(std::size_t q, double gamma, double pz)
{
    if (gamma <= 0.0 && pz <= 0.0)
        return;
    checkQubit(q);
    countDmKernel();
    // Amplitude damping then Pauli-twirled dephasing, composed in
    // closed form per q-subsystem block:
    //   b00' = b00 + gamma b11        b01' = s z b01
    //   b10' = s z b10                b11' = (1 - gamma) b11
    // with s = sqrt(1 - gamma), z = 1 - 2 pz. One pass replaces the
    // two applyKraus1 channels of the idle-noise hot loop.
    const double s = std::sqrt(1.0 - gamma);
    const double coh = s * (1.0 - 2.0 * pz);
    const double keep = 1.0 - gamma;
    const std::size_t stride = std::size_t{1} << q;
    Complex *rho = rho_.data();
    kernels::forEachRange(
        dim_ / 2, dim_ * dim_, [&](std::size_t pb, std::size_t pe) {
            for (std::size_t pr = pb; pr < pe; ++pr) {
                Complex *row0 = rho + expand1(pr, q) * dim_;
                Complex *row1 = row0 + stride * dim_;
                for (std::size_t cp = 0; cp < dim_ / 2; ++cp) {
                    const std::size_t c0 = expand1(cp, q);
                    const std::size_t c1 = c0 + stride;
                    const Complex b11 = row1[c1];
                    row0[c0] += gamma * b11;
                    row1[c1] = keep * b11;
                    row0[c1] *= coh;
                    row1[c0] *= coh;
                }
            }
        });
}

double
DensityMatrix::trace() const
{
    double tr = 0.0;
    for (std::size_t i = 0; i < dim_; ++i)
        tr += rho_[i * dim_ + i].real();
    return tr;
}

double
DensityMatrix::purity() const
{
    // Tr(rho^2) = sum_{r,c} rho[r][c] rho[c][r] = sum |rho[r][c]|^2
    // for Hermitian rho.
    const Complex *rho = rho_.data();
    return kernels::reduceChunked<double>(
        rho_.size(), [&](std::size_t b, std::size_t e) {
            double acc = 0.0;
            for (std::size_t i = b; i < e; ++i)
                acc += std::norm(rho[i]);
            return acc;
        });
}

std::vector<double>
DensityMatrix::probabilities() const
{
    std::vector<double> probs(dim_);
    for (std::size_t i = 0; i < dim_; ++i)
        probs[i] = rho_[i * dim_ + i].real();
    return probs;
}

stats::Distribution
noisyDistribution(const qc::Circuit &circuit, const NoiseModel &noise)
{
    // Terminal measurements only; mirror the runner's moment loop.
    std::vector<std::ptrdiff_t> clbit_source(circuit.numClbits(), -1);
    qc::Circuit body(circuit.numQubits());
    std::vector<bool> measured_qubit(circuit.numQubits(), false);
    for (const qc::Gate &g : circuit.gates()) {
        if (g.type == qc::GateType::MEASURE) {
            clbit_source[static_cast<std::size_t>(g.cbit)] =
                static_cast<std::ptrdiff_t>(g.qubits[0]);
            measured_qubit[g.qubits[0]] = true;
            continue;
        }
        if (g.type == qc::GateType::RESET)
            throw std::invalid_argument(
                "noisyDistribution: RESET not supported (use trajectories)");
        for (qc::Qubit q : g.qubits) {
            if (measured_qubit[q])
                throw std::invalid_argument(
                    "noisyDistribution: non-terminal measurement");
        }
        body.append(g);
    }

    DensityMatrix rho(circuit.numQubits());
    if (!noise.enabled) {
        // No per-gate channels to interleave: fuse single-qubit runs
        // and apply the compact sequence in one go.
        rho.applyFused(fuseUnitaryCircuit(body));
        std::vector<double> probs = rho.probabilities();
        stats::Distribution dist;
        for (std::size_t s = 0; s < probs.size(); ++s) {
            if (probs[s] < 1e-15)
                continue;
            std::string key(circuit.numClbits(), '0');
            for (std::size_t c = 0; c < circuit.numClbits(); ++c) {
                if (clbit_source[c] >= 0 &&
                    (s >> static_cast<std::size_t>(clbit_source[c])) & 1) {
                    key[c] = '1';
                }
            }
            dist.add(key, probs[s]);
        }
        return dist;
    }
    qc::Schedule sched = qc::schedule(body);
    const auto &gates = body.gates();
    std::vector<bool> active(circuit.numQubits(), false);
    for (const auto &moment : sched.moments) {
        double duration = 0.0;
        active.assign(circuit.numQubits(), false);
        for (std::size_t idx : moment) {
            const qc::Gate &g = gates[idx];
            duration = std::max(duration, g.qubits.size() >= 2
                                              ? noise.time2q
                                              : noise.time1q);
            for (qc::Qubit q : g.qubits)
                active[q] = true;
            rho.applyGate(g);
            if (noise.enabled) {
                if (g.qubits.size() == 1)
                    rho.depolarize1(g.qubits[0], noise.p1);
                else if (g.qubits.size() == 2)
                    rho.depolarize2(g.qubits[0], g.qubits[1], noise.p2);
            }
        }
        if (noise.enabled && duration > 0.0) {
            const IdleChannel idle = noise.idleChannel(duration);
            for (std::size_t q = 0; q < circuit.numQubits(); ++q) {
                if (!active[q])
                    rho.thermalRelax(q, idle.damp, idle.dephase);
            }
        }
    }

    std::vector<double> probs = rho.probabilities();
    // Readout error: independent classical flips on measured qubits.
    if (noise.enabled && noise.pMeas > 0.0) {
        for (std::size_t q = 0; q < circuit.numQubits(); ++q) {
            if (!measured_qubit[q])
                continue;
            std::size_t mask = std::size_t{1} << q;
            std::vector<double> next(probs.size());
            for (std::size_t s = 0; s < probs.size(); ++s) {
                next[s] = (1.0 - noise.pMeas) * probs[s] +
                          noise.pMeas * probs[s ^ mask];
            }
            probs = std::move(next);
        }
    }

    stats::Distribution dist;
    for (std::size_t s = 0; s < probs.size(); ++s) {
        if (probs[s] < 1e-15)
            continue;
        std::string key(circuit.numClbits(), '0');
        for (std::size_t c = 0; c < circuit.numClbits(); ++c) {
            if (clbit_source[c] >= 0 &&
                (s >> static_cast<std::size_t>(clbit_source[c])) & 1) {
                key[c] = '1';
            }
        }
        dist.add(key, probs[s]);
    }
    return dist;
}

} // namespace smq::sim
